#ifndef DANGORON_EXAMPLES_SERVE_FLAGS_H_
#define DANGORON_EXAMPLES_SERVE_FLAGS_H_

// The one table behind every serve-facing command line in examples/:
// run_query, serving_demo, and dangoron_serverd all render their usage text,
// parse their trailing flags, and pick their exit codes from here, so the
// three tools cannot drift apart (the drift this header was introduced to
// fix). README.md's quickstart documents the same flags and codes.

#include <cstdint>
#include <cstdlib>
#include <string>

#include "common/status.h"
#include "engine/query.h"
#include "serve/query_request.h"

namespace dangoron {

// ------------------------------------------------------------ flag table --

struct ServeFlagSpec {
  const char* usage;  ///< as shown in a usage line, e.g. "tier=exact|..."
  const char* help;   ///< one-line explanation
};

inline constexpr ServeFlagSpec kServeFlagSpecs[] = {
    {"abs", "threshold on |corr| >= beta instead of signed corr >= beta"},
    {"tier=exact|approx|auto",
     "service tier of the request (default: the server's default tier, "
     "exact unless configured; auto picks by deadline budget)"},
    {"deadline=<ms>",
     "deadline in milliseconds: admission, auto-tier choice, and hard "
     "mid-run enforcement (0 = no deadline)"},
    {"degrade=off|auto",
     "degradation under pressure: auto serves approx instead of failing a "
     "blown deadline estimate or a mid-query resource exhaustion"},
};

/// "[abs] [tier=exact|approx|auto] [deadline=<ms>] [degrade=off|auto]"
inline std::string ServeFlagUsage() {
  std::string usage;
  for (const ServeFlagSpec& spec : kServeFlagSpecs) {
    if (!usage.empty()) {
      usage += ' ';
    }
    usage += '[';
    usage += spec.usage;
    usage += ']';
  }
  return usage;
}

/// One "  token:  help" line per flag, each prefixed with `indent`.
inline std::string ServeFlagHelp(const char* indent) {
  std::string help;
  for (const ServeFlagSpec& spec : kServeFlagSpecs) {
    help += indent;
    help += spec.usage;
    help += ": ";
    help += spec.help;
    help += '\n';
  }
  return help;
}

// ------------------------------------------------------------ exit codes --

struct ExitCodeSpec {
  int code;
  const char* meaning;
};

/// Why 3-5 exist: a scripted caller reacts differently to a latency miss
/// (retry with a looser budget or the approx tier), to its own
/// cancellation, or to an unreachable shard backend (retry once the shard
/// is back, or page the operator) than to a real bug.
inline constexpr ExitCodeSpec kExitCodeSpecs[] = {
    {0, "success"},
    {1, "generic failure (load, engine, query, or export error)"},
    {2, "usage error (bad arguments or an unknown flag)"},
    {3, "the query failed on its deadline (DeadlineExceeded)"},
    {4, "the query was cancelled (Cancelled)"},
    {5, "a shard backend was unreachable (Unavailable)"},
};

inline int ExitCodeFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kDeadlineExceeded:
      return 3;
    case StatusCode::kCancelled:
      return 4;
    case StatusCode::kUnavailable:
      return 5;
    default:
      return 1;
  }
}

/// One "  N  meaning" line per exit code, each prefixed with `indent`.
inline std::string ExitCodeHelp(const char* indent) {
  std::string help;
  for (const ExitCodeSpec& spec : kExitCodeSpecs) {
    help += indent;
    help += std::to_string(spec.code);
    help += "  ";
    help += spec.meaning;
    help += '\n';
  }
  return help;
}

// --------------------------------------------------------------- parsing --

/// Accumulated trailing serve flags of one command line.
struct ParsedServeFlags {
  bool absolute = false;
  std::string tier;     ///< raw token; empty = server default
  std::string degrade;  ///< raw token; empty = server default
  int64_t deadline_ms = 0;  ///< 0 = no deadline

  bool any_serve_option() const {
    return !tier.empty() || !degrade.empty() || deadline_ms != 0;
  }
};

enum class ServeFlagParse {
  kMatched,  ///< consumed into `flags`
  kNoMatch,  ///< not one of ours (e.g. an output path)
  kError,    ///< one of ours with a bad value, or a typo'd key=value
};

/// Parses one trailing argument against the flag table. A key=value-shaped
/// token that matches no known flag is an error, not kNoMatch — dropping a
/// typo'd flag silently would change the query's semantics (e.g. run
/// without the intended deadline).
inline ServeFlagParse ParseServeFlag(const std::string& arg,
                                     ParsedServeFlags* flags,
                                     std::string* error) {
  if (arg == "abs") {
    flags->absolute = true;
    return ServeFlagParse::kMatched;
  }
  if (arg.rfind("tier=", 0) == 0) {
    flags->tier = arg.substr(5);
    return ServeFlagParse::kMatched;
  }
  if (arg.rfind("degrade=", 0) == 0) {
    flags->degrade = arg.substr(8);
    return ServeFlagParse::kMatched;
  }
  if (arg.rfind("deadline=", 0) == 0) {
    char* end = nullptr;
    const char* value = arg.c_str() + 9;
    flags->deadline_ms = std::strtoll(value, &end, 10);
    if (end == value || *end != '\0' || flags->deadline_ms < 0) {
      *error = "deadline= wants a non-negative millisecond count, got '" +
               std::string(value) + "'";
      return ServeFlagParse::kError;
    }
    return ServeFlagParse::kMatched;
  }
  if (arg.find('=') != std::string::npos) {
    *error = "unknown flag '" + arg + "' (known: abs, tier=, deadline=, "
             "degrade=)";
    return ServeFlagParse::kError;
  }
  return ServeFlagParse::kNoMatch;
}

/// Resolves the parsed flags into the query and the request options
/// (validating the tier/degrade tokens).
inline Status ApplyServeFlags(const ParsedServeFlags& flags,
                              SlidingQuery* query, ServeOptions* options) {
  query->absolute = flags.absolute;
  if (flags.deadline_ms > 0) {
    options->deadline_ms = flags.deadline_ms;  // 0 stays "no deadline"
  }
  if (!flags.tier.empty()) {
    Result<ServeTier> tier = ParseServeTier(flags.tier);
    RETURN_IF_ERROR(tier.status());
    options->tier = *tier;
  }
  if (!flags.degrade.empty()) {
    Result<DegradePolicy> degrade = ParseDegradePolicy(flags.degrade);
    RETURN_IF_ERROR(degrade.status());
    options->degrade = *degrade;
  }
  return Status::Ok();
}

}  // namespace dangoron

#endif  // DANGORON_EXAMPLES_SERVE_FLAGS_H_
