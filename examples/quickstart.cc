// Quickstart: the 60-second tour of the Dangoron public API.
//
//   1. Get a synchronized time-series matrix (here: synthetic climate data).
//   2. Construct a DangoronEngine and Prepare() it (builds the basic-window
//      sketch index).
//   3. Issue a SlidingQuery: range, window l, step eta, threshold beta.
//   4. Read the result: one sparse thresholded correlation matrix (=
//      network snapshot) per window.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "engine/dangoron_engine.h"
#include "network/network.h"
#include "ts/generators.h"

int main() {
  using namespace dangoron;

  // 1. Data: 16 weather stations, 60 days of hourly temperatures.
  ClimateSpec spec;
  spec.num_stations = 16;
  spec.num_hours = 24 * 60;
  spec.seed = 7;
  auto dataset = GenerateClimate(spec);
  if (!dataset.ok()) {
    std::fprintf(stderr, "data generation failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  const TimeSeriesMatrix& data = dataset->data;
  std::printf("data: %lld series x %lld hours\n",
              static_cast<long long>(data.num_series()),
              static_cast<long long>(data.length()));

  // 2. Engine. Defaults: 24h basic windows, Eq. 2 jumping enabled.
  DangoronEngine engine;
  if (Status status = engine.Prepare(data); !status.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // 3. Query: 7-day windows sliding one day at a time, edges at corr >= 0.8.
  SlidingQuery query;
  query.start = 0;
  query.end = data.length();
  query.window = 24 * 7;
  query.step = 24;
  query.threshold = 0.8;

  auto result = engine.Query(query);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 4. Results: a correlation network per window.
  std::printf("windows: %lld, total edges: %lld\n",
              static_cast<long long>(result->num_windows()),
              static_cast<long long>(result->TotalEdges()));
  for (int64_t k = 0; k < result->num_windows(); k += 13) {
    const NetworkSnapshot network(data.num_series(), result->WindowEdges(k));
    const ComponentStats components = ComputeComponentStats(network);
    std::printf(
        "  window %2lld (days %2lld-%2lld): %3lld edges, density %.2f, "
        "%lld components (largest %lld)\n",
        static_cast<long long>(k), static_cast<long long>(k),
        static_cast<long long>(k + 7), static_cast<long long>(network.num_edges()),
        network.Density(), static_cast<long long>(components.num_components),
        static_cast<long long>(components.largest_component));
  }

  // A peek at one snapshot's strongest edge.
  const auto edges = result->WindowEdges(0);
  if (!edges.empty()) {
    const Edge* strongest = &edges[0];
    for (const Edge& edge : edges) {
      if (edge.value > strongest->value) {
        strongest = &edge;
      }
    }
    std::printf("strongest edge in window 0: %s -- %s (corr %.3f)\n",
                data.SeriesName(strongest->i).c_str(),
                data.SeriesName(strongest->j).c_str(), strongest->value);
  }

  // Engine counters: how much work the jump optimization saved.
  const EngineStats& stats = engine.stats();
  std::printf("cells: %lld total, %lld evaluated, %lld skipped by jumps\n",
              static_cast<long long>(stats.cells_total),
              static_cast<long long>(stats.cells_evaluated),
              static_cast<long long>(stats.cells_jumped));
  return 0;
}
