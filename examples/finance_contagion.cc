// Financial contagion example: sliding correlation networks on asset
// returns (Kenett et al. 2010; Tilfani et al. 2021).
//
// In crises, asset correlations jump ("correlation contagion") — the
// correlation network densifies abruptly. This example synthesizes a
// regime-switching return panel, tracks network density across sliding
// windows with Dangoron, and recovers the hidden crisis regime from the
// density series alone.

#include <cstdio>
#include <vector>

#include "engine/dangoron_engine.h"
#include "eval/table.h"
#include "network/network.h"
#include "ts/generators.h"

namespace dangoron {
namespace {

int Run() {
  FinanceSpec spec;
  spec.num_assets = 48;
  spec.num_steps = 4096;
  spec.calm_correlation = 0.15;
  spec.crisis_correlation = 0.7;
  spec.seed = 5;
  auto dataset = GenerateFinance(spec);
  if (!dataset.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }

  int64_t crisis_steps = 0;
  for (const int regime : dataset->crisis_regime) {
    crisis_steps += regime;
  }
  std::printf("assets: %lld, steps: %lld (%lld crisis steps, %.1f%%)\n",
              static_cast<long long>(spec.num_assets),
              static_cast<long long>(spec.num_steps),
              static_cast<long long>(crisis_steps),
              100.0 * static_cast<double>(crisis_steps) /
                  static_cast<double>(spec.num_steps));

  // 64-step windows sliding by 16; threshold between the calm (~0.15) and
  // crisis (~0.7) pairwise correlation levels.
  DangoronOptions options;
  options.basic_window = 16;
  DangoronEngine engine(options);
  if (Status status = engine.Prepare(dataset->returns); !status.ok()) {
    std::fprintf(stderr, "prepare: %s\n", status.ToString().c_str());
    return 1;
  }
  SlidingQuery query;
  query.start = 0;
  query.end = spec.num_steps;
  query.window = 64;
  query.step = 16;
  query.threshold = 0.4;
  auto result = engine.Query(query);
  if (!result.ok()) {
    std::fprintf(stderr, "query: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // Classify each window by its network density, then score against the
  // hidden regime (a window counts as crisis if >= half its steps are).
  const DynamicsSummary dynamics = SummarizeDynamics(*result);
  const double density_bar = 0.2;
  int64_t agree = 0;
  Table table({"window", "steps", "density", "-> classified", "true regime"});
  for (int64_t k = 0; k < result->num_windows(); ++k) {
    const int64_t t0 = query.start + k * query.step;
    int64_t crisis_in_window = 0;
    for (int64_t t = t0; t < t0 + query.window; ++t) {
      crisis_in_window += dataset->crisis_regime[static_cast<size_t>(t)];
    }
    const bool truly_crisis = crisis_in_window * 2 >= query.window;
    const bool classified_crisis =
        dynamics.density_per_window[static_cast<size_t>(k)] > density_bar;
    if (truly_crisis == classified_crisis) {
      ++agree;
    }
    if (k % 25 == 0 || truly_crisis != classified_crisis) {
      table.AddRow()
          .AddInt(k)
          .Add(std::to_string(t0) + "-" + std::to_string(t0 + query.window))
          .AddPercent(dynamics.density_per_window[static_cast<size_t>(k)])
          .Add(classified_crisis ? "CRISIS" : "calm")
          .Add(truly_crisis ? "CRISIS" : "calm");
    }
  }
  std::printf("\n%s\n", table.ToString().c_str());
  std::printf("density-based regime detection agrees with the hidden regime "
              "on %lld/%lld windows (%.1f%%)\n",
              static_cast<long long>(agree),
              static_cast<long long>(result->num_windows()),
              100.0 * static_cast<double>(agree) /
                  static_cast<double>(result->num_windows()));
  return 0;
}

}  // namespace
}  // namespace dangoron

int main() { return dangoron::Run(); }
