// dangoron_serverd: the library over the network — a daemon speaking the
// framed wire protocol (docs/WIRE_PROTOCOL.md), and the matching
// command-line client.
//
// Serve:
//   dangoron_serverd serve <data.{csv,dgrn}> [name=data] [port=7311]
//                    [server=<options>] [workers=<n>]
//     Loads the dataset, registers it under `name`, and serves QueryRequests
//     on `port` until SIGINT/SIGTERM. `server=` is the same option string
//     CreateServer takes everywhere else (e.g. server=basic_window=24).
//     port=0 binds an ephemeral port (printed on stdout).
//
// Query:
//   dangoron_serverd query <host> <port> <dataset> <window> <step> <beta>
//                    [abs] [tier=...] [deadline=<ms>] [degrade=off|auto]
//                    [out.csv]
//     Submits one request, streams the per-window results as they arrive,
//     prints the terminal summary. Flags and exit codes are run_query's
//     (examples/serve_flags.h) — the wire adds transport, not semantics:
//     the same query against the same server answers byte-identically to an
//     in-process Submit.
//
// Route:
//   dangoron_serverd route <data.{csv,dgrn}> [shard=<host:port>]...
//                    [spawn=<K>] [base-port=7312] [name=data] [port=7411]
//                    [server=<options>] [respawn=<N>]
//     Fronts K shard backends (each a `serve` process holding the full
//     dataset) with a ShardRouter: every client request splits into K
//     disjoint pair-range requests and the K window streams merge back in
//     window order (src/router/README.md). The data file is loaded only
//     for its series count (the pair split) and content fingerprint (pinned
//     onto every shard request), then dropped — the router holds no data.
//     `spawn=K` forks K `serve` children on base-port..base-port+K-1
//     instead of (or in addition to) explicit shard= endpoints. Exit code 5
//     means a shard backend never came up at startup. After startup the
//     route process supervises its children: an exited child is reaped and
//     its exit status logged, and — up to `respawn=N` times per child
//     (default 3; 0 = reap only) — respawned with capped backoff and
//     re-probed for readiness before the router routes to it again.
//     Mid-query shard deaths are ridden out by the router's failover
//     (src/router/README.md).
//
// Quickstart (single-process shards, two terminals):
//   ./build/tomborg_generate 32 4096 block pink 1 /tmp/d.csv
//   ./build/dangoron_serverd route /tmp/d.csv spawn=2 port=7411 &
//   ./build/dangoron_serverd query 127.0.0.1 7411 data 512 128 0.8 \
//       deadline=250 /tmp/net.csv

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "engine/factory.h"
#include "net/wire_server.h"
#include "router/router_server.h"
#include "router/shard_router.h"
#include "serve/server.h"
#include "serve_flags.h"
#include "ts/csv.h"
#include "ts/dataset_io.h"
#include "ts/resample.h"
#include "wire/client.h"

namespace dangoron {
namespace {

volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s serve <data.{csv,dgrn}> [name=data] [port=7311]\n"
      "          [server=<options>] [workers=<n>]\n"
      "       %s query <host> <port> <dataset> <window> <step> <beta>\n"
      "          %s [out.csv]\n"
      "       %s route <data.{csv,dgrn}> [shard=<host:port>]... [spawn=<K>]\n"
      "          [base-port=7312] [name=data] [port=7411] "
      "[server=<options>] [respawn=<N>]\n"
      "query flags:\n%s"
      "exit codes:\n%s",
      argv0, argv0, ServeFlagUsage().c_str(), argv0,
      ServeFlagHelp("  ").c_str(), ExitCodeHelp("  ").c_str());
  return 2;
}

Result<TimeSeriesMatrix> LoadData(const std::string& path) {
  Result<TimeSeriesMatrix> data =
      EndsWith(path, ".dgrn") ? LoadDataset(path) : LoadCsv(path);
  RETURN_IF_ERROR(data.status());
  if (data->CountMissing() > 0) {
    RETURN_IF_ERROR(InterpolateMissing(&*data));
  }
  return data;
}

int RunServe(int argc, char** argv) {
  if (argc < 3) {
    return Usage(argv[0]);
  }
  const std::string data_path = argv[2];
  std::string name = "data";
  std::string server_options;
  WireServerOptions wire_options;
  wire_options.port = 7311;
  for (int a = 3; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg.rfind("name=", 0) == 0) {
      name = arg.substr(5);
    } else if (arg.rfind("port=", 0) == 0) {
      wire_options.port = std::atoi(arg.c_str() + 5);
    } else if (arg.rfind("server=", 0) == 0) {
      server_options = arg.substr(7);
    } else if (arg.rfind("workers=", 0) == 0) {
      wire_options.worker_threads = std::atoi(arg.c_str() + 8);
    } else {
      std::fprintf(stderr, "unknown serve argument '%s'\n", arg.c_str());
      return 2;
    }
  }

  Result<TimeSeriesMatrix> data = LoadData(data_path);
  if (!data.ok()) {
    std::fprintf(stderr, "load: %s\n", data.status().ToString().c_str());
    return 1;
  }
  auto server = CreateServer(server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "server: %s\n", server.status().ToString().c_str());
    return 1;
  }
  if (Status status = (*server)->AddDataset(name, std::move(*data));
      !status.ok()) {
    std::fprintf(stderr, "AddDataset: %s\n", status.ToString().c_str());
    return 1;
  }

  WireServer wire(server->get(), wire_options);
  if (Status status = wire.Start(); !status.ok()) {
    std::fprintf(stderr, "start: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("serving dataset '%s' on %s:%d (fingerprint %llu)\n",
              name.c_str(), wire_options.bind_address.c_str(), wire.port(),
              static_cast<unsigned long long>(
                  *(*server)->DatasetFingerprint(name)));
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  sigset_t empty;
  sigemptyset(&empty);
  while (g_stop == 0) {
    sigsuspend(&empty);  // sleep until a signal arrives
  }

  wire.Stop();
  const WireServerStats stats = wire.stats();
  std::printf(
      "shutting down: %lld connections, %lld requests "
      "(lanes high=%lld medium=%lld low=%lld), %lld cancels, "
      "%lld disconnect-cancels, %lld protocol errors, "
      "%lld bytes in, %lld bytes out\n",
      static_cast<long long>(stats.connections_accepted +
                             stats.connections_adopted),
      static_cast<long long>(stats.requests),
      static_cast<long long>(stats.lanes.executed[0]),
      static_cast<long long>(stats.lanes.executed[1]),
      static_cast<long long>(stats.lanes.executed[2]),
      static_cast<long long>(stats.cancel_frames),
      static_cast<long long>(stats.disconnect_cancels),
      static_cast<long long>(stats.protocol_errors),
      static_cast<long long>(stats.bytes_in),
      static_cast<long long>(stats.bytes_out));
  return 0;
}

/// One spawn=K shard child under supervision: the router shard index it
/// backs, its port, and the respawn bookkeeping (budget, capped backoff,
/// readiness re-probe) the route loop drives.
struct ShardChild {
  pid_t pid = -1;  ///< -1 = not running (reaped, not yet respawned)
  int shard = 0;   ///< router shard index — MarkShardUp target
  int port = 0;
  int respawns_left = 0;
  int64_t backoff_ms = 250;
  std::chrono::steady_clock::time_point respawn_at{};
  bool waiting_respawn = false;
  bool probing = false;
};

/// Forks one `serve` child for `port`; returns its pid (<0 on fork failure;
/// never returns in the child).
pid_t SpawnShard(const char* argv0, const std::string& data_path,
                 const std::string& name, const std::string& server_options,
                 int port) {
  const pid_t pid = ::fork();
  if (pid != 0) {
    return pid;
  }
  std::vector<std::string> args = {argv0, "serve", data_path, "name=" + name,
                                   "port=" + std::to_string(port)};
  if (!server_options.empty()) {
    args.push_back("server=" + server_options);
  }
  std::vector<char*> child_argv;
  for (std::string& a : args) {
    child_argv.push_back(a.data());
  }
  child_argv.push_back(nullptr);
  ::execv("/proc/self/exe", child_argv.data());
  std::perror("execv");
  ::_exit(127);
}

/// Human-readable child exit: "exit code N" / "signal N".
std::string DescribeExit(int wstatus) {
  if (WIFEXITED(wstatus)) {
    return "exit code " + std::to_string(WEXITSTATUS(wstatus));
  }
  if (WIFSIGNALED(wstatus)) {
    return "signal " + std::to_string(WTERMSIG(wstatus));
  }
  return "status " + std::to_string(wstatus);
}

/// SIGTERMs and reaps every live spawned shard child; idempotent.
void StopChildren(std::vector<ShardChild>* children) {
  for (const ShardChild& child : *children) {
    if (child.pid > 0) {
      ::kill(child.pid, SIGTERM);
    }
  }
  for (ShardChild& child : *children) {
    if (child.pid > 0) {
      ::waitpid(child.pid, nullptr, 0);
      child.pid = -1;
    }
  }
  children->clear();
}

int RunRoute(int argc, char** argv) {
  if (argc < 3) {
    return Usage(argv[0]);
  }
  const std::string data_path = argv[2];
  std::string name = "data";
  std::string server_options;
  int port = 7411;
  int spawn = 0;
  int base_port = 7312;
  int respawn = 3;
  std::vector<ShardEndpoint> shards;
  for (int a = 3; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg.rfind("name=", 0) == 0) {
      name = arg.substr(5);
    } else if (arg.rfind("port=", 0) == 0) {
      port = std::atoi(arg.c_str() + 5);
    } else if (arg.rfind("respawn=", 0) == 0) {
      respawn = std::atoi(arg.c_str() + 8);
    } else if (arg.rfind("shard=", 0) == 0) {
      const std::string spec = arg.substr(6);
      const size_t colon = spec.rfind(':');
      ShardEndpoint endpoint;
      if (colon != std::string::npos) {
        endpoint.host = spec.substr(0, colon);
        endpoint.port = std::atoi(spec.c_str() + colon + 1);
      }
      if (colon == std::string::npos || endpoint.host.empty() ||
          endpoint.port <= 0) {
        std::fprintf(stderr, "shard= wants host:port, got '%s'\n",
                     spec.c_str());
        return 2;
      }
      shards.push_back(endpoint);
    } else if (arg.rfind("spawn=", 0) == 0) {
      spawn = std::atoi(arg.c_str() + 6);
    } else if (arg.rfind("base-port=", 0) == 0) {
      base_port = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("server=", 0) == 0) {
      server_options = arg.substr(7);
    } else {
      std::fprintf(stderr, "unknown route argument '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (shards.empty() && spawn <= 0) {
    std::fprintf(stderr,
                 "route needs shard=<host:port> backends or spawn=<K>\n");
    return 2;
  }

  // The data file is read only for the pair-split geometry and the content
  // fingerprint pinned onto every shard request; the matrix itself is
  // dropped at the end of this scope — the router holds no data.
  int64_t num_series = 0;
  uint64_t fingerprint = 0;
  {
    Result<TimeSeriesMatrix> data = LoadData(data_path);
    if (!data.ok()) {
      std::fprintf(stderr, "load: %s\n", data.status().ToString().c_str());
      return 1;
    }
    num_series = data->num_series();
    fingerprint = data->ContentFingerprint();
  }

  std::vector<ShardChild> children;
  for (int s = 0; s < spawn; ++s) {
    const int shard_port = base_port + s;
    const pid_t pid =
        SpawnShard(argv[0], data_path, name, server_options, shard_port);
    if (pid < 0) {
      std::perror("fork");
      StopChildren(&children);
      return 1;
    }
    ShardChild child;
    child.pid = pid;
    child.shard = static_cast<int>(shards.size());
    child.port = shard_port;
    child.respawns_left = respawn;
    children.push_back(child);
    shards.push_back({"127.0.0.1", shard_port});
  }

  // Fail fast (exit code 5) instead of failing the first query: every
  // shard must accept a connection before the router starts listening.
  // Spawned children need a beat to load the dataset and bind.
  for (size_t s = 0; s < shards.size(); ++s) {
    WireClientOptions probe;
    probe.connect_timeout_ms = 250;
    Status last = Status::Ok();
    bool up = false;
    for (int attempt = 0; attempt < 40; ++attempt) {
      Result<std::unique_ptr<WireClient>> client =
          WireClient::ConnectTcp(shards[s].host, shards[s].port, probe);
      if (client.ok()) {
        up = true;  // the probe connection closes with the client
        break;
      }
      last = client.status();
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
    }
    if (!up) {
      const Status status = Status::Unavailable(
          "shard ", s, " (", shards[s].host, ":", shards[s].port,
          ") never came up: ", last.message());
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      StopChildren(&children);
      return ExitCodeFor(status);
    }
  }

  ShardRouterOptions router_options;
  router_options.shards = shards;
  ShardRouter router(router_options);

  RouterServerOptions front_options;
  front_options.port = port;
  RouterServer front(&router, front_options);
  front.RegisterDataset(name, num_series, fingerprint);
  if (Status status = front.Start(); !status.ok()) {
    std::fprintf(stderr, "start: %s\n", status.ToString().c_str());
    StopChildren(&children);
    return 1;
  }
  std::printf(
      "routing dataset '%s' (%lld series, fingerprint %llu) across %zu "
      "shards on %s:%d\n",
      name.c_str(), static_cast<long long>(num_series),
      static_cast<unsigned long long>(fingerprint), shards.size(),
      front_options.bind_address.c_str(), front.bound_port());
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  // Supervision loop (200 ms ticks): reap exited spawn=K children so a
  // crashed shard never lingers as a zombie and its exit status is logged;
  // respawn with capped exponential backoff while the budget lasts
  // (respawn=0 turns respawning off, reaping stays); re-probe readiness
  // before telling the router the shard is routable again. Between a death
  // and the respawned child's first ready probe, the router's own health
  // machine keeps queries off the port (and failover keeps in-flight
  // queries alive).
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    if (g_stop != 0) {
      break;
    }
    const auto now = std::chrono::steady_clock::now();

    while (!children.empty()) {
      int wstatus = 0;
      const pid_t pid = ::waitpid(-1, &wstatus, WNOHANG);
      if (pid <= 0) {
        break;
      }
      for (ShardChild& child : children) {
        if (child.pid != pid) {
          continue;
        }
        child.pid = -1;
        child.probing = false;
        std::fprintf(stderr,
                     "shard %d (127.0.0.1:%d): child %lld died (%s)%s\n",
                     child.shard, child.port, static_cast<long long>(pid),
                     DescribeExit(wstatus).c_str(),
                     child.respawns_left > 0
                         ? ""
                         : " — not respawning (budget exhausted)");
        if (child.respawns_left > 0) {
          child.waiting_respawn = true;
          child.respawn_at =
              now + std::chrono::milliseconds(child.backoff_ms);
        }
        break;
      }
    }

    for (ShardChild& child : children) {
      if (!child.waiting_respawn || now < child.respawn_at) {
        continue;
      }
      pid_t pid = -1;
      // Chaos seam: `router.respawn=error` makes the fork fail, consuming
      // one respawn attempt like a real fork failure.
      if (Status injected = DANGORON_FAILPOINT_STATUS("router.respawn");
          injected.ok()) {
        pid = SpawnShard(argv[0], data_path, name, server_options,
                         child.port);
      } else {
        std::fprintf(stderr, "shard %d: respawn failpoint: %s\n",
                     child.shard, injected.ToString().c_str());
      }
      --child.respawns_left;
      child.backoff_ms = std::min<int64_t>(child.backoff_ms * 2, 5000);
      if (pid < 0) {
        if (child.respawns_left > 0) {
          child.respawn_at =
              now + std::chrono::milliseconds(child.backoff_ms);
        } else {
          child.waiting_respawn = false;
          std::fprintf(stderr,
                       "shard %d (127.0.0.1:%d): respawn budget exhausted\n",
                       child.shard, child.port);
        }
        continue;
      }
      child.pid = pid;
      child.waiting_respawn = false;
      child.probing = true;
      std::fprintf(stderr,
                   "shard %d (127.0.0.1:%d): respawned as pid %lld, "
                   "probing readiness\n",
                   child.shard, child.port, static_cast<long long>(pid));
    }

    for (ShardChild& child : children) {
      if (!child.probing || child.pid <= 0) {
        continue;
      }
      WireClientOptions probe;
      probe.connect_timeout_ms = 100;
      Result<std::unique_ptr<WireClient>> conn =
          WireClient::ConnectTcp("127.0.0.1", child.port, probe);
      if (conn.ok()) {  // the probe connection closes with the client
        child.probing = false;
        child.backoff_ms = 250;  // healthy again: fresh backoff next time
        router.MarkShardUp(child.shard);
        std::fprintf(stderr, "shard %d (127.0.0.1:%d): ready (pid %lld)\n",
                     child.shard, child.port,
                     static_cast<long long>(child.pid));
      }
    }
  }

  front.Stop();
  const RouterServerStats stats = front.stats();
  std::printf(
      "shutting down: %lld connections, %lld requests, %lld cancels, "
      "%lld disconnect-cancels, %lld protocol errors, %lld shard "
      "failures, %lld failovers\n",
      static_cast<long long>(stats.connections_accepted +
                             stats.connections_adopted),
      static_cast<long long>(stats.requests),
      static_cast<long long>(stats.cancel_frames),
      static_cast<long long>(stats.disconnect_cancels),
      static_cast<long long>(stats.protocol_errors),
      static_cast<long long>(stats.shard_failures),
      static_cast<long long>(stats.failovers));
  StopChildren(&children);
  return 0;
}

int RunQuery(int argc, char** argv) {
  if (argc < 8) {
    return Usage(argv[0]);
  }
  const std::string host = argv[2];
  const int port = std::atoi(argv[3]);

  WireRequest request;
  request.dataset = argv[4];
  request.query.start = 0;
  request.query.end = 0;  // 0 = the dataset's full range (server-side)
  request.query.window = std::atoll(argv[5]);
  request.query.step = std::atoll(argv[6]);
  request.query.threshold = std::atof(argv[7]);

  ParsedServeFlags flags;
  std::string out_path;
  for (int a = 8; a < argc; ++a) {
    const std::string arg = argv[a];
    std::string error;
    switch (ParseServeFlag(arg, &flags, &error)) {
      case ServeFlagParse::kMatched:
        break;
      case ServeFlagParse::kError:
        std::fprintf(stderr, "%s\n", error.c_str());
        return 2;
      case ServeFlagParse::kNoMatch:
        out_path = arg;
        break;
    }
  }
  if (Status status =
          ApplyServeFlags(flags, &request.query, &request.options);
      !status.ok()) {
    std::fprintf(stderr, "flags: %s\n", status.ToString().c_str());
    return 2;
  }

  auto client = WireClient::ConnectTcp(host, port);
  if (!client.ok()) {
    std::fprintf(stderr, "connect: %s\n", client.status().ToString().c_str());
    return 1;
  }
  Stopwatch watch;
  if (Status status = (*client)->Submit(request); !status.ok()) {
    std::fprintf(stderr, "submit: %s\n", status.ToString().c_str());
    return 1;
  }

  std::FILE* out = nullptr;
  if (!out_path.empty()) {
    out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(out, "window,i,j,correlation\n");
  }

  double ttfw_ms = 0.0;
  int64_t windows = 0;
  int64_t edges = 0;
  while (true) {
    auto window = (*client)->Next();
    if (!window.ok()) {
      std::fprintf(stderr, "stream: %s\n",
                   window.status().ToString().c_str());
      if (out != nullptr) {
        std::fclose(out);
      }
      return 1;
    }
    if (!window->has_value()) {
      break;  // terminal status frame
    }
    if (windows == 0) {
      ttfw_ms = watch.ElapsedSeconds() * 1e3;
    }
    ++windows;
    edges += static_cast<int64_t>((*window)->edges->size());
    if (out != nullptr) {
      for (const Edge& edge : *(*window)->edges) {
        std::fprintf(out, "%lld,%d,%d,%.17g\n",
                     static_cast<long long>((*window)->window_index), edge.i,
                     edge.j, edge.value);
      }
    }
  }
  if (out != nullptr) {
    std::fclose(out);
  }
  const double total_ms = watch.ElapsedSeconds() * 1e3;

  const Status& verdict = (*client)->result_status();
  const WireSummary& summary = (*client)->summary();
  if (!verdict.ok()) {
    std::fprintf(stderr, "query: %s\n", verdict.ToString().c_str());
    return ExitCodeFor(verdict);
  }
  std::printf(
      "served %.3f ms by the %s tier%s over the wire; first window %.3f ms; "
      "%lld windows, %lld edges (prepare %s; %lld computed, %lld cached, "
      "%lld joined; %lld cells jumped in %lld jumps)\n",
      total_ms, std::string(ServeTierName(summary.tier_used)).c_str(),
      summary.degraded ? " (degraded)" : "", ttfw_ms,
      static_cast<long long>(windows), static_cast<long long>(edges),
      summary.prepared_from_cache ? "shared" : "built",
      static_cast<long long>(summary.windows_computed),
      static_cast<long long>(summary.windows_from_cache),
      static_cast<long long>(summary.windows_joined),
      static_cast<long long>(summary.cells_jumped),
      static_cast<long long>(summary.jumps));
  if (summary.windows_delivered != windows) {
    std::fprintf(stderr,
                 "frame accounting mismatch: server sent %lld windows, "
                 "client saw %lld\n",
                 static_cast<long long>(summary.windows_delivered),
                 static_cast<long long>(windows));
    return 1;
  }
  if (!out_path.empty()) {
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 2) {
    return Usage(argv[0]);
  }
  if (std::strcmp(argv[1], "serve") == 0) {
    return RunServe(argc, argv);
  }
  if (std::strcmp(argv[1], "query") == 0) {
    return RunQuery(argc, argv);
  }
  if (std::strcmp(argv[1], "route") == 0) {
    return RunRoute(argc, argv);
  }
  return Usage(argv[0]);
}

}  // namespace
}  // namespace dangoron

int main(int argc, char** argv) { return dangoron::Run(argc, argv); }
