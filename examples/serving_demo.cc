// Serving demo: the multi-user face of the library (see src/serve/README.md
// for the full usage guide).
//
//   1. Stand up a DangoronServer from a config string.
//   2. Register a dataset (cheap — the first query pays the prepare).
//   3. Play three "clients": concurrent submissions, an identical repeat,
//      and an overlapping shifted range — and read off what each reused.
//   4. Wire a live stream into the server's window cache so historical
//      queries over streamed data start warm.
//   5. Stream a query's windows as they are evaluated (SubmitStreaming):
//      the first window arrives at time-to-first-window, far before the
//      materialized result would.
//   6. Speak the full QueryRequest surface: an approx-tier request (Eq. 2
//      jumping, bypassing the shared window cache), an auto-tier request
//      under a deadline, and the tier/jump accounting they report.
//
// Build and run:
//   cmake -B build && cmake --build build
//   ./build/serving_demo

#include <cstdio>
#include <cstring>
#include <future>
#include <vector>

#include "common/stopwatch.h"
#include "engine/factory.h"
#include "serve/server.h"
#include "serve_flags.h"
#include "stream/streaming_builder.h"
#include "ts/generators.h"

int main(int argc, char** argv) {
  using namespace dangoron;

  // The demo itself is argument-free; any argument prints the request
  // options it demonstrates (section 6) as run_query accepts them. The
  // text renders from examples/serve_flags.h — the same table run_query
  // and dangoron_serverd use — so the three tools cannot drift.
  if (argc > 1) {
    const bool help = std::strcmp(argv[1], "--help") == 0 ||
                      std::strcmp(argv[1], "-h") == 0;
    std::fprintf(help ? stdout : stderr,
                 "usage: %s   (no arguments — a scripted tour)\n"
                 "request options demonstrated here, as run_query and\n"
                 "'dangoron_serverd query' accept them: %s\n%s"
                 "exit codes (run_query / dangoron_serverd query):\n%s",
                 argv[0], ServeFlagUsage().c_str(),
                 ServeFlagHelp("  ").c_str(), ExitCodeHelp("  ").c_str());
    return help ? 0 : 2;
  }

  // 1. Server: 24h basic windows, hardware-concurrency pool, default cache
  // budgets. The same string could come from a flag or a config file.
  auto server_or = CreateServer("threads=0,basic_window=24");
  if (!server_or.ok()) {
    std::fprintf(stderr, "server construction failed: %s\n",
                 server_or.status().ToString().c_str());
    return 1;
  }
  DangoronServer& server = **server_or;

  // 2. Dataset: 32 weather stations, 120 days of hourly temperatures.
  ClimateSpec spec;
  spec.num_stations = 32;
  spec.num_hours = 24 * 120;
  spec.seed = 21;
  auto dataset = GenerateClimate(spec);
  if (!dataset.ok()) {
    std::fprintf(stderr, "data generation failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  const TimeSeriesMatrix data = dataset->data;  // keep a copy for streaming
  if (auto status = server.AddDataset("climate", dataset->data);
      !status.ok()) {
    std::fprintf(stderr, "AddDataset failed: %s\n", status.ToString().c_str());
    return 1;
  }

  SlidingQuery query;
  query.start = 0;
  query.end = 24 * 120;
  query.window = 24 * 30;  // 30-day windows
  query.step = 24;         // sliding daily
  query.threshold = 0.85;

  auto describe = [](const char* who, const ServeResult& result) {
    std::printf(
        "%-28s windows=%lld  prepare=%s  computed=%lld  cached=%lld  "
        "joined=%lld\n",
        who, static_cast<long long>(result.series.num_windows()),
        result.prepared_from_cache ? "shared" : "built",
        static_cast<long long>(result.windows_computed),
        static_cast<long long>(result.windows_from_cache),
        static_cast<long long>(result.windows_joined));
  };

  // 3a. Three concurrent clients ask the same question at once: one builds
  // the sketch and evaluates each window, the others join its work in
  // flight rather than duplicating it.
  std::vector<std::future<Result<ServeResult>>> clients;
  for (int c = 0; c < 3; ++c) {
    clients.push_back(server.Submit("climate", query));
  }
  for (size_t c = 0; c < clients.size(); ++c) {
    auto result = clients[c].get();
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    char who[32];
    std::snprintf(who, sizeof(who), "concurrent client %zu:", c);
    describe(who, *result);
  }

  // 3b. A repeat of the same query is pure cache: no build, no evaluation.
  auto repeat = server.Query("climate", query);
  if (!repeat.ok()) {
    return 1;
  }
  describe("identical repeat:", *repeat);

  // 3c. An overlapping range reuses every shared window and evaluates only
  // the new tail.
  SlidingQuery shifted = query;
  shifted.start = 24 * 30;
  auto overlap = server.Query("climate", shifted);
  if (!overlap.ok()) {
    return 1;
  }
  describe("overlapping shifted range:", *overlap);

  // 4. Live + historical sharing: a stream that publishes into the server's
  // window cache. Replaying the same data (in production: the live feed)
  // leaves every emitted window warm for historical queries at the stream's
  // threshold.
  StreamingOptions stream_options;
  stream_options.basic_window = 24;
  stream_options.window = 24 * 30;
  stream_options.step = 24;
  stream_options.threshold = 0.9;  // a threshold no query asked yet
  auto builder =
      StreamingNetworkBuilder::Create(data.num_series(), stream_options);
  auto fingerprint = server.DatasetFingerprint("climate");
  if (!builder.ok() || !fingerprint.ok()) {
    return 1;
  }
  builder->PublishTo(server.mutable_result_cache(), *fingerprint);
  if (!builder->AppendColumns(data, 0, data.length()).ok()) {
    return 1;
  }
  SlidingQuery at_stream_threshold = query;
  at_stream_threshold.threshold = 0.9;
  auto warm = server.Query("climate", at_stream_threshold);
  if (!warm.ok()) {
    return 1;
  }
  describe("historical after stream:", *warm);

  // 5. Streaming: a fresh dataset (cold caches) consumed window by window.
  // The first window lands after the prepare plus one evaluation batch —
  // not after the full sweep — and every delivered window is already in the
  // shared cache for the next client.
  ClimateSpec cold_spec = spec;
  cold_spec.seed = 99;
  auto cold = GenerateClimate(cold_spec);
  if (!cold.ok() ||
      !server.AddDataset("climate-live", std::move(cold->data)).ok()) {
    return 1;
  }
  StreamingSubmitOptions stream_submit;
  stream_submit.queue_capacity = 8;
  stream_submit.max_batch_windows = 4;
  Stopwatch ttfw_timer;
  auto window_stream =
      server.SubmitStreaming("climate-live", query, stream_submit);
  double ttfw_ms = 0.0;
  int64_t streamed = 0;
  while (auto window = window_stream->Next()) {
    if (streamed == 0) {
      ttfw_ms = ttfw_timer.ElapsedSeconds() * 1e3;
    }
    ++streamed;
  }
  const double total_ms = ttfw_timer.ElapsedSeconds() * 1e3;
  if (!window_stream->status().ok()) {
    std::fprintf(stderr, "stream failed: %s\n",
                 window_stream->status().ToString().c_str());
    return 1;
  }
  std::printf(
      "streaming submit:            windows=%lld  first window %.2f ms, all "
      "windows %.2f ms\n",
      static_cast<long long>(streamed), ttfw_ms, total_ms);

  // 6. The QueryRequest surface: tiers and deadlines. An approx-tier
  // request answers with Eq. 2 temporal jumping — the paper's core
  // optimization — sharing the prepared sketch with the exact tier but
  // bypassing the shared window cache (jumped windows depend on the
  // request's range, so they must never be published). An auto-tier
  // request with a deadline lets the server pick: approx when the deadline
  // is tighter than its exact-cost estimate.
  QueryRequest approx_request;
  approx_request.dataset = "climate-live";
  approx_request.query = query;
  approx_request.options.tier = ServeTier::kApprox;
  Stopwatch approx_timer;
  auto approx = server.Query(approx_request);
  if (!approx.ok()) {
    std::fprintf(stderr, "approx query failed: %s\n",
                 approx.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "approx tier:                 windows=%lld  %.2f ms  tier=%s  "
      "jumped %lld of %lld cells in %lld jumps\n",
      static_cast<long long>(approx->series.num_windows()),
      approx_timer.ElapsedSeconds() * 1e3,
      std::string(ServeTierName(approx->tier_used)).c_str(),
      static_cast<long long>(approx->cells_jumped),
      static_cast<long long>(approx->series.num_windows() *
                             data.num_series() * (data.num_series() - 1) / 2),
      static_cast<long long>(approx->jumps));

  // Auto under a tight deadline, twice: the streamed range above left every
  // window of this query cached, so the cost estimate discounts them all
  // and the server stays exact even at 1 ms — while an uncached threshold
  // family prices a full sweep above the deadline and routes to approx.
  QueryRequest auto_request = approx_request;
  auto_request.options.tier = ServeTier::kAuto;
  auto_request.options.deadline_ms = 1;
  auto warm_auto = server.Query(auto_request);
  if (warm_auto.ok()) {
    std::printf("auto, 1 ms deadline, warm:   served by the %s tier\n",
                std::string(ServeTierName(warm_auto->tier_used)).c_str());
  }
  auto_request.query.threshold = 0.8;  // an uncached threshold family
  auto cold_auto = server.Query(auto_request);
  if (cold_auto.ok()) {
    std::printf("auto, 1 ms deadline, cold:   served by the %s tier\n",
                std::string(ServeTierName(cold_auto->tier_used)).c_str());
  }

  const DangoronServerStats stats = server.stats();
  std::printf(
      "\nserver totals: queries=%lld (approx=%lld) prepares_built=%lld "
      "prepares_shared=%lld windows computed=%lld cached=%lld joined=%lld\n",
      static_cast<long long>(stats.queries),
      static_cast<long long>(stats.queries_approx),
      static_cast<long long>(stats.prepares_built),
      static_cast<long long>(stats.prepares_shared),
      static_cast<long long>(stats.windows_computed),
      static_cast<long long>(stats.windows_from_cache),
      static_cast<long long>(stats.windows_joined));
  std::printf("sketch cache: %lld entries, %.1f MiB; window cache: %lld "
              "entries, %.2f MiB\n",
              static_cast<long long>(stats.sketch_cache.entries),
              static_cast<double>(stats.sketch_cache.bytes) / (1 << 20),
              static_cast<long long>(stats.result_cache.entries),
              static_cast<double>(stats.result_cache.bytes) / (1 << 20));
  return 0;
}
