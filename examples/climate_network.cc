// Climate network example: the paper's end-to-end USCRN pipeline, offline.
//
// 1. Generate a synthetic station network and *write it in the real NOAA
//    USCRN hourly02 file format* (38 fixed fields, -9999 missing codes).
// 2. Load it back with the production parser (the same code path a real
//    NOAA download would take), synchronize and interpolate gaps.
// 3. Build dynamic correlation networks with Dangoron across a year of
//    sliding windows and report the "blinking links" statistics climate
//    papers track (edge churn between windows, Gozolchiani et al. 2008).
//
// To run on real data instead, download station files from
//   https://www.ncei.noaa.gov/pub/data/uscrn/products/hourly02/2020/
// and pass them as argv.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "engine/dangoron_engine.h"
#include "eval/table.h"
#include "network/network.h"
#include "ts/generators.h"
#include "ts/resample.h"
#include "ts/uscrn.h"

namespace dangoron {
namespace {

int Run(int argc, char** argv) {
  std::vector<std::string> station_files;

  std::filesystem::path temp_dir;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      station_files.emplace_back(argv[i]);
    }
    std::printf("loading %zu real USCRN station files\n",
                station_files.size());
  } else {
    // Synthesize 24 stations and round-trip them through the file format.
    temp_dir = std::filesystem::temp_directory_path() / "dangoron_climate";
    std::filesystem::create_directories(temp_dir);

    ClimateSpec spec;
    spec.num_stations = 24;
    spec.num_hours = 24 * 365;
    spec.missing_fraction = 0.01;  // realistic sensor dropouts
    spec.seed = 2020;
    auto dataset = GenerateClimate(spec);
    if (!dataset.ok()) {
      std::fprintf(stderr, "generate: %s\n",
                   dataset.status().ToString().c_str());
      return 1;
    }
    const int64_t start_hour = DaysFromCivil(2020, 1, 1) * 24;
    for (int64_t s = 0; s < spec.num_stations; ++s) {
      const StationInfo& station = dataset->stations[static_cast<size_t>(s)];
      const std::string path =
          (temp_dir / ("CRNH0203-2020-station" + std::to_string(s) + ".txt"))
              .string();
      const Status status =
          WriteUscrnFile(path, station.wbanno, station.longitude,
                         station.latitude, start_hour, dataset->data.Row(s));
      if (!status.ok()) {
        std::fprintf(stderr, "write: %s\n", status.ToString().c_str());
        return 1;
      }
      station_files.push_back(path);
    }
    std::printf("synthesized %zu stations in USCRN hourly02 format under "
                "%s\n",
                station_files.size(), temp_dir.string().c_str());
  }

  // Parse + synchronize + interpolate: the paper's data preparation.
  auto matrix = LoadUscrnStations(station_files);
  if (!matrix.ok()) {
    std::fprintf(stderr, "load: %s\n", matrix.status().ToString().c_str());
    return 1;
  }
  std::printf("parsed: %lld stations x %lld hours, %lld missing cells\n",
              static_cast<long long>(matrix->num_series()),
              static_cast<long long>(matrix->length()),
              static_cast<long long>(matrix->CountMissing()));
  if (Status status = InterpolateMissing(&*matrix); !status.ok()) {
    std::fprintf(stderr, "interpolate: %s\n", status.ToString().c_str());
    return 1;
  }

  // Dynamic network construction: 30-day windows, daily slide, beta = 0.8.
  DangoronEngine engine;
  if (Status status = engine.Prepare(*matrix); !status.ok()) {
    std::fprintf(stderr, "prepare: %s\n", status.ToString().c_str());
    return 1;
  }
  SlidingQuery query;
  query.start = 0;
  query.end = (matrix->length() / 24) * 24;  // align to whole days
  query.window = 24 * 30;
  query.step = 24;
  query.threshold = 0.8;
  auto result = engine.Query(query);
  if (!result.ok()) {
    std::fprintf(stderr, "query: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // Blinking-links report: network size and churn through the year.
  const DynamicsSummary dynamics = SummarizeDynamics(*result);
  Table table({"day", "edges", "density", "jaccard vs prev", "components",
               "clustering"});
  for (int64_t k = 0; k < result->num_windows(); k += 28) {
    const NetworkSnapshot network(matrix->num_series(),
                                  result->WindowEdges(k));
    const ComponentStats components = ComputeComponentStats(network);
    table.AddRow()
        .AddInt(k)
        .AddInt(dynamics.edges_per_window[static_cast<size_t>(k)])
        .AddPercent(dynamics.density_per_window[static_cast<size_t>(k)])
        .AddDouble(k > 0 ? dynamics.jaccard_per_step[static_cast<size_t>(k) - 1]
                         : 1.0,
                   3)
        .AddInt(components.num_components)
        .AddDouble(AverageClusteringCoefficient(network), 3);
  }
  std::printf("\n%s\n", table.ToString().c_str());
  std::printf("mean window-to-window edge Jaccard: %.3f "
              "(stable links; the complement blinks)\n",
              dynamics.mean_jaccard);

  if (!temp_dir.empty()) {
    std::filesystem::remove_all(temp_dir);
  }
  return 0;
}

}  // namespace
}  // namespace dangoron

int main(int argc, char** argv) { return dangoron::Run(argc, argv); }
