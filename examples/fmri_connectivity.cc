// Dynamic functional connectivity example — the paper's Figure 1 scenario.
//
// fMRI analyses track how the voxel-level correlation network evolves over
// the scan ("dynamic functional connectivity", Hutchison et al. 2013). This
// example synthesizes a voxel grid with region structure and hidden task
// blocks in which two regions co-activate, then:
//   1. builds the sliding-window correlation networks with Dangoron,
//   2. tracks the cross-region edge count over time,
//   3. flags windows whose cross-region connectivity spikes — and checks
//      the detections against the ground-truth task blocks.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "engine/dangoron_engine.h"
#include "eval/table.h"
#include "network/network.h"
#include "ts/generators.h"

namespace dangoron {
namespace {

int Run() {
  FmriSpec spec;
  spec.nx = 6;
  spec.ny = 6;
  spec.nz = 3;
  spec.num_regions = 9;
  spec.num_timepoints = 2400;
  spec.num_task_blocks = 2;
  spec.task_block_length = 400;
  spec.seed = 11;
  auto dataset = GenerateFmri(spec);
  if (!dataset.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  const TimeSeriesMatrix& data = dataset->data;
  std::printf("voxels: %lld (%lldx%lldx%lld grid, %lld regions), "
              "%lld timepoints\n",
              static_cast<long long>(data.num_series()),
              static_cast<long long>(spec.nx), static_cast<long long>(spec.ny),
              static_cast<long long>(spec.nz),
              static_cast<long long>(spec.num_regions),
              static_cast<long long>(data.length()));
  for (const auto& block : dataset->task_blocks) {
    std::printf("ground truth: regions %lld and %lld co-activate in "
                "t=[%lld, %lld)\n",
                static_cast<long long>(block.region_a),
                static_cast<long long>(block.region_b),
                static_cast<long long>(block.start),
                static_cast<long long>(block.end));
  }

  // Sliding connectivity: 160-timepoint windows, stride 40.
  DangoronOptions options;
  options.basic_window = 40;
  DangoronEngine engine(options);
  if (Status status = engine.Prepare(data); !status.ok()) {
    std::fprintf(stderr, "prepare: %s\n", status.ToString().c_str());
    return 1;
  }
  SlidingQuery query;
  query.start = 0;
  query.end = data.length();
  query.window = 160;
  query.step = 40;
  query.threshold = 0.55;
  auto result = engine.Query(query);
  if (!result.ok()) {
    std::fprintf(stderr, "query: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // Count cross-region edges per window (within-region edges are expected
  // from parcellation; *cross*-region edges are the dynamic signal).
  const int64_t windows = result->num_windows();
  std::vector<int64_t> cross_edges(static_cast<size_t>(windows), 0);
  for (int64_t k = 0; k < windows; ++k) {
    for (const Edge& edge : result->WindowEdges(k)) {
      if (dataset->voxel_region[static_cast<size_t>(edge.i)] !=
          dataset->voxel_region[static_cast<size_t>(edge.j)]) {
        ++cross_edges[static_cast<size_t>(k)];
      }
    }
  }

  // Robust baseline: median cross-edge count; spike = > 3x median + 5.
  std::vector<int64_t> sorted = cross_edges;
  std::nth_element(sorted.begin(), sorted.begin() + windows / 2,
                   sorted.end());
  const int64_t median = sorted[static_cast<size_t>(windows / 2)];
  const int64_t spike_bar = 3 * median + 5;

  Table table({"window", "t range", "edges", "cross-region", "spike?",
               "in task block?"});
  int64_t true_hits = 0;
  int64_t spikes = 0;
  int64_t windows_in_block = 0;
  for (int64_t k = 0; k < windows; ++k) {
    const int64_t t0 = query.start + k * query.step;
    const int64_t t1 = t0 + query.window;
    const bool spike = cross_edges[static_cast<size_t>(k)] > spike_bar;
    bool in_block = false;
    for (const auto& block : dataset->task_blocks) {
      // Window overlaps the block by at least half a window.
      const int64_t overlap =
          std::min(t1, block.end) - std::max(t0, block.start);
      if (overlap >= query.window / 2) {
        in_block = true;
      }
    }
    if (in_block) {
      ++windows_in_block;
    }
    if (spike) {
      ++spikes;
      if (in_block) {
        ++true_hits;
      }
    }
    if (spike || k % 10 == 0) {
      table.AddRow()
          .AddInt(k)
          .Add(std::to_string(t0) + "-" + std::to_string(t1))
          .AddInt(static_cast<int64_t>(result->WindowEdges(k).size()))
          .AddInt(cross_edges[static_cast<size_t>(k)])
          .Add(spike ? "SPIKE" : "")
          .Add(in_block ? "yes" : "");
    }
  }
  std::printf("\n%s\n", table.ToString().c_str());
  std::printf("spike detection: %lld spikes, %lld inside ground-truth task "
              "blocks (%lld windows overlap blocks)\n",
              static_cast<long long>(spikes),
              static_cast<long long>(true_hits),
              static_cast<long long>(windows_in_block));
  std::printf("engine stats: %lld/%lld cells skipped by jumps\n",
              static_cast<long long>(engine.stats().cells_jumped),
              static_cast<long long>(engine.stats().cells_total));
  return 0;
}

}  // namespace
}  // namespace dangoron

int main() { return dangoron::Run(); }
