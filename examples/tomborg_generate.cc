// Tomborg dataset generator CLI — the paper's second contribution as a
// standalone tool.
//
// Usage:
//   tomborg_generate [N] [L] [family] [envelope] [seed] [output.csv]
//
//   family:   uniform | normal | beta | block | hub | constant
//   envelope: white | pink | seasonal | highpass
//
// Generates a dataset whose pairwise correlations follow the chosen
// distribution and whose per-series spectra follow the chosen envelope,
// writes it as CSV (one series per row), and prints the realization report
// (target vs sample correlation error).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "tomborg/tomborg.h"
#include "ts/csv.h"

namespace dangoron {
namespace {

Result<CorrelationSpec> ParseFamily(const std::string& name) {
  CorrelationSpec spec;
  if (name == "uniform") {
    spec.family = CorrelationFamily::kUniform;
    spec.a = 0.1;
    spec.b = 0.9;
  } else if (name == "normal") {
    spec.family = CorrelationFamily::kClippedNormal;
    spec.a = 0.5;
    spec.b = 0.2;
  } else if (name == "beta") {
    spec.family = CorrelationFamily::kBeta;
    spec.a = 2.0;
    spec.b = 3.0;
    spec.lo = 0.0;
    spec.hi = 0.95;
  } else if (name == "block") {
    spec.family = CorrelationFamily::kBlock;
    spec.a = 0.85;
    spec.b = 0.15;
    spec.blocks = 4;
    spec.jitter = 0.03;
  } else if (name == "hub") {
    spec.family = CorrelationFamily::kHub;
    spec.a = 0.8;
    spec.b = 0.2;
    spec.hubs = 4;
    spec.jitter = 0.03;
  } else if (name == "constant") {
    spec.family = CorrelationFamily::kConstant;
    spec.a = 0.6;
  } else {
    return Status::InvalidArgument("unknown family: ", name);
  }
  return spec;
}

Result<SpectralEnvelope> ParseEnvelope(const std::string& name) {
  if (name == "white") {
    return SpectralEnvelope::kWhite;
  }
  if (name == "pink") {
    return SpectralEnvelope::kPink;
  }
  if (name == "seasonal") {
    return SpectralEnvelope::kSeasonal;
  }
  if (name == "highpass") {
    return SpectralEnvelope::kHighPass;
  }
  return Status::InvalidArgument("unknown envelope: ", name);
}

int Run(int argc, char** argv) {
  TomborgSpec spec;
  spec.num_series = argc > 1 ? std::atoll(argv[1]) : 32;
  spec.length = argc > 2 ? std::atoll(argv[2]) : 4096;
  const std::string family = argc > 3 ? argv[3] : "uniform";
  const std::string envelope = argc > 4 ? argv[4] : "pink";
  spec.seed = argc > 5 ? static_cast<uint64_t>(std::atoll(argv[5])) : 2023;
  const std::string output = argc > 6 ? argv[6] : "";

  {
    auto parsed = ParseFamily(family);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 1;
    }
    spec.correlation = *parsed;
  }
  {
    auto parsed = ParseEnvelope(envelope);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 1;
    }
    spec.envelope = *parsed;
  }

  std::printf("generating %s ...\n", spec.ToString().c_str());
  auto dataset = GenerateTomborg(spec);
  if (!dataset.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }

  auto error = MeasureRealization(dataset->data, dataset->target);
  if (!error.ok()) {
    std::fprintf(stderr, "measure: %s\n", error.status().ToString().c_str());
    return 1;
  }
  std::printf("realization: max |sample - target| = %.4f, rms = %.4f\n",
              error->max_abs, error->rms);

  // Print a corner of target vs realized for eyeballing.
  std::printf("target corner (and the full matrix realized on the data):\n");
  const int64_t show = std::min<int64_t>(5, spec.num_series);
  for (int64_t i = 0; i < show; ++i) {
    std::printf("  ");
    for (int64_t j = 0; j < show; ++j) {
      std::printf("%6.2f", dataset->target.At(i, j));
    }
    std::printf("\n");
  }

  if (!output.empty()) {
    if (Status status = WriteCsv(dataset->data, output); !status.ok()) {
      std::fprintf(stderr, "write: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%lld series x %lld values)\n", output.c_str(),
                static_cast<long long>(spec.num_series),
                static_cast<long long>(spec.length));
  } else {
    std::printf("no output path given; skipping CSV export\n");
  }
  return 0;
}

}  // namespace
}  // namespace dangoron

int main(int argc, char** argv) { return dangoron::Run(argc, argv); }
