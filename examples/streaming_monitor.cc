// Streaming monitor example: online network construction on live data.
//
// The paper's problem statement asks for "efficiency of network
// construction and updates for large-scale data to achieve interactivity".
// This example simulates a live feed (a regime-switching return stream
// arriving tick by tick), maintains the correlation network *online* with
// StreamingNetworkBuilder, and raises alerts the moment network density
// crosses a contagion threshold — without ever materializing the full
// history.

#include <cstdio>

#include "network/network.h"
#include "stream/streaming_builder.h"
#include "ts/generators.h"

namespace dangoron {
namespace {

int Run() {
  // The "live" source: regime-switching returns (see finance_contagion).
  FinanceSpec spec;
  spec.num_assets = 32;
  spec.num_steps = 4096;
  spec.calm_correlation = 0.12;
  spec.crisis_correlation = 0.7;
  spec.seed = 21;
  auto dataset = GenerateFinance(spec);
  if (!dataset.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }

  StreamingOptions options;
  options.basic_window = 16;
  options.window = 64;
  options.step = 16;
  options.threshold = 0.4;
  auto builder =
      StreamingNetworkBuilder::Create(spec.num_assets, options);
  if (!builder.ok()) {
    std::fprintf(stderr, "create: %s\n",
                 builder.status().ToString().c_str());
    return 1;
  }

  std::printf("streaming %lld ticks of %lld assets "
              "(window %lld, step %lld, beta %.2f)\n\n",
              static_cast<long long>(spec.num_steps),
              static_cast<long long>(spec.num_assets),
              static_cast<long long>(options.window),
              static_cast<long long>(options.step), options.threshold);

  const double alert_density = 0.25;
  bool alert_active = false;
  int64_t alerts = 0;
  int64_t alerts_during_crisis = 0;

  std::vector<double> column(static_cast<size_t>(spec.num_assets));
  for (int64_t t = 0; t < spec.num_steps; ++t) {
    for (int64_t a = 0; a < spec.num_assets; ++a) {
      column[static_cast<size_t>(a)] = dataset->returns.Get(a, t);
    }
    if (Status status = builder->Append(column); !status.ok()) {
      std::fprintf(stderr, "append: %s\n", status.ToString().c_str());
      return 1;
    }

    // Drain snapshots as they become ready (at most one per step boundary).
    while (builder->ReadySnapshots() > 0) {
      auto snapshot = builder->PopSnapshot();
      if (!snapshot.ok()) {
        std::fprintf(stderr, "pop: %s\n",
                     snapshot.status().ToString().c_str());
        return 1;
      }
      const NetworkSnapshot network(spec.num_assets, snapshot->edges);
      const double density = network.Density();
      const bool hot = density > alert_density;
      if (hot && !alert_active) {
        ++alerts;
        const bool in_crisis =
            dataset->crisis_regime[static_cast<size_t>(t - 1)] == 1;
        alerts_during_crisis += in_crisis ? 1 : 0;
        std::printf("tick %5lld  ALERT  density %.2f (%lld edges, "
                    "window %lld)%s\n",
                    static_cast<long long>(t), density,
                    static_cast<long long>(network.num_edges()),
                    static_cast<long long>(snapshot->window_index),
                    in_crisis ? "  [true crisis]" : "");
      } else if (!hot && alert_active) {
        std::printf("tick %5lld  clear  density %.2f\n",
                    static_cast<long long>(t), density);
      }
      alert_active = hot;
    }
  }

  std::printf("\n%lld alerts, %lld during true crisis regimes\n",
              static_cast<long long>(alerts),
              static_cast<long long>(alerts_during_crisis));
  std::printf("columns processed: %lld (memory stays O(N^2 * window), "
              "independent of stream length)\n",
              static_cast<long long>(builder->columns_seen()));
  return 0;
}

}  // namespace
}  // namespace dangoron

int main() { return dangoron::Run(); }
