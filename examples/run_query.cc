// run_query: the library as a command-line tool.
//
// Usage:
//   run_query <data.{csv,dgrn}> <engine>[:options] <window> <step> <beta>
//             [abs] [out.csv]
//
//   engine: naive | tsubasa | dangoron | parcorr, with factory options,
//           e.g. "dangoron:basic_window=24,jump=on,threads=4"
//   abs:    pass the literal token 'abs' for |corr| >= beta edges
//   out:    long-format CSV (window,i,j,correlation)
//
// Example:
//   ./build/examples/tomborg_generate 32 4096 block pink 1 /tmp/d.csv
//   ./build/examples/run_query /tmp/d.csv dangoron 512 128 0.8 /tmp/net.csv

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/stopwatch.h"
#include "common/strings.h"
#include "engine/factory.h"
#include "network/export.h"
#include "ts/csv.h"
#include "ts/dataset_io.h"
#include "ts/resample.h"

namespace dangoron {
namespace {

int Run(int argc, char** argv) {
  if (argc < 6) {
    std::fprintf(stderr,
                 "usage: %s <data.{csv,dgrn}> <engine>[:opts] <window> "
                 "<step> <beta> [abs] [out.csv]\n  engines: %s\n",
                 argv[0], KnownEngineNames().c_str());
    return 2;
  }
  const std::string data_path = argv[1];
  const std::string engine_spec = argv[2];

  // Load data: binary dataset or CSV by extension.
  Result<TimeSeriesMatrix> data =
      EndsWith(data_path, ".dgrn") ? LoadDataset(data_path)
                                   : LoadCsv(data_path);
  if (!data.ok()) {
    std::fprintf(stderr, "load: %s\n", data.status().ToString().c_str());
    return 1;
  }
  if (data->CountMissing() > 0) {
    std::printf("interpolating %lld missing cells\n",
                static_cast<long long>(data->CountMissing()));
    if (Status status = InterpolateMissing(&*data); !status.ok()) {
      std::fprintf(stderr, "interpolate: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  // Engine spec "name" or "name:options".
  std::string engine_name = engine_spec;
  std::string engine_options;
  if (const size_t colon = engine_spec.find(':');
      colon != std::string::npos) {
    engine_name = engine_spec.substr(0, colon);
    engine_options = engine_spec.substr(colon + 1);
  }
  auto engine = CreateEngine(engine_name, engine_options);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  SlidingQuery query;
  query.start = 0;
  query.end = data->length();
  query.window = std::atoll(argv[3]);
  query.step = std::atoll(argv[4]);
  query.threshold = std::atof(argv[5]);
  int next_arg = 6;
  if (argc > next_arg && std::string(argv[next_arg]) == "abs") {
    query.absolute = true;
    ++next_arg;
  }
  const std::string out_path = argc > next_arg ? argv[next_arg] : "";

  std::printf("data: %lld series x %lld points; engine: %s; query: %s%s\n",
              static_cast<long long>(data->num_series()),
              static_cast<long long>(data->length()),
              (*engine)->name().c_str(), query.ToString().c_str(),
              query.absolute ? " (absolute)" : "");

  Stopwatch prepare_watch;
  if (Status status = (*engine)->Prepare(*data); !status.ok()) {
    std::fprintf(stderr, "prepare: %s\n", status.ToString().c_str());
    return 1;
  }
  const double prepare_seconds = prepare_watch.ElapsedSeconds();

  Stopwatch query_watch;
  auto result = (*engine)->Query(query);
  if (!result.ok()) {
    std::fprintf(stderr, "query: %s\n", result.status().ToString().c_str());
    return 1;
  }
  const double query_seconds = query_watch.ElapsedSeconds();

  const EngineStats& stats = (*engine)->stats();
  std::printf("prepare %.3f s, query %.3f s; %lld windows, %lld edges "
              "(%lld/%lld cells evaluated, %lld jumped, %lld pruned)\n",
              prepare_seconds, query_seconds,
              static_cast<long long>(result->num_windows()),
              static_cast<long long>(result->TotalEdges()),
              static_cast<long long>(stats.cells_evaluated),
              static_cast<long long>(stats.cells_total),
              static_cast<long long>(stats.cells_jumped),
              static_cast<long long>(stats.cells_horizontal_pruned));

  if (!out_path.empty()) {
    if (Status status = WriteSeriesCsv(*result, out_path); !status.ok()) {
      std::fprintf(stderr, "export: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace dangoron

int main(int argc, char** argv) { return dangoron::Run(argc, argv); }
