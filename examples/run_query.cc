// run_query: the library as a command-line tool.
//
// Usage:
//   run_query <data.{csv,dgrn}> <engine>[:options] <window> <step> <beta>
//             [abs] [tier=exact|approx|auto] [deadline=<ms>]
//             [degrade=off|auto] [out.csv]
//
//   engine: naive | tsubasa | dangoron | parcorr, with factory options,
//           e.g. "dangoron:basic_window=24,jump=on,threads=4" — or
//           "serve[:server-options]" to run through DangoronServer's
//           QueryRequest surface (e.g. "serve:basic_window=24,threads=4"),
//           which is what the tier/deadline/degrade flags drive
//   abs:    pass the literal token 'abs' for |corr| >= beta edges
//   tier:   serve only — service tier of the request (default: the
//           server's default_tier, i.e. exact unless configured)
//   deadline: serve only — deadline in milliseconds (admission, auto tier,
//           and hard mid-run enforcement; 0 = no deadline)
//   degrade: serve only — degradation policy under pressure (auto serves
//           approx instead of failing a blown deadline estimate or a
//           mid-query resource exhaustion)
//   out:    long-format CSV (window,i,j,correlation)
//
// Exit codes: 0 success, 1 generic failure, 2 usage error, 3 the query
// failed on its deadline (DeadlineExceeded), 4 it was cancelled
// (Cancelled) — so scripted callers can tell a latency miss from a bug.
// The flag and exit-code tables live in examples/serve_flags.h, shared with
// serving_demo and dangoron_serverd; the help text renders from them.
//
// Examples:
//   ./build/examples/tomborg_generate 32 4096 block pink 1 /tmp/d.csv
//   ./build/examples/run_query /tmp/d.csv dangoron 512 128 0.8 /tmp/net.csv
//   ./build/examples/run_query /tmp/d.csv serve:basic_window=128 512 128 \
//       0.8 tier=approx deadline=50 /tmp/net.csv

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/stopwatch.h"
#include "common/strings.h"
#include "engine/factory.h"
#include "network/export.h"
#include "serve/server.h"
#include "serve_flags.h"
#include "ts/csv.h"
#include "ts/dataset_io.h"
#include "ts/resample.h"

namespace dangoron {
namespace {

// Runs `query` through a DangoronServer built from `server_options`,
// printing the request's tier/source accounting instead of EngineStats.
int RunServe(const TimeSeriesMatrix& data, const std::string& server_options,
             SlidingQuery query, const ParsedServeFlags& flags,
             const std::string& out_path) {
  auto server = CreateServer(server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "server: %s\n", server.status().ToString().c_str());
    return 1;
  }
  if (Status status = (*server)->AddDataset("data", data); !status.ok()) {
    std::fprintf(stderr, "AddDataset: %s\n", status.ToString().c_str());
    return 1;
  }

  QueryRequest request;
  request.dataset = "data";
  request.query = query;
  if (Status status = ApplyServeFlags(flags, &request.query, &request.options);
      !status.ok()) {
    std::fprintf(stderr, "flags: %s\n", status.ToString().c_str());
    return 2;
  }

  std::printf("data: %lld series x %lld points; engine: serve; query: %s\n",
              static_cast<long long>(data.num_series()),
              static_cast<long long>(data.length()),
              query.ToString().c_str());

  Stopwatch watch;
  auto result = (*server)->Query(request);
  if (!result.ok()) {
    std::fprintf(stderr, "query: %s\n", result.status().ToString().c_str());
    return ExitCodeFor(result.status());
  }
  const double seconds = watch.ElapsedSeconds();

  std::printf(
      "served %.3f s by the %s tier%s; %lld windows, %lld edges "
      "(prepare %s; %lld computed, %lld cached, %lld joined; "
      "%lld cells jumped in %lld jumps)\n",
      seconds, std::string(ServeTierName(result->tier_used)).c_str(),
      result->degraded ? " (degraded)" : "",
      static_cast<long long>(result->series.num_windows()),
      static_cast<long long>(result->series.TotalEdges()),
      result->prepared_from_cache ? "shared" : "built",
      static_cast<long long>(result->windows_computed),
      static_cast<long long>(result->windows_from_cache),
      static_cast<long long>(result->windows_joined),
      static_cast<long long>(result->cells_jumped),
      static_cast<long long>(result->jumps));

  if (!out_path.empty()) {
    if (Status status = WriteSeriesCsv(result->series, out_path);
        !status.ok()) {
      std::fprintf(stderr, "export: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 6) {
    std::fprintf(stderr,
                 "usage: %s <data.{csv,dgrn}> <engine>[:opts] <window> "
                 "<step> <beta> %s [out.csv]\n"
                 "  engines: %s, or serve[:server-options]\n"
                 "flags (serve engine, except abs):\n%s"
                 "exit codes:\n%s",
                 argv[0], ServeFlagUsage().c_str(), KnownEngineNames().c_str(),
                 ServeFlagHelp("  ").c_str(), ExitCodeHelp("  ").c_str());
    return 2;
  }
  const std::string data_path = argv[1];
  const std::string engine_spec = argv[2];

  // Load data: binary dataset or CSV by extension.
  Result<TimeSeriesMatrix> data =
      EndsWith(data_path, ".dgrn") ? LoadDataset(data_path)
                                   : LoadCsv(data_path);
  if (!data.ok()) {
    std::fprintf(stderr, "load: %s\n", data.status().ToString().c_str());
    return 1;
  }
  if (data->CountMissing() > 0) {
    std::printf("interpolating %lld missing cells\n",
                static_cast<long long>(data->CountMissing()));
    if (Status status = InterpolateMissing(&*data); !status.ok()) {
      std::fprintf(stderr, "interpolate: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  // Engine spec "name" or "name:options".
  std::string engine_name = engine_spec;
  std::string engine_options;
  if (const size_t colon = engine_spec.find(':');
      colon != std::string::npos) {
    engine_name = engine_spec.substr(0, colon);
    engine_options = engine_spec.substr(colon + 1);
  }

  SlidingQuery query;
  query.start = 0;
  query.end = data->length();
  query.window = std::atoll(argv[3]);
  query.step = std::atoll(argv[4]);
  query.threshold = std::atof(argv[5]);

  // Trailing flags, position-free (the historical 'abs then out.csv' order
  // keeps working): the shared serve-flag table, else the out path.
  ParsedServeFlags flags;
  std::string out_path;
  for (int a = 6; a < argc; ++a) {
    const std::string arg = argv[a];
    std::string error;
    switch (ParseServeFlag(arg, &flags, &error)) {
      case ServeFlagParse::kMatched:
        break;
      case ServeFlagParse::kError:
        std::fprintf(stderr, "%s\n", error.c_str());
        return 2;
      case ServeFlagParse::kNoMatch:
        out_path = arg;
        break;
    }
  }
  query.absolute = flags.absolute;

  if (engine_name == "serve") {
    return RunServe(*data, engine_options, query, flags, out_path);
  }
  if (flags.any_serve_option()) {
    std::fprintf(stderr,
                 "tier=/deadline=/degrade= are QueryRequest options: use the "
                 "'serve' engine (got engine '%s')\n",
                 engine_name.c_str());
    return 2;
  }

  auto engine = CreateEngine(engine_name, engine_options);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  std::printf("data: %lld series x %lld points; engine: %s; query: %s\n",
              static_cast<long long>(data->num_series()),
              static_cast<long long>(data->length()),
              (*engine)->name().c_str(), query.ToString().c_str());

  Stopwatch prepare_watch;
  if (Status status = (*engine)->Prepare(*data); !status.ok()) {
    std::fprintf(stderr, "prepare: %s\n", status.ToString().c_str());
    return 1;
  }
  const double prepare_seconds = prepare_watch.ElapsedSeconds();

  Stopwatch query_watch;
  auto result = (*engine)->Query(query);
  if (!result.ok()) {
    std::fprintf(stderr, "query: %s\n", result.status().ToString().c_str());
    return 1;
  }
  const double query_seconds = query_watch.ElapsedSeconds();

  const EngineStats& stats = (*engine)->stats();
  std::printf("prepare %.3f s, query %.3f s; %lld windows, %lld edges "
              "(%lld/%lld cells evaluated, %lld jumped, %lld pruned)\n",
              prepare_seconds, query_seconds,
              static_cast<long long>(result->num_windows()),
              static_cast<long long>(result->TotalEdges()),
              static_cast<long long>(stats.cells_evaluated),
              static_cast<long long>(stats.cells_total),
              static_cast<long long>(stats.cells_jumped),
              static_cast<long long>(stats.cells_horizontal_pruned));

  if (!out_path.empty()) {
    if (Status status = WriteSeriesCsv(*result, out_path); !status.ok()) {
      std::fprintf(stderr, "export: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace dangoron

int main(int argc, char** argv) { return dangoron::Run(argc, argv); }
