// Experiment E5: scaling in the number of series N.
//
// Both engines are quadratic in N (all-pairs), so times grow ~4x per N
// doubling; the *ratio* between them — Dangoron's advantage — should hold
// across the sweep. Uses a half-year of hourly data to keep the largest
// configuration's pair sketches in memory.

#include <cstdio>

#include "engine/dangoron_engine.h"
#include "engine/tsubasa_engine.h"
#include "eval/table.h"
#include "eval/workloads.h"

namespace dangoron {
namespace {

int Run() {
  std::printf("E5: scaling in N (half hourly year, l=30d, eta=1d, "
              "beta=0.8)\n\n");
  Table table({"N", "pairs", "tsubasa", "dangoron", "speedup",
               "sketch MiB", "prepare"});

  for (const int64_t n : {32, 64, 128, 192, 256}) {
    ClimateWorkload workload;
    workload.num_stations = n;
    workload.num_hours = 24 * 182;
    const auto data = workload.Generate();
    if (!data.ok()) {
      std::fprintf(stderr, "workload: %s\n",
                   data.status().ToString().c_str());
      return 1;
    }
    const SlidingQuery query = workload.DefaultQuery(0.8);

    double tsubasa_seconds = 0.0;
    {
      TsubasaEngine engine;
      const auto run = RunEngineTimed(&engine, *data, query, 2);
      if (!run.ok()) {
        std::fprintf(stderr, "tsubasa: %s\n",
                     run.status().ToString().c_str());
        return 1;
      }
      tsubasa_seconds = run->query_seconds;
    }

    DangoronOptions options;
    options.enable_jumping = true;
    DangoronEngine engine(options);
    const auto run = RunEngineTimed(&engine, *data, query, 2);
    if (!run.ok()) {
      std::fprintf(stderr, "dangoron: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }

    // Sketch memory: reproduce the index configuration to account bytes.
    BasicWindowIndexOptions index_options;
    index_options.basic_window = 24;
    const auto index = BasicWindowIndex::Build(*data, index_options);
    const double sketch_mib =
        index.ok() ? static_cast<double>(index->MemoryBytes()) / (1 << 20)
                   : 0.0;

    table.AddRow()
        .AddInt(n)
        .AddInt(n * (n - 1) / 2)
        .AddTime(tsubasa_seconds)
        .AddTime(run->query_seconds)
        .AddRatio(tsubasa_seconds / run->query_seconds)
        .AddDouble(sketch_mib, 1)
        .AddTime(run->prepare_seconds);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("expected shape: both quadratic in N; speedup roughly flat\n");
  return 0;
}

}  // namespace
}  // namespace dangoron

int main() { return dangoron::Run(); }
