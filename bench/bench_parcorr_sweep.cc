// Experiment E9: the ParCorr accuracy/time frontier over sketch dimension.
//
// ParCorr's only knob is d, the number of random projections: estimate
// error ~ 1/sqrt(d), per-cell cost ~ d. The sweep locates where ParCorr
// crosses the paper's 90% accuracy bar and what that costs relative to
// Dangoron, which achieves its accuracy without a value-precision tradeoff.

#include <cstdio>

#include "engine/dangoron_engine.h"
#include "engine/parcorr_engine.h"
#include "eval/table.h"
#include "eval/workloads.h"
#include "network/accuracy.h"

namespace dangoron {
namespace {

int Run() {
  ClimateWorkload workload;
  workload.num_stations = 64;
  workload.num_hours = 24 * 365;
  const auto data = workload.Generate();
  if (!data.ok()) {
    std::fprintf(stderr, "workload: %s\n", data.status().ToString().c_str());
    return 1;
  }
  const SlidingQuery query = workload.DefaultQuery(0.8);
  std::printf("E9: parcorr sketch-dimension sweep (N=64, hourly year, "
              "beta=0.8)\n\n");

  // Ground truth.
  DangoronOptions exact_options;
  exact_options.enable_jumping = false;
  DangoronEngine exact(exact_options);
  const auto truth = RunEngine(&exact, *data, query);
  if (!truth.ok()) {
    std::fprintf(stderr, "truth: %s\n", truth.status().ToString().c_str());
    return 1;
  }

  Table table({"engine", "F1", "precision", "recall", "value RMSE",
               "query", "prepare"});

  for (const int32_t d : {8, 16, 32, 64, 128, 256}) {
    ParCorrOptions options;
    options.sketch_dim = d;
    ParCorrEngine engine(options);
    const auto run = RunEngineTimed(&engine, *data, query, 2);
    if (!run.ok()) {
      std::fprintf(stderr, "d=%d: %s\n", d, run.status().ToString().c_str());
      return 1;
    }
    const auto accuracy = CompareSeries(truth->result, run->result);
    if (!accuracy.ok()) {
      std::fprintf(stderr, "accuracy: %s\n",
                   accuracy.status().ToString().c_str());
      return 1;
    }
    table.AddRow()
        .Add("parcorr d=" + std::to_string(d))
        .AddPercent(accuracy->total.F1())
        .AddPercent(accuracy->total.Precision())
        .AddPercent(accuracy->total.Recall())
        .AddDouble(accuracy->total.value_rmse, 4)
        .AddTime(run->query_seconds)
        .AddTime(run->prepare_seconds);
  }

  // Verified variant: 2-sigma candidate margin, candidates re-checked
  // exactly (the deployed ParCorr protocol).
  {
    ParCorrOptions options;
    options.sketch_dim = 64;
    options.verify_candidates = true;
    options.candidate_margin = 0.25;
    ParCorrEngine engine(options);
    const auto run = RunEngineTimed(&engine, *data, query, 2);
    if (!run.ok()) {
      std::fprintf(stderr, "verified: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
    const auto accuracy = CompareSeries(truth->result, run->result);
    table.AddRow()
        .Add("parcorr d=64+verify")
        .AddPercent(accuracy.ok() ? accuracy->total.F1() : 0.0)
        .AddPercent(accuracy.ok() ? accuracy->total.Precision() : 0.0)
        .AddPercent(accuracy.ok() ? accuracy->total.Recall() : 0.0)
        .AddDouble(accuracy.ok() ? accuracy->total.value_rmse : -1.0, 4)
        .AddTime(run->query_seconds)
        .AddTime(run->prepare_seconds);
  }

  // Dangoron reference row.
  {
    DangoronOptions options;
    options.enable_jumping = true;
    DangoronEngine engine(options);
    const auto run = RunEngineTimed(&engine, *data, query, 2);
    if (!run.ok()) {
      std::fprintf(stderr, "dangoron: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
    const auto accuracy = CompareSeries(truth->result, run->result);
    table.AddRow()
        .Add("dangoron (jump)")
        .AddPercent(accuracy.ok() ? accuracy->total.F1() : 0.0)
        .AddPercent(accuracy.ok() ? accuracy->total.Precision() : 0.0)
        .AddPercent(accuracy.ok() ? accuracy->total.Recall() : 0.0)
        .AddDouble(accuracy.ok() ? accuracy->total.value_rmse : -1.0, 4)
        .AddTime(run->query_seconds)
        .AddTime(run->prepare_seconds);
  }

  std::printf("%s\n", table.ToString().c_str());
  std::printf("expected shape: F1 rises with d (error ~ 1/sqrt(d)); "
              "dangoron reaches higher F1 with zero value RMSE\n");
  return 0;
}

}  // namespace
}  // namespace dangoron

int main() { return dangoron::Run(); }
