// Experiment E1 (paper claim C1): pure query time of Dangoron vs TSUBASA
// (and the naive brute force) on the USCRN-like climate workload.
//
// The paper reports Dangoron "an order of magnitude faster than TSUBASA in
// terms of pure query time" on NOAA hourly data. This binary reproduces the
// comparison: same data, same query, prepare (index build) timed separately,
// query repeated and the minimum reported. Thresholds 0.8 and 0.9 bracket
// the network densities climate analyses use.
//
// Expected shape: dangoron ~10x tsubasa, growing with beta; the incremental
// (no-jump) mode already wins by reusing overlap, the jump mode adds the
// Eq. 2 skipping on top.

#include <cstdio>
#include <memory>

#include "engine/dangoron_engine.h"
#include "engine/naive_engine.h"
#include "engine/tsubasa_engine.h"
#include "eval/table.h"
#include "eval/workloads.h"

namespace dangoron {
namespace {

int Run() {
  ClimateWorkload workload;
  workload.num_stations = 128;
  workload.num_hours = 24 * 365;
  const auto data = workload.Generate();
  if (!data.ok()) {
    std::fprintf(stderr, "workload: %s\n", data.status().ToString().c_str());
    return 1;
  }

  std::printf("E1: pure query time, climate workload "
              "(N=%lld stations, L=%lld hours, l=30d, eta=1d)\n\n",
              static_cast<long long>(workload.num_stations),
              static_cast<long long>(workload.num_hours));

  Table table({"beta", "engine", "prepare", "query", "speedup vs tsubasa",
               "cells evaluated", "cells jumped", "edges"});

  for (const double beta : {0.8, 0.9}) {
    const SlidingQuery query = workload.DefaultQuery(beta);
    double tsubasa_seconds = 0.0;

    {
      TsubasaEngine engine;
      const auto run = RunEngineTimed(&engine, *data, query, 3);
      if (!run.ok()) {
        std::fprintf(stderr, "tsubasa: %s\n",
                     run.status().ToString().c_str());
        return 1;
      }
      tsubasa_seconds = run->query_seconds;
      table.AddRow()
          .AddDouble(beta, 2)
          .Add("tsubasa")
          .AddTime(run->prepare_seconds)
          .AddTime(run->query_seconds)
          .AddRatio(1.0)
          .AddInt(run->stats.cells_evaluated)
          .AddInt(run->stats.cells_jumped)
          .AddInt(run->result.TotalEdges());
    }

    if (beta == 0.8) {
      // The brute force is run once; it is threshold independent in cost.
      NaiveEngine engine;
      const auto run = RunEngineTimed(&engine, *data, query, 1);
      if (!run.ok()) {
        std::fprintf(stderr, "naive: %s\n", run.status().ToString().c_str());
        return 1;
      }
      table.AddRow()
          .AddDouble(beta, 2)
          .Add("naive")
          .AddTime(run->prepare_seconds)
          .AddTime(run->query_seconds)
          .AddRatio(tsubasa_seconds / run->query_seconds)
          .AddInt(run->stats.cells_evaluated)
          .AddInt(run->stats.cells_jumped)
          .AddInt(run->result.TotalEdges());
    }

    {
      DangoronOptions options;
      options.enable_jumping = false;
      DangoronEngine engine(options);
      const auto run = RunEngineTimed(&engine, *data, query, 3);
      if (!run.ok()) {
        std::fprintf(stderr, "dangoron-incremental: %s\n",
                     run.status().ToString().c_str());
        return 1;
      }
      table.AddRow()
          .AddDouble(beta, 2)
          .Add("dangoron-incremental")
          .AddTime(run->prepare_seconds)
          .AddTime(run->query_seconds)
          .AddRatio(tsubasa_seconds / run->query_seconds)
          .AddInt(run->stats.cells_evaluated)
          .AddInt(run->stats.cells_jumped)
          .AddInt(run->result.TotalEdges());
    }

    {
      DangoronOptions options;
      options.enable_jumping = true;
      DangoronEngine engine(options);
      const auto run = RunEngineTimed(&engine, *data, query, 3);
      if (!run.ok()) {
        std::fprintf(stderr, "dangoron: %s\n",
                     run.status().ToString().c_str());
        return 1;
      }
      table.AddRow()
          .AddDouble(beta, 2)
          .Add("dangoron (jump)")
          .AddTime(run->prepare_seconds)
          .AddTime(run->query_seconds)
          .AddRatio(tsubasa_seconds / run->query_seconds)
          .AddInt(run->stats.cells_evaluated)
          .AddInt(run->stats.cells_jumped)
          .AddInt(run->result.TotalEdges());
    }
  }

  std::printf("%s\n", table.ToString().c_str());
  std::printf("paper claim C1: dangoron >= 10x tsubasa on pure query time\n");
  return 0;
}

}  // namespace
}  // namespace dangoron

int main() { return dangoron::Run(); }
