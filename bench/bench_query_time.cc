// Experiment E1 (paper claim C1): pure query time of Dangoron vs TSUBASA
// (and the naive brute force) on the USCRN-like climate workload.
//
// The paper reports Dangoron "an order of magnitude faster than TSUBASA in
// terms of pure query time" on NOAA hourly data. This binary reproduces the
// comparison: same data, same query, prepare (index build) timed separately,
// query repeated and the minimum reported. Thresholds 0.8 and 0.9 bracket
// the network densities climate analyses use.
//
// Expected shape: dangoron ~10x tsubasa, growing with beta; the incremental
// (no-jump) mode already wins by reusing overlap, the jump mode adds the
// Eq. 2 skipping on top.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string_view>

#include "common/stopwatch.h"
#include "engine/dangoron_engine.h"
#include "engine/naive_engine.h"
#include "engine/tsubasa_engine.h"
#include "engine/window_sink.h"
#include "eval/table.h"
#include "eval/workloads.h"

namespace dangoron {
namespace {

int Run() {
  ClimateWorkload workload;
  workload.num_stations = 128;
  workload.num_hours = 24 * 365;
  const auto data = workload.Generate();
  if (!data.ok()) {
    std::fprintf(stderr, "workload: %s\n", data.status().ToString().c_str());
    return 1;
  }

  std::printf("E1: pure query time, climate workload "
              "(N=%lld stations, L=%lld hours, l=30d, eta=1d)\n\n",
              static_cast<long long>(workload.num_stations),
              static_cast<long long>(workload.num_hours));

  Table table({"beta", "engine", "prepare", "query", "speedup vs tsubasa",
               "cells evaluated", "cells jumped", "edges"});

  for (const double beta : {0.8, 0.9}) {
    const SlidingQuery query = workload.DefaultQuery(beta);
    double tsubasa_seconds = 0.0;

    {
      TsubasaEngine engine;
      const auto run = RunEngineTimed(&engine, *data, query, 3);
      if (!run.ok()) {
        std::fprintf(stderr, "tsubasa: %s\n",
                     run.status().ToString().c_str());
        return 1;
      }
      tsubasa_seconds = run->query_seconds;
      table.AddRow()
          .AddDouble(beta, 2)
          .Add("tsubasa")
          .AddTime(run->prepare_seconds)
          .AddTime(run->query_seconds)
          .AddRatio(1.0)
          .AddInt(run->stats.cells_evaluated)
          .AddInt(run->stats.cells_jumped)
          .AddInt(run->result.TotalEdges());
    }

    if (beta == 0.8) {
      // The brute force is run once; it is threshold independent in cost.
      NaiveEngine engine;
      const auto run = RunEngineTimed(&engine, *data, query, 1);
      if (!run.ok()) {
        std::fprintf(stderr, "naive: %s\n", run.status().ToString().c_str());
        return 1;
      }
      table.AddRow()
          .AddDouble(beta, 2)
          .Add("naive")
          .AddTime(run->prepare_seconds)
          .AddTime(run->query_seconds)
          .AddRatio(tsubasa_seconds / run->query_seconds)
          .AddInt(run->stats.cells_evaluated)
          .AddInt(run->stats.cells_jumped)
          .AddInt(run->result.TotalEdges());
    }

    {
      DangoronOptions options;
      options.enable_jumping = false;
      DangoronEngine engine(options);
      const auto run = RunEngineTimed(&engine, *data, query, 3);
      if (!run.ok()) {
        std::fprintf(stderr, "dangoron-incremental: %s\n",
                     run.status().ToString().c_str());
        return 1;
      }
      table.AddRow()
          .AddDouble(beta, 2)
          .Add("dangoron-incremental")
          .AddTime(run->prepare_seconds)
          .AddTime(run->query_seconds)
          .AddRatio(tsubasa_seconds / run->query_seconds)
          .AddInt(run->stats.cells_evaluated)
          .AddInt(run->stats.cells_jumped)
          .AddInt(run->result.TotalEdges());
    }

    {
      DangoronOptions options;
      options.enable_jumping = true;
      DangoronEngine engine(options);
      const auto run = RunEngineTimed(&engine, *data, query, 3);
      if (!run.ok()) {
        std::fprintf(stderr, "dangoron: %s\n",
                     run.status().ToString().c_str());
        return 1;
      }
      table.AddRow()
          .AddDouble(beta, 2)
          .Add("dangoron (jump)")
          .AddTime(run->prepare_seconds)
          .AddTime(run->query_seconds)
          .AddRatio(tsubasa_seconds / run->query_seconds)
          .AddInt(run->stats.cells_evaluated)
          .AddInt(run->stats.cells_jumped)
          .AddInt(run->result.TotalEdges());
    }
  }

  std::printf("%s\n", table.ToString().c_str());
  std::printf("paper claim C1: dangoron >= 10x tsubasa on pure query time\n");
  return 0;
}

// ------------------------------------------ scalar vs sweep kernel JSON --

// Swallows every window, recording time-to-first-window: the engine-level
// streaming measure (exact mode emits window 0 after one window's sweep).
class TtfwSink final : public WindowSink {
 public:
  Status OnBegin(const SlidingQuery& query, int64_t num_series) override {
    (void)query;
    (void)num_series;
    timer_.Reset();
    first_window_seconds_ = -1.0;
    return Status::Ok();
  }
  bool OnWindow(int64_t window_index, std::vector<Edge> edges) override {
    (void)window_index;
    (void)edges;
    if (first_window_seconds_ < 0.0) {
      first_window_seconds_ = timer_.ElapsedSeconds();
    }
    return true;
  }
  double first_window_seconds() const { return first_window_seconds_; }

 private:
  Stopwatch timer_;
  double first_window_seconds_ = -1.0;
};

// Best-of-`reps` pure query time of the exact (jump=off) path against a
// prebuilt index, single-threaded so the scalar/sweep ratio measures the
// kernels, not the pool. Returns a negative value on failure.
double TimeQuerySeconds(const DangoronOptions& options,
                        const BasicWindowIndex& index,
                        const SlidingQuery& query, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Stopwatch timer;
    auto result = DangoronEngine::QueryPrepared(options, index, query,
                                                /*pool=*/nullptr,
                                                /*stats=*/nullptr);
    if (!result.ok()) {
      std::fprintf(stderr, "query: %s\n", result.status().ToString().c_str());
      return -1.0;
    }
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

// Machine-readable record of the exact-query sweep comparison, one JSON
// object per problem size: the scalar pair-major cell loop
// (use_sweep_kernel=off, the differential oracle) vs the vectorized
// window-major sweep, plus the engine's time-to-first-window. The speedup
// and the ttfw/full ratio are within-run and hardware-normalized — what
// scripts/check_bench_regression.py gates. Returns false when any
// measurement failed (so the caller exits nonzero and CI reports the
// failure directly instead of gating on a half-written file).
bool WriteQueryComparisonJson(const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return false;
  }
  bool ok = true;
  std::fprintf(out, "[\n");
  bool first = true;
  for (const int64_t n : {64, 256, 512}) {
    ClimateWorkload workload;
    workload.num_stations = n;
    workload.num_hours = 24 * 90;
    const auto data = workload.Generate();
    if (!data.ok()) {
      std::fprintf(stderr, "workload: %s\n",
                   data.status().ToString().c_str());
      ok = false;
      break;
    }
    const SlidingQuery query = workload.DefaultQuery(0.7);

    DangoronOptions options;
    options.enable_jumping = false;
    auto index = DangoronEngine::BuildIndex(*data, options, /*pool=*/nullptr);
    if (!index.ok()) {
      std::fprintf(stderr, "build: %s\n", index.status().ToString().c_str());
      ok = false;
      break;
    }

    options.use_sweep_kernel = false;
    const double scalar_s = TimeQuerySeconds(options, *index, query, 3);
    options.use_sweep_kernel = true;
    const double sweep_s = TimeQuerySeconds(options, *index, query, 3);
    if (scalar_s < 0.0 || sweep_s < 0.0) {
      ok = false;
      break;
    }

    // Time-to-first-window of the sweep path (informational fraction; the
    // gate only requires first < full).
    double ttfw_s = -1.0;
    double full_s = -1.0;
    for (int r = 0; r < 3; ++r) {
      TtfwSink sink;
      Stopwatch timer;
      const Status status = DangoronEngine::QueryPreparedToSink(
          options, *index, query, /*pool=*/nullptr, /*stats=*/nullptr, &sink);
      if (!status.ok()) {
        std::fprintf(stderr, "ttfw: %s\n", status.ToString().c_str());
        break;
      }
      const double elapsed = timer.ElapsedSeconds();
      if (full_s < 0.0 || elapsed < full_s) {
        full_s = elapsed;
        ttfw_s = sink.first_window_seconds();
      }
    }
    if (full_s <= 0.0 || ttfw_s < 0.0) {
      ok = false;
      break;
    }

    const int64_t num_pairs = n * (n - 1) / 2;
    const double cells = static_cast<double>(num_pairs) *
                         static_cast<double>(query.NumWindows());
    std::fprintf(
        out,
        "%s  {\"bench\": \"query_sweep\", \"n_series\": %lld, "
        "\"num_windows\": %lld, \"num_pairs\": %lld,\n"
        "   \"scalar_ms\": %.3f, \"sweep_ms\": %.3f, "
        "\"scalar_ns_per_cell\": %.3f, \"sweep_ns_per_cell\": %.3f,\n"
        "   \"speedup\": %.3f, \"ttfw_ms\": %.4f, \"full_ms\": %.3f, "
        "\"ttfw_fraction\": %.4f}",
        first ? "" : ",\n", static_cast<long long>(n),
        static_cast<long long>(query.NumWindows()),
        static_cast<long long>(num_pairs), scalar_s * 1e3, sweep_s * 1e3,
        scalar_s / cells * 1e9, sweep_s / cells * 1e9, scalar_s / sweep_s,
        ttfw_s * 1e3, full_s * 1e3, ttfw_s / full_s);
    first = false;
    std::fprintf(stderr,
                 "query sweep n=%lld: scalar %.1f ms, sweep %.1f ms, "
                 "speedup %.2fx, ttfw %.2f ms (%.1f%% of full)\n",
                 static_cast<long long>(n), scalar_s * 1e3, sweep_s * 1e3,
                 scalar_s / sweep_s, ttfw_s * 1e3, ttfw_s / full_s * 1e2);
  }
  std::fprintf(out, "\n]\n");
  std::fclose(out);
  return ok;
}

}  // namespace
}  // namespace dangoron

int main(int argc, char** argv) {
  // --query_comparison=only emits BENCH_query.json without the E1 table
  // (the CI bench-smoke mode); =off runs the table only; default runs both
  // (and overwrites BENCH_query.json in the cwd, like the other benches).
  bool table = true;
  bool comparison = true;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--query_comparison=only") {
      table = false;
    } else if (arg == "--query_comparison=off") {
      comparison = false;
    } else if (arg == "--query_comparison=on") {
      comparison = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (table) {
    const int status = dangoron::Run();
    if (status != 0) {
      return status;
    }
  }
  if (comparison && !dangoron::WriteQueryComparisonJson("BENCH_query.json")) {
    return 1;
  }
  return 0;
}
