// Experiment E7 (paper contribution 2): the Tomborg robustness benchmark.
//
// Tomborg generates datasets with a controlled correlation distribution and
// a controlled spectral envelope; engines are then scored on speed and
// accuracy per cell of the (distribution x envelope) grid. The paper argues
// existing techniques are data dependent — frequency-transform methods only
// work "when energy concentrates in a few domains" — so this is the grid a
// robustness claim must survive.

#include <cstdio>

#include "engine/dangoron_engine.h"
#include "engine/parcorr_engine.h"
#include "engine/tsubasa_engine.h"
#include "eval/table.h"
#include "eval/workloads.h"
#include "network/accuracy.h"
#include "tomborg/tomborg.h"

namespace dangoron {
namespace {

int Run() {
  std::printf("E7: Tomborg robustness grid "
              "(N=48, L=8760, l=30d, eta=1d, beta=0.8)\n\n");

  struct DistributionCase {
    const char* name;
    CorrelationSpec spec;
  };
  std::vector<DistributionCase> distributions;
  {
    CorrelationSpec uniform;
    uniform.family = CorrelationFamily::kUniform;
    uniform.a = 0.2;
    uniform.b = 0.95;
    distributions.push_back({"uniform[.2,.95]", uniform});

    CorrelationSpec normal;
    normal.family = CorrelationFamily::kClippedNormal;
    normal.a = 0.75;
    normal.b = 0.12;
    distributions.push_back({"normal(.75,.12)", normal});

    CorrelationSpec block;
    block.family = CorrelationFamily::kBlock;
    block.a = 0.85;
    block.b = 0.2;
    block.blocks = 6;
    block.jitter = 0.04;
    distributions.push_back({"block(6)", block});

    CorrelationSpec hub;
    hub.family = CorrelationFamily::kHub;
    hub.a = 0.8;
    hub.b = 0.3;
    hub.hubs = 6;
    hub.jitter = 0.04;
    distributions.push_back({"hub(6)", hub});
  }

  const SpectralEnvelope envelopes[] = {
      SpectralEnvelope::kWhite, SpectralEnvelope::kPink,
      SpectralEnvelope::kSeasonal, SpectralEnvelope::kHighPass};
  const char* envelope_names[] = {"white", "pink", "seasonal", "highpass"};

  Table table({"distribution", "envelope", "realized max|err|",
               "dangoron F1", "dangoron speedup", "parcorr F1",
               "edge density"});

  for (const DistributionCase& distribution : distributions) {
    for (size_t e = 0; e < 4; ++e) {
      TomborgSpec spec;
      spec.num_series = 48;
      spec.length = 24 * 365;
      spec.correlation = distribution.spec;
      spec.envelope = envelopes[e];
      spec.seed = 9000 + e;
      const auto dataset = GenerateTomborg(spec);
      if (!dataset.ok()) {
        std::fprintf(stderr, "tomborg: %s\n",
                     dataset.status().ToString().c_str());
        return 1;
      }
      const auto realization =
          MeasureRealization(dataset->data, dataset->target);

      SlidingQuery query;
      query.start = 0;
      query.end = spec.length;
      query.window = 24 * 30;
      query.step = 24;
      query.threshold = 0.8;

      TsubasaEngine tsubasa;
      const auto truth = RunEngineTimed(&tsubasa, dataset->data, query, 2);
      if (!truth.ok()) {
        std::fprintf(stderr, "tsubasa: %s\n",
                     truth.status().ToString().c_str());
        return 1;
      }

      DangoronOptions options;
      options.enable_jumping = true;
      DangoronEngine dangoron(options);
      const auto dangoron_run =
          RunEngineTimed(&dangoron, dataset->data, query, 2);
      if (!dangoron_run.ok()) {
        std::fprintf(stderr, "dangoron: %s\n",
                     dangoron_run.status().ToString().c_str());
        return 1;
      }
      const auto dangoron_accuracy =
          CompareSeries(truth->result, dangoron_run->result);

      ParCorrOptions parcorr_options;
      parcorr_options.sketch_dim = 64;
      ParCorrEngine parcorr(parcorr_options);
      const auto parcorr_run = RunEngine(&parcorr, dataset->data, query);
      if (!parcorr_run.ok()) {
        std::fprintf(stderr, "parcorr: %s\n",
                     parcorr_run.status().ToString().c_str());
        return 1;
      }
      const auto parcorr_accuracy =
          CompareSeries(truth->result, parcorr_run->result);

      table.AddRow()
          .Add(distribution.name)
          .Add(envelope_names[e])
          .AddDouble(realization.ok() ? realization->max_abs : -1.0, 3)
          .AddPercent(dangoron_accuracy.ok() ? dangoron_accuracy->total.F1()
                                             : 0.0)
          .AddRatio(truth->query_seconds / dangoron_run->query_seconds)
          .AddPercent(parcorr_accuracy.ok() ? parcorr_accuracy->total.F1()
                                            : 0.0)
          .AddPercent(
              static_cast<double>(truth->result.TotalEdges()) /
              static_cast<double>(truth->stats.cells_total));
    }
  }

  std::printf("%s\n", table.ToString().c_str());
  std::printf("expected shape: dangoron F1 high across the whole grid "
              "(robust); envelope shifts do not break it\n");
  return 0;
}

}  // namespace
}  // namespace dangoron

int main() { return dangoron::Run(); }
