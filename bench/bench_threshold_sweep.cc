// Experiment E4: engine behaviour across the threshold beta.
//
// The jump budget of Eq. 2 grows with the gap between the running
// correlation and beta, so skip rates — and with them Dangoron's advantage —
// rise with the threshold. This sweep quantifies that and reports edge
// density so the reader can see the workload's selectivity at each beta.

#include <cstdio>

#include "engine/dangoron_engine.h"
#include "engine/tsubasa_engine.h"
#include "eval/table.h"
#include "eval/workloads.h"
#include "network/accuracy.h"

namespace dangoron {
namespace {

int Run() {
  ClimateWorkload workload;
  workload.num_stations = 96;
  workload.num_hours = 24 * 365;
  const auto data = workload.Generate();
  if (!data.ok()) {
    std::fprintf(stderr, "workload: %s\n", data.status().ToString().c_str());
    return 1;
  }
  std::printf("E4: threshold sweep (N=%lld, hourly year, l=30d, eta=1d)\n\n",
              static_cast<long long>(workload.num_stations));

  Table table({"beta", "tsubasa", "dangoron", "speedup", "skip rate",
               "edge density", "F1 vs exact"});

  for (const double beta : {0.5, 0.6, 0.7, 0.8, 0.9, 0.95}) {
    const SlidingQuery query = workload.DefaultQuery(beta);

    TsubasaEngine tsubasa;
    const auto tsubasa_run = RunEngineTimed(&tsubasa, *data, query, 2);
    if (!tsubasa_run.ok()) {
      std::fprintf(stderr, "tsubasa: %s\n",
                   tsubasa_run.status().ToString().c_str());
      return 1;
    }

    DangoronOptions options;
    options.enable_jumping = true;
    DangoronEngine dangoron(options);
    const auto dangoron_run = RunEngineTimed(&dangoron, *data, query, 2);
    if (!dangoron_run.ok()) {
      std::fprintf(stderr, "dangoron: %s\n",
                   dangoron_run.status().ToString().c_str());
      return 1;
    }

    const auto accuracy =
        CompareSeries(tsubasa_run->result, dangoron_run->result);
    if (!accuracy.ok()) {
      std::fprintf(stderr, "accuracy: %s\n",
                   accuracy.status().ToString().c_str());
      return 1;
    }

    const EngineStats& stats = dangoron_run->stats;
    const double density =
        static_cast<double>(tsubasa_run->result.TotalEdges()) /
        static_cast<double>(stats.cells_total);
    table.AddRow()
        .AddDouble(beta, 2)
        .AddTime(tsubasa_run->query_seconds)
        .AddTime(dangoron_run->query_seconds)
        .AddRatio(tsubasa_run->query_seconds / dangoron_run->query_seconds)
        .AddPercent(static_cast<double>(stats.cells_jumped) /
                    static_cast<double>(stats.cells_total))
        .AddPercent(density)
        .AddPercent(accuracy->total.F1());
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("expected shape: skip rate and speedup grow with beta; "
              "F1 stays >= ~90%%\n");
  return 0;
}

}  // namespace
}  // namespace dangoron

int main() { return dangoron::Run(); }
