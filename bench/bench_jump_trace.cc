// Experiment E3 (paper Figure 2): the jumping structure of Dangoron.
//
// Figure 2 illustrates a single pair walking across sliding windows:
// exact evaluations (blue = below threshold), an upper-bound binary search
// fixing the jump length (red = bound crossing), skipped windows (green).
// This binary reconstructs that trace on a real pair and prints the
// skip map plus aggregate jump statistics per threshold.

#include <cstdio>

#include "bound/bounds.h"
#include "engine/dangoron_engine.h"
#include "eval/table.h"
#include "eval/workloads.h"
#include "sketch/basic_window_index.h"

namespace dangoron {
namespace {

int Run() {
  ClimateWorkload workload;
  workload.num_stations = 32;
  workload.num_hours = 24 * 365;
  const auto data = workload.Generate();
  if (!data.ok()) {
    std::fprintf(stderr, "workload: %s\n", data.status().ToString().c_str());
    return 1;
  }

  const int64_t b = 24;
  BasicWindowIndexOptions index_options;
  index_options.basic_window = b;
  const auto index = BasicWindowIndex::Build(*data, index_options);
  if (!index.ok()) {
    std::fprintf(stderr, "index: %s\n", index.status().ToString().c_str());
    return 1;
  }

  const SlidingQuery query = workload.DefaultQuery(0.8);
  const int64_t ns = query.window / b;
  const int64_t m = query.step / b;
  const int64_t num_windows = query.NumWindows();
  const TemporalBound bound(&*index, ns, m);

  // Pick the pair with the most volatile correlation (crosses the threshold
  // both ways) so the trace shows all three cell kinds of Figure 2.
  int64_t best_pair = 0;
  int64_t best_crossings = -1;
  for (int64_t p = 0; p < index->num_pairs(); ++p) {
    int64_t crossings = 0;
    bool above = false;
    for (int64_t k = 0; k < num_windows; ++k) {
      const bool now =
          index->PairRangeCorrelation(p, k * m, k * m + ns) >= query.threshold;
      if (k > 0 && now != above) {
        ++crossings;
      }
      above = now;
    }
    if (crossings > best_crossings) {
      best_crossings = crossings;
      best_pair = p;
    }
  }
  int64_t i = 0;
  int64_t j = 0;
  BasicWindowIndex::PairFromId(best_pair, index->num_series(), &i, &j);
  std::printf("E3: jump trace of pair (%lld, %lld), beta=%.2f, %lld windows, "
              "%lld threshold crossings\n\n",
              static_cast<long long>(i), static_cast<long long>(j),
              query.threshold, static_cast<long long>(num_windows),
              static_cast<long long>(best_crossings));

  // Walk the pair exactly as DangoronEngine does, recording the map:
  //   E = exact evaluation below threshold (blue in Figure 2)
  //   # = exact evaluation at/above threshold (edge emitted)
  //   . = window skipped by a jump (green)
  std::string map(static_cast<size_t>(num_windows), '?');
  int64_t jumps = 0;
  int64_t skipped = 0;
  int64_t evaluated = 0;
  int64_t k = 0;
  while (k < num_windows) {
    const int64_t w0 = k * m;
    const double corr = index->PairRangeCorrelation(best_pair, w0, w0 + ns);
    ++evaluated;
    if (corr >= query.threshold) {
      map[static_cast<size_t>(k)] = '#';
      ++k;
      continue;
    }
    map[static_cast<size_t>(k)] = 'E';
    const int64_t skip = bound.MaxSkippableBelow(best_pair, w0, corr,
                                                 query.threshold,
                                                 num_windows - 1 - k);
    for (int64_t d = 1; d <= skip; ++d) {
      map[static_cast<size_t>(k + d)] = '.';
    }
    if (skip > 0) {
      ++jumps;
      skipped += skip;
    }
    k += skip + 1;
  }

  std::printf("legend: E exact<beta (blue)  # edge (exact>=beta)  "
              ". skipped by jump (green)\n");
  for (int64_t start = 0; start < num_windows; start += 84) {
    const int64_t end = std::min(num_windows, start + 84);
    std::printf("  w%03lld  %s\n", static_cast<long long>(start),
                map.substr(static_cast<size_t>(start),
                           static_cast<size_t>(end - start))
                    .c_str());
  }
  std::printf("\npair trace: %lld evaluated, %lld skipped in %lld jumps "
              "(%.1f%% of windows skipped)\n\n",
              static_cast<long long>(evaluated),
              static_cast<long long>(skipped),
              static_cast<long long>(jumps),
              100.0 * static_cast<double>(skipped) /
                  static_cast<double>(num_windows));

  // Aggregate jump behaviour across all pairs per threshold.
  Table table({"beta", "cells total", "evaluated", "jumped", "jumps",
               "mean jump len", "skip rate"});
  for (const double beta : {0.5, 0.7, 0.8, 0.9, 0.95}) {
    DangoronOptions options;
    options.enable_jumping = true;
    DangoronEngine engine(options);
    SlidingQuery q = query;
    q.threshold = beta;
    const auto run = RunEngine(&engine, *data, q);
    if (!run.ok()) {
      std::fprintf(stderr, "engine: %s\n", run.status().ToString().c_str());
      return 1;
    }
    const EngineStats& stats = run->stats;
    table.AddRow()
        .AddDouble(beta, 2)
        .AddInt(stats.cells_total)
        .AddInt(stats.cells_evaluated)
        .AddInt(stats.cells_jumped)
        .AddInt(stats.jumps)
        .AddDouble(stats.jumps > 0 ? static_cast<double>(stats.cells_jumped) /
                                         static_cast<double>(stats.jumps)
                                   : 0.0,
                   2)
        .AddPercent(static_cast<double>(stats.cells_jumped) /
                    static_cast<double>(stats.cells_total));
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace dangoron

int main() { return dangoron::Run(); }
