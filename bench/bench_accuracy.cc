// Experiment E2 (paper claim C2): accuracy of the approximate engines
// against exact ground truth, on climate data and on Tomborg mixes.
//
// The paper reports Dangoron "achieves an accuracy above 90 percent,
// comparable to Parcorr". Dangoron's jump mode can only err by *skipping*
// windows it wrongly believes stay below threshold (missed edges), so its
// precision is 1 and its value RMSE on reported edges is 0; ParCorr errs in
// both directions and perturbs values.

#include <cstdio>
#include <memory>

#include "engine/dangoron_engine.h"
#include "engine/parcorr_engine.h"
#include "eval/table.h"
#include "eval/workloads.h"
#include "network/accuracy.h"
#include "tomborg/tomborg.h"

namespace dangoron {
namespace {

struct Workload {
  std::string name;
  TimeSeriesMatrix data;
  SlidingQuery query;
};

Status AppendAccuracyRows(Table* table, Workload* workload) {
  // Ground truth: exact incremental mode.
  DangoronOptions exact_options;
  exact_options.enable_jumping = false;
  DangoronEngine exact(exact_options);
  ASSIGN_OR_RETURN(EngineRun truth,
                   RunEngine(&exact, workload->data, workload->query));

  struct Candidate {
    std::string label;
    std::unique_ptr<CorrelationEngine> engine;
  };
  std::vector<Candidate> candidates;
  {
    DangoronOptions options;
    options.enable_jumping = true;
    candidates.push_back(
        {"dangoron (jump)", std::make_unique<DangoronEngine>(options)});
  }
  {
    DangoronOptions options;
    options.enable_jumping = true;
    options.max_jump_steps = 4;
    candidates.push_back(
        {"dangoron (jump<=4)", std::make_unique<DangoronEngine>(options)});
  }
  {
    ParCorrOptions options;
    options.sketch_dim = 64;
    candidates.push_back(
        {"parcorr d=64", std::make_unique<ParCorrEngine>(options)});
  }
  {
    ParCorrOptions options;
    options.sketch_dim = 256;
    candidates.push_back(
        {"parcorr d=256", std::make_unique<ParCorrEngine>(options)});
  }
  {
    // ParCorr as deployed: sketch filter with a 2-sigma candidate margin +
    // exact verification (no false positives; margin recovers most
    // near-threshold underestimates).
    ParCorrOptions options;
    options.sketch_dim = 64;
    options.verify_candidates = true;
    options.candidate_margin = 0.25;  // ~2/sqrt(64)
    candidates.push_back(
        {"parcorr d=64+verify", std::make_unique<ParCorrEngine>(options)});
  }

  for (Candidate& candidate : candidates) {
    ASSIGN_OR_RETURN(
        EngineRun run,
        RunEngine(candidate.engine.get(), workload->data, workload->query));
    ASSIGN_OR_RETURN(SeriesAccuracy accuracy,
                     CompareSeries(truth.result, run.result));
    table->AddRow()
        .Add(workload->name)
        .Add(candidate.label)
        .AddPercent(accuracy.total.F1())
        .AddPercent(accuracy.total.Precision())
        .AddPercent(accuracy.total.Recall())
        .AddDouble(accuracy.total.value_rmse, 4)
        .AddTime(run.query_seconds);
  }
  return Status::Ok();
}

int Run() {
  std::printf("E2: edge accuracy vs exact ground truth "
              "(positive class: corr >= beta)\n\n");

  Table table({"workload", "engine", "F1", "precision", "recall",
               "value RMSE", "query"});

  {
    ClimateWorkload climate;
    climate.num_stations = 64;
    climate.num_hours = 24 * 365;
    auto data = climate.Generate();
    if (!data.ok()) {
      std::fprintf(stderr, "climate: %s\n", data.status().ToString().c_str());
      return 1;
    }
    Workload workload{"climate", std::move(*data),
                      climate.DefaultQuery(0.8)};
    const Status status = AppendAccuracyRows(&table, &workload);
    if (!status.ok()) {
      std::fprintf(stderr, "climate rows: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  {
    TomborgSpec spec;
    spec.num_series = 64;
    spec.length = 24 * 365;
    spec.correlation.family = CorrelationFamily::kUniform;
    spec.correlation.a = 0.3;
    spec.correlation.b = 0.95;
    spec.envelope = SpectralEnvelope::kPink;
    auto dataset = GenerateTomborg(spec);
    if (!dataset.ok()) {
      std::fprintf(stderr, "tomborg: %s\n",
                   dataset.status().ToString().c_str());
      return 1;
    }
    SlidingQuery query;
    query.start = 0;
    query.end = spec.length;
    query.window = 24 * 30;
    query.step = 24;
    query.threshold = 0.8;
    Workload workload{"tomborg-uniform", std::move(dataset->data), query};
    const Status status = AppendAccuracyRows(&table, &workload);
    if (!status.ok()) {
      std::fprintf(stderr, "tomborg rows: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "paper claim C2: dangoron accuracy above 90%%, comparable to "
      "parcorr\n");
  return 0;
}

}  // namespace
}  // namespace dangoron

int main() { return dangoron::Run(); }
