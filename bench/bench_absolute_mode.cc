// Extension bench: the absolute-threshold mode (|corr| >= beta), the
// convention of climate teleconnection networks where strong
// anti-correlations are edges too.
//
// The signed workload has three series groups: positively coupled,
// anti-coupled, independent. Plain mode only sees the positive half of the
// structure; absolute mode also reports the negative inter-group edges.
// Jumping still applies: a non-edge is skipped while Eq. 2 confines it to
// (-beta, beta), an edge while it provably stays on its own side.

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "engine/dangoron_engine.h"
#include "engine/tsubasa_engine.h"
#include "eval/table.h"
#include "eval/workloads.h"
#include "network/accuracy.h"
#include "ts/generators.h"

namespace dangoron {
namespace {

TimeSeriesMatrix SignedWorkload(int64_t n, int64_t length, uint64_t seed) {
  Rng rng(seed);
  TimeSeriesMatrix data(n, length);
  std::vector<double> factor(static_cast<size_t>(length));
  double state = rng.NextGaussian();
  for (double& v : factor) {
    state = 0.95 * state + std::sqrt(1 - 0.95 * 0.95) * rng.NextGaussian();
    v = state;
  }
  for (int64_t s = 0; s < n; ++s) {
    const int group = static_cast<int>(s % 3);
    const double loading = group == 0 ? 0.85 : (group == 1 ? -0.85 : 0.0);
    const double noise = std::sqrt(1.0 - loading * loading);
    std::span<double> row = data.Row(s);
    for (int64_t t = 0; t < length; ++t) {
      row[static_cast<size_t>(t)] =
          loading * factor[static_cast<size_t>(t)] +
          noise * rng.NextGaussian();
    }
  }
  return data;
}

int Run() {
  const int64_t n = 96;
  const TimeSeriesMatrix data = SignedWorkload(n, 24 * 365, 404);
  std::printf("EX1 (extension): absolute-threshold mode, signed workload "
              "(N=%lld: 1/3 positive group, 1/3 anti group, 1/3 noise)\n\n",
              static_cast<long long>(n));

  Table table({"mode", "beta", "tsubasa", "dangoron", "speedup",
               "skip rate", "edges", "neg. edges", "F1 vs exact"});

  for (const bool absolute : {false, true}) {
    for (const double beta : {0.6, 0.8}) {
      SlidingQuery query;
      query.start = 0;
      query.end = data.length();
      query.window = 24 * 30;
      query.step = 24;
      query.threshold = beta;
      query.absolute = absolute;

      TsubasaEngine tsubasa;
      const auto truth = RunEngineTimed(&tsubasa, data, query, 2);
      if (!truth.ok()) {
        std::fprintf(stderr, "tsubasa: %s\n",
                     truth.status().ToString().c_str());
        return 1;
      }

      DangoronOptions options;
      options.enable_jumping = true;
      DangoronEngine dangoron(options);
      const auto run = RunEngineTimed(&dangoron, data, query, 2);
      if (!run.ok()) {
        std::fprintf(stderr, "dangoron: %s\n",
                     run.status().ToString().c_str());
        return 1;
      }
      const auto accuracy = CompareSeries(truth->result, run->result);

      int64_t negative_edges = 0;
      for (int64_t k = 0; k < truth->result.num_windows(); ++k) {
        for (const Edge& edge : truth->result.WindowEdges(k)) {
          negative_edges += edge.value < 0.0 ? 1 : 0;
        }
      }

      table.AddRow()
          .Add(absolute ? "|corr|>=beta" : "corr>=beta")
          .AddDouble(beta, 2)
          .AddTime(truth->query_seconds)
          .AddTime(run->query_seconds)
          .AddRatio(truth->query_seconds / run->query_seconds)
          .AddPercent(static_cast<double>(run->stats.cells_jumped) /
                      static_cast<double>(run->stats.cells_total))
          .AddInt(truth->result.TotalEdges())
          .AddInt(negative_edges)
          .AddPercent(accuracy.ok() ? accuracy->total.F1() : 0.0);
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("expected shape: absolute mode recovers the anti-coupled "
              "group's edges (negative column) at the same speedup class\n");
  return 0;
}

}  // namespace
}  // namespace dangoron

int main() { return dangoron::Run(); }
