// Experiment E6: query-window geometry and the basic-window ablation.
//
// Part A sweeps the (window l, step eta) grid: TSUBASA's per-window cost
// grows with ns = l/b while Dangoron's O(1) evaluation doesn't, so the
// speedup grows with longer windows and shrinks with larger steps (less
// overlap to exploit).
//
// Part B ablates the basic window size b at fixed l, eta: small b means
// finer sketches (more basic windows -> bigger prefix arrays, slower
// TSUBASA recombination); large b coarsens the jump bound.

#include <cstdio>

#include "engine/dangoron_engine.h"
#include "engine/tsubasa_engine.h"
#include "eval/table.h"
#include "eval/workloads.h"

namespace dangoron {
namespace {

int Run() {
  ClimateWorkload workload;
  workload.num_stations = 64;
  workload.num_hours = 24 * 365;
  const auto data = workload.Generate();
  if (!data.ok()) {
    std::fprintf(stderr, "workload: %s\n", data.status().ToString().c_str());
    return 1;
  }

  std::printf("E6a: window/step geometry (N=64, hourly year, beta=0.8, "
              "b=24)\n\n");
  Table geometry({"window l", "step eta", "windows", "tsubasa", "dangoron",
                  "speedup", "skip rate"});
  for (const int64_t window_days : {7, 14, 30, 60}) {
    for (const int64_t step_days : {1, 7}) {
      SlidingQuery query;
      query.start = 0;
      query.end = workload.num_hours;
      query.window = 24 * window_days;
      query.step = 24 * step_days;
      query.threshold = 0.8;

      TsubasaEngine tsubasa;
      const auto tsubasa_run = RunEngineTimed(&tsubasa, *data, query, 2);
      if (!tsubasa_run.ok()) {
        std::fprintf(stderr, "tsubasa: %s\n",
                     tsubasa_run.status().ToString().c_str());
        return 1;
      }

      DangoronOptions options;
      options.enable_jumping = true;
      DangoronEngine dangoron(options);
      const auto dangoron_run = RunEngineTimed(&dangoron, *data, query, 2);
      if (!dangoron_run.ok()) {
        std::fprintf(stderr, "dangoron: %s\n",
                     dangoron_run.status().ToString().c_str());
        return 1;
      }

      geometry.AddRow()
          .Add(std::to_string(window_days) + "d")
          .Add(std::to_string(step_days) + "d")
          .AddInt(query.NumWindows())
          .AddTime(tsubasa_run->query_seconds)
          .AddTime(dangoron_run->query_seconds)
          .AddRatio(tsubasa_run->query_seconds /
                    dangoron_run->query_seconds)
          .AddPercent(
              static_cast<double>(dangoron_run->stats.cells_jumped) /
              static_cast<double>(dangoron_run->stats.cells_total));
    }
  }
  std::printf("%s\n", geometry.ToString().c_str());

  std::printf("E6b: basic window ablation (l=30d=720h, eta fixed to b)\n\n");
  Table ablation({"b (hours)", "ns per window", "prepare", "dangoron query",
                  "skip rate", "sketch MiB"});
  for (const int64_t b : {6, 12, 24, 48, 120}) {
    SlidingQuery query;
    query.start = 0;
    query.end = workload.num_hours;
    query.window = 720;  // divisible by every b in the sweep
    query.step = b;      // one basic window per slide
    query.threshold = 0.8;

    DangoronOptions options;
    options.basic_window = b;
    options.enable_jumping = true;
    DangoronEngine engine(options);
    const auto run = RunEngineTimed(&engine, *data, query, 2);
    if (!run.ok()) {
      std::fprintf(stderr, "b=%lld: %s\n", static_cast<long long>(b),
                   run.status().ToString().c_str());
      return 1;
    }

    BasicWindowIndexOptions index_options;
    index_options.basic_window = b;
    const auto index = BasicWindowIndex::Build(*data, index_options);
    ablation.AddRow()
        .AddInt(b)
        .AddInt(720 / b)
        .AddTime(run->prepare_seconds)
        .AddTime(run->query_seconds)
        .AddPercent(static_cast<double>(run->stats.cells_jumped) /
                    static_cast<double>(run->stats.cells_total))
        .AddDouble(index.ok() ? static_cast<double>(index->MemoryBytes()) /
                                    (1 << 20)
                              : 0.0,
                   1);
  }
  std::printf("%s\n", ablation.ToString().c_str());
  std::printf("expected shape: speedup grows with l/b; small b costs memory "
              "and build time, large b coarsens jumps\n");
  return 0;
}

}  // namespace
}  // namespace dangoron

int main() { return dangoron::Run(); }
