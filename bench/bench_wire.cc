// Wire front-end loadgen: N concurrent TCP connections against a WireServer,
// each submitting a stream of warm QueryRequests, measuring per-request
// latency and time-to-first-window distributions (p50/p99). This is a
// closed-loop load generator, not a google-benchmark microbench — the
// numbers of record go to BENCH_wire.json, gated by
// scripts/check_bench_regression.py with within-run hardware-robust bounds
// (failures, delivered-window accounting, ttfw < total ordering), not
// absolute milliseconds.
//
// Flags: --connections=<n> (default 32), --requests=<per connection,
// default 8), --wire_comparison=off to skip the JSON.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "net/wire_server.h"
#include "serve/server.h"
#include "ts/generators.h"
#include "wire/client.h"

namespace dangoron {
namespace {

constexpr int64_t kBasicWindow = 24;
constexpr int64_t kNumBasicWindows = 90;
constexpr int64_t kNumSeries = 64;

SlidingQuery BenchQuery() {
  SlidingQuery query;
  query.start = 0;
  query.end = kNumBasicWindows * kBasicWindow;
  query.window = 30 * kBasicWindow;
  query.step = kBasicWindow;
  query.threshold = 0.7;
  return query;
}

double PercentileMs(std::vector<double>* sorted_ms, double p) {
  if (sorted_ms->empty()) {
    return 0.0;
  }
  std::sort(sorted_ms->begin(), sorted_ms->end());
  const double rank = p / 100.0 * static_cast<double>(sorted_ms->size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted_ms->size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return (*sorted_ms)[lo] * (1.0 - frac) + (*sorted_ms)[hi] * frac;
}

struct LoadResult {
  std::vector<double> total_ms;
  std::vector<double> ttfw_ms;
  int64_t failures = 0;
  int64_t window_mismatches = 0;
  double wall_s = 0.0;
};

// One client: its own TCP connection, `requests` sequential warm queries.
void RunClient(int port, int requests, int64_t expected_windows,
               std::vector<double>* total_ms, std::vector<double>* ttfw_ms,
               std::atomic<int64_t>* failures,
               std::atomic<int64_t>* window_mismatches) {
  auto client = WireClient::ConnectTcp("127.0.0.1", port);
  if (!client.ok()) {
    failures->fetch_add(requests);
    return;
  }
  const SlidingQuery query = BenchQuery();
  for (int r = 0; r < requests; ++r) {
    WireRequest request;
    request.dataset = "d";
    request.query = query;
    Stopwatch watch;
    if (!(*client)->Submit(request).ok()) {
      failures->fetch_add(1);
      return;  // the connection is unusable past a transport error
    }
    int64_t windows = 0;
    double first_ms = 0.0;
    bool transport_ok = true;
    while (true) {
      auto window = (*client)->Next();
      if (!window.ok()) {
        transport_ok = false;
        break;
      }
      if (!window->has_value()) {
        break;
      }
      if (windows == 0) {
        first_ms = watch.ElapsedSeconds() * 1e3;
      }
      ++windows;
    }
    if (!transport_ok || !(*client)->result_status().ok()) {
      failures->fetch_add(1);
      if (!transport_ok) {
        return;
      }
      continue;
    }
    if (windows != expected_windows ||
        (*client)->summary().windows_delivered != windows) {
      window_mismatches->fetch_add(1);
      continue;
    }
    total_ms->push_back(watch.ElapsedSeconds() * 1e3);
    ttfw_ms->push_back(first_ms);
  }
}

LoadResult RunLoad(int port, int connections, int requests,
                   int64_t expected_windows) {
  std::vector<std::vector<double>> totals(connections);
  std::vector<std::vector<double>> firsts(connections);
  std::atomic<int64_t> failures{0};
  std::atomic<int64_t> window_mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(connections);
  Stopwatch wall;
  for (int c = 0; c < connections; ++c) {
    clients.emplace_back(RunClient, port, requests, expected_windows,
                         &totals[c], &firsts[c], &failures,
                         &window_mismatches);
  }
  for (std::thread& client : clients) {
    client.join();
  }
  LoadResult result;
  result.wall_s = wall.ElapsedSeconds();
  for (int c = 0; c < connections; ++c) {
    result.total_ms.insert(result.total_ms.end(), totals[c].begin(),
                           totals[c].end());
    result.ttfw_ms.insert(result.ttfw_ms.end(), firsts[c].begin(),
                          firsts[c].end());
  }
  result.failures = failures.load();
  result.window_mismatches = window_mismatches.load();
  return result;
}

int RunBench(int connections, int requests, bool write_json) {
  Rng rng(17);
  DangoronServerOptions server_options;
  server_options.num_threads = 0;
  server_options.basic_window = kBasicWindow;
  DangoronServer server(server_options);
  CHECK(server
            .AddDataset("d", GenerateWhiteNoise(
                                 kNumSeries, kNumBasicWindows * kBasicWindow,
                                 &rng))
            .ok());
  const SlidingQuery query = BenchQuery();
  auto warm = server.Query("d", query);  // sketch + every window cached
  CHECK(warm.ok());
  const int64_t expected_windows = warm->series.num_windows();

  WireServerOptions wire_options;
  wire_options.port = 0;  // ephemeral
  wire_options.worker_threads = connections;  // one in-flight per connection
  wire_options.max_connections = connections + 8;
  WireServer wire(&server, wire_options);
  CHECK(wire.Start().ok());

  LoadResult load =
      RunLoad(wire.port(), connections, requests, expected_windows);
  wire.Stop();
  const WireServerStats stats = wire.stats();

  const double p50 = PercentileMs(&load.total_ms, 50.0);
  const double p99 = PercentileMs(&load.total_ms, 99.0);
  const double ttfw_p50 = PercentileMs(&load.ttfw_ms, 50.0);
  const double ttfw_p99 = PercentileMs(&load.ttfw_ms, 99.0);
  const int64_t total_requests =
      static_cast<int64_t>(connections) * requests;
  const double rps =
      load.wall_s > 0.0
          ? static_cast<double>(load.total_ms.size()) / load.wall_s
          : 0.0;

  std::fprintf(stderr,
               "wire load: %d connections x %d requests, %lld windows each "
               "(%lld series): p50 %.3f ms, p99 %.3f ms, ttfw p50 %.3f ms, "
               "ttfw p99 %.3f ms, %.0f req/s, %lld failures, "
               "%lld mismatches; lanes high=%lld medium=%lld low=%lld\n",
               connections, requests,
               static_cast<long long>(expected_windows),
               static_cast<long long>(kNumSeries), p50, p99, ttfw_p50,
               ttfw_p99, rps, static_cast<long long>(load.failures),
               static_cast<long long>(load.window_mismatches),
               static_cast<long long>(stats.lanes.executed[0]),
               static_cast<long long>(stats.lanes.executed[1]),
               static_cast<long long>(stats.lanes.executed[2]));

  if (write_json) {
    std::FILE* out = std::fopen("BENCH_wire.json", "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write BENCH_wire.json\n");
      return 1;
    }
    std::fprintf(
        out,
        "[\n  {\"bench\": \"wire_load\", \"connections\": %d, "
        "\"requests_per_connection\": %d, \"total_requests\": %lld,\n"
        "   \"n_series\": %lld, \"windows_per_request\": %lld, "
        "\"completed\": %lld, \"failures\": %lld, "
        "\"window_mismatches\": %lld,\n"
        "   \"p50_ms\": %.3f, \"p99_ms\": %.3f, \"ttfw_p50_ms\": %.3f, "
        "\"ttfw_p99_ms\": %.3f, \"throughput_rps\": %.1f, "
        "\"wall_s\": %.3f,\n"
        "   \"lane_high\": %lld, \"lane_medium\": %lld, \"lane_low\": "
        "%lld, \"bytes_out\": %lld}\n]\n",
        connections, requests, static_cast<long long>(total_requests),
        static_cast<long long>(kNumSeries),
        static_cast<long long>(expected_windows),
        static_cast<long long>(load.total_ms.size()),
        static_cast<long long>(load.failures),
        static_cast<long long>(load.window_mismatches), p50, p99, ttfw_p50,
        ttfw_p99, rps, load.wall_s,
        static_cast<long long>(stats.lanes.executed[0]),
        static_cast<long long>(stats.lanes.executed[1]),
        static_cast<long long>(stats.lanes.executed[2]),
        static_cast<long long>(stats.bytes_out));
    std::fclose(out);
    std::fprintf(stderr, "wrote BENCH_wire.json\n");
  }
  return (load.failures == 0 && load.window_mismatches == 0) ? 0 : 1;
}

}  // namespace
}  // namespace dangoron

int main(int argc, char** argv) {
  int connections = 32;
  int requests = 8;
  bool write_json = true;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--connections=", 0) == 0) {
      connections = std::atoi(arg.data() + 14);
    } else if (arg.rfind("--requests=", 0) == 0) {
      requests = std::atoi(arg.data() + 11);
    } else if (arg == "--wire_comparison=off") {
      write_json = false;
    } else if (arg == "--wire_comparison=on") {
      write_json = true;
    } else {
      std::fprintf(stderr,
                   "unknown flag '%s' (known: --connections=, --requests=, "
                   "--wire_comparison=on|off)\n",
                   argv[i]);
      return 2;
    }
  }
  if (connections < 1 || requests < 1) {
    std::fprintf(stderr, "connections and requests must be >= 1\n");
    return 2;
  }
  return dangoron::RunBench(connections, requests, write_json);
}
