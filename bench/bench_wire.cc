// Wire front-end loadgen: N concurrent TCP connections against a WireServer,
// each submitting a stream of warm QueryRequests, measuring per-request
// latency and time-to-first-window distributions (p50/p99). This is a
// closed-loop load generator, not a google-benchmark microbench — the
// numbers of record go to BENCH_wire.json, gated by
// scripts/check_bench_regression.py with within-run hardware-robust bounds
// (failures, delivered-window accounting, ttfw < total ordering), not
// absolute milliseconds.
//
// A second section measures shard-parallel serving: the same query served
// cold (result cache off) by one in-process shard versus K shards behind a
// ShardRouter, each shard a single-threaded server + WireServer pair joined
// over socketpairs — the in-process stand-in for K shard processes. The
// K=4-vs-K=1 cold throughput ratio is the scaling number the router exists
// for; check_bench_regression.py --wire-shard-scaling gates it at >= 2.5x
// on machines with >= 4 cores (rows mark themselves "skipped" below that,
// where the ratio measures the scheduler, not the router).
//
// Flags: --connections=<n> (default 32), --requests=<per connection,
// default 8), --shards=<K> (default 4, 0 = skip the shard section),
// --wire_comparison=off to skip the JSON.

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "net/wire_server.h"
#include "router/shard_router.h"
#include "serve/server.h"
#include "ts/generators.h"
#include "wire/client.h"

namespace dangoron {
namespace {

constexpr int64_t kBasicWindow = 24;
constexpr int64_t kNumBasicWindows = 90;
constexpr int64_t kNumSeries = 64;

/// The shard section runs a wider dataset: pair ranges split at
/// kSweepTilePairs (1024) granularity, so a 4-way fan-out needs >= 4 tiles
/// — 128 series = 8128 pairs = 8 tiles, two per shard at K=4. (64 series
/// is only 2 tiles: half the shards would idle.)
constexpr int64_t kShardNumSeries = 128;

SlidingQuery BenchQuery() {
  SlidingQuery query;
  query.start = 0;
  query.end = kNumBasicWindows * kBasicWindow;
  query.window = 30 * kBasicWindow;
  query.step = kBasicWindow;
  query.threshold = 0.7;
  return query;
}

double PercentileMs(std::vector<double>* sorted_ms, double p) {
  if (sorted_ms->empty()) {
    return 0.0;
  }
  std::sort(sorted_ms->begin(), sorted_ms->end());
  const double rank = p / 100.0 * static_cast<double>(sorted_ms->size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted_ms->size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return (*sorted_ms)[lo] * (1.0 - frac) + (*sorted_ms)[hi] * frac;
}

struct LoadResult {
  std::vector<double> total_ms;
  std::vector<double> ttfw_ms;
  int64_t failures = 0;
  int64_t window_mismatches = 0;
  double wall_s = 0.0;
};

// One client: its own TCP connection, `requests` sequential warm queries.
void RunClient(int port, int requests, int64_t expected_windows,
               std::vector<double>* total_ms, std::vector<double>* ttfw_ms,
               std::atomic<int64_t>* failures,
               std::atomic<int64_t>* window_mismatches) {
  auto client = WireClient::ConnectTcp("127.0.0.1", port);
  if (!client.ok()) {
    failures->fetch_add(requests);
    return;
  }
  const SlidingQuery query = BenchQuery();
  for (int r = 0; r < requests; ++r) {
    WireRequest request;
    request.dataset = "d";
    request.query = query;
    Stopwatch watch;
    if (!(*client)->Submit(request).ok()) {
      failures->fetch_add(1);
      return;  // the connection is unusable past a transport error
    }
    int64_t windows = 0;
    double first_ms = 0.0;
    bool transport_ok = true;
    while (true) {
      auto window = (*client)->Next();
      if (!window.ok()) {
        transport_ok = false;
        break;
      }
      if (!window->has_value()) {
        break;
      }
      if (windows == 0) {
        first_ms = watch.ElapsedSeconds() * 1e3;
      }
      ++windows;
    }
    if (!transport_ok || !(*client)->result_status().ok()) {
      failures->fetch_add(1);
      if (!transport_ok) {
        return;
      }
      continue;
    }
    if (windows != expected_windows ||
        (*client)->summary().windows_delivered != windows) {
      window_mismatches->fetch_add(1);
      continue;
    }
    total_ms->push_back(watch.ElapsedSeconds() * 1e3);
    ttfw_ms->push_back(first_ms);
  }
}

LoadResult RunLoad(int port, int connections, int requests,
                   int64_t expected_windows) {
  std::vector<std::vector<double>> totals(connections);
  std::vector<std::vector<double>> firsts(connections);
  std::atomic<int64_t> failures{0};
  std::atomic<int64_t> window_mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(connections);
  Stopwatch wall;
  for (int c = 0; c < connections; ++c) {
    clients.emplace_back(RunClient, port, requests, expected_windows,
                         &totals[c], &firsts[c], &failures,
                         &window_mismatches);
  }
  for (std::thread& client : clients) {
    client.join();
  }
  LoadResult result;
  result.wall_s = wall.ElapsedSeconds();
  for (int c = 0; c < connections; ++c) {
    result.total_ms.insert(result.total_ms.end(), totals[c].begin(),
                           totals[c].end());
    result.ttfw_ms.insert(result.ttfw_ms.end(), firsts[c].begin(),
                          firsts[c].end());
  }
  result.failures = failures.load();
  result.window_mismatches = window_mismatches.load();
  return result;
}

struct ShardLoadRow {
  int shards = 0;
  int requests = 0;
  std::vector<double> total_ms;
  std::vector<double> ttfw_ms;
  std::vector<int64_t> per_shard_requests;
  int64_t failures = 0;
  int64_t window_mismatches = 0;
  double wall_s = 0.0;
};

// One closed-loop client driving `requests` sequential cold exact queries
// through a ShardRouter over `shards` in-process shard backends. Each shard
// is its own single-threaded DangoronServer (result cache off — every
// request recomputes its windows) behind its own single-worker WireServer,
// joined over socketpairs: the in-process stand-in for K shard processes,
// where sharding is the only parallelism axis.
ShardLoadRow RunShardLoad(std::shared_ptr<const TimeSeriesMatrix> data,
                          int64_t num_series, int shards, int requests,
                          int64_t expected_windows) {
  ShardLoadRow row;
  row.shards = shards;
  row.requests = requests;

  std::vector<std::unique_ptr<DangoronServer>> servers;
  std::vector<std::unique_ptr<WireServer>> wires;
  for (int s = 0; s < shards; ++s) {
    DangoronServerOptions server_options;
    server_options.num_threads = 1;
    server_options.basic_window = kBasicWindow;
    server_options.result_cache_bytes = 0;  // cold: every window recomputed
    auto server = std::make_unique<DangoronServer>(server_options);
    CHECK(server->AddDataset("d", data).ok());
    WireServerOptions wire_options;
    wire_options.port = -1;  // listener-less; connections via AddConnection
    wire_options.worker_threads = 1;
    auto wire = std::make_unique<WireServer>(server.get(), wire_options);
    CHECK(wire->Start().ok());
    servers.push_back(std::move(server));
    wires.push_back(std::move(wire));
  }

  ShardRouterOptions router_options;
  router_options.shards.resize(shards);  // endpoints unused: override below
  router_options.connect_override =
      [&wires](int shard) -> Result<std::unique_ptr<WireClient>> {
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
      return Status::IoError("socketpair failed");
    }
    if (Status added = wires[shard]->AddConnection(fds[0]); !added.ok()) {
      ::close(fds[1]);  // fds[0] belongs to the server even on failure
      return added;
    }
    return WireClient::Adopt(fds[1]);
  };
  ShardRouter router(router_options);

  const int64_t num_pairs = num_series * (num_series - 1) / 2;
  WireRequest request;
  request.dataset = "d";
  request.query = BenchQuery();
  Stopwatch wall;
  for (int r = 0; r < requests; ++r) {
    Stopwatch watch;
    auto merge = router.Submit(request, num_pairs);
    if (!merge.ok()) {
      ++row.failures;
      continue;
    }
    int64_t windows = 0;
    double first_ms = 0.0;
    while (std::optional<StreamedWindow> window = (*merge)->Next()) {
      if (windows == 0) {
        first_ms = watch.ElapsedSeconds() * 1e3;
      }
      ++windows;
    }
    if (!(*merge)->status().ok()) {
      ++row.failures;
      continue;
    }
    if (windows != expected_windows ||
        (*merge)->summary().windows_delivered != windows) {
      ++row.window_mismatches;
      continue;
    }
    row.total_ms.push_back(watch.ElapsedSeconds() * 1e3);
    row.ttfw_ms.push_back(first_ms);
  }
  row.wall_s = wall.ElapsedSeconds();

  for (int s = 0; s < shards; ++s) {
    wires[s]->Stop();
    row.per_shard_requests.push_back(wires[s]->stats().requests);
  }
  return row;
}

/// Appends one "wire_shard_cold" JSON row. `skipped` marks the row as not
/// scaling-gated (too few cores for the ratio to measure the router);
/// the correctness fields (failures, mismatches, accounting) are gated
/// regardless.
void WriteShardRow(std::FILE* out, ShardLoadRow* row, unsigned cores,
                   bool skipped) {
  const double p50 = PercentileMs(&row->total_ms, 50.0);
  const double p99 = PercentileMs(&row->total_ms, 99.0);
  const double ttfw_p50 = PercentileMs(&row->ttfw_ms, 50.0);
  const double ttfw_p99 = PercentileMs(&row->ttfw_ms, 99.0);
  const double rps =
      row->wall_s > 0.0
          ? static_cast<double>(row->total_ms.size()) / row->wall_s
          : 0.0;
  std::fprintf(
      out,
      ",\n  {\"bench\": \"wire_shard_cold\", \"shards\": %d, "
      "\"connections\": 1, \"requests_per_connection\": %d, "
      "\"total_requests\": %d,\n"
      "   \"completed\": %lld, \"failures\": %lld, "
      "\"window_mismatches\": %lld, \"cores\": %u, \"skipped\": %s,\n"
      "   \"p50_ms\": %.3f, \"p99_ms\": %.3f, \"ttfw_p50_ms\": %.3f, "
      "\"ttfw_p99_ms\": %.3f, \"throughput_rps\": %.2f, "
      "\"wall_s\": %.3f,\n   \"per_shard_requests\": [",
      row->shards, row->requests, row->requests,
      static_cast<long long>(row->total_ms.size()),
      static_cast<long long>(row->failures),
      static_cast<long long>(row->window_mismatches), cores,
      skipped ? "true" : "false", p50, p99, ttfw_p50, ttfw_p99, rps,
      row->wall_s);
  for (size_t s = 0; s < row->per_shard_requests.size(); ++s) {
    std::fprintf(out, "%s%lld", s == 0 ? "" : ", ",
                 static_cast<long long>(row->per_shard_requests[s]));
  }
  std::fprintf(out, "]}");
}

int RunBench(int connections, int requests, int shards, bool write_json) {
  Rng rng(17);
  DangoronServerOptions server_options;
  server_options.num_threads = 0;
  server_options.basic_window = kBasicWindow;
  DangoronServer server(server_options);
  // Shared (not copied) with the shard servers below: shards replicate the
  // dataset, and the registry holds content-addressed shared_ptrs anyway.
  auto data = std::make_shared<const TimeSeriesMatrix>(GenerateWhiteNoise(
      kNumSeries, kNumBasicWindows * kBasicWindow, &rng));
  CHECK(server.AddDataset("d", data).ok());
  const SlidingQuery query = BenchQuery();
  auto warm = server.Query("d", query);  // sketch + every window cached
  CHECK(warm.ok());
  const int64_t expected_windows = warm->series.num_windows();

  WireServerOptions wire_options;
  wire_options.port = 0;  // ephemeral
  wire_options.worker_threads = connections;  // one in-flight per connection
  wire_options.max_connections = connections + 8;
  WireServer wire(&server, wire_options);
  CHECK(wire.Start().ok());

  LoadResult load =
      RunLoad(wire.port(), connections, requests, expected_windows);
  wire.Stop();
  const WireServerStats stats = wire.stats();

  const double p50 = PercentileMs(&load.total_ms, 50.0);
  const double p99 = PercentileMs(&load.total_ms, 99.0);
  const double ttfw_p50 = PercentileMs(&load.ttfw_ms, 50.0);
  const double ttfw_p99 = PercentileMs(&load.ttfw_ms, 99.0);
  const int64_t total_requests =
      static_cast<int64_t>(connections) * requests;
  const double rps =
      load.wall_s > 0.0
          ? static_cast<double>(load.total_ms.size()) / load.wall_s
          : 0.0;

  std::fprintf(stderr,
               "wire load: %d connections x %d requests, %lld windows each "
               "(%lld series): p50 %.3f ms, p99 %.3f ms, ttfw p50 %.3f ms, "
               "ttfw p99 %.3f ms, %.0f req/s, %lld failures, "
               "%lld mismatches; lanes high=%lld medium=%lld low=%lld\n",
               connections, requests,
               static_cast<long long>(expected_windows),
               static_cast<long long>(kNumSeries), p50, p99, ttfw_p50,
               ttfw_p99, rps, static_cast<long long>(load.failures),
               static_cast<long long>(load.window_mismatches),
               static_cast<long long>(stats.lanes.executed[0]),
               static_cast<long long>(stats.lanes.executed[1]),
               static_cast<long long>(stats.lanes.executed[2]));

  // Shard-scaling section: the same query cold through 1 shard and through
  // `shards`, single closed-loop client each, so the K-row throughput ratio
  // isolates what the router's fan-out buys.
  const unsigned cores = std::thread::hardware_concurrency();
  std::vector<ShardLoadRow> shard_rows;
  int64_t shard_failures = 0;
  if (shards > 0) {
    auto shard_data =
        std::make_shared<const TimeSeriesMatrix>(GenerateWhiteNoise(
            kShardNumSeries, kNumBasicWindows * kBasicWindow, &rng));
    shard_rows.push_back(RunShardLoad(shard_data, kShardNumSeries, 1,
                                      requests, expected_windows));
    if (shards > 1) {
      shard_rows.push_back(RunShardLoad(shard_data, kShardNumSeries, shards,
                                        requests, expected_windows));
    }
    for (ShardLoadRow& row : shard_rows) {
      shard_failures += row.failures + row.window_mismatches;
      const double rps =
          row.wall_s > 0.0
              ? static_cast<double>(row.total_ms.size()) / row.wall_s
              : 0.0;
      std::fprintf(
          stderr,
          "wire shard cold: K=%d, %d requests: %.2f req/s "
          "(%lld completed, %lld failures, %lld mismatches)%s\n",
          row.shards, row.requests, rps,
          static_cast<long long>(row.total_ms.size()),
          static_cast<long long>(row.failures),
          static_cast<long long>(row.window_mismatches),
          cores < static_cast<unsigned>(row.shards)
              ? " [scaling not gated: too few cores]"
              : "");
    }
  }

  if (write_json) {
    std::FILE* out = std::fopen("BENCH_wire.json", "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write BENCH_wire.json\n");
      return 1;
    }
    std::fprintf(
        out,
        "[\n  {\"bench\": \"wire_load\", \"connections\": %d, "
        "\"requests_per_connection\": %d, \"total_requests\": %lld,\n"
        "   \"n_series\": %lld, \"windows_per_request\": %lld, "
        "\"completed\": %lld, \"failures\": %lld, "
        "\"window_mismatches\": %lld,\n"
        "   \"p50_ms\": %.3f, \"p99_ms\": %.3f, \"ttfw_p50_ms\": %.3f, "
        "\"ttfw_p99_ms\": %.3f, \"throughput_rps\": %.1f, "
        "\"wall_s\": %.3f,\n"
        "   \"lane_high\": %lld, \"lane_medium\": %lld, \"lane_low\": "
        "%lld, \"bytes_out\": %lld}",
        connections, requests, static_cast<long long>(total_requests),
        static_cast<long long>(kNumSeries),
        static_cast<long long>(expected_windows),
        static_cast<long long>(load.total_ms.size()),
        static_cast<long long>(load.failures),
        static_cast<long long>(load.window_mismatches), p50, p99, ttfw_p50,
        ttfw_p99, rps, load.wall_s,
        static_cast<long long>(stats.lanes.executed[0]),
        static_cast<long long>(stats.lanes.executed[1]),
        static_cast<long long>(stats.lanes.executed[2]),
        static_cast<long long>(stats.bytes_out));
    for (ShardLoadRow& row : shard_rows) {
      WriteShardRow(out, &row, cores,
                    cores < static_cast<unsigned>(row.shards));
    }
    std::fprintf(out, "\n]\n");
    std::fclose(out);
    std::fprintf(stderr, "wrote BENCH_wire.json\n");
  }
  return (load.failures == 0 && load.window_mismatches == 0 &&
          shard_failures == 0)
             ? 0
             : 1;
}

}  // namespace
}  // namespace dangoron

int main(int argc, char** argv) {
  int connections = 32;
  int requests = 8;
  int shards = 4;
  bool write_json = true;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--connections=", 0) == 0) {
      connections = std::atoi(arg.data() + 14);
    } else if (arg.rfind("--requests=", 0) == 0) {
      requests = std::atoi(arg.data() + 11);
    } else if (arg.rfind("--shards=", 0) == 0) {
      shards = std::atoi(arg.data() + 9);
    } else if (arg == "--wire_comparison=off") {
      write_json = false;
    } else if (arg == "--wire_comparison=on") {
      write_json = true;
    } else {
      std::fprintf(stderr,
                   "unknown flag '%s' (known: --connections=, --requests=, "
                   "--shards=, --wire_comparison=on|off)\n",
                   argv[i]);
      return 2;
    }
  }
  if (connections < 1 || requests < 1 || shards < 0) {
    std::fprintf(stderr,
                 "connections and requests must be >= 1, shards >= 0\n");
    return 2;
  }
  return dangoron::RunBench(connections, requests, shards, write_json);
}
