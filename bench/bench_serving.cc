// Serving-layer benchmarks: what the shared sketch cache and per-window
// result cache buy under single- and multi-client load. The cold numbers
// pay dataset prepare plus full pair evaluation; warm numbers measure the
// steady state a production server actually runs in.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <future>
#include <memory>
#include <string_view>
#include <vector>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "serve/server.h"
#include "ts/generators.h"

namespace dangoron {
namespace {

constexpr int64_t kBasicWindow = 24;

TimeSeriesMatrix BenchData(int64_t n, int64_t num_basic_windows,
                           uint64_t seed) {
  Rng rng(seed);
  return GenerateWhiteNoise(n, num_basic_windows * kBasicWindow, &rng);
}

SlidingQuery BenchQuery(int64_t num_basic_windows) {
  SlidingQuery query;
  query.start = 0;
  query.end = num_basic_windows * kBasicWindow;
  query.window = 30 * kBasicWindow;
  query.step = kBasicWindow;
  query.threshold = 0.7;
  return query;
}

DangoronServerOptions BenchServerOptions() {
  DangoronServerOptions options;
  options.num_threads = 0;  // hardware concurrency
  options.basic_window = kBasicWindow;
  return options;
}

// Cold submission: a fresh server per iteration, so the query pays dataset
// prepare (index build) plus the full per-window evaluation.
void BM_ServerColdQuery(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t nb = 90;
  TimeSeriesMatrix data = BenchData(n, nb, 11);
  const SlidingQuery query = BenchQuery(nb);
  for (auto _ : state) {
    state.PauseTiming();
    DangoronServer server(BenchServerOptions());
    benchmark::DoNotOptimize(server.AddDataset("d", data).ok());
    state.ResumeTiming();
    auto result = server.Query("d", query);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_ServerColdQuery)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMillisecond);

// Warm repeat: the steady state — prepared sketch and every window served
// from cache; the query only assembles the response.
void BM_ServerWarmQuery(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t nb = 90;
  DangoronServer server(BenchServerOptions());
  benchmark::DoNotOptimize(server.AddDataset("d", BenchData(n, nb, 11)).ok());
  const SlidingQuery query = BenchQuery(nb);
  benchmark::DoNotOptimize(server.Query("d", query).ok());  // fill caches
  for (auto _ : state) {
    auto result = server.Query("d", query);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_ServerWarmQuery)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMillisecond);

// Warm overlap: shifted ranges against a warm server — measures partial
// window reuse plus evaluation of the uncached remainder.
void BM_ServerWarmOverlapQuery(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t nb = 180;
  DangoronServer server(BenchServerOptions());
  benchmark::DoNotOptimize(server.AddDataset("d", BenchData(n, nb, 12)).ok());
  SlidingQuery query = BenchQuery(nb);
  benchmark::DoNotOptimize(server.Query("d", query).ok());
  int64_t shift = 0;
  for (auto _ : state) {
    SlidingQuery shifted = query;
    shifted.start = shift * kBasicWindow;
    auto result = server.Query("d", shifted);
    benchmark::DoNotOptimize(result.ok());
    shift = (shift + 7) % 60;
  }
}
BENCHMARK(BM_ServerWarmOverlapQuery)->Arg(64)
    ->Unit(benchmark::kMillisecond);

// Streaming drain: SubmitStreaming against a warm server, consuming every
// window — the steady-state cost of the window pipeline itself (queue and
// delivery overhead on top of pure cache hits).
void BM_ServerStreamingWarmDrain(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t nb = 90;
  DangoronServer server(BenchServerOptions());
  benchmark::DoNotOptimize(server.AddDataset("d", BenchData(n, nb, 11)).ok());
  const SlidingQuery query = BenchQuery(nb);
  benchmark::DoNotOptimize(server.Query("d", query).ok());  // fill caches
  for (auto _ : state) {
    auto stream = server.SubmitStreaming("d", query);
    int64_t windows = 0;
    while (auto window = stream->Next()) {
      benchmark::DoNotOptimize(window->edges->size());
      ++windows;
    }
    CHECK(stream->status().ok());
    benchmark::DoNotOptimize(windows);
  }
}
BENCHMARK(BM_ServerStreamingWarmDrain)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMillisecond);

// Multi-client throughput: each benchmark thread is a client submitting the
// same rotating set of overlapping queries to one shared server.
void BM_ServerMultiClient(benchmark::State& state) {
  static DangoronServer* server = [] {
    auto* s = new DangoronServer(BenchServerOptions());
    CHECK(s->AddDataset("d", BenchData(64, 180, 13)).ok());
    return s;
  }();
  const SlidingQuery base = BenchQuery(180);
  int64_t shift = state.thread_index();
  for (auto _ : state) {
    SlidingQuery query = base;
    query.start = (shift % 60) * kBasicWindow;
    auto result = server->Query("d", query);
    benchmark::DoNotOptimize(result.ok());
    shift += 7;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServerMultiClient)->Threads(1)->Threads(4)->Threads(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// ------------------------------------------------ cold vs warm JSON -------

// Machine-readable cold/warm comparison mirroring BENCH_kernels.json: the
// serving layer's acceptance numbers are the warm speedup (prepare
// amortized across repeat queries) and the streaming path's
// time-to-first-window as a fraction of full-query latency (both ratios are
// measured within one run, so they stay comparable across machines).
void WriteServingComparisonJson(const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  const int64_t nb = 90;
  std::fprintf(out, "[\n");
  bool first = true;
  for (const int64_t n : {32, 128}) {
    TimeSeriesMatrix data = BenchData(n, nb, 14);
    const SlidingQuery query = BenchQuery(nb);

    double cold_s = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      DangoronServer server(BenchServerOptions());
      CHECK(server.AddDataset("d", data).ok());
      Stopwatch timer;
      CHECK(server.Query("d", query).ok());
      cold_s = std::min(cold_s, timer.ElapsedSeconds());
    }

    // Cold streaming submit: time-to-first-window vs draining everything.
    // Fresh server per rep, so the first window pays prepare + its first
    // evaluation run — the latency a streaming client actually observes.
    // Measured (and gated) only at n >= 128: below that the cold query is
    // prepare-dominated, so the ttfw < cold_full margin is a few dozen
    // microseconds of evaluation difference between two separately-prepared
    // servers — pure scheduler noise, not a code property.
    const bool measure_streaming = n >= 128;
    double ttfw_s = 1e300;
    double stream_total_s = 1e300;
    int64_t stream_windows = 0;
    for (int rep = 0; measure_streaming && rep < 3; ++rep) {
      DangoronServer server(BenchServerOptions());
      CHECK(server.AddDataset("d", data).ok());
      Stopwatch timer;
      auto stream = server.SubmitStreaming("d", query);
      auto head = stream->Next();
      CHECK(head.has_value());
      ttfw_s = std::min(ttfw_s, timer.ElapsedSeconds());
      int64_t windows = 1;
      while (stream->Next()) {
        ++windows;
      }
      CHECK(stream->status().ok());
      stream_total_s = std::min(stream_total_s, timer.ElapsedSeconds());
      stream_windows = windows;
    }

    DangoronServer server(BenchServerOptions());
    CHECK(server.AddDataset("d", data).ok());
    CHECK(server.Query("d", query).ok());
    double warm_s = 1e300;
    for (int rep = 0; rep < 5; ++rep) {
      Stopwatch timer;
      CHECK(server.Query("d", query).ok());
      warm_s = std::min(warm_s, timer.ElapsedSeconds());
    }

    // Tier comparison, sketch warm and window cache cold for both sides:
    // the exact tier pays the full vectorized sweep (every window uncached —
    // a fresh server per rep, so nothing warms across reps), the approx
    // tier pays the Eq. 2 jumping walk that skips below-threshold
    // stretches. One identical workload per rep, min per side, so the
    // gated ratio describes a single query shape. The ratio is the latency
    // headroom a deadline-bound client buys by accepting jumped windows.
    double exact_uncached_s = 1e300;
    double approx_s = 1e300;
    int64_t cells_jumped = 0;
    int64_t cells_total = 0;
    for (int rep = 0; rep < 3; ++rep) {
      DangoronServer tier_server(BenchServerOptions());
      CHECK(tier_server.AddDataset("d", data).ok());
      // Warm the sketch outside the timed region with a disjoint family.
      SlidingQuery prepare_query = query;
      prepare_query.end = prepare_query.start + prepare_query.window;
      prepare_query.threshold = 0.95;
      CHECK(tier_server.Query("d", prepare_query).ok());

      QueryRequest exact_request{"d", query, ServeOptions{}};
      exact_request.options.tier = ServeTier::kExact;
      Stopwatch exact_timer;
      auto exact = tier_server.Query(exact_request);
      CHECK(exact.ok());
      CHECK(exact->prepared_from_cache);
      exact_uncached_s = std::min(exact_uncached_s,
                                  exact_timer.ElapsedSeconds());

      QueryRequest approx_request{"d", query, ServeOptions{}};
      approx_request.options.tier = ServeTier::kApprox;
      Stopwatch approx_timer;
      auto approx = tier_server.Query(approx_request);
      CHECK(approx.ok());
      CHECK(approx->tier_used == ServeTier::kApprox);
      approx_s = std::min(approx_s, approx_timer.ElapsedSeconds());
      cells_jumped = approx->cells_jumped;  // deterministic: same every rep
      cells_total = query.NumWindows() * n * (n - 1) / 2;
    }

    std::fprintf(out,
                 "%s  {\"bench\": \"serving_cold_warm\", \"n_series\": %lld, "
                 "\"num_basic_windows\": %lld, \"basic_window\": %lld,\n"
                 "   \"cold_ms\": %.3f, \"warm_ms\": %.3f, "
                 "\"warm_speedup\": %.1f}",
                 first ? "" : ",\n", static_cast<long long>(n),
                 static_cast<long long>(nb),
                 static_cast<long long>(kBasicWindow), cold_s * 1e3,
                 warm_s * 1e3, cold_s / warm_s);
    first = false;
    std::fprintf(out,
                 ",\n  {\"bench\": \"serving_tiers\", \"n_series\": %lld, "
                 "\"num_basic_windows\": %lld, \"basic_window\": %lld,\n"
                 "   \"exact_uncached_ms\": %.3f, \"approx_ms\": %.3f, "
                 "\"approx_speedup\": %.2f, \"jumped_fraction\": %.4f}",
                 static_cast<long long>(n), static_cast<long long>(nb),
                 static_cast<long long>(kBasicWindow),
                 exact_uncached_s * 1e3, approx_s * 1e3,
                 exact_uncached_s / approx_s,
                 cells_total > 0 ? static_cast<double>(cells_jumped) /
                                       static_cast<double>(cells_total)
                                 : 0.0);
    std::fprintf(stderr,
                 "serving tiers n=%lld: exact uncached %.3f ms, approx "
                 "%.3f ms (%.2fx), %.1f%% of cells jumped\n",
                 static_cast<long long>(n), exact_uncached_s * 1e3,
                 approx_s * 1e3, exact_uncached_s / approx_s,
                 cells_total > 0 ? 100.0 * static_cast<double>(cells_jumped) /
                                       static_cast<double>(cells_total)
                                 : 0.0);
    if (measure_streaming) {
      std::fprintf(out,
                   ",\n  {\"bench\": \"serving_streaming\", \"n_series\": "
                   "%lld, \"num_basic_windows\": %lld, \"basic_window\": "
                   "%lld,\n"
                   "   \"windows\": %lld, \"ttfw_ms\": %.3f, "
                   "\"stream_total_ms\": %.3f, \"cold_full_ms\": %.3f, "
                   "\"ttfw_fraction\": %.4f}",
                   static_cast<long long>(n), static_cast<long long>(nb),
                   static_cast<long long>(kBasicWindow),
                   static_cast<long long>(stream_windows), ttfw_s * 1e3,
                   stream_total_s * 1e3, cold_s * 1e3, ttfw_s / cold_s);
      std::fprintf(stderr,
                   "serving n=%lld: cold %.2f ms, warm %.3f ms (%.0fx), "
                   "ttfw %.3f ms over %lld windows (%.1f%% of full)\n",
                   static_cast<long long>(n), cold_s * 1e3, warm_s * 1e3,
                   cold_s / warm_s, ttfw_s * 1e3,
                   static_cast<long long>(stream_windows),
                   100.0 * ttfw_s / cold_s);
    } else {
      std::fprintf(stderr,
                   "serving n=%lld: cold %.2f ms, warm %.3f ms (%.0fx); "
                   "streaming ttfw skipped (prepare-dominated below "
                   "n=128)\n",
                   static_cast<long long>(n), cold_s * 1e3, warm_s * 1e3,
                   cold_s / warm_s);
    }
  }

  // Hard-deadline cancellation latency: how long past its deadline a
  // streaming exact query keeps running before it terminates. The sweep is
  // stalled with an injected per-band delay that dominates the band cost,
  // so the delay *is* the band width and the overshoot should track band
  // cadence: the mid-run check fires at the next band boundary, i.e.
  // within ~2 band-widths of the deadline (the acceptance bar
  // check_bench_regression.py gates). Emitted as a skipped row when the
  // failpoint sites are compiled out (DANGORON_FAILPOINTS=OFF).
#if DANGORON_FAILPOINTS_ENABLED
  {
    const int64_t n = 128;
    const double band_delay_ms = 10.0;
    const double deadline_ms = 15.0;
    TimeSeriesMatrix data = BenchData(n, nb, 14);
    const SlidingQuery query = BenchQuery(nb);
    double overshoot_s = 1e300;
    double total_s = 1e300;
    int64_t delivered = 0;
    for (int rep = 0; rep < 3; ++rep) {
      DangoronServer server(BenchServerOptions());
      CHECK(server.AddDataset("d", data).ok());
      // Warm the sketch with a disjoint threshold family so the measured
      // run spends its deadline in the sweep, not the prepare.
      SlidingQuery prepare_query = query;
      prepare_query.end = prepare_query.start + prepare_query.window;
      prepare_query.threshold = 0.95;
      CHECK(server.Query("d", prepare_query).ok());

      CHECK(FailpointRegistry::Instance()
                .Configure("sweep.band=delay:" +
                           std::to_string(static_cast<int64_t>(band_delay_ms)))
                .ok());
      QueryRequest request{"d", query, ServeOptions{}};
      request.options.tier = ServeTier::kExact;
      request.options.deadline_ms = static_cast<int64_t>(deadline_ms);
      Stopwatch timer;
      auto stream = server.SubmitStreaming(request);
      int64_t windows = 0;
      while (stream->Next()) {
        ++windows;
      }
      const double elapsed_s = timer.ElapsedSeconds();
      FailpointRegistry::Instance().DisarmAll();
      CHECK(stream->status().code() == StatusCode::kDeadlineExceeded);
      if (elapsed_s < total_s) {
        total_s = elapsed_s;
        overshoot_s = elapsed_s - deadline_ms * 1e-3;
        delivered = windows;
      }
    }
    const double overshoot_ms = overshoot_s * 1e3;
    const double overshoot_bands = overshoot_ms / band_delay_ms;
    std::fprintf(out,
                 ",\n  {\"bench\": \"hard_deadline_cancel\", \"n_series\": "
                 "%lld, \"num_basic_windows\": %lld, \"basic_window\": "
                 "%lld,\n"
                 "   \"deadline_ms\": %.1f, \"band_delay_ms\": %.1f, "
                 "\"total_ms\": %.3f, \"overshoot_ms\": %.3f, "
                 "\"overshoot_bands\": %.2f, \"windows_delivered\": %lld}",
                 static_cast<long long>(n), static_cast<long long>(nb),
                 static_cast<long long>(kBasicWindow), deadline_ms,
                 band_delay_ms, total_s * 1e3, overshoot_ms, overshoot_bands,
                 static_cast<long long>(delivered));
    std::fprintf(stderr,
                 "hard deadline n=%lld: deadline %.0f ms, terminated at "
                 "%.3f ms (overshoot %.3f ms = %.2f band-widths), %lld "
                 "windows delivered\n",
                 static_cast<long long>(n), deadline_ms, total_s * 1e3,
                 overshoot_ms, overshoot_bands,
                 static_cast<long long>(delivered));
  }
#else
  std::fprintf(out,
               ",\n  {\"bench\": \"hard_deadline_cancel\", \"n_series\": 128, "
               "\"skipped\": true}");
  std::fprintf(stderr,
               "hard deadline: skipped (DANGORON_FAILPOINTS=OFF)\n");
#endif  // DANGORON_FAILPOINTS_ENABLED
  std::fprintf(out, "\n]\n");
  std::fclose(out);
}

}  // namespace
}  // namespace dangoron

int main(int argc, char** argv) {
  // Like bench_microkernels: the JSON comparison runs on full sweeps only;
  // --serving_comparison=on|off overrides either way.
  bool list_only = false;
  bool filtered = false;
  int forced = 0;  // +1 on, -1 off
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.starts_with("--benchmark_list_tests")) {
      list_only = true;
    } else if (arg.starts_with("--benchmark_filter")) {
      filtered = true;
    }
    if (arg == "--serving_comparison=on") {
      forced = 1;
    } else if (arg == "--serving_comparison=off") {
      forced = -1;
    } else {
      argv[out++] = argv[i];  // strip our flag before benchmark parsing
    }
  }
  argv[out] = nullptr;  // keep the argv[argc] == NULL invariant
  argc = out;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const bool run_comparison =
      forced == 1 || (forced == 0 && !list_only && !filtered);
  if (run_comparison) {
    dangoron::WriteServingComparisonJson("BENCH_serving.json");
  }
  return 0;
}
