// Experiment E8: the horizontal (pivot / triangle-inequality) pruning
// ablation.
//
// For each pivot count P, the engine first computes exact pivot-to-all
// correlations per window (P*N cells) and then prunes any pair whose
// intersected triangle-inequality upper bound falls below beta. The bound
// is a theorem, so results stay exact; the question the ablation answers is
// whether the pruned cells pay for the pivot scans. Pruning shines on
// block-structured data (pivots inside a block certify that cross-block
// pairs cannot clear the threshold).

#include <cstdio>

#include "engine/dangoron_engine.h"
#include "eval/table.h"
#include "eval/workloads.h"
#include "tomborg/tomborg.h"

namespace dangoron {
namespace {

Status RunGrid(const char* workload_name, const TimeSeriesMatrix& data,
               const SlidingQuery& query, Table* table) {
  for (const int32_t pivots : {0, 2, 4, 8, 16}) {
    DangoronOptions options;
    options.enable_jumping = false;  // isolate the horizontal effect
    options.horizontal_pruning = pivots > 0;
    options.num_pivots = pivots;
    DangoronEngine engine(options);
    ASSIGN_OR_RETURN(EngineRun run, RunEngineTimed(&engine, data, query, 2));
    const EngineStats& stats = run.stats;
    table->AddRow()
        .Add(workload_name)
        .AddInt(pivots)
        .AddTime(run.query_seconds)
        .AddPercent(static_cast<double>(stats.cells_horizontal_pruned) /
                    static_cast<double>(stats.cells_total))
        .AddInt(stats.pivot_evaluations)
        .AddInt(run.result.TotalEdges());
  }
  return Status::Ok();
}

int Run() {
  std::printf("E8: horizontal pruning ablation (jumping disabled; exact "
              "results by construction)\n\n");
  Table table({"workload", "pivots", "query", "pruned cells",
               "pivot evals", "edges"});

  {
    ClimateWorkload workload;
    workload.num_stations = 64;
    workload.num_hours = 24 * 182;
    const auto data = workload.Generate();
    if (!data.ok()) {
      std::fprintf(stderr, "climate: %s\n",
                   data.status().ToString().c_str());
      return 1;
    }
    const Status status =
        RunGrid("climate", *data, workload.DefaultQuery(0.85), &table);
    if (!status.ok()) {
      std::fprintf(stderr, "climate grid: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  {
    TomborgSpec spec;
    spec.num_series = 64;
    spec.length = 24 * 182;
    spec.correlation.family = CorrelationFamily::kBlock;
    spec.correlation.a = 0.9;
    spec.correlation.b = 0.1;
    spec.correlation.blocks = 8;
    const auto dataset = GenerateTomborg(spec);
    if (!dataset.ok()) {
      std::fprintf(stderr, "tomborg: %s\n",
                   dataset.status().ToString().c_str());
      return 1;
    }
    SlidingQuery query;
    query.start = 0;
    query.end = spec.length;
    query.window = 24 * 30;
    query.step = 24;
    query.threshold = 0.85;
    const Status status = RunGrid("block(8)", dataset->data, query, &table);
    if (!status.ok()) {
      std::fprintf(stderr, "block grid: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  std::printf("%s\n", table.ToString().c_str());
  std::printf("expected shape: pruned fraction rises with pivots, strongest "
              "on block-structured data; edges identical in every row\n");
  return 0;
}

}  // namespace
}  // namespace dangoron

int main() { return dangoron::Run(); }
