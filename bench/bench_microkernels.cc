// Experiment E10: microkernel costs underlying the experiment tables
// (google-benchmark). These pin the constants the analytical cost model in
// DESIGN.md argues with: per-cell evaluation cost of each engine family,
// sketch build throughput, FFT throughput for Tomborg.

#include <benchmark/benchmark.h>

#include <complex>
#include <vector>

#include "bound/bounds.h"
#include "common/rng.h"
#include "corr/pearson.h"
#include "dft/fft.h"
#include "sketch/basic_window_index.h"
#include "ts/generators.h"

namespace dangoron {
namespace {

// ------------------------------------------------------- Pearson kernels --

void BM_PearsonNaive(benchmark::State& state) {
  const int64_t window = state.range(0);
  Rng rng(1);
  std::vector<double> x, y;
  GenerateCorrelatedPair(window, 0.5, &rng, &x, &y);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PearsonNaive(x, y));
  }
  state.SetItemsProcessed(state.iterations() * window);
}
BENCHMARK(BM_PearsonNaive)->Arg(24)->Arg(720)->Arg(8760);

void BM_SlidingMomentsStep(benchmark::State& state) {
  const int64_t step = state.range(0);
  Rng rng(2);
  std::vector<double> x, y;
  GenerateCorrelatedPair(1 << 20, 0.5, &rng, &x, &y);
  SlidingPairMoments moments(x, y, 0, 720);
  int64_t position = 0;
  for (auto _ : state) {
    if (position + step + 720 >= static_cast<int64_t>(x.size())) {
      state.PauseTiming();
      moments = SlidingPairMoments(x, y, 0, 720);
      position = 0;
      state.ResumeTiming();
    }
    moments.Slide(step);
    position += step;
    benchmark::DoNotOptimize(moments.Correlation());
  }
}
BENCHMARK(BM_SlidingMomentsStep)->Arg(1)->Arg(24);

// ------------------------------------------------------------ Sketch ops --

struct IndexFixture {
  TimeSeriesMatrix data;
  std::optional<BasicWindowIndex> index;

  explicit IndexFixture(int64_t n = 32, int64_t nb = 365, int64_t b = 24) {
    Rng rng(3);
    data = GenerateWhiteNoise(n, nb * b, &rng);
    BasicWindowIndexOptions options;
    options.basic_window = b;
    auto built = BasicWindowIndex::Build(data, options);
    index.emplace(std::move(*built));
  }
};

void BM_SketchPairRangeCorrelation(benchmark::State& state) {
  static IndexFixture* fixture = new IndexFixture();
  const BasicWindowIndex& index = *fixture->index;
  int64_t w = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.PairRangeCorrelation(7, w, w + 30));
    w = (w + 1) % (index.num_basic_windows() - 30);
  }
}
BENCHMARK(BM_SketchPairRangeCorrelation);

void BM_TsubasaStyleRecombination(benchmark::State& state) {
  // O(ns) per-window recombination: the baseline's per-cell cost.
  const int64_t ns = state.range(0);
  static IndexFixture* fixture = new IndexFixture();
  const BasicWindowIndex& index = *fixture->index;
  int64_t w = 0;
  for (auto _ : state) {
    double dot = 0.0;
    for (int64_t k = 0; k < ns; ++k) {
      dot += index.DotRange(7, w + k, w + k + 1);
    }
    benchmark::DoNotOptimize(dot);
    w = (w + 1) % (index.num_basic_windows() - ns);
  }
  state.SetItemsProcessed(state.iterations() * ns);
}
BENCHMARK(BM_TsubasaStyleRecombination)->Arg(7)->Arg(30)->Arg(60);

void BM_SketchBuildPerPair(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(4);
  TimeSeriesMatrix data = GenerateWhiteNoise(n, 24 * 365, &rng);
  BasicWindowIndexOptions options;
  options.basic_window = 24;
  for (auto _ : state) {
    auto index = BasicWindowIndex::Build(data, options);
    benchmark::DoNotOptimize(index.ok());
  }
  state.SetItemsProcessed(state.iterations() * n * (n - 1) / 2);
}
BENCHMARK(BM_SketchBuildPerPair)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

// ------------------------------------------------------------ Jump search --

void BM_JumpBinarySearch(benchmark::State& state) {
  static IndexFixture* fixture = new IndexFixture();
  const BasicWindowIndex& index = *fixture->index;
  const TemporalBound bound(&index, 30, 1);
  int64_t w = 0;
  const int64_t limit = index.num_basic_windows() - 160;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bound.MaxSkippableBelow(3, w, 0.1, 0.8, 128));
    w = (w + 1) % limit;
  }
}
BENCHMARK(BM_JumpBinarySearch);

// ------------------------------------------------------------------- FFT --

void BM_Fft(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(5);
  std::vector<std::complex<double>> data(static_cast<size_t>(n));
  for (auto& v : data) {
    v = {rng.NextGaussian(), rng.NextGaussian()};
  }
  for (auto _ : state) {
    std::vector<std::complex<double>> work = data;
    benchmark::DoNotOptimize(Fft(&work, false).ok());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Fft)->Arg(1024)->Arg(8760)->Arg(16384);

void BM_InverseRealDft(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(6);
  std::vector<double> series(static_cast<size_t>(n));
  for (double& v : series) {
    v = rng.NextGaussian();
  }
  const auto spectrum = RealDft(series);
  for (auto _ : state) {
    benchmark::DoNotOptimize(InverseRealDft(*spectrum, n).ok());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_InverseRealDft)->Arg(4096)->Arg(8760);

}  // namespace
}  // namespace dangoron

BENCHMARK_MAIN();
