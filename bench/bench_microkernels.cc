// Experiment E10: microkernel costs underlying the experiment tables
// (google-benchmark). These pin the constants the analytical cost model in
// DESIGN.md argues with: per-cell evaluation cost of each engine family,
// sketch build throughput, FFT throughput for Tomborg.

#include <benchmark/benchmark.h>

#include <complex>
#include <cstdio>
#include <string_view>
#include <vector>

#include "bound/bounds.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "corr/pearson.h"
#include "dft/fft.h"
#include "sketch/basic_window_index.h"
#include "ts/generators.h"

namespace dangoron {
namespace {

// ------------------------------------------------------- Pearson kernels --

void BM_PearsonNaive(benchmark::State& state) {
  const int64_t window = state.range(0);
  Rng rng(1);
  std::vector<double> x, y;
  GenerateCorrelatedPair(window, 0.5, &rng, &x, &y);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PearsonNaive(x, y));
  }
  state.SetItemsProcessed(state.iterations() * window);
}
BENCHMARK(BM_PearsonNaive)->Arg(24)->Arg(720)->Arg(8760);

void BM_SlidingMomentsStep(benchmark::State& state) {
  const int64_t step = state.range(0);
  Rng rng(2);
  std::vector<double> x, y;
  GenerateCorrelatedPair(1 << 20, 0.5, &rng, &x, &y);
  SlidingPairMoments moments(x, y, 0, 720);
  int64_t position = 0;
  for (auto _ : state) {
    if (position + step + 720 >= static_cast<int64_t>(x.size())) {
      state.PauseTiming();
      moments = SlidingPairMoments(x, y, 0, 720);
      position = 0;
      state.ResumeTiming();
    }
    moments.Slide(step);
    position += step;
    benchmark::DoNotOptimize(moments.Correlation());
  }
}
BENCHMARK(BM_SlidingMomentsStep)->Arg(1)->Arg(24);

// ------------------------------------------------------------ Sketch ops --

struct IndexFixture {
  TimeSeriesMatrix data;
  std::optional<BasicWindowIndex> index;

  explicit IndexFixture(int64_t n = 32, int64_t nb = 365, int64_t b = 24) {
    Rng rng(3);
    data = GenerateWhiteNoise(n, nb * b, &rng);
    BasicWindowIndexOptions options;
    options.basic_window = b;
    auto built = BasicWindowIndex::Build(data, options);
    index.emplace(std::move(*built));
  }
};

void BM_SketchPairRangeCorrelation(benchmark::State& state) {
  static IndexFixture* fixture = new IndexFixture();
  const BasicWindowIndex& index = *fixture->index;
  int64_t w = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.PairRangeCorrelation(7, w, w + 30));
    w = (w + 1) % (index.num_basic_windows() - 30);
  }
}
BENCHMARK(BM_SketchPairRangeCorrelation);

void BM_TsubasaStyleRecombination(benchmark::State& state) {
  // O(ns) per-window recombination: the baseline's per-cell cost.
  const int64_t ns = state.range(0);
  static IndexFixture* fixture = new IndexFixture();
  const BasicWindowIndex& index = *fixture->index;
  int64_t w = 0;
  for (auto _ : state) {
    double dot = 0.0;
    for (int64_t k = 0; k < ns; ++k) {
      dot += index.DotRange(7, w + k, w + k + 1);
    }
    benchmark::DoNotOptimize(dot);
    w = (w + 1) % (index.num_basic_windows() - ns);
  }
  state.SetItemsProcessed(state.iterations() * ns);
}
BENCHMARK(BM_TsubasaStyleRecombination)->Arg(7)->Arg(30)->Arg(60);

void SketchBuildBench(benchmark::State& state, bool blocked) {
  const int64_t n = state.range(0);
  Rng rng(4);
  TimeSeriesMatrix data = GenerateWhiteNoise(n, 24 * 365, &rng);
  BasicWindowIndexOptions options;
  options.basic_window = 24;
  options.use_blocked_kernel = blocked;
  for (auto _ : state) {
    auto index = BasicWindowIndex::Build(data, options);
    benchmark::DoNotOptimize(index.ok());
  }
  state.SetItemsProcessed(state.iterations() * n * (n - 1) / 2);
}

void BM_SketchBuildScalar(benchmark::State& state) {
  SketchBuildBench(state, /*blocked=*/false);
}
BENCHMARK(BM_SketchBuildScalar)->Arg(16)->Arg(32)->Arg(96)
    ->Unit(benchmark::kMillisecond);

void BM_SketchBuildBlocked(benchmark::State& state) {
  SketchBuildBench(state, /*blocked=*/true);
}
BENCHMARK(BM_SketchBuildBlocked)->Arg(16)->Arg(32)->Arg(96)
    ->Unit(benchmark::kMillisecond);

// ------------------------------------------------------------ Jump search --

void BM_JumpBinarySearch(benchmark::State& state) {
  static IndexFixture* fixture = new IndexFixture();
  const BasicWindowIndex& index = *fixture->index;
  const TemporalBound bound(&index, 30, 1);
  int64_t w = 0;
  const int64_t limit = index.num_basic_windows() - 160;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bound.MaxSkippableBelow(3, w, 0.1, 0.8, 128));
    w = (w + 1) % limit;
  }
}
BENCHMARK(BM_JumpBinarySearch);

// ------------------------------------------------------------------- FFT --

void BM_Fft(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(5);
  std::vector<std::complex<double>> data(static_cast<size_t>(n));
  for (auto& v : data) {
    v = {rng.NextGaussian(), rng.NextGaussian()};
  }
  for (auto _ : state) {
    std::vector<std::complex<double>> work = data;
    benchmark::DoNotOptimize(Fft(&work, false).ok());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Fft)->Arg(1024)->Arg(8760)->Arg(16384);

void BM_InverseRealDft(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(6);
  std::vector<double> series(static_cast<size_t>(n));
  for (double& v : series) {
    v = rng.NextGaussian();
  }
  const auto spectrum = RealDft(series);
  for (auto _ : state) {
    benchmark::DoNotOptimize(InverseRealDft(*spectrum, n).ok());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_InverseRealDft)->Arg(4096)->Arg(8760);

// ------------------------------------------- scalar vs blocked kernel JSON --

// Times one full pair-sketch build; returns the best of `reps` runs.
double TimeBuildSeconds(const TimeSeriesMatrix& data,
                        const BasicWindowIndexOptions& options, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Stopwatch timer;
    auto index = BasicWindowIndex::Build(data, options);
    benchmark::DoNotOptimize(index.ok());
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

// Machine-readable record of the index-build kernel comparison, one JSON
// object per problem size, so the perf trajectory is tracked across PRs.
// ns_per_pair_window is the cost of one (pair, basic window) sketch cell;
// gbs is the effective rate over the 2 * b doubles each cell consumes.
void WriteKernelComparisonJson(const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  const int64_t b = 24;
  const int64_t nb = 90;
  std::fprintf(out, "[\n");
  bool first = true;
  for (const int64_t n : {64, 256, 512}) {
    Rng rng(7);
    TimeSeriesMatrix data = GenerateWhiteNoise(n, nb * b, &rng);
    BasicWindowIndexOptions options;
    options.basic_window = b;

    options.use_blocked_kernel = false;
    const double scalar_s = TimeBuildSeconds(data, options, 3);
    options.use_blocked_kernel = true;
    const double blocked_s = TimeBuildSeconds(data, options, 3);

    const double pair_windows =
        static_cast<double>(n * (n - 1) / 2) * static_cast<double>(nb);
    const double bytes = pair_windows * 2.0 * static_cast<double>(b) * 8.0;
    std::fprintf(
        out,
        "%s  {\"kernel\": \"sketch_build\", \"n_series\": %lld, "
        "\"num_basic_windows\": %lld, \"basic_window\": %lld,\n"
        "   \"scalar_ns_per_pair_window\": %.3f, "
        "\"blocked_ns_per_pair_window\": %.3f,\n"
        "   \"scalar_gbs\": %.3f, \"blocked_gbs\": %.3f, "
        "\"speedup\": %.3f}",
        first ? "" : ",\n", static_cast<long long>(n),
        static_cast<long long>(nb), static_cast<long long>(b),
        scalar_s / pair_windows * 1e9, blocked_s / pair_windows * 1e9,
        bytes / scalar_s * 1e-9, bytes / blocked_s * 1e-9,
        scalar_s / blocked_s);
    first = false;
    std::fprintf(stderr,
                 "kernel comparison n=%lld: scalar %.1f ms, blocked %.1f ms, "
                 "speedup %.2fx\n",
                 static_cast<long long>(n), scalar_s * 1e3, blocked_s * 1e3,
                 scalar_s / blocked_s);
  }
  std::fprintf(out, "\n]\n");
  std::fclose(out);
}

}  // namespace
}  // namespace dangoron

int main(int argc, char** argv) {
  // The kernel comparison (and its BENCH_kernels.json overwrite) runs on
  // full sweeps only: list/help and filtered invocations stay side-effect
  // free. --kernel_comparison=on|off overrides either way — e.g.
  // `--kernel_comparison=on --benchmark_filter=NONE` emits just the JSON.
  bool list_only = false;
  bool filtered = false;
  int forced = 0;  // +1 on, -1 off
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.starts_with("--benchmark_list_tests")) {
      list_only = true;
    } else if (arg.starts_with("--benchmark_filter")) {
      filtered = true;
    }
    if (arg == "--kernel_comparison=on") {
      forced = 1;
    } else if (arg == "--kernel_comparison=off") {
      forced = -1;
    } else {
      argv[out++] = argv[i];  // strip our flag before benchmark parsing
    }
  }
  argv[out] = nullptr;  // keep the argv[argc] == NULL invariant
  argc = out;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const bool run_comparison =
      forced == 1 || (forced == 0 && !list_only && !filtered);
  if (run_comparison) {
    dangoron::WriteKernelComparisonJson("BENCH_kernels.json");
  }
  return 0;
}
