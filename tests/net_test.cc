// Network front-end tests: LanedTaskPool scheduling, WireServer lane
// classification, and socketpair-driven end-to-end runs of the full wire
// path — including the acceptance-critical properties: wire results are
// byte-identical to in-process streaming, and a client disconnect (or
// cancel frame) cancels the producer with no leaked window claims.

#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/sync.h"
#include "net/task_lanes.h"
#include "net/wire_server.h"
#include "serve/server.h"
#include "ts/generators.h"
#include "wire/client.h"
#include "wire/wire_format.h"

namespace dangoron {
namespace {

// ---------------------------------------------------------- LanedTaskPool --

TEST(LanedTaskPoolTest, StrictPriorityAcrossLanes) {
  LanedTaskPool pool(1);
  Mutex mutex;
  CondVar cv;
  bool release = false;
  std::vector<TaskLane> order;

  // Occupy the single worker so the next three posts pile up queued...
  ASSERT_TRUE(pool.Post(TaskLane::kHigh, [&] {
    MutexLock lock(mutex);
    while (!release) {
      cv.Wait(mutex);
    }
  }));
  // ...then post in worst-case order: low first, high last.
  for (const TaskLane lane :
       {TaskLane::kLow, TaskLane::kMedium, TaskLane::kHigh}) {
    ASSERT_TRUE(pool.Post(lane, [&, lane] {
      MutexLock lock(mutex);
      order.push_back(lane);
    }));
  }
  {
    MutexLock lock(mutex);
    release = true;
  }
  cv.NotifyAll();
  pool.Shutdown();

  // The worker must have drained them highest-first regardless of arrival.
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], TaskLane::kHigh);
  EXPECT_EQ(order[1], TaskLane::kMedium);
  EXPECT_EQ(order[2], TaskLane::kLow);

  const TaskLaneStats stats = pool.stats();
  for (int lane = 0; lane < kNumTaskLanes; ++lane) {
    EXPECT_EQ(stats.posted[lane], stats.executed[lane]);
    EXPECT_EQ(stats.queued[lane], 0);
  }
}

TEST(LanedTaskPoolTest, ShutdownDrainsQueuedWorkThenRefuses) {
  LanedTaskPool pool(2);
  std::atomic<int> executed{0};
  for (int task = 0; task < 64; ++task) {
    ASSERT_TRUE(pool.Post(static_cast<TaskLane>(task % kNumTaskLanes),
                          [&] { executed.fetch_add(1); }));
  }
  pool.Shutdown();
  EXPECT_EQ(executed.load(), 64);
  EXPECT_FALSE(pool.Post(TaskLane::kHigh, [&] { executed.fetch_add(1); }));
  EXPECT_EQ(executed.load(), 64);
}

// -------------------------------------------------------- shared fixture --

constexpr int64_t kBasicWindow = 8;
constexpr int64_t kNumSeries = 16;
constexpr int64_t kLength = kBasicWindow * 40;  // 320 samples

SlidingQuery TestQuery() {
  SlidingQuery query;
  query.start = 0;
  query.end = kLength;
  query.window = 4 * kBasicWindow;
  query.step = kBasicWindow;
  query.threshold = 0.1;
  query.absolute = true;  // dense edge sets: exercises the delta packing
  return query;
}

class WireE2ETest : public ::testing::Test {
 protected:
  WireE2ETest() : server_(ServerOptions()) {
    Rng rng(3);
    CHECK(server_
              .AddDataset("d",
                          GenerateWhiteNoise(kNumSeries, kLength, &rng))
              .ok());
  }

  static DangoronServerOptions ServerOptions() {
    DangoronServerOptions options;
    options.num_threads = 2;
    options.basic_window = kBasicWindow;
    return options;
  }

  /// Starts a listener-less WireServer and hands back a connected client
  /// over a socketpair — the whole wire path with no network stack.
  std::unique_ptr<WireClient> ConnectOverSocketpair(
      WireServer* wire, int* raw_peer = nullptr) {
    int fds[2];
    CHECK(socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0);
    CHECK(wire->AddConnection(fds[0]).ok());
    if (raw_peer != nullptr) {
      *raw_peer = fds[1];
      return nullptr;
    }
    return WireClient::Adopt(fds[1]);
  }

  /// Polls `predicate` for up to two seconds — stats updated by the IO
  /// thread and workers land asynchronously after a disconnect.
  static bool PollFor(const std::function<bool()>& predicate) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(2);
    while (std::chrono::steady_clock::now() < deadline) {
      if (predicate()) {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return predicate();
  }

  DangoronServer server_;
};

// ----------------------------------------------------------- ClassifyLane --

TEST_F(WireE2ETest, ClassifyLaneRoutesByDeadlineAndWarmth) {
  WireServerOptions options;
  options.port = -1;  // classification needs no sockets at all
  WireServer wire(&server_, options);

  WireRequest request;
  request.dataset = "d";
  request.query = TestQuery();

  // Cold dataset, no deadline: an index build must not jump the queue.
  EXPECT_EQ(wire.ClassifyLane(request), TaskLane::kLow);

  // Cold but deadline-bound: middle lane.
  request.options.deadline_ms = 10000;
  EXPECT_EQ(wire.ClassifyLane(request), TaskLane::kMedium);

  // A tight deadline rides high regardless of cache state.
  request.options.deadline_ms = 100;
  EXPECT_EQ(wire.ClassifyLane(request), TaskLane::kHigh);

  // Warm the sketch; now even deadline-less requests are high-lane.
  ASSERT_TRUE(server_.Query("d", TestQuery()).ok());
  ASSERT_TRUE(server_.HasPreparedSketch("d"));
  request.options.deadline_ms.reset();
  EXPECT_EQ(wire.ClassifyLane(request), TaskLane::kHigh);
}

// ------------------------------------------------------------ end to end --

TEST_F(WireE2ETest, SocketpairStreamIsByteIdenticalToInProcess) {
  WireServerOptions options;
  options.port = -1;
  WireServer wire(&server_, options);
  ASSERT_TRUE(wire.Start().ok());
  auto client = ConnectOverSocketpair(&wire);

  WireRequest request;
  request.dataset = "d";
  request.query = TestQuery();
  ASSERT_TRUE(client->Submit(request).ok());

  // Drain the wire stream and the in-process stream side by side, comparing
  // the *encoded frame bytes* of every window: the wire must not perturb a
  // single bit of any correlation value or edge index.
  QueryRequest in_process;
  in_process.dataset = "d";
  in_process.query = TestQuery();
  auto reference = server_.SubmitStreaming(in_process);

  int64_t windows = 0;
  while (true) {
    auto from_wire = client->Next();
    ASSERT_TRUE(from_wire.ok()) << from_wire.status().message();
    auto from_ref = reference->Next();
    if (!from_wire->has_value()) {
      EXPECT_FALSE(from_ref.has_value());
      break;
    }
    ASSERT_TRUE(from_ref.has_value());
    std::string wire_bytes;
    std::string ref_bytes;
    EncodeWindowFrame((*from_wire)->window_index, *(*from_wire)->edges,
                      &wire_bytes);
    EncodeWindowFrame(from_ref->window_index, *from_ref->edges, &ref_bytes);
    ASSERT_EQ(wire_bytes.size(), ref_bytes.size());
    ASSERT_EQ(std::memcmp(wire_bytes.data(), ref_bytes.data(),
                          wire_bytes.size()),
              0)
        << "window " << from_ref->window_index
        << " differs between wire and in-process delivery";
    ++windows;
  }
  EXPECT_TRUE(reference->status().ok());
  EXPECT_TRUE(client->result_status().ok())
      << client->result_status().message();
  const int64_t expected_windows =
      (TestQuery().end - TestQuery().window) / TestQuery().step + 1;
  EXPECT_EQ(windows, expected_windows);
  EXPECT_EQ(client->summary().windows_delivered, windows);

  // Back-to-back request on the same connection: the protocol is
  // sequential, not one-shot.
  ASSERT_TRUE(client->Submit(request).ok());
  int64_t rerun_windows = 0;
  while (true) {
    auto window = client->Next();
    ASSERT_TRUE(window.ok());
    if (!window->has_value()) {
      break;
    }
    ++rerun_windows;
  }
  EXPECT_TRUE(client->result_status().ok());
  EXPECT_EQ(rerun_windows, expected_windows);

  wire.Stop();
  const WireServerStats stats = wire.stats();
  EXPECT_EQ(stats.connections_adopted, 1);
  EXPECT_EQ(stats.requests, 2);
  EXPECT_EQ(stats.protocol_errors, 0);
  EXPECT_EQ(server_.stats().inflight_window_claims, 0);
}

TEST_F(WireE2ETest, EndZeroMeansFullRangeAndFingerprintIsChecked) {
  WireServerOptions options;
  options.port = -1;
  WireServer wire(&server_, options);
  ASSERT_TRUE(wire.Start().ok());
  auto client = ConnectOverSocketpair(&wire);

  // end = 0: the server resolves it to the dataset's full length — the
  // remote caller does not need to know the series length.
  WireRequest request;
  request.dataset = "d";
  request.query = TestQuery();
  request.query.end = 0;
  auto fingerprint = server_.DatasetFingerprint("d");
  ASSERT_TRUE(fingerprint.ok());
  request.expected_fingerprint = *fingerprint;
  ASSERT_TRUE(client->Submit(request).ok());
  int64_t windows = 0;
  while (true) {
    auto window = client->Next();
    ASSERT_TRUE(window.ok());
    if (!window->has_value()) {
      break;
    }
    ++windows;
  }
  ASSERT_TRUE(client->result_status().ok())
      << client->result_status().message();
  EXPECT_EQ(windows,
            (kLength - TestQuery().window) / TestQuery().step + 1);

  // A stale fingerprint must be refused before any evaluation: a router
  // never silently queries a shard whose data drifted.
  request.expected_fingerprint = *fingerprint + 1;
  ASSERT_TRUE(client->Submit(request).ok());
  auto window = client->Next();
  ASSERT_TRUE(window.ok());
  EXPECT_FALSE(window->has_value());
  EXPECT_EQ(client->result_status().code(),
            StatusCode::kFailedPrecondition);

  // Unknown dataset: NotFound, zero windows, connection still usable.
  request.dataset = "nope";
  request.expected_fingerprint = 0;
  ASSERT_TRUE(client->Submit(request).ok());
  window = client->Next();
  ASSERT_TRUE(window.ok());
  EXPECT_FALSE(window->has_value());
  EXPECT_EQ(client->result_status().code(), StatusCode::kNotFound);

  wire.Stop();
}

TEST_F(WireE2ETest, DisconnectMidStreamCancelsProducer) {
  WireServerOptions options;
  options.port = -1;
  // A tiny outbuf watermark so the draining worker blocks early: the
  // disconnect must reach a producer that is genuinely mid-stream.
  options.outbuf_high_watermark = int64_t{1} << 14;
  WireServer wire(&server_, options);
  ASSERT_TRUE(wire.Start().ok());

  {
    auto client = ConnectOverSocketpair(&wire);
    WireRequest request;
    request.dataset = "d";
    request.query = TestQuery();
    request.options.queue_capacity = 2;  // tight producer queue
    ASSERT_TRUE(client->Submit(request).ok());
    // Read exactly one window, then vanish (the destructor closes the fd).
    auto window = client->Next();
    ASSERT_TRUE(window.ok());
    ASSERT_TRUE(window->has_value());
  }

  // The disconnect propagates: epoll sees the hangup, the IO thread
  // cancels the active stream, the producer aborts, and both layers count
  // it. Poll — all of that is asynchronous.
  EXPECT_TRUE(PollFor([&] { return wire.stats().disconnect_cancels >= 1; }))
      << "wire layer never mapped the disconnect to a cancel";
  EXPECT_TRUE(
      PollFor([&] { return server_.stats().streams_cancelled >= 1; }))
      << "serving layer never saw the cancelled stream";

  // No leaked claims once the cancelled producer unwinds, and the server
  // still serves: a fresh connection completes the same query in full.
  EXPECT_TRUE(PollFor(
      [&] { return server_.stats().inflight_window_claims == 0; }));
  auto client = ConnectOverSocketpair(&wire);
  WireRequest request;
  request.dataset = "d";
  request.query = TestQuery();
  ASSERT_TRUE(client->Submit(request).ok());
  int64_t windows = 0;
  while (true) {
    auto window = client->Next();
    ASSERT_TRUE(window.ok());
    if (!window->has_value()) {
      break;
    }
    ++windows;
  }
  EXPECT_TRUE(client->result_status().ok());
  EXPECT_EQ(windows,
            (TestQuery().end - TestQuery().window) / TestQuery().step + 1);

  wire.Stop();
  EXPECT_EQ(server_.stats().inflight_window_claims, 0);
}

TEST_F(WireE2ETest, CancelFrameAbortsTheStream) {
  WireServerOptions options;
  options.port = -1;
  options.outbuf_high_watermark = int64_t{1} << 14;
  WireServer wire(&server_, options);
  ASSERT_TRUE(wire.Start().ok());
  auto client = ConnectOverSocketpair(&wire);

  WireRequest request;
  request.dataset = "d";
  request.query = TestQuery();
  request.options.queue_capacity = 2;
  ASSERT_TRUE(client->Submit(request).ok());

  // With a 16 KiB watermark and a 2-window queue the producer cannot get
  // anywhere near the end of a ~37-window dense stream before the cancel
  // frame lands, so the terminal status is deterministically Cancelled.
  ASSERT_TRUE(client->Cancel().ok());
  int64_t windows = 0;
  while (true) {
    auto window = client->Next();
    ASSERT_TRUE(window.ok()) << window.status().message();
    if (!window->has_value()) {
      break;
    }
    ++windows;  // buffered frames from before the cancel still arrive
  }
  EXPECT_EQ(client->result_status().code(), StatusCode::kCancelled);
  EXPECT_EQ(client->summary().windows_delivered, windows);

  wire.Stop();
  EXPECT_EQ(wire.stats().cancel_frames, 1);
  EXPECT_EQ(server_.stats().inflight_window_claims, 0);
}

TEST_F(WireE2ETest, BadMagicIsAProtocolError) {
  WireServerOptions options;
  options.port = -1;
  WireServer wire(&server_, options);
  ASSERT_TRUE(wire.Start().ok());
  int raw = -1;
  ConnectOverSocketpair(&wire, &raw);
  ASSERT_GE(raw, 0);

  const char junk[] = "HTTP/1.1 GET /\r\n";
  ASSERT_EQ(send(raw, junk, sizeof(junk) - 1, 0),
            static_cast<ssize_t>(sizeof(junk) - 1));

  // The server answers with a terminal error status frame, then closes.
  FrameReader reader(/*expect_preamble=*/false);
  std::vector<uint8_t> buffer(4096);
  bool saw_status = false;
  bool closed = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (std::chrono::steady_clock::now() < deadline && !closed) {
    const ssize_t n = recv(raw, buffer.data(), buffer.size(), MSG_DONTWAIT);
    if (n == 0) {
      closed = true;
      break;
    }
    if (n < 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      continue;
    }
    reader.Feed(buffer.data(), static_cast<size_t>(n));
    Frame frame;
    bool have = false;
    ASSERT_TRUE(reader.Next(&frame, &have).ok());
    if (have) {
      ASSERT_EQ(frame.type, FrameType::kStatus);
      Status status;
      WireSummary summary;
      ASSERT_TRUE(DecodeStatusPayload(frame.payload, &status, &summary).ok());
      EXPECT_FALSE(status.ok());
      saw_status = true;
    }
  }
  EXPECT_TRUE(saw_status);
  EXPECT_TRUE(closed);
  close(raw);

  EXPECT_TRUE(PollFor([&] { return wire.stats().protocol_errors >= 1; }));
  wire.Stop();
}

TEST_F(WireE2ETest, HostileRequestLengthIsAProtocolErrorNotACrash) {
  // Regression: a request frame whose dataset-length varint encodes a
  // value near 2^64 once wrapped the decoder's bounds check and threw an
  // uncaught std::length_error on the IO thread — a handful of hostile
  // bytes after connect took the whole daemon down. It must instead be a
  // per-connection protocol error that leaves the server serving.
  WireServerOptions options;
  options.port = -1;
  WireServer wire(&server_, options);
  ASSERT_TRUE(wire.Start().ok());
  int raw = -1;
  ConnectOverSocketpair(&wire, &raw);
  ASSERT_GE(raw, 0);

  std::string bytes;
  AppendPreamble(&bytes);
  std::string payload;
  PutVarint(std::numeric_limits<uint64_t>::max(), &payload);  // dataset len
  payload.append(30, 'x');
  AppendFrameHeader(FrameType::kRequest, payload.size(), &bytes);
  bytes.append(payload);
  ASSERT_EQ(send(raw, bytes.data(), bytes.size(), 0),
            static_cast<ssize_t>(bytes.size()));

  // The connection dies as a protocol error...
  EXPECT_TRUE(PollFor([&] { return wire.stats().protocol_errors >= 1; }));
  close(raw);

  // ...and the server is still alive: a fresh connection runs the same
  // query to a clean Ok status.
  auto client = ConnectOverSocketpair(&wire);
  WireRequest request;
  request.dataset = "d";
  request.query = TestQuery();
  ASSERT_TRUE(client->Submit(request).ok());
  while (true) {
    auto window = client->Next();
    ASSERT_TRUE(window.ok());
    if (!window->has_value()) {
      break;
    }
  }
  EXPECT_TRUE(client->result_status().ok());
  wire.Stop();
}

TEST_F(WireE2ETest, TcpListenerServesARealSocket) {
  WireServerOptions options;
  options.port = 0;  // ephemeral
  WireServer wire(&server_, options);
  ASSERT_TRUE(wire.Start().ok());
  ASSERT_GT(wire.port(), 0);

  auto client = WireClient::ConnectTcp("127.0.0.1", wire.port());
  ASSERT_TRUE(client.ok()) << client.status().message();
  WireRequest request;
  request.dataset = "d";
  request.query = TestQuery();
  ASSERT_TRUE((*client)->Submit(request).ok());
  int64_t windows = 0;
  while (true) {
    auto window = (*client)->Next();
    ASSERT_TRUE(window.ok());
    if (!window->has_value()) {
      break;
    }
    ++windows;
  }
  EXPECT_TRUE((*client)->result_status().ok());
  EXPECT_EQ(windows,
            (TestQuery().end - TestQuery().window) / TestQuery().step + 1);
  wire.Stop();
  EXPECT_EQ(wire.stats().connections_accepted, 1);
}

}  // namespace
}  // namespace dangoron
