#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/dangoron_engine.h"
#include "engine/factory.h"
#include "ts/generators.h"

namespace dangoron {
namespace {

TEST(FactoryTest, CreatesEveryKnownEngine) {
  for (const char* name : {"naive", "tsubasa", "dangoron", "parcorr"}) {
    const auto engine = CreateEngine(name);
    ASSERT_TRUE(engine.ok()) << name;
    EXPECT_FALSE((*engine)->name().empty());
  }
}

TEST(FactoryTest, UnknownEngineIsNotFound) {
  const auto engine = CreateEngine("statstream");
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kNotFound);
}

TEST(FactoryTest, OptionParsing) {
  EXPECT_TRUE(CreateEngine("dangoron",
                           "basic_window=12,jump=off,above_jump=on,"
                           "max_jump=5,horizontal=on,pivots=3,threads=2")
                  .ok());
  EXPECT_TRUE(CreateEngine("tsubasa", "basic_window=48,threads=4").ok());
  EXPECT_TRUE(
      CreateEngine("parcorr", "dim=32,seed=7,verify=on,margin=0.2").ok());
  // Whitespace tolerated.
  EXPECT_TRUE(CreateEngine("dangoron", " jump = on , pivots = 2 ").ok());
}

TEST(FactoryTest, BadOptionsRejected) {
  EXPECT_FALSE(CreateEngine("dangoron", "bogus=1").ok());
  EXPECT_FALSE(CreateEngine("naive", "threads=2").ok());  // naive has none
  EXPECT_FALSE(CreateEngine("dangoron", "jump=sideways").ok());
  EXPECT_FALSE(CreateEngine("dangoron", "jump").ok());  // not key=value
  EXPECT_FALSE(CreateEngine("parcorr", "dim=notanumber").ok());
}

TEST(FactoryTest, OptionsReachTheEngine) {
  // A dangoron engine built with jump=off must behave exactly like a
  // directly constructed incremental engine.
  Rng rng(5);
  TimeSeriesMatrix data = GenerateWhiteNoise(6, 24 * 15, &rng);
  SlidingQuery query;
  query.start = 0;
  query.end = data.length();
  query.window = 24 * 4;
  query.step = 24;
  query.threshold = 0.3;

  auto factory_engine = CreateEngine("dangoron", "jump=off,basic_window=24");
  ASSERT_TRUE(factory_engine.ok());
  ASSERT_TRUE((*factory_engine)->Prepare(data).ok());
  auto factory_result = (*factory_engine)->Query(query);
  ASSERT_TRUE(factory_result.ok());
  EXPECT_EQ((*factory_engine)->name(), "dangoron-incremental");
  EXPECT_EQ((*factory_engine)->stats().cells_jumped, 0);

  DangoronOptions options;
  options.enable_jumping = false;
  DangoronEngine direct(options);
  ASSERT_TRUE(direct.Prepare(data).ok());
  auto direct_result = direct.Query(query);
  ASSERT_TRUE(direct_result.ok());

  ASSERT_EQ(factory_result->TotalEdges(), direct_result->TotalEdges());
  for (int64_t k = 0; k < direct_result->num_windows(); ++k) {
    const auto a = factory_result->WindowEdges(k);
    const auto b = direct_result->WindowEdges(k);
    ASSERT_EQ(a.size(), b.size());
    for (size_t e = 0; e < a.size(); ++e) {
      EXPECT_DOUBLE_EQ(a[e].value, b[e].value);
    }
  }
}

TEST(FactoryTest, KnownEngineNamesMentionsAll) {
  const std::string names = KnownEngineNames();
  EXPECT_NE(names.find("naive"), std::string::npos);
  EXPECT_NE(names.find("tsubasa"), std::string::npos);
  EXPECT_NE(names.find("dangoron"), std::string::npos);
  EXPECT_NE(names.find("parcorr"), std::string::npos);
}

}  // namespace
}  // namespace dangoron
