#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <vector>

#include "bound/bounds.h"
#include "common/logging.h"
#include "common/rng.h"
#include "corr/pearson.h"
#include "sketch/basic_window_index.h"
#include "ts/generators.h"

namespace dangoron {
namespace {

// ------------------------------------------------------ Horizontal bound --

// The horizontal bound is a theorem (PSD-ness of the 3x3 correlation
// matrix): generate arbitrary triples and verify containment.
TEST(HorizontalBoundTest, AlwaysContainsTrueCorrelation) {
  Rng rng(1);
  for (int trial = 0; trial < 500; ++trial) {
    const int64_t length = 64;
    // Three series with random mutual structure: z arbitrary, x and y are
    // mixtures of z and noise.
    std::vector<double> z(length);
    std::vector<double> x(length);
    std::vector<double> y(length);
    const double ax = rng.NextUniform(-1.0, 1.0);
    const double ay = rng.NextUniform(-1.0, 1.0);
    for (int64_t t = 0; t < length; ++t) {
      z[static_cast<size_t>(t)] = rng.NextGaussian();
      x[static_cast<size_t>(t)] = ax * z[static_cast<size_t>(t)] +
                                  std::sqrt(1 - ax * ax) * rng.NextGaussian();
      y[static_cast<size_t>(t)] = ay * z[static_cast<size_t>(t)] +
                                  std::sqrt(1 - ay * ay) * rng.NextGaussian();
    }
    const double c_xz = PearsonNaive(x, z);
    const double c_yz = PearsonNaive(y, z);
    const double c_xy = PearsonNaive(x, y);
    const HorizontalBound bound = HorizontalBoundFromPivot(c_xz, c_yz);
    EXPECT_GE(c_xy, bound.lower - 1e-9) << "trial " << trial;
    EXPECT_LE(c_xy, bound.upper + 1e-9) << "trial " << trial;
  }
}

TEST(HorizontalBoundTest, DegenerateCases) {
  // Perfectly correlated pivot: c_xy must equal c_yz.
  const HorizontalBound tight = HorizontalBoundFromPivot(1.0, 0.6);
  EXPECT_NEAR(tight.lower, 0.6, 1e-12);
  EXPECT_NEAR(tight.upper, 0.6, 1e-12);

  // Uninformative pivot: full interval.
  const HorizontalBound loose = HorizontalBoundFromPivot(0.0, 0.0);
  EXPECT_NEAR(loose.lower, -1.0, 1e-12);
  EXPECT_NEAR(loose.upper, 1.0, 1e-12);
}

TEST(HorizontalBoundTest, IntervalIsValidAndClamped) {
  Rng rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    const double a = rng.NextUniform(-1.0, 1.0);
    const double b = rng.NextUniform(-1.0, 1.0);
    const HorizontalBound bound = HorizontalBoundFromPivot(a, b);
    EXPECT_LE(bound.lower, bound.upper + 1e-12);
    EXPECT_GE(bound.lower, -1.0 - 1e-12);
    EXPECT_LE(bound.upper, 1.0 + 1e-12);
  }
}

TEST(HorizontalBoundTest, MultiplePivotsTighten) {
  // Intersection across pivots is at least as tight as any single pivot.
  const std::vector<double> c_xz = {0.9, 0.2, -0.5};
  const std::vector<double> c_yz = {0.8, 0.1, -0.4};
  const HorizontalBound multi = HorizontalBoundFromPivots(c_xz, c_yz);
  for (size_t p = 0; p < c_xz.size(); ++p) {
    const HorizontalBound single = HorizontalBoundFromPivot(c_xz[p], c_yz[p]);
    EXPECT_GE(multi.lower, single.lower - 1e-12);
    EXPECT_LE(multi.upper, single.upper + 1e-12);
  }
}

// -------------------------------------------------------- Temporal bound --

struct BoundFixture {
  TimeSeriesMatrix data;
  std::optional<BasicWindowIndex> index;
  int64_t b = 8;
  int64_t nb = 0;

  // Builds a two-series matrix from the given pair generator.
  void Build(std::vector<double> x, std::vector<double> y) {
    auto matrix = TimeSeriesMatrix::FromRows({std::move(x), std::move(y)});
    CHECK(matrix.ok());
    data = std::move(*matrix);
    BasicWindowIndexOptions options;
    options.basic_window = b;
    auto built = BasicWindowIndex::Build(data, options);
    CHECK(built.ok());
    index.emplace(std::move(*built));
    nb = index->num_basic_windows();
  }

  // Exact correlation of window starting at basic window w0 spanning ns.
  double Exact(int64_t w0, int64_t ns) const {
    return index->PairRangeCorrelation(0, w0, w0 + ns);
  }
};

// On stationary data (the paper's assumption), Eq. 2 bounds hold for the
// overwhelming majority of (window, horizon) combinations. We verify
// containment with a small slack and require a near-zero violation rate.
TEST(TemporalBoundTest, BoundsHoldOnStationaryData) {
  Rng rng(3);
  BoundFixture fixture;
  std::vector<double> x, y;
  GenerateCorrelatedPair(8 * 200, 0.5, &rng, &x, &y);
  fixture.Build(std::move(x), std::move(y));

  const int64_t ns = 12;
  const int64_t m = 1;
  const TemporalBound bound(&*fixture.index, ns, m);

  int64_t checks = 0;
  int64_t upper_violations = 0;
  int64_t lower_violations = 0;
  for (int64_t k = 0; k + ns + 40 <= fixture.nb; k += 3) {
    const double corr0 = fixture.Exact(k, ns);
    for (int64_t j = 1; j <= 40; j += 3) {
      const double actual = fixture.Exact(k + j * m, ns);
      const double upper = bound.UpperBound(0, k, corr0, j);
      const double lower = bound.LowerBound(0, k, corr0, j);
      ++checks;
      if (actual > upper + 0.05) {
        ++upper_violations;
      }
      if (actual < lower - 0.05) {
        ++lower_violations;
      }
    }
  }
  ASSERT_GT(checks, 500);
  // Statistical bound: tolerate a tiny violation rate from sampling noise.
  EXPECT_LT(static_cast<double>(upper_violations) / checks, 0.01);
  EXPECT_LT(static_cast<double>(lower_violations) / checks, 0.01);
}

TEST(TemporalBoundTest, UpperBoundMonotoneInHorizon) {
  Rng rng(4);
  BoundFixture fixture;
  std::vector<double> x, y;
  GenerateCorrelatedPair(8 * 100, 0.3, &rng, &x, &y);
  fixture.Build(std::move(x), std::move(y));
  const TemporalBound bound(&*fixture.index, 10, 1);
  const double corr0 = fixture.Exact(0, 10);
  double previous = -2.0;
  for (int64_t j = 1; j <= 50; ++j) {
    const double upper = bound.UpperBound(0, 0, corr0, j);
    EXPECT_GE(upper, previous - 1e-12) << "j=" << j;
    previous = upper;
  }
}

TEST(TemporalBoundTest, LowerBoundNonIncreasingInHorizon) {
  Rng rng(5);
  BoundFixture fixture;
  std::vector<double> x, y;
  GenerateCorrelatedPair(8 * 100, 0.3, &rng, &x, &y);
  fixture.Build(std::move(x), std::move(y));
  const TemporalBound bound(&*fixture.index, 10, 1);
  const double corr0 = fixture.Exact(0, 10);
  double previous = 2.0;
  for (int64_t j = 1; j <= 50; ++j) {
    const double lower = bound.LowerBound(0, 0, corr0, j);
    EXPECT_LE(lower, previous + 1e-12) << "j=" << j;
    previous = lower;
  }
}

TEST(TemporalBoundTest, BinarySearchMatchesLinearScan) {
  Rng rng(6);
  BoundFixture fixture;
  std::vector<double> x, y;
  GenerateCorrelatedPair(8 * 150, 0.2, &rng, &x, &y);
  fixture.Build(std::move(x), std::move(y));
  const int64_t ns = 15;
  const TemporalBound bound(&*fixture.index, ns, 1);

  for (const double beta : {0.3, 0.5, 0.8}) {
    for (int64_t k = 0; k + ns + 60 <= fixture.nb; k += 7) {
      const double corr0 = fixture.Exact(k, ns);
      if (corr0 >= beta) {
        continue;
      }
      const int64_t max_steps = 60;
      const int64_t fast =
          bound.MaxSkippableBelow(0, k, corr0, beta, max_steps);
      // Linear oracle.
      int64_t slow = 0;
      for (int64_t j = 1; j <= max_steps; ++j) {
        if (bound.UpperBound(0, k, corr0, j) < beta) {
          slow = j;
        } else {
          break;
        }
      }
      EXPECT_EQ(fast, slow) << "beta=" << beta << " k=" << k;
    }
  }
}

TEST(TemporalBoundTest, AboveSearchMatchesLinearScan) {
  Rng rng(7);
  BoundFixture fixture;
  std::vector<double> x, y;
  GenerateCorrelatedPair(8 * 150, 0.9, &rng, &x, &y);
  fixture.Build(std::move(x), std::move(y));
  const int64_t ns = 15;
  const TemporalBound bound(&*fixture.index, ns, 1);

  const double beta = 0.5;
  for (int64_t k = 0; k + ns + 60 <= fixture.nb; k += 7) {
    const double corr0 = fixture.Exact(k, ns);
    if (corr0 < beta) {
      continue;
    }
    const int64_t fast = bound.MaxSkippableAbove(0, k, corr0, beta, 60);
    int64_t slow = 0;
    for (int64_t j = 1; j <= 60; ++j) {
      if (bound.LowerBound(0, k, corr0, j) >= beta) {
        slow = j;
      } else {
        break;
      }
    }
    EXPECT_EQ(fast, slow) << "k=" << k;
  }
}

TEST(TemporalBoundTest, ZeroMaxStepsSkipsNothing) {
  Rng rng(8);
  BoundFixture fixture;
  std::vector<double> x, y;
  GenerateCorrelatedPair(8 * 50, 0.0, &rng, &x, &y);
  fixture.Build(std::move(x), std::move(y));
  const TemporalBound bound(&*fixture.index, 5, 1);
  EXPECT_EQ(bound.MaxSkippableBelow(0, 0, 0.0, 0.9, 0), 0);
  EXPECT_EQ(bound.MaxSkippableAbove(0, 0, 0.95, 0.9, 0), 0);
}

TEST(TemporalBoundTest, AboveSkipHorizonIsConservative) {
  // The lower bound must assume every *entering* basic window has c = -1,
  // so it decays by 2*m/ns per step even for a near-perfectly correlated
  // pair: lower(j) ~ corr0 - 2j/ns. With corr0 ~ 0.999, beta = 0.5 and
  // ns = 8, that admits j <= ns*(corr0 - beta)/2 ~ 1.99: exactly one or two
  // skippable windows, never more.
  Rng rng(9);
  std::vector<double> x, y;
  GenerateCorrelatedPair(8 * 60, 0.999, &rng, &x, &y);
  BoundFixture fixture;
  fixture.Build(std::move(x), std::move(y));
  const TemporalBound bound(&*fixture.index, 8, 1);
  const double corr0 = fixture.Exact(0, 8);
  EXPECT_GE(corr0, 0.9);
  const int64_t skip = bound.MaxSkippableAbove(0, 0, corr0, 0.5, 40);
  EXPECT_GE(skip, 1);
  EXPECT_LE(skip, 2);
}

TEST(TemporalBoundTest, AntiCorrelatedPairSkipsFar) {
  // Persistent negative correlation burns jump budget slowly relative to a
  // high threshold, so below-skips reach far.
  Rng rng(10);
  std::vector<double> x, y;
  GenerateCorrelatedPair(8 * 60, -0.8, &rng, &x, &y);
  BoundFixture fixture;
  fixture.Build(std::move(x), std::move(y));
  const TemporalBound bound(&*fixture.index, 8, 1);
  const double corr0 = fixture.Exact(0, 8);
  ASSERT_LT(corr0, 0.0);
  EXPECT_GT(bound.MaxSkippableBelow(0, 0, corr0, 0.9, 40), 0);
}

}  // namespace
}  // namespace dangoron
