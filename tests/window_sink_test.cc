// Tests of the window-emission pipeline at the engine layer: every engine
// drives a WindowSink in ascending window order, the collecting sink
// reproduces the materialized Query byte for byte, and the sink's false
// return cancels a query mid-stream.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/logging.h"
#include "engine/dangoron_engine.h"
#include "engine/factory.h"
#include "engine/window_sink.h"
#include "ts/generators.h"

namespace dangoron {
namespace {

TimeSeriesMatrix SmallClimate(int64_t stations, int64_t hours, uint64_t seed) {
  ClimateSpec spec;
  spec.num_stations = stations;
  spec.num_hours = hours;
  spec.seed = seed;
  auto dataset = GenerateClimate(spec);
  CHECK(dataset.ok());
  return std::move(dataset->data);
}

// Records the full emission protocol for inspection.
class RecordingSink : public WindowSink {
 public:
  Status OnBegin(const SlidingQuery& query, int64_t num_series) override {
    ++begins;
    query_seen = query;
    num_series_seen = num_series;
    return Status::Ok();
  }
  bool OnWindow(int64_t window_index, std::vector<Edge> edges) override {
    indices.push_back(window_index);
    windows.push_back(std::move(edges));
    return cancel_after < 0 ||
           static_cast<int64_t>(windows.size()) <= cancel_after;
  }
  void OnFinish(const Status& status) override {
    ++finishes;
    final_status = status;
  }

  int64_t cancel_after = -1;  ///< cancel once this many windows arrived
  int begins = 0;
  int finishes = 0;
  SlidingQuery query_seen;
  int64_t num_series_seen = 0;
  std::vector<int64_t> indices;
  std::vector<std::vector<Edge>> windows;
  Status final_status = Status::Ok();
};

SlidingQuery TestQuery(int64_t length) {
  SlidingQuery query;
  query.start = 0;
  query.end = length;
  query.window = 8 * 5;
  query.step = 8 * 2;
  query.threshold = 0.6;
  return query;
}

// The load-bearing pipeline property: for every engine, the sink emission
// is byte-identical (same edges, bitwise-equal values) to the materialized
// Query — which is itself the collecting sink, so the pre-refactor result
// path survives unchanged.
TEST(WindowSinkTest, EmissionMatchesMaterializedQueryForAllEngines) {
  const int64_t length = 8 * 30;
  TimeSeriesMatrix data = SmallClimate(7, length, 9001);
  const SlidingQuery query = TestQuery(length);

  const std::vector<std::pair<std::string, std::string>> engines = {
      {"naive", ""},
      {"tsubasa", "basic_window=8"},
      {"dangoron", "basic_window=8,jump=off"},
      {"dangoron", "basic_window=8,jump=on"},
      {"dangoron", "basic_window=8,jump=on,threads=3"},
      {"dangoron", "basic_window=8,horizontal=on,pivots=3"},
      {"parcorr", "dim=32"},
      {"parcorr", "dim=32,verify=on,margin=0.2"},
  };
  for (const auto& [name, options] : engines) {
    SCOPED_TRACE(name + " " + options);
    auto engine = CreateEngine(name, options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    ASSERT_TRUE((*engine)->Prepare(data).ok());

    auto materialized = (*engine)->Query(query);
    ASSERT_TRUE(materialized.ok()) << materialized.status().ToString();

    RecordingSink sink;
    ASSERT_TRUE((*engine)->QueryToSink(query, &sink).ok());
    EXPECT_EQ(sink.begins, 1);
    EXPECT_EQ(sink.finishes, 1);
    EXPECT_TRUE(sink.final_status.ok());
    EXPECT_EQ(sink.num_series_seen, data.num_series());

    ASSERT_EQ(static_cast<int64_t>(sink.windows.size()),
              materialized->num_windows());
    for (int64_t k = 0; k < materialized->num_windows(); ++k) {
      EXPECT_EQ(sink.indices[static_cast<size_t>(k)], k);  // ascending order
      const auto expected = materialized->WindowEdges(k);
      const auto& emitted = sink.windows[static_cast<size_t>(k)];
      ASSERT_EQ(emitted.size(), expected.size()) << "window " << k;
      for (size_t e = 0; e < expected.size(); ++e) {
        // Edge operator== compares values bitwise-exactly.
        EXPECT_EQ(emitted[e], expected[e]) << "window " << k << " edge " << e;
      }
    }
  }
}

TEST(WindowSinkTest, SinkCancellationStopsEveryEngine) {
  const int64_t length = 8 * 30;
  TimeSeriesMatrix data = SmallClimate(5, length, 9002);
  const SlidingQuery query = TestQuery(length);
  ASSERT_GT(query.NumWindows(), 3);

  for (const char* name : {"naive", "tsubasa", "dangoron", "parcorr"}) {
    SCOPED_TRACE(name);
    auto engine = CreateEngine(name, name == std::string("naive") ||
                                         name == std::string("parcorr")
                                     ? ""
                                     : "basic_window=8");
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->Prepare(data).ok());

    RecordingSink sink;
    sink.cancel_after = 2;
    const Status status = (*engine)->QueryToSink(query, &sink);
    EXPECT_EQ(status.code(), StatusCode::kCancelled);
    EXPECT_EQ(sink.finishes, 1);
    EXPECT_EQ(sink.final_status.code(), StatusCode::kCancelled);
    // The third OnWindow returned false; nothing was emitted after it.
    EXPECT_EQ(static_cast<int64_t>(sink.windows.size()), 3);
  }
}

// Window-by-window engines must stop *computing* on cancellation, not just
// stop emitting: the whole point of the pipeline for a consumer that found
// what it needed early.
TEST(WindowSinkTest, CancellationSavesWorkOnWindowMajorEngines) {
  const int64_t length = 8 * 40;
  TimeSeriesMatrix data = SmallClimate(6, length, 9003);
  const SlidingQuery query = TestQuery(length);
  const int64_t num_windows = query.NumWindows();
  ASSERT_GT(num_windows, 4);

  auto engine = CreateEngine("naive");
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Prepare(data).ok());

  RecordingSink sink;
  sink.cancel_after = 0;  // cancel at the first window
  EXPECT_EQ((*engine)->QueryToSink(query, &sink).code(),
            StatusCode::kCancelled);
  const int64_t n = data.num_series();
  const int64_t pairs = n * (n - 1) / 2;
  // Exactly one window's pair sweep ran, not num_windows of them.
  EXPECT_EQ((*engine)->stats().cells_evaluated, pairs);
}

TEST(WindowSinkTest, CollectingSinkRoundTripsThroughReplay) {
  const int64_t length = 8 * 24;
  TimeSeriesMatrix data = SmallClimate(5, length, 9004);
  const SlidingQuery query = TestQuery(length);

  DangoronOptions options;
  options.basic_window = 8;
  options.enable_jumping = false;
  DangoronEngine engine(options);
  ASSERT_TRUE(engine.Prepare(data).ok());
  auto original = engine.Query(query);
  ASSERT_TRUE(original.ok());

  CollectingWindowSink collector;
  ASSERT_TRUE(ReplayToSink(*original, &collector).ok());
  EXPECT_TRUE(collector.status().ok());
  const CorrelationMatrixSeries replayed = collector.TakeSeries();
  ASSERT_EQ(replayed.num_windows(), original->num_windows());
  for (int64_t k = 0; k < original->num_windows(); ++k) {
    const auto a = original->WindowEdges(k);
    const auto b = replayed.WindowEdges(k);
    ASSERT_EQ(a.size(), b.size());
    for (size_t e = 0; e < a.size(); ++e) {
      EXPECT_EQ(a[e], b[e]);
    }
  }
}

TEST(WindowSinkTest, ReplayHonoursCancellation) {
  SlidingQuery query;
  query.start = 0;
  query.end = 40;
  query.window = 10;
  query.step = 10;
  CorrelationMatrixSeries series(query, 3);
  series.MutableWindow(0)->push_back(Edge{0, 1, 0.9});
  series.MutableWindow(2)->push_back(Edge{1, 2, 0.95});

  RecordingSink sink;
  sink.cancel_after = 1;
  EXPECT_EQ(ReplayToSink(series, &sink).code(), StatusCode::kCancelled);
  EXPECT_EQ(sink.windows.size(), 2u);
  EXPECT_EQ(sink.final_status.code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace dangoron
