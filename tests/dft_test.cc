#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "common/rng.h"
#include "dft/fft.h"

namespace dangoron {
namespace {

using Cplx = std::complex<double>;

std::vector<Cplx> RandomComplexVector(int64_t n, Rng* rng) {
  std::vector<Cplx> values(static_cast<size_t>(n));
  for (Cplx& v : values) {
    v = Cplx(rng->NextGaussian(), rng->NextGaussian());
  }
  return values;
}

double MaxAbsDiff(const std::vector<Cplx>& a, const std::vector<Cplx>& b) {
  double max_diff = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(a[i] - b[i]));
  }
  return max_diff;
}

TEST(FftTest, EmptyInputIsError) {
  std::vector<Cplx> empty;
  EXPECT_FALSE(Fft(&empty, false).ok());
  EXPECT_FALSE(Fft(nullptr, false).ok());
}

TEST(FftTest, SizeOneIsIdentity) {
  std::vector<Cplx> data = {Cplx(3.0, -2.0)};
  ASSERT_TRUE(Fft(&data, false).ok());
  EXPECT_NEAR(std::abs(data[0] - Cplx(3.0, -2.0)), 0.0, 1e-12);
}

TEST(FftTest, KnownFourPointTransform) {
  // DFT of [1, 0, 0, 0] is all-ones.
  std::vector<Cplx> data = {Cplx(1, 0), Cplx(0, 0), Cplx(0, 0), Cplx(0, 0)};
  ASSERT_TRUE(Fft(&data, false).ok());
  for (const Cplx& v : data) {
    EXPECT_NEAR(std::abs(v - Cplx(1, 0)), 0.0, 1e-12);
  }
}

TEST(FftTest, ConstantSignalConcentratesAtDc) {
  std::vector<Cplx> data(16, Cplx(2.0, 0.0));
  ASSERT_TRUE(Fft(&data, false).ok());
  EXPECT_NEAR(data[0].real(), 32.0, 1e-10);
  for (size_t k = 1; k < data.size(); ++k) {
    EXPECT_NEAR(std::abs(data[k]), 0.0, 1e-10);
  }
}

// Roundtrip and oracle agreement across a size sweep covering powers of two
// (radix-2 path) and awkward composite/prime sizes (Bluestein path).
class FftSizeSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(FftSizeSweep, MatchesDirectDft) {
  const int64_t n = GetParam();
  Rng rng(1000 + static_cast<uint64_t>(n));
  const std::vector<Cplx> input = RandomComplexVector(n, &rng);
  const std::vector<Cplx> expected = DirectDft(input, /*inverse=*/false);
  std::vector<Cplx> actual = input;
  ASSERT_TRUE(Fft(&actual, /*inverse=*/false).ok());
  EXPECT_LT(MaxAbsDiff(actual, expected), 1e-7 * std::sqrt(n));
}

TEST_P(FftSizeSweep, RoundtripRecoversInput) {
  const int64_t n = GetParam();
  Rng rng(2000 + static_cast<uint64_t>(n));
  const std::vector<Cplx> input = RandomComplexVector(n, &rng);
  std::vector<Cplx> data = input;
  ASSERT_TRUE(Fft(&data, /*inverse=*/false).ok());
  ASSERT_TRUE(Fft(&data, /*inverse=*/true).ok());
  EXPECT_LT(MaxAbsDiff(data, input), 1e-9 * std::sqrt(n));
}

TEST_P(FftSizeSweep, ParsevalHolds) {
  const int64_t n = GetParam();
  Rng rng(3000 + static_cast<uint64_t>(n));
  const std::vector<Cplx> input = RandomComplexVector(n, &rng);
  double time_energy = 0.0;
  for (const Cplx& v : input) {
    time_energy += std::norm(v);
  }
  std::vector<Cplx> data = input;
  ASSERT_TRUE(Fft(&data, /*inverse=*/false).ok());
  double freq_energy = 0.0;
  for (const Cplx& v : data) {
    freq_energy += std::norm(v);
  }
  EXPECT_NEAR(freq_energy, time_energy * static_cast<double>(n),
              1e-6 * time_energy * n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSizeSweep,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 12, 16, 17, 30,
                                           32, 60, 64, 100, 127, 128, 360,
                                           365, 512, 1000));

TEST(FftTest, LinearityOnRandomInputs) {
  Rng rng(99);
  const int64_t n = 64;
  const std::vector<Cplx> x = RandomComplexVector(n, &rng);
  const std::vector<Cplx> y = RandomComplexVector(n, &rng);
  std::vector<Cplx> combo(static_cast<size_t>(n));
  const Cplx alpha(1.5, -0.5);
  for (int64_t i = 0; i < n; ++i) {
    combo[static_cast<size_t>(i)] = alpha * x[static_cast<size_t>(i)] +
                                    y[static_cast<size_t>(i)];
  }
  std::vector<Cplx> fx = x;
  std::vector<Cplx> fy = y;
  std::vector<Cplx> fcombo = combo;
  ASSERT_TRUE(Fft(&fx, false).ok());
  ASSERT_TRUE(Fft(&fy, false).ok());
  ASSERT_TRUE(Fft(&fcombo, false).ok());
  for (int64_t i = 0; i < n; ++i) {
    const Cplx expected =
        alpha * fx[static_cast<size_t>(i)] + fy[static_cast<size_t>(i)];
    EXPECT_NEAR(std::abs(fcombo[static_cast<size_t>(i)] - expected), 0.0,
                1e-8);
  }
}

// ------------------------------------------------------------- Real DFT --

TEST(RealDftTest, HalfSpectrumSizes) {
  Rng rng(5);
  for (const int64_t n : {2, 3, 8, 9, 16, 17}) {
    std::vector<double> input(static_cast<size_t>(n));
    for (double& v : input) {
      v = rng.NextGaussian();
    }
    const auto spectrum = RealDft(input);
    ASSERT_TRUE(spectrum.ok());
    EXPECT_EQ(static_cast<int64_t>(spectrum->size()), n / 2 + 1);
  }
}

TEST(RealDftTest, EmptyInputIsError) {
  EXPECT_FALSE(RealDft(std::span<const double>()).ok());
}

class RealDftRoundtrip : public ::testing::TestWithParam<int64_t> {};

TEST_P(RealDftRoundtrip, InverseRecoversSignal) {
  const int64_t n = GetParam();
  Rng rng(4000 + static_cast<uint64_t>(n));
  std::vector<double> input(static_cast<size_t>(n));
  for (double& v : input) {
    v = rng.NextGaussian();
  }
  const auto spectrum = RealDft(input);
  ASSERT_TRUE(spectrum.ok());
  const auto recovered = InverseRealDft(*spectrum, n);
  ASSERT_TRUE(recovered.ok());
  for (int64_t t = 0; t < n; ++t) {
    EXPECT_NEAR((*recovered)[static_cast<size_t>(t)],
                input[static_cast<size_t>(t)], 1e-8)
        << "n=" << n << " t=" << t;
  }
}

TEST_P(RealDftRoundtrip, MatchesDirectDftOracle) {
  const int64_t n = GetParam();
  Rng rng(5000 + static_cast<uint64_t>(n));
  std::vector<double> input(static_cast<size_t>(n));
  std::vector<Cplx> as_complex(static_cast<size_t>(n));
  for (int64_t t = 0; t < n; ++t) {
    input[static_cast<size_t>(t)] = rng.NextGaussian();
    as_complex[static_cast<size_t>(t)] =
        Cplx(input[static_cast<size_t>(t)], 0.0);
  }
  const auto spectrum = RealDft(input);
  ASSERT_TRUE(spectrum.ok());
  const std::vector<Cplx> oracle = DirectDft(as_complex, /*inverse=*/false);
  for (int64_t k = 0; k <= n / 2; ++k) {
    EXPECT_NEAR(std::abs((*spectrum)[static_cast<size_t>(k)] -
                         oracle[static_cast<size_t>(k)]),
                0.0, 1e-7)
        << "n=" << n << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RealDftRoundtrip,
                         ::testing::Values(2, 3, 4, 7, 8, 15, 16, 64, 100,
                                           365, 512));

TEST(InverseRealDftTest, RejectsWrongSpectrumSize) {
  std::vector<Cplx> spectrum(4, Cplx(0, 0));
  EXPECT_FALSE(InverseRealDft(spectrum, 16).ok());  // needs 9
  EXPECT_FALSE(InverseRealDft(spectrum, 0).ok());
  EXPECT_FALSE(InverseRealDft(spectrum, -3).ok());
}

TEST(InverseRealDftTest, RejectsComplexDc) {
  std::vector<Cplx> spectrum(5, Cplx(0, 0));
  spectrum[0] = Cplx(1.0, 0.5);  // DC must be real
  EXPECT_FALSE(InverseRealDft(spectrum, 8).ok());
}

TEST(InverseRealDftTest, RejectsComplexNyquistForEvenN) {
  std::vector<Cplx> spectrum(5, Cplx(0, 0));
  spectrum[4] = Cplx(1.0, 0.5);  // Nyquist must be real for n=8
  EXPECT_FALSE(InverseRealDft(spectrum, 8).ok());
}

TEST(InverseRealDftTest, PureToneReconstruction) {
  // Half spectrum with a single unit coefficient at bin 1 must give a
  // cosine: x_t = (2/n) * cos(2 pi t / n).
  const int64_t n = 16;
  std::vector<Cplx> spectrum(static_cast<size_t>(n / 2 + 1), Cplx(0, 0));
  spectrum[1] = Cplx(1.0, 0.0);
  const auto series = InverseRealDft(spectrum, n);
  ASSERT_TRUE(series.ok());
  for (int64_t t = 0; t < n; ++t) {
    const double expected =
        2.0 / static_cast<double>(n) *
        std::cos(2.0 * M_PI * static_cast<double>(t) / static_cast<double>(n));
    EXPECT_NEAR((*series)[static_cast<size_t>(t)], expected, 1e-10);
  }
}

TEST(HalfSpectrumEnergyTest, MatchesParsevalForRealSignals) {
  Rng rng(6);
  for (const int64_t n : {8, 9, 32, 33}) {
    std::vector<double> input(static_cast<size_t>(n));
    double time_energy = 0.0;
    for (double& v : input) {
      v = rng.NextGaussian();
      time_energy += v * v;
    }
    const auto spectrum = RealDft(input);
    ASSERT_TRUE(spectrum.ok());
    const double freq_energy = HalfSpectrumEnergy(*spectrum, n);
    EXPECT_NEAR(freq_energy, time_energy * static_cast<double>(n),
                1e-6 * freq_energy)
        << "n=" << n;
  }
}

}  // namespace
}  // namespace dangoron
