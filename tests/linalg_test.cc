#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/decompositions.h"
#include "linalg/matrix.h"

namespace dangoron {
namespace {

Matrix RandomSymmetric(int64_t n, Rng* rng) {
  Matrix m(n, n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i; j < n; ++j) {
      const double v = rng->NextGaussian();
      m.At(i, j) = v;
      m.At(j, i) = v;
    }
  }
  return m;
}

// SPD matrix via A = B * B^T + n * I.
Matrix RandomSpd(int64_t n, Rng* rng) {
  Matrix b(n, n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      b.At(i, j) = rng->NextGaussian();
    }
  }
  Matrix a = b.Multiply(b.Transposed());
  for (int64_t i = 0; i < n; ++i) {
    a.At(i, i) += static_cast<double>(n);
  }
  return a;
}

TEST(MatrixTest, IdentityAndMultiply) {
  const Matrix eye = Matrix::Identity(3);
  Matrix m(3, 3);
  int value = 1;
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      m.At(i, j) = value++;
    }
  }
  const Matrix product = m.Multiply(eye);
  EXPECT_DOUBLE_EQ(product.MaxAbsDiff(m), 0.0);
}

TEST(MatrixTest, TransposeInvolution) {
  Rng rng(1);
  Matrix m(4, 6);
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 6; ++j) {
      m.At(i, j) = rng.NextGaussian();
    }
  }
  const Matrix round_trip = m.Transposed().Transposed();
  EXPECT_DOUBLE_EQ(round_trip.MaxAbsDiff(m), 0.0);
}

TEST(MatrixTest, IsSymmetricDetects) {
  Rng rng(2);
  Matrix sym = RandomSymmetric(5, &rng);
  EXPECT_TRUE(sym.IsSymmetric());
  sym.At(1, 3) += 1e-3;
  EXPECT_FALSE(sym.IsSymmetric());
  EXPECT_FALSE(Matrix(2, 3).IsSymmetric());
}

// ---------------------------------------------------------------- Cholesky

TEST(CholeskyTest, ReconstructsSpdMatrix) {
  Rng rng(3);
  for (const int64_t n : {1, 2, 5, 16, 40}) {
    const Matrix a = RandomSpd(n, &rng);
    const auto lower = CholeskyFactor(a);
    ASSERT_TRUE(lower.ok()) << "n=" << n;
    const Matrix rebuilt = lower->Multiply(lower->Transposed());
    EXPECT_LT(rebuilt.MaxAbsDiff(a), 1e-8 * n) << "n=" << n;
    // Factor must be lower triangular.
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = i + 1; j < n; ++j) {
        EXPECT_DOUBLE_EQ(lower->At(i, j), 0.0);
      }
    }
  }
}

TEST(CholeskyTest, RejectsIndefiniteMatrix) {
  Matrix a(2, 2);
  a.At(0, 0) = 1.0;
  a.At(1, 1) = -1.0;
  EXPECT_FALSE(CholeskyFactor(a).ok());
}

TEST(CholeskyTest, RejectsNonSquareAndAsymmetric) {
  EXPECT_FALSE(CholeskyFactor(Matrix(2, 3)).ok());
  Matrix asym(2, 2);
  asym.At(0, 1) = 0.5;
  asym.At(1, 0) = -0.5;
  asym.At(0, 0) = asym.At(1, 1) = 1.0;
  EXPECT_FALSE(CholeskyFactor(asym).ok());
}

// ------------------------------------------------------------------ Jacobi

TEST(JacobiTest, DiagonalMatrixEigenvalues) {
  Matrix d(3, 3);
  d.At(0, 0) = 3.0;
  d.At(1, 1) = -1.0;
  d.At(2, 2) = 2.0;
  const auto eigen = JacobiEigenSymmetric(d);
  ASSERT_TRUE(eigen.ok());
  // Sorted descending.
  EXPECT_NEAR(eigen->eigenvalues[0], 3.0, 1e-12);
  EXPECT_NEAR(eigen->eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(eigen->eigenvalues[2], -1.0, 1e-12);
}

TEST(JacobiTest, KnownTwoByTwo) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  Matrix a(2, 2);
  a.At(0, 0) = 2.0;
  a.At(0, 1) = 1.0;
  a.At(1, 0) = 1.0;
  a.At(1, 1) = 2.0;
  const auto eigen = JacobiEigenSymmetric(a);
  ASSERT_TRUE(eigen.ok());
  EXPECT_NEAR(eigen->eigenvalues[0], 3.0, 1e-10);
  EXPECT_NEAR(eigen->eigenvalues[1], 1.0, 1e-10);
}

TEST(JacobiTest, ReconstructionAndOrthogonality) {
  Rng rng(7);
  for (const int64_t n : {2, 6, 12, 25}) {
    const Matrix a = RandomSymmetric(n, &rng);
    const auto eigen = JacobiEigenSymmetric(a);
    ASSERT_TRUE(eigen.ok()) << "n=" << n;

    // V diag(lambda) V^T == A.
    Matrix scaled = eigen->eigenvectors;
    for (int64_t j = 0; j < n; ++j) {
      for (int64_t i = 0; i < n; ++i) {
        scaled.At(i, j) *= eigen->eigenvalues[static_cast<size_t>(j)];
      }
    }
    const Matrix rebuilt = scaled.Multiply(eigen->eigenvectors.Transposed());
    EXPECT_LT(rebuilt.MaxAbsDiff(a), 1e-8 * n) << "n=" << n;

    // V^T V == I.
    const Matrix gram =
        eigen->eigenvectors.Transposed().Multiply(eigen->eigenvectors);
    EXPECT_LT(gram.MaxAbsDiff(Matrix::Identity(n)), 1e-9 * n) << "n=" << n;

    // Eigenvalue sum equals trace.
    double trace = 0.0;
    double eigen_sum = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      trace += a.At(i, i);
      eigen_sum += eigen->eigenvalues[static_cast<size_t>(i)];
    }
    EXPECT_NEAR(eigen_sum, trace, 1e-8 * n);
  }
}

TEST(JacobiTest, RejectsBadInput) {
  EXPECT_FALSE(JacobiEigenSymmetric(Matrix(2, 3)).ok());
  Matrix asym(2, 2);
  asym.At(0, 1) = 1.0;
  EXPECT_FALSE(JacobiEigenSymmetric(asym).ok());
}

// ------------------------------------------------- Nearest correlation ---

TEST(NearestCorrelationTest, ValidMatrixIsAlmostUnchanged) {
  // A tiny well-conditioned correlation matrix should survive repair.
  Matrix c(3, 3);
  for (int64_t i = 0; i < 3; ++i) {
    c.At(i, i) = 1.0;
  }
  c.At(0, 1) = c.At(1, 0) = 0.5;
  c.At(0, 2) = c.At(2, 0) = 0.2;
  c.At(1, 2) = c.At(2, 1) = 0.3;
  const auto repaired = NearestCorrelationMatrix(c);
  ASSERT_TRUE(repaired.ok());
  EXPECT_LT(repaired->MaxAbsDiff(c), 1e-6);
}

TEST(NearestCorrelationTest, RepairsInvalidMatrix) {
  // rho(0,1) = rho(0,2) = 0.9 with rho(1,2) = -0.9 is infeasible.
  Matrix c(3, 3);
  for (int64_t i = 0; i < 3; ++i) {
    c.At(i, i) = 1.0;
  }
  c.At(0, 1) = c.At(1, 0) = 0.9;
  c.At(0, 2) = c.At(2, 0) = 0.9;
  c.At(1, 2) = c.At(2, 1) = -0.9;
  const auto repaired = NearestCorrelationMatrix(c);
  ASSERT_TRUE(repaired.ok());

  // Unit diagonal.
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(repaired->At(i, i), 1.0, 1e-9);
  }
  // Positive semidefinite (all eigenvalues >= 0 within tolerance).
  const auto eigen = JacobiEigenSymmetric(*repaired);
  ASSERT_TRUE(eigen.ok());
  for (const double lambda : eigen->eigenvalues) {
    EXPECT_GE(lambda, -1e-8);
  }
  // Cholesky must now succeed (with the min eigenvalue margin).
  EXPECT_TRUE(CholeskyFactor(*repaired).ok());
}

TEST(NearestCorrelationTest, RandomInfeasibleMatricesBecomeFactorizable) {
  Rng rng(11);
  for (int trial = 0; trial < 5; ++trial) {
    const int64_t n = 12;
    Matrix c(n, n);
    for (int64_t i = 0; i < n; ++i) {
      c.At(i, i) = 1.0;
      for (int64_t j = i + 1; j < n; ++j) {
        const double v = rng.NextUniform(-0.95, 0.95);
        c.At(i, j) = v;
        c.At(j, i) = v;
      }
    }
    const auto repaired = NearestCorrelationMatrix(c);
    ASSERT_TRUE(repaired.ok()) << "trial " << trial;
    EXPECT_TRUE(CholeskyFactor(*repaired).ok()) << "trial " << trial;
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        EXPECT_LE(std::fabs(repaired->At(i, j)), 1.0 + 1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace dangoron
