// Differential and property tests of the window-major exact sweep kernel
// (corr/sweep_kernel.h) as driven by DangoronEngine in exact mode: the
// vectorized sweep must emit *bit-identical* edges to the scalar pair-major
// cell loop (use_sweep_kernel=false, the oracle) for every threshold mode,
// degenerate input, tile-remainder shape, and thread count — and match
// NaiveEngine within the usual sketch-combination tolerance. The engine-level
// time-to-first-window property (a cancelled-at-window-0 query does one
// window's work, not the whole sweep's) is asserted via EngineStats.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "corr/sweep_kernel.h"
#include "engine/dangoron_engine.h"
#include "engine/naive_engine.h"
#include "engine/window_sink.h"
#include "ts/generators.h"

namespace dangoron {
namespace {

constexpr int64_t kBasicWindow = 8;

TimeSeriesMatrix RandomWalkData(int64_t n, int64_t length, uint64_t seed) {
  Rng rng(seed);
  TimeSeriesMatrix data(n, length);
  for (int64_t s = 0; s < n; ++s) {
    double level = rng.NextGaussian();
    for (int64_t t = 0; t < length; ++t) {
      level += 0.3 * rng.NextGaussian();
      data.Set(s, t, level);
    }
  }
  return data;
}

SlidingQuery SweepQuery(int64_t length, double threshold, bool absolute) {
  SlidingQuery query;
  query.start = 0;
  query.end = length;
  query.window = kBasicWindow * 5;
  query.step = kBasicWindow * 2;
  query.threshold = threshold;
  query.absolute = absolute;
  return query;
}

CorrelationMatrixSeries RunDangoron(const TimeSeriesMatrix& data,
                                    const SlidingQuery& query, bool sweep,
                                    int32_t threads,
                                    EngineStats* stats_out = nullptr) {
  DangoronOptions options;
  options.basic_window = kBasicWindow;
  options.enable_jumping = false;
  options.use_sweep_kernel = sweep;
  options.num_threads = threads;
  DangoronEngine engine(options);
  CHECK(engine.Prepare(data).ok());
  auto result = engine.Query(query);
  CHECK(result.ok());
  if (stats_out != nullptr) {
    *stats_out = engine.stats();
  }
  return std::move(*result);
}

// The load-bearing differential property: bitwise-equal edges (operator==
// on Edge compares the double exactly), not tolerance-equal.
void ExpectBitIdentical(const CorrelationMatrixSeries& sweep,
                        const CorrelationMatrixSeries& scalar) {
  ASSERT_EQ(sweep.num_windows(), scalar.num_windows());
  for (int64_t k = 0; k < sweep.num_windows(); ++k) {
    const auto a = sweep.WindowEdges(k);
    const auto b = scalar.WindowEdges(k);
    ASSERT_EQ(a.size(), b.size()) << "window " << k;
    for (size_t e = 0; e < a.size(); ++e) {
      EXPECT_EQ(a[e], b[e]) << "window " << k << " edge " << e;
    }
  }
}

void ExpectMatchesNaive(const CorrelationMatrixSeries& got,
                        const TimeSeriesMatrix& data,
                        const SlidingQuery& query) {
  NaiveEngine naive;
  CHECK(naive.Prepare(data).ok());
  auto truth = naive.Query(query);
  CHECK(truth.ok());
  ASSERT_EQ(got.num_windows(), truth->num_windows());
  for (int64_t k = 0; k < got.num_windows(); ++k) {
    const auto a = got.WindowEdges(k);
    const auto b = truth->WindowEdges(k);
    ASSERT_EQ(a.size(), b.size()) << "window " << k;
    for (size_t e = 0; e < a.size(); ++e) {
      EXPECT_EQ(a[e].i, b[e].i) << "window " << k;
      EXPECT_EQ(a[e].j, b[e].j) << "window " << k;
      EXPECT_NEAR(a[e].value, b[e].value, 1e-8) << "window " << k;
    }
  }
}

TEST(SweepKernelTest, BitIdenticalToScalarPairMajorAcrossThresholds) {
  const int64_t length = kBasicWindow * 24;
  // n=19 makes every fixed-i run hit a non-multiple-of-8 vector tail.
  const TimeSeriesMatrix data = RandomWalkData(19, length, 71001);
  for (const bool absolute : {false, true}) {
    for (const double threshold : {0.1, 0.35, 0.8}) {
      SCOPED_TRACE(testing::Message()
                   << "absolute=" << absolute << " threshold=" << threshold);
      const SlidingQuery query = SweepQuery(length, threshold, absolute);
      const auto sweep = RunDangoron(data, query, /*sweep=*/true, 1);
      const auto scalar = RunDangoron(data, query, /*sweep=*/false, 1);
      ExpectBitIdentical(sweep, scalar);
      ExpectMatchesNaive(sweep, data, query);
    }
  }
}

TEST(SweepKernelTest, NegativeThresholdAcceptsEveryPairIdentically) {
  const int64_t length = kBasicWindow * 12;
  const int64_t n = 9;
  const TimeSeriesMatrix data = RandomWalkData(n, length, 71002);
  SlidingQuery query = SweepQuery(length, -1.0, /*absolute=*/false);
  const auto sweep = RunDangoron(data, query, /*sweep=*/true, 1);
  const auto scalar = RunDangoron(data, query, /*sweep=*/false, 1);
  ExpectBitIdentical(sweep, scalar);
  // Accept-everything: each window is the full clique.
  for (int64_t k = 0; k < sweep.num_windows(); ++k) {
    EXPECT_EQ(static_cast<int64_t>(sweep.WindowEdges(k).size()),
              n * (n - 1) / 2);
  }
}

TEST(SweepKernelTest, DegenerateSeriesProduceNoSpuriousEdges) {
  const int64_t length = kBasicWindow * 16;
  TimeSeriesMatrix data = RandomWalkData(13, length, 71003);
  // Series 3: dead sensor (constant everywhere). Series 7: flatlines for a
  // stretch covering some windows but not others.
  for (int64_t t = 0; t < length; ++t) {
    data.Set(3, t, 42.0);
  }
  for (int64_t t = kBasicWindow * 4; t < kBasicWindow * 10; ++t) {
    data.Set(7, t, -1.5);
  }
  for (const bool absolute : {false, true}) {
    SCOPED_TRACE(absolute);
    const SlidingQuery query = SweepQuery(length, 0.2, absolute);
    const auto sweep = RunDangoron(data, query, /*sweep=*/true, 1);
    const auto scalar = RunDangoron(data, query, /*sweep=*/false, 1);
    ExpectBitIdentical(sweep, scalar);
    ExpectMatchesNaive(sweep, data, query);
    // A degenerate series correlates at exactly 0, which never clears a
    // positive threshold: series 3 must be edgeless in every window.
    for (int64_t k = 0; k < sweep.num_windows(); ++k) {
      for (const Edge& edge : sweep.WindowEdges(k)) {
        EXPECT_NE(edge.i, 3);
        EXPECT_NE(edge.j, 3);
      }
    }
  }
}

TEST(SweepKernelTest, TileRemainderPairCountsAndThreadCounts) {
  const int64_t length = kBasicWindow * 20;
  // n=48 -> 1128 pairs: two sweep tiles with a 104-pair remainder tile,
  // plus plenty of split fixed-i runs at the tile boundary.
  const TimeSeriesMatrix data = RandomWalkData(48, length, 71004);
  const SlidingQuery query = SweepQuery(length, 0.3, /*absolute=*/true);
  const auto scalar = RunDangoron(data, query, /*sweep=*/false, 1);
  for (const int32_t threads : {1, 4}) {
    SCOPED_TRACE(threads);
    const auto sweep = RunDangoron(data, query, /*sweep=*/true, threads);
    ExpectBitIdentical(sweep, scalar);
  }
}

TEST(SweepKernelTest, WindowMajorPruningMatchesPairMajorDecisions) {
  const int64_t length = kBasicWindow * 20;
  const TimeSeriesMatrix data = RandomWalkData(16, length, 71005);
  SlidingQuery query = SweepQuery(length, 0.75, /*absolute=*/false);

  DangoronOptions options;
  options.basic_window = kBasicWindow;
  options.enable_jumping = false;
  options.horizontal_pruning = true;
  options.num_pivots = 4;

  options.use_sweep_kernel = true;
  DangoronEngine window_major(options);
  ASSERT_TRUE(window_major.Prepare(data).ok());
  auto sweep = window_major.Query(query);
  ASSERT_TRUE(sweep.ok());

  options.use_sweep_kernel = false;
  DangoronEngine pair_major(options);
  ASSERT_TRUE(pair_major.Prepare(data).ok());
  auto scalar = pair_major.Query(query);
  ASSERT_TRUE(scalar.ok());

  ExpectBitIdentical(*sweep, *scalar);
  // Same per-cell pruning decisions, just visited in window-major order.
  EXPECT_EQ(window_major.stats().cells_horizontal_pruned,
            pair_major.stats().cells_horizontal_pruned);
  EXPECT_EQ(window_major.stats().cells_evaluated,
            pair_major.stats().cells_evaluated);
}

TEST(SweepKernelTest, SingleSeriesDataYieldsEmptyWindows) {
  // No pairs at all: the sweep must emit every window empty rather than
  // touching the (nonexistent) pair id space.
  const int64_t length = kBasicWindow * 12;
  const TimeSeriesMatrix data = RandomWalkData(1, length, 71007);
  const SlidingQuery query = SweepQuery(length, 0.5, /*absolute=*/false);
  const auto sweep = RunDangoron(data, query, /*sweep=*/true, 1);
  ASSERT_EQ(sweep.num_windows(), query.NumWindows());
  for (int64_t k = 0; k < sweep.num_windows(); ++k) {
    EXPECT_TRUE(sweep.WindowEdges(k).empty());
  }
}

// Cancels the query after `cancel_after + 1` windows arrived.
class CancelAfterSink : public WindowSink {
 public:
  explicit CancelAfterSink(int64_t cancel_after)
      : cancel_after_(cancel_after) {}
  bool OnWindow(int64_t window_index, std::vector<Edge> edges) override {
    (void)edges;
    last_index_ = window_index;
    ++windows_;
    return windows_ <= cancel_after_;
  }
  void OnFinish(const Status& status) override { final_status_ = status; }

  int64_t windows() const { return windows_; }
  int64_t last_index() const { return last_index_; }
  const Status& final_status() const { return final_status_; }

 private:
  int64_t cancel_after_ = 0;
  int64_t windows_ = 0;
  int64_t last_index_ = -1;
  Status final_status_ = Status::Ok();
};

// The engine-level time-to-first-window property: in exact mode the first
// window is delivered after one *band* of the pair sweep, not after the
// whole sweep — asserted deterministically through the evaluated-cell
// counter of a query cancelled at window 0.
TEST(SweepKernelTest, ExactModeDeliversFirstWindowBeforeFullSweep) {
  const int64_t length = kBasicWindow * 80;
  const int64_t n = 12;
  const TimeSeriesMatrix data = RandomWalkData(n, length, 71006);
  const SlidingQuery query = SweepQuery(length, 0.5, /*absolute=*/false);
  const int64_t num_windows = query.NumWindows();
  ASSERT_GT(num_windows, 2 * kSweepWindowBand);

  DangoronOptions options;
  options.basic_window = kBasicWindow;
  options.enable_jumping = false;
  DangoronEngine engine(options);
  ASSERT_TRUE(engine.Prepare(data).ok());

  CancelAfterSink sink(/*cancel_after=*/0);
  EXPECT_EQ(engine.QueryToSink(query, &sink).code(), StatusCode::kCancelled);
  EXPECT_EQ(sink.windows(), 1);
  EXPECT_EQ(sink.last_index(), 0);
  EXPECT_EQ(sink.final_status().code(), StatusCode::kCancelled);
  // Exactly one band's pairs were evaluated — a small fixed fraction of
  // the full sweep, independent of how many windows the query spans.
  const int64_t pairs = n * (n - 1) / 2;
  EXPECT_EQ(engine.stats().cells_evaluated, pairs * kSweepWindowBand);
  EXPECT_LT(engine.stats().cells_evaluated, engine.stats().cells_total);
}

}  // namespace
}  // namespace dangoron
