// Router tier tests: SplitPairRanges geometry, the ShardMerge core against
// scripted sources (adversarial skew, bounded reorder memory, first-error
// cancellation, window-count mismatches), WireClient transport timeouts,
// and socketpair-driven end-to-end runs of the sharded path — including
// the acceptance-critical property: a K-shard query is byte-identical to
// the single-process stream at K in {2, 4}, and a cancel (client-driven or
// disconnect) releases every shard with zero leaked window claims.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/rng.h"
#include "corr/sweep_kernel.h"
#include "net/wire_server.h"
#include "router/router_server.h"
#include "router/shard_merge.h"
#include "router/shard_router.h"
#include "serve/server.h"
#include "ts/generators.h"
#include "wire/client.h"
#include "wire/wire_format.h"

namespace dangoron {
namespace {

#if DANGORON_FAILPOINTS_ENABLED
constexpr bool kFailpointsCompiled = true;
#else
constexpr bool kFailpointsCompiled = false;
#endif

// -------------------------------------------------------- SplitPairRanges --

TEST(SplitPairRangesTest, CoversDisjointTileAlignedBalanced) {
  for (const int64_t num_pairs :
       {int64_t{0}, int64_t{1}, int64_t{1023}, int64_t{1024}, int64_t{1025},
        int64_t{2016}, int64_t{4560}, int64_t{8128}, int64_t{100000}}) {
    for (const int shards : {1, 2, 4, 7}) {
      const auto ranges = SplitPairRanges(num_pairs, shards);
      ASSERT_FALSE(ranges.empty());
      EXPECT_LE(static_cast<int>(ranges.size()), shards);
      // Concatenation covers [0, num_pairs) exactly, in order.
      int64_t cursor = 0;
      for (size_t s = 0; s < ranges.size(); ++s) {
        EXPECT_EQ(ranges[s].first, cursor)
            << "gap before shard " << s << " (pairs=" << num_pairs
            << ", shards=" << shards << ")";
        EXPECT_GE(ranges[s].second, ranges[s].first);
        // Every interior cut sits on a tile boundary: the shard tiling is
        // the engine's own tiling.
        if (s + 1 < ranges.size()) {
          EXPECT_EQ(ranges[s].second % kSweepTilePairs, 0);
        }
        cursor = ranges[s].second;
      }
      EXPECT_EQ(cursor, num_pairs);
      // Balanced to within one tile.
      if (ranges.size() > 1) {
        int64_t min_tiles = std::numeric_limits<int64_t>::max();
        int64_t max_tiles = 0;
        for (const auto& range : ranges) {
          const int64_t tiles =
              (range.second - range.first + kSweepTilePairs - 1) /
              kSweepTilePairs;
          min_tiles = std::min(min_tiles, tiles);
          max_tiles = std::max(max_tiles, tiles);
        }
        EXPECT_LE(max_tiles - min_tiles, 1);
      }
    }
  }
}

TEST(SplitPairRangesTest, FewerTilesThanShardsShrinksTheFanOut) {
  // 2016 pairs = 2 tiles: a 4-way router degrades to 2 live shards rather
  // than sending empty ranges.
  const auto ranges = SplitPairRanges(2016, 4);
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges[0], (std::pair<int64_t, int64_t>{0, 1024}));
  EXPECT_EQ(ranges[1], (std::pair<int64_t, int64_t>{1024, 2016}));
}

// ------------------------------------------------------- scripted sources --

/// Deterministic ShardWindowSource: `windows` consecutive windows, each
/// carrying one edge stamped with (shard, index) so merge-order assertions
/// can tell every part apart; optional per-window delay, a blocking gate,
/// an injected transport error, and a scripted terminal verdict.
class ScriptedSource final : public ShardWindowSource {
 public:
  struct Script {
    int64_t windows = 0;
    int64_t delay_ms = 0;            ///< before each delivery
    int64_t block_at = -1;           ///< Next blocks here until Release()
    int64_t transport_error_at = -1; ///< Next returns IoError at this index
    Status verdict = Status::Ok();   ///< terminal result_status
  };

  ScriptedSource(int shard, Script script)
      : shard_(shard), script_(std::move(script)) {}

  Result<std::optional<StreamedWindow>> Next() override {
    int64_t index = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (script_.block_at >= 0 && next_ == script_.block_at) {
        cv_.wait(lock, [&] { return released_ || cancelled_; });
      }
      if (cancelled_ || next_ >= script_.windows) {
        finished_early_ = cancelled_ && next_ < script_.windows;
        return std::optional<StreamedWindow>();
      }
      if (next_ == script_.transport_error_at) {
        return Status::IoError("scripted transport failure");
      }
      index = next_++;
    }
    if (script_.delay_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(script_.delay_ms));
    }
    StreamedWindow window;
    window.window_index = index;
    auto edges = std::make_shared<std::vector<Edge>>();
    Edge edge;
    edge.i = shard_;
    edge.j = shard_ + 1;
    edge.value = shard_ * 1000.0 + static_cast<double>(index);
    edges->push_back(edge);
    window.edges = std::move(edges);
    return std::optional<StreamedWindow>(std::move(window));
  }

  Status result_status() const override {
    std::lock_guard<std::mutex> lock(mutex_);
    if (finished_early_ && script_.verdict.ok()) {
      return Status::Cancelled("scripted source cancelled");
    }
    return script_.verdict;
  }

  WireSummary summary() const override {
    WireSummary summary;
    std::lock_guard<std::mutex> lock(mutex_);
    summary.windows_delivered = next_;
    summary.windows_computed = next_;
    return summary;
  }

  void Cancel() override {
    std::lock_guard<std::mutex> lock(mutex_);
    cancelled_ = true;
    ++cancels_;
    cv_.notify_all();
  }

  void Release() {
    std::lock_guard<std::mutex> lock(mutex_);
    released_ = true;
    cv_.notify_all();
  }

  /// Windows handed to the merge so far (the skew-bound observable).
  int64_t delivered() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return next_;
  }

  int64_t cancels() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return cancels_;
  }

 private:
  const int shard_;
  const Script script_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  int64_t next_ = 0;
  int64_t cancels_ = 0;
  bool released_ = false;
  bool cancelled_ = false;
  bool finished_early_ = false;
};

std::vector<std::unique_ptr<ShardWindowSource>> MakeSources(
    std::vector<ScriptedSource*>* handles,
    const std::vector<ScriptedSource::Script>& scripts) {
  std::vector<std::unique_ptr<ShardWindowSource>> sources;
  for (size_t s = 0; s < scripts.size(); ++s) {
    auto source =
        std::make_unique<ScriptedSource>(static_cast<int>(s), scripts[s]);
    handles->push_back(source.get());
    sources.push_back(std::move(source));
  }
  return sources;
}

// ------------------------------------------------------------- ShardMerge --

TEST(ShardMergeTest, MergesSkewedSourcesInWindowOrderShardOrderParts) {
  constexpr int64_t kWindows = 20;
  std::vector<ScriptedSource*> handles;
  // Shard 1 is the straggler: every delivery waits a beat, so the fast
  // shards run into the skew bound and the pending map genuinely reorders.
  ShardMergeOptions options;
  options.max_skew_windows = 2;
  ShardMerge merge(
      MakeSources(&handles, {{.windows = kWindows},
                             {.windows = kWindows, .delay_ms = 1},
                             {.windows = kWindows}}),
      options);

  int64_t expected_index = 0;
  while (std::optional<StreamedWindow> window = merge.Next()) {
    EXPECT_EQ(window->window_index, expected_index);
    ASSERT_EQ(window->edges->size(), 3u);
    for (int s = 0; s < 3; ++s) {
      // Parts concatenate in shard order — the canonical edge order when
      // shards are ascending pair ranges.
      EXPECT_EQ((*window->edges)[static_cast<size_t>(s)].value,
                s * 1000.0 + static_cast<double>(expected_index));
    }
    ++expected_index;
  }
  EXPECT_EQ(expected_index, kWindows);
  EXPECT_TRUE(merge.status().ok()) << merge.status().message();
  EXPECT_EQ(merge.summary().windows_delivered, kWindows);
}

TEST(ShardMergeTest, SkewBoundBlocksTheFastShard) {
  constexpr int64_t kWindows = 50;
  constexpr int64_t kSkew = 4;
  std::vector<ScriptedSource*> handles;
  ShardMergeOptions options;
  options.max_skew_windows = kSkew;
  ShardMerge merge(
      MakeSources(&handles, {{.windows = kWindows},
                             {.windows = kWindows, .block_at = 0}}),
      options);

  // With shard 1 stalled before its first window, nothing can emit
  // (next_emit stays 0), so shard 0's reader must stop pulling at the skew
  // bound instead of buffering all 50 windows.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_LE(handles[0]->delivered(), kSkew + 1)
      << "fast shard ran past the bounded reorder window";

  handles[1]->Release();
  int64_t windows = 0;
  while (std::optional<StreamedWindow> window = merge.Next()) {
    EXPECT_EQ(window->window_index, windows);
    ++windows;
  }
  EXPECT_EQ(windows, kWindows);
  EXPECT_TRUE(merge.status().ok()) << merge.status().message();
}

TEST(ShardMergeTest, FirstShardFailureCancelsSurvivorsAndWins) {
  std::vector<ScriptedSource*> handles;
  // Shard 1 fails terminally (the fingerprint-drift shape: zero windows,
  // FailedPrecondition verdict); shard 0 would happily stream forever.
  ShardMerge merge(MakeSources(
      &handles,
      {{.windows = 1000, .delay_ms = 1},
       {.windows = 0,
        .verdict = Status::FailedPrecondition("dataset fingerprint "
                                              "drifted")}}));

  while (merge.Next().has_value()) {
  }
  EXPECT_EQ(merge.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(merge.status().message().find("shard 1:"), std::string::npos)
      << merge.status().message();
  EXPECT_GE(handles[0]->cancels(), 1)
      << "the surviving shard was never released";
}

TEST(ShardMergeTest, TransportErrorFailsWithTheShardNamed) {
  std::vector<ScriptedSource*> handles;
  ShardMerge merge(MakeSources(
      &handles, {{.windows = 10, .transport_error_at = 3},
                 {.windows = 10, .delay_ms = 1}}));
  while (merge.Next().has_value()) {
  }
  EXPECT_EQ(merge.status().code(), StatusCode::kIoError);
  EXPECT_NE(merge.status().message().find("shard 0:"), std::string::npos)
      << merge.status().message();
  EXPECT_GE(handles[1]->cancels(), 1);
}

TEST(ShardMergeTest, WindowCountMismatchIsInternal) {
  std::vector<ScriptedSource*> handles;
  ShardMerge merge(
      MakeSources(&handles, {{.windows = 3}, {.windows = 2}}));
  int64_t windows = 0;
  while (merge.Next().has_value()) {
    ++windows;
  }
  // How many complete windows emit before the mismatch is caught is a
  // race (0..2); the guarantee is that the stream never ends Ok.
  EXPECT_LE(windows, 2);
  EXPECT_EQ(merge.status().code(), StatusCode::kInternal)
      << merge.status().message();
}

TEST(ShardMergeTest, CancelReleasesEveryUpstream) {
  std::vector<ScriptedSource*> handles;
  ShardMerge merge(MakeSources(&handles, {{.windows = 1000, .delay_ms = 1},
                                          {.windows = 1000, .delay_ms = 1},
                                          {.windows = 1000, .delay_ms = 1}}));
  std::optional<StreamedWindow> first = merge.Next();
  ASSERT_TRUE(first.has_value());
  merge.Cancel();
  while (merge.Next().has_value()) {
  }
  EXPECT_EQ(merge.status().code(), StatusCode::kCancelled);
  for (ScriptedSource* source : handles) {
    EXPECT_GE(source->cancels(), 1);
  }
}

TEST(ShardMergeTest, EmptyMergeIsAnEmptyOkStream) {
  ShardMerge merge({});
  EXPECT_FALSE(merge.Next().has_value());
  EXPECT_TRUE(merge.status().ok());
  EXPECT_EQ(merge.num_shards(), 0);
}

// ---------------------------------------------------- WireClient timeouts --

TEST(WireClientTimeoutTest, ConnectTimesOutOnANeverAcceptingListener) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 0), 0);  // minimal queue, never accepted
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr),
                          &len),
            0);
  const int port = ntohs(addr.sin_port);

  // The kernel completes a few handshakes into the (never-drained) accept
  // queue; once it is full, further SYNs are dropped and the connect can
  // only hang — exactly what the timeout exists for. Keep each queued
  // connection open so it goes on occupying its slot.
  WireClientOptions options;
  options.connect_timeout_ms = 200;
  std::vector<std::unique_ptr<WireClient>> queued;
  Status verdict = Status::Ok();
  for (int attempt = 0; attempt < 32; ++attempt) {
    auto client = WireClient::ConnectTcp("127.0.0.1", port, options);
    if (!client.ok()) {
      verdict = client.status();
      break;
    }
    queued.push_back(std::move(*client));
  }
  EXPECT_EQ(verdict.code(), StatusCode::kUnavailable) << verdict.ToString();
  ::close(listener);
}

TEST(WireClientTimeoutTest, ReadTimesOutOnASilentServer) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 4), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr),
                          &len),
            0);
  const int port = ntohs(addr.sin_port);

  // Accepts, reads, never answers: a live but silent peer — from the
  // client's side indistinguishable from a dead one, which is the point.
  std::thread silent_server([listener] {
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      return;
    }
    char buf[256];
    while (::recv(conn, buf, sizeof(buf), 0) > 0) {
    }
    ::close(conn);
  });

  {
    WireClientOptions options;
    options.connect_timeout_ms = 1000;
    options.read_timeout_ms = 150;
    auto client = WireClient::ConnectTcp("127.0.0.1", port, options);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    WireRequest request;
    request.dataset = "d";
    request.query.window = 24;
    request.query.step = 24;
    request.query.end = 96;
    request.query.threshold = 0.5;
    ASSERT_TRUE((*client)->Submit(request).ok());
    auto window = (*client)->Next();
    EXPECT_FALSE(window.ok());
    EXPECT_EQ(window.status().code(), StatusCode::kUnavailable)
        << window.status().ToString();
  }  // closing the client unblocks the server thread's recv

  silent_server.join();
  ::close(listener);
}

// ------------------------------------------------------------- end to end --

constexpr int64_t kBasicWindow = 24;
// 96 series = 4560 pairs = 5 sweep tiles: enough tiles for a genuine 4-way
// fan-out (a 2-tile dataset would silently shrink K=4 to K=2).
constexpr int64_t kNumSeries = 96;

class RouterE2ETest : public ::testing::Test {
 protected:
  static DangoronServerOptions ServerOptions() {
    DangoronServerOptions options;
    options.num_threads = 2;
    options.basic_window = kBasicWindow;
    return options;
  }

  SlidingQuery TestQuery() const {
    SlidingQuery query;
    query.start = 0;
    query.end = length_;
    query.window = 4 * kBasicWindow;
    query.step = kBasicWindow;
    query.threshold = 0.1;
    query.absolute = true;  // dense edge sets
    return query;
  }

  int64_t ExpectedWindows() const {
    return (length_ - TestQuery().window) / TestQuery().step + 1;
  }

  static int64_t NumPairs() { return kNumSeries * (kNumSeries - 1) / 2; }

  void AddShard(std::shared_ptr<const TimeSeriesMatrix> data) {
    auto server = std::make_unique<DangoronServer>(ServerOptions());
    CHECK(server->AddDataset("d", std::move(data)).ok());
    WireServerOptions wire_options;
    wire_options.port = -1;  // connections arrive only via AddConnection
    auto wire = std::make_unique<WireServer>(server.get(), wire_options);
    CHECK(wire->Start().ok());
    servers_.push_back(std::move(server));
    wires_.push_back(std::move(wire));
  }

  void StartShards(int shards, int64_t num_basic_windows = 8) {
    length_ = num_basic_windows * kBasicWindow;
    Rng rng(5);
    data_ = std::make_shared<const TimeSeriesMatrix>(
        GenerateWhiteNoise(kNumSeries, length_, &rng));
    for (int s = 0; s < shards; ++s) {
      AddShard(data_);
    }
  }

  /// Router options whose connections are socketpairs into the in-process
  /// shard WireServers — the whole sharded path with no network stack.
  ShardRouterOptions RouterOptions() {
    ShardRouterOptions options;
    options.shards.resize(wires_.size());  // endpoints unused: override
    options.connect_override =
        [this](int shard) -> Result<std::unique_ptr<WireClient>> {
      int fds[2];
      CHECK(socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0);
      CHECK(wires_[static_cast<size_t>(shard)]->AddConnection(fds[0]).ok());
      return WireClient::Adopt(fds[1]);
    };
    return options;
  }

  WireRequest TestRequest() const {
    WireRequest request;
    request.dataset = "d";
    request.query = TestQuery();
    return request;
  }

  static bool PollFor(const std::function<bool()>& predicate) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(2);
    while (std::chrono::steady_clock::now() < deadline) {
      if (predicate()) {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return predicate();
  }

  /// Drains a K-shard merge and the in-process reference stream side by
  /// side, comparing the encoded frame bytes of every window.
  void ExpectShardedMatchesInProcess(ShardMerge* merge) {
    DangoronServer reference(ServerOptions());
    ASSERT_TRUE(reference.AddDataset("d", data_).ok());
    QueryRequest in_process;
    in_process.dataset = "d";
    in_process.query = TestQuery();
    auto ref_stream = reference.SubmitStreaming(in_process);

    int64_t windows = 0;
    while (true) {
      std::optional<StreamedWindow> merged = merge->Next();
      auto ref = ref_stream->Next();
      if (!merged.has_value()) {
        EXPECT_FALSE(ref.has_value());
        break;
      }
      ASSERT_TRUE(ref.has_value());
      std::string merged_bytes;
      std::string ref_bytes;
      EncodeWindowFrame(merged->window_index, *merged->edges, &merged_bytes);
      EncodeWindowFrame(ref->window_index, *ref->edges, &ref_bytes);
      ASSERT_EQ(merged_bytes.size(), ref_bytes.size())
          << "window " << ref->window_index;
      ASSERT_EQ(std::memcmp(merged_bytes.data(), ref_bytes.data(),
                            merged_bytes.size()),
                0)
          << "window " << ref->window_index
          << " differs between sharded and in-process delivery";
      ++windows;
    }
    EXPECT_TRUE(ref_stream->status().ok());
    EXPECT_TRUE(merge->status().ok()) << merge->status().message();
    EXPECT_EQ(windows, ExpectedWindows());
    EXPECT_EQ(merge->summary().windows_delivered, windows);
  }

  int64_t length_ = 0;
  std::shared_ptr<const TimeSeriesMatrix> data_;
  std::vector<std::unique_ptr<DangoronServer>> servers_;
  std::vector<std::unique_ptr<WireServer>> wires_;  // after servers_: stops
                                                    // before they die
};

TEST_F(RouterE2ETest, TwoShardsAreByteIdenticalToInProcess) {
  StartShards(2);
  ShardRouter router(RouterOptions());
  auto merge = router.Submit(TestRequest(), NumPairs());
  ASSERT_TRUE(merge.ok()) << merge.status().message();
  ExpectShardedMatchesInProcess(merge->get());
  for (const auto& wire : wires_) {
    EXPECT_EQ(wire->stats().requests, 1);  // every shard saw the fan-out
  }
  for (const auto& server : servers_) {
    EXPECT_EQ(server->stats().inflight_window_claims, 0);
  }
}

TEST_F(RouterE2ETest, FourShardsAreByteIdenticalToInProcess) {
  StartShards(4);
  ShardRouter router(RouterOptions());
  auto merge = router.Submit(TestRequest(), NumPairs());
  ASSERT_TRUE(merge.ok()) << merge.status().message();
  ExpectShardedMatchesInProcess(merge->get());
  for (const auto& wire : wires_) {
    EXPECT_EQ(wire->stats().requests, 1);
  }
}

TEST_F(RouterE2ETest, FingerprintDriftOnOneShardFailsTheQuery) {
  StartShards(1);
  // Shard 1's replica drifted: same name, different content.
  Rng rng(99);
  AddShard(std::make_shared<const TimeSeriesMatrix>(
      GenerateWhiteNoise(kNumSeries, length_, &rng)));

  ShardRouter router(RouterOptions());
  WireRequest request = TestRequest();
  request.expected_fingerprint = data_->ContentFingerprint();
  auto merge = router.Submit(request, NumPairs());
  ASSERT_TRUE(merge.ok()) << merge.status().message();
  while ((*merge)->Next().has_value()) {
  }
  EXPECT_EQ((*merge)->status().code(), StatusCode::kFailedPrecondition)
      << (*merge)->status().message();
  EXPECT_NE((*merge)->status().message().find("shard 1:"),
            std::string::npos)
      << (*merge)->status().message();
  for (const auto& server : servers_) {
    EXPECT_TRUE(PollFor(
        [&] { return server->stats().inflight_window_claims == 0; }));
  }
}

TEST_F(RouterE2ETest, CancelMidStreamReleasesAllShardsWithNoLeakedClaims) {
  StartShards(2, /*num_basic_windows=*/64);  // 61 windows: genuinely mid-
                                             // stream when the cancel lands
  ShardRouter router(RouterOptions());
  WireRequest request = TestRequest();
  request.options.queue_capacity = 2;  // tight downstream queue
  auto merge = router.Submit(request, NumPairs());
  ASSERT_TRUE(merge.ok()) << merge.status().message();

  std::optional<StreamedWindow> first = (*merge)->Next();
  ASSERT_TRUE(first.has_value());
  (*merge)->Cancel();
  while ((*merge)->Next().has_value()) {
  }
  EXPECT_EQ((*merge)->status().code(), StatusCode::kCancelled);

  // Every shard's producer unwinds with zero leaked window claims, and the
  // shards still serve: a fresh sharded query completes in full.
  for (const auto& server : servers_) {
    EXPECT_TRUE(PollFor(
        [&] { return server->stats().inflight_window_claims == 0; }))
        << "a shard leaked window claims after the fanned-out cancel";
    EXPECT_TRUE(
        PollFor([&] { return server->stats().streams_cancelled >= 1; }));
  }
  auto rerun = router.Submit(TestRequest(), NumPairs());
  ASSERT_TRUE(rerun.ok());
  int64_t windows = 0;
  while ((*rerun)->Next().has_value()) {
    ++windows;
  }
  EXPECT_TRUE((*rerun)->status().ok()) << (*rerun)->status().message();
  EXPECT_EQ(windows, ExpectedWindows());
}

TEST_F(RouterE2ETest, TryPushSkewFailpointStillMergesByteIdentically) {
  if (!kFailpointsCompiled) {
    GTEST_SKIP() << "failpoints compiled out (DANGORON_FAILPOINTS=OFF)";
  }
  StartShards(2);
  ShardRouter router(RouterOptions());
  auto merge = router.Submit(TestRequest(), NumPairs());
  ASSERT_TRUE(merge.ok()) << merge.status().message();

  // Adversarial skew on the real delivery path: every shard's TryPush
  // spuriously fails 40% of the time (process-global site), kicking the
  // producers onto their slow claim-safe fallback at uncorrelated moments.
  // The merged stream must not show it: same bytes, same order.
  struct DisarmOnExit {
    ~DisarmOnExit() { FailpointRegistry::Instance().DisarmAll(); }
  } disarm_on_exit;
  ASSERT_TRUE(FailpointRegistry::Instance()
                  .Configure("stream.try_push=wake%40")
                  .ok());
  ExpectShardedMatchesInProcess(merge->get());
}

// ----------------------------------------------------------- RouterServer --

TEST_F(RouterE2ETest, RouterServerSpeaksTheWireProtocolTransparently) {
  StartShards(2);
  ShardRouter router(RouterOptions());
  RouterServerOptions options;
  options.port = -1;
  RouterServer front(&router, options);
  front.RegisterDataset("d", kNumSeries, data_->ContentFingerprint());
  ASSERT_TRUE(front.Start().ok());

  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_TRUE(front.AddConnection(fds[0]).ok());
  auto client = WireClient::Adopt(fds[1]);

  // A wire client cannot tell the router from a single shard: same
  // protocol, byte-identical windows.
  ASSERT_TRUE(client->Submit(TestRequest()).ok());
  DangoronServer reference(ServerOptions());
  ASSERT_TRUE(reference.AddDataset("d", data_).ok());
  QueryRequest in_process;
  in_process.dataset = "d";
  in_process.query = TestQuery();
  auto ref_stream = reference.SubmitStreaming(in_process);
  int64_t windows = 0;
  while (true) {
    auto from_router = client->Next();
    ASSERT_TRUE(from_router.ok()) << from_router.status().message();
    auto from_ref = ref_stream->Next();
    if (!from_router->has_value()) {
      EXPECT_FALSE(from_ref.has_value());
      break;
    }
    ASSERT_TRUE(from_ref.has_value());
    std::string router_bytes;
    std::string ref_bytes;
    EncodeWindowFrame((*from_router)->window_index,
                      *(*from_router)->edges, &router_bytes);
    EncodeWindowFrame(from_ref->window_index, *from_ref->edges, &ref_bytes);
    ASSERT_EQ(router_bytes, ref_bytes)
        << "window " << from_ref->window_index;
    ++windows;
  }
  EXPECT_TRUE(client->result_status().ok())
      << client->result_status().message();
  EXPECT_EQ(windows, ExpectedWindows());
  EXPECT_EQ(client->summary().windows_delivered, windows);

  // Unknown dataset: NotFound, and the connection stays usable.
  WireRequest unknown = TestRequest();
  unknown.dataset = "nope";
  ASSERT_TRUE(client->Submit(unknown).ok());
  auto window = client->Next();
  ASSERT_TRUE(window.ok());
  EXPECT_FALSE(window->has_value());
  EXPECT_EQ(client->result_status().code(), StatusCode::kNotFound);

  ASSERT_TRUE(client->Submit(TestRequest()).ok());
  int64_t rerun_windows = 0;
  while (true) {
    auto rerun = client->Next();
    ASSERT_TRUE(rerun.ok());
    if (!rerun->has_value()) {
      break;
    }
    ++rerun_windows;
  }
  EXPECT_TRUE(client->result_status().ok());
  EXPECT_EQ(rerun_windows, ExpectedWindows());

  front.Stop();
  const RouterServerStats stats = front.stats();
  EXPECT_EQ(stats.connections_adopted, 1);
  EXPECT_EQ(stats.requests, 3);
  EXPECT_EQ(stats.protocol_errors, 0);
}

TEST_F(RouterE2ETest, RouterServerPinsTheRegisteredFingerprint) {
  StartShards(1);
  Rng rng(99);
  AddShard(std::make_shared<const TimeSeriesMatrix>(
      GenerateWhiteNoise(kNumSeries, length_, &rng)));  // drifted replica

  ShardRouter router(RouterOptions());
  RouterServerOptions options;
  options.port = -1;
  RouterServer front(&router, options);
  front.RegisterDataset("d", kNumSeries, data_->ContentFingerprint());
  ASSERT_TRUE(front.Start().ok());
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_TRUE(front.AddConnection(fds[0]).ok());
  auto client = WireClient::Adopt(fds[1]);

  // The client pins nothing; the router stamps the registered fingerprint
  // onto every shard request, so the drifted shard still fails the query.
  ASSERT_TRUE(client->Submit(TestRequest()).ok());
  while (true) {
    auto window = client->Next();
    ASSERT_TRUE(window.ok());
    if (!window->has_value()) {
      break;
    }
  }
  EXPECT_EQ(client->result_status().code(), StatusCode::kFailedPrecondition)
      << client->result_status().message();
  front.Stop();
}

TEST_F(RouterE2ETest, RouterServerDisconnectCancelsEveryShard) {
  StartShards(2, /*num_basic_windows=*/64);
  ShardRouter router(RouterOptions());
  RouterServerOptions options;
  options.port = -1;
  RouterServer front(&router, options);
  front.RegisterDataset("d", kNumSeries, data_->ContentFingerprint());
  ASSERT_TRUE(front.Start().ok());

  {
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    ASSERT_TRUE(front.AddConnection(fds[0]).ok());
    auto client = WireClient::Adopt(fds[1]);
    WireRequest request = TestRequest();
    request.options.queue_capacity = 2;
    ASSERT_TRUE(client->Submit(request).ok());
    auto window = client->Next();
    ASSERT_TRUE(window.ok());
    ASSERT_TRUE(window->has_value());
  }  // the client vanishes mid-stream (destructor closes the socket)

  EXPECT_TRUE(PollFor([&] { return front.stats().disconnect_cancels >= 1; }))
      << "the router never mapped the disconnect to a cancel";
  for (const auto& server : servers_) {
    EXPECT_TRUE(PollFor(
        [&] { return server->stats().inflight_window_claims == 0; }))
        << "a shard leaked window claims after the client disconnect";
  }
  front.Stop();
}

}  // namespace
}  // namespace dangoron
