// Router tier tests: SplitPairRanges geometry, the ShardMerge core against
// scripted sources (adversarial skew, bounded reorder memory, first-error
// cancellation, window-count mismatches), WireClient transport timeouts,
// and socketpair-driven end-to-end runs of the sharded path — including
// the acceptance-critical property: a K-shard query is byte-identical to
// the single-process stream at K in {2, 4}, and a cancel (client-driven or
// disconnect) releases every shard with zero leaked window claims.

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/sync.h"
#include "corr/sweep_kernel.h"
#include "net/wire_server.h"
#include "router/router_server.h"
#include "router/shard_merge.h"
#include "router/shard_router.h"
#include "serve/server.h"
#include "ts/generators.h"
#include "wire/client.h"
#include "wire/wire_format.h"

namespace dangoron {
namespace {

#if DANGORON_FAILPOINTS_ENABLED
constexpr bool kFailpointsCompiled = true;
#else
constexpr bool kFailpointsCompiled = false;
#endif

// -------------------------------------------------------- SplitPairRanges --

TEST(SplitPairRangesTest, CoversDisjointTileAlignedBalanced) {
  for (const int64_t num_pairs :
       {int64_t{0}, int64_t{1}, int64_t{1023}, int64_t{1024}, int64_t{1025},
        int64_t{2016}, int64_t{4560}, int64_t{8128}, int64_t{100000}}) {
    for (const int shards : {1, 2, 4, 7}) {
      const auto ranges = SplitPairRanges(num_pairs, shards);
      ASSERT_FALSE(ranges.empty());
      EXPECT_LE(static_cast<int>(ranges.size()), shards);
      // Concatenation covers [0, num_pairs) exactly, in order.
      int64_t cursor = 0;
      for (size_t s = 0; s < ranges.size(); ++s) {
        EXPECT_EQ(ranges[s].first, cursor)
            << "gap before shard " << s << " (pairs=" << num_pairs
            << ", shards=" << shards << ")";
        EXPECT_GE(ranges[s].second, ranges[s].first);
        // Every interior cut sits on a tile boundary: the shard tiling is
        // the engine's own tiling.
        if (s + 1 < ranges.size()) {
          EXPECT_EQ(ranges[s].second % kSweepTilePairs, 0);
        }
        cursor = ranges[s].second;
      }
      EXPECT_EQ(cursor, num_pairs);
      // Balanced to within one tile.
      if (ranges.size() > 1) {
        int64_t min_tiles = std::numeric_limits<int64_t>::max();
        int64_t max_tiles = 0;
        for (const auto& range : ranges) {
          const int64_t tiles =
              (range.second - range.first + kSweepTilePairs - 1) /
              kSweepTilePairs;
          min_tiles = std::min(min_tiles, tiles);
          max_tiles = std::max(max_tiles, tiles);
        }
        EXPECT_LE(max_tiles - min_tiles, 1);
      }
    }
  }
}

TEST(SplitPairRangesTest, FewerTilesThanShardsShrinksTheFanOut) {
  // 2016 pairs = 2 tiles: a 4-way router degrades to 2 live shards rather
  // than sending empty ranges.
  const auto ranges = SplitPairRanges(2016, 4);
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges[0], (std::pair<int64_t, int64_t>{0, 1024}));
  EXPECT_EQ(ranges[1], (std::pair<int64_t, int64_t>{1024, 2016}));
}

// ------------------------------------------------------- scripted sources --

/// Deterministic ShardWindowSource: `windows` consecutive windows, each
/// carrying one edge stamped with (shard, index) so merge-order assertions
/// can tell every part apart; optional per-window delay, a blocking gate,
/// an injected transport error, and a scripted terminal verdict.
class ScriptedSource final : public ShardWindowSource {
 public:
  struct Script {
    int64_t windows = 0;
    int64_t delay_ms = 0;            ///< before each delivery
    int64_t block_at = -1;           ///< Next blocks here until Release()
    int64_t transport_error_at = -1; ///< Next returns IoError at this index
    Status verdict = Status::Ok();   ///< terminal result_status
    /// Added to the edge-value stamp (not window_index): a failover
    /// replacement resuming at global window w scripts value_base = w so
    /// its locally-indexed windows carry globally-consistent values.
    int64_t value_base = 0;
  };

  ScriptedSource(int shard, Script script)
      : shard_(shard), script_(std::move(script)) {}

  Result<std::optional<StreamedWindow>> Next() override {
    int64_t index = 0;
    {
      MutexLock lock(mutex_);
      if (script_.block_at >= 0 && next_ == script_.block_at) {
        while (!released_ && !cancelled_) {
          cv_.Wait(mutex_);
        }
      }
      if (cancelled_ || next_ >= script_.windows) {
        finished_early_ = cancelled_ && next_ < script_.windows;
        return std::optional<StreamedWindow>();
      }
      if (next_ == script_.transport_error_at) {
        return Status::IoError("scripted transport failure");
      }
      index = next_++;
    }
    if (script_.delay_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(script_.delay_ms));
    }
    StreamedWindow window;
    window.window_index = index;
    auto edges = std::make_shared<std::vector<Edge>>();
    Edge edge;
    edge.i = shard_;
    edge.j = shard_ + 1;
    edge.value =
        shard_ * 1000.0 + static_cast<double>(script_.value_base + index);
    edges->push_back(edge);
    window.edges = std::move(edges);
    return std::optional<StreamedWindow>(std::move(window));
  }

  Status result_status() const override {
    MutexLock lock(mutex_);
    if (finished_early_ && script_.verdict.ok()) {
      return Status::Cancelled("scripted source cancelled");
    }
    return script_.verdict;
  }

  WireSummary summary() const override {
    WireSummary summary;
    MutexLock lock(mutex_);
    summary.windows_delivered = next_;
    summary.windows_computed = next_;
    return summary;
  }

  void Cancel() override {
    MutexLock lock(mutex_);
    cancelled_ = true;
    ++cancels_;
    cv_.NotifyAll();
  }

  void Release() {
    MutexLock lock(mutex_);
    released_ = true;
    cv_.NotifyAll();
  }

  /// Windows handed to the merge so far (the skew-bound observable).
  int64_t delivered() const {
    MutexLock lock(mutex_);
    return next_;
  }

  int64_t cancels() const {
    MutexLock lock(mutex_);
    return cancels_;
  }

 private:
  const int shard_;
  const Script script_;
  mutable Mutex mutex_;
  CondVar cv_;
  int64_t next_ GUARDED_BY(mutex_) = 0;
  int64_t cancels_ GUARDED_BY(mutex_) = 0;
  bool released_ GUARDED_BY(mutex_) = false;
  bool cancelled_ GUARDED_BY(mutex_) = false;
  bool finished_early_ GUARDED_BY(mutex_) = false;
};

std::vector<std::unique_ptr<ShardWindowSource>> MakeSources(
    std::vector<ScriptedSource*>* handles,
    const std::vector<ScriptedSource::Script>& scripts) {
  std::vector<std::unique_ptr<ShardWindowSource>> sources;
  for (size_t s = 0; s < scripts.size(); ++s) {
    auto source =
        std::make_unique<ScriptedSource>(static_cast<int>(s), scripts[s]);
    handles->push_back(source.get());
    sources.push_back(std::move(source));
  }
  return sources;
}

// ------------------------------------------------------------- ShardMerge --

TEST(ShardMergeTest, MergesSkewedSourcesInWindowOrderShardOrderParts) {
  constexpr int64_t kWindows = 20;
  std::vector<ScriptedSource*> handles;
  // Shard 1 is the straggler: every delivery waits a beat, so the fast
  // shards run into the skew bound and the pending map genuinely reorders.
  ShardMergeOptions options;
  options.max_skew_windows = 2;
  ShardMerge merge(
      MakeSources(&handles, {{.windows = kWindows},
                             {.windows = kWindows, .delay_ms = 1},
                             {.windows = kWindows}}),
      options);

  int64_t expected_index = 0;
  while (std::optional<StreamedWindow> window = merge.Next()) {
    EXPECT_EQ(window->window_index, expected_index);
    ASSERT_EQ(window->edges->size(), 3u);
    for (int s = 0; s < 3; ++s) {
      // Parts concatenate in shard order — the canonical edge order when
      // shards are ascending pair ranges.
      EXPECT_EQ((*window->edges)[static_cast<size_t>(s)].value,
                s * 1000.0 + static_cast<double>(expected_index));
    }
    ++expected_index;
  }
  EXPECT_EQ(expected_index, kWindows);
  EXPECT_TRUE(merge.status().ok()) << merge.status().message();
  EXPECT_EQ(merge.summary().windows_delivered, kWindows);
}

TEST(ShardMergeTest, SkewBoundBlocksTheFastShard) {
  constexpr int64_t kWindows = 50;
  constexpr int64_t kSkew = 4;
  std::vector<ScriptedSource*> handles;
  ShardMergeOptions options;
  options.max_skew_windows = kSkew;
  ShardMerge merge(
      MakeSources(&handles, {{.windows = kWindows},
                             {.windows = kWindows, .block_at = 0}}),
      options);

  // With shard 1 stalled before its first window, nothing can emit
  // (next_emit stays 0), so shard 0's reader must stop pulling at the skew
  // bound instead of buffering all 50 windows.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_LE(handles[0]->delivered(), kSkew + 1)
      << "fast shard ran past the bounded reorder window";

  handles[1]->Release();
  int64_t windows = 0;
  while (std::optional<StreamedWindow> window = merge.Next()) {
    EXPECT_EQ(window->window_index, windows);
    ++windows;
  }
  EXPECT_EQ(windows, kWindows);
  EXPECT_TRUE(merge.status().ok()) << merge.status().message();
}

TEST(ShardMergeTest, FirstShardFailureCancelsSurvivorsAndWins) {
  std::vector<ScriptedSource*> handles;
  // Shard 1 fails terminally (the fingerprint-drift shape: zero windows,
  // FailedPrecondition verdict); shard 0 would happily stream forever.
  ShardMerge merge(MakeSources(
      &handles,
      {{.windows = 1000, .delay_ms = 1},
       {.windows = 0,
        .verdict = Status::FailedPrecondition("dataset fingerprint "
                                              "drifted")}}));

  while (merge.Next().has_value()) {
  }
  EXPECT_EQ(merge.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(merge.status().message().find("shard 1:"), std::string::npos)
      << merge.status().message();
  EXPECT_GE(handles[0]->cancels(), 1)
      << "the surviving shard was never released";
}

TEST(ShardMergeTest, TransportErrorFailsWithTheShardNamed) {
  std::vector<ScriptedSource*> handles;
  ShardMerge merge(MakeSources(
      &handles, {{.windows = 10, .transport_error_at = 3},
                 {.windows = 10, .delay_ms = 1}}));
  while (merge.Next().has_value()) {
  }
  EXPECT_EQ(merge.status().code(), StatusCode::kIoError);
  EXPECT_NE(merge.status().message().find("shard 0:"), std::string::npos)
      << merge.status().message();
  EXPECT_GE(handles[1]->cancels(), 1);
}

TEST(ShardMergeTest, WindowCountMismatchIsInternal) {
  std::vector<ScriptedSource*> handles;
  ShardMerge merge(
      MakeSources(&handles, {{.windows = 3}, {.windows = 2}}));
  int64_t windows = 0;
  while (merge.Next().has_value()) {
    ++windows;
  }
  // How many complete windows emit before the mismatch is caught is a
  // race (0..2); the guarantee is that the stream never ends Ok.
  EXPECT_LE(windows, 2);
  EXPECT_EQ(merge.status().code(), StatusCode::kInternal)
      << merge.status().message();
}

TEST(ShardMergeTest, CancelReleasesEveryUpstream) {
  std::vector<ScriptedSource*> handles;
  ShardMerge merge(MakeSources(&handles, {{.windows = 1000, .delay_ms = 1},
                                          {.windows = 1000, .delay_ms = 1},
                                          {.windows = 1000, .delay_ms = 1}}));
  std::optional<StreamedWindow> first = merge.Next();
  ASSERT_TRUE(first.has_value());
  merge.Cancel();
  while (merge.Next().has_value()) {
  }
  EXPECT_EQ(merge.status().code(), StatusCode::kCancelled);
  for (ScriptedSource* source : handles) {
    EXPECT_GE(source->cancels(), 1);
  }
}

TEST(ShardMergeTest, EmptyMergeIsAnEmptyOkStream) {
  ShardMerge merge({});
  EXPECT_FALSE(merge.Next().has_value());
  EXPECT_TRUE(merge.status().ok());
  EXPECT_EQ(merge.num_shards(), 0);
}

// ----------------------------------------------------- ShardMerge failover --

ShardSlice MakeSlice(std::unique_ptr<ShardWindowSource> source,
                     int64_t pair_begin, int64_t pair_end,
                     std::string label = "", int64_t shard_id = -1) {
  ShardSlice slice;
  slice.source = std::move(source);
  slice.pair_begin = pair_begin;
  slice.pair_end = pair_end;
  slice.label = std::move(label);
  slice.shard_id = shard_id;
  return slice;
}

TEST(ShardMergeFailoverTest, ReconnectResumesTheDeadRangeSeamlessly) {
  constexpr int64_t kWindows = 10;
  std::vector<ShardSlice> slices;
  slices.push_back(MakeSlice(
      std::make_unique<ScriptedSource>(0, ScriptedSource::Script{
                                              .windows = kWindows}),
      0, 1));
  // Shard 1 delivers windows 0..2, then its transport dies at index 3.
  slices.push_back(MakeSlice(
      std::make_unique<ScriptedSource>(
          1, ScriptedSource::Script{.windows = kWindows,
                                    .transport_error_at = 3}),
      1, 2, "backend-1", /*shard_id=*/7));

  ShardFailover seen;
  ShardMergeOptions options;
  options.max_failovers = 1;
  options.failover =
      [&](const ShardFailover& f) -> Result<std::vector<ShardSlice>> {
    seen = f;
    // The replacement's upstream is re-anchored at the resume window, so
    // it indexes windows locally from 0; value_base keeps the edge stamps
    // globally consistent so the byte-identity assertion below is real.
    std::vector<ShardSlice> out;
    out.push_back(MakeSlice(
        std::make_unique<ScriptedSource>(
            1, ScriptedSource::Script{.windows = kWindows - f.resume_window,
                                      .value_base = f.resume_window}),
        f.pair_begin, f.pair_end, "backend-1b", f.shard_id));
    return out;
  };

  ShardMerge merge(std::move(slices), /*num_pairs=*/2, options);
  int64_t expected_index = 0;
  while (std::optional<StreamedWindow> window = merge.Next()) {
    EXPECT_EQ(window->window_index, expected_index);
    ASSERT_EQ(window->edges->size(), 2u);
    // The stream the consumer sees is exactly what the healthy run would
    // deliver: same windows, same parts, same values.
    EXPECT_EQ((*window->edges)[0].value,
              static_cast<double>(expected_index));
    EXPECT_EQ((*window->edges)[1].value,
              1000.0 + static_cast<double>(expected_index));
    ++expected_index;
  }
  EXPECT_EQ(expected_index, kWindows);
  EXPECT_TRUE(merge.status().ok()) << merge.status().message();
  EXPECT_EQ(merge.failovers(), 1);

  // The hook saw the dead shard's identity, range, and resume point.
  EXPECT_EQ(seen.shard, 1);
  EXPECT_EQ(seen.shard_id, 7);
  EXPECT_EQ(seen.label, "backend-1");
  EXPECT_EQ(seen.pair_begin, 1);
  EXPECT_EQ(seen.pair_end, 2);
  EXPECT_EQ(seen.resume_window, 3);
  EXPECT_EQ(seen.cause.code(), StatusCode::kIoError);
  EXPECT_NE(seen.cause.message().find("shard 1 (backend-1)"),
            std::string::npos)
      << seen.cause.message();
}

TEST(ShardMergeFailoverTest, SplitsTheDeadRangeAcrossReplacements) {
  constexpr int64_t kWindows = 8;
  std::vector<ShardSlice> slices;
  slices.push_back(MakeSlice(
      std::make_unique<ScriptedSource>(0, ScriptedSource::Script{
                                              .windows = kWindows}),
      0, 1));
  // The dead shard covered two pair units; its takeover splits in two.
  slices.push_back(MakeSlice(
      std::make_unique<ScriptedSource>(
          1, ScriptedSource::Script{.windows = kWindows,
                                    .transport_error_at = 2}),
      1, 3));

  ShardMergeOptions options;
  options.max_failovers = 1;
  options.failover =
      [&](const ShardFailover& f) -> Result<std::vector<ShardSlice>> {
    std::vector<ShardSlice> out;
    out.push_back(MakeSlice(
        std::make_unique<ScriptedSource>(
            1, ScriptedSource::Script{.windows = kWindows - f.resume_window,
                                      .value_base = f.resume_window}),
        1, 2));
    out.push_back(MakeSlice(
        std::make_unique<ScriptedSource>(
            2, ScriptedSource::Script{.windows = kWindows - f.resume_window,
                                      .value_base = f.resume_window}),
        2, 3));
    return out;
  };

  ShardMerge merge(std::move(slices), /*num_pairs=*/3, options);
  int64_t expected_index = 0;
  while (std::optional<StreamedWindow> window = merge.Next()) {
    EXPECT_EQ(window->window_index, expected_index);
    // Windows the dead shard delivered carry its one wide part; windows
    // past the failover carry the two replacement parts — in ascending
    // pair-range order either way.
    if (expected_index < 2) {
      ASSERT_EQ(window->edges->size(), 2u);
    } else {
      ASSERT_EQ(window->edges->size(), 3u);
      EXPECT_EQ((*window->edges)[1].value,
                1000.0 + static_cast<double>(expected_index));
      EXPECT_EQ((*window->edges)[2].value,
                2000.0 + static_cast<double>(expected_index));
    }
    EXPECT_EQ((*window->edges)[0].value,
              static_cast<double>(expected_index));
    ++expected_index;
  }
  EXPECT_EQ(expected_index, kWindows);
  EXPECT_TRUE(merge.status().ok()) << merge.status().message();
  EXPECT_EQ(merge.failovers(), 1);
}

TEST(ShardMergeFailoverTest, BudgetExhaustedFailsWithThePrefixedCause) {
  constexpr int64_t kWindows = 10;
  std::vector<ShardSlice> slices;
  slices.push_back(MakeSlice(
      std::make_unique<ScriptedSource>(0, ScriptedSource::Script{
                                              .windows = kWindows}),
      0, 1));
  slices.push_back(MakeSlice(
      std::make_unique<ScriptedSource>(
          1, ScriptedSource::Script{.windows = kWindows,
                                    .transport_error_at = 2}),
      1, 2, "backend-1"));

  std::atomic<int> hook_calls{0};
  ShardMergeOptions options;
  options.max_failovers = 1;
  options.failover =
      [&](const ShardFailover& f) -> Result<std::vector<ShardSlice>> {
    ++hook_calls;
    // The replacement dies too (local index 1 = global window 3): the
    // second death finds the budget spent and must fail the merge.
    std::vector<ShardSlice> out;
    out.push_back(MakeSlice(
        std::make_unique<ScriptedSource>(
            1, ScriptedSource::Script{.windows = kWindows - f.resume_window,
                                      .transport_error_at = 1,
                                      .value_base = f.resume_window}),
        f.pair_begin, f.pair_end, "replacement"));
    return out;
  };

  ShardMerge merge(std::move(slices), /*num_pairs=*/2, options);
  while (merge.Next().has_value()) {
  }
  EXPECT_EQ(hook_calls.load(), 1);
  EXPECT_EQ(merge.failovers(), 1);
  EXPECT_EQ(merge.status().code(), StatusCode::kIoError);
  // The terminal error names the slice that died with no budget left —
  // the replacement, at its fresh index past the original shards.
  EXPECT_NE(merge.status().message().find("shard 2 (replacement)"),
            std::string::npos)
      << merge.status().message();
}

TEST(ShardMergeFailoverTest, TerminalUnavailableVerdictIsRetryable) {
  constexpr int64_t kWindows = 10;
  std::vector<ShardSlice> slices;
  slices.push_back(MakeSlice(
      std::make_unique<ScriptedSource>(0, ScriptedSource::Script{
                                              .windows = kWindows}),
      0, 1));
  // The shard's stream ends cleanly but its verdict is Unavailable — the
  // "process killed between frames" shape. Retryable, unlike other codes.
  slices.push_back(MakeSlice(
      std::make_unique<ScriptedSource>(
          1, ScriptedSource::Script{
                 .windows = 4,
                 .verdict = Status::Unavailable("shard went away")}),
      1, 2));

  ShardMergeOptions options;
  options.max_failovers = 1;
  options.failover =
      [&](const ShardFailover& f) -> Result<std::vector<ShardSlice>> {
    EXPECT_EQ(f.resume_window, 4);
    EXPECT_EQ(f.cause.code(), StatusCode::kUnavailable);
    std::vector<ShardSlice> out;
    out.push_back(MakeSlice(
        std::make_unique<ScriptedSource>(
            1, ScriptedSource::Script{.windows = kWindows - f.resume_window,
                                      .value_base = f.resume_window}),
        f.pair_begin, f.pair_end));
    return out;
  };

  ShardMerge merge(std::move(slices), /*num_pairs=*/2, options);
  int64_t windows = 0;
  while (merge.Next().has_value()) {
    ++windows;
  }
  EXPECT_EQ(windows, kWindows);
  EXPECT_TRUE(merge.status().ok()) << merge.status().message();
  EXPECT_EQ(merge.failovers(), 1);
}

TEST(ShardMergeFailoverTest, NonRetryableVerdictBypassesTheHook) {
  std::atomic<int> hook_calls{0};
  ShardMergeOptions options;
  options.max_failovers = 2;
  options.failover =
      [&](const ShardFailover&) -> Result<std::vector<ShardSlice>> {
    ++hook_calls;
    return Status::Internal("must never be called");
  };

  std::vector<ShardSlice> slices;
  slices.push_back(MakeSlice(
      std::make_unique<ScriptedSource>(0, ScriptedSource::Script{
                                              .windows = 100,
                                              .delay_ms = 1}),
      0, 1));
  // Fingerprint drift would recur on any replacement: fail fast instead
  // of burning the failover budget on a deterministic error.
  slices.push_back(MakeSlice(
      std::make_unique<ScriptedSource>(
          1, ScriptedSource::Script{
                 .windows = 0,
                 .verdict = Status::FailedPrecondition("drifted")}),
      1, 2));

  ShardMerge merge(std::move(slices), /*num_pairs=*/2, options);
  while (merge.Next().has_value()) {
  }
  EXPECT_EQ(hook_calls.load(), 0);
  EXPECT_EQ(merge.failovers(), 0);
  EXPECT_EQ(merge.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ShardMergeFailoverTest, HookErrorAnnotatesTheOriginalCause) {
  ShardMergeOptions options;
  options.max_failovers = 1;
  options.failover =
      [](const ShardFailover&) -> Result<std::vector<ShardSlice>> {
    return Status::Unavailable("no live shard to take over");
  };

  std::vector<ShardSlice> slices;
  slices.push_back(MakeSlice(
      std::make_unique<ScriptedSource>(
          0, ScriptedSource::Script{.windows = 5,
                                    .transport_error_at = 1}),
      0, 1));

  ShardMerge merge(std::move(slices), /*num_pairs=*/1, options);
  while (merge.Next().has_value()) {
  }
  // The stream fails with the shard's original error — the re-dispatch
  // failure rides along as an annotation, it does not replace the cause.
  EXPECT_EQ(merge.status().code(), StatusCode::kIoError);
  EXPECT_NE(merge.status().message().find("scripted transport failure"),
            std::string::npos)
      << merge.status().message();
  EXPECT_NE(
      merge.status().message().find("failover failed: no live shard"),
      std::string::npos)
      << merge.status().message();
}

TEST(ShardMergeFailoverTest, ReplacementCoverageMismatchIsInternal) {
  ShardMergeOptions options;
  options.max_failovers = 1;
  options.failover =
      [](const ShardFailover& f) -> Result<std::vector<ShardSlice>> {
    // Covers only half the dead range: a bug the merge must catch rather
    // than hang waiting for pairs nobody will deliver.
    std::vector<ShardSlice> out;
    out.push_back(MakeSlice(std::make_unique<ScriptedSource>(
                                1, ScriptedSource::Script{.windows = 5}),
                            f.pair_begin, f.pair_begin + 1));
    return out;
  };

  std::vector<ShardSlice> slices;
  slices.push_back(MakeSlice(
      std::make_unique<ScriptedSource>(
          0, ScriptedSource::Script{.windows = 5,
                                    .transport_error_at = 1}),
      0, 2));

  ShardMerge merge(std::move(slices), /*num_pairs=*/2, options);
  while (merge.Next().has_value()) {
  }
  EXPECT_EQ(merge.status().code(), StatusCode::kInternal)
      << merge.status().message();
}

// ---------------------------------------------------- WireClient timeouts --

TEST(WireClientTimeoutTest, ConnectTimesOutOnANeverAcceptingListener) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 0), 0);  // minimal queue, never accepted
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr),
                          &len),
            0);
  const int port = ntohs(addr.sin_port);

  // The kernel completes a few handshakes into the (never-drained) accept
  // queue; once it is full, further SYNs are dropped and the connect can
  // only hang — exactly what the timeout exists for. Keep each queued
  // connection open so it goes on occupying its slot.
  WireClientOptions options;
  options.connect_timeout_ms = 200;
  std::vector<std::unique_ptr<WireClient>> queued;
  Status verdict = Status::Ok();
  for (int attempt = 0; attempt < 32; ++attempt) {
    auto client = WireClient::ConnectTcp("127.0.0.1", port, options);
    if (!client.ok()) {
      verdict = client.status();
      break;
    }
    queued.push_back(std::move(*client));
  }
  EXPECT_EQ(verdict.code(), StatusCode::kUnavailable) << verdict.ToString();
  ::close(listener);
}

TEST(WireClientTimeoutTest, ReadTimesOutOnASilentServer) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 4), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr),
                          &len),
            0);
  const int port = ntohs(addr.sin_port);

  // Accepts, reads, never answers: a live but silent peer — from the
  // client's side indistinguishable from a dead one, which is the point.
  std::thread silent_server([listener] {
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      return;
    }
    char buf[256];
    while (::recv(conn, buf, sizeof(buf), 0) > 0) {
    }
    ::close(conn);
  });

  {
    WireClientOptions options;
    options.connect_timeout_ms = 1000;
    options.read_timeout_ms = 150;
    auto client = WireClient::ConnectTcp("127.0.0.1", port, options);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    WireRequest request;
    request.dataset = "d";
    request.query.window = 24;
    request.query.step = 24;
    request.query.end = 96;
    request.query.threshold = 0.5;
    ASSERT_TRUE((*client)->Submit(request).ok());
    auto window = (*client)->Next();
    EXPECT_FALSE(window.ok());
    EXPECT_EQ(window.status().code(), StatusCode::kUnavailable)
        << window.status().ToString();
  }  // closing the client unblocks the server thread's recv

  silent_server.join();
  ::close(listener);
}

// --------------------------------------------------- WireClient reconnect --

/// Open descriptors in this process (includes the scan's own dirfd, which
/// cancels out in before/after comparisons).
int CountOpenFds() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) {
    return -1;
  }
  int count = 0;
  while (::readdir(dir) != nullptr) {
    ++count;
  }
  ::closedir(dir);
  return count;
}

TEST(WireClientReconnectTest, RetriedRefusedConnectsLeakNoFds) {
  // A loopback port with nothing behind it: bind, read the port back,
  // close — connects are refused immediately, the router's reconnect-storm
  // shape.
  const int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(probe, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(
      ::bind(probe, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(probe, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const int port = ntohs(addr.sin_port);
  ::close(probe);

  WireClientOptions options;
  options.connect_timeout_ms = 200;
  const int baseline = CountOpenFds();
  ASSERT_GT(baseline, 0);
  for (int attempt = 0; attempt < 16; ++attempt) {
    auto client = WireClient::ConnectTcp("127.0.0.1", port, options);
    EXPECT_FALSE(client.ok());
  }
  // Every failed attempt closed its socket: a reconnect loop (ShardRouter
  // retries, supervisor probes) must not bleed descriptors.
  EXPECT_EQ(CountOpenFds(), baseline);
}

// ------------------------------------------------------------- end to end --

constexpr int64_t kBasicWindow = 24;
// 96 series = 4560 pairs = 5 sweep tiles: enough tiles for a genuine 4-way
// fan-out (a 2-tile dataset would silently shrink K=4 to K=2).
constexpr int64_t kNumSeries = 96;

class RouterE2ETest : public ::testing::Test {
 protected:
  static DangoronServerOptions ServerOptions() {
    DangoronServerOptions options;
    options.num_threads = 2;
    options.basic_window = kBasicWindow;
    return options;
  }

  SlidingQuery TestQuery() const {
    SlidingQuery query;
    query.start = 0;
    query.end = length_;
    query.window = 4 * kBasicWindow;
    query.step = kBasicWindow;
    query.threshold = 0.1;
    query.absolute = true;  // dense edge sets
    return query;
  }

  int64_t ExpectedWindows() const {
    return (length_ - TestQuery().window) / TestQuery().step + 1;
  }

  static int64_t NumPairs() { return kNumSeries * (kNumSeries - 1) / 2; }

  void AddShard(std::shared_ptr<const TimeSeriesMatrix> data) {
    auto server = std::make_unique<DangoronServer>(ServerOptions());
    CHECK(server->AddDataset("d", std::move(data)).ok());
    WireServerOptions wire_options;
    wire_options.port = -1;  // connections arrive only via AddConnection
    auto wire = std::make_unique<WireServer>(server.get(), wire_options);
    CHECK(wire->Start().ok());
    servers_.push_back(std::move(server));
    wires_.push_back(std::move(wire));
  }

  void StartShards(int shards, int64_t num_basic_windows = 8) {
    length_ = num_basic_windows * kBasicWindow;
    Rng rng(5);
    data_ = std::make_shared<const TimeSeriesMatrix>(
        GenerateWhiteNoise(kNumSeries, length_, &rng));
    for (int s = 0; s < shards; ++s) {
      AddShard(data_);
    }
  }

  /// Router options whose connections are socketpairs into the in-process
  /// shard WireServers — the whole sharded path with no network stack.
  /// Killed shards (KillShard) refuse with Unavailable, like a host whose
  /// process is gone.
  ShardRouterOptions RouterOptions() {
    ShardRouterOptions options;
    options.shards.resize(wires_.size());  // endpoints unused: override
    options.connect_backoff_ms = 1;        // keep reconnect retries fast
    options.connect_override =
        [this](int shard) -> Result<std::unique_ptr<WireClient>> {
      if (IsDead(shard)) {
        return Status::Unavailable("shard ", shard, " is down (test kill)");
      }
      int fds[2];
      CHECK(socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0);
      CHECK(wires_[static_cast<size_t>(shard)]->AddConnection(fds[0]).ok());
      return WireClient::Adopt(fds[1]);
    };
    return options;
  }

  /// The in-process SIGKILL analog: the shard's WireServer stops (closing
  /// its in-flight connections mid-frame) and every later connect to it is
  /// refused.
  void KillShard(int shard) {
    {
      MutexLock lock(dead_mutex_);
      if (dead_.size() < wires_.size()) {
        dead_.resize(wires_.size(), false);
      }
      dead_[static_cast<size_t>(shard)] = true;
    }
    wires_[static_cast<size_t>(shard)]->Stop();
  }

  bool IsDead(int shard) {
    MutexLock lock(dead_mutex_);
    return static_cast<size_t>(shard) < dead_.size() &&
           dead_[static_cast<size_t>(shard)];
  }

  WireRequest TestRequest() const {
    WireRequest request;
    request.dataset = "d";
    request.query = TestQuery();
    return request;
  }

  static bool PollFor(const std::function<bool()>& predicate) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(2);
    while (std::chrono::steady_clock::now() < deadline) {
      if (predicate()) {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return predicate();
  }

  /// Drains a K-shard merge and the in-process reference stream side by
  /// side, comparing the encoded frame bytes of every window. `on_window`
  /// (optional) runs after each comparison — the failover tests use it to
  /// kill a shard at a known point mid-stream.
  void ExpectShardedMatchesInProcess(
      ShardMerge* merge,
      const std::function<void(int64_t)>& on_window = nullptr) {
    DangoronServer reference(ServerOptions());
    ASSERT_TRUE(reference.AddDataset("d", data_).ok());
    QueryRequest in_process;
    in_process.dataset = "d";
    in_process.query = TestQuery();
    auto ref_stream = reference.SubmitStreaming(in_process);

    int64_t windows = 0;
    while (true) {
      std::optional<StreamedWindow> merged = merge->Next();
      auto ref = ref_stream->Next();
      if (!merged.has_value()) {
        EXPECT_FALSE(ref.has_value());
        break;
      }
      ASSERT_TRUE(ref.has_value());
      std::string merged_bytes;
      std::string ref_bytes;
      EncodeWindowFrame(merged->window_index, *merged->edges, &merged_bytes);
      EncodeWindowFrame(ref->window_index, *ref->edges, &ref_bytes);
      ASSERT_EQ(merged_bytes.size(), ref_bytes.size())
          << "window " << ref->window_index;
      ASSERT_EQ(std::memcmp(merged_bytes.data(), ref_bytes.data(),
                            merged_bytes.size()),
                0)
          << "window " << ref->window_index
          << " differs between sharded and in-process delivery";
      if (on_window) {
        on_window(ref->window_index);
      }
      ++windows;
    }
    EXPECT_TRUE(ref_stream->status().ok());
    EXPECT_TRUE(merge->status().ok()) << merge->status().message();
    EXPECT_EQ(windows, ExpectedWindows());
    EXPECT_EQ(merge->summary().windows_delivered, windows);
  }

  int64_t length_ = 0;
  std::shared_ptr<const TimeSeriesMatrix> data_;
  std::vector<std::unique_ptr<DangoronServer>> servers_;
  std::vector<std::unique_ptr<WireServer>> wires_;  // after servers_: stops
                                                    // before they die
  Mutex dead_mutex_;
  std::vector<bool> dead_ GUARDED_BY(dead_mutex_);
};

TEST_F(RouterE2ETest, TwoShardsAreByteIdenticalToInProcess) {
  StartShards(2);
  ShardRouter router(RouterOptions());
  auto merge = router.Submit(TestRequest(), NumPairs());
  ASSERT_TRUE(merge.ok()) << merge.status().message();
  ExpectShardedMatchesInProcess(merge->get());
  for (const auto& wire : wires_) {
    EXPECT_EQ(wire->stats().requests, 1);  // every shard saw the fan-out
  }
  for (const auto& server : servers_) {
    EXPECT_EQ(server->stats().inflight_window_claims, 0);
  }
}

TEST_F(RouterE2ETest, FourShardsAreByteIdenticalToInProcess) {
  StartShards(4);
  ShardRouter router(RouterOptions());
  auto merge = router.Submit(TestRequest(), NumPairs());
  ASSERT_TRUE(merge.ok()) << merge.status().message();
  ExpectShardedMatchesInProcess(merge->get());
  for (const auto& wire : wires_) {
    EXPECT_EQ(wire->stats().requests, 1);
  }
}

TEST_F(RouterE2ETest, FingerprintDriftOnOneShardFailsTheQuery) {
  StartShards(1);
  // Shard 1's replica drifted: same name, different content.
  Rng rng(99);
  AddShard(std::make_shared<const TimeSeriesMatrix>(
      GenerateWhiteNoise(kNumSeries, length_, &rng)));

  ShardRouter router(RouterOptions());
  WireRequest request = TestRequest();
  request.expected_fingerprint = data_->ContentFingerprint();
  auto merge = router.Submit(request, NumPairs());
  ASSERT_TRUE(merge.ok()) << merge.status().message();
  while ((*merge)->Next().has_value()) {
  }
  EXPECT_EQ((*merge)->status().code(), StatusCode::kFailedPrecondition)
      << (*merge)->status().message();
  // The failure prefix names the shard's endpoint, not just its index.
  EXPECT_NE((*merge)->status().message().find("shard 1 ("),
            std::string::npos)
      << (*merge)->status().message();
  for (const auto& server : servers_) {
    EXPECT_TRUE(PollFor(
        [&] { return server->stats().inflight_window_claims == 0; }));
  }
}

TEST_F(RouterE2ETest, CancelMidStreamReleasesAllShardsWithNoLeakedClaims) {
  StartShards(2, /*num_basic_windows=*/64);  // 61 windows: genuinely mid-
                                             // stream when the cancel lands
  ShardRouter router(RouterOptions());
  WireRequest request = TestRequest();
  request.options.queue_capacity = 2;  // tight downstream queue
  // Near-dense edge sets: the undelivered remainder is megabytes per
  // shard, far past what the stream queue plus socket buffers can absorb,
  // so no producer can slip to a clean Ok finish before the cancel frame
  // reaches it.
  request.query.threshold = 0.01;
  auto merge = router.Submit(request, NumPairs());
  ASSERT_TRUE(merge.ok()) << merge.status().message();

  std::optional<StreamedWindow> first = (*merge)->Next();
  ASSERT_TRUE(first.has_value());
  (*merge)->Cancel();
  while ((*merge)->Next().has_value()) {
  }
  EXPECT_EQ((*merge)->status().code(), StatusCode::kCancelled);

  // Every shard's producer unwinds with zero leaked window claims, and the
  // shards still serve: a fresh sharded query completes in full.
  for (const auto& server : servers_) {
    EXPECT_TRUE(PollFor(
        [&] { return server->stats().inflight_window_claims == 0; }))
        << "a shard leaked window claims after the fanned-out cancel";
    EXPECT_TRUE(
        PollFor([&] { return server->stats().streams_cancelled >= 1; }));
  }
  auto rerun = router.Submit(TestRequest(), NumPairs());
  ASSERT_TRUE(rerun.ok());
  int64_t windows = 0;
  while ((*rerun)->Next().has_value()) {
    ++windows;
  }
  EXPECT_TRUE((*rerun)->status().ok()) << (*rerun)->status().message();
  EXPECT_EQ(windows, ExpectedWindows());
}

TEST_F(RouterE2ETest, TryPushSkewFailpointStillMergesByteIdentically) {
  if (!kFailpointsCompiled) {
    GTEST_SKIP() << "failpoints compiled out (DANGORON_FAILPOINTS=OFF)";
  }
  StartShards(2);
  ShardRouter router(RouterOptions());
  auto merge = router.Submit(TestRequest(), NumPairs());
  ASSERT_TRUE(merge.ok()) << merge.status().message();

  // Adversarial skew on the real delivery path: every shard's TryPush
  // spuriously fails 40% of the time (process-global site), kicking the
  // producers onto their slow claim-safe fallback at uncorrelated moments.
  // The merged stream must not show it: same bytes, same order.
  struct DisarmOnExit {
    ~DisarmOnExit() { FailpointRegistry::Instance().DisarmAll(); }
  } disarm_on_exit;
  ASSERT_TRUE(FailpointRegistry::Instance()
                  .Configure("stream.try_push=wake%40")
                  .ok());
  ExpectShardedMatchesInProcess(merge->get());
}

// ---------------------------------------------------------- E2E failover --

TEST_F(RouterE2ETest, KilledShardMidStreamFailsOverByteIdentical) {
  // 61 windows and a skew bound of 8: when the kill lands at window 2, the
  // dying shard has delivered at most ~10 windows — the failover genuinely
  // resumes mid-query, and the merged bytes must not show it.
  StartShards(3, /*num_basic_windows=*/64);
  ShardRouter router(RouterOptions());
  auto merge = router.Submit(TestRequest(), NumPairs());
  ASSERT_TRUE(merge.ok()) << merge.status().message();

  std::atomic<bool> killed{false};
  ExpectShardedMatchesInProcess(merge->get(), [&](int64_t window) {
    if (window == 2 && !killed.exchange(true)) {
      KillShard(1);  // reconnects refuse: the range splits over survivors
    }
  });
  EXPECT_TRUE(killed.load());
  EXPECT_GE((*merge)->failovers(), 1);

  // Nobody leaked a window claim: not the dead shard (its server cancelled
  // the stream when the connection died), not the survivors that absorbed
  // its range.
  for (const auto& server : servers_) {
    EXPECT_TRUE(PollFor(
        [&] { return server->stats().inflight_window_claims == 0; }))
        << "a shard leaked window claims across the failover";
  }
}

TEST_F(RouterE2ETest, KilledShardWithFailoverDisabledFailsPrefixed) {
  StartShards(3, /*num_basic_windows=*/64);
  ShardRouterOptions options = RouterOptions();
  options.max_failovers = 0;  // the PR 8 behavior: first death is fatal
  ShardRouter router(options);
  WireRequest request = TestRequest();
  request.options.queue_capacity = 2;
  auto merge = router.Submit(request, NumPairs());
  ASSERT_TRUE(merge.ok()) << merge.status().message();

  ASSERT_TRUE((*merge)->Next().has_value());
  KillShard(1);
  while ((*merge)->Next().has_value()) {
  }
  const Status status = (*merge)->status();
  EXPECT_FALSE(status.ok());
  // How the kill surfaces depends on where the read was when the socket
  // died: mid-frame EOF (DataLoss), recv error (IoError), or a stalled
  // read timing out (Unavailable). All are transport deaths.
  EXPECT_TRUE(status.code() == StatusCode::kIoError ||
              status.code() == StatusCode::kUnavailable ||
              status.code() == StatusCode::kDataLoss)
      << status.ToString();
  EXPECT_NE(status.message().find("shard 1 ("), std::string::npos)
      << status.message();
  EXPECT_EQ((*merge)->failovers(), 0);

  for (const auto& server : servers_) {
    EXPECT_TRUE(PollFor(
        [&] { return server->stats().inflight_window_claims == 0; }))
        << "a shard leaked window claims after the fatal shard death";
  }
}

TEST_F(RouterE2ETest, StreamReadFailpointFailsOverAndStaysByteIdentical) {
  if (!kFailpointsCompiled) {
    GTEST_SKIP() << "failpoints compiled out (DANGORON_FAILPOINTS=OFF)";
  }
  // 29 windows with a tight merged queue: the readers stall at the skew
  // bound until the drain below starts, so the one-shot fault always lands
  // while the stream is genuinely in flight.
  StartShards(2, /*num_basic_windows=*/32);
  ShardRouter router(RouterOptions());
  struct DisarmOnExit {
    ~DisarmOnExit() { FailpointRegistry::Instance().DisarmAll(); }
  } disarm_on_exit;
  WireRequest request = TestRequest();
  request.options.queue_capacity = 2;
  auto merge = router.Submit(request, NumPairs());
  ASSERT_TRUE(merge.ok()) << merge.status().message();

  // Exactly one stream read is poisoned with the shard-died code; the
  // backend is healthy, so the failover's reconnect leg resumes the same
  // shard from the first undelivered window.
  ASSERT_TRUE(FailpointRegistry::Instance()
                  .Configure("router.stream_read=error:unavailable*1")
                  .ok());
  ExpectShardedMatchesInProcess(merge->get());
  EXPECT_EQ((*merge)->failovers(), 1);
  for (const auto& server : servers_) {
    EXPECT_TRUE(PollFor(
        [&] { return server->stats().inflight_window_claims == 0; }));
  }
}

TEST_F(RouterE2ETest, BreakerTripsAndSkipsTheDeadShardAtPlanTime) {
  StartShards(3);
  ShardRouterOptions options = RouterOptions();
  std::atomic<int> shard1_connects{0};
  const auto inner = options.connect_override;
  options.connect_override =
      [&shard1_connects,
       inner](int shard) -> Result<std::unique_ptr<WireClient>> {
    if (shard == 1) {
      ++shard1_connects;
    }
    return inner(shard);
  };
  ShardRouter router(options);
  KillShard(1);

  // Each failed plan drops the dead shard, re-plans over the survivors,
  // and still answers — byte-identical to the unsharded run.
  auto merge = router.Submit(TestRequest(), NumPairs());
  ASSERT_TRUE(merge.ok()) << merge.status().message();
  ExpectShardedMatchesInProcess(merge->get());
  EXPECT_EQ(router.health(1), ShardHealth::kSuspect);

  auto again = router.Submit(TestRequest(), NumPairs());
  ASSERT_TRUE(again.ok());
  int64_t windows = 0;
  while ((*again)->Next().has_value()) {
    ++windows;
  }
  EXPECT_TRUE((*again)->status().ok()) << (*again)->status().message();
  EXPECT_EQ(windows, ExpectedWindows());
  // Two consecutive failures: the breaker opens.
  EXPECT_EQ(router.health(1), ShardHealth::kDown);

  // With the circuit open, planning skips the shard without paying its
  // connect timeout: not a single connect attempt reaches it.
  const int connects_before = shard1_connects.load();
  auto skipped = router.Submit(TestRequest(), NumPairs());
  ASSERT_TRUE(skipped.ok());
  while ((*skipped)->Next().has_value()) {
  }
  EXPECT_TRUE((*skipped)->status().ok());
  EXPECT_EQ(shard1_connects.load(), connects_before);

  // The supervisor's respawn-ready signal closes the circuit immediately.
  router.MarkShardUp(1);
  EXPECT_EQ(router.health(1), ShardHealth::kHealthy);
}

TEST(ShardRouterHealthTest, MarkShardUpBoundsCheckIsSafeUnderConcurrency) {
  // Regression: MarkShardUp used to read health_.size() before taking the
  // health lock — flagged the moment the field was GUARDED_BY-annotated.
  // The contract under test: out-of-range signals (a supervisor racing a
  // reconfiguration) are safe no-ops, in-range signals heal the shard, and
  // concurrent callers never race the health machine (TSan covers this
  // test in CI).
  ShardRouterOptions options;
  options.shards.resize(2);
  ShardRouter router(options);

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&router, t] {
      for (int i = 0; i < 500; ++i) {
        router.MarkShardUp(t % 2);
        router.MarkShardUp(-1);                // below range: no-op
        router.MarkShardUp(2 + (i % 7));       // above range: no-op
        (void)router.health(t % 2);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(router.health(0), ShardHealth::kHealthy);
  EXPECT_EQ(router.health(1), ShardHealth::kHealthy);
}

TEST_F(RouterE2ETest, ReconnectAfterAnAbandonedStreamStartsClean) {
  // Real TCP this time: the reconnect semantics under test are exactly
  // what the router's failover leans on — a fresh ConnectTcp after a
  // mid-stream abandon must carry no FrameReader state from the old
  // connection.
  StartShards(1);
  WireServerOptions tcp_options;
  tcp_options.port = 0;  // ephemeral
  WireServer tcp(servers_[0].get(), tcp_options);
  ASSERT_TRUE(tcp.Start().ok());
  const int port = tcp.port();
  WireClientOptions client_options;
  client_options.connect_timeout_ms = 1000;
  client_options.read_timeout_ms = 5000;

  {
    auto abandoned =
        WireClient::ConnectTcp("127.0.0.1", port, client_options);
    ASSERT_TRUE(abandoned.ok()) << abandoned.status().ToString();
    WireRequest request = TestRequest();
    request.options.queue_capacity = 1;
    ASSERT_TRUE((*abandoned)->Submit(request).ok());
    auto first = (*abandoned)->Next();
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(first->has_value());
  }  // dropped mid-stream: frames half-read on the wire die with the fd

  auto fresh = WireClient::ConnectTcp("127.0.0.1", port, client_options);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  ASSERT_TRUE((*fresh)->Submit(TestRequest()).ok());
  int64_t windows = 0;
  while (true) {
    auto window = (*fresh)->Next();
    ASSERT_TRUE(window.ok()) << window.status().ToString();
    if (!window->has_value()) {
      break;
    }
    EXPECT_EQ((*window)->window_index, windows);
    ++windows;
  }
  EXPECT_TRUE((*fresh)->result_status().ok())
      << (*fresh)->result_status().message();
  EXPECT_EQ(windows, ExpectedWindows());
  tcp.Stop();
}

// ----------------------------------------------------------- RouterServer --

TEST_F(RouterE2ETest, RouterServerSpeaksTheWireProtocolTransparently) {
  StartShards(2);
  ShardRouter router(RouterOptions());
  RouterServerOptions options;
  options.port = -1;
  RouterServer front(&router, options);
  front.RegisterDataset("d", kNumSeries, data_->ContentFingerprint());
  ASSERT_TRUE(front.Start().ok());

  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_TRUE(front.AddConnection(fds[0]).ok());
  auto client = WireClient::Adopt(fds[1]);

  // A wire client cannot tell the router from a single shard: same
  // protocol, byte-identical windows.
  ASSERT_TRUE(client->Submit(TestRequest()).ok());
  DangoronServer reference(ServerOptions());
  ASSERT_TRUE(reference.AddDataset("d", data_).ok());
  QueryRequest in_process;
  in_process.dataset = "d";
  in_process.query = TestQuery();
  auto ref_stream = reference.SubmitStreaming(in_process);
  int64_t windows = 0;
  while (true) {
    auto from_router = client->Next();
    ASSERT_TRUE(from_router.ok()) << from_router.status().message();
    auto from_ref = ref_stream->Next();
    if (!from_router->has_value()) {
      EXPECT_FALSE(from_ref.has_value());
      break;
    }
    ASSERT_TRUE(from_ref.has_value());
    std::string router_bytes;
    std::string ref_bytes;
    EncodeWindowFrame((*from_router)->window_index,
                      *(*from_router)->edges, &router_bytes);
    EncodeWindowFrame(from_ref->window_index, *from_ref->edges, &ref_bytes);
    ASSERT_EQ(router_bytes, ref_bytes)
        << "window " << from_ref->window_index;
    ++windows;
  }
  EXPECT_TRUE(client->result_status().ok())
      << client->result_status().message();
  EXPECT_EQ(windows, ExpectedWindows());
  EXPECT_EQ(client->summary().windows_delivered, windows);

  // Unknown dataset: NotFound, and the connection stays usable.
  WireRequest unknown = TestRequest();
  unknown.dataset = "nope";
  ASSERT_TRUE(client->Submit(unknown).ok());
  auto window = client->Next();
  ASSERT_TRUE(window.ok());
  EXPECT_FALSE(window->has_value());
  EXPECT_EQ(client->result_status().code(), StatusCode::kNotFound);

  ASSERT_TRUE(client->Submit(TestRequest()).ok());
  int64_t rerun_windows = 0;
  while (true) {
    auto rerun = client->Next();
    ASSERT_TRUE(rerun.ok());
    if (!rerun->has_value()) {
      break;
    }
    ++rerun_windows;
  }
  EXPECT_TRUE(client->result_status().ok());
  EXPECT_EQ(rerun_windows, ExpectedWindows());

  front.Stop();
  const RouterServerStats stats = front.stats();
  EXPECT_EQ(stats.connections_adopted, 1);
  EXPECT_EQ(stats.requests, 3);
  EXPECT_EQ(stats.protocol_errors, 0);
}

TEST_F(RouterE2ETest, RouterServerPinsTheRegisteredFingerprint) {
  StartShards(1);
  Rng rng(99);
  AddShard(std::make_shared<const TimeSeriesMatrix>(
      GenerateWhiteNoise(kNumSeries, length_, &rng)));  // drifted replica

  ShardRouter router(RouterOptions());
  RouterServerOptions options;
  options.port = -1;
  RouterServer front(&router, options);
  front.RegisterDataset("d", kNumSeries, data_->ContentFingerprint());
  ASSERT_TRUE(front.Start().ok());
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_TRUE(front.AddConnection(fds[0]).ok());
  auto client = WireClient::Adopt(fds[1]);

  // The client pins nothing; the router stamps the registered fingerprint
  // onto every shard request, so the drifted shard still fails the query.
  ASSERT_TRUE(client->Submit(TestRequest()).ok());
  while (true) {
    auto window = client->Next();
    ASSERT_TRUE(window.ok());
    if (!window->has_value()) {
      break;
    }
  }
  EXPECT_EQ(client->result_status().code(), StatusCode::kFailedPrecondition)
      << client->result_status().message();
  front.Stop();
}

TEST_F(RouterE2ETest, RouterServerDisconnectCancelsEveryShard) {
  StartShards(2, /*num_basic_windows=*/64);
  ShardRouter router(RouterOptions());
  RouterServerOptions options;
  options.port = -1;
  RouterServer front(&router, options);
  front.RegisterDataset("d", kNumSeries, data_->ContentFingerprint());
  ASSERT_TRUE(front.Start().ok());

  {
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    ASSERT_TRUE(front.AddConnection(fds[0]).ok());
    auto client = WireClient::Adopt(fds[1]);
    WireRequest request = TestRequest();
    request.options.queue_capacity = 2;
    ASSERT_TRUE(client->Submit(request).ok());
    auto window = client->Next();
    ASSERT_TRUE(window.ok());
    ASSERT_TRUE(window->has_value());
  }  // the client vanishes mid-stream (destructor closes the socket)

  EXPECT_TRUE(PollFor([&] { return front.stats().disconnect_cancels >= 1; }))
      << "the router never mapped the disconnect to a cancel";
  for (const auto& server : servers_) {
    EXPECT_TRUE(PollFor(
        [&] { return server->stats().inflight_window_claims == 0; }))
        << "a shard leaked window claims after the client disconnect";
  }
  front.Stop();
}

}  // namespace
}  // namespace dangoron
