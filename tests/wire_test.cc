// Wire format tests: varint/fixed64 primitives, frame round-trips (property
// style over randomized inputs), rejection of truncated/corrupt/oversized
// bytes, incremental FrameReader behavior — and golden byte fixtures that
// pin the exact encoding docs/WIRE_PROTOCOL.md specifies. If a golden test
// fails, either the code or the spec regressed: fix the mismatch, and if
// the change is intentional, bump kWireVersion and update the spec.

#include "wire/wire_format.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstring>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"

namespace dangoron {
namespace {

std::span<const uint8_t> Bytes(const std::string& s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

// ----------------------------------------------------------- primitives --

TEST(WireVarintTest, RoundTripEdgeCasesAndRandom) {
  std::vector<uint64_t> values = {0,
                                  1,
                                  127,
                                  128,
                                  16383,
                                  16384,
                                  (uint64_t{1} << 32) - 1,
                                  uint64_t{1} << 32,
                                  std::numeric_limits<uint64_t>::max()};
  Rng rng(1);
  for (int v = 0; v < 200; ++v) {
    values.push_back(rng.NextU64() >> (v % 64));
  }
  for (const uint64_t value : values) {
    std::string buffer;
    PutVarint(value, &buffer);
    EXPECT_LE(buffer.size(), 10u);
    size_t pos = 0;
    uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint(Bytes(buffer), &pos, &decoded));
    EXPECT_EQ(decoded, value);
    EXPECT_EQ(pos, buffer.size());
  }
}

TEST(WireVarintTest, RejectsTruncationAndOverlength) {
  std::string buffer;
  PutVarint(std::numeric_limits<uint64_t>::max(), &buffer);
  for (size_t cut = 0; cut < buffer.size(); ++cut) {
    size_t pos = 0;
    uint64_t decoded = 0;
    EXPECT_FALSE(
        GetVarint(Bytes(buffer.substr(0, cut)), &pos, &decoded));
  }
  // Eleven continuation bytes: malformed no matter what follows.
  std::string overlong(11, static_cast<char>(0x80));
  size_t pos = 0;
  uint64_t decoded = 0;
  EXPECT_FALSE(GetVarint(Bytes(overlong), &pos, &decoded));
  // A 10th byte carrying more than the top bit overflows 64 bits.
  std::string overflow(9, static_cast<char>(0x80));
  overflow.push_back(0x02);
  pos = 0;
  EXPECT_FALSE(GetVarint(Bytes(overflow), &pos, &decoded));
}

TEST(WireFixed64Test, RoundTripIncludingNaNPayloads) {
  const double values[] = {0.0,
                           -0.0,
                           1.0,
                           -0.5,
                           std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN(),
                           std::bit_cast<double>(uint64_t{0x7ff80000deadbeef}),
                           std::numeric_limits<double>::denorm_min()};
  for (const double value : values) {
    std::string buffer;
    PutFixed64(std::bit_cast<uint64_t>(value), &buffer);
    ASSERT_EQ(buffer.size(), 8u);
    size_t pos = 0;
    uint64_t bits = 0;
    ASSERT_TRUE(GetFixed64(Bytes(buffer), &pos, &bits));
    // Bit equality, not value equality: NaN payloads must survive.
    EXPECT_EQ(bits, std::bit_cast<uint64_t>(value));
  }
  size_t pos = 0;
  uint64_t bits = 0;
  std::string short_buffer(7, '\0');
  EXPECT_FALSE(GetFixed64(Bytes(short_buffer), &pos, &bits));
}

// -------------------------------------------------------- request frames --

WireRequest FullRequest() {
  WireRequest request;
  request.dataset = "climate/europe";
  request.expected_fingerprint = 0x123456789abcdef0;
  request.query.start = 24;
  request.query.end = 24 * 90;
  request.query.window = 24 * 30;
  request.query.step = 24;
  request.query.threshold = 0.85;
  request.query.absolute = true;
  request.options.tier = ServeTier::kAuto;
  request.options.deadline_ms = 250;
  request.options.admission = AdmissionPolicy::kQueue;
  request.options.degrade = DegradePolicy::kAuto;
  request.options.queue_capacity = 16;
  request.options.max_batch_windows = 2;
  return request;
}

void ExpectRequestsEqual(const WireRequest& a, const WireRequest& b) {
  EXPECT_EQ(a.dataset, b.dataset);
  EXPECT_EQ(a.expected_fingerprint, b.expected_fingerprint);
  EXPECT_EQ(a.query.start, b.query.start);
  EXPECT_EQ(a.query.end, b.query.end);
  EXPECT_EQ(a.query.window, b.query.window);
  EXPECT_EQ(a.query.step, b.query.step);
  EXPECT_EQ(std::bit_cast<uint64_t>(a.query.threshold),
            std::bit_cast<uint64_t>(b.query.threshold));
  EXPECT_EQ(a.query.absolute, b.query.absolute);
  EXPECT_EQ(a.options.tier, b.options.tier);
  EXPECT_EQ(a.options.deadline_ms, b.options.deadline_ms);
  EXPECT_EQ(a.options.admission, b.options.admission);
  EXPECT_EQ(a.options.degrade, b.options.degrade);
  EXPECT_EQ(a.options.queue_capacity, b.options.queue_capacity);
  EXPECT_EQ(a.options.max_batch_windows, b.options.max_batch_windows);
}

TEST(WireRequestTest, RoundTripAllOptionsSet) {
  const WireRequest request = FullRequest();
  std::string frame;
  EncodeRequestFrame(request, &frame);
  ASSERT_GT(frame.size(), static_cast<size_t>(kFrameHeaderBytes));
  EXPECT_EQ(frame[0], static_cast<char>(FrameType::kRequest));
  WireRequest decoded;
  ASSERT_TRUE(DecodeRequestPayload(
                  Bytes(frame).subspan(kFrameHeaderBytes), &decoded)
                  .ok());
  ExpectRequestsEqual(request, decoded);
}

TEST(WireRequestTest, RoundTripDefaults) {
  WireRequest request;
  request.dataset = "d";
  request.query.window = 24;
  request.query.step = 24;
  request.query.end = 48;
  request.query.threshold = 0.5;
  std::string frame;
  EncodeRequestFrame(request, &frame);
  WireRequest decoded;
  ASSERT_TRUE(DecodeRequestPayload(
                  Bytes(frame).subspan(kFrameHeaderBytes), &decoded)
                  .ok());
  ExpectRequestsEqual(request, decoded);
  EXPECT_FALSE(decoded.options.tier.has_value());
  EXPECT_FALSE(decoded.options.deadline_ms.has_value());
}

TEST(WireRequestTest, RejectsTruncationAtEveryByte) {
  std::string frame;
  EncodeRequestFrame(FullRequest(), &frame);
  const auto payload = Bytes(frame).subspan(kFrameHeaderBytes);
  WireRequest decoded;
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(
        DecodeRequestPayload(payload.subspan(0, cut), &decoded).ok())
        << "accepted a request truncated to " << cut << " bytes";
  }
}

TEST(WireRequestTest, RejectsHostileDatasetLength) {
  // A dataset length near 2^64 once made `pos + name_len` wrap, pass the
  // bounds check, and throw std::length_error out of the decoder — a
  // remote crash of the IO thread. It must come back as a plain error.
  for (const uint64_t hostile :
       {std::numeric_limits<uint64_t>::max(),
        std::numeric_limits<uint64_t>::max() - 9,
        uint64_t{1} << 63}) {
    std::string payload;
    PutVarint(hostile, &payload);
    payload.append(40, 'x');
    WireRequest decoded;
    EXPECT_FALSE(DecodeRequestPayload(Bytes(payload), &decoded).ok())
        << "accepted dataset length " << hostile;
  }
}

TEST(WireRequestTest, RejectsTrailingBytesAndBadEnums) {
  std::string frame;
  EncodeRequestFrame(FullRequest(), &frame);
  std::string with_tail = frame + '\0';
  WireRequest decoded;
  EXPECT_FALSE(DecodeRequestPayload(
                   Bytes(with_tail).subspan(kFrameHeaderBytes), &decoded)
                   .ok());

  // Corrupt the tier byte. Its offset is fixed from the end for this
  // request: the tail is tier(1) deadline varint(2, since zigzag(250)=500)
  // admission(1) degrade(1) qcap(1) batch(1), so tier sits 7 from the end.
  std::string corrupt = frame;
  corrupt[corrupt.size() - 7] = 3;  // the tier byte: only 0/1/2 are valid
  EXPECT_FALSE(DecodeRequestPayload(
                   Bytes(corrupt).subspan(kFrameHeaderBytes), &decoded)
                   .ok());
}

// --------------------------------------------------------- window frames --

TEST(WireWindowTest, RoundTripRandomEdgeSets) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 2 + static_cast<int>(rng.NextU64() % 40);
    std::vector<Edge> edges;
    for (int32_t i = 0; i < n; ++i) {
      for (int32_t j = i + 1; j < n; ++j) {
        if (rng.NextU64() % 3 == 0) {
          Edge edge;
          edge.i = i;
          edge.j = j;
          edge.value = rng.NextGaussian();
          if (rng.NextU64() % 16 == 0) {
            edge.value = std::numeric_limits<double>::quiet_NaN();
          }
          edges.push_back(edge);
        }
      }
    }
    const int64_t index = static_cast<int64_t>(rng.NextU64() % 100000);
    std::string frame;
    EncodeWindowFrame(index, edges, &frame);
    int64_t decoded_index = -1;
    std::vector<Edge> decoded;
    ASSERT_TRUE(DecodeWindowPayload(Bytes(frame).subspan(kFrameHeaderBytes),
                                    &decoded_index, &decoded)
                    .ok());
    EXPECT_EQ(decoded_index, index);
    ASSERT_EQ(decoded.size(), edges.size());
    for (size_t e = 0; e < edges.size(); ++e) {
      EXPECT_EQ(decoded[e].i, edges[e].i);
      EXPECT_EQ(decoded[e].j, edges[e].j);
      EXPECT_EQ(std::bit_cast<uint64_t>(decoded[e].value),
                std::bit_cast<uint64_t>(edges[e].value));
    }
  }
}

TEST(WireWindowTest, RoundTripEmptyWindow) {
  std::string frame;
  EncodeWindowFrame(42, {}, &frame);
  int64_t index = -1;
  std::vector<Edge> decoded;
  ASSERT_TRUE(DecodeWindowPayload(Bytes(frame).subspan(kFrameHeaderBytes),
                                  &index, &decoded)
                  .ok());
  EXPECT_EQ(index, 42);
  EXPECT_TRUE(decoded.empty());
}

TEST(WireWindowTest, RejectsImpossibleEdgeCount) {
  // A count announcing far more edges than the payload could hold must be
  // rejected before any allocation happens.
  std::string payload;
  PutVarint(0, &payload);                    // window index
  PutVarint(uint64_t{1} << 40, &payload);    // absurd edge count
  int64_t index = 0;
  std::vector<Edge> decoded;
  EXPECT_FALSE(DecodeWindowPayload(Bytes(payload), &index, &decoded).ok());

  // The plausibility bound tracks the true >= 10 bytes/edge minimum: a
  // count the payload could hold at 5 bytes/edge but not at 10 must be
  // rejected up front (from the count, not later from a truncated edge).
  std::string loose;
  PutVarint(0, &loose);
  PutVarint(20, &loose);  // claims 20 edges in a ~100-byte payload
  loose.append(100, '\0');
  Status status = DecodeWindowPayload(Bytes(loose), &index, &decoded);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("impossible"), std::string::npos)
      << status.message();
}

TEST(WireWindowTest, RejectsOrderingViolations) {
  int64_t index = 0;
  std::vector<Edge> decoded;

  // di == 0 && second == 0 would repeat the previous edge.
  std::string repeat;
  PutVarint(0, &repeat);  // index
  PutVarint(2, &repeat);  // two edges
  PutVarint(1, &repeat);  // di=1 -> i=1
  PutVarint(2, &repeat);  // j=2
  PutFixed64(std::bit_cast<uint64_t>(0.5), &repeat);
  PutVarint(0, &repeat);  // di=0
  PutVarint(0, &repeat);  // dj=0: duplicate (1,2)
  PutFixed64(std::bit_cast<uint64_t>(0.5), &repeat);
  EXPECT_FALSE(DecodeWindowPayload(Bytes(repeat), &index, &decoded).ok());

  // j <= i violates the upper-triangle canonical form.
  std::string diagonal;
  PutVarint(0, &diagonal);
  PutVarint(1, &diagonal);
  PutVarint(3, &diagonal);  // di=3 -> i=3
  PutVarint(3, &diagonal);  // j=3 == i
  PutFixed64(std::bit_cast<uint64_t>(0.5), &diagonal);
  EXPECT_FALSE(DecodeWindowPayload(Bytes(diagonal), &index, &decoded).ok());

  // A delta past the int32 index range must not wrap.
  std::string huge;
  PutVarint(0, &huge);
  PutVarint(1, &huge);
  PutVarint(uint64_t{1} << 40, &huge);  // di astronomically large
  PutVarint(1, &huge);
  PutFixed64(std::bit_cast<uint64_t>(0.5), &huge);
  EXPECT_FALSE(DecodeWindowPayload(Bytes(huge), &index, &decoded).ok());
}

TEST(WireWindowTest, RejectsTruncatedEdges) {
  std::vector<Edge> edges(3);
  edges[0] = {0, 1, 0.5};
  edges[1] = {0, 2, -0.5};
  edges[2] = {1, 2, 0.25};
  std::string frame;
  EncodeWindowFrame(7, edges, &frame);
  const auto payload = Bytes(frame).subspan(kFrameHeaderBytes);
  int64_t index = 0;
  std::vector<Edge> decoded;
  for (size_t cut = 2; cut < payload.size(); ++cut) {
    EXPECT_FALSE(
        DecodeWindowPayload(payload.subspan(0, cut), &index, &decoded).ok())
        << "accepted a window truncated to " << cut << " bytes";
  }
}

// --------------------------------------------------------- status frames --

TEST(WireStatusTest, RoundTripEveryCode) {
  WireSummary summary;
  summary.tier_used = ServeTier::kApprox;
  summary.prepared_from_cache = true;
  summary.degraded = true;
  summary.windows_delivered = 61;
  summary.windows_from_cache = 11;
  summary.windows_computed = 50;
  summary.windows_joined = 3;
  summary.cells_jumped = 12345;
  summary.jumps = 77;
  for (int code = 0; code <= 12; ++code) {
    const Status status(static_cast<StatusCode>(code),
                        code == 0 ? "" : "something happened");
    std::string frame;
    EncodeStatusFrame(status, summary, &frame);
    EXPECT_EQ(frame[0], static_cast<char>(FrameType::kStatus));
    Status decoded_status;
    WireSummary decoded;
    ASSERT_TRUE(DecodeStatusPayload(Bytes(frame).subspan(kFrameHeaderBytes),
                                    &decoded_status, &decoded)
                    .ok());
    EXPECT_EQ(decoded_status.code(), status.code());
    EXPECT_EQ(decoded_status.message(), status.message());
    EXPECT_EQ(decoded.tier_used, summary.tier_used);
    EXPECT_EQ(decoded.prepared_from_cache, summary.prepared_from_cache);
    EXPECT_EQ(decoded.degraded, summary.degraded);
    EXPECT_EQ(decoded.windows_delivered, summary.windows_delivered);
    EXPECT_EQ(decoded.windows_from_cache, summary.windows_from_cache);
    EXPECT_EQ(decoded.windows_computed, summary.windows_computed);
    EXPECT_EQ(decoded.windows_joined, summary.windows_joined);
    EXPECT_EQ(decoded.cells_jumped, summary.cells_jumped);
    EXPECT_EQ(decoded.jumps, summary.jumps);
  }
}

TEST(WireStatusTest, RejectsHostileMessageLength) {
  // Client-side twin of RejectsHostileDatasetLength: a malicious server
  // must not be able to crash a WireClient with a wrapping message length.
  for (const uint64_t hostile :
       {std::numeric_limits<uint64_t>::max(),
        std::numeric_limits<uint64_t>::max() - 9}) {
    std::string payload;
    PutVarint(0, &payload);        // code kOk
    PutVarint(hostile, &payload);  // message length
    payload.append(20, 'x');
    Status status;
    WireSummary summary;
    EXPECT_FALSE(DecodeStatusPayload(Bytes(payload), &status, &summary).ok())
        << "accepted message length " << hostile;
  }
}

TEST(WireStatusTest, RejectsUnknownCodeTierAndFlags) {
  std::string frame;
  EncodeStatusFrame(Status::Ok(), WireSummary{}, &frame);
  Status status;
  WireSummary summary;

  std::string bad_code = frame;
  bad_code[kFrameHeaderBytes] = 14;  // one past kUnavailable
  EXPECT_FALSE(DecodeStatusPayload(
                   Bytes(bad_code).subspan(kFrameHeaderBytes), &status,
                   &summary)
                   .ok());

  std::string bad_tier = frame;
  bad_tier[kFrameHeaderBytes + 2] = 2;  // kAuto never terminal
  EXPECT_FALSE(DecodeStatusPayload(
                   Bytes(bad_tier).subspan(kFrameHeaderBytes), &status,
                   &summary)
                   .ok());

  std::string bad_flags = frame;
  bad_flags[kFrameHeaderBytes + 3] = 4;  // only bits 0-1 defined
  EXPECT_FALSE(DecodeStatusPayload(
                   Bytes(bad_flags).subspan(kFrameHeaderBytes), &status,
                   &summary)
                   .ok());
}

// ------------------------------------------------------- golden fixtures --

// These pin the bytes docs/WIRE_PROTOCOL.md writes out longhand. They are
// the compatibility contract: a failure here is a wire format change.

TEST(WireGoldenTest, Preamble) {
  std::string preamble;
  AppendPreamble(&preamble);
  const uint8_t expected[] = {'D', 'G', 'R', 'N', 0x01};
  ASSERT_EQ(preamble.size(), sizeof(expected));
  EXPECT_EQ(std::memcmp(preamble.data(), expected, sizeof(expected)), 0);
  EXPECT_TRUE(CheckPreamble(Bytes(preamble)).ok());
  EXPECT_FALSE(CheckPreamble(Bytes(std::string("DGRM\x01"))).ok());
  EXPECT_FALSE(CheckPreamble(Bytes(std::string("DGRN\x02"))).ok());
}

TEST(WireGoldenTest, RequestFrame) {
  // dataset "d", no fingerprint, query [0, 48) window 24 step 24 at
  // threshold 0.5 signed, no per-request options, default stream knobs
  // (queue 8, batch 4).
  WireRequest request;
  request.dataset = "d";
  request.query.end = 48;
  request.query.window = 24;
  request.query.step = 24;
  request.query.threshold = 0.5;
  std::string frame;
  EncodeRequestFrame(request, &frame);
  const uint8_t expected[] = {
      0x01, 0x13, 0x00, 0x00, 0x00,              // header: kRequest, 19 bytes
      0x01, 'd',                                 // dataset
      0x00,                                      // fingerprint 0
      0x00,                                      // start zigzag(0)
      0x60,                                      // end zigzag(48) = 96
      0x30,                                      // window zigzag(24) = 48
      0x30,                                      // step zigzag(24) = 48
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xe0, 0x3f,  // 0.5 bits LE
      0x00,                                      // absolute = false
      0x00,                                      // presence bitmap: none
      0x10,                                      // queue_capacity zigzag(8)
      0x08,                                      // max_batch zigzag(4)
  };
  ASSERT_EQ(frame.size(), sizeof(expected));
  EXPECT_EQ(std::memcmp(frame.data(), expected, sizeof(expected)), 0);
}

TEST(WireGoldenTest, WindowFrame) {
  // Window 3 with edges (0,2,1.0), (0,3,-0.5), (2,5,0.25): the first two
  // share row 0 (di=0, dj deltas), the third jumps rows (raw j).
  std::vector<Edge> edges(3);
  edges[0] = {0, 2, 1.0};
  edges[1] = {0, 3, -0.5};
  edges[2] = {2, 5, 0.25};
  std::string frame;
  EncodeWindowFrame(3, edges, &frame);
  const uint8_t expected[] = {
      0x02, 0x20, 0x00, 0x00, 0x00,  // header: kWindow, 32 bytes
      0x03,                          // window index 3
      0x03,                          // 3 edges
      0x00, 0x03,                    // di=0, dj=2-(-1)=3 -> (0,2)
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xf0, 0x3f,  // 1.0
      0x00, 0x01,                    // di=0, dj=1 -> (0,3)
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xe0, 0xbf,  // -0.5
      0x02, 0x05,                    // di=2, raw j=5 -> (2,5)
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xd0, 0x3f,  // 0.25
  };
  ASSERT_EQ(frame.size(), sizeof(expected));
  EXPECT_EQ(std::memcmp(frame.data(), expected, sizeof(expected)), 0);
}

TEST(WireGoldenTest, StatusAndCancelFrames) {
  WireSummary summary;
  summary.windows_delivered = 2;
  std::string frame;
  EncodeStatusFrame(Status::Ok(), summary, &frame);
  const uint8_t expected[] = {
      0x03, 0x0a, 0x00, 0x00, 0x00,  // header: kStatus, 10 bytes
      0x00,                          // code kOk
      0x00,                          // empty message
      0x00,                          // tier_used kExact
      0x00,                          // flags
      0x04,                          // windows_delivered zigzag(2)
      0x00, 0x00, 0x00, 0x00, 0x00,  // remaining counters 0
  };
  ASSERT_EQ(frame.size(), sizeof(expected));
  EXPECT_EQ(std::memcmp(frame.data(), expected, sizeof(expected)), 0);

  std::string cancel;
  EncodeCancelFrame(&cancel);
  const uint8_t expected_cancel[] = {0x04, 0x00, 0x00, 0x00, 0x00};
  ASSERT_EQ(cancel.size(), sizeof(expected_cancel));
  EXPECT_EQ(std::memcmp(cancel.data(), expected_cancel,
                        sizeof(expected_cancel)),
            0);
}

// ----------------------------------------------------------- FrameReader --

TEST(FrameReaderTest, ReassemblesByteByByte) {
  std::string stream;
  AppendPreamble(&stream);
  EncodeRequestFrame(FullRequest(), &stream);
  std::vector<Edge> edges(1);
  edges[0] = {0, 1, 0.5};
  EncodeWindowFrame(9, edges, &stream);
  EncodeCancelFrame(&stream);

  FrameReader reader(/*expect_preamble=*/true);
  std::vector<FrameType> seen;
  for (const char byte : stream) {
    reader.Feed(reinterpret_cast<const uint8_t*>(&byte), 1);
    while (true) {
      Frame frame;
      bool have = false;
      ASSERT_TRUE(reader.Next(&frame, &have).ok());
      if (!have) {
        break;
      }
      seen.push_back(frame.type);
    }
  }
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], FrameType::kRequest);
  EXPECT_EQ(seen[1], FrameType::kWindow);
  EXPECT_EQ(seen[2], FrameType::kCancel);
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FrameReaderTest, RejectsBadPreamble) {
  FrameReader reader(/*expect_preamble=*/true);
  const uint8_t junk[] = {'H', 'T', 'T', 'P', '/'};
  reader.Feed(junk, sizeof(junk));
  Frame frame;
  bool have = false;
  EXPECT_FALSE(reader.Next(&frame, &have).ok());
}

TEST(FrameReaderTest, RejectsUnknownTypeAndOversizedPayload) {
  {
    FrameReader reader(/*expect_preamble=*/false);
    const uint8_t bad_type[] = {0x09, 0x00, 0x00, 0x00, 0x00};
    reader.Feed(bad_type, sizeof(bad_type));
    Frame frame;
    bool have = false;
    EXPECT_FALSE(reader.Next(&frame, &have).ok());
  }
  {
    FrameReader reader(/*expect_preamble=*/false);
    // A kWindow header announcing 4 GiB - 1: rejected from the header
    // alone — no allocation, no waiting for the bytes.
    const uint8_t oversized[] = {0x02, 0xff, 0xff, 0xff, 0xff};
    reader.Feed(oversized, sizeof(oversized));
    Frame frame;
    bool have = false;
    EXPECT_FALSE(reader.Next(&frame, &have).ok());
  }
}

TEST(FrameReaderTest, CompactsConsumedPrefix) {
  FrameReader reader(/*expect_preamble=*/false);
  std::string status_frame;
  EncodeStatusFrame(Status::Ok(), WireSummary{}, &status_frame);
  for (int repeat = 0; repeat < 1000; ++repeat) {
    reader.Feed(reinterpret_cast<const uint8_t*>(status_frame.data()),
                status_frame.size());
    Frame frame;
    bool have = false;
    ASSERT_TRUE(reader.Next(&frame, &have).ok());
    ASSERT_TRUE(have);
    EXPECT_EQ(frame.type, FrameType::kStatus);
    // Drained after every frame: the buffer must not grow with history.
    EXPECT_EQ(reader.buffered(), 0u);
  }
}

}  // namespace
}  // namespace dangoron
