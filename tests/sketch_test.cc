#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.h"
#include "corr/pearson.h"
#include "sketch/basic_window_index.h"
#include "ts/generators.h"

namespace dangoron {
namespace {

TEST(PairIdTest, RoundTripsAllPairs) {
  for (const int64_t n : {2, 3, 5, 17, 64, 129, 500}) {
    int64_t expected_id = 0;
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = i + 1; j < n; ++j) {
        const int64_t id = BasicWindowIndex::PairId(i, j, n);
        EXPECT_EQ(id, expected_id) << "n=" << n;
        int64_t ri = 0;
        int64_t rj = 0;
        BasicWindowIndex::PairFromId(id, n, &ri, &rj);
        EXPECT_EQ(ri, i);
        EXPECT_EQ(rj, j);
        ++expected_id;
      }
    }
    EXPECT_EQ(expected_id, n * (n - 1) / 2);
  }
}

TEST(PairIdTest, ClosedFormInversionSurvivesHugeN) {
  // The closed-form sqrt inversion must stay exact far beyond any size the
  // exhaustive round trip can cover, including the first and last ids of
  // each row, where an off-by-one triangular root would show.
  for (const int64_t n : {100000, 1 << 20}) {
    for (const int64_t i : {int64_t{0}, int64_t{1}, n / 3, n - 3, n - 2}) {
      for (const int64_t j : {i + 1, i + 2, (i + n) / 2, n - 1}) {
        if (j <= i || j >= n) {
          continue;
        }
        int64_t ri = 0;
        int64_t rj = 0;
        BasicWindowIndex::PairFromId(BasicWindowIndex::PairId(i, j, n), n,
                                     &ri, &rj);
        EXPECT_EQ(ri, i) << "n=" << n << " j=" << j;
        EXPECT_EQ(rj, j) << "n=" << n << " i=" << i;
      }
    }
  }
}

TEST(PairIdTest, OrderInsensitive) {
  EXPECT_EQ(BasicWindowIndex::PairId(3, 7, 10),
            BasicWindowIndex::PairId(7, 3, 10));
}

TEST(BasicWindowIndexTest, RejectsBadInput) {
  Rng rng(1);
  TimeSeriesMatrix data = GenerateWhiteNoise(4, 100, &rng);

  BasicWindowIndexOptions options;
  options.basic_window = 0;
  EXPECT_FALSE(BasicWindowIndex::Build(data, options).ok());

  options.basic_window = 200;  // longer than the series
  EXPECT_FALSE(BasicWindowIndex::Build(data, options).ok());

  options.basic_window = 10;
  TimeSeriesMatrix empty;
  EXPECT_FALSE(BasicWindowIndex::Build(empty, options).ok());

  data.Set(1, 5, MissingValue());
  EXPECT_FALSE(BasicWindowIndex::Build(data, options).ok());
}

TEST(BasicWindowIndexTest, RaggedTailIsTruncated) {
  Rng rng(2);
  TimeSeriesMatrix data = GenerateWhiteNoise(2, 103, &rng);
  BasicWindowIndexOptions options;
  options.basic_window = 10;
  const auto index = BasicWindowIndex::Build(data, options);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->num_basic_windows(), 10);
  EXPECT_EQ(index->basic_window(), 10);
  EXPECT_EQ(index->num_series(), 2);
  EXPECT_EQ(index->num_pairs(), 1);
}

TEST(BasicWindowIndexTest, PerSeriesPrefixSumsMatchDirect) {
  Rng rng(3);
  TimeSeriesMatrix data = GenerateWhiteNoise(3, 96, &rng);
  BasicWindowIndexOptions options;
  options.basic_window = 8;
  const auto index = BasicWindowIndex::Build(data, options);
  ASSERT_TRUE(index.ok());

  for (int64_t s = 0; s < 3; ++s) {
    for (int64_t lo = 0; lo < 12; ++lo) {
      for (int64_t hi = lo + 1; hi <= 12; ++hi) {
        double sum = 0.0;
        double sumsq = 0.0;
        for (int64_t t = lo * 8; t < hi * 8; ++t) {
          const double v = data.Get(s, t);
          sum += v;
          sumsq += v * v;
        }
        EXPECT_NEAR(index->SumRange(s, lo, hi), sum, 1e-9);
        EXPECT_NEAR(index->SumSqRange(s, lo, hi), sumsq, 1e-9);
      }
    }
  }
}

TEST(BasicWindowIndexTest, WindowMeanAndStdMatchOracle) {
  Rng rng(4);
  TimeSeriesMatrix data = GenerateWhiteNoise(2, 64, &rng);
  BasicWindowIndexOptions options;
  options.basic_window = 16;
  const auto index = BasicWindowIndex::Build(data, options);
  ASSERT_TRUE(index.ok());

  for (int64_t s = 0; s < 2; ++s) {
    const auto stats = ComputeBasicWindowStats(data.Row(s), 16);
    for (int64_t w = 0; w < 4; ++w) {
      EXPECT_NEAR(index->WindowMean(s, w), stats[static_cast<size_t>(w)].mean,
                  1e-10);
      EXPECT_NEAR(index->WindowStdDev(s, w),
                  stats[static_cast<size_t>(w)].stddev, 1e-10);
    }
  }
}

TEST(BasicWindowIndexTest, PairWindowCorrelationMatchesOracle) {
  Rng rng(5);
  std::vector<double> x, y;
  GenerateCorrelatedPair(120, 0.7, &rng, &x, &y);
  auto matrix = TimeSeriesMatrix::FromRows({x, y});
  ASSERT_TRUE(matrix.ok());
  BasicWindowIndexOptions options;
  options.basic_window = 12;
  const auto index = BasicWindowIndex::Build(*matrix, options);
  ASSERT_TRUE(index.ok());

  const std::vector<double> oracle = ComputeBasicWindowCorrelations(x, y, 12);
  for (int64_t w = 0; w < 10; ++w) {
    EXPECT_NEAR(index->PairWindowCorrelation(0, w),
                oracle[static_cast<size_t>(w)], 1e-9)
        << "w=" << w;
  }
}

TEST(BasicWindowIndexTest, OneMinusCorrRangeIsMonotonePrefix) {
  Rng rng(6);
  TimeSeriesMatrix data = GenerateWhiteNoise(2, 200, &rng);
  BasicWindowIndexOptions options;
  options.basic_window = 10;
  const auto index = BasicWindowIndex::Build(data, options);
  ASSERT_TRUE(index.ok());
  double previous = 0.0;
  for (int64_t hi = 1; hi <= 20; ++hi) {
    const double value = index->OneMinusCorrRange(0, 0, hi);
    // c in [-1, 1] so each term (1 - c) is in [0, 2]: non-decreasing prefix.
    EXPECT_GE(value, previous - 1e-12);
    EXPECT_LE(value - previous, 2.0 + 1e-12);
    previous = value;
  }
}

// Parameterized: exact range correlation from the sketch must equal the
// naive Pearson over the same columns for every geometry.
class SketchRangeSweep
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>> {};

TEST_P(SketchRangeSweep, RangeCorrelationMatchesNaive) {
  const int64_t b = std::get<0>(GetParam());
  const int64_t num_series = std::get<1>(GetParam());
  const int64_t nb = 15;
  Rng rng(static_cast<uint64_t>(100 + b + num_series));
  TimeSeriesMatrix data = GenerateWhiteNoise(num_series, b * nb, &rng);
  BasicWindowIndexOptions options;
  options.basic_window = b;
  const auto index = BasicWindowIndex::Build(data, options);
  ASSERT_TRUE(index.ok());

  for (int64_t i = 0; i < num_series; ++i) {
    for (int64_t j = i + 1; j < num_series; ++j) {
      const int64_t p = BasicWindowIndex::PairId(i, j, num_series);
      for (const auto& [lo, hi] :
           {std::pair<int64_t, int64_t>{0, nb}, {0, 3}, {5, 9}, {nb - 2, nb}}) {
        const double expected = PearsonNaive(
            data.RowRange(i, lo * b, (hi - lo) * b),
            data.RowRange(j, lo * b, (hi - lo) * b));
        EXPECT_NEAR(index->PairRangeCorrelation(p, lo, hi), expected, 1e-8)
            << "pair (" << i << "," << j << ") range [" << lo << "," << hi
            << ")";
        EXPECT_NEAR(index->RangeCorrelationFromRaw(i, j, lo, hi), expected,
                    1e-8);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SketchRangeSweep,
    ::testing::Combine(::testing::Values<int64_t>(4, 9, 24),
                       ::testing::Values<int64_t>(2, 5, 8)));

TEST(BasicWindowIndexTest, ParallelBuildMatchesSequential) {
  Rng rng(7);
  TimeSeriesMatrix data = GenerateWhiteNoise(10, 240, &rng);
  BasicWindowIndexOptions options;
  options.basic_window = 24;
  const auto sequential = BasicWindowIndex::Build(data, options);
  ThreadPool pool(4);
  const auto parallel = BasicWindowIndex::Build(data, options, &pool);
  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(parallel.ok());
  for (int64_t p = 0; p < sequential->num_pairs(); ++p) {
    for (int64_t w = 0; w < sequential->num_basic_windows(); ++w) {
      EXPECT_DOUBLE_EQ(sequential->DotRange(p, w, w + 1),
                       parallel->DotRange(p, w, w + 1));
      EXPECT_DOUBLE_EQ(sequential->PairWindowCorrelation(p, w),
                       parallel->PairWindowCorrelation(p, w));
    }
  }
}

TEST(BasicWindowIndexTest, NoPairSketchesMode) {
  Rng rng(8);
  TimeSeriesMatrix data = GenerateWhiteNoise(4, 64, &rng);
  BasicWindowIndexOptions options;
  options.basic_window = 8;
  options.build_pair_sketches = false;
  const auto index = BasicWindowIndex::Build(data, options);
  ASSERT_TRUE(index.ok());
  EXPECT_FALSE(index->has_pair_sketches());
  // Per-series statistics still work.
  EXPECT_NEAR(index->SumRange(0, 0, 8),
              [&] {
                double sum = 0;
                for (int64_t t = 0; t < 64; ++t) sum += data.Get(0, t);
                return sum;
              }(),
              1e-9);
  // Raw-data range correlation works without pair sketches.
  const double expected =
      PearsonNaive(data.RowRange(0, 0, 64), data.RowRange(1, 0, 64));
  EXPECT_NEAR(index->RangeCorrelationFromRaw(0, 1, 0, 8), expected, 1e-9);
}

TEST(BasicWindowIndexTest, MemoryAccounting) {
  Rng rng(9);
  TimeSeriesMatrix data = GenerateWhiteNoise(4, 64, &rng);
  BasicWindowIndexOptions options;
  options.basic_window = 8;
  const auto with_pairs = BasicWindowIndex::Build(data, options);
  options.build_pair_sketches = false;
  const auto without_pairs = BasicWindowIndex::Build(data, options);
  ASSERT_TRUE(with_pairs.ok());
  ASSERT_TRUE(without_pairs.ok());
  EXPECT_GT(with_pairs->MemoryBytes(), without_pairs->MemoryBytes());
  EXPECT_GT(without_pairs->MemoryBytes(), 0);
}

}  // namespace
}  // namespace dangoron
