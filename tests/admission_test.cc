// Unit tests of PrepareAdmissionQueue: budget reservation against the
// sketch cache, idle-LRU reclamation (pinned entries are skipped), parked
// waits woken by NotifyReleased / Release, deadline expiry, stream
// cancellation via the CancelWaker protocol, the parked-list bound, and
// shutdown. The serve_test suite covers the same machinery end-to-end
// through DangoronServer.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "common/logging.h"
#include "serve/admission_queue.h"
#include "serve/prepared_dataset.h"
#include "serve/sketch_cache.h"
#include "serve/window_stream.h"
#include "ts/generators.h"

namespace dangoron {
namespace {

constexpr auto kNoDeadline = std::chrono::steady_clock::time_point::max();

// A tiny real PreparedDataset to populate the cache with (the cache is
// charged whatever byte cost the test passes, not its true size).
std::shared_ptr<const PreparedDataset> TinyPrepared(uint64_t seed) {
  Rng rng(seed);
  auto data = std::make_shared<const TimeSeriesMatrix>(
      GenerateWhiteNoise(3, 32, &rng));
  auto prepared = PreparedDataset::Create(data, /*basic_window=*/8,
                                          /*pool=*/nullptr);
  CHECK(prepared.ok());
  return *prepared;
}

SketchCacheKey Key(uint64_t fingerprint) {
  return SketchCacheKey{fingerprint, 8};
}

// Admit under a key no test caches (the cached-landing path has its own
// test), recording whether the request parked.
Status AdmitSimple(PrepareAdmissionQueue* queue, int64_t estimate,
                   std::chrono::steady_clock::time_point deadline,
                   WindowStreamState* stream, bool* parked) {
  std::shared_ptr<const PreparedDataset> landed;
  const Status status = queue->Admit(
      estimate, Key(999), deadline, stream, [parked] { *parked = true; },
      &landed);
  EXPECT_EQ(landed, nullptr);
  return status;
}

TEST(PrepareAdmissionQueueTest, FittingEstimateAdmitsWithoutParking) {
  SketchCache cache(100);
  PrepareAdmissionQueue queue(&cache, /*max_parked=*/4);

  bool parked = false;
  ASSERT_TRUE(AdmitSimple(&queue, 60, kNoDeadline, nullptr, &parked).ok());
  EXPECT_FALSE(parked);
  EXPECT_EQ(queue.reserved_bytes(), 60);
  // A second request that fits the remainder is also immediate.
  ASSERT_TRUE(AdmitSimple(&queue, 40, kNoDeadline, nullptr, &parked).ok());
  EXPECT_FALSE(parked);
  EXPECT_EQ(queue.reserved_bytes(), 100);
  queue.Release(60);
  queue.Release(40);
  EXPECT_EQ(queue.reserved_bytes(), 0);
}

TEST(PrepareAdmissionQueueTest, NeverFittingEstimateRefusedImmediately) {
  SketchCache cache(100);
  PrepareAdmissionQueue queue(&cache, /*max_parked=*/4);

  bool parked = false;
  const Status status = AdmitSimple(&queue, 101, kNoDeadline, nullptr, &parked);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(parked);
  EXPECT_EQ(queue.parked(), 0);
}

TEST(PrepareAdmissionQueueTest, ReclaimsIdleLruButSkipsPinnedEntries) {
  SketchCache cache(100);
  PrepareAdmissionQueue queue(&cache, /*max_parked=*/4);

  auto pinned = TinyPrepared(1);  // we hold a reference: not evictable
  cache.Put(Key(1), pinned, 50);
  cache.Put(Key(2), TinyPrepared(2), 40);  // idle: cache holds the only ref

  // 45 bytes fit only by evicting the idle entry; the pinned one stays.
  bool parked = false;
  ASSERT_TRUE(AdmitSimple(&queue, 45, kNoDeadline, nullptr, &parked).ok());
  EXPECT_FALSE(parked);
  EXPECT_EQ(cache.Get(Key(2)), nullptr);   // idle entry reclaimed
  EXPECT_NE(cache.Get(Key(1)), nullptr);   // pinned entry survived
  queue.Release(45);
}

TEST(PrepareAdmissionQueueTest, ParksUntilReleaseFreesBudget) {
  SketchCache cache(100);
  PrepareAdmissionQueue queue(&cache, /*max_parked=*/4);

  bool first_parked = false;
  ASSERT_TRUE(AdmitSimple(&queue, 80, kNoDeadline, nullptr, &first_parked).ok());
  EXPECT_FALSE(first_parked);

  Status second = Status::Ok();
  bool second_parked = false;
  std::thread waiter([&] {
    second = AdmitSimple(&queue, 80, kNoDeadline, nullptr, &second_parked);
  });
  while (queue.parked() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Releasing the first reservation frees the budget and wakes the waiter.
  queue.Release(80);
  waiter.join();
  EXPECT_TRUE(second.ok()) << second.ToString();
  EXPECT_TRUE(second_parked);
  EXPECT_EQ(queue.parked(), 0);
  EXPECT_EQ(queue.reserved_bytes(), 80);
  queue.Release(80);
}

TEST(PrepareAdmissionQueueTest, ParkedRequestExpiresAtDeadline) {
  SketchCache cache(100);
  PrepareAdmissionQueue queue(&cache, /*max_parked=*/4);

  auto pinned = TinyPrepared(3);
  cache.Put(Key(3), pinned, 90);  // pinned: nothing can be reclaimed

  bool parked = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(50);
  const Status status = AdmitSimple(&queue, 50, deadline, nullptr, &parked);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(parked);
  EXPECT_EQ(queue.parked(), 0);
  EXPECT_EQ(queue.reserved_bytes(), 0);
}

TEST(PrepareAdmissionQueueTest, StreamCancellationWakesParkedRequest) {
  SketchCache cache(100);
  PrepareAdmissionQueue queue(&cache, /*max_parked=*/4);

  auto pinned = TinyPrepared(4);
  cache.Put(Key(4), pinned, 90);

  WindowStreamState stream(/*queue_capacity=*/1);
  Status status = Status::Ok();
  bool parked = false;
  std::thread waiter([&] {
    status = AdmitSimple(&queue, 50, kNoDeadline, &stream, &parked);
  });
  while (queue.parked() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stream.Cancel();
  waiter.join();
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_TRUE(parked);
  EXPECT_EQ(queue.parked(), 0);
  EXPECT_EQ(queue.reserved_bytes(), 0);
}

TEST(PrepareAdmissionQueueTest, ParkedListIsBounded) {
  SketchCache cache(100);
  PrepareAdmissionQueue queue(&cache, /*max_parked=*/1);

  auto pinned = TinyPrepared(5);
  cache.Put(Key(5), pinned, 90);

  WindowStreamState stream(/*queue_capacity=*/1);
  Status first = Status::Ok();
  bool first_parked = false;
  std::thread waiter([&] {
    first = AdmitSimple(&queue, 50, kNoDeadline, &stream, &first_parked);
  });
  while (queue.parked() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  bool second_parked = false;
  const Status second = AdmitSimple(&queue, 50, kNoDeadline, nullptr, &second_parked);
  EXPECT_EQ(second.code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(second_parked);

  stream.Cancel();
  waiter.join();
  EXPECT_EQ(first.code(), StatusCode::kCancelled);
}

TEST(PrepareAdmissionQueueTest, ShutdownFailsParkedAndFutureRequests) {
  SketchCache cache(100);
  PrepareAdmissionQueue queue(&cache, /*max_parked=*/4);

  auto pinned = TinyPrepared(6);
  cache.Put(Key(6), pinned, 90);

  Status status = Status::Ok();
  bool parked = false;
  std::thread waiter([&] {
    status = AdmitSimple(&queue, 50, kNoDeadline, nullptr, &parked);
  });
  while (queue.parked() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  queue.Shutdown();
  waiter.join();
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);

  bool late_parked = false;
  EXPECT_EQ(AdmitSimple(&queue, 1, kNoDeadline, nullptr, &late_parked).code(),
            StatusCode::kResourceExhausted);
}

// A request parked for a sketch that a concurrent build publishes while it
// waits admits straight through the cache: Ok, `landed` set, and no budget
// reserved — instead of reclaiming room to rebuild its own duplicate.
TEST(PrepareAdmissionQueueTest, SameKeyLandingAdmitsThroughCache) {
  SketchCache cache(100);
  PrepareAdmissionQueue queue(&cache, /*max_parked=*/4);

  auto pinned = TinyPrepared(10);
  cache.Put(Key(10), pinned, 90);  // budget pinned: the request must park

  Status status = Status::Ok();
  std::shared_ptr<const PreparedDataset> landed;
  bool parked = false;
  std::thread waiter([&] {
    status = queue.Admit(50, Key(42), kNoDeadline, nullptr,
                         [&] { parked = true; }, &landed);
  });
  while (queue.parked() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // The "concurrent build" publishes Key(42) (fits alongside the pinned
  // entry is irrelevant — landing admits regardless of budget), then the
  // server's Release-path notification fires.
  auto built = TinyPrepared(42);
  cache.Put(Key(42), built, 5);
  queue.NotifyReleased();
  waiter.join();
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(parked);
  ASSERT_NE(landed, nullptr);
  EXPECT_EQ(landed, built);
  EXPECT_EQ(queue.reserved_bytes(), 0);  // admitted via the cache
}

// FIFO: while a request is parked, a newly arriving request that would fit
// the free budget parks behind it instead of barging — and both admit in
// order once the pin drops.
TEST(PrepareAdmissionQueueTest, NewArrivalsDoNotBargePastParkedRequests) {
  SketchCache cache(100);
  PrepareAdmissionQueue queue(&cache, /*max_parked=*/4);

  auto pinned = TinyPrepared(11);
  cache.Put(Key(11), pinned, 90);

  Status head = Status::Ok();
  bool head_parked = false;
  std::thread head_waiter([&] {
    head = AdmitSimple(&queue, 50, kNoDeadline, nullptr, &head_parked);
  });
  while (queue.parked() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // 5 bytes fit the free budget (10), but the queue is not empty: FIFO
  // parks the newcomer behind the head.
  Status second = Status::Ok();
  bool second_parked = false;
  std::thread second_waiter([&] {
    second = AdmitSimple(&queue, 5, kNoDeadline, nullptr, &second_parked);
  });
  while (queue.parked() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Unpin: the head reclaims the idle entry and admits; its departure
  // wakes the second, which then fits the remainder.
  pinned.reset();
  queue.NotifyReleased();
  head_waiter.join();
  second_waiter.join();
  EXPECT_TRUE(head.ok()) << head.ToString();
  EXPECT_TRUE(second.ok()) << second.ToString();
  EXPECT_TRUE(head_parked);
  EXPECT_TRUE(second_parked);
  EXPECT_EQ(queue.reserved_bytes(), 55);
  queue.Release(50);
  queue.Release(5);
}

// An insertion-driven eviction (cache Put over budget) fires the eviction
// listener outside the cache lock; wired to NotifyReleased it admits a
// parked request without any explicit Release call.
TEST(PrepareAdmissionQueueTest, PutEvictionListenerWakesParkedRequest) {
  SketchCache cache(100);
  PrepareAdmissionQueue queue(&cache, /*max_parked=*/4);
  cache.SetEvictionListener([&] { queue.NotifyReleased(); });

  auto pinned = TinyPrepared(7);
  cache.Put(Key(7), pinned, 90);  // pinned: the park below cannot reclaim it
  Status status = Status::Ok();
  bool parked = false;
  std::thread waiter([&] {
    status = AdmitSimple(&queue, 80, kNoDeadline, nullptr, &parked);
  });
  while (queue.parked() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Drop the pin, then insert a small entry that evicts the big one (LRU):
  // the listener wakes the parked request, which now fits.
  pinned.reset();
  cache.Put(Key(8), TinyPrepared(8), 15);
  waiter.join();
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(parked);
  EXPECT_EQ(queue.reserved_bytes(), 80);
}

}  // namespace
}  // namespace dangoron
