#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>

#include "common/logging.h"
#include "common/rng.h"
#include "corr/pearson.h"
#include "engine/dangoron_engine.h"
#include "engine/naive_engine.h"
#include "engine/parcorr_engine.h"
#include "engine/tsubasa_engine.h"
#include "network/accuracy.h"
#include "ts/generators.h"

namespace dangoron {
namespace {

// Climate-like small dataset shared by the equivalence suites.
TimeSeriesMatrix SmallClimate(int64_t stations, int64_t hours,
                              uint64_t seed) {
  ClimateSpec spec;
  spec.num_stations = stations;
  spec.num_hours = hours;
  spec.seed = seed;
  auto dataset = GenerateClimate(spec);
  CHECK(dataset.ok());
  return std::move(dataset->data);
}

// Asserts two engine results describe identical edge sets with values equal
// to `tolerance`.
void ExpectSeriesEqual(const CorrelationMatrixSeries& a,
                       const CorrelationMatrixSeries& b, double tolerance) {
  ASSERT_EQ(a.num_windows(), b.num_windows());
  for (int64_t k = 0; k < a.num_windows(); ++k) {
    const auto edges_a = a.WindowEdges(k);
    const auto edges_b = b.WindowEdges(k);
    ASSERT_EQ(edges_a.size(), edges_b.size()) << "window " << k;
    for (size_t e = 0; e < edges_a.size(); ++e) {
      EXPECT_EQ(edges_a[e].i, edges_b[e].i) << "window " << k;
      EXPECT_EQ(edges_a[e].j, edges_b[e].j) << "window " << k;
      EXPECT_NEAR(edges_a[e].value, edges_b[e].value, tolerance)
          << "window " << k;
    }
  }
}

// ----------------------------------------------------------- SlidingQuery --

TEST(SlidingQueryTest, NumWindows) {
  SlidingQuery query;
  query.start = 0;
  query.end = 100;
  query.window = 20;
  query.step = 10;
  EXPECT_EQ(query.NumWindows(), 9);
  query.end = 20;
  EXPECT_EQ(query.NumWindows(), 1);
  query.end = 19;
  EXPECT_EQ(query.NumWindows(), 0);
}

TEST(SlidingQueryTest, ValidateCatchesBadQueries) {
  SlidingQuery query;
  query.start = 0;
  query.end = 100;
  query.window = 20;
  query.step = 10;
  EXPECT_TRUE(query.Validate(100).ok());
  EXPECT_FALSE(query.Validate(50).ok());  // end beyond data

  query.window = 0;
  EXPECT_FALSE(query.Validate(100).ok());
  query.window = 20;
  query.step = 0;
  EXPECT_FALSE(query.Validate(100).ok());
  query.step = 10;
  query.threshold = 1.5;
  EXPECT_FALSE(query.Validate(100).ok());
  query.threshold = 0.5;
  query.start = 90;
  EXPECT_FALSE(query.Validate(100).ok());  // range < window
}

TEST(SlidingQueryTest, ToStringIncludesAbsoluteFlag) {
  SlidingQuery query;
  query.start = 0;
  query.end = 100;
  query.window = 20;
  query.step = 10;
  EXPECT_NE(query.ToString().find("abs=off"), std::string::npos);
  query.absolute = true;
  EXPECT_NE(query.ToString().find("abs=on"), std::string::npos);
}

TEST(SlidingQueryTest, ValidateReportsOffendingFieldValues) {
  SlidingQuery query;
  query.start = 90;  // range [90, 100) of 10 columns < window 20
  query.end = 100;
  query.window = 20;
  query.step = 10;
  const Status status = query.Validate(100);
  ASSERT_FALSE(status.ok());
  // The multi-field failure names every participating value, not just one.
  EXPECT_NE(status.message().find("90"), std::string::npos);
  EXPECT_NE(status.message().find("100"), std::string::npos);
  EXPECT_NE(status.message().find("20"), std::string::npos);
  EXPECT_NE(status.message().find(query.ToString()), std::string::npos);
}

TEST(CorrelationSeriesTest, ToDenseRoundTrip) {
  SlidingQuery query;
  query.start = 0;
  query.end = 10;
  query.window = 10;
  query.step = 10;
  CorrelationMatrixSeries series(query, 3);
  series.MutableWindow(0)->push_back(Edge{0, 2, 0.9});
  const std::vector<double> dense = series.ToDense(0);
  EXPECT_DOUBLE_EQ(dense[0], 1.0);
  EXPECT_DOUBLE_EQ(dense[2], 0.9);
  EXPECT_DOUBLE_EQ(dense[6], 0.9);  // symmetric
  EXPECT_DOUBLE_EQ(dense[1], 0.0);
  EXPECT_EQ(series.TotalEdges(), 1);
}

// ------------------------------------------------- Engine lifecycle guards --

TEST(EngineGuardsTest, QueryBeforePrepareFails) {
  SlidingQuery query;
  query.start = 0;
  query.end = 48;
  query.window = 24;
  query.step = 24;

  NaiveEngine naive;
  EXPECT_FALSE(naive.Query(query).ok());
  TsubasaEngine tsubasa;
  EXPECT_FALSE(tsubasa.Query(query).ok());
  DangoronEngine dangoron;
  EXPECT_FALSE(dangoron.Query(query).ok());
  ParCorrEngine parcorr;
  EXPECT_FALSE(parcorr.Query(query).ok());
}

TEST(EngineGuardsTest, MissingValuesRejected) {
  Rng rng(1);
  TimeSeriesMatrix data = GenerateWhiteNoise(3, 48, &rng);
  data.Set(0, 5, MissingValue());
  EXPECT_FALSE(NaiveEngine().Prepare(data).ok());
  EXPECT_FALSE(TsubasaEngine().Prepare(data).ok());
  EXPECT_FALSE(DangoronEngine().Prepare(data).ok());
  EXPECT_FALSE(ParCorrEngine().Prepare(data).ok());
}

TEST(EngineGuardsTest, DangoronRequiresAlignment) {
  Rng rng(2);
  TimeSeriesMatrix data = GenerateWhiteNoise(3, 480, &rng);
  DangoronOptions options;
  options.basic_window = 24;
  DangoronEngine engine(options);
  ASSERT_TRUE(engine.Prepare(data).ok());

  SlidingQuery query;
  query.start = 0;
  query.end = 480;
  query.window = 48;
  query.step = 12;  // not a multiple of 24
  EXPECT_FALSE(engine.Query(query).ok());

  query.step = 24;
  query.window = 36;  // not a multiple of 24
  EXPECT_FALSE(engine.Query(query).ok());

  query.window = 48;
  query.start = 12;  // not aligned
  query.end = 468;
  EXPECT_FALSE(engine.Query(query).ok());

  query.start = 0;
  query.end = 480;
  EXPECT_TRUE(engine.Query(query).ok());
}

// --------------------------------------- Exact-engine equivalence sweeps --

// (num_series, basic_window, window_bw, step_bw, threshold)
using EquivalenceParam = std::tuple<int64_t, int64_t, int64_t, int64_t, double>;

class ExactEquivalenceSweep
    : public ::testing::TestWithParam<EquivalenceParam> {};

TEST_P(ExactEquivalenceSweep, NaiveTsubasaDangoronAgree) {
  const auto [n, b, window_bw, step_bw, beta] = GetParam();
  const int64_t length = b * 40;
  TimeSeriesMatrix data = SmallClimate(n, length, 7000 + n * 13 + b);

  SlidingQuery query;
  query.start = 0;
  query.end = length;
  query.window = window_bw * b;
  query.step = step_bw * b;
  query.threshold = beta;

  NaiveEngine naive;
  ASSERT_TRUE(naive.Prepare(data).ok());
  auto truth = naive.Query(query);
  ASSERT_TRUE(truth.ok());

  TsubasaOptions tsubasa_options;
  tsubasa_options.basic_window = b;
  TsubasaEngine tsubasa(tsubasa_options);
  ASSERT_TRUE(tsubasa.Prepare(data).ok());
  auto tsubasa_result = tsubasa.Query(query);
  ASSERT_TRUE(tsubasa_result.ok());
  ExpectSeriesEqual(*truth, *tsubasa_result, 1e-8);

  DangoronOptions dangoron_options;
  dangoron_options.basic_window = b;
  dangoron_options.enable_jumping = false;  // incremental = exact mode
  DangoronEngine dangoron(dangoron_options);
  ASSERT_TRUE(dangoron.Prepare(data).ok());
  auto dangoron_result = dangoron.Query(query);
  ASSERT_TRUE(dangoron_result.ok());
  ExpectSeriesEqual(*truth, *dangoron_result, 1e-8);

  // Sanity: every engine saw the same cell universe.
  EXPECT_EQ(naive.stats().cells_total, tsubasa.stats().cells_total);
  EXPECT_EQ(naive.stats().cells_total, dangoron.stats().cells_total);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, ExactEquivalenceSweep,
    ::testing::Values(
        EquivalenceParam{4, 6, 4, 1, 0.5},
        EquivalenceParam{6, 8, 6, 2, 0.7},
        EquivalenceParam{8, 12, 10, 1, 0.8},
        EquivalenceParam{5, 24, 7, 3, 0.9},
        EquivalenceParam{10, 6, 12, 4, 0.6},
        EquivalenceParam{3, 10, 20, 5, 0.0},   // threshold 0: dense output
        EquivalenceParam{7, 8, 5, 5, 0.95}));  // disjoint windows

TEST(TsubasaUnalignedTest, MatchesNaiveOnUnalignedQueries) {
  TimeSeriesMatrix data = SmallClimate(5, 600, 99);
  TsubasaOptions options;
  options.basic_window = 24;
  TsubasaEngine tsubasa(options);
  NaiveEngine naive;
  ASSERT_TRUE(tsubasa.Prepare(data).ok());
  ASSERT_TRUE(naive.Prepare(data).ok());

  SlidingQuery query;
  query.start = 5;       // unaligned start
  query.end = 590;       // unaligned end
  query.window = 100;    // not a multiple of 24
  query.step = 17;       // prime step
  query.threshold = 0.6;
  auto truth = naive.Query(query);
  auto result = tsubasa.Query(query);
  ASSERT_TRUE(truth.ok());
  ASSERT_TRUE(result.ok());
  ExpectSeriesEqual(*truth, *result, 1e-8);
}

TEST(TsubasaPairCorrelationTest, ArbitraryRangesMatchNaive) {
  TimeSeriesMatrix data = SmallClimate(4, 400, 123);
  TsubasaOptions options;
  options.basic_window = 16;
  TsubasaEngine tsubasa(options);
  ASSERT_TRUE(tsubasa.Prepare(data).ok());

  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    const int64_t a = rng.NextInt(0, 300);
    const int64_t e = a + rng.NextInt(2, 100);
    const int64_t i = rng.NextInt(0, 3);
    int64_t j = rng.NextInt(0, 3);
    if (i == j) {
      j = (j + 1) % 4;
    }
    const auto result = tsubasa.PairCorrelation(i, j, a, e);
    ASSERT_TRUE(result.ok());
    const double expected =
        PearsonNaive(data.RowRange(i, a, e - a), data.RowRange(j, a, e - a));
    EXPECT_NEAR(*result, expected, 1e-8) << "trial " << trial;
  }
  // Error cases.
  EXPECT_FALSE(tsubasa.PairCorrelation(0, 0, 0, 100).ok());
  EXPECT_FALSE(tsubasa.PairCorrelation(0, 9, 0, 100).ok());
  EXPECT_FALSE(tsubasa.PairCorrelation(0, 1, 100, 100).ok());
}

// ---------------------------------------------------- Dangoron jump mode --

TEST(DangoronJumpTest, SkipsCellsAndStaysAccurate) {
  TimeSeriesMatrix data = SmallClimate(16, 24 * 120, 2024);

  SlidingQuery query;
  query.start = 0;
  query.end = data.length();
  query.window = 24 * 14;
  query.step = 24;
  query.threshold = 0.8;

  DangoronOptions exact_options;
  exact_options.enable_jumping = false;
  DangoronEngine exact(exact_options);
  ASSERT_TRUE(exact.Prepare(data).ok());
  auto truth = exact.Query(query);
  ASSERT_TRUE(truth.ok());

  DangoronOptions jump_options;
  jump_options.enable_jumping = true;
  DangoronEngine jump(jump_options);
  ASSERT_TRUE(jump.Prepare(data).ok());
  auto result = jump.Query(query);
  ASSERT_TRUE(result.ok());

  // Jump mode must actually skip a nontrivial share of cells on climate
  // data with a high threshold...
  EXPECT_GT(jump.stats().cells_jumped, 0);
  EXPECT_EQ(jump.stats().cells_evaluated + jump.stats().cells_jumped,
            jump.stats().cells_total);
  // ...and stay above the paper's 90% accuracy bar.
  auto accuracy = CompareSeries(*truth, *result);
  ASSERT_TRUE(accuracy.ok());
  EXPECT_GT(accuracy->total.F1(), 0.9);
  // Edges it does report carry exact values (it only skips, never estimates).
  EXPECT_LT(accuracy->total.value_rmse, 1e-9);
}

TEST(DangoronJumpTest, MaxJumpCapsSkips) {
  TimeSeriesMatrix data = SmallClimate(8, 24 * 60, 11);
  SlidingQuery query;
  query.start = 0;
  query.end = data.length();
  query.window = 24 * 7;
  query.step = 24;
  query.threshold = 0.9;

  DangoronOptions capped;
  capped.enable_jumping = true;
  capped.max_jump_steps = 2;
  DangoronEngine engine(capped);
  ASSERT_TRUE(engine.Prepare(data).ok());
  ASSERT_TRUE(engine.Query(query).ok());
  // With a cap of 2, jumps can never exceed 2 skipped cells each.
  EXPECT_LE(engine.stats().cells_jumped, engine.stats().jumps * 2);
}

TEST(DangoronJumpTest, ThresholdOneSkipsAlmostEverything) {
  TimeSeriesMatrix data = SmallClimate(8, 24 * 60, 12);
  SlidingQuery query;
  query.start = 0;
  query.end = data.length();
  query.window = 24 * 7;
  query.step = 24;
  query.threshold = 1.0;  // nothing can reach an upper bound of >= 1 easily

  DangoronEngine engine;
  ASSERT_TRUE(engine.Prepare(data).ok());
  auto result = engine.Query(query);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(engine.stats().cells_jumped, engine.stats().cells_total / 2);
}

TEST(DangoronThreadingTest, MultiThreadMatchesSingleThread) {
  TimeSeriesMatrix data = SmallClimate(12, 24 * 50, 13);
  SlidingQuery query;
  query.start = 0;
  query.end = data.length();
  query.window = 24 * 10;
  query.step = 24;
  query.threshold = 0.75;

  DangoronOptions single;
  single.num_threads = 1;
  DangoronEngine engine_single(single);
  ASSERT_TRUE(engine_single.Prepare(data).ok());
  auto result_single = engine_single.Query(query);
  ASSERT_TRUE(result_single.ok());

  DangoronOptions multi;
  multi.num_threads = 4;
  DangoronEngine engine_multi(multi);
  ASSERT_TRUE(engine_multi.Prepare(data).ok());
  auto result_multi = engine_multi.Query(query);
  ASSERT_TRUE(result_multi.ok());

  ExpectSeriesEqual(*result_single, *result_multi, 0.0);
  EXPECT_EQ(engine_single.stats().cells_evaluated,
            engine_multi.stats().cells_evaluated);
  EXPECT_EQ(engine_single.stats().cells_jumped,
            engine_multi.stats().cells_jumped);
}

// ----------------------------------------------------- Horizontal pruning --

TEST(DangoronHorizontalTest, PruningPreservesExactness) {
  // The horizontal bound is a theorem: with jumping off, turning pruning on
  // must not change the result at all.
  TimeSeriesMatrix data = SmallClimate(12, 24 * 40, 17);
  SlidingQuery query;
  query.start = 0;
  query.end = data.length();
  query.window = 24 * 8;
  query.step = 24;
  query.threshold = 0.85;

  DangoronOptions plain;
  plain.enable_jumping = false;
  DangoronEngine engine_plain(plain);
  ASSERT_TRUE(engine_plain.Prepare(data).ok());
  auto result_plain = engine_plain.Query(query);
  ASSERT_TRUE(result_plain.ok());

  DangoronOptions pruned;
  pruned.enable_jumping = false;
  pruned.horizontal_pruning = true;
  pruned.num_pivots = 4;
  DangoronEngine engine_pruned(pruned);
  ASSERT_TRUE(engine_pruned.Prepare(data).ok());
  auto result_pruned = engine_pruned.Query(query);
  ASSERT_TRUE(result_pruned.ok());

  ExpectSeriesEqual(*result_plain, *result_pruned, 0.0);
  // And it must have pruned something on a threshold this high.
  EXPECT_GT(engine_pruned.stats().cells_horizontal_pruned, 0);
  EXPECT_GT(engine_pruned.stats().pivot_evaluations, 0);
}

// ------------------------------------------------------------- Above jump --

TEST(DangoronAboveJumpTest, PersistentEdgesSurvive) {
  // Two nearly identical series: the pair stays above threshold throughout;
  // above-jumping should skip some windows yet report the edge everywhere.
  // The above bound decays by 2*m/ns per step (worst-case entering windows),
  // so a skip requires corr0 - 2/ns >= beta: ns = 20 leaves ample room.
  Rng rng(19);
  std::vector<double> x, y;
  GenerateCorrelatedPair(24 * 40, 0.995, &rng, &x, &y);
  auto matrix = TimeSeriesMatrix::FromRows({x, y});
  ASSERT_TRUE(matrix.ok());

  SlidingQuery query;
  query.start = 0;
  query.end = matrix->length();
  query.window = 24 * 20;
  query.step = 24;
  query.threshold = 0.6;

  DangoronOptions options;
  options.enable_jumping = true;
  options.enable_above_jumping = true;
  DangoronEngine engine(options);
  ASSERT_TRUE(engine.Prepare(*matrix).ok());
  auto result = engine.Query(query);
  ASSERT_TRUE(result.ok());
  for (int64_t k = 0; k < result->num_windows(); ++k) {
    ASSERT_EQ(result->WindowEdges(k).size(), 1u) << "window " << k;
  }
  EXPECT_GT(engine.stats().cells_jumped, 0);
}

// ---------------------------------------------------------------- ParCorr --

TEST(ParCorrTest, HighDimensionSketchIsAccurateOnSeparatedData) {
  // Edge-F1 of any fixed-error estimator is bounded by how much probability
  // mass sits within its error band around the threshold, so this test uses
  // a *separated* workload: a tight factor group (pairwise corr ~0.9) and
  // independent background series (corr ~0), with beta = 0.6 in the gap.
  // At d = 512 the estimate error ~0.04 << the 0.3 margin: F1 must be ~1.
  Rng rng(21);
  const int64_t length = 24 * 60;
  TimeSeriesMatrix data(12, length);
  std::vector<double> factor(static_cast<size_t>(length));
  for (double& v : factor) {
    v = rng.NextGaussian();
  }
  for (int64_t s = 0; s < 12; ++s) {
    std::span<double> row = data.Row(s);
    for (int64_t t = 0; t < length; ++t) {
      const double noise = rng.NextGaussian();
      row[static_cast<size_t>(t)] =
          s < 6 ? 0.95 * factor[static_cast<size_t>(t)] + 0.32 * noise
                : noise;
    }
  }

  SlidingQuery query;
  query.start = 0;
  query.end = data.length();
  query.window = 24 * 10;
  query.step = 24;
  query.threshold = 0.6;

  NaiveEngine naive;
  ASSERT_TRUE(naive.Prepare(data).ok());
  auto truth = naive.Query(query);
  ASSERT_TRUE(truth.ok());

  ParCorrOptions options;
  options.sketch_dim = 512;
  ParCorrEngine parcorr(options);
  ASSERT_TRUE(parcorr.Prepare(data).ok());
  auto result = parcorr.Query(query);
  ASSERT_TRUE(result.ok());

  auto accuracy = CompareSeries(*truth, *result);
  ASSERT_TRUE(accuracy.ok());
  EXPECT_GT(accuracy->total.F1(), 0.97);
}

TEST(ParCorrTest, AccuracyImprovesWithDimension) {
  TimeSeriesMatrix data = SmallClimate(10, 24 * 40, 23);
  SlidingQuery query;
  query.start = 0;
  query.end = data.length();
  query.window = 24 * 8;
  query.step = 24;
  query.threshold = 0.8;

  NaiveEngine naive;
  ASSERT_TRUE(naive.Prepare(data).ok());
  auto truth = naive.Query(query);
  ASSERT_TRUE(truth.ok());

  double f1_small = 0.0;
  double f1_large = 0.0;
  for (const int dim : {8, 512}) {
    ParCorrOptions options;
    options.sketch_dim = dim;
    ParCorrEngine engine(options);
    ASSERT_TRUE(engine.Prepare(data).ok());
    auto result = engine.Query(query);
    ASSERT_TRUE(result.ok());
    auto accuracy = CompareSeries(*truth, *result);
    ASSERT_TRUE(accuracy.ok());
    (dim == 8 ? f1_small : f1_large) = accuracy->total.F1();
  }
  EXPECT_GT(f1_large, f1_small);
}

TEST(ParCorrTest, VerificationRemovesFalsePositives) {
  TimeSeriesMatrix data = SmallClimate(10, 24 * 40, 29);
  SlidingQuery query;
  query.start = 0;
  query.end = data.length();
  query.window = 24 * 8;
  query.step = 24;
  query.threshold = 0.8;

  NaiveEngine naive;
  ASSERT_TRUE(naive.Prepare(data).ok());
  auto truth = naive.Query(query);
  ASSERT_TRUE(truth.ok());

  ParCorrOptions options;
  options.sketch_dim = 16;  // deliberately sloppy
  options.verify_candidates = true;
  ParCorrEngine engine(options);
  ASSERT_TRUE(engine.Prepare(data).ok());
  auto result = engine.Query(query);
  ASSERT_TRUE(result.ok());

  auto accuracy = CompareSeries(*truth, *result);
  ASSERT_TRUE(accuracy.ok());
  // Verified mode cannot produce false positives.
  EXPECT_EQ(accuracy->total.false_positives, 0);
  // Verified values are exact.
  EXPECT_LT(accuracy->total.value_rmse, 1e-9);
}

TEST(ParCorrTest, DeterministicForSeed) {
  TimeSeriesMatrix data = SmallClimate(6, 24 * 20, 31);
  SlidingQuery query;
  query.start = 0;
  query.end = data.length();
  query.window = 24 * 5;
  query.step = 24;
  query.threshold = 0.7;

  ParCorrOptions options;
  options.sketch_dim = 32;
  ParCorrEngine engine_a(options);
  ParCorrEngine engine_b(options);
  ASSERT_TRUE(engine_a.Prepare(data).ok());
  ASSERT_TRUE(engine_b.Prepare(data).ok());
  auto result_a = engine_a.Query(query);
  auto result_b = engine_b.Query(query);
  ASSERT_TRUE(result_a.ok());
  ASSERT_TRUE(result_b.ok());
  ExpectSeriesEqual(*result_a, *result_b, 0.0);
}

}  // namespace
}  // namespace dangoron
