#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "network/export.h"

namespace dangoron {
namespace {

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("dangoron_export_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string File(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  std::filesystem::path path_;
};

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

NetworkSnapshot SampleNetwork() {
  const std::vector<Edge> edges = {{0, 1, 0.91}, {1, 2, -0.85}};
  return NetworkSnapshot(4, edges);
}

TEST(ExportTest, EdgeListWithNames) {
  TempDir dir;
  const std::string path = dir.File("edges.tsv");
  ASSERT_TRUE(
      WriteEdgeList(SampleNetwork(), {"a", "b", "c", "d"}, path).ok());
  const std::string content = Slurp(path);
  EXPECT_NE(content.find("a\tb\t0.910000"), std::string::npos);
  EXPECT_NE(content.find("b\tc\t-0.850000"), std::string::npos);
}

TEST(ExportTest, EdgeListNumericFallback) {
  TempDir dir;
  const std::string path = dir.File("edges_numeric.tsv");
  ASSERT_TRUE(WriteEdgeList(SampleNetwork(), {}, path).ok());
  const std::string content = Slurp(path);
  EXPECT_NE(content.find("0\t1\t0.910000"), std::string::npos);
}

TEST(ExportTest, GraphvizStructure) {
  TempDir dir;
  const std::string path = dir.File("net.dot");
  ASSERT_TRUE(
      WriteGraphviz(SampleNetwork(), {"a", "b", "c", "d"}, path).ok());
  const std::string content = Slurp(path);
  EXPECT_NE(content.find("graph correlation_network {"), std::string::npos);
  EXPECT_NE(content.find("\"a\" -- \"b\""), std::string::npos);
  // Isolated node d is still declared.
  EXPECT_NE(content.find("\"d\";"), std::string::npos);
  EXPECT_NE(content.find("}"), std::string::npos);
}

TEST(ExportTest, SeriesCsvLongFormat) {
  SlidingQuery query;
  query.start = 0;
  query.end = 20;
  query.window = 10;
  query.step = 10;
  CorrelationMatrixSeries series(query, 3);
  series.MutableWindow(0)->push_back(Edge{0, 2, 0.88});
  series.MutableWindow(1)->push_back(Edge{1, 2, 0.93});

  TempDir dir;
  const std::string path = dir.File("series.csv");
  ASSERT_TRUE(WriteSeriesCsv(series, path).ok());
  const std::string content = Slurp(path);
  EXPECT_NE(content.find("window,i,j,correlation"), std::string::npos);
  EXPECT_NE(content.find("0,0,2,0.880000"), std::string::npos);
  EXPECT_NE(content.find("1,1,2,0.930000"), std::string::npos);
}

TEST(ExportTest, UnwritablePathIsIoError) {
  const std::string bad = "/nonexistent_dir_xyz/out.tsv";
  EXPECT_EQ(WriteEdgeList(SampleNetwork(), {}, bad).code(),
            StatusCode::kIoError);
  EXPECT_EQ(WriteGraphviz(SampleNetwork(), {}, bad).code(),
            StatusCode::kIoError);
}

CorrelationMatrixSeries SampleSeries() {
  SlidingQuery query;
  query.start = 0;
  query.end = 30;
  query.window = 10;
  query.step = 10;
  CorrelationMatrixSeries series(query, 3);
  series.MutableWindow(0)->push_back(Edge{0, 2, 0.88});
  series.MutableWindow(1)->push_back(Edge{1, 2, 0.93});
  series.MutableWindow(2)->push_back(Edge{0, 1, -0.91});
  return series;
}

// The sink-driven export path writes the identical file the materialized
// WriteSeriesCsv writes — the same rows at window cadence, never holding
// the series.
TEST(ExportTest, SeriesCsvSinkMatchesMaterializedWriter) {
  const CorrelationMatrixSeries series = SampleSeries();
  TempDir dir;
  const std::string materialized_path = dir.File("materialized.csv");
  ASSERT_TRUE(WriteSeriesCsv(series, materialized_path).ok());

  const std::string streamed_path = dir.File("streamed.csv");
  SeriesCsvSink sink(streamed_path);
  ASSERT_TRUE(sink.status().ok());
  ASSERT_TRUE(ReplayToSink(series, &sink).ok());
  ASSERT_TRUE(sink.status().ok());

  EXPECT_EQ(Slurp(streamed_path), Slurp(materialized_path));
}

TEST(ExportTest, SeriesCsvSinkSurfacesOpenFailureAsRootCause) {
  SeriesCsvSink sink("/nonexistent_dir_xyz/out.csv");
  EXPECT_EQ(sink.status().code(), StatusCode::kIoError);
  // A bounded producer aborts at OnBegin with the IoError itself, not a
  // generic cancellation.
  EXPECT_EQ(ReplayToSink(SampleSeries(), &sink).code(),
            StatusCode::kIoError);
  EXPECT_EQ(sink.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace dangoron
