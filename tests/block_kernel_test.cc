#include "corr/block_kernel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "corr/pearson.h"
#include "engine/dangoron_engine.h"
#include "engine/naive_engine.h"
#include "sketch/basic_window_index.h"
#include "ts/generators.h"

namespace dangoron {
namespace {

// Random data with deliberately hostile windows: a dead (constant) sensor, a
// series that flatlines in some basic windows only, and an exact duplicate
// pair — every eps-guard and clamp path of the kernels gets exercised.
TimeSeriesMatrix HostileData(int64_t n, int64_t length, int64_t b,
                             uint64_t seed) {
  Rng rng(seed);
  TimeSeriesMatrix data = GenerateWhiteNoise(n, length, &rng);
  for (int64_t t = 0; t < length; ++t) {
    data.Set(0, t, 42.0);                    // dead sensor
    data.Set(2, t, data.Get(1, t));          // exact duplicate of series 1
    if ((t / b) % 3 == 1) {
      data.Set(3, t, -7.5);                  // flatlines every third window
    }
  }
  return data;
}

TEST(GramAccumulateTileTest, MatchesNaiveDotProducts) {
  const int64_t n = 7;
  const int64_t steps = 1200;  // crosses the internal time-chunk boundary
  Rng rng(11);
  std::vector<double> zt(static_cast<size_t>(steps * n));
  for (double& v : zt) {
    v = rng.NextGaussian();
  }
  std::vector<double> full(static_cast<size_t>(n * n), 0.0);
  GramAccumulateTile(zt.data(), n, 0, steps, 0, n, 0, n,
                     /*upper_only=*/false, full.data(), n);
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t c = 0; c < n; ++c) {
      double expected = 0.0;
      for (int64_t t = 0; t < steps; ++t) {
        expected += zt[static_cast<size_t>(t * n + r)] *
                    zt[static_cast<size_t>(t * n + c)];
      }
      EXPECT_NEAR(full[static_cast<size_t>(r * n + c)], expected, 1e-9)
          << "(" << r << ", " << c << ")";
    }
  }

  // upper_only leaves the diagonal and lower triangle untouched.
  std::vector<double> upper(static_cast<size_t>(n * n), -99.0);
  GramAccumulateTile(zt.data(), n, 0, steps, 0, n, 0, n,
                     /*upper_only=*/true, upper.data(), n);
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t c = 0; c < n; ++c) {
      if (c > r) {
        EXPECT_DOUBLE_EQ(upper[static_cast<size_t>(r * n + c)],
                         full[static_cast<size_t>(r * n + c)]);
      } else {
        EXPECT_EQ(upper[static_cast<size_t>(r * n + c)], -99.0);
      }
    }
  }
}

TEST(GramAccumulateTileTest, DisjointTimeRangesCompose) {
  const int64_t n = 5;
  const int64_t steps = 700;
  Rng rng(13);
  std::vector<double> zt(static_cast<size_t>(steps * n));
  for (double& v : zt) {
    v = rng.NextGaussian();
  }
  std::vector<double> whole(static_cast<size_t>(n * n), 0.0);
  GramAccumulateTile(zt.data(), n, 0, steps, 0, n, 0, n, false, whole.data(),
                     n);
  std::vector<double> pieces(static_cast<size_t>(n * n), 0.0);
  GramAccumulateTile(zt.data(), n, 0, 300, 0, n, 0, n, false, pieces.data(),
                     n, /*accumulate=*/true);
  GramAccumulateTile(zt.data(), n, 300, steps, 0, n, 0, n, false,
                     pieces.data(), n, /*accumulate=*/true);
  for (size_t v = 0; v < whole.size(); ++v) {
    EXPECT_NEAR(pieces[v], whole[v], 1e-9);
  }
}

TEST(NormalizedPanelsTest, MatchesWindowStatsAndZeroesDegenerates) {
  const int64_t n = 61;  // not a multiple of kCorrTile: real padding
  const int64_t b = 16;
  const int64_t nb = 7;
  TimeSeriesMatrix data = HostileData(n, nb * b, b, 17);
  const NormalizedPanels panels = BuildNormalizedPanels(data, b);
  ASSERT_EQ(panels.num_windows, nb);
  ASSERT_EQ(panels.num_tiles, (n + kCorrTile - 1) / kCorrTile);

  for (int64_t s = 0; s < n; ++s) {
    const auto stats = ComputeBasicWindowStats(data.Row(s), b);
    const int64_t tile = s / kCorrTile;
    const int64_t sp = s % kCorrTile;
    for (int64_t w = 0; w < nb; ++w) {
      const double mean = panels.mean[static_cast<size_t>(w * n + s)];
      const double sd = panels.stddev[static_cast<size_t>(w * n + s)];
      EXPECT_NEAR(mean, stats[static_cast<size_t>(w)].mean, 1e-10);
      EXPECT_NEAR(sd, stats[static_cast<size_t>(w)].stddev, 1e-10);
      const double* panel = panels.Panel(w, tile);
      double sum = 0.0;
      double sumsq = 0.0;
      for (int64_t t = 0; t < b; ++t) {
        const double z = panel[t * kCorrTile + sp];
        sum += z;
        sumsq += z * z;
      }
      if (sd == 0.0) {
        // Degenerate window: the z row must be exactly zero.
        EXPECT_EQ(sum, 0.0) << "s=" << s << " w=" << w;
        EXPECT_EQ(sumsq, 0.0);
      } else {
        EXPECT_NEAR(sum, 0.0, 1e-9);
        EXPECT_NEAR(sumsq, 1.0, 1e-9);  // unit centered sum of squares
      }
    }
  }

  // Padding columns past num_series stay exactly zero.
  const int64_t last_tile = panels.num_tiles - 1;
  for (int64_t w = 0; w < nb; ++w) {
    const double* panel = panels.Panel(w, last_tile);
    for (int64_t t = 0; t < b; ++t) {
      for (int64_t sp = n - last_tile * kCorrTile; sp < kCorrTile; ++sp) {
        EXPECT_EQ(panel[t * kCorrTile + sp], 0.0) << "w=" << w << " t=" << t;
      }
    }
  }

  // Parallel build is bit-identical.
  ThreadPool pool(4);
  const NormalizedPanels parallel = BuildNormalizedPanels(data, b, &pool);
  for (size_t v = 0; v < panels.values.size(); ++v) {
    EXPECT_EQ(panels.values[v], parallel.values[v]);
  }
}

// The core equivalence claim of the blocked build: identical sketch
// semantics as the scalar reference path, and per-window correlations equal
// to the two-pass PearsonNaive oracle — including eps-guarded windows.
TEST(BlockedIndexBuildTest, MatchesScalarPathAndPearsonNaive) {
  const int64_t n = 9;
  const int64_t b = 24;
  const int64_t nb = 12;
  TimeSeriesMatrix data = HostileData(n, nb * b, b, 23);

  BasicWindowIndexOptions blocked;
  blocked.basic_window = b;
  BasicWindowIndexOptions scalar = blocked;
  scalar.use_blocked_kernel = false;

  const auto blocked_index = BasicWindowIndex::Build(data, blocked);
  const auto scalar_index = BasicWindowIndex::Build(data, scalar);
  ASSERT_TRUE(blocked_index.ok());
  ASSERT_TRUE(scalar_index.ok());

  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      const int64_t p = BasicWindowIndex::PairId(i, j, n);
      const auto oracle =
          ComputeBasicWindowCorrelations(data.Row(i), data.Row(j), b);
      for (int64_t w = 0; w < nb; ++w) {
        EXPECT_NEAR(blocked_index->PairWindowCorrelation(p, w),
                    oracle[static_cast<size_t>(w)], 1e-9)
            << "pair (" << i << ", " << j << ") window " << w;
        EXPECT_NEAR(blocked_index->PairWindowCorrelation(p, w),
                    scalar_index->PairWindowCorrelation(p, w), 1e-9);
        EXPECT_NEAR(blocked_index->DotRange(p, w, w + 1),
                    scalar_index->DotRange(p, w, w + 1), 1e-7)
            << "pair (" << i << ", " << j << ") window " << w;
      }
      // Aligned range correlations (the engine hot path) against the
      // two-pass oracle over the raw columns.
      for (const auto& [lo, hi] : {std::pair<int64_t, int64_t>{0, nb},
                                   {2, 7},
                                   {nb - 3, nb}}) {
        const double expected =
            PearsonNaive(data.RowRange(i, lo * b, (hi - lo) * b),
                         data.RowRange(j, lo * b, (hi - lo) * b));
        EXPECT_NEAR(blocked_index->PairRangeCorrelation(p, lo, hi), expected,
                    1e-9)
            << "pair (" << i << ", " << j << ") range [" << lo << ", " << hi
            << ")";
      }
    }
  }
}

TEST(BlockedIndexBuildTest, ThreadedBuildIsBitIdentical) {
  // More series than one tile so several (window, tile) tasks exist.
  const int64_t n = 101;
  const int64_t b = 8;
  const int64_t nb = 6;
  Rng rng(29);
  TimeSeriesMatrix data = GenerateWhiteNoise(n, nb * b, &rng);
  BasicWindowIndexOptions options;
  options.basic_window = b;
  const auto sequential = BasicWindowIndex::Build(data, options);
  ASSERT_TRUE(sequential.ok());
  for (const int threads : {2, 5}) {
    ThreadPool pool(threads);
    const auto parallel = BasicWindowIndex::Build(data, options, &pool);
    ASSERT_TRUE(parallel.ok());
    for (int64_t p = 0; p < sequential->num_pairs(); ++p) {
      for (int64_t w = 0; w < nb; ++w) {
        EXPECT_DOUBLE_EQ(sequential->DotRange(p, w, w + 1),
                         parallel->DotRange(p, w, w + 1));
        EXPECT_DOUBLE_EQ(sequential->PairWindowCorrelation(p, w),
                         parallel->PairWindowCorrelation(p, w));
      }
    }
  }
}

TEST(ExactCorrelationMatrixTest, MatchesPearsonNaiveOnHostileData) {
  const int64_t n = 61;  // spans two kernel tiles
  const int64_t length = 200;
  TimeSeriesMatrix data = HostileData(n, length, 24, 31);
  const auto matrix = ExactCorrelationMatrix(data, 8, 144);
  ASSERT_TRUE(matrix.ok());
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      const double expected =
          PearsonNaive(data.RowRange(i, 8, 144), data.RowRange(j, 8, 144));
      EXPECT_NEAR((*matrix)[static_cast<size_t>(i * n + j)], expected, 1e-9)
          << "(" << i << ", " << j << ")";
    }
  }
}

// Engine-level acceptance: the new build path must not change which edges
// any engine reports, at any thread count.
TEST(EngineEdgeSetTest, UnchangedByBlockedBuildAcrossThreadCounts) {
  const int64_t n = 24;
  const int64_t b = 16;
  TimeSeriesMatrix data = HostileData(n, b * 40, b, 37);

  SlidingQuery query;
  query.start = 0;
  query.end = data.length();
  query.window = b * 8;
  query.step = b * 2;
  query.threshold = 0.35;
  query.absolute = true;

  // Oracle edge set from the two-pass PearsonNaive, directly off raw data —
  // deliberately NOT an engine, so the oracle shares no code with the
  // blocked kernels under test (NaiveEngine itself now routes through
  // ExactCorrelationMatrix).
  CorrelationMatrixSeries truth(query, n);
  for (int64_t k = 0; k < truth.num_windows(); ++k) {
    const int64_t window_start = query.start + k * query.step;
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = i + 1; j < n; ++j) {
        const double c =
            PearsonNaive(data.RowRange(i, window_start, query.window),
                         data.RowRange(j, window_start, query.window));
        if (query.IsEdge(c)) {
          truth.MutableWindow(k)->push_back(
              Edge{static_cast<int32_t>(i), static_cast<int32_t>(j), c});
        }
      }
    }
  }
  ASSERT_GT(truth.TotalEdges(), 0);

  // NaiveEngine (which routes through the blocked exact kernel) must agree
  // with the independent oracle: same edges, values within roundoff.
  NaiveEngine naive;
  ASSERT_TRUE(naive.Prepare(data).ok());
  const auto naive_result = naive.Query(query);
  ASSERT_TRUE(naive_result.ok());
  for (int64_t k = 0; k < truth.num_windows(); ++k) {
    const auto expected = truth.WindowEdges(k);
    const auto actual = naive_result->WindowEdges(k);
    ASSERT_EQ(actual.size(), expected.size()) << "window " << k;
    for (size_t e = 0; e < expected.size(); ++e) {
      EXPECT_EQ(actual[e].i, expected[e].i);
      EXPECT_EQ(actual[e].j, expected[e].j);
      EXPECT_NEAR(actual[e].value, expected[e].value, 1e-9);
    }
  }

  for (const int threads : {1, 2, 4}) {
    for (const bool jumping : {false, true}) {
      DangoronOptions options;
      options.basic_window = b;
      options.enable_jumping = jumping;
      options.num_threads = threads;
      DangoronEngine engine(options);
      ASSERT_TRUE(engine.Prepare(data).ok());
      const auto result = engine.Query(query);
      ASSERT_TRUE(result.ok());
      ASSERT_EQ(result->num_windows(), truth.num_windows());
      int64_t mismatched_cells = 0;
      for (int64_t k = 0; k < truth.num_windows(); ++k) {
        const auto expected = truth.WindowEdges(k);
        const auto actual = result->WindowEdges(k);
        if (!jumping) {
          // Incremental mode is exact: identical edge sets, equal values.
          ASSERT_EQ(actual.size(), expected.size())
              << "threads=" << threads << " window " << k;
          for (size_t e = 0; e < expected.size(); ++e) {
            EXPECT_EQ(actual[e].i, expected[e].i);
            EXPECT_EQ(actual[e].j, expected[e].j);
            EXPECT_NEAR(actual[e].value, expected[e].value, 1e-9);
          }
        } else {
          mismatched_cells += std::abs(static_cast<int64_t>(actual.size()) -
                                       static_cast<int64_t>(expected.size()));
        }
      }
      if (jumping) {
        // Jump mode is approximate by design; on this workload it must
        // still find the overwhelming majority of edges.
        EXPECT_LT(mismatched_cells, truth.TotalEdges() / 10)
            << "threads=" << threads;
      }
    }
  }
}

}  // namespace
}  // namespace dangoron
