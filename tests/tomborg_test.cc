#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "corr/pearson.h"
#include "linalg/decompositions.h"
#include "tomborg/correlation_spec.h"
#include "tomborg/tomborg.h"

namespace dangoron {
namespace {

// ----------------------------------------------------- Gamma / Beta draws --

TEST(SamplingTest, GammaMoments) {
  Rng rng(1);
  for (const double shape : {0.5, 1.0, 2.0, 7.5}) {
    double sum = 0.0;
    double sumsq = 0.0;
    const int trials = 60000;
    for (int t = 0; t < trials; ++t) {
      const double g = SampleGamma(shape, &rng);
      EXPECT_GE(g, 0.0);
      sum += g;
      sumsq += g * g;
    }
    const double mean = sum / trials;
    const double var = sumsq / trials - mean * mean;
    EXPECT_NEAR(mean, shape, 0.06 * std::max(1.0, shape)) << shape;
    EXPECT_NEAR(var, shape, 0.12 * std::max(1.0, shape)) << shape;
  }
}

TEST(SamplingTest, BetaMoments) {
  Rng rng(2);
  const double alpha = 2.0;
  const double beta = 5.0;
  double sum = 0.0;
  const int trials = 60000;
  for (int t = 0; t < trials; ++t) {
    const double b = SampleBeta(alpha, beta, &rng);
    EXPECT_GE(b, 0.0);
    EXPECT_LE(b, 1.0);
    sum += b;
  }
  EXPECT_NEAR(sum / trials, alpha / (alpha + beta), 0.01);
}

// -------------------------------------------------------- Target drawing --

TEST(DrawTargetTest, UnitDiagonalAndSymmetry) {
  Rng rng(3);
  CorrelationSpec spec;
  spec.family = CorrelationFamily::kUniform;
  spec.a = -0.5;
  spec.b = 0.9;
  const auto target = DrawTargetCorrelation(spec, 12, &rng);
  ASSERT_TRUE(target.ok());
  EXPECT_TRUE(target->IsSymmetric());
  for (int64_t i = 0; i < 12; ++i) {
    EXPECT_DOUBLE_EQ(target->At(i, i), 1.0);
    for (int64_t j = 0; j < 12; ++j) {
      EXPECT_LE(std::fabs(target->At(i, j)), 1.0);
    }
  }
  EXPECT_FALSE(DrawTargetCorrelation(spec, 1, &rng).ok());
}

TEST(DrawTargetTest, ConstantFamily) {
  Rng rng(4);
  CorrelationSpec spec;
  spec.family = CorrelationFamily::kConstant;
  spec.a = 0.42;
  const auto target = DrawTargetCorrelation(spec, 6, &rng);
  ASSERT_TRUE(target.ok());
  for (int64_t i = 0; i < 6; ++i) {
    for (int64_t j = i + 1; j < 6; ++j) {
      EXPECT_DOUBLE_EQ(target->At(i, j), 0.42);
    }
  }
}

TEST(DrawTargetTest, BlockFamilyStructure) {
  Rng rng(5);
  CorrelationSpec spec;
  spec.family = CorrelationFamily::kBlock;
  spec.a = 0.8;   // intra
  spec.b = 0.05;  // inter
  spec.blocks = 3;
  const auto target = DrawTargetCorrelation(spec, 9, &rng);
  ASSERT_TRUE(target.ok());
  // Series 0-2, 3-5, 6-8 form blocks.
  EXPECT_DOUBLE_EQ(target->At(0, 2), 0.8);
  EXPECT_DOUBLE_EQ(target->At(3, 5), 0.8);
  EXPECT_DOUBLE_EQ(target->At(0, 3), 0.05);
  EXPECT_DOUBLE_EQ(target->At(2, 8), 0.05);
}

TEST(DrawTargetTest, HubFamilyStructure) {
  Rng rng(6);
  CorrelationSpec spec;
  spec.family = CorrelationFamily::kHub;
  spec.a = 0.7;  // hub rows
  spec.b = 0.0;  // background
  spec.hubs = 2;
  const auto target = DrawTargetCorrelation(spec, 8, &rng);
  ASSERT_TRUE(target.ok());
  // Hubs at indices 0 and 4.
  EXPECT_DOUBLE_EQ(target->At(0, 1), 0.7);
  EXPECT_DOUBLE_EQ(target->At(4, 5), 0.7);
  EXPECT_DOUBLE_EQ(target->At(1, 2), 0.0);
}

TEST(DrawTargetTest, BetaFamilyRespectsRange) {
  Rng rng(7);
  CorrelationSpec spec;
  spec.family = CorrelationFamily::kBeta;
  spec.a = 2.0;
  spec.b = 2.0;
  spec.lo = 0.2;
  spec.hi = 0.6;
  const auto target = DrawTargetCorrelation(spec, 10, &rng);
  ASSERT_TRUE(target.ok());
  for (int64_t i = 0; i < 10; ++i) {
    for (int64_t j = i + 1; j < 10; ++j) {
      EXPECT_GE(target->At(i, j), 0.2);
      EXPECT_LE(target->At(i, j), 0.6);
    }
  }
}

TEST(RepairTest, OutputIsFactorizable) {
  Rng rng(8);
  CorrelationSpec spec;
  spec.family = CorrelationFamily::kUniform;
  spec.a = -0.9;
  spec.b = 0.9;
  const auto drawn = DrawTargetCorrelation(spec, 20, &rng);
  ASSERT_TRUE(drawn.ok());
  const auto repaired = RepairToCorrelationMatrix(*drawn);
  ASSERT_TRUE(repaired.ok());
  EXPECT_TRUE(CholeskyFactor(*repaired).ok());
  for (int64_t i = 0; i < 20; ++i) {
    EXPECT_NEAR(repaired->At(i, i), 1.0, 1e-9);
  }
}

// ------------------------------------------------------------- Envelopes --

TEST(EnvelopeTest, ShapesBehave) {
  const int64_t bins = 1000;
  // Pink decays with frequency.
  EXPECT_GT(EnvelopeMagnitude(SpectralEnvelope::kPink, 10, bins),
            EnvelopeMagnitude(SpectralEnvelope::kPink, 500, bins));
  // White is flat.
  EXPECT_DOUBLE_EQ(EnvelopeMagnitude(SpectralEnvelope::kWhite, 1, bins),
                   EnvelopeMagnitude(SpectralEnvelope::kWhite, 999, bins));
  // High-pass suppresses low frequencies.
  EXPECT_LT(EnvelopeMagnitude(SpectralEnvelope::kHighPass, 10, bins),
            EnvelopeMagnitude(SpectralEnvelope::kHighPass, 900, bins));
  // Seasonal peaks near its seasonal frequencies.
  EXPECT_GT(EnvelopeMagnitude(SpectralEnvelope::kSeasonal, 10, bins),
            EnvelopeMagnitude(SpectralEnvelope::kSeasonal, 400, bins));
}

// ------------------------------------------------------------- Pipeline --

TEST(TomborgTest, RejectsBadSpecs) {
  TomborgSpec spec;
  spec.num_series = 1;
  EXPECT_FALSE(GenerateTomborg(spec).ok());
  spec.num_series = 4;
  spec.length = 4;
  EXPECT_FALSE(GenerateTomborg(spec).ok());
}

TEST(TomborgTest, RealizesConstantTarget) {
  TomborgSpec spec;
  spec.num_series = 8;
  spec.length = 8192;
  spec.correlation.family = CorrelationFamily::kConstant;
  spec.correlation.a = 0.6;
  spec.seed = 11;
  const auto dataset = GenerateTomborg(spec);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->data.num_series(), 8);
  EXPECT_EQ(dataset->data.length(), 8192);

  const auto error = MeasureRealization(dataset->data, dataset->target);
  ASSERT_TRUE(error.ok());
  EXPECT_LT(error->max_abs, 0.08);
  EXPECT_LT(error->rms, 0.04);
}

TEST(TomborgTest, RealizationErrorShrinksWithLength) {
  TomborgSpec spec;
  spec.num_series = 6;
  spec.correlation.family = CorrelationFamily::kUniform;
  spec.correlation.a = -0.3;
  spec.correlation.b = 0.7;
  spec.seed = 13;

  spec.length = 512;
  const auto short_run = GenerateTomborg(spec);
  ASSERT_TRUE(short_run.ok());
  const auto short_error =
      MeasureRealization(short_run->data, short_run->target);
  ASSERT_TRUE(short_error.ok());

  spec.length = 16384;
  const auto long_run = GenerateTomborg(spec);
  ASSERT_TRUE(long_run.ok());
  const auto long_error = MeasureRealization(long_run->data, long_run->target);
  ASSERT_TRUE(long_error.ok());

  EXPECT_LT(long_error->rms, short_error->rms);
}

TEST(TomborgTest, EnvelopeSweepStillRealizesTarget) {
  // Correlation is envelope invariant in expectation: each envelope must
  // realize the same block target, with looser tolerance for kSeasonal
  // whose energy concentrates in few effective bins.
  for (const SpectralEnvelope envelope :
       {SpectralEnvelope::kWhite, SpectralEnvelope::kPink,
        SpectralEnvelope::kSeasonal, SpectralEnvelope::kHighPass}) {
    TomborgSpec spec;
    spec.num_series = 6;
    spec.length = 8192;
    spec.envelope = envelope;
    spec.correlation.family = CorrelationFamily::kBlock;
    spec.correlation.a = 0.75;
    spec.correlation.b = 0.1;
    spec.correlation.blocks = 2;
    spec.seed = 17;
    const auto dataset = GenerateTomborg(spec);
    ASSERT_TRUE(dataset.ok());
    const auto error = MeasureRealization(dataset->data, dataset->target);
    ASSERT_TRUE(error.ok());
    const double tolerance =
        envelope == SpectralEnvelope::kSeasonal ? 0.35 : 0.1;
    EXPECT_LT(error->max_abs, tolerance)
        << "envelope " << static_cast<int>(envelope);
  }
}

TEST(TomborgTest, SeriesAreZeroMean) {
  TomborgSpec spec;
  spec.num_series = 4;
  spec.length = 2048;
  spec.seed = 19;
  const auto dataset = GenerateTomborg(spec);
  ASSERT_TRUE(dataset.ok());
  for (int64_t s = 0; s < 4; ++s) {
    double mean = 0.0;
    for (const double v : dataset->data.Row(s)) {
      mean += v;
    }
    mean /= static_cast<double>(dataset->data.length());
    // DC coefficient is zero, so the sample mean is exactly ~0.
    EXPECT_NEAR(mean, 0.0, 1e-9);
  }
}

TEST(TomborgTest, DeterministicForSeed) {
  TomborgSpec spec;
  spec.num_series = 4;
  spec.length = 1024;
  spec.seed = 23;
  const auto a = GenerateTomborg(spec);
  const auto b = GenerateTomborg(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int64_t s = 0; s < 4; ++s) {
    for (int64_t t = 0; t < 1024; ++t) {
      EXPECT_DOUBLE_EQ(a->data.Get(s, t), b->data.Get(s, t));
    }
  }
}

TEST(TomborgTest, OddLengthWorks) {
  TomborgSpec spec;
  spec.num_series = 4;
  spec.length = 1001;  // exercises the Bluestein + odd-length iDFT path
  spec.correlation.family = CorrelationFamily::kConstant;
  spec.correlation.a = 0.5;
  spec.seed = 29;
  const auto dataset = GenerateTomborg(spec);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->data.length(), 1001);
  const auto error = MeasureRealization(dataset->data, dataset->target);
  ASSERT_TRUE(error.ok());
  EXPECT_LT(error->max_abs, 0.2);
}

}  // namespace
}  // namespace dangoron
