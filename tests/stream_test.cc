#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "engine/dangoron_engine.h"
#include "engine/window_sink.h"
#include "stream/streaming_builder.h"
#include "ts/generators.h"

namespace dangoron {
namespace {

StreamingOptions SmallOptions() {
  StreamingOptions options;
  options.basic_window = 8;
  options.window = 32;   // ns = 4
  options.step = 8;      // m = 1
  options.threshold = 0.7;
  return options;
}

TEST(StreamingBuilderTest, CreateValidation) {
  StreamingOptions options = SmallOptions();
  EXPECT_TRUE(StreamingNetworkBuilder::Create(4, options).ok());
  EXPECT_FALSE(StreamingNetworkBuilder::Create(1, options).ok());

  options.window = 30;  // not a multiple of b=8
  EXPECT_FALSE(StreamingNetworkBuilder::Create(4, options).ok());
  options = SmallOptions();
  options.step = 12;
  EXPECT_FALSE(StreamingNetworkBuilder::Create(4, options).ok());
  options = SmallOptions();
  options.basic_window = 0;
  EXPECT_FALSE(StreamingNetworkBuilder::Create(4, options).ok());
  options = SmallOptions();
  options.threshold = 2.0;
  EXPECT_FALSE(StreamingNetworkBuilder::Create(4, options).ok());
}

TEST(StreamingBuilderTest, AppendValidation) {
  auto builder = StreamingNetworkBuilder::Create(3, SmallOptions());
  ASSERT_TRUE(builder.ok());
  const std::vector<double> wrong_size = {1.0, 2.0};
  EXPECT_FALSE(builder->Append(wrong_size).ok());
  const std::vector<double> with_nan = {1.0, MissingValue(), 2.0};
  EXPECT_FALSE(builder->Append(with_nan).ok());
  const std::vector<double> good = {1.0, 2.0, 3.0};
  EXPECT_TRUE(builder->Append(good).ok());
  EXPECT_EQ(builder->columns_seen(), 1);
}

TEST(StreamingBuilderTest, NoSnapshotBeforeFirstFullWindow) {
  auto builder = StreamingNetworkBuilder::Create(2, SmallOptions());
  ASSERT_TRUE(builder.ok());
  Rng rng(1);
  std::vector<double> column(2);
  for (int64_t t = 0; t < 31; ++t) {  // one short of the window
    column[0] = rng.NextGaussian();
    column[1] = rng.NextGaussian();
    ASSERT_TRUE(builder->Append(column).ok());
  }
  EXPECT_EQ(builder->ReadySnapshots(), 0);
  EXPECT_FALSE(builder->PopSnapshot().ok());

  column[0] = rng.NextGaussian();
  column[1] = rng.NextGaussian();
  ASSERT_TRUE(builder->Append(column).ok());
  EXPECT_EQ(builder->ReadySnapshots(), 1);
}

TEST(StreamingBuilderTest, SnapshotIndexingAndCadence) {
  StreamingOptions options = SmallOptions();
  options.step = 16;  // m = 2
  auto builder = StreamingNetworkBuilder::Create(2, options);
  ASSERT_TRUE(builder.ok());
  Rng rng(2);
  std::vector<double> column(2);
  // 96 columns: windows at bw counts 4, 6, 8, ... -> columns 32, 48, ... 96.
  for (int64_t t = 0; t < 96; ++t) {
    column[0] = rng.NextGaussian();
    column[1] = rng.NextGaussian();
    ASSERT_TRUE(builder->Append(column).ok());
  }
  EXPECT_EQ(builder->ReadySnapshots(), 5);  // at columns 32,48,64,80,96
  for (int64_t expected = 0; expected < 5; ++expected) {
    auto snapshot = builder->PopSnapshot();
    ASSERT_TRUE(snapshot.ok());
    EXPECT_EQ(snapshot->window_index, expected);
    EXPECT_EQ(snapshot->start_column, expected * options.step);
  }
  EXPECT_EQ(builder->ReadySnapshots(), 0);
}

// The load-bearing property: streaming output == offline exact engine.
TEST(StreamingBuilderTest, MatchesOfflineEngineExactly) {
  ClimateSpec spec;
  spec.num_stations = 10;
  spec.num_hours = 24 * 40;
  spec.seed = 77;
  auto dataset = GenerateClimate(spec);
  ASSERT_TRUE(dataset.ok());
  const TimeSeriesMatrix& data = dataset->data;

  StreamingOptions options;
  options.basic_window = 24;
  options.window = 24 * 7;
  options.step = 24;
  options.threshold = 0.75;

  auto builder = StreamingNetworkBuilder::Create(data.num_series(), options);
  ASSERT_TRUE(builder.ok());
  ASSERT_TRUE(builder->AppendColumns(data, 0, data.length()).ok());

  DangoronOptions engine_options;
  engine_options.basic_window = 24;
  engine_options.enable_jumping = false;
  DangoronEngine engine(engine_options);
  ASSERT_TRUE(engine.Prepare(data).ok());
  SlidingQuery query;
  query.start = 0;
  query.end = data.length();
  query.window = options.window;
  query.step = options.step;
  query.threshold = options.threshold;
  auto offline = engine.Query(query);
  ASSERT_TRUE(offline.ok());

  ASSERT_EQ(builder->ReadySnapshots(), offline->num_windows());
  for (int64_t k = 0; k < offline->num_windows(); ++k) {
    auto snapshot = builder->PopSnapshot();
    ASSERT_TRUE(snapshot.ok());
    EXPECT_EQ(snapshot->window_index, k);
    const auto expected = offline->WindowEdges(k);
    ASSERT_EQ(snapshot->edges.size(), expected.size()) << "window " << k;
    for (size_t e = 0; e < expected.size(); ++e) {
      EXPECT_EQ(snapshot->edges[e].i, expected[e].i);
      EXPECT_EQ(snapshot->edges[e].j, expected[e].j);
      EXPECT_NEAR(snapshot->edges[e].value, expected[e].value, 1e-9)
          << "window " << k;
    }
  }
}

TEST(StreamingBuilderTest, IncrementalFeedMatchesBulkFeed) {
  Rng rng(5);
  TimeSeriesMatrix data = GenerateWhiteNoise(6, 24 * 20, &rng);

  StreamingOptions options;
  options.basic_window = 24;
  options.window = 24 * 5;
  options.step = 24 * 2;
  options.threshold = 0.0;  // dense: stresses the value path

  auto bulk = StreamingNetworkBuilder::Create(6, options);
  ASSERT_TRUE(bulk.ok());
  ASSERT_TRUE(bulk->AppendColumns(data, 0, data.length()).ok());

  auto piecewise = StreamingNetworkBuilder::Create(6, options);
  ASSERT_TRUE(piecewise.ok());
  int64_t position = 0;
  Rng chunk_rng(9);
  while (position < data.length()) {
    const int64_t chunk = std::min<int64_t>(
        data.length() - position, chunk_rng.NextInt(1, 50));
    ASSERT_TRUE(piecewise->AppendColumns(data, position, chunk).ok());
    position += chunk;
  }

  ASSERT_EQ(bulk->ReadySnapshots(), piecewise->ReadySnapshots());
  while (bulk->ReadySnapshots() > 0) {
    auto a = bulk->PopSnapshot();
    auto b = piecewise->PopSnapshot();
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->edges.size(), b->edges.size());
    for (size_t e = 0; e < a->edges.size(); ++e) {
      EXPECT_DOUBLE_EQ(a->edges[e].value, b->edges[e].value);
    }
  }
}

// Counts sink deliveries from the open-ended (no OnBegin) stream producer.
class CountingSink : public WindowSink {
 public:
  bool OnWindow(int64_t window_index, std::vector<Edge> edges) override {
    indices.push_back(window_index);
    edge_counts.push_back(static_cast<int64_t>(edges.size()));
    return accept;
  }
  bool accept = true;
  std::vector<int64_t> indices;
  std::vector<int64_t> edge_counts;
};

// EmitTo routes snapshots through the window pipeline instead of the
// internal ready queue: one buffer, no PopSnapshot double-buffering.
TEST(StreamingBuilderTest, EmitToStreamsWindowsWithoutQueueing) {
  Rng rng(7);
  TimeSeriesMatrix data = GenerateWhiteNoise(4, 32 * 4, &rng);
  StreamingOptions options = SmallOptions();
  options.threshold = 0.0;  // dense: every pair is an edge

  auto queued = StreamingNetworkBuilder::Create(4, options);
  ASSERT_TRUE(queued.ok());
  ASSERT_TRUE(queued->AppendColumns(data, 0, data.length()).ok());
  const int64_t expected_snapshots = queued->ReadySnapshots();
  ASSERT_GT(expected_snapshots, 2);

  auto streamed = StreamingNetworkBuilder::Create(4, options);
  ASSERT_TRUE(streamed.ok());
  CountingSink sink;
  streamed->EmitTo(&sink);
  ASSERT_TRUE(streamed->AppendColumns(data, 0, data.length()).ok());

  EXPECT_EQ(streamed->ReadySnapshots(), 0);  // the sink is the consumer
  ASSERT_EQ(static_cast<int64_t>(sink.indices.size()), expected_snapshots);
  for (int64_t k = 0; k < expected_snapshots; ++k) {
    auto snapshot = queued->PopSnapshot();
    ASSERT_TRUE(snapshot.ok());
    EXPECT_EQ(sink.indices[static_cast<size_t>(k)], snapshot->window_index);
    EXPECT_EQ(sink.edge_counts[static_cast<size_t>(k)],
              static_cast<int64_t>(snapshot->edges.size()));
  }
}

// A sink that cancels detaches: later snapshots queue internally again.
TEST(StreamingBuilderTest, CancellingSinkDetachesAndRequeues) {
  Rng rng(8);
  TimeSeriesMatrix data = GenerateWhiteNoise(3, 32 * 4, &rng);
  StreamingOptions options = SmallOptions();
  options.threshold = 0.0;

  auto builder = StreamingNetworkBuilder::Create(3, options);
  ASSERT_TRUE(builder.ok());
  CountingSink sink;
  sink.accept = false;  // cancel at the first delivery
  builder->EmitTo(&sink);
  ASSERT_TRUE(builder->AppendColumns(data, 0, data.length()).ok());

  EXPECT_EQ(sink.indices.size(), 1u);
  // The cancelled window belongs to the sink and is accounted for; every
  // snapshot after the detach is queued for PopSnapshot again.
  EXPECT_EQ(builder->sink_cancelled_window(), sink.indices[0]);
  EXPECT_GT(builder->ReadySnapshots(), 0);
  auto next = builder->PopSnapshot();
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->window_index, sink.indices[0] + 1);
}

TEST(StreamingBuilderTest, PartialTailIsBuffered) {
  auto builder = StreamingNetworkBuilder::Create(2, SmallOptions());
  ASSERT_TRUE(builder.ok());
  Rng rng(11);
  std::vector<double> column(2);
  // 35 columns = 4 full basic windows + 3 buffered ticks.
  for (int64_t t = 0; t < 35; ++t) {
    column[0] = rng.NextGaussian();
    column[1] = rng.NextGaussian();
    ASSERT_TRUE(builder->Append(column).ok());
  }
  EXPECT_EQ(builder->columns_seen(), 35);
  EXPECT_EQ(builder->ReadySnapshots(), 1);  // only the window at column 32
}

TEST(StreamingBuilderTest, FamilyPublishThresholdValidatedAndResetOnDetach) {
  Rng rng(13);
  TimeSeriesMatrix data = GenerateWhiteNoise(3, 32 * 4, &rng);
  StreamingOptions options = SmallOptions();
  options.threshold = 0.73;  // the off-grid alert threshold

  auto builder = StreamingNetworkBuilder::Create(3, options);
  ASSERT_TRUE(builder.ok());
  WindowResultCache cache(int64_t{1} << 20);

  // Out-of-range publish thresholds are rejected without touching the sink.
  EXPECT_FALSE(builder->PublishTo(&cache, 1, 1.5).ok());
  EXPECT_EQ(builder->ReadySnapshots(), 0);

  // Publish at the family grid value below the alert threshold: published
  // windows are evaluated at it (supersets of the alert edges).
  ASSERT_TRUE(builder->PublishTo(&cache, 1, 0.7).ok());
  ASSERT_TRUE(builder->AppendColumns(data, 0, data.length()).ok());
  const auto published = cache.Get(WindowKey::Make(1, 8, 4, 0, 0.7, false));
  ASSERT_NE(published, nullptr);
  for (const Edge& edge : *published) {
    EXPECT_GE(edge.value, 0.7);
  }

  // Detaching restores the builder's own threshold for queued snapshots.
  builder->PublishTo(nullptr, 1);
  ASSERT_TRUE(builder->AppendColumns(data, 0, data.length()).ok());
  ASSERT_GT(builder->ReadySnapshots(), 0);
  // Continue the detached builder's own numbering; its snapshots threshold
  // at 0.73 again: every reported edge clears the alert threshold.
  while (builder->ReadySnapshots() > 0) {
    auto snapshot = builder->PopSnapshot();
    ASSERT_TRUE(snapshot.ok());
    for (const Edge& edge : snapshot->edges) {
      EXPECT_TRUE(edge.value >= 0.73 || edge.value <= -0.73);
    }
  }
}

// Absolute-mode family publishing keys and evaluates |corr| >= grid.
TEST(StreamingBuilderTest, FamilyPublishAbsoluteMode) {
  Rng rng(14);
  TimeSeriesMatrix data = GenerateWhiteNoise(3, 32 * 4, &rng);
  StreamingOptions options = SmallOptions();
  options.threshold = 0.42;
  options.absolute = true;

  auto builder = StreamingNetworkBuilder::Create(3, options);
  ASSERT_TRUE(builder.ok());
  WindowResultCache cache(int64_t{1} << 20);
  EXPECT_FALSE(builder->PublishTo(&cache, 2, -0.1).ok());  // invalid when abs
  ASSERT_TRUE(builder->PublishTo(&cache, 2, 0.4).ok());
  ASSERT_TRUE(builder->AppendColumns(data, 0, data.length()).ok());
  const auto published = cache.Get(WindowKey::Make(2, 8, 4, 0, 0.4, true));
  ASSERT_NE(published, nullptr);
  for (const Edge& edge : *published) {
    EXPECT_TRUE(edge.value >= 0.4 || edge.value <= -0.4);
  }
}

}  // namespace
}  // namespace dangoron
