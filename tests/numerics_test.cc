// Numerical-robustness suite: the moment-form kernels used by the sketches
// are algebraically exact but can lose precision under large offsets or
// near-constant data; these tests pin the operating envelope the engines
// rely on (climate data: offsets ~1e2; finance: values ~1e-2).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "corr/pearson.h"
#include "engine/dangoron_engine.h"
#include "engine/naive_engine.h"
#include "sketch/basic_window_index.h"
#include "ts/generators.h"

namespace dangoron {
namespace {

// Adds `offset` to every value of both series and checks the kernels agree
// with the two-pass oracle within `tolerance`.
void CheckOffsetStability(double offset, double tolerance) {
  Rng rng(static_cast<uint64_t>(std::fabs(offset)) + 17);
  const int64_t length = 480;
  std::vector<double> x;
  std::vector<double> y;
  GenerateCorrelatedPair(length, 0.6, &rng, &x, &y);
  for (int64_t t = 0; t < length; ++t) {
    x[static_cast<size_t>(t)] += offset;
    y[static_cast<size_t>(t)] += offset;
  }
  const double oracle = PearsonNaive(x, y);

  // Moment form, directly.
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  for (int64_t t = 0; t < length; ++t) {
    sx += x[static_cast<size_t>(t)];
    sy += y[static_cast<size_t>(t)];
    sxx += x[static_cast<size_t>(t)] * x[static_cast<size_t>(t)];
    syy += y[static_cast<size_t>(t)] * y[static_cast<size_t>(t)];
    sxy += x[static_cast<size_t>(t)] * y[static_cast<size_t>(t)];
  }
  EXPECT_NEAR(PearsonFromMoments(static_cast<double>(length), sx, sy, sxx,
                                 syy, sxy),
              oracle, tolerance)
      << "offset " << offset;

  // Sketch path (what the engines actually execute).
  auto matrix = TimeSeriesMatrix::FromRows({x, y});
  ASSERT_TRUE(matrix.ok());
  BasicWindowIndexOptions options;
  options.basic_window = 24;
  const auto index = BasicWindowIndex::Build(*matrix, options);
  ASSERT_TRUE(index.ok());
  EXPECT_NEAR(index->PairRangeCorrelation(0, 0, length / 24), oracle,
              tolerance)
      << "offset " << offset;
}

TEST(NumericsTest, ModerateOffsetsAreExact) {
  // Climate-scale offsets (temperatures ~1e2): full precision expected.
  CheckOffsetStability(0.0, 1e-10);
  CheckOffsetStability(100.0, 1e-8);
  CheckOffsetStability(-273.15, 1e-8);
}

TEST(NumericsTest, LargeOffsetsDegradeGracefully) {
  // 1e6 offsets: moment cancellation costs ~12 of the 16 available digits,
  // leaving ~3 correct digits in the correlation — degraded but bounded,
  // and still far inside any thresholding use. (Data at such offsets
  // should be centered before ingestion; this pins the failure mode.)
  CheckOffsetStability(1e6, 5e-3);
}

TEST(NumericsTest, TinyScalesAreExact) {
  // Finance-scale values (~1e-2) must not lose precision.
  Rng rng(23);
  const int64_t length = 480;
  std::vector<double> x;
  std::vector<double> y;
  GenerateCorrelatedPair(length, 0.4, &rng, &x, &y);
  for (int64_t t = 0; t < length; ++t) {
    x[static_cast<size_t>(t)] *= 1e-2;
    y[static_cast<size_t>(t)] *= 1e-2;
  }
  const double oracle = PearsonNaive(x, y);
  auto matrix = TimeSeriesMatrix::FromRows({x, y});
  ASSERT_TRUE(matrix.ok());
  BasicWindowIndexOptions options;
  options.basic_window = 24;
  const auto index = BasicWindowIndex::Build(*matrix, options);
  ASSERT_TRUE(index.ok());
  EXPECT_NEAR(index->PairRangeCorrelation(0, 0, length / 24), oracle, 1e-10);
}

TEST(NumericsTest, NearConstantSeriesDoNotExplode) {
  // Variance 1e-16 relative to an offset of 1e2: the zero-variance guard
  // must kick in rather than dividing by a catastrophically cancelled
  // denominator.
  const int64_t length = 96;
  TimeSeriesMatrix data(2, length);
  Rng rng(29);
  for (int64_t t = 0; t < length; ++t) {
    data.Set(0, t, 100.0 + 1e-9 * rng.NextGaussian());
    data.Set(1, t, rng.NextGaussian());
  }
  BasicWindowIndexOptions options;
  options.basic_window = 24;
  const auto index = BasicWindowIndex::Build(data, options);
  ASSERT_TRUE(index.ok());
  const double c = index->PairRangeCorrelation(0, 0, length / 24);
  EXPECT_TRUE(std::isfinite(c));
  EXPECT_LE(std::fabs(c), 1.0);
}

TEST(NumericsTest, EngineResultsClampedToValidRange) {
  // Whatever roundoff happens inside the sketches, emitted edge values must
  // stay inside [-1, 1].
  Rng rng(31);
  TimeSeriesMatrix data = GenerateWhiteNoise(8, 24 * 20, &rng);
  // Make two rows identical: exact correlation 1 is the worst clamp case.
  for (int64_t t = 0; t < data.length(); ++t) {
    data.Set(1, t, data.Get(0, t));
  }
  SlidingQuery query;
  query.start = 0;
  query.end = data.length();
  query.window = 24 * 5;
  query.step = 24;
  query.threshold = 0.9;
  DangoronEngine engine;
  ASSERT_TRUE(engine.Prepare(data).ok());
  auto result = engine.Query(query);
  ASSERT_TRUE(result.ok());
  int64_t perfect_edges = 0;
  for (int64_t k = 0; k < result->num_windows(); ++k) {
    for (const Edge& edge : result->WindowEdges(k)) {
      EXPECT_LE(edge.value, 1.0);
      EXPECT_GE(edge.value, -1.0);
      perfect_edges += (edge.i == 0 && edge.j == 1) ? 1 : 0;
    }
  }
  // The identical pair is an edge in every window.
  EXPECT_EQ(perfect_edges, result->num_windows());
}

TEST(NumericsTest, LongSeriesPrefixSumsStayAccurate) {
  // A year of hourly data accumulates ~1e4 terms per prefix entry; compare
  // a far-range sketch correlation against the two-pass oracle.
  Rng rng(37);
  std::vector<double> x;
  std::vector<double> y;
  GenerateCorrelatedPair(24 * 365, 0.7, &rng, &x, &y);
  auto matrix = TimeSeriesMatrix::FromRows({x, y});
  ASSERT_TRUE(matrix.ok());
  BasicWindowIndexOptions options;
  options.basic_window = 24;
  const auto index = BasicWindowIndex::Build(*matrix, options);
  ASSERT_TRUE(index.ok());
  const int64_t nb = index->num_basic_windows();
  const double oracle =
      PearsonNaive(std::span<const double>(x).last(30 * 24),
                   std::span<const double>(y).last(30 * 24));
  EXPECT_NEAR(index->PairRangeCorrelation(0, nb - 30, nb), oracle, 1e-8);
}

}  // namespace
}  // namespace dangoron
