#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <set>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/failpoint.h"
#include "common/math_utils.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/thread_pool.h"

namespace dangoron {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = Status::InvalidArgument("bad value: ", 42);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad value: 42");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad value: 42");
}

TEST(StatusTest, FactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::DataLoss("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 7;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 7);
  EXPECT_EQ(*result, 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> result = Status::NotFound("missing");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

Result<int> HelperParsePositive(int v) {
  if (v <= 0) {
    return Status::InvalidArgument("not positive");
  }
  return v * 2;
}

Status HelperUseAssignOrReturn(int v, int* out) {
  ASSIGN_OR_RETURN(const int doubled, HelperParsePositive(v));
  *out = doubled;
  return Status::Ok();
}

TEST(ResultTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(HelperUseAssignOrReturn(5, &out).ok());
  EXPECT_EQ(out, 10);
  const Status status = HelperUseAssignOrReturn(-1, &out);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

// --------------------------------------------------------------- Strings --

TEST(StringsTest, SplitKeepsEmptyFields) {
  const std::vector<std::string> fields = Split("a,,b,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
  EXPECT_EQ(fields[3], "");
}

TEST(StringsTest, SplitWhitespaceDropsRuns) {
  const std::vector<std::string> fields =
      SplitWhitespace("  alpha \t beta\n gamma  ");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "alpha");
  EXPECT_EQ(fields[1], "beta");
  EXPECT_EQ(fields[2], "gamma");
}

TEST(StringsTest, TrimBothEnds) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t\n "), "");
  EXPECT_EQ(Trim("abc"), "abc");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("dangoron", "dan"));
  EXPECT_FALSE(StartsWith("dan", "dangoron"));
  EXPECT_TRUE(EndsWith("table.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", "table.csv"));
}

TEST(StringsTest, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.25").value(), 3.25);
  EXPECT_DOUBLE_EQ(ParseDouble(" -9999.0 ").value(), -9999.0);
  EXPECT_DOUBLE_EQ(ParseDouble("1e3").value(), 1000.0);
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("12abc").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
}

TEST(StringsTest, ParseInt64Strict) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64("-7").value(), -7);
  EXPECT_FALSE(ParseInt64("4.2").ok());
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("99999999999999999999999").ok());
}

TEST(StringsTest, StrFormatBasics) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
}

TEST(StringsTest, ThousandsSeparators) {
  EXPECT_EQ(WithThousandsSeparators(0), "0");
  EXPECT_EQ(WithThousandsSeparators(999), "999");
  EXPECT_EQ(WithThousandsSeparators(1000), "1,000");
  EXPECT_EQ(WithThousandsSeparators(1234567), "1,234,567");
  EXPECT_EQ(WithThousandsSeparators(-1234567), "-1,234,567");
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() != b.NextU64()) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BoundedIsUnbiasedEnough) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    ++counts[rng.NextBounded(10)];
  }
  for (const int count : counts) {
    EXPECT_NEAR(count, trials / 10, trials / 100);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0;
  double sumsq = 0.0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / trials, 0.0, 0.02);
  EXPECT_NEAR(sumsq / trials, 1.0, 0.02);
}

TEST(RngTest, NextIntCoversRangeInclusive) {
  Rng rng(23);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  rng.Shuffle(&shuffled);
  std::multiset<int> a(values.begin(), values.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkStreamsAreIndependentlySeeded) {
  Rng parent(31);
  Rng child_a = parent.Fork(0);
  Rng child_b = parent.Fork(1);
  EXPECT_NE(child_a.NextU64(), child_b.NextU64());
}

// ------------------------------------------------------------ Math utils --

TEST(MathTest, AlmostEqual) {
  EXPECT_TRUE(AlmostEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(AlmostEqual(1.0, 1.001));
  EXPECT_TRUE(AlmostEqual(1e12, 1e12 + 1.0, 1e-9, 1e-9));
}

TEST(MathTest, MeanAndVariance) {
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(values), 2.5);
  EXPECT_DOUBLE_EQ(PopulationVariance(values), 1.25);
  EXPECT_DOUBLE_EQ(PopulationStdDev(values), std::sqrt(1.25));
  EXPECT_DOUBLE_EQ(Mean(std::span<const double>()), 0.0);
}

TEST(MathTest, KahanSumSurvivesCancellation) {
  std::vector<double> values;
  values.push_back(1.0);
  for (int i = 0; i < 1000; ++i) {
    values.push_back(1e-16);
  }
  EXPECT_NEAR(Sum(values), 1.0 + 1000 * 1e-16, 1e-18);
}

TEST(MathTest, PowersOfTwo) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(1024));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(12));
  EXPECT_EQ(NextPowerOfTwo(1), 1);
  EXPECT_EQ(NextPowerOfTwo(5), 8);
  EXPECT_EQ(NextPowerOfTwo(1024), 1024);
  EXPECT_EQ(NextPowerOfTwo(1025), 2048);
}

TEST(MathTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(10, 5), 2);
  EXPECT_EQ(CeilDiv(11, 5), 3);
  EXPECT_EQ(CeilDiv(0, 5), 0);
}

TEST(MathTest, ClampCorrelation) {
  EXPECT_DOUBLE_EQ(ClampCorrelation(1.0000001), 1.0);
  EXPECT_DOUBLE_EQ(ClampCorrelation(-1.5), -1.0);
  EXPECT_DOUBLE_EQ(ClampCorrelation(0.5), 0.5);
}

// ------------------------------------------------------------ ThreadPool --

TEST(ThreadPoolTest, RunsAllScheduledTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllBlocks) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.ParallelFor(64, [&hits](int64_t block) {
    hits[static_cast<size_t>(block)].fetch_add(1);
  });
  for (const auto& hit : hits) {
    EXPECT_EQ(hit.load(), 1);
  }
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  int counter = 0;  // no atomics needed: must run on the calling thread
  pool.ParallelFor(10, [&counter](int64_t) { ++counter; });
  EXPECT_EQ(counter, 10);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, ZeroBlocksIsNoOp) {
  ThreadPool pool(2);
  bool touched = false;
  pool.ParallelFor(0, [&touched](int64_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPoolTest, AsyncReturnsValueThroughFuture) {
  ThreadPool pool(2);
  std::future<int> sum = pool.Async([] { return 40 + 2; });
  EXPECT_EQ(sum.get(), 42);
}

TEST(ThreadPoolTest, ParallelForIsReentrantFromPoolTasks) {
  // The serving layer runs whole queries as pool tasks that parallelize
  // their inner loops on the same pool; with more tasks than threads the
  // pre-rework global-counter ParallelFor would deadlock here.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  std::vector<std::future<void>> tasks;
  for (int t = 0; t < 8; ++t) {
    tasks.push_back(pool.Async([&pool, &total] {
      pool.ParallelFor(16, [&total](int64_t) { total.fetch_add(1); });
    }));
  }
  for (auto& task : tasks) {
    task.get();
  }
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ThreadPoolTest, NestedParallelForCoversAllCells) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(8 * 8);
  pool.ParallelFor(8, [&](int64_t outer) {
    pool.ParallelFor(8, [&, outer](int64_t inner) {
      hits[static_cast<size_t>(outer * 8 + inner)].fetch_add(1);
    });
  });
  for (const auto& hit : hits) {
    EXPECT_EQ(hit.load(), 1);
  }
}

// ---------------------------------------------------------- DeadlineToken --

TEST(DeadlineTokenTest, DefaultHasNoDeadline) {
  DeadlineToken token;
  EXPECT_FALSE(token.has_deadline());
  EXPECT_FALSE(token.expired());
  EXPECT_TRUE(std::isinf(token.remaining_ms()));
  EXPECT_EQ(token.deadline(), DeadlineToken::TimePoint::max());
}

TEST(DeadlineTokenTest, MaxTimePointMeansNone) {
  // The sentinel RequestDeadline produces round-trips to "no deadline".
  DeadlineToken token(DeadlineToken::TimePoint::max());
  EXPECT_FALSE(token.has_deadline());
}

TEST(DeadlineTokenTest, FutureDeadlineNotExpired) {
  DeadlineToken token = DeadlineToken::After(60'000);
  EXPECT_TRUE(token.has_deadline());
  EXPECT_FALSE(token.expired());
  EXPECT_GT(token.remaining_ms(), 0.0);
  EXPECT_LE(token.remaining_ms(), 60'000.0);
}

TEST(DeadlineTokenTest, PastDeadlineExpired) {
  DeadlineToken token(std::chrono::steady_clock::now() -
                      std::chrono::milliseconds(5));
  EXPECT_TRUE(token.has_deadline());
  EXPECT_TRUE(token.expired());
  EXPECT_LT(token.remaining_ms(), 0.0);
}

// -------------------------------------------------------------- Failpoint --

#if DANGORON_FAILPOINTS_ENABLED
constexpr bool kFailpointsCompiled = true;
#else
constexpr bool kFailpointsCompiled = false;
#endif

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kFailpointsCompiled) {
      GTEST_SKIP() << "failpoints compiled out (DANGORON_FAILPOINTS=OFF)";
    }
    FailpointRegistry::Instance().DisarmAll();
  }
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }
};

TEST_F(FailpointTest, DormantSiteFiresNothing) {
  EXPECT_TRUE(FailpointFire("test.dormant").ok());
  EXPECT_FALSE(FailpointFireWake("test.dormant"));
  Failpoint* fp = FailpointRegistry::Instance().GetOrCreate("test.dormant");
  EXPECT_FALSE(fp->armed());
  EXPECT_EQ(fp->hits(), 0);
}

TEST_F(FailpointTest, ErrorActionInjectsStatus) {
  Failpoint* fp = FailpointRegistry::Instance().GetOrCreate("test.error");
  ASSERT_TRUE(fp->Set("error:ioerror").ok());
  Status fired = fp->Fire();
  EXPECT_EQ(fired.code(), StatusCode::kIoError);
  EXPECT_NE(fired.message().find("test.error"), std::string::npos);
  fp->Disarm();
  EXPECT_TRUE(fp->Fire().ok());
}

TEST_F(FailpointTest, DefaultErrorCodeIsInternal) {
  Failpoint* fp = FailpointRegistry::Instance().GetOrCreate("test.default");
  ASSERT_TRUE(fp->Set("error").ok());
  EXPECT_EQ(fp->Fire().code(), StatusCode::kInternal);
}

TEST_F(FailpointTest, CountLimitAutoDisarms) {
  Failpoint* fp = FailpointRegistry::Instance().GetOrCreate("test.count");
  ASSERT_TRUE(fp->Set("error:resource_exhausted*2").ok());
  EXPECT_EQ(fp->Fire().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(fp->Fire().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(fp->Fire().ok());  // exhausted: dormant again
  EXPECT_FALSE(fp->armed());
  EXPECT_EQ(fp->hits(), 2);
}

TEST_F(FailpointTest, DelayActionSleepsThenOk) {
  Failpoint* fp = FailpointRegistry::Instance().GetOrCreate("test.delay");
  ASSERT_TRUE(fp->Set("delay:20*1").ok());
  const auto before = std::chrono::steady_clock::now();
  EXPECT_TRUE(fp->Fire().ok());
  const auto elapsed = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - before)
                           .count();
  EXPECT_GE(elapsed, 15.0);  // scheduler slop below, never above
}

TEST_F(FailpointTest, WakeActionOnlyThroughFireWake) {
  Failpoint* fp = FailpointRegistry::Instance().GetOrCreate("test.wake");
  ASSERT_TRUE(fp->Set("wake*1").ok());
  EXPECT_TRUE(fp->Fire().ok());  // error/delay channel ignores wake actions
  EXPECT_TRUE(fp->FireWake());
  EXPECT_FALSE(fp->FireWake());  // count consumed
}

TEST_F(FailpointTest, PercentIsDeterministicPerSite) {
  // The %P gate draws from a per-site PCG stream seeded by the site name:
  // two registries' same-named sites replay the same decisions. Here we
  // just pin down that 100% always fires and 1% mostly does not.
  Failpoint* always = FailpointRegistry::Instance().GetOrCreate("test.p100");
  ASSERT_TRUE(always->Set("error%100").ok());
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(always->Fire().ok());
  }
  Failpoint* rare = FailpointRegistry::Instance().GetOrCreate("test.p1");
  ASSERT_TRUE(rare->Set("error%1").ok());
  int fired = 0;
  for (int i = 0; i < 200; ++i) {
    if (!rare->Fire().ok()) {
      ++fired;
    }
  }
  EXPECT_LT(fired, 30);  // ~2 expected; 30 would be a broken gate
}

TEST_F(FailpointTest, RejectsMalformedSpecs) {
  Failpoint* fp = FailpointRegistry::Instance().GetOrCreate("test.bad");
  EXPECT_FALSE(fp->Set("explode").ok());
  EXPECT_FALSE(fp->Set("error:nosuchcode").ok());
  EXPECT_FALSE(fp->Set("delay").ok());       // delay wants :ms
  EXPECT_FALSE(fp->Set("error*0").ok());     // count must be > 0
  EXPECT_FALSE(fp->Set("error%0").ok());     // percent in [1, 100]
  EXPECT_FALSE(fp->Set("error%101").ok());
  EXPECT_FALSE(fp->armed());
}

TEST_F(FailpointTest, ConfigureArmsMultipleSites) {
  ASSERT_TRUE(FailpointRegistry::Instance()
                  .Configure("test.a=error:cancelled;test.b=wake")
                  .ok());
  EXPECT_EQ(FailpointFire("test.a").code(), StatusCode::kCancelled);
  EXPECT_TRUE(FailpointFireWake("test.b"));
  EXPECT_EQ(FailpointRegistry::Instance().ArmedSites().size(), 2u);
  FailpointRegistry::Instance().DisarmAll();
  EXPECT_TRUE(FailpointRegistry::Instance().ArmedSites().empty());
  EXPECT_FALSE(FailpointsArmed());
}

TEST_F(FailpointTest, ArmedFlagTracksGlobally) {
  EXPECT_FALSE(FailpointsArmed());
  Failpoint* fp = FailpointRegistry::Instance().GetOrCreate("test.flag");
  ASSERT_TRUE(fp->Set("delay:0").ok());
  EXPECT_TRUE(FailpointsArmed());
  fp->Disarm();
  EXPECT_FALSE(FailpointsArmed());
}

TEST_F(FailpointTest, MacrosRouteThroughRegistry) {
  ASSERT_TRUE(FailpointRegistry::Instance()
                  .Configure("test.macro=error:deadline_exceeded*1")
                  .ok());
  auto guarded = []() -> Status {
    DANGORON_FAILPOINT("test.macro");
    return Status::Ok();
  };
  EXPECT_EQ(guarded().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(guarded().ok());  // single charge consumed
}

}  // namespace
}  // namespace dangoron
