#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "corr/pearson.h"
#include "ts/generators.h"

namespace dangoron {
namespace {

// ----------------------------------------------------------- Elementary --

TEST(Ar1Test, StationaryMomentsAndAutocorrelation) {
  Rng rng(1);
  const double phi = 0.8;
  const std::vector<double> series = GenerateAr1(50000, phi, &rng);
  double mean = 0.0;
  for (const double v : series) {
    mean += v;
  }
  mean /= static_cast<double>(series.size());
  EXPECT_NEAR(mean, 0.0, 0.05);

  double var = 0.0;
  double lag1 = 0.0;
  for (size_t t = 0; t + 1 < series.size(); ++t) {
    var += (series[t] - mean) * (series[t] - mean);
    lag1 += (series[t] - mean) * (series[t + 1] - mean);
  }
  EXPECT_NEAR(var / static_cast<double>(series.size()), 1.0, 0.05);
  EXPECT_NEAR(lag1 / var, phi, 0.03);
}

TEST(Ar1Test, EdgeCases) {
  Rng rng(2);
  EXPECT_TRUE(GenerateAr1(0, 0.5, &rng).empty());
  const std::vector<double> one = GenerateAr1(1, 0.5, &rng);
  EXPECT_EQ(one.size(), 1u);
}

TEST(RandomWalkTest, VarianceGrowsLinearly) {
  Rng rng(3);
  double sum_sq_end = 0.0;
  const int trials = 300;
  const int64_t length = 100;
  for (int trial = 0; trial < trials; ++trial) {
    const std::vector<double> walk = GenerateRandomWalk(length, &rng);
    sum_sq_end += walk.back() * walk.back();
  }
  EXPECT_NEAR(sum_sq_end / trials, static_cast<double>(length),
              15.0);  // ~3 sigma
}

TEST(CorrelatedPairTest, RealizesTargetCorrelation) {
  Rng rng(4);
  for (const double rho : {-0.9, -0.3, 0.0, 0.5, 0.95}) {
    std::vector<double> x, y;
    GenerateCorrelatedPair(20000, rho, &rng, &x, &y);
    EXPECT_NEAR(PearsonNaive(x, y), rho, 0.03) << "rho=" << rho;
  }
}

TEST(WhiteNoiseTest, PairsAreUncorrelated) {
  Rng rng(5);
  TimeSeriesMatrix matrix = GenerateWhiteNoise(4, 20000, &rng);
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = i + 1; j < 4; ++j) {
      EXPECT_NEAR(PearsonNaive(matrix.Row(i), matrix.Row(j)), 0.0, 0.03);
    }
  }
}

// --------------------------------------------------------------- Climate --

TEST(ClimateTest, ShapeNamesAndValidation) {
  ClimateSpec spec;
  spec.num_stations = 6;
  spec.num_hours = 24 * 10;
  const auto dataset = GenerateClimate(spec);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->data.num_series(), 6);
  EXPECT_EQ(dataset->data.length(), 240);
  EXPECT_EQ(dataset->stations.size(), 6u);
  EXPECT_EQ(dataset->data.SeriesName(0), "10000");

  ClimateSpec bad = spec;
  bad.num_stations = 0;
  EXPECT_FALSE(GenerateClimate(bad).ok());
  bad = spec;
  bad.missing_fraction = 1.5;
  EXPECT_FALSE(GenerateClimate(bad).ok());
  bad = spec;
  bad.weather_persistence = 1.0;
  EXPECT_FALSE(GenerateClimate(bad).ok());
}

TEST(ClimateTest, DeterministicForSeed) {
  ClimateSpec spec;
  spec.num_stations = 4;
  spec.num_hours = 100;
  const auto a = GenerateClimate(spec);
  const auto b = GenerateClimate(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int64_t s = 0; s < 4; ++s) {
    for (int64_t t = 0; t < 100; ++t) {
      EXPECT_DOUBLE_EQ(a->data.Get(s, t), b->data.Get(s, t));
    }
  }
}

TEST(ClimateTest, NearbyStationsMoreCorrelatedThanDistant) {
  ClimateSpec spec;
  spec.num_stations = 24;
  spec.num_hours = 24 * 120;
  spec.seasonal_amplitude = 0.0;  // isolate the weather field
  spec.diurnal_amplitude = 0.0;
  spec.seed = 77;
  const auto dataset = GenerateClimate(spec);
  ASSERT_TRUE(dataset.ok());

  // Average correlation of the 20 closest vs the 20 farthest pairs.
  struct PairDistance {
    double distance;
    double correlation;
  };
  std::vector<PairDistance> pairs;
  for (int64_t i = 0; i < spec.num_stations; ++i) {
    for (int64_t j = i + 1; j < spec.num_stations; ++j) {
      const auto& si = dataset->stations[static_cast<size_t>(i)];
      const auto& sj = dataset->stations[static_cast<size_t>(j)];
      const double dx = si.longitude - sj.longitude;
      const double dy = si.latitude - sj.latitude;
      pairs.push_back({std::sqrt(dx * dx + dy * dy),
                       PearsonNaive(dataset->data.Row(i),
                                    dataset->data.Row(j))});
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const PairDistance& a, const PairDistance& b) {
              return a.distance < b.distance;
            });
  double close_mean = 0.0;
  double far_mean = 0.0;
  const size_t k = 20;
  for (size_t p = 0; p < k; ++p) {
    close_mean += pairs[p].correlation;
    far_mean += pairs[pairs.size() - 1 - p].correlation;
  }
  EXPECT_GT(close_mean / k, far_mean / k + 0.1);
}

TEST(ClimateTest, SharedCyclesRaiseAllCorrelations) {
  // With strong seasonal cycles every station pair correlates highly over a
  // long range — the regime in which Dangoron's above-threshold stability
  // thrives on the real data.
  ClimateSpec spec;
  spec.num_stations = 8;
  spec.num_hours = 24 * 200;
  spec.seasonal_amplitude = 15.0;
  spec.weather_stddev = 2.0;
  spec.seed = 31;
  const auto dataset = GenerateClimate(spec);
  ASSERT_TRUE(dataset.ok());
  double min_corr = 1.0;
  for (int64_t i = 0; i < 8; ++i) {
    for (int64_t j = i + 1; j < 8; ++j) {
      min_corr = std::min(min_corr, PearsonNaive(dataset->data.Row(i),
                                                 dataset->data.Row(j)));
    }
  }
  EXPECT_GT(min_corr, 0.5);
}

TEST(ClimateTest, MissingFractionRespected) {
  ClimateSpec spec;
  spec.num_stations = 4;
  spec.num_hours = 24 * 50;
  spec.missing_fraction = 0.1;
  const auto dataset = GenerateClimate(spec);
  ASSERT_TRUE(dataset.ok());
  const double fraction =
      static_cast<double>(dataset->data.CountMissing()) /
      static_cast<double>(spec.num_stations * spec.num_hours);
  EXPECT_NEAR(fraction, 0.1, 0.02);
}

// ------------------------------------------------------------------ fMRI --

TEST(FmriTest, ShapeAndRegions) {
  FmriSpec spec;
  spec.nx = 4;
  spec.ny = 4;
  spec.nz = 2;
  spec.num_regions = 4;
  spec.num_timepoints = 300;
  const auto dataset = GenerateFmri(spec);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->data.num_series(), 32);
  EXPECT_EQ(dataset->data.length(), 300);
  EXPECT_EQ(dataset->voxel_region.size(), 32u);
  for (const int64_t region : dataset->voxel_region) {
    EXPECT_GE(region, 0);
    EXPECT_LT(region, 4);
  }
  EXPECT_FALSE([&] {
    FmriSpec bad = spec;
    bad.num_regions = 0;
    return GenerateFmri(bad).ok();
  }());
}

TEST(FmriTest, SameRegionVoxelsCorrelateMore) {
  FmriSpec spec;
  spec.nx = 4;
  spec.ny = 4;
  spec.nz = 2;
  spec.num_regions = 4;
  spec.num_timepoints = 1500;
  spec.num_task_blocks = 0;  // isolate region structure
  spec.seed = 5;
  const auto dataset = GenerateFmri(spec);
  ASSERT_TRUE(dataset.ok());

  double same_sum = 0.0;
  int64_t same_count = 0;
  double cross_sum = 0.0;
  int64_t cross_count = 0;
  const int64_t n = dataset->data.num_series();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      const double c =
          PearsonNaive(dataset->data.Row(i), dataset->data.Row(j));
      if (dataset->voxel_region[static_cast<size_t>(i)] ==
          dataset->voxel_region[static_cast<size_t>(j)]) {
        same_sum += c;
        ++same_count;
      } else {
        cross_sum += c;
        ++cross_count;
      }
    }
  }
  EXPECT_GT(same_sum / same_count, cross_sum / cross_count + 0.2);
}

TEST(FmriTest, TaskBlocksCoupleRegions) {
  FmriSpec spec;
  spec.nx = 4;
  spec.ny = 4;
  spec.nz = 2;
  spec.num_regions = 4;
  spec.num_timepoints = 1200;
  spec.num_task_blocks = 1;
  spec.task_block_length = 400;
  spec.seed = 9;
  const auto dataset = GenerateFmri(spec);
  ASSERT_TRUE(dataset.ok());
  ASSERT_EQ(dataset->task_blocks.size(), 1u);
  const auto& block = dataset->task_blocks[0];
  ASSERT_NE(block.region_a, block.region_b);

  // Pick one voxel from each coupled region and compare correlation inside
  // vs outside the block.
  int64_t va = -1;
  int64_t vb = -1;
  for (int64_t v = 0; v < dataset->data.num_series(); ++v) {
    if (dataset->voxel_region[static_cast<size_t>(v)] == block.region_a &&
        va < 0) {
      va = v;
    }
    if (dataset->voxel_region[static_cast<size_t>(v)] == block.region_b &&
        vb < 0) {
      vb = v;
    }
  }
  ASSERT_GE(va, 0);
  ASSERT_GE(vb, 0);
  const double inside = PearsonNaive(
      dataset->data.RowRange(va, block.start, block.end - block.start),
      dataset->data.RowRange(vb, block.start, block.end - block.start));
  // Outside: use the longest complement segment.
  const int64_t before = block.start;
  const int64_t after = spec.num_timepoints - block.end;
  const int64_t out_start = before >= after ? 0 : block.end;
  const int64_t out_len = std::max(before, after);
  const double outside =
      out_len > 10 ? PearsonNaive(dataset->data.RowRange(va, out_start, out_len),
                                  dataset->data.RowRange(vb, out_start, out_len))
                   : 0.0;
  EXPECT_GT(inside, outside + 0.15);
}

// --------------------------------------------------------------- Finance --

TEST(FinanceTest, ShapeAndRegimes) {
  FinanceSpec spec;
  spec.num_assets = 8;
  spec.num_steps = 500;
  const auto dataset = GenerateFinance(spec);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->returns.num_series(), 8);
  EXPECT_EQ(dataset->returns.length(), 500);
  EXPECT_EQ(dataset->crisis_regime.size(), 500u);

  FinanceSpec bad = spec;
  bad.crisis_correlation = 1.0;
  EXPECT_FALSE(GenerateFinance(bad).ok());
}

TEST(FinanceTest, CrisisRaisesCorrelation) {
  FinanceSpec spec;
  spec.num_assets = 10;
  spec.num_steps = 20000;
  spec.calm_correlation = 0.1;
  spec.crisis_correlation = 0.8;
  spec.crisis_entry_probability = 0.01;
  spec.crisis_exit_probability = 0.01;  // roughly half the time in crisis
  spec.seed = 3;
  const auto dataset = GenerateFinance(spec);
  ASSERT_TRUE(dataset.ok());

  // Split columns by regime and compare pooled pair correlations.
  std::vector<int64_t> calm_columns;
  std::vector<int64_t> crisis_columns;
  for (int64_t t = 0; t < spec.num_steps; ++t) {
    (dataset->crisis_regime[static_cast<size_t>(t)] == 1 ? crisis_columns
                                                         : calm_columns)
        .push_back(t);
  }
  ASSERT_GT(calm_columns.size(), 1000u);
  ASSERT_GT(crisis_columns.size(), 1000u);

  auto pooled_corr = [&](const std::vector<int64_t>& columns) {
    double sum = 0.0;
    int64_t count = 0;
    for (int64_t i = 0; i < 5; ++i) {
      for (int64_t j = i + 1; j < 5; ++j) {
        std::vector<double> x(columns.size());
        std::vector<double> y(columns.size());
        for (size_t c = 0; c < columns.size(); ++c) {
          x[c] = dataset->returns.Get(i, columns[c]);
          y[c] = dataset->returns.Get(j, columns[c]);
        }
        sum += PearsonNaive(x, y);
        ++count;
      }
    }
    return sum / static_cast<double>(count);
  };
  EXPECT_NEAR(pooled_corr(calm_columns), spec.calm_correlation, 0.08);
  EXPECT_NEAR(pooled_corr(crisis_columns), spec.crisis_correlation, 0.08);
}

}  // namespace
}  // namespace dangoron
