#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "corr/pearson.h"
#include "ts/generators.h"

namespace dangoron {
namespace {

TEST(PearsonNaiveTest, PerfectPositiveCorrelation) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonNaive(x, y), 1.0, 1e-12);
}

TEST(PearsonNaiveTest, PerfectNegativeCorrelation) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonNaive(x, y), -1.0, 1e-12);
}

TEST(PearsonNaiveTest, ShiftAndScaleInvariance) {
  Rng rng(1);
  std::vector<double> x(200);
  std::vector<double> y(200);
  for (size_t t = 0; t < x.size(); ++t) {
    x[t] = rng.NextGaussian();
    y[t] = rng.NextGaussian();
  }
  const double base = PearsonNaive(x, y);
  std::vector<double> x_scaled(x.size());
  for (size_t t = 0; t < x.size(); ++t) {
    x_scaled[t] = 3.5 * x[t] + 100.0;
  }
  EXPECT_NEAR(PearsonNaive(x_scaled, y), base, 1e-10);
  // Negative scale flips the sign.
  for (size_t t = 0; t < x.size(); ++t) {
    x_scaled[t] = -2.0 * x[t];
  }
  EXPECT_NEAR(PearsonNaive(x_scaled, y), -base, 1e-10);
}

TEST(PearsonNaiveTest, ConstantSeriesGivesZero) {
  const std::vector<double> x = {3, 3, 3, 3};
  const std::vector<double> y = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(PearsonNaive(x, y), 0.0);
  EXPECT_DOUBLE_EQ(PearsonNaive(y, x), 0.0);
  EXPECT_DOUBLE_EQ(PearsonNaive(x, x), 0.0);
}

TEST(PearsonNaiveTest, EmptyGivesZero) {
  EXPECT_DOUBLE_EQ(
      PearsonNaive(std::span<const double>(), std::span<const double>()), 0.0);
}

TEST(PearsonNaiveTest, SymmetricInArguments) {
  Rng rng(2);
  std::vector<double> x(64);
  std::vector<double> y(64);
  for (size_t t = 0; t < x.size(); ++t) {
    x[t] = rng.NextGaussian();
    y[t] = rng.NextGaussian();
  }
  EXPECT_DOUBLE_EQ(PearsonNaive(x, y), PearsonNaive(y, x));
}

TEST(PearsonMomentsTest, AgreesWithNaive) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const int64_t n = rng.NextInt(4, 300);
    std::vector<double> x(static_cast<size_t>(n));
    std::vector<double> y(static_cast<size_t>(n));
    double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
    for (int64_t t = 0; t < n; ++t) {
      x[static_cast<size_t>(t)] = rng.NextGaussian(5.0, 2.0);
      y[static_cast<size_t>(t)] = rng.NextGaussian(-1.0, 0.5);
      sx += x[static_cast<size_t>(t)];
      sy += y[static_cast<size_t>(t)];
      sxx += x[static_cast<size_t>(t)] * x[static_cast<size_t>(t)];
      syy += y[static_cast<size_t>(t)] * y[static_cast<size_t>(t)];
      sxy += x[static_cast<size_t>(t)] * y[static_cast<size_t>(t)];
    }
    EXPECT_NEAR(PearsonFromMoments(static_cast<double>(n), sx, sy, sxx, syy,
                                   sxy),
                PearsonNaive(x, y), 1e-8)
        << "trial " << trial;
  }
}

TEST(PearsonMomentsTest, ClampsRoundoffOverflow) {
  // Construct moments that algebraically exceed 1 by roundoff.
  const double n = 4;
  const double sx = 10, sxx = 30;  // x = (1,2,3,4): var = 5
  EXPECT_LE(PearsonFromMoments(n, sx, sx, sxx, sxx, sxx + 1e-9), 1.0);
}

// Eq. 1 property sweep: the literal paper combination must equal the naive
// Pearson for every geometry.
class Eq1Sweep
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>> {};

TEST_P(Eq1Sweep, MatchesNaivePearson) {
  const int64_t b = std::get<0>(GetParam());
  const int64_t ns = std::get<1>(GetParam());
  const int64_t length = b * ns;
  Rng rng(static_cast<uint64_t>(1000 + b * 37 + ns));
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> x;
    std::vector<double> y;
    // Mix of correlated and independent pairs across trials.
    const double rho = trial / 5.0;
    GenerateCorrelatedPair(length, rho, &rng, &x, &y);

    const std::vector<BasicWindowStats> stats_x =
        ComputeBasicWindowStats(x, b);
    const std::vector<BasicWindowStats> stats_y =
        ComputeBasicWindowStats(y, b);
    const std::vector<double> c = ComputeBasicWindowCorrelations(x, y, b);
    ASSERT_EQ(static_cast<int64_t>(stats_x.size()), ns);

    const double combined = CombinePearsonEq1(b, stats_x, stats_y, c);
    const double exact = PearsonNaive(x, y);
    EXPECT_NEAR(combined, exact, 1e-9)
        << "b=" << b << " ns=" << ns << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Eq1Sweep,
    ::testing::Combine(::testing::Values<int64_t>(2, 4, 8, 24, 50),
                       ::testing::Values<int64_t>(1, 2, 5, 12, 30)));

TEST(CombineEq1Test, SingleWindowReducesToWindowCorrelation) {
  Rng rng(17);
  std::vector<double> x, y;
  GenerateCorrelatedPair(48, 0.6, &rng, &x, &y);
  const auto sx = ComputeBasicWindowStats(x, 48);
  const auto sy = ComputeBasicWindowStats(y, 48);
  const auto c = ComputeBasicWindowCorrelations(x, y, 48);
  EXPECT_NEAR(CombinePearsonEq1(48, sx, sy, c), c[0], 1e-12);
}

TEST(CombineEq1Test, ZeroVarianceReturnsZero) {
  const std::vector<BasicWindowStats> flat = {{1.0, 0.0}, {1.0, 0.0}};
  const std::vector<double> c = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(CombinePearsonEq1(4, flat, flat, c), 0.0);
}

// ----------------------------------------------------- Sliding moments ---

TEST(SlidingMomentsTest, MatchesNaiveAcrossSlides) {
  Rng rng(23);
  const int64_t length = 500;
  std::vector<double> x, y;
  GenerateCorrelatedPair(length, 0.4, &rng, &x, &y);

  const int64_t window = 64;
  const int64_t step = 8;
  SlidingPairMoments moments(x, y, 0, window);
  for (int64_t start = 0; start + window <= length; start += step) {
    if (start > 0) {
      moments.Slide(step);
    }
    const double expected = PearsonNaive(
        std::span<const double>(x).subspan(static_cast<size_t>(start),
                                           static_cast<size_t>(window)),
        std::span<const double>(y).subspan(static_cast<size_t>(start),
                                           static_cast<size_t>(window)));
    EXPECT_NEAR(moments.Correlation(), expected, 1e-7) << "start=" << start;
  }
}

TEST(SlidingMomentsTest, VariableStepSizes) {
  Rng rng(29);
  std::vector<double> x, y;
  GenerateCorrelatedPair(300, -0.3, &rng, &x, &y);
  SlidingPairMoments moments(x, y, 0, 50);
  int64_t position = 0;
  for (const int64_t step : {1, 3, 10, 25, 50}) {
    moments.Slide(step);
    position += step;
    const double expected = PearsonNaive(
        std::span<const double>(x).subspan(static_cast<size_t>(position), 50),
        std::span<const double>(y).subspan(static_cast<size_t>(position), 50));
    EXPECT_NEAR(moments.Correlation(), expected, 1e-7);
  }
}

// ----------------------------------------------- Exact matrix reference --

TEST(ExactMatrixTest, DiagonalIsOneAndSymmetric) {
  Rng rng(31);
  TimeSeriesMatrix data = GenerateWhiteNoise(6, 128, &rng);
  const auto matrix = ExactCorrelationMatrix(data, 0, 128);
  ASSERT_TRUE(matrix.ok());
  for (int64_t i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ((*matrix)[static_cast<size_t>(i * 6 + i)], 1.0);
    for (int64_t j = 0; j < 6; ++j) {
      EXPECT_DOUBLE_EQ((*matrix)[static_cast<size_t>(i * 6 + j)],
                       (*matrix)[static_cast<size_t>(j * 6 + i)]);
    }
  }
}

TEST(ExactMatrixTest, WindowingSelectsColumns) {
  // Two series correlated in the first half, anti-correlated in the second.
  const int64_t half = 64;
  TimeSeriesMatrix data(2, 2 * half);
  Rng rng(37);
  for (int64_t t = 0; t < half; ++t) {
    const double v = rng.NextGaussian();
    data.Set(0, t, v);
    data.Set(1, t, v);
  }
  for (int64_t t = half; t < 2 * half; ++t) {
    const double v = rng.NextGaussian();
    data.Set(0, t, v);
    data.Set(1, t, -v);
  }
  const auto first = ExactCorrelationMatrix(data, 0, half);
  const auto second = ExactCorrelationMatrix(data, half, half);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_NEAR((*first)[1], 1.0, 1e-9);
  EXPECT_NEAR((*second)[1], -1.0, 1e-9);
}

TEST(ExactMatrixTest, ParallelMatchesSequential) {
  Rng rng(41);
  TimeSeriesMatrix data = GenerateWhiteNoise(20, 256, &rng);
  const auto sequential = ExactCorrelationMatrix(data, 16, 128);
  ThreadPool pool(4);
  const auto parallel = ExactCorrelationMatrix(data, 16, 128, &pool);
  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(parallel.ok());
  for (size_t i = 0; i < sequential->size(); ++i) {
    EXPECT_DOUBLE_EQ((*sequential)[i], (*parallel)[i]);
  }
}

TEST(ExactMatrixTest, RejectsBadWindows) {
  Rng rng(43);
  TimeSeriesMatrix data = GenerateWhiteNoise(3, 64, &rng);
  EXPECT_FALSE(ExactCorrelationMatrix(data, -1, 10).ok());
  EXPECT_FALSE(ExactCorrelationMatrix(data, 0, 0).ok());
  EXPECT_FALSE(ExactCorrelationMatrix(data, 60, 10).ok());
}

}  // namespace
}  // namespace dangoron
