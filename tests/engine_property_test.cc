// Randomized cross-engine property suite: for arbitrary workloads and query
// geometries, the exact engines must agree bit-for-bit on edge sets, engine
// counters must satisfy their accounting invariants, and the approximate
// modes must degrade only in the documented directions.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "engine/dangoron_engine.h"
#include "engine/naive_engine.h"
#include "engine/tsubasa_engine.h"
#include "network/accuracy.h"
#include "ts/generators.h"

namespace dangoron {
namespace {

// A workload with both strong positive and strong *negative* structure:
// three groups — a positively coupled factor group, an anti-coupled group
// (negative loading on the same factor), and independent noise.
TimeSeriesMatrix SignedWorkload(int64_t n, int64_t length, uint64_t seed) {
  Rng rng(seed);
  TimeSeriesMatrix data(n, length);
  std::vector<double> factor(static_cast<size_t>(length));
  // A slowly varying factor keeps window correlations persistent, which
  // exercises the jump machinery in both directions.
  double state = rng.NextGaussian();
  for (double& v : factor) {
    state = 0.9 * state + std::sqrt(1 - 0.81) * rng.NextGaussian();
    v = state;
  }
  for (int64_t s = 0; s < n; ++s) {
    const int group = static_cast<int>(s % 3);
    const double loading = group == 0 ? 0.9 : (group == 1 ? -0.9 : 0.0);
    const double noise = std::sqrt(1.0 - loading * loading);
    std::span<double> row = data.Row(s);
    for (int64_t t = 0; t < length; ++t) {
      row[static_cast<size_t>(t)] =
          loading * factor[static_cast<size_t>(t)] +
          noise * rng.NextGaussian();
    }
  }
  return data;
}

struct FuzzCase {
  uint64_t seed;
  int64_t n;
  int64_t b;
  int64_t window_bw;
  int64_t step_bw;
  double beta;
  bool absolute;
};

class EngineFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(EngineFuzz, ExactEnginesAgreeAndCountersAddUp) {
  const FuzzCase fuzz = GetParam();
  const int64_t length = fuzz.b * (fuzz.window_bw + 12 * fuzz.step_bw + 3);
  const TimeSeriesMatrix data = SignedWorkload(fuzz.n, length, fuzz.seed);

  SlidingQuery query;
  query.start = 0;
  query.end = (length / fuzz.b) * fuzz.b;
  query.window = fuzz.window_bw * fuzz.b;
  query.step = fuzz.step_bw * fuzz.b;
  query.threshold = fuzz.beta;
  query.absolute = fuzz.absolute;
  ASSERT_TRUE(query.Validate(data.length()).ok());

  NaiveEngine naive;
  ASSERT_TRUE(naive.Prepare(data).ok());
  const auto truth = naive.Query(query);
  ASSERT_TRUE(truth.ok());

  TsubasaOptions tsubasa_options;
  tsubasa_options.basic_window = fuzz.b;
  TsubasaEngine tsubasa(tsubasa_options);
  ASSERT_TRUE(tsubasa.Prepare(data).ok());
  const auto tsubasa_result = tsubasa.Query(query);
  ASSERT_TRUE(tsubasa_result.ok());

  DangoronOptions exact_options;
  exact_options.basic_window = fuzz.b;
  exact_options.enable_jumping = false;
  DangoronEngine exact(exact_options);
  ASSERT_TRUE(exact.Prepare(data).ok());
  const auto exact_result = exact.Query(query);
  ASSERT_TRUE(exact_result.ok());

  // Exact engines agree on edge sets and values.
  ASSERT_EQ(truth->num_windows(), exact_result->num_windows());
  for (int64_t k = 0; k < truth->num_windows(); ++k) {
    const auto a = truth->WindowEdges(k);
    const auto b = tsubasa_result->WindowEdges(k);
    const auto c = exact_result->WindowEdges(k);
    ASSERT_EQ(a.size(), b.size()) << "window " << k;
    ASSERT_EQ(a.size(), c.size()) << "window " << k;
    for (size_t e = 0; e < a.size(); ++e) {
      EXPECT_EQ(a[e].i, b[e].i);
      EXPECT_EQ(a[e].j, c[e].j);
      EXPECT_NEAR(a[e].value, b[e].value, 1e-8);
      EXPECT_NEAR(a[e].value, c[e].value, 1e-8);
      // Every reported edge actually clears the threshold rule.
      EXPECT_TRUE(query.IsEdge(a[e].value));
    }
  }

  // Jump mode: counters must account for every cell; edges are a subset of
  // the exact edges with identical values (jump mode only skips).
  DangoronOptions jump_options;
  jump_options.basic_window = fuzz.b;
  jump_options.enable_jumping = true;
  DangoronEngine jump(jump_options);
  ASSERT_TRUE(jump.Prepare(data).ok());
  const auto jump_result = jump.Query(query);
  ASSERT_TRUE(jump_result.ok());
  const EngineStats& stats = jump.stats();
  EXPECT_EQ(stats.cells_evaluated + stats.cells_jumped +
                stats.cells_horizontal_pruned,
            stats.cells_total);
  EXPECT_EQ(stats.cells_total,
            query.NumWindows() * fuzz.n * (fuzz.n - 1) / 2);

  const auto accuracy = CompareSeries(*truth, *jump_result);
  ASSERT_TRUE(accuracy.ok());
  EXPECT_EQ(accuracy->total.false_positives, 0)
      << "jump mode must never invent edges";
  EXPECT_LT(accuracy->total.value_rmse, 1e-9)
      << "reported edges carry exact values";
  // Soft floor: these fuzz geometries include tiny windows (down to 30
  // samples) where single-window correlations are noisy and some flicker
  // mispruning is expected; the paper-bar (>0.9) is asserted on the
  // evaluation workload in engine_test. The hard guarantees above (no
  // false positives, exact values) hold regardless.
  EXPECT_GT(accuracy->total.F1(), 0.8);
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, EngineFuzz,
    ::testing::Values(
        FuzzCase{101, 6, 6, 5, 1, 0.6, false},
        FuzzCase{102, 9, 8, 4, 2, 0.75, false},
        FuzzCase{103, 12, 12, 6, 1, 0.8, false},
        FuzzCase{104, 7, 10, 8, 4, 0.5, false},
        FuzzCase{105, 6, 6, 5, 1, 0.6, true},
        FuzzCase{106, 9, 8, 4, 2, 0.75, true},
        FuzzCase{107, 12, 12, 6, 1, 0.8, true},
        FuzzCase{108, 7, 10, 8, 4, 0.5, true},
        FuzzCase{109, 15, 4, 10, 5, 0.9, true},
        FuzzCase{110, 5, 24, 3, 1, 0.7, true}));

TEST(AbsoluteModeTest, AntiCorrelatedEdgesAreFound) {
  // Two series at corr ~ -0.9: invisible to the plain threshold, an edge in
  // absolute mode.
  Rng rng(7);
  std::vector<double> x, y;
  GenerateCorrelatedPair(24 * 20, -0.9, &rng, &x, &y);
  auto matrix = TimeSeriesMatrix::FromRows({x, y});
  ASSERT_TRUE(matrix.ok());

  SlidingQuery query;
  query.start = 0;
  query.end = matrix->length();
  query.window = 24 * 5;
  query.step = 24;
  query.threshold = 0.6;

  DangoronEngine engine;
  ASSERT_TRUE(engine.Prepare(*matrix).ok());

  query.absolute = false;
  auto plain = engine.Query(query);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->TotalEdges(), 0);

  query.absolute = true;
  auto absolute = engine.Query(query);
  ASSERT_TRUE(absolute.ok());
  EXPECT_EQ(absolute->TotalEdges(), absolute->num_windows());
  for (int64_t k = 0; k < absolute->num_windows(); ++k) {
    ASSERT_EQ(absolute->WindowEdges(k).size(), 1u);
    EXPECT_LT(absolute->WindowEdges(k)[0].value, -0.6);
  }
}

TEST(AbsoluteModeTest, ValidateRejectsNegativeBeta) {
  SlidingQuery query;
  query.start = 0;
  query.end = 100;
  query.window = 10;
  query.step = 10;
  query.threshold = -0.5;
  query.absolute = true;
  EXPECT_FALSE(query.Validate(100).ok());
  query.absolute = false;
  EXPECT_TRUE(query.Validate(100).ok());
}

TEST(AbsoluteModeTest, AboveJumpHoldsNegativeEdges) {
  // A persistently anti-correlated pair: above-jumping in absolute mode
  // must keep emitting the (negative) edge across skipped windows.
  Rng rng(13);
  std::vector<double> x, y;
  GenerateCorrelatedPair(24 * 40, -0.995, &rng, &x, &y);
  auto matrix = TimeSeriesMatrix::FromRows({x, y});
  ASSERT_TRUE(matrix.ok());

  SlidingQuery query;
  query.start = 0;
  query.end = matrix->length();
  query.window = 24 * 20;
  query.step = 24;
  query.threshold = 0.6;
  query.absolute = true;

  DangoronOptions options;
  options.enable_jumping = true;
  options.enable_above_jumping = true;
  DangoronEngine engine(options);
  ASSERT_TRUE(engine.Prepare(*matrix).ok());
  auto result = engine.Query(query);
  ASSERT_TRUE(result.ok());
  for (int64_t k = 0; k < result->num_windows(); ++k) {
    ASSERT_EQ(result->WindowEdges(k).size(), 1u) << "window " << k;
    EXPECT_LT(result->WindowEdges(k)[0].value, -0.6);
  }
  EXPECT_GT(engine.stats().cells_jumped, 0);
}

TEST(ThreadDeterminismFuzz, ManyThreadCountsSameResult) {
  const TimeSeriesMatrix data = SignedWorkload(10, 24 * 30, 31);
  SlidingQuery query;
  query.start = 0;
  query.end = data.length();
  query.window = 24 * 6;
  query.step = 24;
  query.threshold = 0.5;
  query.absolute = true;

  std::vector<CorrelationMatrixSeries> results;
  for (const int threads : {1, 2, 3, 8}) {
    DangoronOptions options;
    options.num_threads = threads;
    DangoronEngine engine(options);
    ASSERT_TRUE(engine.Prepare(data).ok());
    auto result = engine.Query(query);
    ASSERT_TRUE(result.ok());
    results.push_back(std::move(*result));
  }
  for (size_t r = 1; r < results.size(); ++r) {
    ASSERT_EQ(results[0].num_windows(), results[r].num_windows());
    for (int64_t k = 0; k < results[0].num_windows(); ++k) {
      const auto a = results[0].WindowEdges(k);
      const auto b = results[r].WindowEdges(k);
      ASSERT_EQ(a.size(), b.size());
      for (size_t e = 0; e < a.size(); ++e) {
        EXPECT_EQ(a[e].i, b[e].i);
        EXPECT_EQ(a[e].j, b[e].j);
        EXPECT_DOUBLE_EQ(a[e].value, b[e].value);
      }
    }
  }
}

TEST(FailureInjectionTest, ConstantSeriesNeverEdges) {
  // A dead sensor (constant output) must produce no edges in any engine,
  // not NaNs or crashes.
  Rng rng(17);
  TimeSeriesMatrix data = GenerateWhiteNoise(4, 24 * 10, &rng);
  for (int64_t t = 0; t < data.length(); ++t) {
    data.Set(0, t, 5.0);  // dead sensor
  }
  SlidingQuery query;
  query.start = 0;
  query.end = data.length();
  query.window = 24 * 3;
  query.step = 24;
  // Strictly positive threshold: the dead sensor's conventional corr of 0
  // must stay below it (at exactly 0.0 the convention itself would match).
  query.threshold = 0.1;
  for (const bool absolute : {false, true}) {
    query.absolute = absolute;
    NaiveEngine naive;
    ASSERT_TRUE(naive.Prepare(data).ok());
    auto truth = naive.Query(query);
    ASSERT_TRUE(truth.ok());
    DangoronEngine dangoron;
    ASSERT_TRUE(dangoron.Prepare(data).ok());
    auto result = dangoron.Query(query);
    ASSERT_TRUE(result.ok());
    for (int64_t k = 0; k < result->num_windows(); ++k) {
      for (const Edge& edge : result->WindowEdges(k)) {
        EXPECT_NE(edge.i, 0) << "dead sensor produced an edge";
        EXPECT_TRUE(std::isfinite(edge.value));
      }
      ASSERT_EQ(result->WindowEdges(k).size(),
                truth->WindowEdges(k).size());
    }
  }
}

TEST(FailureInjectionTest, ExtremeThresholds) {
  const TimeSeriesMatrix data = SignedWorkload(6, 24 * 12, 19);
  SlidingQuery query;
  query.start = 0;
  query.end = data.length();
  query.window = 24 * 4;
  query.step = 24;

  DangoronEngine engine;
  ASSERT_TRUE(engine.Prepare(data).ok());

  // threshold -1: every pair of every window is an edge.
  query.threshold = -1.0;
  auto all = engine.Query(query);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->TotalEdges(), all->num_windows() * 6 * 5 / 2);

  // threshold 1: nothing but exact-1 correlations qualify (none here).
  query.threshold = 1.0;
  auto none = engine.Query(query);
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none->TotalEdges(), 0);
}

}  // namespace
}  // namespace dangoron
