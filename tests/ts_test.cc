#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/rng.h"
#include "ts/csv.h"
#include "ts/resample.h"
#include "ts/time_series_matrix.h"

namespace dangoron {
namespace {

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("dangoron_ts_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string File(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  std::filesystem::path path_;
};

// ------------------------------------------------------ TimeSeriesMatrix --

TEST(TimeSeriesMatrixTest, ConstructionAndAccess) {
  TimeSeriesMatrix matrix(3, 5);
  EXPECT_EQ(matrix.num_series(), 3);
  EXPECT_EQ(matrix.length(), 5);
  EXPECT_FALSE(matrix.empty());
  matrix.Set(1, 2, 42.0);
  EXPECT_DOUBLE_EQ(matrix.Get(1, 2), 42.0);
  EXPECT_DOUBLE_EQ(matrix.Row(1)[2], 42.0);
  EXPECT_DOUBLE_EQ(matrix.Get(0, 0), 0.0);
}

TEST(TimeSeriesMatrixTest, FromRowsValidation) {
  EXPECT_FALSE(TimeSeriesMatrix::FromRows({}).ok());
  EXPECT_FALSE(TimeSeriesMatrix::FromRows({{}}).ok());
  EXPECT_FALSE(TimeSeriesMatrix::FromRows({{1.0, 2.0}, {1.0}}).ok());
  const auto ok = TimeSeriesMatrix::FromRows({{1.0, 2.0}, {3.0, 4.0}});
  ASSERT_TRUE(ok.ok());
  EXPECT_DOUBLE_EQ(ok->Get(1, 0), 3.0);
}

TEST(TimeSeriesMatrixTest, NamesDefaultAndCustom) {
  TimeSeriesMatrix matrix(2, 3);
  EXPECT_EQ(matrix.SeriesName(0), "series0");
  EXPECT_FALSE(matrix.SetSeriesNames({"only-one"}).ok());
  ASSERT_TRUE(matrix.SetSeriesNames({"alpha", "beta"}).ok());
  EXPECT_EQ(matrix.SeriesName(1), "beta");
}

TEST(TimeSeriesMatrixTest, SliceColumns) {
  TimeSeriesMatrix matrix(2, 6);
  for (int64_t t = 0; t < 6; ++t) {
    matrix.Set(0, t, static_cast<double>(t));
    matrix.Set(1, t, static_cast<double>(10 * t));
  }
  const auto slice = matrix.SliceColumns(2, 3);
  ASSERT_TRUE(slice.ok());
  EXPECT_EQ(slice->length(), 3);
  EXPECT_DOUBLE_EQ(slice->Get(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(slice->Get(1, 2), 40.0);
  EXPECT_FALSE(matrix.SliceColumns(4, 5).ok());
  EXPECT_FALSE(matrix.SliceColumns(-1, 2).ok());
}

TEST(TimeSeriesMatrixTest, SelectSeries) {
  TimeSeriesMatrix matrix(3, 2);
  matrix.Set(2, 0, 7.0);
  ASSERT_TRUE(matrix.SetSeriesNames({"a", "b", "c"}).ok());
  const auto selected = matrix.SelectSeries({2, 0});
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected->num_series(), 2);
  EXPECT_DOUBLE_EQ(selected->Get(0, 0), 7.0);
  EXPECT_EQ(selected->SeriesName(0), "c");
  EXPECT_FALSE(matrix.SelectSeries({3}).ok());
}

TEST(TimeSeriesMatrixTest, MissingValues) {
  TimeSeriesMatrix matrix(1, 4);
  EXPECT_EQ(matrix.CountMissing(), 0);
  matrix.Set(0, 1, MissingValue());
  EXPECT_TRUE(IsMissing(matrix.Get(0, 1)));
  EXPECT_FALSE(IsMissing(matrix.Get(0, 0)));
  EXPECT_EQ(matrix.CountMissing(), 1);
}

// ------------------------------------------------------------------- CSV --

TEST(CsvTest, RowLayoutRoundTrip) {
  TempDir dir;
  TimeSeriesMatrix matrix(2, 4);
  for (int64_t t = 0; t < 4; ++t) {
    matrix.Set(0, t, static_cast<double>(t) + 0.5);
    matrix.Set(1, t, static_cast<double>(-t));
  }
  matrix.Set(1, 2, MissingValue());
  ASSERT_TRUE(matrix.SetSeriesNames({"north", "south"}).ok());
  const std::string path = dir.File("round.csv");
  ASSERT_TRUE(WriteCsv(matrix, path).ok());

  const auto loaded = LoadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_series(), 2);
  EXPECT_EQ(loaded->length(), 4);
  EXPECT_EQ(loaded->SeriesName(0), "north");
  EXPECT_DOUBLE_EQ(loaded->Get(0, 3), 3.5);
  EXPECT_TRUE(IsMissing(loaded->Get(1, 2)));
}

TEST(CsvTest, ColumnLayoutWithHeader) {
  TempDir dir;
  const std::string path = dir.File("columns.csv");
  {
    std::ofstream out(path);
    out << "s1,s2\n1.0,4.0\n2.0,5.0\n3.0,6.0\n";
  }
  CsvOptions options;
  options.has_header = true;
  options.series_in_rows = false;
  const auto loaded = LoadCsv(path, options);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_series(), 2);
  EXPECT_EQ(loaded->length(), 3);
  EXPECT_EQ(loaded->SeriesName(1), "s2");
  EXPECT_DOUBLE_EQ(loaded->Get(1, 2), 6.0);
}

TEST(CsvTest, Errors) {
  TempDir dir;
  EXPECT_FALSE(LoadCsv(dir.File("nonexistent.csv")).ok());

  const std::string ragged = dir.File("ragged.csv");
  {
    std::ofstream out(ragged);
    out << "1,2,3\n4,5\n";
  }
  EXPECT_FALSE(LoadCsv(ragged).ok());

  const std::string empty = dir.File("empty.csv");
  { std::ofstream out(empty); }
  EXPECT_FALSE(LoadCsv(empty).ok());
}

// -------------------------------------------------------------- Resample --

TEST(InterpolateTest, FillsInteriorGapsLinearly) {
  TimeSeriesMatrix matrix(1, 5);
  matrix.Set(0, 0, 0.0);
  matrix.Set(0, 1, MissingValue());
  matrix.Set(0, 2, MissingValue());
  matrix.Set(0, 3, 3.0);
  matrix.Set(0, 4, 4.0);
  ASSERT_TRUE(InterpolateMissing(&matrix).ok());
  EXPECT_DOUBLE_EQ(matrix.Get(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(matrix.Get(0, 2), 2.0);
  EXPECT_EQ(matrix.CountMissing(), 0);
}

TEST(InterpolateTest, ExtendsEdges) {
  TimeSeriesMatrix matrix(1, 4);
  matrix.Set(0, 0, MissingValue());
  matrix.Set(0, 1, 5.0);
  matrix.Set(0, 2, 7.0);
  matrix.Set(0, 3, MissingValue());
  ASSERT_TRUE(InterpolateMissing(&matrix).ok());
  EXPECT_DOUBLE_EQ(matrix.Get(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(matrix.Get(0, 3), 7.0);
}

TEST(InterpolateTest, AllMissingSeriesIsError) {
  TimeSeriesMatrix matrix(1, 3);
  for (int64_t t = 0; t < 3; ++t) {
    matrix.Set(0, t, MissingValue());
  }
  EXPECT_FALSE(InterpolateMissing(&matrix).ok());
}

TEST(AggregateTest, MeanBuckets) {
  TimeSeriesMatrix matrix(1, 7);
  for (int64_t t = 0; t < 7; ++t) {
    matrix.Set(0, t, static_cast<double>(t));
  }
  const auto aggregated = AggregateMean(matrix, 3);
  ASSERT_TRUE(aggregated.ok());
  EXPECT_EQ(aggregated->length(), 2);  // tail dropped
  EXPECT_DOUBLE_EQ(aggregated->Get(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(aggregated->Get(0, 1), 4.0);
}

TEST(AggregateTest, NanAwareBuckets) {
  TimeSeriesMatrix matrix(1, 4);
  matrix.Set(0, 0, 2.0);
  matrix.Set(0, 1, MissingValue());
  matrix.Set(0, 2, MissingValue());
  matrix.Set(0, 3, MissingValue());
  const auto aggregated = AggregateMean(matrix, 2);
  ASSERT_TRUE(aggregated.ok());
  EXPECT_DOUBLE_EQ(aggregated->Get(0, 0), 2.0);     // single observed value
  EXPECT_TRUE(IsMissing(aggregated->Get(0, 1)));    // all-missing bucket
}

TEST(AggregateTest, Errors) {
  TimeSeriesMatrix matrix(1, 4);
  EXPECT_FALSE(AggregateMean(matrix, 0).ok());
  EXPECT_FALSE(AggregateMean(matrix, 5).ok());
}

TEST(AlignOffsetsTest, ShiftsToCommonRange) {
  // Series 0 starts at t=0, series 1 at t=2 (its column 0 is instant 2).
  TimeSeriesMatrix matrix(2, 6);
  for (int64_t t = 0; t < 6; ++t) {
    matrix.Set(0, t, static_cast<double>(t));        // value = instant
    matrix.Set(1, t, static_cast<double>(t) + 2.0);  // value = instant
  }
  const auto aligned = AlignOffsets(matrix, {0, 2});
  ASSERT_TRUE(aligned.ok());
  EXPECT_EQ(aligned->length(), 4);  // overlap [2, 6)
  // After alignment both rows should report the same instants.
  for (int64_t t = 0; t < 4; ++t) {
    EXPECT_DOUBLE_EQ(aligned->Get(0, t), aligned->Get(1, t));
  }
}

TEST(AlignOffsetsTest, Errors) {
  TimeSeriesMatrix matrix(2, 4);
  EXPECT_FALSE(AlignOffsets(matrix, {0}).ok());
  EXPECT_FALSE(AlignOffsets(matrix, {0, 100}).ok());  // no overlap
}

TEST(DropSparseTest, DropsBeyondThreshold) {
  TimeSeriesMatrix matrix(3, 4);
  matrix.Set(1, 0, MissingValue());
  matrix.Set(1, 1, MissingValue());
  matrix.Set(1, 2, MissingValue());
  matrix.Set(2, 0, MissingValue());
  const auto kept = DropSparseSeries(matrix, 0.3);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept->num_series(), 2);  // series 1 (75% missing) dropped

  // Dropping everything is an error.
  TimeSeriesMatrix all_missing(1, 2);
  all_missing.Set(0, 0, MissingValue());
  all_missing.Set(0, 1, MissingValue());
  EXPECT_FALSE(DropSparseSeries(all_missing, 0.5).ok());
}

}  // namespace
}  // namespace dangoron
