#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "network/accuracy.h"
#include "network/network.h"
#include "network/union_find.h"

namespace dangoron {
namespace {

// ------------------------------------------------------------ Union-find --

TEST(UnionFindTest, BasicMerges) {
  UnionFind forest(5);
  EXPECT_FALSE(forest.Connected(0, 1));
  EXPECT_TRUE(forest.Union(0, 1));
  EXPECT_TRUE(forest.Connected(0, 1));
  EXPECT_FALSE(forest.Union(0, 1));  // already merged
  EXPECT_TRUE(forest.Union(1, 2));
  EXPECT_TRUE(forest.Connected(0, 2));
  EXPECT_EQ(forest.ComponentSize(0), 3);
  EXPECT_EQ(forest.ComponentSize(4), 1);
}

TEST(UnionFindTest, ChainsCollapse) {
  UnionFind forest(100);
  for (int64_t i = 0; i + 1 < 100; ++i) {
    forest.Union(i, i + 1);
  }
  EXPECT_TRUE(forest.Connected(0, 99));
  EXPECT_EQ(forest.ComponentSize(50), 100);
}

// -------------------------------------------------------------- Snapshot --

std::vector<Edge> TriangleAndIsland() {
  // Triangle 0-1-2 plus edge 3-4, node 5 isolated.
  return {{0, 1, 0.9}, {0, 2, 0.85}, {1, 2, 0.8}, {3, 4, 0.95}};
}

TEST(SnapshotTest, AdjacencyAndDegree) {
  const std::vector<Edge> edges = TriangleAndIsland();
  const NetworkSnapshot network(6, edges);
  EXPECT_EQ(network.num_nodes(), 6);
  EXPECT_EQ(network.num_edges(), 4);
  EXPECT_EQ(network.Degree(0), 2);
  EXPECT_EQ(network.Degree(3), 1);
  EXPECT_EQ(network.Degree(5), 0);
  EXPECT_TRUE(network.HasEdge(0, 1));
  EXPECT_TRUE(network.HasEdge(1, 0));
  EXPECT_FALSE(network.HasEdge(0, 3));
  EXPECT_FALSE(network.HasEdge(2, 2));
  const auto neighbors = network.Neighbors(1);
  ASSERT_EQ(neighbors.size(), 2u);
  EXPECT_EQ(neighbors[0], 0);
  EXPECT_EQ(neighbors[1], 2);
}

TEST(SnapshotTest, Density) {
  const NetworkSnapshot network(6, TriangleAndIsland());
  EXPECT_DOUBLE_EQ(network.Density(), 4.0 / 15.0);
  const NetworkSnapshot empty(1, {});
  EXPECT_DOUBLE_EQ(empty.Density(), 0.0);
}

TEST(SnapshotTest, DegreeStats) {
  const DegreeStats stats =
      ComputeDegreeStats(NetworkSnapshot(6, TriangleAndIsland()));
  EXPECT_EQ(stats.min, 0);
  EXPECT_EQ(stats.max, 2);
  EXPECT_EQ(stats.isolated, 1);
  EXPECT_NEAR(stats.mean, 8.0 / 6.0, 1e-12);
}

TEST(SnapshotTest, Components) {
  const ComponentStats stats =
      ComputeComponentStats(NetworkSnapshot(6, TriangleAndIsland()));
  EXPECT_EQ(stats.num_components, 3);  // triangle, pair, isolated node
  EXPECT_EQ(stats.largest_component, 3);
}

TEST(SnapshotTest, ClusteringCoefficient) {
  // Triangle: each member has coefficient 1; node 3 and 4 have degree 1 ->
  // 0; node 5 isolated -> 0. Average = 3/6.
  EXPECT_NEAR(
      AverageClusteringCoefficient(NetworkSnapshot(6, TriangleAndIsland())),
      0.5, 1e-12);
  // A star has zero clustering.
  const std::vector<Edge> star = {{0, 1, 1}, {0, 2, 1}, {0, 3, 1}};
  EXPECT_DOUBLE_EQ(AverageClusteringCoefficient(NetworkSnapshot(4, star)),
                   0.0);
}

// -------------------------------------------------------------- Dynamics --

TEST(DynamicsTest, CompareSnapshots) {
  const std::vector<Edge> before = {{0, 1, 0.9}, {1, 2, 0.8}, {2, 3, 0.7}};
  const std::vector<Edge> after = {{0, 1, 0.92}, {2, 3, 0.71}, {3, 4, 0.85}};
  const EdgeDynamics dynamics = CompareSnapshots(
      NetworkSnapshot(5, before), NetworkSnapshot(5, after));
  EXPECT_EQ(dynamics.persisted, 2);
  EXPECT_EQ(dynamics.removed, 1);
  EXPECT_EQ(dynamics.added, 1);
  EXPECT_NEAR(dynamics.jaccard, 0.5, 1e-12);
}

TEST(DynamicsTest, EmptyGraphsHaveJaccardOne) {
  const EdgeDynamics dynamics =
      CompareSnapshots(NetworkSnapshot(3, {}), NetworkSnapshot(3, {}));
  EXPECT_DOUBLE_EQ(dynamics.jaccard, 1.0);
  EXPECT_EQ(dynamics.added + dynamics.removed + dynamics.persisted, 0);
}

TEST(DynamicsTest, SummarizeSeries) {
  SlidingQuery query;
  query.start = 0;
  query.end = 30;
  query.window = 10;
  query.step = 10;
  CorrelationMatrixSeries series(query, 4);
  series.MutableWindow(0)->push_back(Edge{0, 1, 0.9});
  series.MutableWindow(1)->push_back(Edge{0, 1, 0.9});
  series.MutableWindow(1)->push_back(Edge{2, 3, 0.8});
  // window 2 empty.
  const DynamicsSummary summary = SummarizeDynamics(series);
  ASSERT_EQ(summary.edges_per_window.size(), 3u);
  EXPECT_EQ(summary.edges_per_window[0], 1);
  EXPECT_EQ(summary.edges_per_window[1], 2);
  EXPECT_EQ(summary.edges_per_window[2], 0);
  ASSERT_EQ(summary.jaccard_per_step.size(), 2u);
  EXPECT_NEAR(summary.jaccard_per_step[0], 0.5, 1e-12);
  EXPECT_NEAR(summary.jaccard_per_step[1], 0.0, 1e-12);
}

// -------------------------------------------------------------- Accuracy --

TEST(AccuracyTest, PerfectMatch) {
  const std::vector<Edge> edges = {{0, 1, 0.9}, {1, 2, 0.8}};
  const EdgeAccuracy accuracy = CompareWindowEdges(edges, edges);
  EXPECT_EQ(accuracy.true_positives, 2);
  EXPECT_EQ(accuracy.false_positives, 0);
  EXPECT_EQ(accuracy.false_negatives, 0);
  EXPECT_DOUBLE_EQ(accuracy.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(accuracy.Recall(), 1.0);
  EXPECT_DOUBLE_EQ(accuracy.F1(), 1.0);
  EXPECT_DOUBLE_EQ(accuracy.value_rmse, 0.0);
}

TEST(AccuracyTest, MissesAndExtras) {
  const std::vector<Edge> truth = {{0, 1, 0.9}, {1, 2, 0.8}, {2, 3, 0.85}};
  const std::vector<Edge> test = {{0, 1, 0.9}, {3, 4, 0.7}};
  const EdgeAccuracy accuracy = CompareWindowEdges(truth, test);
  EXPECT_EQ(accuracy.true_positives, 1);
  EXPECT_EQ(accuracy.false_positives, 1);
  EXPECT_EQ(accuracy.false_negatives, 2);
  EXPECT_DOUBLE_EQ(accuracy.Precision(), 0.5);
  EXPECT_NEAR(accuracy.Recall(), 1.0 / 3.0, 1e-12);
}

TEST(AccuracyTest, ValueRmseOnMatches) {
  const std::vector<Edge> truth = {{0, 1, 0.9}, {1, 2, 0.8}};
  const std::vector<Edge> test = {{0, 1, 0.8}, {1, 2, 0.8}};
  const EdgeAccuracy accuracy = CompareWindowEdges(truth, test);
  EXPECT_NEAR(accuracy.value_rmse, std::sqrt(0.01 / 2.0), 1e-12);
}

TEST(AccuracyTest, EmptyBothIsPerfect) {
  const EdgeAccuracy accuracy = CompareWindowEdges({}, {});
  EXPECT_DOUBLE_EQ(accuracy.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(accuracy.Recall(), 1.0);
}

TEST(AccuracyTest, CompareSeriesAggregates) {
  SlidingQuery query;
  query.start = 0;
  query.end = 20;
  query.window = 10;
  query.step = 10;
  CorrelationMatrixSeries truth(query, 4);
  CorrelationMatrixSeries test(query, 4);
  truth.MutableWindow(0)->push_back(Edge{0, 1, 0.9});
  test.MutableWindow(0)->push_back(Edge{0, 1, 0.9});
  truth.MutableWindow(1)->push_back(Edge{1, 2, 0.85});
  // test misses the window-1 edge.
  const auto accuracy = CompareSeries(truth, test);
  ASSERT_TRUE(accuracy.ok());
  EXPECT_EQ(accuracy->total.true_positives, 1);
  EXPECT_EQ(accuracy->total.false_negatives, 1);
  EXPECT_EQ(accuracy->windows_compared, 2);
  EXPECT_NEAR(accuracy->mean_f1, 0.5, 1e-12);
}

TEST(AccuracyTest, MismatchedWindowCountsRejected) {
  SlidingQuery query_a;
  query_a.start = 0;
  query_a.end = 20;
  query_a.window = 10;
  query_a.step = 10;
  SlidingQuery query_b = query_a;
  query_b.end = 30;
  CorrelationMatrixSeries a(query_a, 3);
  CorrelationMatrixSeries b(query_b, 3);
  EXPECT_FALSE(CompareSeries(a, b).ok());
}

}  // namespace
}  // namespace dangoron
