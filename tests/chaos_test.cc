// Randomized fault-injection chaos suite for the serving stack: each
// iteration arms a random failpoint schedule (from the documented site
// catalog — see src/common/README.md), throws a random mix of materialized
// and streaming requests at a live server with tiny cache budgets, and
// checks the invariants that must survive *any* fault interleaving:
//
//  - no deadlock: every future resolves and every stream reaches a
//    terminal status (the test terminating is the assertion; ctest's
//    timeout is the backstop);
//  - delivery integrity: each stream's windows arrive contiguously
//    ascending from 0, each exactly once — faults may truncate the
//    sequence, never corrupt it;
//  - failures are from the expected set (injected codes, Cancelled,
//    DeadlineExceeded, ResourceExhausted) — never an invariant-violation
//    surprise like InvalidArgument;
//  - no leaked window claims: a quiesced server's in-flight claim map is
//    empty, or some future joiner would hang forever;
//  - cache consistency: after disarming, a clean exact query — served
//    partly from whatever the faulted runs managed to cache — still
//    matches NaiveEngine bit-for-bit up to roundoff.
//
// Schedules are seeded, so a failure reproduces from its logged iteration
// seed. Run under TSan (see .github/workflows/ci.yml) for the memory-order
// half of the no-deadlock claim.

#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/rng.h"
#include "engine/naive_engine.h"
#include "serve/server.h"
#include "ts/generators.h"

namespace dangoron {
namespace {

#if DANGORON_FAILPOINTS_ENABLED
constexpr bool kChaosFailpointsCompiled = true;
#else
constexpr bool kChaosFailpointsCompiled = false;
#endif

TimeSeriesMatrix SmallClimate(int64_t stations, int64_t hours,
                              uint64_t seed) {
  ClimateSpec spec;
  spec.num_stations = stations;
  spec.num_hours = hours;
  spec.seed = seed;
  auto dataset = GenerateClimate(spec);
  CHECK(dataset.ok());
  return std::move(dataset->data);
}

// One random action spec per site — drawn per iteration, so every schedule
// mixes error, delay, wake, count-limited, and probabilistic triggers.
std::string RandomAction(Rng* rng, bool wake_site) {
  if (wake_site) {
    // wake sites simulate spurious events; probability keeps them from
    // firing on literally every evaluation.
    return "wake%" + std::to_string(rng->NextInt(20, 80));
  }
  switch (rng->NextBounded(4)) {
    case 0: {
      static const char* kCodes[] = {"internal", "ioerror",
                                     "resource_exhausted"};
      std::string spec =
          std::string("error:") + kCodes[rng->NextBounded(3)];
      if (rng->NextBernoulli(0.7)) {
        spec += "*" + std::to_string(rng->NextInt(1, 3));
      }
      if (rng->NextBernoulli(0.5)) {
        spec += "%" + std::to_string(rng->NextInt(25, 90));
      }
      return spec;
    }
    case 1:
      return "delay:" + std::to_string(rng->NextInt(1, 3));
    case 2:
      return "delay:1%" + std::to_string(rng->NextInt(25, 75));
    default:
      return "error*" + std::to_string(rng->NextInt(1, 2));  // internal
  }
}

// The full instrumented-site catalog (src/common/README.md).
struct SiteSpec {
  const char* name;
  bool wake_site;
};
constexpr SiteSpec kSites[] = {
    {"serve.prepare", false},       {"serve.window_cache.put", false},
    {"cache.evict", false},         {"sweep.band", false},
    {"stream.try_push", true},      {"admission.admit", false},
    {"admission.park", true},
};

// The codes a faulted request may legitimately surface. Anything else
// means a fault corrupted control flow instead of failing it cleanly.
bool ExpectedOutcome(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
    case StatusCode::kCancelled:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
    case StatusCode::kIoError:
    case StatusCode::kInternal:
      return true;
    default:
      return false;
  }
}

TEST(ChaosTest, RandomFailpointSchedulesPreserveServingInvariants) {
  if (!kChaosFailpointsCompiled) {
    GTEST_SKIP() << "failpoints compiled out (DANGORON_FAILPOINTS=OFF)";
  }
  constexpr int kIterations = 100;
  const int64_t b = 4;
  const int64_t length = b * 24;
  const TimeSeriesMatrix data_a = SmallClimate(6, length, 8101);
  const TimeSeriesMatrix data_b = SmallClimate(6, length, 8102);

  SlidingQuery query;
  query.start = 0;
  query.end = length;
  query.window = b * 4;
  query.step = b;
  query.threshold = 0.6;

  NaiveEngine naive;
  ASSERT_TRUE(naive.Prepare(data_a).ok());
  auto truth = naive.Query(query);
  ASSERT_TRUE(truth.ok());

  for (int iteration = 0; iteration < kIterations; ++iteration) {
    const uint64_t seed = 0xc4a05 + static_cast<uint64_t>(iteration);
    SCOPED_TRACE("iteration " + std::to_string(iteration) + " seed " +
                 std::to_string(seed));
    Rng rng(seed);
    FailpointRegistry::Instance().DisarmAll();

    DangoronServerOptions options;
    options.num_threads = static_cast<int32_t>(rng.NextInt(1, 3));
    options.basic_window = b;
    // A tiny result-cache budget keeps evictions (and cache.evict fires)
    // in every iteration's hot path.
    options.result_cache_bytes = rng.NextInt(1, 8) * 1024;
    options.sketch_cache_bytes = int64_t{8} << 20;  // both datasets fit
    const bool queued = rng.NextBernoulli(0.5);
    options.admission =
        queued ? AdmissionPolicy::kQueue : AdmissionPolicy::kRefuse;
    options.degrade =
        rng.NextBernoulli(0.5) ? DegradePolicy::kAuto : DegradePolicy::kOff;
    DangoronServer server(options);
    ASSERT_TRUE(server.AddDataset("a", data_a).ok());
    ASSERT_TRUE(server.AddDataset("b", data_b).ok());

    // Arm a random subset of the catalog (possibly empty: the no-fault
    // baseline interleavings are part of the space).
    for (const SiteSpec& site : kSites) {
      if (rng.NextBernoulli(0.4)) {
        const std::string spec = RandomAction(&rng, site.wake_site);
        ASSERT_TRUE(FailpointRegistry::Instance()
                        .Configure(std::string(site.name) + "=" + spec)
                        .ok())
            << site.name << "=" << spec;
      }
    }

    const auto make_request = [&](bool streaming) {
      QueryRequest request;
      request.dataset = rng.NextBernoulli(0.7) ? "a" : "b";
      request.query = query;
      switch (rng.NextBounded(3)) {
        case 0:
          request.options.tier = ServeTier::kExact;
          break;
        case 1:
          request.options.tier = ServeTier::kApprox;
          break;
        default:
          request.options.tier = ServeTier::kAuto;
          break;
      }
      // Parked admissions wait for budget another request may never free
      // (a stream this test drains later), so under kQueue every request
      // carries a deadline bounding the park.
      if (queued || rng.NextBernoulli(0.5)) {
        request.options.deadline_ms = rng.NextInt(1, 200);
      }
      if (rng.NextBernoulli(0.5)) {
        request.options.degrade = DegradePolicy::kAuto;
      }
      if (streaming) {
        request.options.queue_capacity = rng.NextInt(1, 4);
        request.options.max_batch_windows = rng.NextInt(0, 2);
      }
      return request;
    };

    std::vector<std::future<Result<ServeResult>>> futures;
    std::vector<std::unique_ptr<WindowStream>> streams;
    std::vector<bool> cancel_stream;
    const int num_requests = static_cast<int>(rng.NextInt(3, 5));
    for (int r = 0; r < num_requests; ++r) {
      if (rng.NextBernoulli(0.5)) {
        futures.push_back(server.Submit(make_request(/*streaming=*/false)));
      } else {
        streams.push_back(
            server.SubmitStreaming(make_request(/*streaming=*/true)));
        cancel_stream.push_back(rng.NextBernoulli(0.3));
      }
    }

    // Drain everything. Termination *is* the no-deadlock assertion.
    for (size_t s = 0; s < streams.size(); ++s) {
      int64_t next_index = 0;
      const int64_t cancel_after = rng.NextInt(0, query.NumWindows());
      while (auto window = streams[s]->Next()) {
        // Contiguously ascending from 0, exactly once — even across a
        // mid-stream exact->approx degradation handoff.
        ASSERT_EQ(window->window_index, next_index);
        ++next_index;
        if (cancel_stream[s] && next_index >= cancel_after) {
          streams[s]->Cancel();
          cancel_stream[s] = false;  // cancel once
        }
      }
      EXPECT_TRUE(ExpectedOutcome(streams[s]->status()))
          << streams[s]->status().ToString();
    }
    for (auto& future : futures) {
      auto result = future.get();
      EXPECT_TRUE(ExpectedOutcome(result.status()))
          << result.status().ToString();
      if (result.ok()) {
        EXPECT_LE(result->series.num_windows(), query.NumWindows());
      }
    }

    // Quiesced: every claim taken during the storm was retired — fulfilled
    // or nulled — never leaked (a leak would hang some future joiner).
    EXPECT_EQ(server.stats().inflight_window_claims, 0);

    // Cache consistency: with faults disarmed, an exact query assembled
    // from whatever survived in the caches still matches the naive truth.
    FailpointRegistry::Instance().DisarmAll();
    auto clean = server.Query("a", query);
    ASSERT_TRUE(clean.ok()) << clean.status().ToString();
    ASSERT_EQ(clean->series.num_windows(), truth->num_windows());
    for (int64_t k = 0; k < truth->num_windows(); ++k) {
      const auto got = clean->series.WindowEdges(k);
      const auto expected = truth->WindowEdges(k);
      ASSERT_EQ(got.size(), expected.size()) << "window " << k;
      for (size_t e = 0; e < expected.size(); ++e) {
        EXPECT_EQ(got[e].i, expected[e].i) << "window " << k;
        EXPECT_EQ(got[e].j, expected[e].j) << "window " << k;
        EXPECT_NEAR(got[e].value, expected[e].value, 1e-8) << "window " << k;
      }
    }
  }
  FailpointRegistry::Instance().DisarmAll();
}

}  // namespace
}  // namespace dangoron
