#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <vector>

#include "common/rng.h"
#include "ts/resample.h"
#include "ts/uscrn.h"

namespace dangoron {
namespace {

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("dangoron_uscrn_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string File(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  std::filesystem::path path_;
};

// ------------------------------------------------------------ Civil dates --

TEST(CivilDateTest, EpochAndKnownDates) {
  EXPECT_EQ(DaysFromCivil(1970, 1, 1), 0);
  EXPECT_EQ(DaysFromCivil(1970, 1, 2), 1);
  EXPECT_EQ(DaysFromCivil(1969, 12, 31), -1);
  EXPECT_EQ(DaysFromCivil(2000, 3, 1), 11017);
  EXPECT_EQ(DaysFromCivil(2020, 1, 1), 18262);
}

TEST(CivilDateTest, RoundTripAcrossLeapYears) {
  for (int64_t days = -1000; days <= 30000; days += 13) {
    int year = 0;
    int month = 0;
    int day = 0;
    CivilFromDays(days, &year, &month, &day);
    EXPECT_EQ(DaysFromCivil(year, month, day), days) << "days=" << days;
  }
}

TEST(CivilDateTest, LeapDayHandling) {
  const int64_t leap = DaysFromCivil(2020, 2, 29);
  int year = 0;
  int month = 0;
  int day = 0;
  CivilFromDays(leap, &year, &month, &day);
  EXPECT_EQ(year, 2020);
  EXPECT_EQ(month, 2);
  EXPECT_EQ(day, 29);
  // Non-leap century year 1900: Feb 28 + 1 day = Mar 1.
  CivilFromDays(DaysFromCivil(1900, 2, 28) + 1, &year, &month, &day);
  EXPECT_EQ(month, 3);
  EXPECT_EQ(day, 1);
}

// ----------------------------------------------------------- Write / read --

TEST(UscrnRoundTripTest, WriterOutputParsesBack) {
  TempDir dir;
  Rng rng(1);
  std::vector<double> values(48);
  for (double& v : values) {
    v = rng.NextUniform(-10.0, 35.0);
  }
  values[7] = MissingValue();  // a dropout hour

  const std::string path = dir.File("station.txt");
  const int64_t start_hour = DaysFromCivil(2020, 1, 1) * 24;
  ASSERT_TRUE(WriteUscrnFile(path, 23907, -98.07, 34.95, start_hour, values)
                  .ok());

  const auto observations = ReadUscrnFile(path);
  ASSERT_TRUE(observations.ok());
  ASSERT_EQ(observations->size(), values.size());
  for (size_t t = 0; t < values.size(); ++t) {
    const UscrnObservation& obs = (*observations)[t];
    EXPECT_EQ(obs.wbanno, 23907);
    EXPECT_EQ(obs.utc_hour, start_hour + static_cast<int64_t>(t));
    EXPECT_NEAR(obs.longitude, -98.07, 1e-9);
    EXPECT_NEAR(obs.latitude, 34.95, 1e-9);
    if (IsMissing(values[t])) {
      EXPECT_TRUE(IsMissing(obs.value));
    } else {
      // Writer rounds to one decimal, the product's precision.
      EXPECT_NEAR(obs.value, values[t], 0.051);
    }
  }
}

TEST(UscrnRoundTripTest, RowsHaveFullFieldCount) {
  TempDir dir;
  const std::string path = dir.File("fields.txt");
  const std::vector<double> values = {20.0, 21.0};
  ASSERT_TRUE(WriteUscrnFile(path, 1, 0.0, 0.0, 0, values).ok());
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    int fields = 0;
    bool in_field = false;
    for (const char c : line) {
      if (c != ' ' && !in_field) {
        ++fields;
        in_field = true;
      } else if (c == ' ') {
        in_field = false;
      }
    }
    EXPECT_EQ(fields, kUscrnFieldCount);
  }
}

TEST(UscrnReadTest, MalformedRowsAreDataLoss) {
  TempDir dir;
  const std::string path = dir.File("bad.txt");
  {
    std::ofstream out(path);
    out << "23907 20200101\n";  // far too few fields
  }
  const auto result = ReadUscrnFile(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

TEST(UscrnReadTest, BadTimestampRejected) {
  TempDir dir;
  const std::string path = dir.File("badtime.txt");
  {
    std::ofstream out(path);
    // 38 fields but month 13.
    out << "23907 20201301 0100";
    for (int f = 3; f < kUscrnFieldCount; ++f) {
      out << " 0.0";
    }
    out << "\n";
  }
  EXPECT_FALSE(ReadUscrnFile(path).ok());
}

TEST(UscrnReadTest, MissingFileAndEmptyFile) {
  TempDir dir;
  EXPECT_FALSE(ReadUscrnFile(dir.File("nope.txt")).ok());
  const std::string empty = dir.File("empty.txt");
  { std::ofstream out(empty); }
  EXPECT_FALSE(ReadUscrnFile(empty).ok());
}

TEST(UscrnReadTest, SelectableField) {
  TempDir dir;
  const std::string path = dir.File("precip.txt");
  const std::vector<double> values = {1.5, 2.5};
  ASSERT_TRUE(WriteUscrnFile(path, 5, 0.0, 0.0, 0, values,
                             UscrnField::kPCalc)
                  .ok());
  UscrnReadOptions options;
  options.field = UscrnField::kPCalc;
  const auto observations = ReadUscrnFile(path, options);
  ASSERT_TRUE(observations.ok());
  EXPECT_NEAR((*observations)[0].value, 1.5, 1e-9);
  // Reading T_CALC from the same file sees the -9999 placeholder -> NaN.
  const auto as_temp = ReadUscrnFile(path);
  ASSERT_TRUE(as_temp.ok());
  EXPECT_TRUE(IsMissing((*as_temp)[0].value));
}

// ------------------------------------------------------- Station loading --

TEST(UscrnLoadTest, SynchronizesOverlappingStations) {
  TempDir dir;
  Rng rng(2);
  // Station A covers hours [0, 100), station B covers [40, 140).
  std::vector<double> a(100);
  std::vector<double> b(100);
  for (double& v : a) {
    v = rng.NextUniform(0.0, 30.0);
  }
  for (double& v : b) {
    v = rng.NextUniform(0.0, 30.0);
  }
  const std::string path_a = dir.File("a.txt");
  const std::string path_b = dir.File("b.txt");
  ASSERT_TRUE(WriteUscrnFile(path_a, 100, -100, 40, 0, a).ok());
  ASSERT_TRUE(WriteUscrnFile(path_b, 200, -101, 41, 40, b).ok());

  const auto matrix = LoadUscrnStations({path_a, path_b});
  ASSERT_TRUE(matrix.ok());
  EXPECT_EQ(matrix->num_series(), 2);
  // Overlap is [40, 99] inclusive = 60 hourly slots.
  EXPECT_EQ(matrix->length(), 60);
  EXPECT_EQ(matrix->SeriesName(0), "100");
  EXPECT_EQ(matrix->SeriesName(1), "200");
  // First column corresponds to absolute hour 40.
  EXPECT_NEAR(matrix->Get(0, 0), a[40], 0.051);
  EXPECT_NEAR(matrix->Get(1, 0), b[0], 0.051);

  // The full pipeline: interpolate and verify no missing remain.
  TimeSeriesMatrix filled = *matrix;
  ASSERT_TRUE(InterpolateMissing(&filled).ok());
  EXPECT_EQ(filled.CountMissing(), 0);
}

TEST(UscrnLoadTest, DisjointStationsFail) {
  TempDir dir;
  const std::vector<double> values(10, 20.0);
  const std::string path_a = dir.File("a.txt");
  const std::string path_b = dir.File("b.txt");
  ASSERT_TRUE(WriteUscrnFile(path_a, 1, 0, 0, 0, values).ok());
  ASSERT_TRUE(WriteUscrnFile(path_b, 2, 0, 0, 1000, values).ok());
  EXPECT_FALSE(LoadUscrnStations({path_a, path_b}).ok());
  EXPECT_FALSE(LoadUscrnStations({}).ok());
}

}  // namespace
}  // namespace dangoron
