// Negative-compile proof that the thread-safety gate is live.
//
// Compiled twice by ctest under Clang with -fsyntax-only
// -Werror=thread-safety (see CMakeLists.txt):
//   - thread_safety_compile_test_red: with -DDANGORON_TS_TEST_VIOLATION,
//     the accessor below reads a GUARDED_BY field without its mutex. The
//     test asserts the compile FAILS (WILL_FAIL) — if it ever passes, the
//     analysis has silently stopped seeing the annotations.
//   - thread_safety_compile_test_green: without the define, the same file
//     must compile clean, proving red's failure is the violation and not
//     a broken include path or flag.
//
// Off-Clang both configurations are skipped: the attributes are no-ops
// there, so the red build would wrongly succeed.

#include <cstdint>

#include "common/sync.h"

namespace dangoron {
namespace {

class GuardedCounter {
 public:
  void Increment() {
    MutexLock lock(mutex_);
    ++value_;
  }

  int64_t value() const {
#if !defined(DANGORON_TS_TEST_VIOLATION)
    MutexLock lock(mutex_);
#endif
    return value_;
  }

 private:
  mutable Mutex mutex_;
  int64_t value_ GUARDED_BY(mutex_) = 0;
};

// The analysis runs per function definition regardless of use; this only
// quiets -Wunused on stricter configurations.
[[maybe_unused]] int64_t Exercise() {
  GuardedCounter counter;
  counter.Increment();
  return counter.value();
}

}  // namespace
}  // namespace dangoron
