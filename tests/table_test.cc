#include <gtest/gtest.h>

#include "eval/table.h"
#include "eval/workloads.h"
#include "engine/naive_engine.h"

namespace dangoron {
namespace {

TEST(TableTest, AlignsColumns) {
  Table table({"engine", "time", "speedup"});
  table.AddRow().Add("naive").AddTime(1.5).AddRatio(1.0);
  table.AddRow().Add("dangoron").AddTime(0.012).AddRatio(125.0);
  const std::string text = table.ToString();
  // Header present and underlined.
  EXPECT_NE(text.find("engine"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
  EXPECT_NE(text.find("1.50 s"), std::string::npos);
  EXPECT_NE(text.find("12.00 ms"), std::string::npos);
  EXPECT_NE(text.find("125.0x"), std::string::npos);
  // Every line has the same leading column width: "dangoron" is longest.
  EXPECT_NE(text.find("naive   "), std::string::npos);
}

TEST(TableTest, FormatsNumbers) {
  Table table({"a", "b", "c", "d"});
  table.AddRow().AddInt(1234567).AddDouble(3.14159, 2).AddPercent(0.931)
      .AddTime(5e-6);
  const std::string text = table.ToString();
  EXPECT_NE(text.find("1,234,567"), std::string::npos);
  EXPECT_NE(text.find("3.14"), std::string::npos);
  EXPECT_NE(text.find("93.1%"), std::string::npos);
  EXPECT_NE(text.find("5.0 us"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table table({"x", "y"});
  table.AddRow().Add("1").Add("2");
  table.AddRow().Add("3").Add("4");
  EXPECT_EQ(table.ToCsv(), "x,y\n1,2\n3,4\n");
}

TEST(WorkloadTest, ClimateWorkloadGeneratesAndRuns) {
  ClimateWorkload workload;
  workload.num_stations = 6;
  workload.num_hours = 24 * 20;
  const auto data = workload.Generate();
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->num_series(), 6);

  SlidingQuery query = workload.DefaultQuery(0.7);
  query.window = 24 * 5;  // shrink for the tiny test data
  NaiveEngine engine;
  const auto run = RunEngine(&engine, *data, query);
  ASSERT_TRUE(run.ok());
  EXPECT_GT(run->query_seconds, 0.0);
  EXPECT_EQ(run->result.num_windows(), query.NumWindows());
  EXPECT_EQ(run->stats.cells_total,
            query.NumWindows() * 6 * 5 / 2);
}

TEST(WorkloadTest, TimedRunsKeepMinimum) {
  ClimateWorkload workload;
  workload.num_stations = 4;
  workload.num_hours = 24 * 10;
  const auto data = workload.Generate();
  ASSERT_TRUE(data.ok());
  SlidingQuery query = workload.DefaultQuery(0.7);
  query.window = 24 * 2;
  NaiveEngine engine;
  const auto run = RunEngineTimed(&engine, *data, query, 3);
  ASSERT_TRUE(run.ok());
  EXPECT_GT(run->query_seconds, 0.0);
}

}  // namespace
}  // namespace dangoron
