#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/rng.h"
#include "ts/dataset_io.h"
#include "ts/generators.h"

namespace dangoron {
namespace {

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("dangoron_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string File(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  std::filesystem::path path_;
};

TEST(Fnv1aTest, KnownVectors) {
  // Standard FNV-1a 64-bit test vectors.
  EXPECT_EQ(Fnv1a64("", 0), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64("a", 1), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(Fnv1a64("foobar", 6), 0x85944171f73967e8ULL);
}

TEST(DatasetIoTest, RoundTripPreservesEverything) {
  TempDir dir;
  Rng rng(1);
  TimeSeriesMatrix matrix = GenerateWhiteNoise(7, 123, &rng);
  ASSERT_TRUE(matrix
                  .SetSeriesNames({"alpha", "beta", "gamma", "delta",
                                   "epsilon", "zeta", "eta"})
                  .ok());
  matrix.Set(3, 50, MissingValue());  // NaN must round-trip too

  const std::string path = dir.File("data.dgrn");
  ASSERT_TRUE(SaveDataset(matrix, path).ok());
  const auto loaded = LoadDataset(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_series(), 7);
  EXPECT_EQ(loaded->length(), 123);
  EXPECT_EQ(loaded->SeriesName(2), "gamma");
  for (int64_t s = 0; s < 7; ++s) {
    for (int64_t t = 0; t < 123; ++t) {
      if (s == 3 && t == 50) {
        EXPECT_TRUE(IsMissing(loaded->Get(s, t)));
      } else {
        EXPECT_DOUBLE_EQ(loaded->Get(s, t), matrix.Get(s, t))
            << s << "," << t;
      }
    }
  }
}

TEST(DatasetIoTest, EmptyMatrixRejected) {
  TempDir dir;
  EXPECT_FALSE(SaveDataset(TimeSeriesMatrix(), dir.File("x.dgrn")).ok());
}

TEST(DatasetIoTest, MissingFileIsIoError) {
  EXPECT_EQ(LoadDataset("/nonexistent/nope.dgrn").status().code(),
            StatusCode::kIoError);
}

TEST(DatasetIoTest, BadMagicIsDataLoss) {
  TempDir dir;
  const std::string path = dir.File("bad.dgrn");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOPE this is not a dataset";
  }
  const auto result = LoadDataset(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

TEST(DatasetIoTest, TruncationIsDataLoss) {
  TempDir dir;
  Rng rng(2);
  const TimeSeriesMatrix matrix = GenerateWhiteNoise(4, 64, &rng);
  const std::string path = dir.File("full.dgrn");
  ASSERT_TRUE(SaveDataset(matrix, path).ok());

  // Truncate at several byte offsets; every cut must fail loudly.
  const auto full_size = std::filesystem::file_size(path);
  for (const double fraction : {0.1, 0.5, 0.9, 0.999}) {
    const std::string cut = dir.File("cut.dgrn");
    std::filesystem::copy_file(
        path, cut, std::filesystem::copy_options::overwrite_existing);
    std::filesystem::resize_file(
        cut, static_cast<uintmax_t>(static_cast<double>(full_size) * fraction));
    const auto result = LoadDataset(cut);
    ASSERT_FALSE(result.ok()) << "fraction " << fraction;
    EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  }
}

TEST(DatasetIoTest, BitFlipIsDetectedByChecksum) {
  TempDir dir;
  Rng rng(3);
  const TimeSeriesMatrix matrix = GenerateWhiteNoise(3, 32, &rng);
  const std::string path = dir.File("flip.dgrn");
  ASSERT_TRUE(SaveDataset(matrix, path).ok());

  // Flip one byte in the middle of the value payload.
  std::fstream file(path,
                    std::ios::binary | std::ios::in | std::ios::out);
  file.seekg(0, std::ios::end);
  const auto size = static_cast<int64_t>(file.tellg());
  const int64_t target = size / 2;
  file.seekg(target);
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  file.seekp(target);
  file.write(&byte, 1);
  file.close();

  const auto result = LoadDataset(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

TEST(DatasetIoTest, TrailingGarbageIsDataLoss) {
  TempDir dir;
  Rng rng(4);
  const TimeSeriesMatrix matrix = GenerateWhiteNoise(2, 16, &rng);
  const std::string path = dir.File("trailing.dgrn");
  ASSERT_TRUE(SaveDataset(matrix, path).ok());
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "extra";
  }
  const auto result = LoadDataset(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace dangoron
