// Randomized fault-injection chaos suite for the router tier: each
// iteration builds a fresh 3-shard fleet behind a ShardRouter, arms a
// random failpoint schedule over the router sites (router.connect,
// router.stream_read) and a few backend sites, sometimes SIGKILLs a shard
// mid-stream (in-process analog: the shard's WireServer stops and later
// connects are refused), sometimes cancels, and checks the invariants that
// must survive *any* interleaving of faults and failovers:
//
//  - termination: the merged stream always reaches a terminal status (the
//    test finishing is the assertion; ctest's timeout is the backstop);
//  - prefix integrity: every window the merge delivers — whether the query
//    later fails or not — is byte-identical to the unsharded in-process
//    run, contiguously ascending from 0, each exactly once. Faults and
//    failover re-dispatch may truncate the stream, never corrupt it;
//  - clean outcomes: a terminal failure carries an expected code (the
//    injected codes, transport-death codes, Cancelled, DeadlineExceeded)
//    — never an invariant-violation surprise like InvalidArgument;
//  - no leaked claims: after the storm quiesces, every shard server's
//    in-flight window-claim map is empty — dead shard included (its server
//    outlives its sockets and must have cancelled the orphaned stream).
//
// Schedules are seeded, so a failure reproduces from its logged iteration
// seed. Run under ASan and TSan (see .github/workflows/ci.yml).

#include <sys/socket.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <string>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/sync.h"
#include "net/wire_server.h"
#include "router/shard_merge.h"
#include "router/shard_router.h"
#include "serve/server.h"
#include "ts/generators.h"
#include "wire/client.h"
#include "wire/wire_format.h"

namespace dangoron {
namespace {

#if DANGORON_FAILPOINTS_ENABLED
constexpr bool kChaosFailpointsCompiled = true;
#else
constexpr bool kChaosFailpointsCompiled = false;
#endif

constexpr int64_t kBasicWindow = 24;
// 96 series = 4560 pairs = 5 sweep tiles — a genuine 3-way fan-out.
constexpr int64_t kNumSeries = 96;
constexpr int64_t kNumBasicWindows = 16;
constexpr int64_t kLength = kNumBasicWindows * kBasicWindow;
constexpr int kShards = 3;

SlidingQuery ChaosQuery() {
  SlidingQuery query;
  query.start = 0;
  query.end = kLength;
  query.window = 4 * kBasicWindow;
  query.step = kBasicWindow;
  query.threshold = 0.1;
  query.absolute = true;  // dense edge sets
  return query;
}

int64_t ExpectedWindows() {
  const SlidingQuery query = ChaosQuery();
  return (kLength - query.window) / query.step + 1;
}

DangoronServerOptions ShardServerOptions() {
  DangoronServerOptions options;
  options.num_threads = 2;
  options.basic_window = kBasicWindow;
  return options;
}

// One random action per router site: transport-death codes dominate (they
// exercise the failover machinery), with delays mixed in to skew timing.
std::string RandomRouterAction(Rng* rng) {
  switch (rng->NextBounded(4)) {
    case 0:
    case 1: {
      static const char* kCodes[] = {"unavailable", "ioerror"};
      std::string spec = std::string("error:") + kCodes[rng->NextBounded(2)];
      if (rng->NextBernoulli(0.8)) {
        spec += "*" + std::to_string(rng->NextInt(1, 3));
      }
      if (rng->NextBernoulli(0.4)) {
        spec += "%" + std::to_string(rng->NextInt(25, 90));
      }
      return spec;
    }
    case 2:
      return "delay:" + std::to_string(rng->NextInt(1, 3));
    default:
      return "error:unavailable*1";
  }
}

std::string RandomBackendAction(Rng* rng, bool wake_site) {
  if (wake_site) {
    return "wake%" + std::to_string(rng->NextInt(20, 80));
  }
  switch (rng->NextBounded(3)) {
    case 0: {
      std::string spec = "error:ioerror*" + std::to_string(rng->NextInt(1, 2));
      if (rng->NextBernoulli(0.5)) {
        spec += "%" + std::to_string(rng->NextInt(25, 75));
      }
      return spec;
    }
    case 1:
      return "delay:" + std::to_string(rng->NextInt(1, 3));
    default:
      return "delay:1%" + std::to_string(rng->NextInt(25, 75));
  }
}

// The codes a faulted routed query may legitimately end with. The injected
// set (unavailable, ioerror, internal via backend faults), the transport-
// death translations (DataLoss for a mid-frame EOF), plus Cancelled and
// DeadlineExceeded. Anything else means a fault corrupted control flow.
bool ExpectedOutcome(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
    case StatusCode::kCancelled:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kUnavailable:
    case StatusCode::kIoError:
    case StatusCode::kDataLoss:
    case StatusCode::kInternal:
    case StatusCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

/// One iteration's fleet: K in-process shard servers behind listener-less
/// WireServers, connected over socketpairs; killed shards refuse connects.
class ChaosFleet {
 public:
  explicit ChaosFleet(std::shared_ptr<const TimeSeriesMatrix> data)
      : dead_(kShards, false) {
    for (int s = 0; s < kShards; ++s) {
      auto server = std::make_unique<DangoronServer>(ShardServerOptions());
      CHECK(server->AddDataset("d", data).ok());
      WireServerOptions wire_options;
      wire_options.port = -1;
      auto wire = std::make_unique<WireServer>(server.get(), wire_options);
      CHECK(wire->Start().ok());
      servers_.push_back(std::move(server));
      wires_.push_back(std::move(wire));
    }
  }

  ShardRouterOptions RouterOptions() {
    ShardRouterOptions options;
    options.shards.resize(kShards);
    options.connect_retries = 1;
    options.connect_backoff_ms = 1;
    options.breaker_open_ms = 50;
    options.connect_override =
        [this](int shard) -> Result<std::unique_ptr<WireClient>> {
      {
        MutexLock lock(mutex_);
        if (dead_[static_cast<size_t>(shard)]) {
          return Status::Unavailable("shard ", shard, " is down (chaos)");
        }
      }
      int fds[2];
      CHECK(socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0);
      CHECK(wires_[static_cast<size_t>(shard)]->AddConnection(fds[0]).ok());
      return WireClient::Adopt(fds[1]);
    };
    return options;
  }

  void KillShard(int shard) {
    {
      MutexLock lock(mutex_);
      if (dead_[static_cast<size_t>(shard)]) {
        return;
      }
      dead_[static_cast<size_t>(shard)] = true;
    }
    wires_[static_cast<size_t>(shard)]->Stop();
  }

  /// True once every server's in-flight claim map drained; polls because a
  /// cancelled producer retires its claims asynchronously.
  bool ClaimsDrained() {
    for (const auto& server : servers_) {
      if (server->stats().inflight_window_claims != 0) {
        return false;
      }
    }
    return true;
  }

  int64_t TotalLeakedClaims() {
    int64_t total = 0;
    for (const auto& server : servers_) {
      total += server->stats().inflight_window_claims;
    }
    return total;
  }

 private:
  std::vector<std::unique_ptr<DangoronServer>> servers_;
  std::vector<std::unique_ptr<WireServer>> wires_;  // stop before servers
  Mutex mutex_;
  std::vector<bool> dead_ GUARDED_BY(mutex_);
};

TEST(RouterChaosTest, SeededKillAndFaultSchedulesPreserveRouterInvariants) {
  if (!kChaosFailpointsCompiled) {
    GTEST_SKIP() << "failpoints compiled out (DANGORON_FAILPOINTS=OFF)";
  }
  constexpr int kIterations = 30;
  Rng data_rng(7204);
  auto data = std::make_shared<const TimeSeriesMatrix>(
      GenerateWhiteNoise(kNumSeries, kLength, &data_rng));
  const int64_t num_pairs = kNumSeries * (kNumSeries - 1) / 2;
  const int64_t expected_windows = ExpectedWindows();

  // The unsharded truth, one encoded frame per window: every delivered
  // merged window must match its frame byte for byte.
  std::vector<std::string> reference;
  {
    DangoronServer server(ShardServerOptions());
    ASSERT_TRUE(server.AddDataset("d", data).ok());
    QueryRequest request;
    request.dataset = "d";
    request.query = ChaosQuery();
    auto stream = server.SubmitStreaming(request);
    while (auto window = stream->Next()) {
      std::string bytes;
      EncodeWindowFrame(window->window_index, *window->edges, &bytes);
      reference.push_back(std::move(bytes));
    }
    ASSERT_TRUE(stream->status().ok()) << stream->status().message();
    ASSERT_EQ(static_cast<int64_t>(reference.size()), expected_windows);
  }

  for (int iteration = 0; iteration < kIterations; ++iteration) {
    const uint64_t seed = 0xd4a90 + static_cast<uint64_t>(iteration);
    SCOPED_TRACE("iteration " + std::to_string(iteration) + " seed " +
                 std::to_string(seed));
    Rng rng(seed);
    FailpointRegistry::Instance().DisarmAll();

    ChaosFleet fleet(data);
    ShardRouterOptions options = fleet.RouterOptions();
    options.max_failovers = static_cast<int>(rng.NextInt(0, 3));
    ShardRouter router(options);

    // Arm a random subset of the catalog (possibly empty: clean-run
    // interleavings are part of the space).
    if (rng.NextBernoulli(0.5)) {
      ASSERT_TRUE(
          FailpointRegistry::Instance()
              .Configure("router.connect=" + RandomRouterAction(&rng))
              .ok());
    }
    if (rng.NextBernoulli(0.5)) {
      ASSERT_TRUE(
          FailpointRegistry::Instance()
              .Configure("router.stream_read=" + RandomRouterAction(&rng))
              .ok());
    }
    struct BackendSite {
      const char* name;
      bool wake;
    };
    constexpr BackendSite kBackendSites[] = {{"serve.prepare", false},
                                             {"sweep.band", false},
                                             {"stream.try_push", true}};
    for (const BackendSite& site : kBackendSites) {
      if (rng.NextBernoulli(0.25)) {
        ASSERT_TRUE(FailpointRegistry::Instance()
                        .Configure(std::string(site.name) + "=" +
                                   RandomBackendAction(&rng, site.wake))
                        .ok());
      }
    }

    WireRequest request;
    request.dataset = "d";
    request.query = ChaosQuery();
    request.options.queue_capacity = rng.NextInt(1, 4);
    if (rng.NextBernoulli(0.2)) {
      request.options.deadline_ms = rng.NextInt(50, 500);
    }

    const bool kill = rng.NextBernoulli(0.5);
    const int kill_victim = static_cast<int>(rng.NextBounded(kShards));
    const int64_t kill_after = rng.NextInt(0, expected_windows - 1);
    const bool cancel = rng.NextBernoulli(0.2);
    const int64_t cancel_after = rng.NextInt(0, expected_windows - 1);

    {
      auto merge = router.Submit(request, num_pairs);
      if (!merge.ok()) {
        // Every shard unreachable at plan time (connect faults): a clean
        // refusal, not a hang.
        EXPECT_TRUE(ExpectedOutcome(merge.status()))
            << merge.status().ToString();
      } else {
        bool killed = false;
        bool cancelled = false;
        int64_t next_index = 0;
        while (std::optional<StreamedWindow> window = (*merge)->Next()) {
          // Contiguously ascending, exactly once, byte-identical to the
          // unsharded run — across kills, failovers, and re-dispatch races.
          ASSERT_EQ(window->window_index, next_index);
          ASSERT_LT(next_index, expected_windows);
          std::string bytes;
          EncodeWindowFrame(window->window_index, *window->edges, &bytes);
          ASSERT_EQ(bytes, reference[static_cast<size_t>(next_index)])
              << "window " << next_index
              << " differs from the unsharded stream";
          ++next_index;
          if (kill && !killed && next_index > kill_after) {
            killed = true;
            fleet.KillShard(kill_victim);
          }
          if (cancel && !cancelled && next_index > cancel_after) {
            cancelled = true;
            (*merge)->Cancel();
          }
        }
        const Status status = (*merge)->status();
        EXPECT_TRUE(ExpectedOutcome(status)) << status.ToString();
        if (status.ok()) {
          EXPECT_EQ(next_index, expected_windows);
        }
        // A failed or cancelled merge may truncate the stream; the per-
        // window asserts above guarantee the truncated prefix is intact.
      }
    }  // the merge dies here, cancelling any straggler shard streams

    // Quiesce: disarm and require every claim taken during the storm to
    // be retired.
    FailpointRegistry::Instance().DisarmAll();
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (!fleet.ClaimsDrained() &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_EQ(fleet.TotalLeakedClaims(), 0)
        << "a shard leaked window claims under chaos";
  }
  FailpointRegistry::Instance().DisarmAll();
}

}  // namespace
}  // namespace dangoron
