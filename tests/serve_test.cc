#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/logging.h"
#include "engine/dangoron_engine.h"
#include "engine/factory.h"
#include "engine/naive_engine.h"
#include "serve/server.h"
#include "serve/sketch_cache.h"
#include "serve/window_result_cache.h"
#include "sketch/basic_window_index.h"
#include "stream/streaming_builder.h"
#include "ts/generators.h"

namespace dangoron {
namespace {

TimeSeriesMatrix SmallClimate(int64_t stations, int64_t hours, uint64_t seed) {
  ClimateSpec spec;
  spec.num_stations = stations;
  spec.num_hours = hours;
  spec.seed = seed;
  auto dataset = GenerateClimate(spec);
  CHECK(dataset.ok());
  return std::move(dataset->data);
}

void ExpectSeriesEqual(const CorrelationMatrixSeries& a,
                       const CorrelationMatrixSeries& b, double tolerance) {
  ASSERT_EQ(a.num_windows(), b.num_windows());
  for (int64_t k = 0; k < a.num_windows(); ++k) {
    const auto edges_a = a.WindowEdges(k);
    const auto edges_b = b.WindowEdges(k);
    ASSERT_EQ(edges_a.size(), edges_b.size()) << "window " << k;
    for (size_t e = 0; e < edges_a.size(); ++e) {
      EXPECT_EQ(edges_a[e].i, edges_b[e].i) << "window " << k;
      EXPECT_EQ(edges_a[e].j, edges_b[e].j) << "window " << k;
      EXPECT_NEAR(edges_a[e].value, edges_b[e].value, tolerance)
          << "window " << k;
    }
  }
}

SlidingQuery MakeQuery(int64_t start, int64_t end, int64_t window,
                       int64_t step, double threshold) {
  SlidingQuery query;
  query.start = start;
  query.end = end;
  query.window = window;
  query.step = step;
  query.threshold = threshold;
  return query;
}

CorrelationMatrixSeries NaiveTruth(const TimeSeriesMatrix& data,
                                   const SlidingQuery& query) {
  NaiveEngine naive;
  CHECK(naive.Prepare(data).ok());
  auto truth = naive.Query(query);
  CHECK(truth.ok());
  return std::move(*truth);
}

// ------------------------------------------------------------- LRU caches --

TEST(LruCacheTest, EvictsLeastRecentlyUsedUnderByteBudget) {
  WindowResultCache cache(300);
  auto edges = std::make_shared<std::vector<Edge>>();
  const auto key = [](int64_t start_bw) {
    return WindowKey::Make(1, 24, 4, start_bw, 0.8, false);
  };
  cache.Put(key(0), edges, 100);
  cache.Put(key(1), edges, 100);
  cache.Put(key(2), edges, 100);
  EXPECT_NE(cache.Get(key(0)), nullptr);  // bump 0: LRU order is now 1, 2, 0
  cache.Put(key(3), edges, 100);          // evicts 1
  EXPECT_EQ(cache.Get(key(1)), nullptr);
  EXPECT_NE(cache.Get(key(2)), nullptr);
  EXPECT_NE(cache.Get(key(0)), nullptr);
  EXPECT_NE(cache.Get(key(3)), nullptr);

  const LruCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 3);
  EXPECT_EQ(stats.bytes, 300);
  EXPECT_EQ(stats.evictions, 1);
}

TEST(LruCacheTest, OversizedEntryIsRejectedWithoutFlushingWarmEntries) {
  WindowResultCache cache(50);
  auto edges = std::make_shared<std::vector<Edge>>(
      std::vector<Edge>{Edge{0, 1, 0.9}});
  const WindowKey warm = WindowKey::Make(1, 24, 4, 7, 0.8, false);
  cache.Put(warm, edges, 40);
  cache.Put(WindowKey::Make(1, 24, 4, 0, 0.8, false), edges, 1000);
  EXPECT_EQ(cache.Get(WindowKey::Make(1, 24, 4, 0, 0.8, false)), nullptr);
  // The oversized newcomer must not have evicted the fitting entry.
  EXPECT_NE(cache.Get(warm), nullptr);
  EXPECT_EQ(cache.stats().entries, 1);
  // The caller's reference is unaffected by the rejection.
  EXPECT_EQ(edges->size(), 1u);
}

TEST(LruCacheTest, RefreshingAKeyUpdatesBytes) {
  WindowResultCache cache(1000);
  auto edges = std::make_shared<std::vector<Edge>>();
  const WindowKey key = WindowKey::Make(1, 24, 4, 0, 0.8, false);
  cache.Put(key, edges, 100);
  cache.Put(key, edges, 250);
  EXPECT_EQ(cache.stats().bytes, 250);
  EXPECT_EQ(cache.stats().entries, 1);
}

// ------------------------------------------------------- basic serving ----

TEST(DangoronServerTest, MatchesNaiveEngine) {
  const int64_t b = 8;
  TimeSeriesMatrix data = SmallClimate(6, b * 40, 4001);
  const SlidingQuery query = MakeQuery(0, b * 40, b * 6, b * 2, 0.7);
  const CorrelationMatrixSeries truth = NaiveTruth(data, query);

  DangoronServerOptions options;
  options.num_threads = 4;
  options.basic_window = b;
  DangoronServer server(options);
  ASSERT_TRUE(server.AddDataset("climate", std::move(data)).ok());

  auto result = server.Query("climate", query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectSeriesEqual(truth, result->series, 1e-8);
  EXPECT_FALSE(result->prepared_from_cache);
  EXPECT_EQ(result->windows_computed, query.NumWindows());
  EXPECT_EQ(result->windows_from_cache, 0);

  // Identical repeat: full cache hit, nothing recomputed.
  auto repeat = server.Query("climate", query);
  ASSERT_TRUE(repeat.ok());
  ExpectSeriesEqual(truth, repeat->series, 1e-8);
  EXPECT_TRUE(repeat->prepared_from_cache);
  EXPECT_EQ(repeat->windows_from_cache, query.NumWindows());
  EXPECT_EQ(repeat->windows_computed, 0);
}

TEST(DangoronServerTest, OverlappingQueryReusesWindows) {
  const int64_t b = 8;
  TimeSeriesMatrix data = SmallClimate(5, b * 40, 4002);
  DangoronServerOptions options;
  options.num_threads = 2;
  options.basic_window = b;
  DangoronServer server(options);
  const TimeSeriesMatrix copy = data;
  ASSERT_TRUE(server.AddDataset("d", std::move(data)).ok());

  // Windows at starts 0, 2b, 4b, ..., 18b.
  const SlidingQuery first = MakeQuery(0, b * 24, b * 4, b * 2, 0.6);
  ASSERT_TRUE(server.Query("d", first).ok());

  // Shifted range, same geometry: starts 10b .. 30b — the six windows at
  // 10b, 12b, ..., 20b are already cached from the first query.
  const SlidingQuery second = MakeQuery(b * 10, b * 34, b * 4, b * 2, 0.6);
  auto result = server.Query("d", second);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->windows_from_cache, 6);
  EXPECT_EQ(result->windows_computed, second.NumWindows() - 6);
  ExpectSeriesEqual(NaiveTruth(copy, second), result->series, 1e-8);
}

TEST(DangoronServerTest, ValidatesQueriesAndDatasetNames) {
  const int64_t b = 8;
  DangoronServerOptions options;
  options.basic_window = b;
  options.num_threads = 1;
  DangoronServer server(options);
  ASSERT_TRUE(
      server.AddDataset("d", SmallClimate(4, b * 20, 4003)).ok());

  EXPECT_EQ(server.Query("nope", MakeQuery(0, b * 20, b * 4, b, 0.5))
                .status()
                .code(),
            StatusCode::kNotFound);
  // Unaligned window.
  EXPECT_EQ(server.Query("d", MakeQuery(0, b * 20, b * 4 + 1, b, 0.5))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Range beyond the data.
  EXPECT_FALSE(server.Query("d", MakeQuery(0, b * 21, b * 4, b, 0.5)).ok());
  EXPECT_FALSE(server.AddDataset("", SmallClimate(4, b * 20, 1)).ok());
  EXPECT_EQ(server.RemoveDataset("nope").code(), StatusCode::kNotFound);
  EXPECT_TRUE(server.RemoveDataset("d").ok());
}

TEST(DangoronServerTest, IdenticalDataSharesOnePrepareAcrossNames) {
  const int64_t b = 8;
  TimeSeriesMatrix data = SmallClimate(5, b * 30, 4004);
  const TimeSeriesMatrix copy = data;
  DangoronServerOptions options;
  options.basic_window = b;
  options.num_threads = 1;
  DangoronServer server(options);
  ASSERT_TRUE(server.AddDataset("a", std::move(data)).ok());
  ASSERT_TRUE(server.AddDataset("b", copy).ok());

  const SlidingQuery query = MakeQuery(0, b * 30, b * 5, b, 0.7);
  ASSERT_TRUE(server.Query("a", query).ok());
  auto via_b = server.Query("b", query);
  ASSERT_TRUE(via_b.ok());
  // Same content fingerprint: the sketch (and the windows) are shared.
  EXPECT_TRUE(via_b->prepared_from_cache);
  EXPECT_EQ(via_b->windows_from_cache, query.NumWindows());
  EXPECT_EQ(server.stats().prepares_built, 1);
}

// ------------------------------------------------- concurrency stress -----

// N concurrent submissions, identical and overlapping, against a small
// thread pool: every result must equal the serial NaiveEngine run, and the
// total evaluation work must not exceed the distinct-window universe
// (deduplication across cache hits and in-flight joins).
TEST(DangoronServerStressTest, ConcurrentOverlappingSubmitsMatchNaive) {
  const int64_t b = 8;
  const int64_t length = b * 48;
  TimeSeriesMatrix data = SmallClimate(6, length, 4005);
  const TimeSeriesMatrix copy = data;

  DangoronServerOptions options;
  options.num_threads = 4;
  options.basic_window = b;
  DangoronServer server(options);
  ASSERT_TRUE(server.AddDataset("d", std::move(data)).ok());

  // 12 queries: 4 identical, plus shifted/overlapping ranges and one
  // distinct threshold (its windows must not mix with the others').
  std::vector<SlidingQuery> queries;
  for (int i = 0; i < 4; ++i) {
    queries.push_back(MakeQuery(0, length, b * 6, b * 2, 0.6));
  }
  for (int i = 0; i < 4; ++i) {
    queries.push_back(
        MakeQuery(b * 2 * i, length - b * 2 * i, b * 6, b * 2, 0.6));
  }
  for (int i = 0; i < 3; ++i) {
    queries.push_back(MakeQuery(b * 4 * i, length, b * 6, b * 2, 0.6));
  }
  queries.push_back(MakeQuery(0, length, b * 6, b * 2, 0.85));

  std::vector<std::future<Result<ServeResult>>> pending;
  pending.reserve(queries.size());
  for (const SlidingQuery& query : queries) {
    pending.push_back(server.Submit("d", query));
  }
  for (size_t q = 0; q < queries.size(); ++q) {
    auto result = pending[q].get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectSeriesEqual(NaiveTruth(copy, queries[q]), result->series, 1e-8);
  }

  // All 0.6-threshold queries share one window universe: starts 0..42b
  // step 2b => 22 distinct windows; the 0.85 query adds its own 22.
  const DangoronServerStats stats = server.stats();
  EXPECT_EQ(stats.queries, static_cast<int64_t>(queries.size()));
  EXPECT_EQ(stats.windows_computed, 44);
  EXPECT_EQ(stats.prepares_built, 1);
}

// Tiny byte budgets: every sketch and window is evicted almost immediately,
// so queries keep rebuilding — results must stay correct (in-flight queries
// hold shared_ptr references; eviction can never corrupt them), and the
// evicted sketch storage must land in the recycler.
TEST(DangoronServerStressTest, TinyCacheBudgetsNeverCorruptResults) {
  const int64_t b = 8;
  const int64_t length = b * 32;
  TimeSeriesMatrix data_a = SmallClimate(5, length, 4006);
  TimeSeriesMatrix data_b = SmallClimate(5, length, 4007);
  const TimeSeriesMatrix copy_a = data_a;
  const TimeSeriesMatrix copy_b = data_b;

  DangoronServerOptions options;
  options.num_threads = 3;
  options.basic_window = b;
  options.sketch_cache_bytes = 1;  // nothing survives
  options.result_cache_bytes = 1;
  DangoronServer server(options);
  ASSERT_TRUE(server.AddDataset("a", std::move(data_a)).ok());
  ASSERT_TRUE(server.AddDataset("b", std::move(data_b)).ok());

  const SlidingQuery query = MakeQuery(0, length, b * 5, b * 3, 0.6);
  const CorrelationMatrixSeries truth_a = NaiveTruth(copy_a, query);
  const CorrelationMatrixSeries truth_b = NaiveTruth(copy_b, query);

  for (int round = 0; round < 3; ++round) {
    std::vector<std::future<Result<ServeResult>>> pending;
    for (int i = 0; i < 3; ++i) {
      pending.push_back(server.Submit("a", query));
      pending.push_back(server.Submit("b", query));
    }
    for (size_t q = 0; q < pending.size(); ++q) {
      auto result = pending[q].get();
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ExpectSeriesEqual(q % 2 == 0 ? truth_a : truth_b, result->series,
                        1e-8);
    }
  }
  const DangoronServerStats stats = server.stats();
  EXPECT_GT(stats.sketch_cache.evictions, 0);
  EXPECT_GT(stats.result_cache.evictions, 0);
  // Evicted sketches retire their storage through the recycler.
  EXPECT_GT(SketchRecyclerRetainedBytes(), 0);
}

// Destroying the server with submissions still queued/running must drain
// them (no Schedule-after-shutdown abort from inner ParallelFor helpers)
// and leave every future resolvable.
TEST(DangoronServerStressTest, DestructionDrainsInFlightQueries) {
  const int64_t b = 8;
  const int64_t length = b * 40;
  TimeSeriesMatrix data = SmallClimate(6, length, 4010);
  const SlidingQuery query = MakeQuery(0, length, b * 6, b * 2, 0.6);

  std::vector<std::future<Result<ServeResult>>> pending;
  {
    DangoronServerOptions options;
    options.num_threads = 4;
    options.basic_window = b;
    DangoronServer server(options);
    ASSERT_TRUE(server.AddDataset("d", std::move(data)).ok());
    for (int i = 0; i < 8; ++i) {
      pending.push_back(server.Submit("d", query));
    }
    // Server destructs here, before any future was waited on.
  }
  for (auto& future : pending) {
    auto result = future.get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->series.num_windows(), query.NumWindows());
  }
}

// -------------------------------------------------- streaming integration --

TEST(DangoronServerTest, StreamPublishedWindowsServeHistoricalQueries) {
  const int64_t b = 8;
  const int64_t length = b * 30;
  TimeSeriesMatrix data = SmallClimate(5, length, 4008);
  const TimeSeriesMatrix copy = data;

  DangoronServerOptions options;
  options.basic_window = b;
  options.num_threads = 1;
  DangoronServer server(options);
  ASSERT_TRUE(server.AddDataset("live", std::move(data)).ok());
  auto fingerprint = server.DatasetFingerprint("live");
  ASSERT_TRUE(fingerprint.ok());

  StreamingOptions stream_options;
  stream_options.basic_window = b;
  stream_options.window = b * 5;
  stream_options.step = b * 2;
  stream_options.threshold = 0.6;
  auto builder = StreamingNetworkBuilder::Create(5, stream_options);
  ASSERT_TRUE(builder.ok());
  builder->PublishTo(server.mutable_result_cache(), *fingerprint);
  ASSERT_TRUE(builder->AppendColumns(copy, 0, length).ok());

  // The live stream populated every window the historical query needs.
  const SlidingQuery query = MakeQuery(0, length, b * 5, b * 2, 0.6);
  auto result = server.Query("live", query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->windows_from_cache, query.NumWindows());
  EXPECT_EQ(result->windows_computed, 0);
  ExpectSeriesEqual(NaiveTruth(copy, query), result->series, 1e-8);
}

// ------------------------------------------------- streaming submissions --

// Windows arrive in ascending order, exactly once each, and the delivered
// edge sets equal the serial NaiveEngine truth; a repeat stream is pure
// cache and a family-shifted threshold reuses the same cached windows
// through delivery-time filtering.
TEST(StreamingSubmitTest, DeliversWindowsInOrderMatchingNaive) {
  const int64_t b = 8;
  const int64_t length = b * 44;
  TimeSeriesMatrix data = SmallClimate(6, length, 5001);
  const TimeSeriesMatrix copy = data;

  DangoronServerOptions options;
  options.num_threads = 3;
  options.basic_window = b;
  DangoronServer server(options);
  ASSERT_TRUE(server.AddDataset("d", std::move(data)).ok());

  const SlidingQuery query = MakeQuery(0, length, b * 6, b * 2, 0.6);
  const CorrelationMatrixSeries truth = NaiveTruth(copy, query);

  StreamingSubmitOptions stream_options;
  stream_options.queue_capacity = 3;
  stream_options.max_batch_windows = 4;
  auto stream = server.SubmitStreaming("d", query, stream_options);
  int64_t expected_index = 0;
  while (auto window = stream->Next()) {
    ASSERT_EQ(window->window_index, expected_index);
    const auto expected = truth.WindowEdges(window->window_index);
    ASSERT_EQ(window->edges->size(), expected.size())
        << "window " << window->window_index;
    for (size_t e = 0; e < expected.size(); ++e) {
      EXPECT_EQ((*window->edges)[e].i, expected[e].i);
      EXPECT_EQ((*window->edges)[e].j, expected[e].j);
      EXPECT_NEAR((*window->edges)[e].value, expected[e].value, 1e-8);
    }
    ++expected_index;
  }
  ASSERT_TRUE(stream->status().ok()) << stream->status().ToString();
  EXPECT_EQ(expected_index, query.NumWindows());
  EXPECT_EQ(stream->summary().windows_computed, query.NumWindows());

  // Identical repeat: every window from cache, no evaluation.
  auto repeat = server.SubmitStreaming("d", query, stream_options);
  int64_t repeated = 0;
  while (auto window = repeat->Next()) {
    ++repeated;
  }
  ASSERT_TRUE(repeat->status().ok());
  EXPECT_EQ(repeated, query.NumWindows());
  EXPECT_EQ(repeat->summary().windows_from_cache, query.NumWindows());
  EXPECT_EQ(repeat->summary().windows_computed, 0);

  // Family threshold: 0.63 snaps to the 0.6 family — same cached windows,
  // filtered up to 0.63 at the delivery edge.
  SlidingQuery swept = query;
  swept.threshold = 0.63;
  const CorrelationMatrixSeries swept_truth = NaiveTruth(copy, swept);
  auto family = server.SubmitStreaming("d", swept, stream_options);
  int64_t k = 0;
  while (auto window = family->Next()) {
    const auto expected = swept_truth.WindowEdges(k);
    ASSERT_EQ(window->edges->size(), expected.size()) << "window " << k;
    for (size_t e = 0; e < expected.size(); ++e) {
      EXPECT_EQ((*window->edges)[e].i, expected[e].i);
      EXPECT_EQ((*window->edges)[e].j, expected[e].j);
      EXPECT_NEAR((*window->edges)[e].value, expected[e].value, 1e-8);
    }
    ++k;
  }
  ASSERT_TRUE(family->status().ok());
  EXPECT_EQ(family->summary().windows_from_cache, query.NumWindows());
  EXPECT_EQ(family->summary().windows_computed, 0);
}

// Mid-stream cancellation: queued slots are released (the blocked producer
// wakes and acknowledges), the windows evaluated before the cancel stay in
// the result cache, and a follow-up identical query reuses that prefix.
TEST(StreamingSubmitTest, CancellationLeavesReusableCachedPrefix) {
  const int64_t b = 8;
  const int64_t length = b * 44;  // 20 windows
  TimeSeriesMatrix data = SmallClimate(6, length, 5002);
  const TimeSeriesMatrix copy = data;

  DangoronServerOptions options;
  options.num_threads = 2;
  options.basic_window = b;
  DangoronServer server(options);
  ASSERT_TRUE(server.AddDataset("d", std::move(data)).ok());

  const SlidingQuery query = MakeQuery(0, length, b * 6, b * 2, 0.6);
  const int64_t num_windows = query.NumWindows();
  ASSERT_GE(num_windows, 12);

  StreamingSubmitOptions stream_options;
  stream_options.queue_capacity = 1;   // tight: the producer blocks early
  stream_options.max_batch_windows = 1;
  auto stream = server.SubmitStreaming("d", query, stream_options);
  for (int consumed = 0; consumed < 2; ++consumed) {
    auto window = stream->Next();
    ASSERT_TRUE(window.has_value());
    EXPECT_EQ(window->window_index, consumed);
  }
  stream->Cancel();
  // Draining after Cancel joins the producer: nullopt only after its Finish.
  while (stream->Next().has_value()) {
  }
  EXPECT_EQ(stream->status().code(), StatusCode::kCancelled);
  const int64_t computed_before_cancel = stream->summary().windows_computed;
  EXPECT_GE(computed_before_cancel, 2);
  EXPECT_LT(computed_before_cancel, num_windows);

  // The follow-up identical query starts from the cancelled stream's cached
  // prefix — dedup pays off even though the stream never completed.
  auto result = server.Query("d", query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectSeriesEqual(NaiveTruth(copy, query), result->series, 1e-8);
  EXPECT_EQ(result->windows_from_cache, computed_before_cancel);
  EXPECT_EQ(result->windows_computed, num_windows - computed_before_cancel);
}

// Backpressure: a deliberately slow consumer on a tiny queue must never
// deadlock the pool-resident producer, nor a concurrent materialized query
// that joins the stream's claimed windows.
TEST(StreamingSubmitTest, SlowConsumerBackpressureNeverDeadlocks) {
  const int64_t b = 8;
  const int64_t length = b * 36;
  TimeSeriesMatrix data = SmallClimate(5, length, 5003);
  const TimeSeriesMatrix copy = data;

  DangoronServerOptions options;
  options.num_threads = 2;
  options.basic_window = b;
  DangoronServer server(options);
  ASSERT_TRUE(server.AddDataset("d", std::move(data)).ok());

  const SlidingQuery query = MakeQuery(0, length, b * 5, b * 2, 0.6);
  StreamingSubmitOptions stream_options;
  stream_options.queue_capacity = 1;
  stream_options.max_batch_windows = 1;
  auto stream = server.SubmitStreaming("d", query, stream_options);

  // A concurrent identical materialized query joins the stream's in-flight
  // claims; its completion depends on this consumer draining — which it
  // does, slowly.
  auto concurrent = server.Submit("d", query);

  int64_t delivered = 0;
  while (auto window = stream->Next()) {
    ++delivered;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(stream->status().ok()) << stream->status().ToString();
  EXPECT_EQ(delivered, query.NumWindows());

  auto joined = concurrent.get();
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  ExpectSeriesEqual(NaiveTruth(copy, query), joined->series, 1e-8);
}

// The claim protocol must never make a materialized query's future depend
// on a stream consumer's progress: claims are taken per evaluation batch,
// so a single thread may submit a stream, then block on a materialized
// result for the same windows *before* draining the stream. With upfront
// whole-plan claiming this deadlocks permanently — and with producers as
// pool tasks, a 1-thread pool (the hardest case, used here) would wedge
// even without claims, the blocked producer pinning the only worker.
TEST(StreamingSubmitTest, MaterializedJoinBeforeDrainingStreamDoesNotDeadlock) {
  const int64_t b = 8;
  const int64_t length = b * 40;
  TimeSeriesMatrix data = SmallClimate(5, length, 5007);
  const TimeSeriesMatrix copy = data;

  DangoronServerOptions options;
  options.num_threads = 1;
  options.basic_window = b;
  DangoronServer server(options);
  ASSERT_TRUE(server.AddDataset("d", std::move(data)).ok());

  const SlidingQuery query = MakeQuery(0, length, b * 5, b * 2, 0.6);
  StreamingSubmitOptions stream_options;
  stream_options.queue_capacity = 1;  // the producer blocks almost at once
  stream_options.max_batch_windows = 1;
  auto stream = server.SubmitStreaming("d", query, stream_options);

  // Block on the materialized result first — the stream is NOT drained yet.
  auto materialized = server.Query("d", query);
  ASSERT_TRUE(materialized.ok()) << materialized.status().ToString();
  ExpectSeriesEqual(NaiveTruth(copy, query), materialized->series, 1e-8);

  // Now drain the stream; it completes normally.
  int64_t delivered = 0;
  while (auto window = stream->Next()) {
    ++delivered;
  }
  ASSERT_TRUE(stream->status().ok()) << stream->status().ToString();
  EXPECT_EQ(delivered, query.NumWindows());
}

// Each live stream owns a producer thread, so the count is admission-capped.
TEST(StreamingSubmitTest, ConcurrentStreamCapRefusesTerminally) {
  const int64_t b = 8;
  const int64_t length = b * 40;
  TimeSeriesMatrix data = SmallClimate(5, length, 5008);

  DangoronServerOptions options;
  options.num_threads = 2;
  options.basic_window = b;
  options.max_concurrent_streams = 1;
  DangoronServer server(options);
  ASSERT_TRUE(server.AddDataset("d", std::move(data)).ok());

  const SlidingQuery query = MakeQuery(0, length, b * 5, b, 0.6);
  StreamingSubmitOptions stream_options;
  stream_options.queue_capacity = 1;  // first stream stays live, undrained
  auto first = server.SubmitStreaming("d", query, stream_options);
  auto refused = server.SubmitStreaming("d", query, stream_options);
  EXPECT_FALSE(refused->Next().has_value());
  EXPECT_EQ(refused->status().code(), StatusCode::kResourceExhausted);

  // Finishing the first stream frees the slot.
  first->Cancel();
  while (first->Next().has_value()) {
  }
  auto admitted = server.SubmitStreaming("d", query, stream_options);
  int64_t delivered = 0;
  while (admitted->Next().has_value()) {
    ++delivered;
  }
  EXPECT_TRUE(admitted->status().ok()) << admitted->status().ToString();
  EXPECT_EQ(delivered, query.NumWindows());
}

TEST(StreamingSubmitTest, UnknownDatasetFailsTerminally) {
  DangoronServerOptions options;
  options.basic_window = 8;
  options.num_threads = 1;
  DangoronServer server(options);
  auto stream = server.SubmitStreaming("nope", MakeQuery(0, 80, 40, 8, 0.5));
  EXPECT_FALSE(stream->Next().has_value());
  EXPECT_EQ(stream->status().code(), StatusCode::kNotFound);
}

// Destroying the server with an unconsumed stream must cancel it rather
// than wait forever on a consumer that never drains.
TEST(StreamingSubmitTest, ServerDestructionCancelsUnconsumedStreams) {
  const int64_t b = 8;
  const int64_t length = b * 40;
  TimeSeriesMatrix data = SmallClimate(5, length, 5004);
  const SlidingQuery query = MakeQuery(0, length, b * 5, b, 0.6);

  std::unique_ptr<WindowStream> stream;
  {
    DangoronServerOptions options;
    options.num_threads = 2;
    options.basic_window = b;
    DangoronServer server(options);
    ASSERT_TRUE(server.AddDataset("d", std::move(data)).ok());
    StreamingSubmitOptions stream_options;
    stream_options.queue_capacity = 1;
    stream = server.SubmitStreaming("d", query, stream_options);
    // Destructs here with the queue full and nobody consuming.
  }
  while (stream->Next().has_value()) {
  }
  EXPECT_EQ(stream->status().code(), StatusCode::kCancelled);
}

// ------------------------------------------------------ admission policy --

TEST(DangoronServerTest, AdmissionPolicyRefusesOversizedPrepares) {
  const int64_t b = 8;
  TimeSeriesMatrix data = SmallClimate(6, b * 32, 5005);

  DangoronServerOptions options;
  options.num_threads = 1;
  options.basic_window = b;
  options.sketch_cache_bytes = 1024;  // no index of this shape can fit
  options.refuse_oversized_prepares = true;
  DangoronServer server(options);
  ASSERT_TRUE(server.AddDataset("d", std::move(data)).ok());

  const SlidingQuery query = MakeQuery(0, b * 32, b * 5, b * 2, 0.6);
  auto result = server.Query("d", query);
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  const DangoronServerStats stats = server.stats();
  EXPECT_EQ(stats.prepares_refused, 1);
  EXPECT_EQ(stats.prepares_built, 0);

  // Streaming submissions hit the same gate, surfaced terminally.
  auto stream = server.SubmitStreaming("d", query);
  EXPECT_FALSE(stream->Next().has_value());
  EXPECT_EQ(stream->status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(server.stats().prepares_refused, 2);
}

// ------------------------------------------------ threshold-family cache --

// A window evaluated at the canonical family threshold answers every query
// threshold above it: sweep clients share one cached window universe and
// every result still matches the exact naive run at its own threshold.
TEST(DangoronServerTest, ThresholdFamilyMultipliesCacheHits) {
  const int64_t b = 8;
  const int64_t length = b * 36;
  TimeSeriesMatrix data = SmallClimate(6, length, 5006);
  const TimeSeriesMatrix copy = data;

  DangoronServerOptions options;
  options.num_threads = 2;
  options.basic_window = b;
  DangoronServer server(options);
  ASSERT_TRUE(server.AddDataset("d", std::move(data)).ok());

  // 0.62 and 0.64 share family 0.60; 0.68 lives in family 0.65.
  EXPECT_EQ(server.CanonicalThreshold(0.62, false),
            server.CanonicalThreshold(0.64, false));
  EXPECT_NE(server.CanonicalThreshold(0.62, false),
            server.CanonicalThreshold(0.68, false));

  SlidingQuery query = MakeQuery(0, length, b * 5, b * 2, 0.62);
  auto first = server.Query("d", query);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->windows_computed, query.NumWindows());
  ExpectSeriesEqual(NaiveTruth(copy, query), first->series, 1e-8);

  query.threshold = 0.64;
  auto swept = server.Query("d", query);
  ASSERT_TRUE(swept.ok());
  EXPECT_EQ(swept->windows_from_cache, query.NumWindows());
  EXPECT_EQ(swept->windows_computed, 0);
  ExpectSeriesEqual(NaiveTruth(copy, query), swept->series, 1e-8);

  query.threshold = 0.68;  // different family: evaluated afresh
  auto other_family = server.Query("d", query);
  ASSERT_TRUE(other_family.ok());
  EXPECT_EQ(other_family->windows_computed, query.NumWindows());
  ExpectSeriesEqual(NaiveTruth(copy, query), other_family->series, 1e-8);

  // Grid thresholds snap to themselves bit-exactly, so the stream-publish
  // interop of StreamPublishedWindowsServeHistoricalQueries keeps working.
  EXPECT_EQ(server.CanonicalThreshold(0.6, false), 0.6);
  EXPECT_EQ(server.CanonicalThreshold(0.85, false), 0.85);

  // Below the bottom grid step the snap would land on the accept-everything
  // threshold (full cliques per cached window); those fall back to exact
  // keys instead.
  EXPECT_EQ(server.CanonicalThreshold(0.04, true), 0.04);
  EXPECT_EQ(server.CanonicalThreshold(0.04, false), 0.04);  // c >= 0 cliff
  EXPECT_EQ(server.CanonicalThreshold(-0.98, false), -0.98);
  EXPECT_EQ(server.CanonicalThreshold(0.0, true), 0.0);
  EXPECT_EQ(server.CanonicalThreshold(0.0, false), 0.0);
  EXPECT_EQ(server.CanonicalThreshold(-1.0, false), -1.0);

  // Disabling families restores exact-match keys.
  DangoronServerOptions exact_options = options;
  exact_options.threshold_family_steps = 0;
  DangoronServer exact_server(exact_options);
  EXPECT_EQ(exact_server.CanonicalThreshold(0.62, false), 0.62);
}

// --------------------------------------------------------------- factory --

TEST(CreateServerTest, ParsesOptionsAndRejectsUnknownKeys) {
  auto server = CreateServer(
      "threads=2,basic_window=8,sketch_cache_mb=16,result_cache_mb=4,"
      "refuse_oversized=on,threshold_steps=10");
  ASSERT_TRUE(server.ok());
  EXPECT_EQ((*server)->options().basic_window, 8);
  EXPECT_EQ((*server)->options().num_threads, 2);
  EXPECT_EQ((*server)->options().sketch_cache_bytes, int64_t{16} << 20);
  EXPECT_EQ((*server)->options().result_cache_bytes, int64_t{4} << 20);
  EXPECT_TRUE((*server)->options().refuse_oversized_prepares);
  EXPECT_EQ((*server)->options().threshold_family_steps, 10);

  // The request-surface keys: admission policy, queue bound, default tier.
  auto queued = CreateServer(
      "basic_window=8,admission=queue,admission_queue=4,default_tier=auto");
  ASSERT_TRUE(queued.ok());
  EXPECT_EQ((*queued)->options().admission, AdmissionPolicy::kQueue);
  EXPECT_EQ((*queued)->options().admission_queue_limit, 4);
  EXPECT_EQ((*queued)->options().default_tier, ServeTier::kAuto);

  EXPECT_FALSE(CreateServer("bogus=1").ok());
  EXPECT_FALSE(CreateServer("basic_window=0").ok());
  EXPECT_FALSE(CreateServer("threads=-1").ok());
  EXPECT_FALSE(CreateServer("threshold_steps=-5").ok());
  EXPECT_FALSE(CreateServer("max_streams=0").ok());
  EXPECT_FALSE(CreateServer("admission=sometimes").ok());
  EXPECT_FALSE(CreateServer("admission_queue=0").ok());
  EXPECT_FALSE(CreateServer("default_tier=fast").ok());

  // An end-to-end query through the factory-built server.
  TimeSeriesMatrix data = SmallClimate(4, 8 * 20, 4009);
  const TimeSeriesMatrix copy = data;
  ASSERT_TRUE((*server)->AddDataset("d", std::move(data)).ok());
  const SlidingQuery query = MakeQuery(0, 8 * 20, 8 * 4, 8, 0.7);
  auto result = (*server)->Query("d", query);
  ASSERT_TRUE(result.ok());
  ExpectSeriesEqual(NaiveTruth(copy, query), result->series, 1e-8);
}

// ------------------------------------------------- cancellable join waits --

TEST(WindowClaimTest, FulfilledClaimWakesJoiner) {
  auto claim = std::make_shared<WindowClaim>();
  WindowStreamState stream(/*queue_capacity=*/1);

  std::thread joiner([&] {
    bool cancelled = true;
    WindowEdges edges = WaitForWindowClaim(claim, &stream, &cancelled);
    EXPECT_FALSE(cancelled);
    ASSERT_NE(edges, nullptr);
    EXPECT_EQ(edges->size(), 1u);
  });
  auto edges = std::make_shared<std::vector<Edge>>();
  edges->push_back(Edge{0, 1, 0.9});
  FulfillWindowClaim(claim, edges);
  joiner.join();

  // A joiner arriving after fulfillment returns immediately.
  bool cancelled = true;
  WindowEdges late = WaitForWindowClaim(claim, &stream, &cancelled);
  EXPECT_FALSE(cancelled);
  ASSERT_NE(late, nullptr);
}

// The satellite property: a streaming query blocked on another query's
// claimed window aborts on its own stream's Cancel instead of waiting for
// the foreign evaluation to resolve the claim.
TEST(WindowClaimTest, StreamCancelAbortsJoinWaitWithoutFulfillment) {
  auto claim = std::make_shared<WindowClaim>();
  auto stream = std::make_shared<WindowStreamState>(/*queue_capacity=*/1);

  bool cancelled = false;
  WindowEdges edges = std::make_shared<std::vector<Edge>>();
  std::thread joiner([&] {
    edges = WaitForWindowClaim(claim, stream.get(), &cancelled);
  });
  // The claim is never fulfilled while the joiner waits; only Cancel can
  // release it.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stream->Cancel();
  joiner.join();
  EXPECT_TRUE(cancelled);
  EXPECT_EQ(edges, nullptr);

  // Fulfilling afterwards is harmless (the claimant always fulfills), and
  // a fresh joiner on the same claim gets the result.
  FulfillWindowClaim(claim, std::make_shared<std::vector<Edge>>());
  bool late_cancelled = true;
  EXPECT_NE(WaitForWindowClaim(claim, stream.get(), &late_cancelled),
            nullptr);
  EXPECT_FALSE(late_cancelled);
}

TEST(WindowClaimTest, CancelBeforeWaitReturnsImmediately) {
  auto claim = std::make_shared<WindowClaim>();
  WindowStreamState stream(/*queue_capacity=*/1);
  stream.Cancel();
  bool cancelled = false;
  EXPECT_EQ(WaitForWindowClaim(claim, &stream, &cancelled), nullptr);
  EXPECT_TRUE(cancelled);
}

TEST(WindowClaimTest, MaterializedJoinersIgnoreStreams) {
  // A null stream is the materialized path: the wait is not cancellable
  // and resolves only through fulfillment.
  auto claim = std::make_shared<WindowClaim>();
  std::thread fulfiller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    FulfillWindowClaim(claim, std::make_shared<std::vector<Edge>>());
  });
  bool cancelled = true;
  EXPECT_NE(WaitForWindowClaim(claim, nullptr, &cancelled), nullptr);
  EXPECT_FALSE(cancelled);
  fulfiller.join();
}

// ------------------------------------- family-threshold stream publishing --

// A live stream whose alert threshold is off the server's family grid warms
// the family cache by evaluating and keying published windows at the
// canonical grid value; the server's off-grid historical query then runs
// entirely from cache, filtered up to its exact threshold at assembly.
TEST(DangoronServerTest, FamilyPublishedStreamWarmsOffGridQueries) {
  const int64_t b = 8;
  const int64_t length = b * 30;
  TimeSeriesMatrix data = SmallClimate(5, length, 4010);
  const TimeSeriesMatrix copy = data;

  DangoronServerOptions options;
  options.basic_window = b;
  options.num_threads = 1;
  DangoronServer server(options);
  ASSERT_TRUE(server.AddDataset("live", std::move(data)).ok());
  auto fingerprint = server.DatasetFingerprint("live");
  ASSERT_TRUE(fingerprint.ok());

  const double alert_threshold = 0.63;  // off the 0.05 grid
  const double canonical =
      server.CanonicalThreshold(alert_threshold, /*absolute=*/false);
  EXPECT_NE(canonical, alert_threshold);

  StreamingOptions stream_options;
  stream_options.basic_window = b;
  stream_options.window = b * 5;
  stream_options.step = b * 2;
  stream_options.threshold = alert_threshold;
  auto builder = StreamingNetworkBuilder::Create(5, stream_options);
  ASSERT_TRUE(builder.ok());
  ASSERT_TRUE(builder
                  ->PublishTo(server.mutable_result_cache(), *fingerprint,
                              canonical)
                  .ok());
  ASSERT_TRUE(builder->AppendColumns(copy, 0, length).ok());

  // Off-grid historical query: every window resolves from the published
  // family supersets — zero evaluation — and matches the exact truth at
  // the query's own threshold.
  const SlidingQuery query =
      MakeQuery(0, length, b * 5, b * 2, alert_threshold);
  auto result = server.Query("live", query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->windows_from_cache, query.NumWindows());
  EXPECT_EQ(result->windows_computed, 0);
  ExpectSeriesEqual(NaiveTruth(copy, query), result->series, 1e-8);

  // The family's grid value itself also rides the published windows (its
  // canonical threshold is the published key, bit-exactly).
  const SlidingQuery grid_query = MakeQuery(0, length, b * 5, b * 2, 0.6);
  auto grid_result = server.Query("live", grid_query);
  ASSERT_TRUE(grid_result.ok());
  EXPECT_EQ(grid_result->windows_computed, 0);
  ExpectSeriesEqual(NaiveTruth(copy, grid_query), grid_result->series, 1e-8);
}

// ------------------------------------------------------------ serve tiers --

// The closed-form admission estimate the server charges a prepare — the
// number the admission tests size cache budgets against (exact: the
// estimate matches the built index's MemoryBytes).
int64_t PrepareEstimate(const TimeSeriesMatrix& data, int64_t basic_window) {
  BasicWindowIndexOptions index_options;
  index_options.basic_window = basic_window;
  index_options.build_pair_sketches = true;
  return BasicWindowIndex::EstimateMemoryBytes(data.num_series(),
                                               data.length(), index_options) +
         static_cast<int64_t>(data.values().size() * sizeof(double));
}

// Polls `counter` until it reaches `expected` — the sync point for
// observing a request parked in the admission queue from the outside.
template <typename Fn>
bool WaitForCount(Fn counter, int64_t expected) {
  for (int i = 0; i < 2000; ++i) {
    if (counter() >= expected) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

// The acceptance property of the tier split: an approx request never
// touches the shared window-result cache (a following exact request on the
// same range recomputes everything and matches NaiveEngine), while both
// tiers share one prepared sketch.
TEST(ServeTierTest, ApproxBypassesWindowCacheAndSharesSketch) {
  const int64_t b = 8;
  const int64_t length = b * 40;
  TimeSeriesMatrix data = SmallClimate(6, length, 6001);
  const TimeSeriesMatrix copy = data;

  DangoronServerOptions options;
  options.num_threads = 2;
  options.basic_window = b;
  DangoronServer server(options);
  ASSERT_TRUE(server.AddDataset("d", std::move(data)).ok());

  const SlidingQuery query = MakeQuery(0, length, b * 6, b * 2, 0.6);

  QueryRequest approx_request{"d", query, ServeOptions{}};
  approx_request.options.tier = ServeTier::kApprox;
  auto approx = server.Query(approx_request);
  ASSERT_TRUE(approx.ok()) << approx.status().ToString();
  EXPECT_EQ(approx->tier_used, ServeTier::kApprox);
  EXPECT_EQ(approx->windows_computed, query.NumWindows());
  EXPECT_EQ(approx->windows_from_cache, 0);
  // Nothing was published: the window cache is untouched.
  EXPECT_EQ(server.stats().result_cache.entries, 0);
  EXPECT_EQ(server.stats().result_cache.insertions, 0);
  EXPECT_EQ(server.stats().queries_approx, 1);

  // The approx result is the deterministic Eq. 2 jumping run — identical to
  // driving the engine directly against its own build of the same index.
  DangoronOptions engine_options;
  engine_options.basic_window = b;
  engine_options.enable_jumping = true;
  DangoronEngine engine(engine_options);
  ASSERT_TRUE(engine.Prepare(copy).ok());
  auto jumped = engine.Query(query);
  ASSERT_TRUE(jumped.ok());
  ExpectSeriesEqual(*jumped, approx->series, 0.0);

  // An exact query on the same range finds no cached windows, recomputes,
  // and matches the naive truth — approx traffic cannot perturb it.
  QueryRequest exact_request{"d", query, ServeOptions{}};
  exact_request.options.tier = ServeTier::kExact;
  auto exact = server.Query(exact_request);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  EXPECT_EQ(exact->tier_used, ServeTier::kExact);
  EXPECT_EQ(exact->windows_from_cache, 0);
  EXPECT_EQ(exact->windows_computed, query.NumWindows());
  EXPECT_TRUE(exact->prepared_from_cache);  // one sketch serves both tiers
  ExpectSeriesEqual(NaiveTruth(copy, query), exact->series, 1e-8);
  EXPECT_EQ(server.stats().prepares_built, 1);
  EXPECT_EQ(server.stats().queries_approx, 1);
}

// Streaming approx submissions deliver the jumped windows in order through
// the bounded queue, report the tier and jump accounting in the summary,
// and leave the window cache untouched.
TEST(ServeTierTest, StreamingApproxDeliversJumpedWindows) {
  const int64_t b = 8;
  const int64_t length = b * 40;
  TimeSeriesMatrix data = SmallClimate(6, length, 6002);
  const TimeSeriesMatrix copy = data;

  DangoronServerOptions options;
  options.num_threads = 2;
  options.basic_window = b;
  DangoronServer server(options);
  ASSERT_TRUE(server.AddDataset("d", std::move(data)).ok());

  const SlidingQuery query = MakeQuery(0, length, b * 6, b * 2, 0.6);
  DangoronOptions engine_options;
  engine_options.basic_window = b;
  engine_options.enable_jumping = true;
  DangoronEngine engine(engine_options);
  ASSERT_TRUE(engine.Prepare(copy).ok());
  auto truth = engine.Query(query);
  ASSERT_TRUE(truth.ok());

  QueryRequest request{"d", query, ServeOptions{}};
  request.options.tier = ServeTier::kApprox;
  request.options.queue_capacity = 2;
  auto stream = server.SubmitStreaming(request);
  int64_t expected_index = 0;
  while (auto window = stream->Next()) {
    ASSERT_EQ(window->window_index, expected_index);
    const auto expected = truth->WindowEdges(window->window_index);
    ASSERT_EQ(window->edges->size(), expected.size())
        << "window " << window->window_index;
    for (size_t e = 0; e < expected.size(); ++e) {
      EXPECT_EQ((*window->edges)[e].i, expected[e].i);
      EXPECT_EQ((*window->edges)[e].j, expected[e].j);
      EXPECT_EQ((*window->edges)[e].value, expected[e].value);
    }
    ++expected_index;
  }
  ASSERT_TRUE(stream->status().ok()) << stream->status().ToString();
  EXPECT_EQ(expected_index, query.NumWindows());
  EXPECT_EQ(stream->summary().tier_used, ServeTier::kApprox);
  EXPECT_EQ(stream->summary().windows_computed, query.NumWindows());
  EXPECT_EQ(server.stats().result_cache.entries, 0);
  EXPECT_EQ(server.stats().queries_approx, 1);
}

// kAuto resolves against the request's deadline and the server's exact-cost
// estimate: a fresh server's estimate is pessimistically seeded, so a
// problem of ~2M cells estimates far above a 10 ms deadline (approx) and
// far below a 60 s one (exact); no deadline is always exact.
TEST(ServeTierTest, AutoTierFollowsDeadlinePressure) {
  const int64_t b = 8;
  const int64_t length = b * 66;
  TimeSeriesMatrix data = SmallClimate(256, length, 6003);

  DangoronServerOptions options;
  options.num_threads = 0;
  options.basic_window = b;
  DangoronServer server(options);
  ASSERT_TRUE(server.AddDataset("d", std::move(data)).ok());

  const SlidingQuery query = MakeQuery(0, length, b * 5, b, 0.7);
  QueryRequest request{"d", query, ServeOptions{}};
  request.options.tier = ServeTier::kAuto;

  request.options.deadline_ms = 10;
  auto tight = server.Query(request);
  ASSERT_TRUE(tight.ok()) << tight.status().ToString();
  EXPECT_EQ(tight->tier_used, ServeTier::kApprox);

  request.options.deadline_ms = 60'000;
  auto generous = server.Query(request);
  ASSERT_TRUE(generous.ok()) << generous.status().ToString();
  EXPECT_EQ(generous->tier_used, ServeTier::kExact);

  request.options.deadline_ms.reset();  // no deadline: reuse-friendly exact
  auto unhurried = server.Query(request);
  ASSERT_TRUE(unhurried.ok());
  EXPECT_EQ(unhurried->tier_used, ServeTier::kExact);

  // The exact queries above cached every window of this range: the same
  // tight deadline now resolves exact — the cost estimate discounts
  // cache-covered windows, so a warm range is never routed to approx.
  request.options.deadline_ms = 10;
  auto warm_tight = server.Query(request);
  ASSERT_TRUE(warm_tight.ok());
  EXPECT_EQ(warm_tight->tier_used, ServeTier::kExact);
  EXPECT_EQ(warm_tight->windows_from_cache, query.NumWindows());
}

// A request whose deadline has already passed when its task starts fails
// with DeadlineExceeded instead of running: the 1-thread FIFO pool is
// saturated with a train of full evaluations (distinct threshold families,
// so none rides the window cache), and the doomed request — queued behind
// all of them with a 1 ms deadline — can only start long after it passed.
TEST(ServeTierTest, ExpiredDeadlineFailsBeforeRunning) {
  const int64_t b = 8;
  const int64_t length = b * 60;
  TimeSeriesMatrix data = SmallClimate(128, length, 6004);

  DangoronServerOptions options;
  options.num_threads = 1;
  options.basic_window = b;
  DangoronServer server(options);
  ASSERT_TRUE(server.AddDataset("d", std::move(data)).ok());

  std::vector<std::future<Result<ServeResult>>> train;
  for (int i = 0; i < 6; ++i) {
    train.push_back(
        server.Submit("d", MakeQuery(0, length, b * 6, b, 0.5 + 0.05 * i)));
  }
  QueryRequest request{"d", MakeQuery(0, length, b * 6, b, 0.9),
                       ServeOptions{}};
  request.options.deadline_ms = 1;
  auto doomed = server.Submit(request);
  for (auto& pending : train) {
    ASSERT_TRUE(pending.get().ok());
  }
  auto result = doomed.get();
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(server.stats().deadline_exceeded, 1);
}

// -------------------------------------------------------- queued admission --

// An oversized prepare under admission=queue parks until the pinning stream
// releases the warm sketch, then admits by evicting the now-idle entry —
// instead of the refuse policy's outright rejection.
TEST(QueuedAdmissionTest, OversizedPrepareParksThenAdmitsAfterEviction) {
  const int64_t b = 8;
  const int64_t length = b * 44;
  TimeSeriesMatrix data_a = SmallClimate(5, length, 6005);
  TimeSeriesMatrix data_b = SmallClimate(5, length, 6006);
  const TimeSeriesMatrix copy_b = data_b;
  const int64_t estimate = PrepareEstimate(data_a, b);
  ASSERT_EQ(estimate, PrepareEstimate(data_b, b));  // same shape

  DangoronServerOptions options;
  options.num_threads = 2;
  options.basic_window = b;
  options.sketch_cache_bytes = estimate + estimate / 2;  // fits one, not two
  options.admission = AdmissionPolicy::kQueue;
  DangoronServer server(options);
  ASSERT_TRUE(server.AddDataset("a", std::move(data_a)).ok());
  ASSERT_TRUE(server.AddDataset("b", std::move(data_b)).ok());

  const SlidingQuery query = MakeQuery(0, length, b * 6, b * 2, 0.6);
  ASSERT_TRUE(server.Query("a", query).ok());  // A prepared and cached

  // A live stream pins A's sketch: its producer holds the prepared handle
  // while blocked on the tiny undrained delivery queue.
  StreamingSubmitOptions stream_options;
  stream_options.queue_capacity = 1;
  stream_options.max_batch_windows = 1;
  auto pin = server.SubmitStreaming("a", query, stream_options);
  ASSERT_TRUE(pin->Next().has_value());

  // B does not fit next to A, and A is pinned — the request parks.
  auto parked = server.Submit(QueryRequest{"b", query, ServeOptions{}});
  ASSERT_TRUE(WaitForCount(
      [&] { return server.stats().prepares_queued; }, 1));
  EXPECT_EQ(server.stats().prepares_built, 1);

  // Releasing the stream frees A's handle; the parked request wakes, evicts
  // the now-idle entry, and completes.
  pin->Cancel();
  while (pin->Next().has_value()) {
  }
  auto admitted = parked.get();
  ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();
  ExpectSeriesEqual(NaiveTruth(copy_b, query), admitted->series, 1e-8);

  const DangoronServerStats stats = server.stats();
  EXPECT_EQ(stats.prepares_queued, 1);
  EXPECT_EQ(stats.prepares_built, 2);
  EXPECT_EQ(stats.deadline_exceeded, 0);
}

// A parked request whose deadline passes is refused with DeadlineExceeded
// while the budget stays pinned.
TEST(QueuedAdmissionTest, ParkedPrepareRefusedAtDeadline) {
  const int64_t b = 8;
  const int64_t length = b * 44;
  TimeSeriesMatrix data_a = SmallClimate(5, length, 6007);
  TimeSeriesMatrix data_b = SmallClimate(5, length, 6008);
  const int64_t estimate = PrepareEstimate(data_a, b);

  DangoronServerOptions options;
  options.num_threads = 2;
  options.basic_window = b;
  options.sketch_cache_bytes = estimate + estimate / 2;
  options.admission = AdmissionPolicy::kQueue;
  DangoronServer server(options);
  ASSERT_TRUE(server.AddDataset("a", std::move(data_a)).ok());
  ASSERT_TRUE(server.AddDataset("b", std::move(data_b)).ok());

  const SlidingQuery query = MakeQuery(0, length, b * 6, b * 2, 0.6);
  ASSERT_TRUE(server.Query("a", query).ok());
  StreamingSubmitOptions stream_options;
  stream_options.queue_capacity = 1;
  stream_options.max_batch_windows = 1;
  auto pin = server.SubmitStreaming("a", query, stream_options);
  ASSERT_TRUE(pin->Next().has_value());

  QueryRequest request{"b", query, ServeOptions{}};
  request.options.deadline_ms = 100;
  auto result = server.Query(request);
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);

  const DangoronServerStats stats = server.stats();
  EXPECT_EQ(stats.prepares_queued, 1);
  EXPECT_EQ(stats.deadline_exceeded, 1);
  EXPECT_EQ(stats.prepares_built, 1);  // B never built

  pin->Cancel();
  while (pin->Next().has_value()) {
  }
}

// Cancelling a parked *streaming* request wakes it out of the admission
// queue promptly (the CancelWaker protocol), while the pinning stream is
// still live — the wake did not come from budget freeing up.
TEST(QueuedAdmissionTest, CancelledStreamLeavesQueuePromptly) {
  const int64_t b = 8;
  const int64_t length = b * 44;
  TimeSeriesMatrix data_a = SmallClimate(5, length, 6009);
  TimeSeriesMatrix data_b = SmallClimate(5, length, 6010);
  const int64_t estimate = PrepareEstimate(data_a, b);

  DangoronServerOptions options;
  options.num_threads = 2;
  options.basic_window = b;
  options.sketch_cache_bytes = estimate + estimate / 2;
  options.admission = AdmissionPolicy::kQueue;
  DangoronServer server(options);
  ASSERT_TRUE(server.AddDataset("a", std::move(data_a)).ok());
  ASSERT_TRUE(server.AddDataset("b", std::move(data_b)).ok());

  const SlidingQuery query = MakeQuery(0, length, b * 6, b * 2, 0.6);
  ASSERT_TRUE(server.Query("a", query).ok());
  StreamingSubmitOptions stream_options;
  stream_options.queue_capacity = 1;
  stream_options.max_batch_windows = 1;
  auto pin = server.SubmitStreaming("a", query, stream_options);
  ASSERT_TRUE(pin->Next().has_value());

  auto parked = server.SubmitStreaming(QueryRequest{"b", query, ServeOptions{}});
  ASSERT_TRUE(WaitForCount(
      [&] { return server.stats().prepares_queued; }, 1));
  parked->Cancel();
  while (parked->Next().has_value()) {
  }
  EXPECT_EQ(parked->status().code(), StatusCode::kCancelled);
  EXPECT_EQ(server.stats().prepares_built, 1);

  pin->Cancel();
  while (pin->Next().has_value()) {
  }
}

// The admission queue is bounded: past admission_queue_limit parked
// prepares, further oversized requests are refused outright.
TEST(QueuedAdmissionTest, BoundedQueueRefusesPastLimit) {
  const int64_t b = 8;
  const int64_t length = b * 44;
  TimeSeriesMatrix data_a = SmallClimate(5, length, 6011);
  TimeSeriesMatrix data_b = SmallClimate(5, length, 6012);
  const TimeSeriesMatrix copy_b = data_b;
  const int64_t estimate = PrepareEstimate(data_a, b);

  DangoronServerOptions options;
  options.num_threads = 3;
  options.basic_window = b;
  options.sketch_cache_bytes = estimate + estimate / 2;
  options.admission = AdmissionPolicy::kQueue;
  options.admission_queue_limit = 1;
  DangoronServer server(options);
  ASSERT_TRUE(server.AddDataset("a", std::move(data_a)).ok());
  ASSERT_TRUE(server.AddDataset("b", std::move(data_b)).ok());

  const SlidingQuery query = MakeQuery(0, length, b * 6, b * 2, 0.6);
  ASSERT_TRUE(server.Query("a", query).ok());
  StreamingSubmitOptions stream_options;
  stream_options.queue_capacity = 1;
  stream_options.max_batch_windows = 1;
  auto pin = server.SubmitStreaming("a", query, stream_options);
  ASSERT_TRUE(pin->Next().has_value());

  auto parked = server.Submit(QueryRequest{"b", query, ServeOptions{}});
  ASSERT_TRUE(WaitForCount(
      [&] { return server.stats().prepares_queued; }, 1));
  auto refused = server.Query(QueryRequest{"b", query, ServeOptions{}});
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GE(server.stats().prepares_refused, 1);

  pin->Cancel();
  while (pin->Next().has_value()) {
  }
  auto admitted = parked.get();
  ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();
  ExpectSeriesEqual(NaiveTruth(copy_b, query), admitted->series, 1e-8);
}

// A prepare that exceeds the *total* budget can never be admitted by any
// eviction: the queue refuses it immediately instead of parking forever.
TEST(QueuedAdmissionTest, NeverFittingPrepareRefusedImmediately) {
  const int64_t b = 8;
  TimeSeriesMatrix data = SmallClimate(6, b * 32, 6013);

  DangoronServerOptions options;
  options.num_threads = 1;
  options.basic_window = b;
  options.sketch_cache_bytes = 1024;
  options.admission = AdmissionPolicy::kQueue;
  DangoronServer server(options);
  ASSERT_TRUE(server.AddDataset("d", std::move(data)).ok());

  const SlidingQuery query = MakeQuery(0, b * 32, b * 5, b * 2, 0.6);
  QueryRequest request{"d", query, ServeOptions{}};
  request.options.admission = AdmissionPolicy::kQueue;
  auto result = server.Query(request);
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(server.stats().prepares_refused, 1);
  EXPECT_EQ(server.stats().prepares_queued, 0);
}

// -------------------------------------------------------------- robustness --

#if DANGORON_FAILPOINTS_ENABLED
constexpr bool kServeFailpointsCompiled = true;
#else
constexpr bool kServeFailpointsCompiled = false;
#endif

// Serving-stack tests that arm failpoints: every test starts and ends
// dormant so schedules cannot leak across tests (or into the rest of the
// suite), and the whole fixture skips when sites are compiled out.
class ServeFailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kServeFailpointsCompiled) {
      GTEST_SKIP() << "failpoints compiled out (DANGORON_FAILPOINTS=OFF)";
    }
    FailpointRegistry::Instance().DisarmAll();
  }
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }
};

// The request surface rejects a non-positive deadline up front — naming the
// offending value — instead of treating it as an instantly-expired clock.
TEST(DangoronServerTest, RejectsNonPositiveDeadlineNamingTheValue) {
  QueryRequest bare;
  bare.dataset = "d";
  bare.options.deadline_ms = -5;
  const Status invalid = bare.Validate();
  EXPECT_FALSE(invalid.ok());
  EXPECT_NE(invalid.message().find("-5"), std::string::npos)
      << invalid.ToString();
  bare.options.deadline_ms = 0;
  EXPECT_FALSE(bare.Validate().ok());
  bare.options.deadline_ms.reset();  // unset means no deadline: valid
  EXPECT_TRUE(bare.Validate().ok());

  const int64_t b = 8;
  DangoronServerOptions options;
  options.num_threads = 1;
  options.basic_window = b;
  DangoronServer server(options);
  ASSERT_TRUE(server.AddDataset("d", SmallClimate(3, b * 10, 7001)).ok());
  QueryRequest request{"d", MakeQuery(0, b * 10, b * 2, b, 0.7),
                       ServeOptions{}};
  request.options.deadline_ms = -5;
  auto result = server.Query(request);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("-5"), std::string::npos)
      << result.status().ToString();

  // The streaming surface fails the same way, terminally.
  auto stream = server.SubmitStreaming(request);
  EXPECT_FALSE(stream->Next().has_value());
  EXPECT_EQ(stream->status().code(), StatusCode::kInvalidArgument);
}

// A joiner blocked on a claim nobody fulfills gives up at its deadline —
// the third exit of the cancellable join wait, next to fulfillment and
// stream cancellation.
TEST(WindowClaimTest, DeadlineAbandonsUnfulfilledJoinWait) {
  auto claim = std::make_shared<WindowClaim>();
  WindowStreamState stream(/*queue_capacity=*/1);
  bool cancelled = false;
  bool deadline_hit = false;
  WindowEdges edges = WaitForWindowClaim(claim, &stream, &cancelled,
                                         DeadlineToken::After(20),
                                         &deadline_hit);
  EXPECT_EQ(edges, nullptr);
  EXPECT_FALSE(cancelled);
  EXPECT_TRUE(deadline_hit);

  // Fulfillment still wins over a not-yet-expired deadline, and a late
  // joiner with a deadline sees the fulfilled result immediately.
  FulfillWindowClaim(claim, std::make_shared<std::vector<Edge>>());
  bool late_deadline = true;
  EXPECT_NE(WaitForWindowClaim(claim, &stream, &cancelled,
                               DeadlineToken::After(20), &late_deadline),
            nullptr);
  EXPECT_FALSE(late_deadline);
}

// An eviction listener may call back into the cache (the admission queue's
// re-check pattern), and a nested Put that evicts again must coalesce into
// the running notification instead of recursing listener -> Put ->
// listener without a depth bound.
TEST(LruCacheTest, EvictionListenerMayReenterWithoutRecursing) {
  WindowResultCache cache(250);
  auto edges = std::make_shared<std::vector<Edge>>();
  const auto key = [](int64_t start_bw) {
    return WindowKey::Make(1, 24, 4, start_bw, 0.8, false);
  };
  int notifications = 0;
  cache.SetEvictionListener([&] {
    ++notifications;
    // This Put itself evicts (the budget is already full): recursion here
    // would re-enter the listener and never terminate.
    cache.Put(key(1000 + notifications), edges, 100);
  });
  cache.Put(key(0), edges, 100);
  cache.Put(key(1), edges, 100);
  cache.Put(key(2), edges, 100);  // evicts key(0); listener evicts key(1)
  EXPECT_EQ(notifications, 1);
  const LruCacheStats stats = cache.stats();
  EXPECT_LE(stats.bytes, 250);
  EXPECT_EQ(stats.bytes, stats.entries * 100);  // byte accounting intact
  EXPECT_EQ(stats.evictions, 2);
}

// The hard-deadline acceptance path: a streaming exact query whose sweep is
// stalled (injected band delay) far past a short deadline terminates with
// DeadlineExceeded promptly after the band boundary — after delivering the
// ascending prefix of windows that completed, which stays cache-reusable.
TEST_F(ServeFailpointTest, HardDeadlineAbortsMidSweepLeavingReusablePrefix) {
  const int64_t b = 8;
  const int64_t length = b * 40;
  TimeSeriesMatrix data = SmallClimate(6, length, 7002);

  DangoronServerOptions options;
  options.num_threads = 2;
  options.basic_window = b;
  DangoronServer server(options);
  ASSERT_TRUE(server.AddDataset("d", std::move(data)).ok());
  const SlidingQuery query = MakeQuery(0, length, b * 6, b, 0.6);

  // Every sweep band stalls 100 ms; a 25 ms deadline is blown inside the
  // first band, so the abort must come from the mid-run enforcement.
  ASSERT_TRUE(
      FailpointRegistry::Instance().Configure("sweep.band=delay:100").ok());
  QueryRequest request{"d", query, ServeOptions{}};
  request.options.tier = ServeTier::kExact;
  request.options.deadline_ms = 25;
  auto stream = server.SubmitStreaming(request);
  int64_t next_index = 0;
  while (auto window = stream->Next()) {
    EXPECT_EQ(window->window_index, next_index);  // an ascending prefix
    ++next_index;
  }
  EXPECT_EQ(stream->status().code(), StatusCode::kDeadlineExceeded)
      << stream->status().ToString();
  EXPECT_LT(next_index, query.NumWindows());  // it really stopped early
  const DangoronServerStats stats = server.stats();
  EXPECT_EQ(stats.deadline_exceeded, 1);
  EXPECT_EQ(stats.deadline_aborted_mid_run, 1);
  EXPECT_EQ(stats.inflight_window_claims, 0);  // no leaked claims

  // The completed prefix is already in the window cache: disarm the fault
  // and the follow-up exact query re-reads it instead of recomputing.
  FailpointRegistry::Instance().DisarmAll();
  auto warm = server.Query("d", query);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_GE(warm->windows_from_cache, next_index);
}

// Graceful degradation, pre-run leg: an *explicitly* exact request whose
// deadline the (pessimistically seeded) exact cost estimate already misses
// is served approx on time under degrade=auto — and flagged, unlike kAuto's
// own tier selection.
TEST(ServeDegradeTest, ExplicitExactServedApproxUnderTightDeadline) {
  const int64_t b = 8;
  const int64_t length = b * 66;
  TimeSeriesMatrix data = SmallClimate(256, length, 7003);

  DangoronServerOptions options;
  options.num_threads = 0;
  options.basic_window = b;
  DangoronServer server(options);
  ASSERT_TRUE(server.AddDataset("d", std::move(data)).ok());

  const SlidingQuery query = MakeQuery(0, length, b * 5, b, 0.7);
  QueryRequest request{"d", query, ServeOptions{}};
  request.options.tier = ServeTier::kExact;
  request.options.degrade = DegradePolicy::kAuto;
  request.options.deadline_ms = 10;
  auto result = server.Query(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->tier_used, ServeTier::kApprox);
  EXPECT_TRUE(result->degraded);
  EXPECT_EQ(server.stats().degraded_to_approx, 1);
  EXPECT_EQ(server.stats().queries_approx, 1);

  // Without degrade (the default), the same request is never silently
  // degraded: it runs exact — finishing in time or failing its deadline.
  QueryRequest strict = request;
  strict.options.degrade = DegradePolicy::kOff;
  auto undegraded = server.Query(strict);
  if (undegraded.ok()) {
    EXPECT_EQ(undegraded->tier_used, ServeTier::kExact);
    EXPECT_FALSE(undegraded->degraded);
  } else {
    EXPECT_EQ(undegraded.status().code(), StatusCode::kDeadlineExceeded);
  }
  EXPECT_EQ(server.stats().degraded_to_approx, 1);  // unchanged
}

// Transient prepare faults (IoError here) are absorbed by the bounded
// jittered retry loop: the query succeeds, the retries are counted, and
// exactly one build is ever paid.
TEST_F(ServeFailpointTest, TransientPrepareFailuresAreRetriedAndAbsorbed) {
  const int64_t b = 8;
  TimeSeriesMatrix data = SmallClimate(4, b * 20, 7004);
  const TimeSeriesMatrix copy = data;
  DangoronServerOptions options;
  options.num_threads = 1;
  options.basic_window = b;
  DangoronServer server(options);
  ASSERT_TRUE(server.AddDataset("d", std::move(data)).ok());
  ASSERT_TRUE(FailpointRegistry::Instance()
                  .Configure("serve.prepare=error:ioerror*2")
                  .ok());
  const SlidingQuery query = MakeQuery(0, b * 20, b * 4, b, 0.7);
  auto result = server.Query("d", query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectSeriesEqual(NaiveTruth(copy, query), result->series, 1e-8);
  const DangoronServerStats stats = server.stats();
  EXPECT_EQ(stats.prepare_retries, 2);
  EXPECT_EQ(stats.prepares_built, 1);
}

// A persistent prepare fault exhausts the retry budget and surfaces as the
// failure it is — and does not poison the server: once the fault clears,
// the next query builds and serves normally.
TEST_F(ServeFailpointTest, PersistentPrepareFailureExhaustsBoundedRetries) {
  const int64_t b = 8;
  TimeSeriesMatrix data = SmallClimate(4, b * 20, 7005);
  const TimeSeriesMatrix copy = data;
  DangoronServerOptions options;
  options.num_threads = 1;
  options.basic_window = b;
  DangoronServer server(options);
  ASSERT_TRUE(server.AddDataset("d", std::move(data)).ok());
  ASSERT_TRUE(FailpointRegistry::Instance()
                  .Configure("serve.prepare=error:ioerror")
                  .ok());
  const SlidingQuery query = MakeQuery(0, b * 20, b * 4, b, 0.7);
  auto result = server.Query("d", query);
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  EXPECT_EQ(server.stats().prepare_retries, 3);  // kPrepareMaxRetries
  EXPECT_EQ(server.stats().prepares_built, 0);

  FailpointRegistry::Instance().DisarmAll();
  auto recovered = server.Query("d", query);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ExpectSeriesEqual(NaiveTruth(copy, query), recovered->series, 1e-8);
  EXPECT_EQ(server.stats().prepares_built, 1);
}

// Graceful degradation, mid-run leg: a prepare that dies of (injected)
// resource exhaustion — which is never retried; backoff cannot free a
// budget — falls back to the approx tier under degrade=auto and still
// answers, with the deterministic jumping result.
TEST_F(ServeFailpointTest, MidQueryResourceExhaustionDegradesToApprox) {
  const int64_t b = 8;
  const int64_t length = b * 40;
  TimeSeriesMatrix data = SmallClimate(6, length, 7006);
  const TimeSeriesMatrix copy = data;
  DangoronServerOptions options;
  options.num_threads = 2;
  options.basic_window = b;
  DangoronServer server(options);
  ASSERT_TRUE(server.AddDataset("d", std::move(data)).ok());
  // Count-limited to the exact attempt: the degraded re-prepare succeeds.
  ASSERT_TRUE(FailpointRegistry::Instance()
                  .Configure("serve.prepare=error:resource_exhausted*1")
                  .ok());
  const SlidingQuery query = MakeQuery(0, length, b * 6, b * 2, 0.6);
  QueryRequest request{"d", query, ServeOptions{}};
  request.options.tier = ServeTier::kExact;
  request.options.degrade = DegradePolicy::kAuto;
  auto result = server.Query(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->tier_used, ServeTier::kApprox);
  EXPECT_TRUE(result->degraded);
  const DangoronServerStats stats = server.stats();
  EXPECT_EQ(stats.degraded_to_approx, 1);
  EXPECT_EQ(stats.queries_approx, 1);
  EXPECT_EQ(stats.queries, 1);  // the fallback is not a second query
  EXPECT_EQ(stats.prepare_retries, 0);  // ResourceExhausted never retries

  DangoronOptions engine_options;
  engine_options.basic_window = b;
  engine_options.enable_jumping = true;
  DangoronEngine engine(engine_options);
  ASSERT_TRUE(engine.Prepare(copy).ok());
  auto jumped = engine.Query(query);
  ASSERT_TRUE(jumped.ok());
  ExpectSeriesEqual(*jumped, result->series, 0.0);
}

// Spurious full-queue reports from the opportunistic delivery path must
// never drop or reorder a window: the blocking between-runs delivery picks
// up whatever TryPush spuriously refused.
TEST_F(ServeFailpointTest, SpuriousPushFailuresNeverDropOrReorderWindows) {
  const int64_t b = 8;
  const int64_t length = b * 40;
  TimeSeriesMatrix data = SmallClimate(5, length, 7007);
  const TimeSeriesMatrix copy = data;
  DangoronServerOptions options;
  options.num_threads = 2;
  options.basic_window = b;
  DangoronServer server(options);
  ASSERT_TRUE(server.AddDataset("d", std::move(data)).ok());
  ASSERT_TRUE(
      FailpointRegistry::Instance().Configure("stream.try_push=wake%50").ok());
  const SlidingQuery query = MakeQuery(0, length, b * 6, b * 2, 0.6);
  const CorrelationMatrixSeries truth = NaiveTruth(copy, query);
  auto stream = server.SubmitStreaming("d", query);
  int64_t next_index = 0;
  while (auto window = stream->Next()) {
    ASSERT_EQ(window->window_index, next_index);
    const auto expected = truth.WindowEdges(next_index);
    ASSERT_EQ(window->edges->size(), expected.size())
        << "window " << next_index;
    for (size_t e = 0; e < expected.size(); ++e) {
      EXPECT_EQ((*window->edges)[e].i, expected[e].i);
      EXPECT_EQ((*window->edges)[e].j, expected[e].j);
      EXPECT_NEAR((*window->edges)[e].value, expected[e].value, 1e-8);
    }
    ++next_index;
  }
  ASSERT_TRUE(stream->status().ok()) << stream->status().ToString();
  EXPECT_EQ(next_index, query.NumWindows());
}

// A consumer that cancels and drains concurrently with server destruction:
// teardown cancels active streams and joins producers while the consumer
// races it through the same stream state — no deadlock, no use-after-free
// (the state is shared ownership), and the stream still reaches a terminal
// status. Run under TSan for the memory-order half of the claim.
TEST(StreamingSubmitTest, DrainAfterCancelRacesServerTeardown) {
  const int64_t b = 8;
  const int64_t length = b * 40;
  const TimeSeriesMatrix data = SmallClimate(5, length, 7008);
  const SlidingQuery query = MakeQuery(0, length, b * 6, b, 0.6);

  for (int round = 0; round < 8; ++round) {
    DangoronServerOptions options;
    options.num_threads = 2;
    options.basic_window = b;
    auto server = std::make_unique<DangoronServer>(options);
    ASSERT_TRUE(server->AddDataset("d", data).ok());

    StreamingSubmitOptions stream_options;
    stream_options.queue_capacity = 1;  // the producer blocks on delivery
    stream_options.max_batch_windows = 1;
    auto stream = server->SubmitStreaming("d", query, stream_options);
    ASSERT_TRUE(stream->Next().has_value());

    std::thread consumer([&] {
      stream->Cancel();
      while (stream->Next().has_value()) {
      }
    });
    server.reset();  // races the cancel + drain
    consumer.join();
    const StatusCode code = stream->status().code();
    EXPECT_TRUE(code == StatusCode::kOk || code == StatusCode::kCancelled)
        << stream->status().ToString();
  }
}

}  // namespace
}  // namespace dangoron
