#include "bound/bounds.h"

#include <algorithm>
#include <cmath>

namespace dangoron {

int64_t TemporalBound::MaxSkippableBelow(int64_t pair_id, int64_t w0,
                                         double corr, double beta,
                                         int64_t max_steps) const {
  if (max_steps <= 0 || UpperBound(pair_id, w0, corr, 1) >= beta) {
    return 0;
  }
  // Invariant: UpperBound(lo) < beta <= UpperBound(hi) (hi may be
  // max_steps + 1 meaning "all steps skippable").
  int64_t lo = 1;
  int64_t hi = max_steps + 1;
  while (lo + 1 < hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    if (UpperBound(pair_id, w0, corr, mid) < beta) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

int64_t TemporalBound::MaxSkippableAbove(int64_t pair_id, int64_t w0,
                                         double corr, double beta,
                                         int64_t max_steps) const {
  if (max_steps <= 0 || LowerBound(pair_id, w0, corr, 1) < beta) {
    return 0;
  }
  // LowerBound is monotone non-increasing in j (each step subtracts a
  // non-negative amount), so the same binary search applies mirrored.
  int64_t lo = 1;
  int64_t hi = max_steps + 1;
  while (lo + 1 < hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    if (LowerBound(pair_id, w0, corr, mid) >= beta) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

int64_t TemporalBound::MaxSkippableWithin(int64_t pair_id, int64_t w0,
                                          double corr, double lo, double hi,
                                          int64_t max_steps) const {
  const auto confined = [&](int64_t j) {
    return UpperBound(pair_id, w0, corr, j) < hi &&
           LowerBound(pair_id, w0, corr, j) > lo;
  };
  if (max_steps <= 0 || !confined(1)) {
    return 0;
  }
  int64_t ok = 1;
  int64_t bad = max_steps + 1;
  while (ok + 1 < bad) {
    const int64_t mid = ok + (bad - ok) / 2;
    if (confined(mid)) {
      ok = mid;
    } else {
      bad = mid;
    }
  }
  return ok;
}

HorizontalBound HorizontalBoundFromPivot(double c_xz, double c_yz) {
  const double product = c_xz * c_yz;
  const double slack_x = std::max(0.0, 1.0 - c_xz * c_xz);
  const double slack_y = std::max(0.0, 1.0 - c_yz * c_yz);
  const double radius = std::sqrt(slack_x * slack_y);
  HorizontalBound bound;
  bound.lower = std::max(-1.0, product - radius);
  bound.upper = std::min(1.0, product + radius);
  return bound;
}

HorizontalBound HorizontalBoundFromPivots(std::span<const double> c_xz,
                                          std::span<const double> c_yz) {
  HorizontalBound best;
  const size_t count = std::min(c_xz.size(), c_yz.size());
  for (size_t p = 0; p < count; ++p) {
    const HorizontalBound bound = HorizontalBoundFromPivot(c_xz[p], c_yz[p]);
    best.lower = std::max(best.lower, bound.lower);
    best.upper = std::min(best.upper, bound.upper);
  }
  return best;
}

}  // namespace dangoron
