#ifndef DANGORON_BOUND_BOUNDS_H_
#define DANGORON_BOUND_BOUNDS_H_

#include <cstdint>

#include "sketch/basic_window_index.h"

namespace dangoron {

/// Temporal bounds of the paper's Equation 2 and the jump search built on
/// them (Figure 2).
///
/// Setting: the query window spans `ns` basic windows; one sliding step
/// advances by `m` basic windows. Sliding `j` steps from window `k` drops the
/// `j*m` oldest basic windows and admits `j*m` new ones. Under the paper's
/// assumption that basic windows are drawn from a common sample distribution,
/// the query-window correlation is approximately the mean of its basic-window
/// correlations, so with c_i the *departing* basic-window correlations
/// (known at window k) and every entering correlation bounded by +/-1:
///
///   upper:  Corr_{k+j} <= Corr_k + (1/ns) * sum_{departing}(1 - c_i)
///   lower:  Corr_{k+j} >= Corr_k - (1/ns) * sum_{departing}(1 + c_i)
///
/// Both sums are O(1) from the index's OneMinusCorrRange prefix
/// (sum(1 + c) = 2 * count - sum(1 - c)). The bounds are *statistical*: data
/// violating the stationarity assumption can break them, which is why
/// Dangoron's jump mode is approximate (paper: accuracy > 90%). The jump
/// search exploits that the upper bound is monotone non-decreasing in j.
class TemporalBound {
 public:
  /// `index` must outlive the bound. `ns` = basic windows per query window,
  /// `m` = basic windows per sliding step.
  TemporalBound(const BasicWindowIndex* index, int64_t ns, int64_t m)
      : index_(index), ns_(ns), m_(m) {}

  /// Eq. 2 upper bound on Corr_{k+j} given Corr_k = `corr`, where the
  /// current window starts at basic window `w0 = k*m`.
  double UpperBound(int64_t pair_id, int64_t w0, double corr,
                    int64_t j) const {
    return corr + index_->OneMinusCorrRange(pair_id, w0, w0 + j * m_) /
                      static_cast<double>(ns_);
  }

  /// Matching lower bound on Corr_{k+j}.
  double LowerBound(int64_t pair_id, int64_t w0, double corr,
                    int64_t j) const {
    const double one_minus = index_->OneMinusCorrRange(pair_id, w0, w0 + j * m_);
    const double one_plus = 2.0 * static_cast<double>(j * m_) - one_minus;
    return corr - one_plus / static_cast<double>(ns_);
  }

  /// Largest j in [1, max_steps] with UpperBound(j) < beta, i.e. the number
  /// of future windows that can be skipped as below-threshold; 0 when even
  /// the next window cannot be skipped. Binary search over the monotone
  /// prefix (O(log max_steps)).
  int64_t MaxSkippableBelow(int64_t pair_id, int64_t w0, double corr,
                            double beta, int64_t max_steps) const;

  /// Largest j in [1, max_steps] with LowerBound(j) >= beta (windows that
  /// provably — under the assumption — stay above threshold); 0 when none.
  int64_t MaxSkippableAbove(int64_t pair_id, int64_t w0, double corr,
                            double beta, int64_t max_steps) const;

  /// Largest j in [1, max_steps] with `lo < LowerBound(j)` and
  /// `UpperBound(j) < hi` — the number of windows provably confined to the
  /// open interval (lo, hi). Used by the absolute-threshold mode, where a
  /// non-edge must stay inside (-beta, beta) to be skipped. Both bounds
  /// drift monotonically, so the predicate is monotone and binary-searched.
  int64_t MaxSkippableWithin(int64_t pair_id, int64_t w0, double corr,
                             double lo, double hi, int64_t max_steps) const;

 private:
  const BasicWindowIndex* index_;
  int64_t ns_;
  int64_t m_;
};

/// Horizontal (cross-series) bound: for any three series within one window,
/// the correlation matrix of (x, y, z) is positive semidefinite, which
/// confines c_xy given c_xz and c_yz:
///
///   c_xz*c_yz - sqrt((1-c_xz^2)(1-c_yz^2))
///     <= c_xy <=
///   c_xz*c_yz + sqrt((1-c_xz^2)(1-c_yz^2))
///
/// Unlike Eq. 2 this is a theorem — no distributional assumption.
struct HorizontalBound {
  double lower = -1.0;
  double upper = 1.0;
};

/// Computes the bound interval for c_xy from pivot correlations.
HorizontalBound HorizontalBoundFromPivot(double c_xz, double c_yz);

/// Tightest interval across several pivots: intersection of the per-pivot
/// intervals (spans are parallel arrays of c_xz / c_yz).
HorizontalBound HorizontalBoundFromPivots(std::span<const double> c_xz,
                                          std::span<const double> c_yz);

}  // namespace dangoron

#endif  // DANGORON_BOUND_BOUNDS_H_
