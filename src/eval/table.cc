#include "eval/table.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace dangoron {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

Table& Table::AddRow() {
  rows_.emplace_back();
  return *this;
}

Table& Table::Add(std::string cell) {
  CHECK(!rows_.empty()) << "Add called before AddRow";
  rows_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::AddInt(int64_t value) {
  return Add(WithThousandsSeparators(value));
}

Table& Table::AddDouble(double value, int digits) {
  return Add(StrFormat("%.*f", digits, value));
}

Table& Table::AddTime(double seconds) {
  if (seconds >= 1.0) {
    return Add(StrFormat("%.2f s", seconds));
  }
  if (seconds >= 1e-3) {
    return Add(StrFormat("%.2f ms", seconds * 1e3));
  }
  return Add(StrFormat("%.1f us", seconds * 1e6));
}

Table& Table::AddRatio(double ratio) { return Add(StrFormat("%.1fx", ratio)); }

Table& Table::AddPercent(double fraction) {
  return Add(StrFormat("%.1f%%", fraction * 100.0));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const std::vector<std::string>& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out += cell;
      if (c + 1 < widths.size()) {
        out.append(widths[c] - cell.size() + 2, ' ');
      }
    }
    out += '\n';
  };
  append_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const std::vector<std::string>& row : rows_) {
    append_row(row);
  }
  return out;
}

std::string Table::ToCsv() const {
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        out += ',';
      }
      out += row[c];
    }
    out += '\n';
  };
  append_row(headers_);
  for (const std::vector<std::string>& row : rows_) {
    append_row(row);
  }
  return out;
}

}  // namespace dangoron
