#include "eval/workloads.h"

#include "common/stopwatch.h"
#include "ts/generators.h"
#include "ts/resample.h"

namespace dangoron {

Result<TimeSeriesMatrix> ClimateWorkload::Generate() const {
  ClimateSpec spec;
  spec.num_stations = num_stations;
  spec.num_hours = num_hours;
  spec.seed = seed;
  ASSIGN_OR_RETURN(ClimateDataset dataset, GenerateClimate(spec));
  return std::move(dataset.data);
}

SlidingQuery ClimateWorkload::DefaultQuery(double threshold) const {
  SlidingQuery query;
  query.start = 0;
  query.end = num_hours;
  query.window = 24 * 30;  // 30-day window
  query.step = 24;         // slide one day
  query.threshold = threshold;
  return query;
}

Result<EngineRun> RunEngine(CorrelationEngine* engine,
                            const TimeSeriesMatrix& data,
                            const SlidingQuery& query) {
  EngineRun run;
  Stopwatch prepare_watch;
  RETURN_IF_ERROR(engine->Prepare(data));
  run.prepare_seconds = prepare_watch.ElapsedSeconds();

  Stopwatch query_watch;
  ASSIGN_OR_RETURN(run.result, engine->Query(query));
  run.query_seconds = query_watch.ElapsedSeconds();
  run.stats = engine->stats();
  return run;
}

Result<EngineRun> RunEngineTimed(CorrelationEngine* engine,
                                 const TimeSeriesMatrix& data,
                                 const SlidingQuery& query, int repetitions) {
  EngineRun run;
  Stopwatch prepare_watch;
  RETURN_IF_ERROR(engine->Prepare(data));
  run.prepare_seconds = prepare_watch.ElapsedSeconds();

  // Warmup, also produces the returned result.
  Stopwatch first_watch;
  ASSIGN_OR_RETURN(run.result, engine->Query(query));
  run.query_seconds = first_watch.ElapsedSeconds();
  run.stats = engine->stats();

  for (int rep = 1; rep < repetitions; ++rep) {
    Stopwatch watch;
    ASSIGN_OR_RETURN(CorrelationMatrixSeries repeat, engine->Query(query));
    run.query_seconds = std::min(run.query_seconds, watch.ElapsedSeconds());
  }
  return run;
}

}  // namespace dangoron
