#ifndef DANGORON_EVAL_WORKLOADS_H_
#define DANGORON_EVAL_WORKLOADS_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "engine/correlation_engine.h"
#include "engine/query.h"
#include "ts/time_series_matrix.h"

namespace dangoron {

/// The canonical evaluation workload of the paper: a USCRN-like hourly
/// climate year. Defaults match the E1 configuration in DESIGN.md
/// (l = 30 days, eta = 1 day, beta = 0.8, basic window = 24 h).
struct ClimateWorkload {
  int64_t num_stations = 128;
  int64_t num_hours = 24 * 365;
  uint64_t seed = 42;

  /// Generates the data matrix (interpolated, ready for engines).
  Result<TimeSeriesMatrix> Generate() const;

  /// The default sliding query over the generated data.
  SlidingQuery DefaultQuery(double threshold = 0.8) const;
};

/// Runs Prepare + Query on an engine, returning wall-clock timings alongside
/// the result; the shared measurement helper of every experiment binary.
struct EngineRun {
  double prepare_seconds = 0.0;
  double query_seconds = 0.0;
  CorrelationMatrixSeries result;
  EngineStats stats;
};
Result<EngineRun> RunEngine(CorrelationEngine* engine,
                            const TimeSeriesMatrix& data,
                            const SlidingQuery& query);

/// Repeats Query `repetitions` times (after one warmup) and reports the
/// minimum query time — the "pure query time" measure of the paper.
Result<EngineRun> RunEngineTimed(CorrelationEngine* engine,
                                 const TimeSeriesMatrix& data,
                                 const SlidingQuery& query, int repetitions);

}  // namespace dangoron

#endif  // DANGORON_EVAL_WORKLOADS_H_
