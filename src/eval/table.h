#ifndef DANGORON_EVAL_TABLE_H_
#define DANGORON_EVAL_TABLE_H_

#include <string>
#include <vector>

namespace dangoron {

/// Column-aligned plain-text table, the output format of every experiment
/// binary ("paper-style rows"). Cells are strings; numeric helpers format
/// consistently.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent Add* calls fill it left to right.
  Table& AddRow();
  Table& Add(std::string cell);
  Table& Add(const char* cell) { return Add(std::string(cell)); }
  Table& AddInt(int64_t value);
  /// Fixed-point with `digits` decimals.
  Table& AddDouble(double value, int digits = 3);
  /// Seconds rendered with an adaptive unit (s / ms / us).
  Table& AddTime(double seconds);
  /// "12.3x" speedup style.
  Table& AddRatio(double ratio);
  /// "93.1%" percentage style.
  Table& AddPercent(double fraction);

  /// Renders with a header underline and 2-space column gaps.
  std::string ToString() const;

  /// Renders as CSV (for piping results into plotting scripts).
  std::string ToCsv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dangoron

#endif  // DANGORON_EVAL_TABLE_H_
