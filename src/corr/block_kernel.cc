#include "corr/block_kernel.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_utils.h"

namespace dangoron {

namespace {

// Stats of one series within one basic window, in the forms the panel
// builder needs. The degenerate-window guard compares the same centered sum
// of squares against the same kMomentVarianceEps as the scalar moment
// kernels, so the two build paths agree on which windows are dead.
struct WindowZStats {
  double mean = 0.0;
  double stddev = 0.0;  // population; 0 for a degenerate window
  double scale = 0.0;   // 1 / sqrt(centered sum of squares); 0 if degenerate
};

inline WindowZStats ComputeWindowZStats(const double* x, int64_t b) {
  double sum = 0.0;
  double sumsq = 0.0;
  for (int64_t t = 0; t < b; ++t) {
    sum += x[t];
    sumsq += x[t] * x[t];
  }
  WindowZStats stats;
  stats.mean = sum / static_cast<double>(b);
  // Centered sum of squares (b * population variance), the exact quantity
  // PearsonFromMoments guards on. A degenerate window keeps stddev and
  // scale at 0: the zero scale zeroes the z row, making its correlations 0.
  const double var_b = sumsq - sum * sum / static_cast<double>(b);
  if (var_b > kMomentVarianceEps) {
    stats.stddev = std::sqrt(var_b / static_cast<double>(b));
    stats.scale = 1.0 / std::sqrt(var_b);
  }
  return stats;
}

}  // namespace

NormalizedPanels BuildNormalizedPanels(const TimeSeriesMatrix& data,
                                       int64_t basic_window,
                                       ThreadPool* pool) {
  CHECK_GT(basic_window, 0);
  NormalizedPanels panels;
  panels.num_series = data.num_series();
  panels.basic_window = basic_window;
  panels.num_windows = data.length() / basic_window;
  panels.num_tiles = CeilDiv(panels.num_series, kCorrTile);

  const int64_t n = panels.num_series;
  const int64_t b = basic_window;
  const int64_t nb = panels.num_windows;
  panels.values.assign(
      static_cast<size_t>(nb * panels.num_tiles * b * kCorrTile), 0.0);
  panels.mean.assign(static_cast<size_t>(nb * n), 0.0);
  panels.stddev.assign(static_cast<size_t>(nb * n), 0.0);

  // One task per series tile: window stats per series, then the transposing
  // fill of the tile's panels — contiguous kCorrTile-wide writes, with the
  // tile's raw row segments cache-hot. Columns past num_series stay zero.
  auto fill_tile = [&](int64_t tile) {
    const int64_t s_begin = tile * kCorrTile;
    const int64_t s_end = std::min(n, s_begin + kCorrTile);
    double mean_c[kCorrTile];
    double scale_c[kCorrTile];
    for (int64_t w = 0; w < nb; ++w) {
      for (int64_t s = s_begin; s < s_end; ++s) {
        const WindowZStats stats =
            ComputeWindowZStats(data.Row(s).data() + w * b, b);
        panels.mean[static_cast<size_t>(w * n + s)] = stats.mean;
        panels.stddev[static_cast<size_t>(w * n + s)] = stats.stddev;
        mean_c[s - s_begin] = stats.mean;
        scale_c[s - s_begin] = stats.scale;
      }
      double* panel = panels.values.data() +
                      static_cast<size_t>((w * panels.num_tiles + tile) * b *
                                          kCorrTile);
      for (int64_t t = 0; t < b; ++t) {
        double* zrow = panel + t * kCorrTile;
        for (int64_t s = s_begin; s < s_end; ++s) {
          zrow[s - s_begin] = (data.Row(s)[static_cast<size_t>(w * b + t)] -
                               mean_c[s - s_begin]) *
                              scale_c[s - s_begin];
        }
      }
    }
  };

  if (pool != nullptr && pool->num_threads() > 1 && panels.num_tiles > 1) {
    pool->ParallelFor(panels.num_tiles, fill_tile);
  } else {
    for (int64_t tile = 0; tile < panels.num_tiles; ++tile) {
      fill_tile(tile);
    }
  }
  return panels;
}

namespace {

// Register geometry of the Gram micro-kernels. 16 columns are two Vec8
// accumulators; 4 rows give 8 independent accumulator chains, enough to
// cover FMA latency on two issue ports. Accumulators are loaded from /
// stored to `out` once per time chunk; the whole t loop runs
// register-resident with one contiguous 16-wide z load per (row group, t).
// (Explicit Vec8 accumulators matter: the equivalent local-array loops
// auto-vectorize but round-trip every accumulator through the stack each
// time step.)
constexpr int64_t kRegCols = 16;
constexpr int64_t kRegRows = 4;

// One output row r over local columns [c_from, c_end), accumulating
// [t_begin, t_end). `out_row` points at local column 0 of row r.
inline void GramRow1(const double* zrows, int64_t row_stride,
                     const double* zcols, int64_t col_stride, int64_t t_begin,
                     int64_t t_end, int64_t r, int64_t c_from, int64_t c_end,
                     double* out_row, bool load_acc) {
  for (int64_t cb = c_from; cb < c_end; cb += kRegCols) {
    const int64_t width = std::min<int64_t>(kRegCols, c_end - cb);
    double* dst = out_row + cb;
    const double* zr = zrows + t_begin * row_stride + r;
    const double* zc = zcols + t_begin * col_stride + cb;
    if (width == kRegCols) {
      Vec8 a0 = load_acc ? LoadVec8(dst) : SplatVec8(0.0);
      Vec8 a1 = load_acc ? LoadVec8(dst + 8) : SplatVec8(0.0);
      for (int64_t t = t_begin; t < t_end;
           ++t, zr += row_stride, zc += col_stride) {
        const Vec8 zrv = SplatVec8(*zr);
        a0 += zrv * LoadVec8(zc);
        a1 += zrv * LoadVec8(zc + 8);
      }
      StoreVec8(dst, a0);
      StoreVec8(dst + 8, a1);
    } else {
      double acc[kRegCols];
      for (int64_t u = 0; u < width; ++u) {
        acc[u] = load_acc ? dst[u] : 0.0;
      }
      for (int64_t t = t_begin; t < t_end;
           ++t, zr += row_stride, zc += col_stride) {
        const double zrv = *zr;
        for (int64_t u = 0; u < width; ++u) {
          acc[u] += zrv * zc[u];
        }
      }
      for (int64_t u = 0; u < width; ++u) {
        dst[u] = acc[u];
      }
    }
  }
}

// Four output rows r .. r+3 over local columns [c_from, c_end), sharing
// each z column load across the rows.
inline void GramRow4(const double* zrows, int64_t row_stride,
                     const double* zcols, int64_t col_stride, int64_t t_begin,
                     int64_t t_end, int64_t r, int64_t c_from, int64_t c_end,
                     double* out, int64_t out_stride, bool load_acc) {
  double* out_rows[kRegRows];
  for (int64_t v = 0; v < kRegRows; ++v) {
    out_rows[v] = out + (r + v) * out_stride;
  }
  for (int64_t cb = c_from; cb < c_end; cb += kRegCols) {
    const int64_t width = std::min<int64_t>(kRegCols, c_end - cb);
    const double* zr = zrows + t_begin * row_stride + r;
    const double* zc = zcols + t_begin * col_stride + cb;
    if (width == kRegCols) {
      Vec8 a00 = load_acc ? LoadVec8(out_rows[0] + cb) : SplatVec8(0.0);
      Vec8 a01 = load_acc ? LoadVec8(out_rows[0] + cb + 8) : SplatVec8(0.0);
      Vec8 a10 = load_acc ? LoadVec8(out_rows[1] + cb) : SplatVec8(0.0);
      Vec8 a11 = load_acc ? LoadVec8(out_rows[1] + cb + 8) : SplatVec8(0.0);
      Vec8 a20 = load_acc ? LoadVec8(out_rows[2] + cb) : SplatVec8(0.0);
      Vec8 a21 = load_acc ? LoadVec8(out_rows[2] + cb + 8) : SplatVec8(0.0);
      Vec8 a30 = load_acc ? LoadVec8(out_rows[3] + cb) : SplatVec8(0.0);
      Vec8 a31 = load_acc ? LoadVec8(out_rows[3] + cb + 8) : SplatVec8(0.0);
      for (int64_t t = t_begin; t < t_end;
           ++t, zr += row_stride, zc += col_stride) {
        const Vec8 c0 = LoadVec8(zc);
        const Vec8 c1 = LoadVec8(zc + 8);
        const Vec8 zr0 = SplatVec8(zr[0]);
        a00 += zr0 * c0;
        a01 += zr0 * c1;
        const Vec8 zr1 = SplatVec8(zr[1]);
        a10 += zr1 * c0;
        a11 += zr1 * c1;
        const Vec8 zr2 = SplatVec8(zr[2]);
        a20 += zr2 * c0;
        a21 += zr2 * c1;
        const Vec8 zr3 = SplatVec8(zr[3]);
        a30 += zr3 * c0;
        a31 += zr3 * c1;
      }
      StoreVec8(out_rows[0] + cb, a00);
      StoreVec8(out_rows[0] + cb + 8, a01);
      StoreVec8(out_rows[1] + cb, a10);
      StoreVec8(out_rows[1] + cb + 8, a11);
      StoreVec8(out_rows[2] + cb, a20);
      StoreVec8(out_rows[2] + cb + 8, a21);
      StoreVec8(out_rows[3] + cb, a30);
      StoreVec8(out_rows[3] + cb + 8, a31);
    } else {
      double acc[kRegRows][kRegCols];
      for (int64_t v = 0; v < kRegRows; ++v) {
        for (int64_t u = 0; u < width; ++u) {
          acc[v][u] = load_acc ? out_rows[v][cb + u] : 0.0;
        }
      }
      for (int64_t t = t_begin; t < t_end;
           ++t, zr += row_stride, zc += col_stride) {
        const double zr0 = zr[0];
        const double zr1 = zr[1];
        const double zr2 = zr[2];
        const double zr3 = zr[3];
        for (int64_t u = 0; u < width; ++u) {
          const double zcu = zc[u];
          acc[0][u] += zr0 * zcu;
          acc[1][u] += zr1 * zcu;
          acc[2][u] += zr2 * zcu;
          acc[3][u] += zr3 * zcu;
        }
      }
      for (int64_t v = 0; v < kRegRows; ++v) {
        for (int64_t u = 0; u < width; ++u) {
          out_rows[v][cb + u] = acc[v][u];
        }
      }
    }
  }
}

}  // namespace

void GramPanelTile(const double* zrows, int64_t row_stride, int64_t nrows,
                   const double* zcols, int64_t col_stride, int64_t ncols,
                   int64_t t_begin, int64_t t_end, bool upper_only,
                   int64_t diag, double* out, int64_t out_stride,
                   bool accumulate) {
  // Time chunking bounds the streamed working set so the z blocks a
  // row-group re-reads stay cache-resident; the per-cell summation order is
  // plain ascending t, independent of every blocking choice below.
  constexpr int64_t kTimeChunk = 512;
  for (int64_t tc = t_begin; tc < t_end; tc += kTimeChunk) {
    const int64_t te = std::min(t_end, tc + kTimeChunk);
    // Only the first chunk may overwrite; later chunks always fold in.
    const bool load_acc = accumulate || tc != t_begin;
    int64_t r = 0;
    for (; r + kRegRows <= nrows; r += kRegRows) {
      // In upper_only mode the 4-row group runs over the rectangle strictly
      // right of all four rows; the triangular sliver next to the diagonal
      // is finished per row.
      const int64_t group_c0 =
          upper_only ? std::max<int64_t>(0, r + diag + kRegRows) : 0;
      if (group_c0 < ncols) {
        GramRow4(zrows, row_stride, zcols, col_stride, tc, te, r, group_c0,
                 ncols, out, out_stride, load_acc);
      }
      if (upper_only) {
        for (int64_t v = 0; v < kRegRows; ++v) {
          const int64_t c_from = std::max<int64_t>(0, r + v + diag + 1);
          if (c_from < group_c0) {
            GramRow1(zrows, row_stride, zcols, col_stride, tc, te, r + v,
                     c_from, std::min(group_c0, ncols),
                     out + (r + v) * out_stride, load_acc);
          }
        }
      }
    }
    for (; r < nrows; ++r) {
      const int64_t c0 = upper_only ? std::max<int64_t>(0, r + diag + 1) : 0;
      if (c0 < ncols) {
        GramRow1(zrows, row_stride, zcols, col_stride, tc, te, r, c0, ncols,
                 out + r * out_stride, load_acc);
      }
    }
  }
}

void GramAccumulateTile(const double* zt, int64_t num_series, int64_t t_begin,
                        int64_t t_end, int64_t row_begin, int64_t row_end,
                        int64_t col_begin, int64_t col_end, bool upper_only,
                        double* out, int64_t out_stride, bool accumulate) {
  GramPanelTile(zt + row_begin, num_series, row_end - row_begin,
                zt + col_begin, num_series, col_end - col_begin, t_begin,
                t_end, upper_only, row_begin - col_begin, out, out_stride,
                accumulate);
}

void GramUpperTriangle(const double* zt, int64_t num_series, int64_t t_begin,
                       int64_t t_end, double* matrix, ThreadPool* pool) {
  const int64_t num_row_tiles = CeilDiv(num_series, kCorrTile);
  auto run_row_tile = [&](int64_t ti) {
    const int64_t row_begin = ti * kCorrTile;
    const int64_t row_end = std::min(num_series, row_begin + kCorrTile);
    for (int64_t tj = ti; tj < num_row_tiles; ++tj) {
      const int64_t col_begin = tj * kCorrTile;
      const int64_t col_end = std::min(num_series, col_begin + kCorrTile);
      GramAccumulateTile(zt, num_series, t_begin, t_end, row_begin, row_end,
                         col_begin, col_end, /*upper_only=*/tj == ti,
                         matrix + row_begin * num_series + col_begin,
                         num_series);
    }
  };
  if (pool != nullptr && pool->num_threads() > 1 && num_row_tiles > 1) {
    pool->ParallelFor(num_row_tiles, run_row_tile);
  } else {
    for (int64_t ti = 0; ti < num_row_tiles; ++ti) {
      run_row_tile(ti);
    }
  }
}

}  // namespace dangoron
