#ifndef DANGORON_CORR_SWEEP_KERNEL_H_
#define DANGORON_CORR_SWEEP_KERNEL_H_

#include <cstdint>
#include <vector>

#include "corr/block_kernel.h"
#include "engine/query.h"

namespace dangoron {

/// Pair-tile granularity of the window-major exact sweep. Fixed (not derived
/// from the thread count) so the tile decomposition — and with it the exact
/// SIMD/remainder split at tile boundaries — is identical for every pool
/// size; determinism across thread counts then needs no assumptions beyond
/// per-cell arithmetic being order-free, which it is (cells are
/// independent).
inline constexpr int64_t kSweepTilePairs = 1024;

/// Windows swept per pass over the pair tiles. Pure window-major order
/// (band 1) re-streams every pair's dot-prefix cache lines once per window,
/// which is memory-bound at N >= 256: the whole prefix block re-enters the
/// core per window. A band keeps each pair's two prefix lines L1-resident
/// across `kSweepWindowBand` windows (traffic divided by the band) while
/// windows are still emitted at band cadence — time-to-first-window is
/// band/num_windows of the sweep instead of 1.0. 16 windows x 2 lines is
/// well inside L1 next to the streamed moment rows; measured on
/// bench_query_time it restores the compute-bound per-cell cost of the
/// small-N regime (band 1: ~1.3x over scalar at N=256; band 16: ~2.8x).
inline constexpr int64_t kSweepWindowBand = 16;

/// Immutable per-query view the exact sweep kernel reads: the index's
/// padded pair dot-prefix block plus the engine's hoisted range moments
/// (see DangoronEngine::QueryPreparedToSink). Prefix slot w of pair p sits
/// at `dot_prefix[p * row_stride + w]` (BasicWindowIndex::PairDotPrefix /
/// PairDotRowStride); `range_sum` / `range_inv_css` are window-major
/// `[k * num_series + s]` — the query-range sum and reciprocal centered
/// root-sum-of-squares (0 for degenerate series) of series s in window k.
struct SweepView {
  const double* dot_prefix = nullptr;
  int64_t row_stride = 0;
  const double* range_sum = nullptr;
  const double* range_inv_css = nullptr;
  int64_t num_series = 0;
  /// 1 / query.window — the covariance normalizer.
  double inv_count = 0.0;
  double threshold = 0.0;
  bool absolute = false;
};

/// The banded window-major exact sweep: computes the correlations of the
/// contiguous pair-id range [pair_begin, pair_end) for windows
/// [k_begin, k_end) — window k covering basic windows
/// [base_w0 + k*m, base_w0 + k*m + ns) — and appends the edges clearing the
/// threshold to `out_windows[k - k_begin]`, each window's survivors in
/// ascending pair-id order (== the canonical (i, j) edge order, so
/// concatenating tile outputs in tile order yields sorted windows with no
/// sort pass).
///
/// `i0` / `j0` are the series ids of `pair_begin` (callers already know
/// them from BasicWindowIndex::PairFromId; corr/ stays below sketch/ in the
/// layering). Within a fixed-i run the pair ids — and with them the dot
/// prefix rows — advance contiguously and the j-side moments are contiguous
/// loads, so the run vectorizes: two strided prefix loads, one fused
/// subtract, two multiplies and a clamp per lane, then one branch-free
/// threshold compare per 8-lane group. The window loop sits *inside* the
/// 8-pair group so the group's prefix lines are reused across the whole
/// band. Per-cell arithmetic is the exact operation sequence of the scalar
/// pair-major cell (DangoronEngine's jumping loop), so the two paths
/// produce bit-identical edges.
void SweepWindowBandPairRange(const SweepView& view, int64_t base_w0,
                              int64_t ns, int64_t m, int64_t k_begin,
                              int64_t k_end, int64_t pair_begin,
                              int64_t pair_end, int64_t i0, int64_t j0,
                              std::vector<Edge>* out_windows);

/// The survivor arena of the banded window-major sweep: one edge buffer per
/// (pair tile, band window), cleared — not deallocated — between bands,
/// replacing the per-block `vector<vector<vector<Edge>>>` nesting whose
/// per-window inner vectors were reallocated from scratch every query
/// (allocation churn that dominates at high thresholds, where windows hold
/// a handful of edges). Tile rows are written by concurrent tile tasks
/// (disjoint slots) and assembled into flat windows on the emitting thread.
class SweepEdgeArena {
 public:
  SweepEdgeArena(int64_t num_tiles, int64_t band)
      : band_(band), tiles_(static_cast<size_t>(num_tiles)) {
    for (std::vector<std::vector<Edge>>& tile : tiles_) {
      tile.resize(static_cast<size_t>(band));
    }
  }

  int64_t num_tiles() const { return static_cast<int64_t>(tiles_.size()); }
  int64_t band() const { return band_; }

  /// Tile t's per-band-window output row, indexable [0, band).
  std::vector<Edge>* tile_windows(int64_t t) {
    return tiles_[static_cast<size_t>(t)].data();
  }

  /// Clears every buffer, retaining capacity for the next band.
  void BeginBand() {
    for (std::vector<std::vector<Edge>>& tile : tiles_) {
      for (std::vector<Edge>& window : tile) {
        window.clear();
      }
    }
  }

  /// Concatenates band slot `b` of every tile, in tile order, into one flat
  /// window — already sorted by (i, j), because tiles cover ascending
  /// pair-id ranges and each tile appends in ascending pair-id order.
  std::vector<Edge> AssembleWindow(int64_t b) const {
    size_t total = 0;
    for (const std::vector<std::vector<Edge>>& tile : tiles_) {
      total += tile[static_cast<size_t>(b)].size();
    }
    std::vector<Edge> window;
    window.reserve(total);
    for (const std::vector<std::vector<Edge>>& tile : tiles_) {
      const std::vector<Edge>& part = tile[static_cast<size_t>(b)];
      window.insert(window.end(), part.begin(), part.end());
    }
    return window;
  }

 private:
  int64_t band_;
  std::vector<std::vector<std::vector<Edge>>> tiles_;
};

}  // namespace dangoron

#endif  // DANGORON_CORR_SWEEP_KERNEL_H_
