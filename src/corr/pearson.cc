#include "corr/pearson.h"

#include <cmath>

#include "common/logging.h"
#include "common/math_utils.h"
#include "corr/block_kernel.h"

namespace dangoron {

double PearsonNaive(std::span<const double> x, std::span<const double> y) {
  DCHECK_EQ(x.size(), y.size());
  if (x.empty()) {
    return 0.0;
  }
  const double n = static_cast<double>(x.size());
  double mean_x = 0.0;
  double mean_y = 0.0;
  for (size_t t = 0; t < x.size(); ++t) {
    mean_x += x[t];
    mean_y += y[t];
  }
  mean_x /= n;
  mean_y /= n;
  double cov = 0.0;
  double var_x = 0.0;
  double var_y = 0.0;
  for (size_t t = 0; t < x.size(); ++t) {
    const double dx = x[t] - mean_x;
    const double dy = y[t] - mean_y;
    cov += dx * dy;
    var_x += dx * dx;
    var_y += dy * dy;
  }
  if (var_x <= kMomentVarianceEps || var_y <= kMomentVarianceEps) {
    return 0.0;
  }
  return ClampCorrelation(cov / std::sqrt(var_x * var_y));
}

double PearsonFromMoments(double n, double sx, double sy, double sxx,
                          double syy, double sxy) {
  const double cov = sxy - sx * sy / n;
  const double var_x = sxx - sx * sx / n;
  const double var_y = syy - sy * sy / n;
  if (var_x <= kMomentVarianceEps || var_y <= kMomentVarianceEps) {
    return 0.0;
  }
  return ClampCorrelation(cov / std::sqrt(var_x * var_y));
}

double CombinePearsonEq1(int64_t b, std::span<const BasicWindowStats> x,
                         std::span<const BasicWindowStats> y,
                         std::span<const double> c) {
  DCHECK_EQ(x.size(), y.size());
  DCHECK_EQ(x.size(), c.size());
  if (x.empty()) {
    return 0.0;
  }
  const double bw = static_cast<double>(b);
  const double ns = static_cast<double>(x.size());

  // Global means over the query window from the per-window means.
  double mean_x = 0.0;
  double mean_y = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    mean_x += x[i].mean;
    mean_y += y[i].mean;
  }
  mean_x /= ns;
  mean_y /= ns;

  double numerator = 0.0;
  double denom_x = 0.0;
  double denom_y = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i].mean - mean_x;
    const double dy = y[i].mean - mean_y;
    numerator += bw * (x[i].stddev * y[i].stddev * c[i] + dx * dy);
    denom_x += bw * (x[i].stddev * x[i].stddev + dx * dx);
    denom_y += bw * (y[i].stddev * y[i].stddev + dy * dy);
  }
  if (denom_x <= kMomentVarianceEps || denom_y <= kMomentVarianceEps) {
    return 0.0;
  }
  return ClampCorrelation(numerator / (std::sqrt(denom_x) * std::sqrt(denom_y)));
}

std::vector<BasicWindowStats> ComputeBasicWindowStats(
    std::span<const double> series, int64_t b) {
  CHECK_GT(b, 0);
  const int64_t nb = static_cast<int64_t>(series.size()) / b;
  std::vector<BasicWindowStats> stats(static_cast<size_t>(nb));
  for (int64_t w = 0; w < nb; ++w) {
    const std::span<const double> window =
        series.subspan(static_cast<size_t>(w * b), static_cast<size_t>(b));
    double sum = 0.0;
    double sumsq = 0.0;
    for (const double v : window) {
      sum += v;
      sumsq += v * v;
    }
    const double n = static_cast<double>(b);
    const double mean = sum / n;
    const double var = sumsq / n - mean * mean;
    stats[static_cast<size_t>(w)] = {mean, var > 0.0 ? std::sqrt(var) : 0.0};
  }
  return stats;
}

std::vector<double> ComputeBasicWindowCorrelations(std::span<const double> x,
                                                   std::span<const double> y,
                                                   int64_t b) {
  CHECK_GT(b, 0);
  CHECK_EQ(x.size(), y.size());
  const int64_t nb = static_cast<int64_t>(x.size()) / b;
  std::vector<double> correlations(static_cast<size_t>(nb));
  for (int64_t w = 0; w < nb; ++w) {
    correlations[static_cast<size_t>(w)] =
        PearsonNaive(x.subspan(static_cast<size_t>(w * b),
                               static_cast<size_t>(b)),
                     y.subspan(static_cast<size_t>(w * b),
                               static_cast<size_t>(b)));
  }
  return correlations;
}

SlidingPairMoments::SlidingPairMoments(std::span<const double> x,
                                       std::span<const double> y,
                                       int64_t start, int64_t window)
    : x_(x), y_(y), start_(start), window_(window) {
  CHECK_GE(start, 0);
  CHECK_GT(window, 0);
  CHECK_LE(static_cast<size_t>(start + window), x.size());
  CHECK_EQ(x.size(), y.size());
  for (int64_t t = start; t < start + window; ++t) {
    const double xv = x_[static_cast<size_t>(t)];
    const double yv = y_[static_cast<size_t>(t)];
    sx_ += xv;
    sy_ += yv;
    sxx_ += xv * xv;
    syy_ += yv * yv;
    sxy_ += xv * yv;
  }
}

void SlidingPairMoments::Slide(int64_t step) {
  CHECK_GE(step, 0);
  CHECK_LE(static_cast<size_t>(start_ + step + window_), x_.size());
  for (int64_t t = start_; t < start_ + step; ++t) {
    const double xv = x_[static_cast<size_t>(t)];
    const double yv = y_[static_cast<size_t>(t)];
    sx_ -= xv;
    sy_ -= yv;
    sxx_ -= xv * xv;
    syy_ -= yv * yv;
    sxy_ -= xv * yv;
  }
  for (int64_t t = start_ + window_; t < start_ + window_ + step; ++t) {
    const double xv = x_[static_cast<size_t>(t)];
    const double yv = y_[static_cast<size_t>(t)];
    sx_ += xv;
    sy_ += yv;
    sxx_ += xv * xv;
    syy_ += yv * yv;
    sxy_ += xv * yv;
  }
  start_ += step;
}

double SlidingPairMoments::Correlation() const {
  return PearsonFromMoments(static_cast<double>(window_), sx_, sy_, sxx_,
                            syy_, sxy_);
}

Result<std::vector<double>> ExactCorrelationMatrix(
    const TimeSeriesMatrix& data, int64_t start, int64_t window,
    ThreadPool* pool) {
  if (data.empty()) {
    return Status::InvalidArgument("ExactCorrelationMatrix: empty matrix");
  }
  if (start < 0 || window <= 0 || start + window > data.length()) {
    return Status::OutOfRange("ExactCorrelationMatrix: window [", start, ", ",
                              start + window, ") out of [0, ", data.length(),
                              ")");
  }
  const int64_t n = data.num_series();
  std::vector<double> matrix(static_cast<size_t>(n * n), 0.0);

  // z-normalize every series over the window into a time-major buffer (two
  // pass, like PearsonNaive), so each entry is a plain dot product computed
  // by the blocked Gram kernel. Constant series get all-zero rows: their
  // off-diagonal correlations are 0, matching PearsonNaive's guard.
  std::vector<double> zt(static_cast<size_t>(window * n), 0.0);
  auto normalize_series = [&](int64_t s) {
    std::span<const double> x = data.RowRange(s, start, window);
    double mean = 0.0;
    for (const double v : x) {
      mean += v;
    }
    mean /= static_cast<double>(window);
    double centered_ss = 0.0;
    for (const double v : x) {
      const double d = v - mean;
      centered_ss += d * d;
    }
    if (centered_ss <= kMomentVarianceEps) {
      return;  // z row stays zero
    }
    const double scale = 1.0 / std::sqrt(centered_ss);
    double* z = zt.data() + static_cast<size_t>(s);
    for (int64_t t = 0; t < window; ++t) {
      z[t * n] = (x[static_cast<size_t>(t)] - mean) * scale;
    }
  };
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->ParallelFor(n, normalize_series);
  } else {
    for (int64_t s = 0; s < n; ++s) {
      normalize_series(s);
    }
  }

  GramUpperTriangle(zt.data(), n, 0, window, matrix.data(), pool);

  for (int64_t i = 0; i < n; ++i) {
    matrix[static_cast<size_t>(i * n + i)] = 1.0;
    for (int64_t j = i + 1; j < n; ++j) {
      const double c = ClampCorrelation(matrix[static_cast<size_t>(i * n + j)]);
      matrix[static_cast<size_t>(i * n + j)] = c;
      matrix[static_cast<size_t>(j * n + i)] = c;
    }
  }
  return matrix;
}

}  // namespace dangoron
