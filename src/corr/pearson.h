#ifndef DANGORON_CORR_PEARSON_H_
#define DANGORON_CORR_PEARSON_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "ts/time_series_matrix.h"

namespace dangoron {

/// Exact Pearson correlation of two equally sized spans, two-pass
/// (numerically the most stable form; the oracle all other kernels are
/// tested against). Returns 0 when either input is constant.
double PearsonNaive(std::span<const double> x, std::span<const double> y);

/// Pearson correlation from raw moments over `n` points:
/// sx = sum x, sy = sum y, sxx = sum x^2, syy = sum y^2, sxy = sum x*y.
/// Returns 0 when either variance vanishes; the result is clamped to [-1, 1].
double PearsonFromMoments(double n, double sx, double sy, double sxx,
                          double syy, double sxy);

/// Statistics of one basic window of one series, the inputs of the paper's
/// Equation 1.
struct BasicWindowStats {
  double mean = 0.0;
  double stddev = 0.0;  ///< population std-dev within the window
};

/// Equation 1 of the paper, literal form: combines `ns` equally sized basic
/// windows (size `b` each) into the exact query-window correlation, given
/// per-window stats of x and y and per-window correlations `c`.
///
///   Corr(x, y) = sum_i B (sx_i sy_i c_i + dx_i dy_i)
///              / sqrt(sum_i B (sx_i^2 + dx_i^2)) sqrt(sum_i B (sy_i^2 + dy_i^2))
///
/// where dx_i = mean_i(x) - mean(x). Returns 0 on zero variance.
double CombinePearsonEq1(int64_t b, std::span<const BasicWindowStats> x,
                         std::span<const BasicWindowStats> y,
                         std::span<const double> c);

/// Per-window stats of a series cut into floor(len / b) basic windows.
std::vector<BasicWindowStats> ComputeBasicWindowStats(
    std::span<const double> series, int64_t b);

/// Per-basic-window correlations of two series (inputs for Eq. 1 / Eq. 2).
std::vector<double> ComputeBasicWindowCorrelations(
    std::span<const double> x, std::span<const double> y, int64_t b);

/// Incrementally maintained moments of one pair over a sliding window;
/// the exact-update path of Dangoron's incremental mode and the test oracle
/// for prefix-based range evaluation.
class SlidingPairMoments {
 public:
  /// Initializes over window [start, start + window) of x and y.
  SlidingPairMoments(std::span<const double> x, std::span<const double> y,
                     int64_t start, int64_t window);

  /// Slides the window forward by `step` (caller keeps it in bounds).
  void Slide(int64_t step);

  /// Correlation of the current window.
  double Correlation() const;

  int64_t start() const { return start_; }

 private:
  std::span<const double> x_;
  std::span<const double> y_;
  int64_t start_ = 0;
  int64_t window_ = 0;
  double sx_ = 0.0, sy_ = 0.0, sxx_ = 0.0, syy_ = 0.0, sxy_ = 0.0;
};

/// Dense exact correlation matrix over columns [start, start + window) of
/// `data`; entry (i, j) is Pearson of series i and j (diagonal = 1).
/// The reference for accuracy evaluation. Computed as a blocked Gram matrix
/// of window-z-normalized series (see corr/block_kernel.h), parallelized
/// over row tiles when a pool is given; results are deterministic for any
/// thread count and match PearsonNaive within roundoff.
Result<std::vector<double>> ExactCorrelationMatrix(
    const TimeSeriesMatrix& data, int64_t start, int64_t window,
    ThreadPool* pool = nullptr);

}  // namespace dangoron

#endif  // DANGORON_CORR_PEARSON_H_
