#include "corr/sweep_kernel.h"

#include <algorithm>

#include "common/math_utils.h"

namespace dangoron {

namespace {

// One fixed-i run of the banded sweep: pairs (i, j) for j in
// [j_begin, j_end), whose pair ids — and dot-prefix rows — advance
// contiguously from `pair_begin`; the window loop runs *inside* each 8-pair
// group so the group's prefix cache lines serve the whole band. The vector
// body and the scalar tail execute the exact per-lane operation sequence of
// the pair-major cell in dangoron_engine.cc's ProcessPairBlock:
//
//   cov  = (prefix[hi] - prefix[lo]) - sum_i * sum_j * inv_count
//   corr = ClampCorrelation(cov * inv_css_i * inv_css_j)
//
// so sweep and pair-major paths emit bit-identical edges (same shapes, same
// FMA-contraction decisions); the sweep kernel tests enforce that. The
// threshold compare is branch-free per 8-lane group: survivors are appended
// only when the group mask is non-zero, which on the sparse networks the
// thresholds of interest produce skips the append branch almost always.
template <bool kAbsolute>
void SweepRowRunBand(const SweepView& v, int64_t base_w0, int64_t ns,
                     int64_t m, int64_t k_begin, int64_t k_end, int64_t i,
                     int64_t j_begin, int64_t j_end, int64_t pair_begin,
                     std::vector<Edge>* out_windows) {
  const int64_t n = v.num_series;
  const int64_t stride = v.row_stride;
  const double beta = v.threshold;
  const double* rows = v.dot_prefix + pair_begin * stride;

  const Vec8 vic = SplatVec8(v.inv_count);
  const Vec8 vone = SplatVec8(1.0);
  const Vec8 vneg_one = SplatVec8(-1.0);
  const Vec8 vbeta = SplatVec8(beta);
  const Vec8 vneg_beta = SplatVec8(-beta);

  int64_t j = j_begin;
  for (; j + 8 <= j_end; j += 8, rows += 8 * stride) {
    for (int64_t k = k_begin; k < k_end; ++k) {
      const int64_t lo = base_w0 + k * m;
      const int64_t hi = lo + ns;
      const double* sums = v.range_sum + k * n;
      const double* invs = v.range_inv_css + k * n;
      // The two prefix loads per pair are strided (one dot-prefix row per
      // pair) but L1-hot after the band's first window; everything after is
      // contiguous vector arithmetic.
      double lo_slots[8];
      double hi_slots[8];
      const double* row = rows;
      for (int l = 0; l < 8; ++l, row += stride) {
        lo_slots[l] = row[lo];
        hi_slots[l] = row[hi];
      }
      const Vec8 dot = LoadVec8(hi_slots) - LoadVec8(lo_slots);
      const Vec8 sj = LoadVec8(sums + j);
      const Vec8 invj = LoadVec8(invs + j);
      const Vec8 cov = dot - SplatVec8(sums[i]) * sj * vic;
      Vec8 corr = cov * SplatVec8(invs[i]) * invj;
      corr = corr < vneg_one ? vneg_one : (corr > vone ? vone : corr);

      auto mask = corr >= vbeta;
      if constexpr (kAbsolute) {
        mask |= corr <= vneg_beta;
      }
      int64_t any = 0;
      for (int l = 0; l < 8; ++l) {
        any |= mask[l];
      }
      if (any != 0) {
        std::vector<Edge>* out = out_windows + (k - k_begin);
        for (int l = 0; l < 8; ++l) {
          if (mask[l] != 0) {
            out->push_back(Edge{static_cast<int32_t>(i),
                                static_cast<int32_t>(j + l), corr[l]});
          }
        }
      }
    }
  }

  // Scalar tail of the run (and whole runs shorter than one vector): the
  // same operation sequence, lane by lane.
  for (; j < j_end; ++j, rows += stride) {
    for (int64_t k = k_begin; k < k_end; ++k) {
      const int64_t lo = base_w0 + k * m;
      const int64_t hi = lo + ns;
      const double* sums = v.range_sum + k * n;
      const double* invs = v.range_inv_css + k * n;
      const double cov =
          (rows[hi] - rows[lo]) - sums[i] * sums[j] * v.inv_count;
      const double corr = ClampCorrelation(cov * invs[i] * invs[j]);
      const bool is_edge =
          kAbsolute ? (corr <= -beta || corr >= beta) : corr >= beta;
      if (is_edge) {
        out_windows[k - k_begin].push_back(
            Edge{static_cast<int32_t>(i), static_cast<int32_t>(j), corr});
      }
    }
  }
}

}  // namespace

void SweepWindowBandPairRange(const SweepView& view, int64_t base_w0,
                              int64_t ns, int64_t m, int64_t k_begin,
                              int64_t k_end, int64_t pair_begin,
                              int64_t pair_end, int64_t i0, int64_t j0,
                              std::vector<Edge>* out_windows) {
  const int64_t n = view.num_series;
  int64_t p = pair_begin;
  int64_t i = i0;
  int64_t j = j0;
  while (p < pair_end) {
    const int64_t run = std::min(n - j, pair_end - p);
    if (view.absolute) {
      SweepRowRunBand<true>(view, base_w0, ns, m, k_begin, k_end, i, j,
                            j + run, p, out_windows);
    } else {
      SweepRowRunBand<false>(view, base_w0, ns, m, k_begin, k_end, i, j,
                             j + run, p, out_windows);
    }
    p += run;
    j += run;
    if (j >= n) {
      ++i;
      j = i + 1;
    }
  }
}

}  // namespace dangoron
