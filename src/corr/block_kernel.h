#ifndef DANGORON_CORR_BLOCK_KERNEL_H_
#define DANGORON_CORR_BLOCK_KERNEL_H_

#include <cstdint>
#include <span>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

#include "common/thread_pool.h"
#include "ts/time_series_matrix.h"

namespace dangoron {

/// Variance guard shared by every moment-form correlation kernel: when the
/// centered sum of squares (n * population variance) of either side is at or
/// below this, the correlation is reported as 0 ("no edge" for dead sensors).
inline constexpr double kMomentVarianceEps = 1e-12;

/// Series-tile edge of the blocked Gram kernels. 48 rows x 48 cols of
/// doubles is an 18 KiB accumulator tile — comfortably L1-resident next to
/// the streamed time-major rows.
inline constexpr int64_t kCorrTile = 48;

/// 8-wide double vector of the hot kernels (GCC/Clang vector extension).
/// Explicit vector accumulators are what keep the micro-kernels
/// register-resident: the equivalent local-array loops auto-vectorize but
/// get round-tripped through the stack every iteration. Lane arithmetic is
/// element-wise IEEE, identical to the matching scalar loop.
typedef double Vec8 __attribute__((vector_size(64), aligned(8)));

inline Vec8 LoadVec8(const double* p) {
  Vec8 v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}
inline void StoreVec8(double* p, Vec8 v) { __builtin_memcpy(p, &v, sizeof(v)); }
inline Vec8 SplatVec8(double x) { return Vec8{x, x, x, x, x, x, x, x}; }

/// Non-temporal full-line store of `v` to 64-byte-aligned `p`: bypasses the
/// cache hierarchy — no read-for-ownership, no pollution — for big
/// write-once buffers the writer will not re-read. Falls back to a regular
/// store off AVX-512. Producers must StreamFence() before publishing the
/// buffer to other threads.
inline void StreamVec8(double* p, Vec8 v) {
#if defined(__AVX512F__)
  _mm512_stream_pd(p, reinterpret_cast<__m512d>(v));
#else
  StoreVec8(p, v);
#endif
}

/// Orders preceding non-temporal stores before later stores/publication.
inline void StreamFence() {
#if defined(__AVX512F__)
  _mm_sfence();
#endif
}

/// In-register 8x8 transpose: on return r[j][i] holds the old r[i][j].
/// Lets producers of 8-wide columns emit full contiguous rows (one cache
/// line each) without bouncing scalars through a staging buffer — partial
/// reloads of a just-stored vector stall on failed store-to-load forwarding.
inline void Transpose8x8(Vec8 r[8]) {
  const Vec8 a0 = __builtin_shufflevector(r[0], r[1], 0, 8, 2, 10, 4, 12, 6, 14);
  const Vec8 a1 = __builtin_shufflevector(r[0], r[1], 1, 9, 3, 11, 5, 13, 7, 15);
  const Vec8 a2 = __builtin_shufflevector(r[2], r[3], 0, 8, 2, 10, 4, 12, 6, 14);
  const Vec8 a3 = __builtin_shufflevector(r[2], r[3], 1, 9, 3, 11, 5, 13, 7, 15);
  const Vec8 a4 = __builtin_shufflevector(r[4], r[5], 0, 8, 2, 10, 4, 12, 6, 14);
  const Vec8 a5 = __builtin_shufflevector(r[4], r[5], 1, 9, 3, 11, 5, 13, 7, 15);
  const Vec8 a6 = __builtin_shufflevector(r[6], r[7], 0, 8, 2, 10, 4, 12, 6, 14);
  const Vec8 a7 = __builtin_shufflevector(r[6], r[7], 1, 9, 3, 11, 5, 13, 7, 15);
  const Vec8 b0 = __builtin_shufflevector(a0, a2, 0, 1, 8, 9, 4, 5, 12, 13);
  const Vec8 b1 = __builtin_shufflevector(a1, a3, 0, 1, 8, 9, 4, 5, 12, 13);
  const Vec8 b2 = __builtin_shufflevector(a0, a2, 2, 3, 10, 11, 6, 7, 14, 15);
  const Vec8 b3 = __builtin_shufflevector(a1, a3, 2, 3, 10, 11, 6, 7, 14, 15);
  const Vec8 b4 = __builtin_shufflevector(a4, a6, 0, 1, 8, 9, 4, 5, 12, 13);
  const Vec8 b5 = __builtin_shufflevector(a5, a7, 0, 1, 8, 9, 4, 5, 12, 13);
  const Vec8 b6 = __builtin_shufflevector(a4, a6, 2, 3, 10, 11, 6, 7, 14, 15);
  const Vec8 b7 = __builtin_shufflevector(a5, a7, 2, 3, 10, 11, 6, 7, 14, 15);
  r[0] = __builtin_shufflevector(b0, b4, 0, 1, 2, 3, 8, 9, 10, 11);
  r[1] = __builtin_shufflevector(b1, b5, 0, 1, 2, 3, 8, 9, 10, 11);
  r[2] = __builtin_shufflevector(b2, b6, 0, 1, 2, 3, 8, 9, 10, 11);
  r[3] = __builtin_shufflevector(b3, b7, 0, 1, 2, 3, 8, 9, 10, 11);
  r[4] = __builtin_shufflevector(b0, b4, 4, 5, 6, 7, 12, 13, 14, 15);
  r[5] = __builtin_shufflevector(b1, b5, 4, 5, 6, 7, 12, 13, 14, 15);
  r[6] = __builtin_shufflevector(b2, b6, 4, 5, 6, 7, 12, 13, 14, 15);
  r[7] = __builtin_shufflevector(b3, b7, 4, 5, 6, 7, 12, 13, 14, 15);
}

/// Per-basic-window z-normalized copy of a TimeSeriesMatrix, the data layout
/// of the blocked correlation kernels.
///
/// Within each basic window w, series s is normalized as
///
///   z[t] = (x[t] - mean_{w,s}) / sqrt(sum_t (x[t] - mean_{w,s})^2)
///
/// so the correlation of any two series within the window is the plain dot
/// product of their z rows (TSUBASA / Dangoron's per-basic-window reduction,
/// with the scaling folded in so no per-pair divide or sqrt remains).
/// Degenerate (near-constant) windows — centered sum of squares at or below
/// kMomentVarianceEps — are stored as all-zero rows, which makes every
/// correlation involving them exactly 0, matching PearsonFromMoments.
///
/// The z values are stored as time-major *series-tile panels*: panel
/// (w, tile) is a basic_window x kCorrTile block whose row t is the
/// contiguous vector of series [tile * kCorrTile, (tile+1) * kCorrTile) at
/// time step w * basic_window + t, zero-padded past num_series. Contiguous
/// rows make the Gram update a sequence of rank-1 updates whose inner loop
/// vectorizes into FMA streams, and a Gram tile pair streams two contiguous
/// panels per window — sequential across windows — instead of gathering
/// tile-wide slivers out of rows num_series * 8 bytes apart, which is the
/// difference between prefetchable streams and latency-bound cache misses
/// on large N.
struct NormalizedPanels {
  int64_t num_series = 0;
  int64_t basic_window = 0;
  int64_t num_windows = 0;
  int64_t num_tiles = 0;

  /// Panels, [(w * num_tiles + tile) * basic_window + t] * kCorrTile + s'.
  std::vector<double> values;
  /// Window-major per-series window mean / population std-dev within the
  /// window (0 for degenerate windows), size num_windows * num_series.
  std::vector<double> mean;
  std::vector<double> stddev;

  const double* Panel(int64_t w, int64_t tile) const {
    return values.data() +
           static_cast<size_t>(((w * num_tiles + tile) * basic_window) *
                               kCorrTile);
  }
};

/// Builds the panel form of the per-basic-window normalization. Parallel
/// over (tile, window-chunk) tasks when a pool is given; identical results
/// for any thread count.
NormalizedPanels BuildNormalizedPanels(const TimeSeriesMatrix& data,
                                       int64_t basic_window,
                                       ThreadPool* pool = nullptr);

/// Core blocked kernel: computes the Gram (pairwise dot product) tile of a
/// time-major buffer `zt` (rows = time steps, each a contiguous vector of
/// `num_series` values):
///
///   out[(r - row_begin) * out_stride + (c - col_begin)] =
///       sum_{t in [t_begin, t_end)} zt[t * num_series + r] *
///                                   zt[t * num_series + c]
///
/// for r in [row_begin, row_end), c in [col_begin, col_end) — and, when
/// `upper_only` is set, only for c > r (the rest of `out` is untouched).
///
/// With `accumulate` set, `out` is added to instead of assigned (callers
/// zero it first and may compose disjoint time ranges); without it, `out`
/// may be uninitialized — covered cells are overwritten. The per-cell
/// summation order is ascending t regardless of tiling or threading, so
/// results are bit-identical for any decomposition.
///
/// On z-normalized inputs (see NormalizedPanels) the computed value is
/// the Pearson correlation of series r and c over the time range.
void GramAccumulateTile(const double* zt, int64_t num_series, int64_t t_begin,
                        int64_t t_end, int64_t row_begin, int64_t row_end,
                        int64_t col_begin, int64_t col_end, bool upper_only,
                        double* out, int64_t out_stride,
                        bool accumulate = false);

/// Gram tile between two (possibly distinct) time-major blocks: computes
///
///   out[r * out_stride + c] =
///       sum_{t in [t_begin, t_end)} zrows[t * row_stride + r] *
///                                   zcols[t * col_stride + c]
///
/// for r in [0, nrows), c in [0, ncols) — restricted to c > r + diag when
/// `upper_only` is set (`diag` aligns local indices when the two blocks
/// cover overlapping global series ranges; use diag = global_row_begin -
/// global_col_begin). Same accumulate and determinism semantics as
/// GramAccumulateTile, which is a thin wrapper over this. The panel form of
/// the index build calls it with two NormalizedPanels blocks
/// (row_stride == col_stride == kCorrTile).
void GramPanelTile(const double* zrows, int64_t row_stride, int64_t nrows,
                   const double* zcols, int64_t col_stride, int64_t ncols,
                   int64_t t_begin, int64_t t_end, bool upper_only,
                   int64_t diag, double* out, int64_t out_stride,
                   bool accumulate = false);

/// Fills the upper triangle (c > r) of the dense `num_series x num_series`
/// Gram matrix of `zt` over [t_begin, t_end), tiled in kCorrTile blocks and
/// parallelized over row tiles when a pool is given. `matrix` is row-major
/// with stride num_series; the diagonal and lower triangle are untouched.
/// Deterministic for any thread count.
void GramUpperTriangle(const double* zt, int64_t num_series, int64_t t_begin,
                       int64_t t_end, double* matrix,
                       ThreadPool* pool = nullptr);

}  // namespace dangoron

#endif  // DANGORON_CORR_BLOCK_KERNEL_H_
