#ifndef DANGORON_TOMBORG_CORRELATION_SPEC_H_
#define DANGORON_TOMBORG_CORRELATION_SPEC_H_

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "linalg/matrix.h"

namespace dangoron {

/// Families of off-diagonal correlation distributions Tomborg can draw the
/// target matrix C from — step (1) of the paper's pipeline. Each family
/// stresses engines differently: e.g. kUniform spreads mass across the
/// threshold, kBlock creates dense communities (many edges), kHub creates
/// skewed degree distributions, kClippedNormal concentrates mass near its
/// mean (pruning-friendly or -hostile depending on the mean vs beta).
enum class CorrelationFamily {
  kConstant,       ///< every off-diagonal equals `a`
  kUniform,        ///< Uniform[a, b]
  kClippedNormal,  ///< Normal(a, b) clipped to [-0.99, 0.99]
  kBeta,           ///< Beta(a, b) rescaled to [lo, hi]
  kBlock,          ///< `blocks` communities: intra = a, inter = b (+ jitter)
  kHub,            ///< `hubs` high-degree series: hub rows = a, rest = b
};

/// Declarative description of the target correlation matrix.
struct CorrelationSpec {
  CorrelationFamily family = CorrelationFamily::kUniform;
  /// Family parameters (see CorrelationFamily comments).
  double a = 0.0;
  double b = 1.0;
  /// Rescale range of kBeta.
  double lo = -1.0;
  double hi = 1.0;
  /// Community count of kBlock.
  int64_t blocks = 4;
  /// Hub count of kHub.
  int64_t hubs = 4;
  /// Gaussian jitter applied to each off-diagonal after drawing.
  double jitter = 0.0;

  std::string ToString() const;
};

/// Draws a symmetric matrix with unit diagonal whose off-diagonals follow
/// `spec`. The draw is *not* necessarily positive semidefinite — run it
/// through RepairToCorrelationMatrix before synthesis.
Result<Matrix> DrawTargetCorrelation(const CorrelationSpec& spec, int64_t n,
                                     Rng* rng);

/// Projects `target` to a valid (PSD, unit-diagonal) correlation matrix.
/// Thin wrapper over NearestCorrelationMatrix with Tomborg defaults; the
/// repaired matrix is what the generator then realizes, and callers should
/// measure realized accuracy against the *repaired* matrix.
Result<Matrix> RepairToCorrelationMatrix(const Matrix& target);

/// Gamma(shape >= 0) variate via Marsaglia-Tsang (used by the Beta family).
double SampleGamma(double shape, Rng* rng);

/// Beta(alpha, beta) variate in [0, 1].
double SampleBeta(double alpha, double beta, Rng* rng);

}  // namespace dangoron

#endif  // DANGORON_TOMBORG_CORRELATION_SPEC_H_
