#ifndef DANGORON_TOMBORG_TOMBORG_H_
#define DANGORON_TOMBORG_TOMBORG_H_

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "linalg/matrix.h"
#include "tomborg/correlation_spec.h"
#include "ts/time_series_matrix.h"

namespace dangoron {

/// Spectral envelopes shaping each generated series in frequency space —
/// step (2) of the Tomborg pipeline. The envelope multiplies the magnitude
/// of every frequency bin, so it controls *how the correlation is spread
/// over frequencies*; that is precisely what breaks frequency-transform
/// competitors whose sketches keep only a few coefficients, and what the
/// robustness benchmark sweeps.
enum class SpectralEnvelope {
  kWhite,        ///< flat spectrum: energy spread over all frequencies
  kPink,         ///< 1/f: energy concentrated at low frequencies
  kSeasonal,     ///< sharp peaks at a few periods over a weak 1/f floor
  kHighPass,     ///< energy only above half the Nyquist band
};

/// Returns the (unnormalized) envelope magnitude of frequency bin `k` of
/// `n_bins` positive-frequency bins.
double EnvelopeMagnitude(SpectralEnvelope envelope, int64_t k, int64_t n_bins);

/// Full Tomborg dataset description.
struct TomborgSpec {
  int64_t num_series = 64;
  int64_t length = 4096;
  CorrelationSpec correlation;
  SpectralEnvelope envelope = SpectralEnvelope::kWhite;
  uint64_t seed = 2023;

  std::string ToString() const;
};

/// Generated dataset plus the exact (post-repair) target it realizes.
struct TomborgDataset {
  TimeSeriesMatrix data;
  /// The PSD-repaired correlation matrix the series were mixed from; sample
  /// correlations of `data` converge to this as `length` grows.
  Matrix target;
};

/// Runs the full Tomborg pipeline:
///   (1) draw C from `spec.correlation` and repair it to a valid
///       correlation matrix,
///   (2) draw per-frequency complex Gaussian coefficient vectors, mix them
///       with the Cholesky factor of C, and shape them with the envelope
///       (the DFT preserves inner products, so mixing per frequency bin
///       realizes C in the time domain),
///   (3) transform each series back with the real-valued inverse DFT.
Result<TomborgDataset> GenerateTomborg(const TomborgSpec& spec);

/// Max-abs and RMS deviation between the sample correlation matrix of
/// `data` (over all columns) and `target` — the generator's own quality
/// check, also used by tests.
struct RealizationError {
  double max_abs = 0.0;
  double rms = 0.0;
};
Result<RealizationError> MeasureRealization(const TimeSeriesMatrix& data,
                                            const Matrix& target);

}  // namespace dangoron

#endif  // DANGORON_TOMBORG_TOMBORG_H_
