#include "tomborg/correlation_spec.h"

#include <cmath>

#include "common/math_utils.h"
#include "common/strings.h"
#include "linalg/decompositions.h"

namespace dangoron {

namespace {

const char* FamilyName(CorrelationFamily family) {
  switch (family) {
    case CorrelationFamily::kConstant:
      return "constant";
    case CorrelationFamily::kUniform:
      return "uniform";
    case CorrelationFamily::kClippedNormal:
      return "normal";
    case CorrelationFamily::kBeta:
      return "beta";
    case CorrelationFamily::kBlock:
      return "block";
    case CorrelationFamily::kHub:
      return "hub";
  }
  return "?";
}

}  // namespace

std::string CorrelationSpec::ToString() const {
  return StrFormat("%s(a=%.2f,b=%.2f)", FamilyName(family), a, b);
}

double SampleGamma(double shape, Rng* rng) {
  // Marsaglia & Tsang (2000). For shape < 1 use the boost
  // Gamma(shape) = Gamma(shape + 1) * U^(1/shape).
  if (shape < 1.0) {
    const double u = rng->NextDouble();
    return SampleGamma(shape + 1.0, rng) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = rng->NextGaussian();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng->NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) {
      return d * v;
    }
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

double SampleBeta(double alpha, double beta, Rng* rng) {
  const double x = SampleGamma(alpha, rng);
  const double y = SampleGamma(beta, rng);
  return x / (x + y);
}

Result<Matrix> DrawTargetCorrelation(const CorrelationSpec& spec, int64_t n,
                                     Rng* rng) {
  if (n <= 1) {
    return Status::InvalidArgument("DrawTargetCorrelation: need n > 1, got ",
                                   n);
  }
  Matrix target(n, n);
  for (int64_t i = 0; i < n; ++i) {
    target.At(i, i) = 1.0;
  }

  // Per-series block / hub labels where relevant.
  std::vector<int64_t> block_of(static_cast<size_t>(n), 0);
  if (spec.family == CorrelationFamily::kBlock) {
    if (spec.blocks <= 0) {
      return Status::InvalidArgument("DrawTargetCorrelation: blocks <= 0");
    }
    for (int64_t i = 0; i < n; ++i) {
      block_of[static_cast<size_t>(i)] = i * spec.blocks / n;
    }
  }
  std::vector<bool> is_hub(static_cast<size_t>(n), false);
  if (spec.family == CorrelationFamily::kHub) {
    if (spec.hubs <= 0 || spec.hubs > n) {
      return Status::InvalidArgument("DrawTargetCorrelation: bad hub count");
    }
    for (int64_t h = 0; h < spec.hubs; ++h) {
      is_hub[static_cast<size_t>(h * n / spec.hubs)] = true;
    }
  }

  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      double value = 0.0;
      switch (spec.family) {
        case CorrelationFamily::kConstant:
          value = spec.a;
          break;
        case CorrelationFamily::kUniform:
          value = rng->NextUniform(spec.a, spec.b);
          break;
        case CorrelationFamily::kClippedNormal:
          value = rng->NextGaussian(spec.a, spec.b);
          break;
        case CorrelationFamily::kBeta:
          value = spec.lo +
                  (spec.hi - spec.lo) * SampleBeta(spec.a, spec.b, rng);
          break;
        case CorrelationFamily::kBlock:
          value = block_of[static_cast<size_t>(i)] ==
                          block_of[static_cast<size_t>(j)]
                      ? spec.a
                      : spec.b;
          break;
        case CorrelationFamily::kHub:
          value = (is_hub[static_cast<size_t>(i)] ||
                   is_hub[static_cast<size_t>(j)])
                      ? spec.a
                      : spec.b;
          break;
      }
      if (spec.jitter > 0.0) {
        value += rng->NextGaussian(0.0, spec.jitter);
      }
      value = Clamp(value, -0.99, 0.99);
      target.At(i, j) = value;
      target.At(j, i) = value;
    }
  }
  return target;
}

Result<Matrix> RepairToCorrelationMatrix(const Matrix& target) {
  return NearestCorrelationMatrix(target, /*min_eigenvalue=*/1e-4,
                                  /*max_iterations=*/10);
}

}  // namespace dangoron
