#include "tomborg/tomborg.h"

#include <cmath>
#include <complex>
#include <vector>

#include "common/strings.h"
#include "corr/pearson.h"
#include "dft/fft.h"
#include "linalg/decompositions.h"

namespace dangoron {

double EnvelopeMagnitude(SpectralEnvelope envelope, int64_t k,
                         int64_t n_bins) {
  // k ranges over positive-frequency bins 1 .. n_bins (DC handled by the
  // caller). Magnitudes are relative; correlation is scale invariant.
  const double f = static_cast<double>(k) / static_cast<double>(n_bins);
  switch (envelope) {
    case SpectralEnvelope::kWhite:
      return 1.0;
    case SpectralEnvelope::kPink:
      return 1.0 / std::sqrt(f + 1e-3);
    case SpectralEnvelope::kSeasonal: {
      // Sharp peaks at 3 "seasonal" frequencies over a weak pink floor.
      double magnitude = 0.15 / std::sqrt(f + 1e-3);
      for (const double peak : {0.01, 0.02, 0.08}) {
        const double detune = (f - peak) / 0.002;
        magnitude += 8.0 * std::exp(-detune * detune);
      }
      return magnitude;
    }
    case SpectralEnvelope::kHighPass:
      return f >= 0.5 ? 1.0 : 0.02;
  }
  return 1.0;
}

std::string TomborgSpec::ToString() const {
  const char* envelope_name = "?";
  switch (envelope) {
    case SpectralEnvelope::kWhite:
      envelope_name = "white";
      break;
    case SpectralEnvelope::kPink:
      envelope_name = "pink";
      break;
    case SpectralEnvelope::kSeasonal:
      envelope_name = "seasonal";
      break;
    case SpectralEnvelope::kHighPass:
      envelope_name = "highpass";
      break;
  }
  return StrFormat("tomborg(n=%lld,L=%lld,%s,%s)",
                   static_cast<long long>(num_series),
                   static_cast<long long>(length),
                   correlation.ToString().c_str(), envelope_name);
}

Result<TomborgDataset> GenerateTomborg(const TomborgSpec& spec) {
  if (spec.num_series <= 1) {
    return Status::InvalidArgument("GenerateTomborg: need >= 2 series");
  }
  if (spec.length < 8) {
    return Status::InvalidArgument("GenerateTomborg: length too short: ",
                                   spec.length);
  }
  Rng rng(spec.seed);
  const int64_t n = spec.num_series;
  const int64_t length = spec.length;

  // Step 1: target correlation matrix, repaired to PSD with unit diagonal.
  ASSIGN_OR_RETURN(Matrix drawn,
                   DrawTargetCorrelation(spec.correlation, n, &rng));
  ASSIGN_OR_RETURN(Matrix target, RepairToCorrelationMatrix(drawn));
  ASSIGN_OR_RETURN(Matrix cholesky, CholeskyFactor(target));

  // Step 2: frequency-space coefficients. Every positive-frequency bin gets
  // an independent complex Gaussian vector mixed by the Cholesky factor, so
  // each bin individually carries correlation `target`; the envelope only
  // reweights bins and cancels out of the realized correlation.
  const int64_t half = length / 2;  // bins 0..half
  std::vector<std::vector<std::complex<double>>> spectra(
      static_cast<size_t>(n),
      std::vector<std::complex<double>>(static_cast<size_t>(half + 1),
                                        {0.0, 0.0}));

  std::vector<double> g_re(static_cast<size_t>(n));
  std::vector<double> g_im(static_cast<size_t>(n));
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  const bool even_length = (length % 2 == 0);
  for (int64_t k = 1; k <= half; ++k) {
    const bool nyquist = even_length && k == half;
    const double magnitude = EnvelopeMagnitude(spec.envelope, k, half);
    if (magnitude == 0.0) {
      continue;
    }
    for (int64_t i = 0; i < n; ++i) {
      if (nyquist) {
        // The Nyquist coefficient of a real series must be real.
        g_re[static_cast<size_t>(i)] = rng.NextGaussian();
        g_im[static_cast<size_t>(i)] = 0.0;
      } else {
        g_re[static_cast<size_t>(i)] = rng.NextGaussian() * inv_sqrt2;
        g_im[static_cast<size_t>(i)] = rng.NextGaussian() * inv_sqrt2;
      }
    }
    // u = L * g (lower-triangular multiply), scaled by the envelope.
    for (int64_t i = 0; i < n; ++i) {
      double u_re = 0.0;
      double u_im = 0.0;
      for (int64_t c = 0; c <= i; ++c) {
        const double l = cholesky.At(i, c);
        u_re += l * g_re[static_cast<size_t>(c)];
        u_im += l * g_im[static_cast<size_t>(c)];
      }
      spectra[static_cast<size_t>(i)][static_cast<size_t>(k)] =
          std::complex<double>(magnitude * u_re, magnitude * u_im);
    }
  }

  // Step 3: real-valued inverse DFT per series.
  TomborgDataset dataset;
  dataset.data = TimeSeriesMatrix(n, length);
  dataset.target = std::move(target);
  for (int64_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(std::vector<double> series,
                     InverseRealDft(spectra[static_cast<size_t>(i)], length));
    std::span<double> row = dataset.data.Row(i);
    std::copy(series.begin(), series.end(), row.begin());
  }
  return dataset;
}

Result<RealizationError> MeasureRealization(const TimeSeriesMatrix& data,
                                            const Matrix& target) {
  if (data.num_series() != target.rows() || target.rows() != target.cols()) {
    return Status::InvalidArgument("MeasureRealization: shape mismatch");
  }
  ASSIGN_OR_RETURN(std::vector<double> sample,
                   ExactCorrelationMatrix(data, 0, data.length()));
  const int64_t n = data.num_series();
  RealizationError error;
  double sum_sq = 0.0;
  int64_t count = 0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      const double diff =
          sample[static_cast<size_t>(i * n + j)] - target.At(i, j);
      error.max_abs = std::fmax(error.max_abs, std::fabs(diff));
      sum_sq += diff * diff;
      ++count;
    }
  }
  error.rms = count > 0 ? std::sqrt(sum_sq / static_cast<double>(count)) : 0.0;
  return error;
}

}  // namespace dangoron
