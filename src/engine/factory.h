#ifndef DANGORON_ENGINE_FACTORY_H_
#define DANGORON_ENGINE_FACTORY_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "engine/correlation_engine.h"

namespace dangoron {

// Declared only: engine-only users (CLI tools, benches) should not compile
// the serving stack. Callers of CreateServer include serve/server.h.
class DangoronServer;

/// Constructs an engine by name with `key=value` options — the wiring for
/// CLI tools and config-driven benchmark harnesses.
///
/// Names: "naive", "tsubasa", "dangoron", "parcorr".
/// Options (comma separated, unknown keys are errors):
///   common:    threads=<int>
///   tsubasa:   basic_window=<int>
///   dangoron:  basic_window=<int>, jump=<on|off>, above_jump=<on|off>,
///              max_jump=<int>, horizontal=<on|off>, pivots=<int>
///   parcorr:   dim=<int>, seed=<int>, verify=<on|off>, margin=<double>
///
/// Example: CreateEngine("dangoron", "basic_window=24,jump=on,pivots=8").
Result<std::unique_ptr<CorrelationEngine>> CreateEngine(
    const std::string& name, const std::string& options_text = "");

/// Names accepted by CreateEngine, for help text.
std::string KnownEngineNames();

/// Constructs a DangoronServer from `key=value` options — the wiring for
/// deployments that configure the serving layer from a flag or config file.
///
/// Options (comma separated, unknown keys are errors):
///   threads=<int>            worker threads (0 = hardware concurrency)
///   basic_window=<int>       prepare granularity
///   sketch_cache_mb=<int>    prepared-sketch LRU budget in MiB
///   result_cache_mb=<int>    window-result cache budget in MiB
///   refuse_oversized=<on|off> admission policy: refuse prepares whose
///                            estimated footprint exceeds the sketch budget
///   threshold_steps=<int>    threshold-family grid divisions per unit for
///                            window cache keys (0 = exact-match keys)
///   max_streams=<int>        cap on concurrent streaming submissions
///
/// Example: CreateServer("threads=8,basic_window=24,sketch_cache_mb=512").
Result<std::unique_ptr<DangoronServer>> CreateServer(
    const std::string& options_text = "");

}  // namespace dangoron

#endif  // DANGORON_ENGINE_FACTORY_H_
