#ifndef DANGORON_ENGINE_FACTORY_H_
#define DANGORON_ENGINE_FACTORY_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "engine/correlation_engine.h"

namespace dangoron {

/// Constructs an engine by name with `key=value` options — the wiring for
/// CLI tools and config-driven benchmark harnesses.
///
/// Names: "naive", "tsubasa", "dangoron", "parcorr".
/// Options (comma separated, unknown keys are errors):
///   common:    threads=<int>
///   tsubasa:   basic_window=<int>
///   dangoron:  basic_window=<int>, jump=<on|off>, above_jump=<on|off>,
///              max_jump=<int>, horizontal=<on|off>, pivots=<int>
///   parcorr:   dim=<int>, seed=<int>, verify=<on|off>, margin=<double>
///
/// Example: CreateEngine("dangoron", "basic_window=24,jump=on,pivots=8").
Result<std::unique_ptr<CorrelationEngine>> CreateEngine(
    const std::string& name, const std::string& options_text = "");

/// Names accepted by CreateEngine, for help text.
std::string KnownEngineNames();

}  // namespace dangoron

#endif  // DANGORON_ENGINE_FACTORY_H_
