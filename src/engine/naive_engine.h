#ifndef DANGORON_ENGINE_NAIVE_ENGINE_H_
#define DANGORON_ENGINE_NAIVE_ENGINE_H_

#include "engine/correlation_engine.h"

namespace dangoron {

/// Brute-force reference: every pair of every window is computed from raw
/// values in O(window) — O(N^2 * l) per window, no index at all. The ground
/// truth for correctness tests and the leftmost column of the speedup
/// tables; intractable beyond small configurations, which is the paper's
/// point of departure.
class NaiveEngine : public CorrelationEngine {
 public:
  NaiveEngine() = default;

  std::string name() const override { return "naive"; }
  Status Prepare(const TimeSeriesMatrix& data) override;
  /// Windows are computed one at a time, so each is emitted as soon as its
  /// brute-force pass finishes — cancellation stops the remaining passes.
  Status QueryToSink(const SlidingQuery& query, WindowSink* sink) override;

 private:
  const TimeSeriesMatrix* data_ = nullptr;
};

}  // namespace dangoron

#endif  // DANGORON_ENGINE_NAIVE_ENGINE_H_
