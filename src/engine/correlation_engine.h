#ifndef DANGORON_ENGINE_CORRELATION_ENGINE_H_
#define DANGORON_ENGINE_CORRELATION_ENGINE_H_

#include <string>

#include "common/status.h"
#include "engine/query.h"
#include "engine/window_sink.h"
#include "ts/time_series_matrix.h"

namespace dangoron {

/// Common interface of all sliding-window correlation engines.
///
/// Lifecycle: construct with engine-specific options, `Prepare` once against
/// a data matrix (index/sketch construction — the paper's build phase, timed
/// separately from queries), then query any number of times. The data
/// matrix must outlive the engine. Engines are not thread-safe across
/// concurrent query calls; parallelism lives *inside* an engine.
///
/// The query primitive is `QueryToSink`: windows are emitted into a
/// `WindowSink` in ascending order as they become final, so callers that
/// consume windows incrementally (streaming serving, live export) never pay
/// full-result materialization. `Query` survives as a thin wrapper that
/// collects the emission into a `CorrelationMatrixSeries` — byte-identical
/// to the pre-pipeline materialized results.
class CorrelationEngine {
 public:
  virtual ~CorrelationEngine() = default;

  /// Engine name used in benchmark tables ("dangoron", "tsubasa", ...).
  virtual std::string name() const = 0;

  /// Builds the engine's index over `data`.
  virtual Status Prepare(const TimeSeriesMatrix& data) = 0;

  /// Runs one sliding query, streaming windows into `sink` (see WindowSink
  /// for the emission contract); requires a successful Prepare. Returns
  /// Cancelled when the sink stops the query mid-stream.
  virtual Status QueryToSink(const SlidingQuery& query, WindowSink* sink) = 0;

  /// Materializing convenience: `QueryToSink` into a CollectingWindowSink.
  Result<CorrelationMatrixSeries> Query(const SlidingQuery& query);

  /// Counters of the most recent query.
  const EngineStats& stats() const { return stats_; }

 protected:
  EngineStats stats_;
};

}  // namespace dangoron

#endif  // DANGORON_ENGINE_CORRELATION_ENGINE_H_
