#ifndef DANGORON_ENGINE_CORRELATION_ENGINE_H_
#define DANGORON_ENGINE_CORRELATION_ENGINE_H_

#include <string>

#include "common/status.h"
#include "engine/query.h"
#include "ts/time_series_matrix.h"

namespace dangoron {

/// Common interface of all sliding-window correlation engines.
///
/// Lifecycle: construct with engine-specific options, `Prepare` once against
/// a data matrix (index/sketch construction — the paper's build phase, timed
/// separately from queries), then `Query` any number of times. The data
/// matrix must outlive the engine. Engines are not thread-safe across
/// concurrent Query calls; parallelism lives *inside* an engine.
class CorrelationEngine {
 public:
  virtual ~CorrelationEngine() = default;

  /// Engine name used in benchmark tables ("dangoron", "tsubasa", ...).
  virtual std::string name() const = 0;

  /// Builds the engine's index over `data`.
  virtual Status Prepare(const TimeSeriesMatrix& data) = 0;

  /// Runs one sliding query; requires a successful Prepare.
  virtual Result<CorrelationMatrixSeries> Query(const SlidingQuery& query) = 0;

  /// Counters of the most recent Query.
  const EngineStats& stats() const { return stats_; }

 protected:
  EngineStats stats_;
};

}  // namespace dangoron

#endif  // DANGORON_ENGINE_CORRELATION_ENGINE_H_
