#ifndef DANGORON_ENGINE_DANGORON_ENGINE_H_
#define DANGORON_ENGINE_DANGORON_ENGINE_H_

#include <memory>
#include <optional>
#include <vector>

#include "bound/bounds.h"
#include "common/thread_pool.h"
#include "engine/correlation_engine.h"
#include "sketch/basic_window_index.h"

namespace dangoron {

/// Options of the Dangoron engine.
struct DangoronOptions {
  /// Basic window size `b`; query start/window/step must be multiples of it.
  int64_t basic_window = 24;

  /// Eq. 2 temporal jumping over below-threshold stretches (the paper's core
  /// optimization, Figure 2). Off = "incremental" mode: every window is
  /// evaluated exactly in O(1) from the sketch prefixes — exact results,
  /// still far cheaper than TSUBASA's O(ns) recombination.
  bool enable_jumping = true;

  /// Extension (off by default): also skip stretches that provably (under
  /// the Eq. 2 assumption) stay *above* threshold, emitting the anchor
  /// window's value for the skipped windows. Trades value accuracy inside
  /// persistent edges for speed.
  bool enable_above_jumping = false;

  /// Cap on a single jump (0 = unbounded). Bounding jumps limits the damage
  /// of an Eq. 2 violation on non-stationary data.
  int64_t max_jump_steps = 0;

  /// Horizontal (pivot / triangle-inequality) pruning.
  bool horizontal_pruning = false;
  /// Number of pivot series when horizontal pruning is on.
  int32_t num_pivots = 8;

  /// Exact-mode (jumping off) queries run window-major through the
  /// vectorized sweep kernel (corr/sweep_kernel.h): each window's pair
  /// sweep is SIMD and branch-free, and the window is emitted to the sink
  /// the moment it completes — the engine itself streams. Turn off to run
  /// the scalar pair-major cell loop instead: the differential oracle of
  /// the sweep tests and the baseline of bench_query_time's
  /// BENCH_query.json. Both paths emit bit-identical edges. Ignored when
  /// jumping is on (jumping couples consecutive windows along a pair, so
  /// that path stays pair-major by construction).
  bool use_sweep_kernel = true;

  /// Worker threads (pair-block parallelism; results are deterministic and
  /// identical to the single-threaded run).
  int32_t num_threads = 1;
};

/// The paper's contribution: sliding-window correlation-matrix construction
/// with basic-window sketches, O(1) aligned-window evaluation via prefix
/// sums, Eq. 2 bound-driven jumping across windows, and optional horizontal
/// pruning via pivot series.
///
/// Exactness: with `enable_jumping == false` results are exact (identical to
/// NaiveEngine / TsubasaEngine up to floating-point roundoff). With jumping
/// on, skipped windows are *assumed* below threshold per Eq. 2 — exact on
/// data satisfying the stationarity assumption, > 90% edge accuracy on the
/// paper's climate workloads.
class DangoronEngine : public CorrelationEngine {
 public:
  explicit DangoronEngine(const DangoronOptions& options = {});

  std::string name() const override {
    return options_.enable_jumping ? "dangoron" : "dangoron-incremental";
  }
  Status Prepare(const TimeSeriesMatrix& data) override;
  /// Emission timing depends on the mode. Exact mode (jumping off) runs
  /// window-major in bands of corr/sweep_kernel.h's kSweepWindowBand: each
  /// band's windows are emitted as soon as the band's pair sweep completes,
  /// so the first window leaves after ~band/num_windows of the work —
  /// engine-level streaming, no sub-query chopping needed. With jumping
  /// on, pair blocks sweep every window before any window is final
  /// (jumping couples consecutive windows along a pair), so windows are
  /// emitted in order only once the sweep completes.
  Status QueryToSink(const SlidingQuery& query, WindowSink* sink) override;

  const DangoronOptions& options() const { return options_; }

  /// The pivot series indices used by the last horizontally pruned query.
  const std::vector<int64_t>& pivots() const { return pivots_; }

  /// The build half of Prepare as a pure function of (data, options): the
  /// index a serving layer constructs once and shares read-only. `pool` may
  /// be null (serial build).
  static Result<BasicWindowIndex> BuildIndex(const TimeSeriesMatrix& data,
                                             const DangoronOptions& options,
                                             ThreadPool* pool);

  /// The query half against an externally owned, immutable index — the
  /// const-correct shared path of the serving layer. Touches only local
  /// state, so any number of concurrent calls may share one `index` (and one
  /// reentrant `pool`). `options.basic_window` must match the index's.
  /// `stats` and `pivots_out` are optional outputs; `pool` may be null.
  static Result<CorrelationMatrixSeries> QueryPrepared(
      const DangoronOptions& options, const BasicWindowIndex& index,
      const SlidingQuery& query, ThreadPool* pool, EngineStats* stats,
      std::vector<int64_t>* pivots_out = nullptr);

  /// Sink-driving form of QueryPrepared: same computation, windows emitted
  /// to `sink` in ascending order (after the pair-block sweep; see
  /// QueryToSink). QueryPrepared is this with a CollectingWindowSink.
  static Status QueryPreparedToSink(const DangoronOptions& options,
                                    const BasicWindowIndex& index,
                                    const SlidingQuery& query,
                                    ThreadPool* pool, EngineStats* stats,
                                    WindowSink* sink,
                                    std::vector<int64_t>* pivots_out = nullptr);

 private:
  DangoronOptions options_;
  const TimeSeriesMatrix* data_ = nullptr;
  std::optional<BasicWindowIndex> index_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<int64_t> pivots_;
};

}  // namespace dangoron

#endif  // DANGORON_ENGINE_DANGORON_ENGINE_H_
