#include "engine/correlation_engine.h"

namespace dangoron {

Result<CorrelationMatrixSeries> CorrelationEngine::Query(
    const SlidingQuery& query) {
  CollectingWindowSink sink;
  RETURN_IF_ERROR(QueryToSink(query, &sink));
  return sink.TakeSeries();
}

}  // namespace dangoron
