#include "engine/dangoron_engine.h"

#include <algorithm>
#include <cmath>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/math_utils.h"
#include "corr/block_kernel.h"
#include "corr/sweep_kernel.h"

namespace dangoron {

namespace {

// The scalar exact cell both scalar paths (pair-major loop, window-major
// pruned leg) share — and whose operation sequence the vectorized sweep
// kernel mirrors lane for lane: one definition, so the bit-identity
// contract between the paths cannot drift. `sums` / `invs` point at the
// window's row of the hoisted moment arrays.
inline double ExactCellCorrelation(const BasicWindowIndex& index, int64_t pair,
                                   int64_t w0, int64_t ns, const double* sums,
                                   const double* invs, double inv_count,
                                   int64_t i, int64_t j) {
  const double cov =
      index.DotRange(pair, w0, w0 + ns) - sums[i] * sums[j] * inv_count;
  return ClampCorrelation(cov * invs[i] * invs[j]);
}

// Horizontal pruning decision for one cell: intersect the
// triangle-inequality intervals across pivots; the cell is pruned when the
// intersected interval cannot contain an edge value (in absolute mode that
// requires the whole interval inside (-beta, beta)). `pc_base` points at
// the window's pivot-correlation block [p * n + s].
inline bool HorizontallyPruned(const double* pc_base, int64_t P, int64_t n,
                               double beta, bool absolute, int64_t i,
                               int64_t j) {
  double upper = 1.0;
  double lower = -1.0;
  const double* pc = pc_base;
  for (int64_t p = 0; p < P; ++p, pc += n) {
    const HorizontalBound hb = HorizontalBoundFromPivot(pc[i], pc[j]);
    upper = std::min(upper, hb.upper);
    lower = std::max(lower, hb.lower);
    if (upper < beta && (!absolute || lower > -beta)) {
      break;
    }
  }
  return upper < beta && (!absolute || lower > -beta);
}

// Processes pairs [pair_begin, pair_end) sequentially, filling
// `local_windows` (one edge vector per window) and `local_stats`.
// `range_sum` / `range_inv_css` are the hoisted per-(window, series) query
// range sums and reciprocal centered root-sum-of-squares (0 for degenerate
// series), window-major [k * n + s]: the per-cell correlation is then two
// prefix loads, one fused subtract, and two multiplies — no divide or
// sqrt on the hot path. Reads only immutable state, so pair blocks of any
// number of concurrent queries may run against one shared index.
void ProcessPairBlock(const DangoronOptions& options,
                      const BasicWindowIndex& index, const SlidingQuery& query,
                      int64_t pair_begin, int64_t pair_end, int64_t base_w0,
                      int64_t ns, int64_t m,
                      const std::vector<double>& range_sum,
                      const std::vector<double>& range_inv_css,
                      const std::vector<double>& pivot_corrs,
                      std::vector<std::vector<Edge>>* local_windows,
                      EngineStats* local_stats) {
  const int64_t n = index.num_series();
  const int64_t num_windows = query.NumWindows();
  const double beta = query.threshold;
  const double inv_count = 1.0 / static_cast<double>(query.window);
  const TemporalBound bound(&index, ns, m);
  const int64_t P = options.horizontal_pruning ? options.num_pivots : 0;

  int64_t i = 0;
  int64_t j = 0;
  if (pair_begin < pair_end) {
    BasicWindowIndex::PairFromId(pair_begin, n, &i, &j);
  }
  for (int64_t pair = pair_begin; pair < pair_end; ++pair) {
    int64_t k = 0;
    while (k < num_windows) {
      const int64_t w0 = base_w0 + k * m;

      if (P > 0 && HorizontallyPruned(pivot_corrs.data() + k * P * n, P, n,
                                      beta, query.absolute, i, j)) {
        ++local_stats->cells_horizontal_pruned;
        ++k;
        continue;
      }

      // O(1) exact range correlation from the dot prefix and the hoisted
      // moments: no divide or sqrt per cell.
      const double corr = ExactCellCorrelation(
          index, pair, w0, ns, range_sum.data() + k * n,
          range_inv_css.data() + k * n, inv_count, i, j);
      ++local_stats->cells_evaluated;

      int64_t max_steps = num_windows - 1 - k;
      if (options.max_jump_steps > 0) {
        max_steps = std::min(max_steps, options.max_jump_steps);
      }

      if (query.IsEdge(corr)) {
        (*local_windows)[static_cast<size_t>(k)].push_back(
            Edge{static_cast<int32_t>(i), static_cast<int32_t>(j), corr});
        if (options.enable_jumping && options.enable_above_jumping) {
          // Edge persists while it provably stays on the same side of its
          // threshold: >= beta for positive edges, <= -beta for negative
          // (absolute-mode) edges.
          const int64_t skip =
              corr >= beta
                  ? bound.MaxSkippableAbove(pair, w0, corr, beta, max_steps)
                  : bound.MaxSkippableBelow(pair, w0, corr, -beta,
                                            max_steps);
          if (skip > 0) {
            // Skipped windows stay edges; report the anchor value (the
            // bound certifies threshold crossing, not the exact value).
            for (int64_t d = 1; d <= skip; ++d) {
              (*local_windows)[static_cast<size_t>(k + d)].push_back(
                  Edge{static_cast<int32_t>(i), static_cast<int32_t>(j),
                       corr});
            }
            local_stats->cells_jumped += skip;
            ++local_stats->jumps;
            k += skip;
          }
        }
        ++k;
      } else {
        if (options.enable_jumping) {
          // A non-edge is skippable while the bounds confine it below beta
          // (plain mode) or inside (-beta, beta) (absolute mode).
          const int64_t skip =
              query.absolute
                  ? bound.MaxSkippableWithin(pair, w0, corr, -beta, beta,
                                             max_steps)
                  : bound.MaxSkippableBelow(pair, w0, corr, beta, max_steps);
          if (skip > 0) {
            // Windows k+1 .. k+skip are assumed non-edges: nothing emitted.
            local_stats->cells_jumped += skip;
            ++local_stats->jumps;
            k += skip;
          }
        }
        ++k;
      }
    }

    // Advance (i, j) to the next canonical pair.
    ++j;
    if (j >= n) {
      ++i;
      j = i + 1;
    }
  }
}

// Window-major exact sweep (jumping off): windows advance in bands of
// kSweepWindowBand; within a band, pair tiles run in parallel through the
// vectorized sweep kernel (or the scalar pruned cell loop when horizontal
// pruning is on), then each of the band's windows is assembled flat —
// already sorted — and emitted in order. The engine itself streams:
// OnWindow(0) leaves after band/num_windows of the sweep instead of after
// all of it, while the band keeps each pair's dot-prefix cache lines hot
// across its windows (pure per-window order is memory-bound at N >= 256;
// see kSweepWindowBand). The tile decomposition is fixed (kSweepTilePairs),
// not thread-derived, and cells are independent, so results are identical
// for every thread count — and bit-identical to the pair-major scalar loop
// (the kernel mirrors its per-cell operation sequence exactly).
Status RunWindowMajorSweep(const DangoronOptions& options,
                           const BasicWindowIndex& index,
                           const SlidingQuery& query, ThreadPool* pool,
                           EngineStats* stats, WindowSink* sink,
                           int64_t base_w0, int64_t ns, int64_t m,
                           const std::vector<double>& range_sum,
                           const std::vector<double>& range_inv_css,
                           const std::vector<double>& pivot_corrs) {
  const int64_t n = index.num_series();
  const int64_t num_windows = query.NumWindows();
  const int64_t num_pairs = n * (n - 1) / 2;
  // Pair-range restriction (sharding): tiles cover [pair_lo, pair_hi) only.
  // Cells are independent, so the per-cell operation sequence — and with it
  // the emitted edges — is identical to the same pairs' cells in an
  // unrestricted run, whatever the tile alignment.
  const auto [pair_lo, pair_hi] = query.PairRange(num_pairs);
  const int64_t num_tiles =
      std::max<int64_t>(int64_t{1}, CeilDiv(pair_hi - pair_lo, kSweepTilePairs));
  const int num_pool_threads = pool != nullptr ? pool->num_threads() : 1;
  const double beta = query.threshold;
  const double inv_count = 1.0 / static_cast<double>(query.window);
  const int64_t P = options.horizontal_pruning ? options.num_pivots : 0;

  SweepEdgeArena arena(num_tiles, kSweepWindowBand);
  std::vector<EngineStats> tile_stats(static_cast<size_t>(num_tiles));
  auto fold_tile_stats = [&]() {
    for (const EngineStats& s : tile_stats) {
      stats->cells_evaluated += s.cells_evaluated;
      stats->cells_horizontal_pruned += s.cells_horizontal_pruned;
    }
  };

  SweepView view;
  view.dot_prefix = index.PairDotPrefix();
  view.row_stride = index.PairDotRowStride();
  view.range_sum = range_sum.data();
  view.range_inv_css = range_inv_css.data();
  view.num_series = n;
  view.inv_count = inv_count;
  view.threshold = beta;
  view.absolute = query.absolute;

  for (int64_t band_begin = 0; band_begin < num_windows;
       band_begin += kSweepWindowBand) {
    // Band boundary is the sweep's cancellation cadence, so it is also the
    // fault-injection site: an injected delay stretches every band (how
    // deadline tests make a sweep provably slow), an injected error aborts
    // the sweep through the same terminal OnFinish path as a real failure.
    if (Status injected = DANGORON_FAILPOINT_STATUS("sweep.band");
        !injected.ok()) {
      fold_tile_stats();
      sink->OnFinish(injected);
      return injected;
    }
    const int64_t band_end =
        std::min(num_windows, band_begin + kSweepWindowBand);
    arena.BeginBand();

    auto run_tile = [&](int64_t t) {
      const int64_t pair_begin = pair_lo + t * kSweepTilePairs;
      const int64_t pair_end =
          std::min(pair_hi, pair_begin + kSweepTilePairs);
      if (pair_begin >= pair_end) {
        return;  // no pairs at all (single-series data)
      }
      int64_t i = 0;
      int64_t j = 0;
      BasicWindowIndex::PairFromId(pair_begin, n, &i, &j);
      EngineStats* local = &tile_stats[static_cast<size_t>(t)];
      std::vector<Edge>* out_windows = arena.tile_windows(t);
      if (P == 0) {
        SweepWindowBandPairRange(view, base_w0, ns, m, band_begin, band_end,
                                 pair_begin, pair_end, i, j, out_windows);
        local->cells_evaluated +=
            (pair_end - pair_begin) * (band_end - band_begin);
        return;
      }
      // Pruned cells are inherently branchy (per-cell pivot-interval
      // intersection), so this leg stays scalar — the same shared cell
      // helpers as the pair-major loop, visited in window-major order for
      // the streaming emission.
      for (int64_t pair = pair_begin; pair < pair_end; ++pair) {
        for (int64_t k = band_begin; k < band_end; ++k) {
          if (HorizontallyPruned(pivot_corrs.data() + k * P * n, P, n, beta,
                                 query.absolute, i, j)) {
            ++local->cells_horizontal_pruned;
            continue;
          }
          const double corr = ExactCellCorrelation(
              index, pair, base_w0 + k * m, ns, range_sum.data() + k * n,
              range_inv_css.data() + k * n, inv_count, i, j);
          ++local->cells_evaluated;
          if (query.IsEdge(corr)) {
            out_windows[k - band_begin].push_back(Edge{
                static_cast<int32_t>(i), static_cast<int32_t>(j), corr});
          }
        }
        ++j;
        if (j >= n) {
          ++i;
          j = i + 1;
        }
      }
    };

    if (pool != nullptr && num_pool_threads > 1 && num_tiles > 1) {
      pool->ParallelFor(num_tiles, run_tile);
    } else {
      for (int64_t t = 0; t < num_tiles; ++t) {
        run_tile(t);
      }
    }

    for (int64_t k = band_begin; k < band_end; ++k) {
      if (!sink->OnWindow(k, arena.AssembleWindow(k - band_begin))) {
        fold_tile_stats();
        return FinishCancelled(sink, "DangoronEngine", k);
      }
    }
  }
  fold_tile_stats();
  sink->OnFinish(Status::Ok());
  return Status::Ok();
}

}  // namespace

DangoronEngine::DangoronEngine(const DangoronOptions& options)
    : options_(options) {}

Result<BasicWindowIndex> DangoronEngine::BuildIndex(
    const TimeSeriesMatrix& data, const DangoronOptions& options,
    ThreadPool* pool) {
  if (options.basic_window <= 0) {
    return Status::InvalidArgument("DangoronEngine: basic_window must be > 0");
  }
  BasicWindowIndexOptions index_options;
  index_options.basic_window = options.basic_window;
  index_options.build_pair_sketches = true;
  return BasicWindowIndex::Build(data, index_options, pool);
}

Status DangoronEngine::Prepare(const TimeSeriesMatrix& data) {
  if (options_.horizontal_pruning && options_.num_pivots <= 0) {
    return Status::InvalidArgument(
        "DangoronEngine: horizontal pruning needs num_pivots > 0");
  }
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  } else {
    pool_.reset();
  }
  ASSIGN_OR_RETURN(BasicWindowIndex index,
                   BuildIndex(data, options_, pool_.get()));
  index_ = std::move(index);
  data_ = &data;
  return Status::Ok();
}

Status DangoronEngine::QueryToSink(const SlidingQuery& query,
                                   WindowSink* sink) {
  if (data_ == nullptr || !index_.has_value()) {
    return Status::FailedPrecondition("DangoronEngine: Prepare not called");
  }
  stats_.Reset();
  return QueryPreparedToSink(options_, *index_, query, pool_.get(), &stats_,
                             sink, &pivots_);
}

Result<CorrelationMatrixSeries> DangoronEngine::QueryPrepared(
    const DangoronOptions& options, const BasicWindowIndex& index,
    const SlidingQuery& query, ThreadPool* pool, EngineStats* stats,
    std::vector<int64_t>* pivots_out) {
  CollectingWindowSink sink;
  RETURN_IF_ERROR(QueryPreparedToSink(options, index, query, pool, stats,
                                      &sink, pivots_out));
  return sink.TakeSeries();
}

Status DangoronEngine::QueryPreparedToSink(
    const DangoronOptions& options, const BasicWindowIndex& index,
    const SlidingQuery& query, ThreadPool* pool, EngineStats* stats,
    WindowSink* sink, std::vector<int64_t>* pivots_out) {
  const int64_t b = options.basic_window;
  if (b != index.basic_window()) {
    return Status::InvalidArgument(
        "DangoronEngine: options.basic_window ", b,
        " does not match the prepared index's ", index.basic_window());
  }
  RETURN_IF_ERROR(query.Validate(index.data().length()));
  if (query.start % b != 0 || query.window % b != 0 || query.step % b != 0) {
    return Status::InvalidArgument(
        "DangoronEngine: query start/window/step must be multiples of the "
        "basic window ",
        b, " (got start=", query.start, " window=", query.window,
        " step=", query.step,
        "); use TsubasaEngine for arbitrary alignment");
  }
  if (options.horizontal_pruning && options.num_pivots <= 0) {
    return Status::InvalidArgument(
        "DangoronEngine: horizontal pruning needs num_pivots > 0");
  }
  EngineStats local_stats;
  if (stats == nullptr) {
    stats = &local_stats;
  }

  const int64_t n = index.num_series();
  const int64_t num_windows = query.NumWindows();
  const int64_t num_pairs = n * (n - 1) / 2;
  // A pair-range restriction shrinks the evaluated problem; stats report
  // the restricted size so shard-local counters add up to the full query's
  // across a sharded deployment.
  const auto [pair_lo, pair_hi] = query.PairRange(num_pairs);
  const int64_t eval_pairs = pair_hi - pair_lo;
  const int64_t base_w0 = query.start / b;
  const int64_t ns = query.window / b;
  const int64_t m = query.step / b;
  stats->num_windows = num_windows;
  stats->num_pairs = eval_pairs;
  stats->cells_total = num_windows * eval_pairs;

  // The last window must be fully covered by indexed basic windows.
  const int64_t last_needed_bw = base_w0 + (num_windows - 1) * m + ns;
  if (last_needed_bw > index.num_basic_windows()) {
    return Status::OutOfRange(
        "DangoronEngine: query needs basic windows up to ", last_needed_bw,
        " but only ", index.num_basic_windows(), " are indexed");
  }
  RETURN_IF_ERROR(sink->OnBegin(query, n));

  const int num_pool_threads = pool != nullptr ? pool->num_threads() : 1;

  // Hoisted per-(window, series) range moments, window-major [k * n + s]:
  // the query-range sum and the reciprocal of the centered root sum of
  // squares (0 for a degenerate series, making every correlation with it
  // exactly 0, the PearsonFromMoments guard). Computed once so neither the
  // pivot precomputation nor the pair loop ever divides or square-roots per
  // cell. Parallel over windows; identical for any thread count.
  const double window_count = static_cast<double>(query.window);
  std::vector<double> range_sum(static_cast<size_t>(num_windows * n));
  std::vector<double> range_inv_css(static_cast<size_t>(num_windows * n));
  auto fill_window_moments = [&](int64_t k) {
    const int64_t w0 = base_w0 + k * m;
    double* sums = range_sum.data() + k * n;
    double* invs = range_inv_css.data() + k * n;
    for (int64_t s = 0; s < n; ++s) {
      const double sum = index.SumRange(s, w0, w0 + ns);
      const double css =
          index.SumSqRange(s, w0, w0 + ns) - sum * sum / window_count;
      sums[s] = sum;
      invs[s] = css > kMomentVarianceEps ? 1.0 / std::sqrt(css) : 0.0;
    }
  };
  if (pool != nullptr && num_pool_threads > 1 && num_windows > 1) {
    pool->ParallelFor(num_windows, fill_window_moments);
  } else {
    for (int64_t k = 0; k < num_windows; ++k) {
      fill_window_moments(k);
    }
  }

  // Pivot correlations for horizontal pruning: pivot_corrs[k * P * n + p * n
  // + s] = corr(pivot_p, series_s) in window k, computed exactly in O(1)
  // per cell from the pair sketches and the hoisted moments, parallel over
  // windows.
  std::vector<double> pivot_corrs;
  std::vector<int64_t> pivots;
  if (options.horizontal_pruning) {
    const int64_t P = options.num_pivots;
    for (int64_t p = 0; p < P; ++p) {
      pivots.push_back(p * n / P);  // evenly spaced, deterministic
    }
    pivot_corrs.assign(static_cast<size_t>(num_windows * P * n), 1.0);
    auto fill_window_pivots = [&](int64_t k) {
      const int64_t w0 = base_w0 + k * m;
      const double* sums = range_sum.data() + k * n;
      const double* invs = range_inv_css.data() + k * n;
      for (int64_t p = 0; p < P; ++p) {
        const int64_t z = pivots[static_cast<size_t>(p)];
        double* out = pivot_corrs.data() + (k * P + p) * n;
        const double sum_z = sums[z];
        const double inv_z = invs[z];
        for (int64_t s = 0; s < n; ++s) {
          if (s == z) {
            continue;  // stays 1.0
          }
          const int64_t pair = BasicWindowIndex::PairId(z, s, n);
          const double cov = index.DotRange(pair, w0, w0 + ns) -
                             sum_z * sums[s] / window_count;
          out[s] = ClampCorrelation(cov * inv_z * invs[s]);
        }
      }
    };
    if (pool != nullptr && num_pool_threads > 1 && num_windows > 1) {
      pool->ParallelFor(num_windows, fill_window_pivots);
    } else {
      for (int64_t k = 0; k < num_windows; ++k) {
        fill_window_pivots(k);
      }
    }
    stats->pivot_evaluations += num_windows * P * (n - 1);
  }
  if (pivots_out != nullptr) {
    *pivots_out = pivots;
  }

  // Exact mode goes window-major through the sweep kernel: windows are
  // emitted while the sweep runs. The jumping path below must stay
  // pair-major — a jump decision at window k determines whether windows
  // k+1.. are even evaluated for that pair — and doubles as the scalar
  // differential oracle when use_sweep_kernel is off.
  if (!options.enable_jumping && options.use_sweep_kernel) {
    return RunWindowMajorSweep(options, index, query, pool, stats, sink,
                               base_w0, ns, m, range_sum, range_inv_css,
                               pivot_corrs);
  }

  // Pair-block decomposition: contiguous ranges of pair ids, processed
  // independently. Deterministic regardless of thread count.
  const int64_t num_blocks =
      num_pool_threads > 1
          ? std::min<int64_t>(eval_pairs,
                              static_cast<int64_t>(num_pool_threads) * 8)
          : 1;
  const int64_t block_size = num_blocks > 0 ? CeilDiv(eval_pairs, num_blocks) : 0;

  std::vector<std::vector<std::vector<Edge>>> block_windows(
      static_cast<size_t>(num_blocks));
  std::vector<EngineStats> block_stats(static_cast<size_t>(num_blocks));

  auto run_block = [&](int64_t block) {
    const int64_t pair_begin = pair_lo + block * block_size;
    const int64_t pair_end = std::min(pair_hi, pair_begin + block_size);
    auto& local = block_windows[static_cast<size_t>(block)];
    local.assign(static_cast<size_t>(num_windows), {});
    ProcessPairBlock(options, index, query, pair_begin, pair_end, base_w0, ns,
                     m, range_sum, range_inv_css, pivot_corrs, &local,
                     &block_stats[static_cast<size_t>(block)]);
  };

  if (pool != nullptr && num_blocks > 1) {
    pool->ParallelFor(num_blocks, run_block);
  } else {
    for (int64_t block = 0; block < num_blocks; ++block) {
      run_block(block);
    }
  }

  for (const EngineStats& s : block_stats) {
    stats->cells_evaluated += s.cells_evaluated;
    stats->cells_jumped += s.cells_jumped;
    stats->cells_horizontal_pruned += s.cells_horizontal_pruned;
    stats->jumps += s.jumps;
  }

  // Emit windows in order: deterministic merge in block order, then the
  // canonical (i, j) sort — per window, so each window leaves as soon as it
  // is assembled instead of after the whole series is stitched. Pairs are
  // unique within a window, so the unstable sort is deterministic.
  for (int64_t k = 0; k < num_windows; ++k) {
    std::vector<Edge> window;
    if (num_blocks == 1) {
      window = std::move(block_windows[0][static_cast<size_t>(k)]);
    } else {
      size_t total = 0;
      for (const auto& local : block_windows) {
        total += local[static_cast<size_t>(k)].size();
      }
      window.reserve(total);
      for (const auto& local : block_windows) {
        const auto& edges = local[static_cast<size_t>(k)];
        window.insert(window.end(), edges.begin(), edges.end());
      }
    }
    std::sort(window.begin(), window.end(), EdgeOrder);
    if (!sink->OnWindow(k, std::move(window))) {
      return FinishCancelled(sink, "DangoronEngine", k);
    }
  }
  sink->OnFinish(Status::Ok());
  return Status::Ok();
}

}  // namespace dangoron
