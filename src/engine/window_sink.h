#ifndef DANGORON_ENGINE_WINDOW_SINK_H_
#define DANGORON_ENGINE_WINDOW_SINK_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "engine/query.h"

namespace dangoron {

/// The window-emission side of the result pipeline: engines (and other
/// window producers) push each window's thresholded edge set into a sink as
/// soon as it is final, instead of materializing a whole
/// `CorrelationMatrixSeries` before the caller sees a single edge.
///
/// Contract for bounded producers (the engines' `QueryToSink` /
/// `QueryPreparedToSink` paths):
/// - `OnBegin` is called exactly once, after query validation and before any
///   window; a non-OK return aborts the query with that status (no
///   `OnFinish`).
/// - `OnWindow` is called for window indices 0 .. NumWindows()-1 in strictly
///   ascending order, exactly once each, with edges sorted by (i, j) and
///   thresholded by the query's rule. Returning false is the cancellation
///   hook: the producer stops, calls `OnFinish(Cancelled)`, and returns the
///   Cancelled status to its caller.
/// - `OnFinish` is called exactly once after a successful `OnBegin`,
///   terminally: Ok after the last window, the failure status on error, or
///   Cancelled when `OnWindow` requested cancellation. No call on the sink
///   follows it.
///
/// Open-ended producers (`StreamingNetworkBuilder::EmitTo`) have no terminal
/// window and drive `OnWindow` only; sinks meant for that path must not
/// require `OnBegin` (see `CacheWindowSink`). `CollectingWindowSink` is a
/// bounded-producer sink and does require it.
///
/// Sinks are driven from one thread at a time; a sink shared between
/// producers must synchronize internally.
class WindowSink {
 public:
  virtual ~WindowSink() = default;

  /// Query metadata, once, before the first window.
  virtual Status OnBegin(const SlidingQuery& query, int64_t num_series) {
    (void)query;
    (void)num_series;
    return Status::Ok();
  }

  /// One finished window. Return false to cancel the producing query.
  virtual bool OnWindow(int64_t window_index, std::vector<Edge> edges) = 0;

  /// Terminal signal (see the class contract).
  virtual void OnFinish(const Status& status) { (void)status; }
};

/// The materializing sink: collects every window into a
/// `CorrelationMatrixSeries`. `CorrelationEngine::Query` is a thin wrapper
/// over `QueryToSink` with one of these, which is what keeps the historical
/// materialized API byte-identical to the streaming path.
class CollectingWindowSink final : public WindowSink {
 public:
  Status OnBegin(const SlidingQuery& query, int64_t num_series) override {
    series_ = CorrelationMatrixSeries(query, num_series);
    return Status::Ok();
  }

  bool OnWindow(int64_t window_index, std::vector<Edge> edges) override {
    *series_.MutableWindow(window_index) = std::move(edges);
    return true;
  }

  void OnFinish(const Status& status) override { status_ = status; }

  const Status& status() const { return status_; }

  /// The collected result; valid after OnFinish(Ok).
  CorrelationMatrixSeries TakeSeries() { return std::move(series_); }

 private:
  CorrelationMatrixSeries series_;
  Status status_ = Status::Ok();
};

/// Replays a materialized series through `sink` window by window (edges are
/// copied — the series keeps its windows). Bridges the pre-pipeline world
/// into sink consumers: OnBegin / every OnWindow in order / OnFinish, with
/// the usual cancellation semantics.
Status ReplayToSink(const CorrelationMatrixSeries& series, WindowSink* sink);

/// The shared cancellation epilogue of every bounded producer: builds the
/// Cancelled status for `producer` stopping at `window_index` (the window
/// whose OnWindow returned false), delivers it through OnFinish, and
/// returns it for the producer to propagate.
Status FinishCancelled(WindowSink* sink, const char* producer,
                       int64_t window_index);

}  // namespace dangoron

#endif  // DANGORON_ENGINE_WINDOW_SINK_H_
