#ifndef DANGORON_ENGINE_QUERY_H_
#define DANGORON_ENGINE_QUERY_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace dangoron {

/// The sliding-window correlation query of the paper's problem definition:
/// over columns [start, end), compute a correlation matrix per window of
/// size `window`, advancing by `step`, reporting entries >= `threshold`
/// (everything below is 0 — i.e. absent from the sparse result).
struct SlidingQuery {
  int64_t start = 0;      ///< s — first column of the query range
  int64_t end = 0;        ///< e — one past the last column
  int64_t window = 0;     ///< l — query window size (columns)
  int64_t step = 0;       ///< eta — sliding step (columns)
  double threshold = 0.8; ///< beta — minimum reported correlation
  /// When true, an edge is reported when |corr| >= beta (anti-correlations
  /// count — the convention of climate teleconnection networks); the edge
  /// keeps the signed value. beta must then be in [0, 1].
  bool absolute = false;
  /// Restricts evaluation to pair ids in [pair_begin, pair_end) — the
  /// contiguous slice of the canonical pair enumeration (ascending (i, j),
  /// see BasicWindowIndex::PairId). (0, 0) means all pairs. This is the
  /// sharding primitive: a router splits one query into K disjoint
  /// pair-range restrictions and concatenates the per-window edge lists in
  /// shard order, which is exactly the global (i, j) sort. pair_end beyond
  /// the dataset's pair count is clamped, so a splitter may over-shoot the
  /// last slice.
  int64_t pair_begin = 0;
  int64_t pair_end = 0;

  /// True when the query restricts the pair-id range.
  bool HasPairRestriction() const {
    return pair_begin != 0 || pair_end != 0;
  }

  /// The evaluated pair-id range for a dataset with `num_pairs` total pairs:
  /// the whole range when unrestricted, the clamped restriction otherwise.
  std::pair<int64_t, int64_t> PairRange(int64_t num_pairs) const {
    if (!HasPairRestriction()) {
      return {0, num_pairs};
    }
    const int64_t lo = std::min(pair_begin, num_pairs);
    const int64_t hi = std::min(pair_end, num_pairs);
    return {lo, std::max(lo, hi)};
  }

  /// True when `value` clears the edge threshold under this query's rule.
  bool IsEdge(double value) const {
    return (absolute ? (value <= -threshold || value >= threshold)
                     : value >= threshold);
  }

  /// Number of windows (gamma + 1); 0 when the range cannot fit one window.
  int64_t NumWindows() const {
    if (end - start < window || window <= 0 || step <= 0) {
      return 0;
    }
    return (end - start - window) / step + 1;
  }

  /// Validates basic well-formedness against a series length.
  Status Validate(int64_t series_length) const;

  std::string ToString() const;
};

/// One reported entry of a thresholded correlation matrix: an edge of the
/// correlation network snapshot.
struct Edge {
  int32_t i = 0;
  int32_t j = 0;      ///< i < j (matrices are symmetric; diagonal implied)
  double value = 0.0; ///< Pearson correlation, >= query threshold
};

inline bool operator==(const Edge& a, const Edge& b) {
  return a.i == b.i && a.j == b.j && a.value == b.value;
}

/// The canonical (i, j) ordering of a window's edges — the single
/// definition behind both the engines' per-window emission sort and
/// CorrelationMatrixSeries::SortWindows, so the WindowSink "sorted by
/// (i, j)" contract cannot drift between the two.
inline bool EdgeOrder(const Edge& a, const Edge& b) {
  return a.i != b.i ? a.i < b.i : a.j < b.j;
}

/// The query result: a sequence of sparse thresholded correlation matrices,
/// window k covering columns [start + k*step, start + k*step + window).
/// Edges within a window are sorted by (i, j).
class CorrelationMatrixSeries {
 public:
  CorrelationMatrixSeries() = default;
  CorrelationMatrixSeries(SlidingQuery query, int64_t num_series)
      : query_(query), num_series_(num_series),
        windows_(static_cast<size_t>(query.NumWindows())) {}

  const SlidingQuery& query() const { return query_; }
  int64_t num_series() const { return num_series_; }
  int64_t num_windows() const { return static_cast<int64_t>(windows_.size()); }

  std::span<const Edge> WindowEdges(int64_t k) const {
    return windows_[static_cast<size_t>(k)];
  }
  std::vector<Edge>* MutableWindow(int64_t k) {
    return &windows_[static_cast<size_t>(k)];
  }

  /// Total edges across all windows.
  int64_t TotalEdges() const;

  /// Densifies window `k` into a full num_series x num_series matrix
  /// (row-major, diagonal 1, sub-threshold entries 0).
  std::vector<double> ToDense(int64_t k) const;

  /// Sorts every window's edges by (i, j); engines call this once after
  /// filling windows out of order.
  void SortWindows();

 private:
  SlidingQuery query_;
  int64_t num_series_ = 0;
  std::vector<std::vector<Edge>> windows_;
};

/// Counters every engine fills during a query; the benchmark harness prints
/// them next to the timings.
struct EngineStats {
  int64_t num_windows = 0;
  int64_t num_pairs = 0;
  /// pair-window cells in the full problem (num_windows * num_pairs).
  int64_t cells_total = 0;
  /// cells whose correlation was explicitly evaluated.
  int64_t cells_evaluated = 0;
  /// cells skipped by temporal jumps.
  int64_t cells_jumped = 0;
  /// cells skipped by the horizontal bound.
  int64_t cells_horizontal_pruned = 0;
  /// number of jump decisions taken.
  int64_t jumps = 0;
  /// exact evaluations spent on pivot columns (horizontal pruning overhead).
  int64_t pivot_evaluations = 0;

  void Reset() { *this = EngineStats(); }
};

}  // namespace dangoron

#endif  // DANGORON_ENGINE_QUERY_H_
