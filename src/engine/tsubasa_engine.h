#ifndef DANGORON_ENGINE_TSUBASA_ENGINE_H_
#define DANGORON_ENGINE_TSUBASA_ENGINE_H_

#include <memory>
#include <optional>

#include "common/thread_pool.h"
#include "engine/correlation_engine.h"
#include "sketch/basic_window_index.h"

namespace dangoron {

/// Options of the TSUBASA baseline.
struct TsubasaOptions {
  /// Basic window size of the sketch.
  int64_t basic_window = 24;
  /// Worker threads for the sketch build (queries are single-threaded,
  /// matching the paper's "pure query time" comparisons).
  int num_threads = 1;
};

/// Reimplementation of TSUBASA (Xu, Liu, Nargesian — SIGMOD'22), the paper's
/// baseline: per-basic-window sketches combined *per query window* into the
/// exact correlation. Arbitrary (unaligned) windows are supported by
/// computing the partial head/tail basic windows from raw data.
///
/// The published algorithm recombines every window of a sliding query from
/// scratch — O(ns) sketch touches per pair per window with no reuse across
/// overlapping windows. That faithful cost model is exactly the weakness the
/// Dangoron paper targets ("lacks efficiency for sliding queries"), so this
/// implementation deliberately does not share Dangoron's prefix/jump reuse.
class TsubasaEngine : public CorrelationEngine {
 public:
  explicit TsubasaEngine(const TsubasaOptions& options = {});

  std::string name() const override { return "tsubasa"; }
  Status Prepare(const TimeSeriesMatrix& data) override;
  /// Each window's O(ns) recombination is independent, so windows stream
  /// out one by one; cancellation skips the remaining recombinations.
  Status QueryToSink(const SlidingQuery& query, WindowSink* sink) override;

  /// TSUBASA's headline API: exact correlation of (i, j) over an arbitrary
  /// column range [range_start, range_end), combining full basic windows
  /// from the sketch and partial edges from raw data.
  Result<double> PairCorrelation(int64_t i, int64_t j, int64_t range_start,
                                 int64_t range_end) const;

 private:
  TsubasaOptions options_;
  const TimeSeriesMatrix* data_ = nullptr;
  std::optional<BasicWindowIndex> index_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace dangoron

#endif  // DANGORON_ENGINE_TSUBASA_ENGINE_H_
