#include "engine/tsubasa_engine.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/math_utils.h"
#include "corr/pearson.h"

namespace dangoron {

namespace {

// Raw-data partial sums over columns [t0, t1) of series `s`.
struct PartialMoments {
  double sum = 0.0;
  double sumsq = 0.0;
};

PartialMoments RawMoments(const TimeSeriesMatrix& data, int64_t s, int64_t t0,
                          int64_t t1) {
  PartialMoments m;
  if (t1 <= t0) {
    return m;
  }
  std::span<const double> values = data.RowRange(s, t0, t1 - t0);
  for (const double v : values) {
    m.sum += v;
    m.sumsq += v * v;
  }
  return m;
}

double RawDot(const TimeSeriesMatrix& data, int64_t i, int64_t j, int64_t t0,
              int64_t t1) {
  if (t1 <= t0) {
    return 0.0;
  }
  std::span<const double> x = data.RowRange(i, t0, t1 - t0);
  std::span<const double> y = data.RowRange(j, t0, t1 - t0);
  double dot = 0.0;
  for (size_t t = 0; t < x.size(); ++t) {
    dot += x[t] * y[t];
  }
  return dot;
}

}  // namespace

TsubasaEngine::TsubasaEngine(const TsubasaOptions& options)
    : options_(options) {}

Status TsubasaEngine::Prepare(const TimeSeriesMatrix& data) {
  if (options_.basic_window <= 0) {
    return Status::InvalidArgument("TsubasaEngine: basic_window must be > 0");
  }
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  } else {
    pool_.reset();
  }
  BasicWindowIndexOptions index_options;
  index_options.basic_window = options_.basic_window;
  index_options.build_pair_sketches = true;
  ASSIGN_OR_RETURN(BasicWindowIndex index,
                   BasicWindowIndex::Build(data, index_options, pool_.get()));
  index_ = std::move(index);
  data_ = &data;
  return Status::Ok();
}

Status TsubasaEngine::QueryToSink(const SlidingQuery& query,
                                  WindowSink* sink) {
  if (data_ == nullptr || !index_.has_value()) {
    return Status::FailedPrecondition("TsubasaEngine: Prepare not called");
  }
  RETURN_IF_ERROR(query.Validate(data_->length()));
  if (query.HasPairRestriction()) {
    return Status::InvalidArgument(
        "TsubasaEngine: pair-range restriction is not supported; route "
        "restricted queries to DangoronEngine");
  }
  stats_.Reset();

  const int64_t n = data_->num_series();
  const int64_t b = options_.basic_window;
  const int64_t num_windows = query.NumWindows();
  stats_.num_windows = num_windows;
  stats_.num_pairs = n * (n - 1) / 2;
  stats_.cells_total = stats_.num_windows * stats_.num_pairs;

  RETURN_IF_ERROR(sink->OnBegin(query, n));
  const BasicWindowIndex& index = *index_;

  // Reused per-window per-series moment buffers.
  std::vector<double> series_sum(static_cast<size_t>(n));
  std::vector<double> series_sumsq(static_cast<size_t>(n));

  for (int64_t k = 0; k < num_windows; ++k) {
    const int64_t a = query.start + k * query.step;
    const int64_t e = a + query.window;
    // Full basic windows contained in [a, e); partial edges come from raw.
    // Clamp to the indexed range (a ragged series tail is not indexed).
    int64_t full_lo = CeilDiv(a, b);
    int64_t full_hi = std::min(e / b, index.num_basic_windows());
    const int64_t head_begin = a;
    int64_t head_end;
    int64_t tail_begin;
    if (full_hi <= full_lo) {
      // No usable full basic window: the whole range is raw.
      full_lo = full_hi = 0;
      head_end = e;
      tail_begin = e;
    } else {
      head_end = full_lo * b;
      tail_begin = full_hi * b;
    }
    const int64_t tail_end = e;

    // Per-series window moments: the faithful O(ns) recombination per
    // series, plus raw partial edges.
    for (int64_t s = 0; s < n; ++s) {
      double sum = 0.0;
      double sumsq = 0.0;
      for (int64_t w = full_lo; w < full_hi; ++w) {
        sum += index.SumRange(s, w, w + 1);
        sumsq += index.SumSqRange(s, w, w + 1);
      }
      const PartialMoments head = RawMoments(*data_, s, head_begin, head_end);
      const PartialMoments tail = RawMoments(*data_, s, tail_begin, tail_end);
      series_sum[static_cast<size_t>(s)] = sum + head.sum + tail.sum;
      series_sumsq[static_cast<size_t>(s)] = sumsq + head.sumsq + tail.sumsq;
    }

    std::vector<Edge> edges;
    const double count = static_cast<double>(query.window);
    // Pair ids are contiguous along the canonical (i, j) walk.
    int64_t p = 0;
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = i + 1; j < n; ++j, ++p) {
        // O(ns) sketch recombination: one prefix-difference per basic
        // window, matching TSUBASA's per-window combination cost.
        double dot = 0.0;
        for (int64_t w = full_lo; w < full_hi; ++w) {
          dot += index.DotRange(p, w, w + 1);
        }
        dot += RawDot(*data_, i, j, head_begin, head_end);
        dot += RawDot(*data_, i, j, tail_begin, tail_end);
        const double c = PearsonFromMoments(
            count, series_sum[static_cast<size_t>(i)],
            series_sum[static_cast<size_t>(j)],
            series_sumsq[static_cast<size_t>(i)],
            series_sumsq[static_cast<size_t>(j)], dot);
        ++stats_.cells_evaluated;
        if (query.IsEdge(c)) {
          edges.push_back(
              Edge{static_cast<int32_t>(i), static_cast<int32_t>(j), c});
        }
      }
    }
    if (!sink->OnWindow(k, std::move(edges))) {
      return FinishCancelled(sink, "TsubasaEngine", k);
    }
  }
  sink->OnFinish(Status::Ok());
  return Status::Ok();
}

Result<double> TsubasaEngine::PairCorrelation(int64_t i, int64_t j,
                                              int64_t range_start,
                                              int64_t range_end) const {
  if (data_ == nullptr || !index_.has_value()) {
    return Status::FailedPrecondition("TsubasaEngine: Prepare not called");
  }
  if (i < 0 || j < 0 || i >= data_->num_series() || j >= data_->num_series() ||
      i == j) {
    return Status::InvalidArgument("PairCorrelation: bad pair (", i, ", ", j,
                                   ")");
  }
  if (range_start < 0 || range_end > data_->length() ||
      range_end - range_start < 2) {
    return Status::OutOfRange("PairCorrelation: bad range [", range_start,
                              ", ", range_end, ")");
  }
  const BasicWindowIndex& index = *index_;
  const int64_t b = options_.basic_window;
  int64_t full_lo = CeilDiv(range_start, b);
  int64_t full_hi = std::min(range_end / b, index.num_basic_windows());
  int64_t head_end;
  int64_t tail_begin;
  if (full_hi <= full_lo) {
    // No usable full basic window: the whole range is raw.
    full_lo = full_hi = 0;
    head_end = range_end;
    tail_begin = range_end;
  } else {
    head_end = full_lo * b;
    tail_begin = full_hi * b;
  }

  const int64_t p = BasicWindowIndex::PairId(i, j, data_->num_series());
  double dot = index.DotRange(p, full_lo, full_hi);
  double sx = index.SumRange(i, full_lo, full_hi);
  double sy = index.SumRange(j, full_lo, full_hi);
  double sxx = index.SumSqRange(i, full_lo, full_hi);
  double syy = index.SumSqRange(j, full_lo, full_hi);

  for (const auto& [t0, t1] : {std::pair{range_start, head_end},
                               std::pair{tail_begin, range_end}}) {
    const PartialMoments mi = RawMoments(*data_, i, t0, t1);
    const PartialMoments mj = RawMoments(*data_, j, t0, t1);
    sx += mi.sum;
    sxx += mi.sumsq;
    sy += mj.sum;
    syy += mj.sumsq;
    dot += RawDot(*data_, i, j, t0, t1);
  }
  return PearsonFromMoments(static_cast<double>(range_end - range_start), sx,
                            sy, sxx, syy, dot);
}

}  // namespace dangoron
