#include "engine/window_sink.h"

namespace dangoron {

Status FinishCancelled(WindowSink* sink, const char* producer,
                       int64_t window_index) {
  Status cancelled = Status::Cancelled(producer, ": sink cancelled at window ",
                                       window_index);
  sink->OnFinish(cancelled);
  return cancelled;
}

Status ReplayToSink(const CorrelationMatrixSeries& series, WindowSink* sink) {
  RETURN_IF_ERROR(sink->OnBegin(series.query(), series.num_series()));
  for (int64_t k = 0; k < series.num_windows(); ++k) {
    const std::span<const Edge> edges = series.WindowEdges(k);
    if (!sink->OnWindow(k, std::vector<Edge>(edges.begin(), edges.end()))) {
      return FinishCancelled(sink, "ReplayToSink", k);
    }
  }
  sink->OnFinish(Status::Ok());
  return Status::Ok();
}

}  // namespace dangoron
