#include "engine/factory.h"

#include <map>

#include "common/strings.h"
#include "engine/dangoron_engine.h"
#include "engine/naive_engine.h"
#include "engine/parcorr_engine.h"
#include "engine/tsubasa_engine.h"
#include "serve/server.h"

namespace dangoron {

namespace {

// Parses "a=1,b=on" into a key -> value map; empty text is an empty map.
Result<std::map<std::string, std::string>> ParseOptions(
    const std::string& text) {
  std::map<std::string, std::string> options;
  if (Trim(text).empty()) {
    return options;
  }
  for (const std::string& item : Split(text, ',')) {
    const std::vector<std::string> kv = Split(item, '=');
    if (kv.size() != 2 || Trim(kv[0]).empty()) {
      return Status::InvalidArgument("bad engine option '", item,
                                     "' (expected key=value)");
    }
    options[std::string(Trim(kv[0]))] = std::string(Trim(kv[1]));
  }
  return options;
}

Result<bool> ParseOnOff(const std::string& value) {
  if (value == "on" || value == "true" || value == "1") {
    return true;
  }
  if (value == "off" || value == "false" || value == "0") {
    return false;
  }
  return Status::InvalidArgument("expected on/off, got '", value, "'");
}

// Pops `key` from `options` applying `apply`; missing key is a no-op.
template <typename ApplyFn>
Status Consume(std::map<std::string, std::string>* options,
               const std::string& key, ApplyFn apply) {
  auto it = options->find(key);
  if (it == options->end()) {
    return Status::Ok();
  }
  RETURN_IF_ERROR(apply(it->second));
  options->erase(it);
  return Status::Ok();
}

Status ConsumeInt(std::map<std::string, std::string>* options,
                  const std::string& key, int64_t* out) {
  return Consume(options, key, [&](const std::string& value) {
    ASSIGN_OR_RETURN(*out, ParseInt64(value));
    return Status::Ok();
  });
}

Status ConsumeBool(std::map<std::string, std::string>* options,
                   const std::string& key, bool* out) {
  return Consume(options, key, [&](const std::string& value) {
    ASSIGN_OR_RETURN(*out, ParseOnOff(value));
    return Status::Ok();
  });
}

Status RejectLeftovers(const std::map<std::string, std::string>& options,
                       const std::string& engine) {
  if (!options.empty()) {
    return Status::InvalidArgument("unknown option '", options.begin()->first,
                                   "' for engine '", engine, "'");
  }
  return Status::Ok();
}

}  // namespace

Result<std::unique_ptr<CorrelationEngine>> CreateEngine(
    const std::string& name, const std::string& options_text) {
  // Note: the map type's comma defeats ASSIGN_OR_RETURN's macro parsing.
  auto options_or = ParseOptions(options_text);
  if (!options_or.ok()) {
    return options_or.status();
  }
  std::map<std::string, std::string> options = std::move(*options_or);

  if (name == "naive") {
    RETURN_IF_ERROR(RejectLeftovers(options, name));
    return std::unique_ptr<CorrelationEngine>(new NaiveEngine());
  }

  if (name == "tsubasa") {
    TsubasaOptions engine_options;
    int64_t basic_window = engine_options.basic_window;
    int64_t threads = engine_options.num_threads;
    RETURN_IF_ERROR(ConsumeInt(&options, "basic_window", &basic_window));
    RETURN_IF_ERROR(ConsumeInt(&options, "threads", &threads));
    RETURN_IF_ERROR(RejectLeftovers(options, name));
    engine_options.basic_window = basic_window;
    engine_options.num_threads = static_cast<int>(threads);
    return std::unique_ptr<CorrelationEngine>(
        new TsubasaEngine(engine_options));
  }

  if (name == "dangoron") {
    DangoronOptions engine_options;
    int64_t basic_window = engine_options.basic_window;
    int64_t max_jump = engine_options.max_jump_steps;
    int64_t pivots = engine_options.num_pivots;
    int64_t threads = engine_options.num_threads;
    RETURN_IF_ERROR(ConsumeInt(&options, "basic_window", &basic_window));
    RETURN_IF_ERROR(ConsumeBool(&options, "jump",
                                &engine_options.enable_jumping));
    RETURN_IF_ERROR(ConsumeBool(&options, "above_jump",
                                &engine_options.enable_above_jumping));
    RETURN_IF_ERROR(ConsumeInt(&options, "max_jump", &max_jump));
    RETURN_IF_ERROR(ConsumeBool(&options, "horizontal",
                                &engine_options.horizontal_pruning));
    RETURN_IF_ERROR(ConsumeInt(&options, "pivots", &pivots));
    RETURN_IF_ERROR(ConsumeBool(&options, "sweep",
                                &engine_options.use_sweep_kernel));
    RETURN_IF_ERROR(ConsumeInt(&options, "threads", &threads));
    RETURN_IF_ERROR(RejectLeftovers(options, name));
    engine_options.basic_window = basic_window;
    engine_options.max_jump_steps = max_jump;
    engine_options.num_pivots = static_cast<int32_t>(pivots);
    engine_options.num_threads = static_cast<int32_t>(threads);
    return std::unique_ptr<CorrelationEngine>(
        new DangoronEngine(engine_options));
  }

  if (name == "parcorr") {
    ParCorrOptions engine_options;
    int64_t dim = engine_options.sketch_dim;
    int64_t seed = static_cast<int64_t>(engine_options.seed);
    RETURN_IF_ERROR(ConsumeInt(&options, "dim", &dim));
    RETURN_IF_ERROR(ConsumeInt(&options, "seed", &seed));
    RETURN_IF_ERROR(ConsumeBool(&options, "verify",
                                &engine_options.verify_candidates));
    RETURN_IF_ERROR(Consume(&options, "margin", [&](const std::string& v) {
      ASSIGN_OR_RETURN(engine_options.candidate_margin, ParseDouble(v));
      return Status::Ok();
    }));
    RETURN_IF_ERROR(RejectLeftovers(options, name));
    engine_options.sketch_dim = static_cast<int32_t>(dim);
    engine_options.seed = static_cast<uint64_t>(seed);
    return std::unique_ptr<CorrelationEngine>(
        new ParCorrEngine(engine_options));
  }

  return Status::NotFound("unknown engine '", name, "'; known: ",
                          KnownEngineNames());
}

std::string KnownEngineNames() { return "naive, tsubasa, dangoron, parcorr"; }

Result<std::unique_ptr<DangoronServer>> CreateServer(
    const std::string& options_text) {
  auto options_or = ParseOptions(options_text);
  if (!options_or.ok()) {
    return options_or.status();
  }
  std::map<std::string, std::string> options = std::move(*options_or);

  DangoronServerOptions server_options;
  int64_t threads = server_options.num_threads;
  int64_t sketch_cache_mb = server_options.sketch_cache_bytes >> 20;
  int64_t result_cache_mb = server_options.result_cache_bytes >> 20;
  RETURN_IF_ERROR(ConsumeInt(&options, "threads", &threads));
  RETURN_IF_ERROR(
      ConsumeInt(&options, "basic_window", &server_options.basic_window));
  RETURN_IF_ERROR(ConsumeInt(&options, "sketch_cache_mb", &sketch_cache_mb));
  RETURN_IF_ERROR(ConsumeInt(&options, "result_cache_mb", &result_cache_mb));
  RETURN_IF_ERROR(ConsumeBool(&options, "refuse_oversized",
                              &server_options.refuse_oversized_prepares));
  RETURN_IF_ERROR(ConsumeInt(&options, "threshold_steps",
                             &server_options.threshold_family_steps));
  RETURN_IF_ERROR(ConsumeInt(&options, "max_streams",
                             &server_options.max_concurrent_streams));
  RETURN_IF_ERROR(Consume(&options, "admission", [&](const std::string& v) {
    ASSIGN_OR_RETURN(server_options.admission, ParseAdmissionPolicy(v));
    return Status::Ok();
  }));
  RETURN_IF_ERROR(ConsumeInt(&options, "admission_queue",
                             &server_options.admission_queue_limit));
  RETURN_IF_ERROR(Consume(&options, "default_tier", [&](const std::string& v) {
    ASSIGN_OR_RETURN(server_options.default_tier, ParseServeTier(v));
    return Status::Ok();
  }));
  RETURN_IF_ERROR(Consume(&options, "degrade", [&](const std::string& v) {
    ASSIGN_OR_RETURN(server_options.degrade, ParseDegradePolicy(v));
    return Status::Ok();
  }));
  RETURN_IF_ERROR(RejectLeftovers(options, "server"));
  if (threads < 0) {
    return Status::InvalidArgument("server: threads must be >= 0, got ",
                                   threads);
  }
  if (server_options.basic_window <= 0) {
    return Status::InvalidArgument("server: basic_window must be > 0, got ",
                                   server_options.basic_window);
  }
  if (sketch_cache_mb < 0 || result_cache_mb < 0) {
    return Status::InvalidArgument("server: cache budgets must be >= 0");
  }
  if (server_options.threshold_family_steps < 0) {
    return Status::InvalidArgument(
        "server: threshold_steps must be >= 0 (0 disables family keys), got ",
        server_options.threshold_family_steps);
  }
  if (server_options.max_concurrent_streams <= 0) {
    return Status::InvalidArgument("server: max_streams must be > 0, got ",
                                   server_options.max_concurrent_streams);
  }
  if (server_options.admission_queue_limit <= 0) {
    return Status::InvalidArgument(
        "server: admission_queue must be > 0, got ",
        server_options.admission_queue_limit);
  }
  server_options.num_threads = static_cast<int32_t>(threads);
  server_options.sketch_cache_bytes = sketch_cache_mb << 20;
  server_options.result_cache_bytes = result_cache_mb << 20;
  return std::make_unique<DangoronServer>(server_options);
}

}  // namespace dangoron
