#include "engine/naive_engine.h"

#include "corr/pearson.h"

namespace dangoron {

Status NaiveEngine::Prepare(const TimeSeriesMatrix& data) {
  if (data.empty()) {
    return Status::InvalidArgument("NaiveEngine: empty matrix");
  }
  if (data.CountMissing() > 0) {
    return Status::FailedPrecondition(
        "NaiveEngine: data contains missing values; run InterpolateMissing "
        "first");
  }
  data_ = &data;
  return Status::Ok();
}

Status NaiveEngine::QueryToSink(const SlidingQuery& query, WindowSink* sink) {
  if (data_ == nullptr) {
    return Status::FailedPrecondition("NaiveEngine: Prepare not called");
  }
  RETURN_IF_ERROR(query.Validate(data_->length()));
  stats_.Reset();

  const int64_t n = data_->num_series();
  const int64_t num_windows = query.NumWindows();
  const auto [pair_lo, pair_hi] = query.PairRange(n * (n - 1) / 2);
  stats_.num_windows = num_windows;
  stats_.num_pairs = pair_hi - pair_lo;
  stats_.cells_total = stats_.num_windows * stats_.num_pairs;

  RETURN_IF_ERROR(sink->OnBegin(query, n));
  for (int64_t k = 0; k < num_windows; ++k) {
    const int64_t window_start = query.start + k * query.step;
    std::vector<Edge> edges;
    // Every pair of the window in one blocked z-normalized Gram pass; the
    // brute force stays O(N^2 * l) per window but runs at kernel speed.
    auto matrix_or = ExactCorrelationMatrix(*data_, window_start, query.window);
    if (!matrix_or.ok()) {
      sink->OnFinish(matrix_or.status());
      return matrix_or.status();
    }
    const std::vector<double>& matrix = *matrix_or;
    // The (i, j) double loop walks pair ids in canonical ascending order, so
    // a running counter is the pair id — the pair-range restriction (used by
    // the sharding differential tests) filters on it.
    int64_t pair = 0;
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = i + 1; j < n; ++j, ++pair) {
        if (pair < pair_lo || pair >= pair_hi) {
          continue;
        }
        const double c = matrix[static_cast<size_t>(i * n + j)];
        ++stats_.cells_evaluated;
        if (query.IsEdge(c)) {
          edges.push_back(Edge{static_cast<int32_t>(i),
                               static_cast<int32_t>(j), c});
        }
      }
    }
    if (!sink->OnWindow(k, std::move(edges))) {
      return FinishCancelled(sink, "NaiveEngine", k);
    }
  }
  sink->OnFinish(Status::Ok());
  return Status::Ok();
}

}  // namespace dangoron
