#include "engine/parcorr_engine.h"

#include <cmath>

#include "common/math_utils.h"
#include "common/rng.h"
#include "corr/pearson.h"

namespace dangoron {

ParCorrEngine::ParCorrEngine(const ParCorrOptions& options)
    : options_(options) {}

Status ParCorrEngine::Prepare(const TimeSeriesMatrix& data) {
  if (options_.sketch_dim <= 0) {
    return Status::InvalidArgument("ParCorrEngine: sketch_dim must be > 0");
  }
  if (data.empty()) {
    return Status::InvalidArgument("ParCorrEngine: empty matrix");
  }
  if (data.CountMissing() > 0) {
    return Status::FailedPrecondition(
        "ParCorrEngine: data contains missing values; run "
        "InterpolateMissing first");
  }
  data_ = &data;

  const int64_t length = data.length();
  const int64_t d = options_.sketch_dim;
  Rng rng(options_.seed);
  signs_.resize(static_cast<size_t>(d * length));
  // Draw in (q, t) order — the same stream position per (q, t) as the
  // historical q-major layout — but store time-major for the update loop.
  for (int64_t q = 0; q < d; ++q) {
    for (int64_t t = 0; t < length; ++t) {
      signs_[static_cast<size_t>(t * d + q)] =
          static_cast<float>(rng.NextSign());
    }
  }

  const int64_t n = data.num_series();
  sum_prefix_.assign(static_cast<size_t>(n * (length + 1)), 0.0);
  sumsq_prefix_.assign(static_cast<size_t>(n * (length + 1)), 0.0);
  for (int64_t s = 0; s < n; ++s) {
    std::span<const double> row = data.Row(s);
    double sum = 0.0;
    double sumsq = 0.0;
    const size_t base = static_cast<size_t>(s * (length + 1));
    for (int64_t t = 0; t < length; ++t) {
      const double v = row[static_cast<size_t>(t)];
      sum += v;
      sumsq += v * v;
      sum_prefix_[base + static_cast<size_t>(t) + 1] = sum;
      sumsq_prefix_[base + static_cast<size_t>(t) + 1] = sumsq;
    }
  }
  return Status::Ok();
}

Status ParCorrEngine::QueryToSink(const SlidingQuery& query,
                                  WindowSink* sink) {
  if (data_ == nullptr) {
    return Status::FailedPrecondition("ParCorrEngine: Prepare not called");
  }
  RETURN_IF_ERROR(query.Validate(data_->length()));
  if (query.HasPairRestriction()) {
    return Status::InvalidArgument(
        "ParCorrEngine: pair-range restriction is not supported (sketch "
        "candidate generation is not pair-id-ordered); route restricted "
        "queries to DangoronEngine");
  }
  stats_.Reset();

  const int64_t n = data_->num_series();
  const int64_t length = data_->length();
  const int64_t d = options_.sketch_dim;
  const int64_t num_windows = query.NumWindows();
  stats_.num_windows = num_windows;
  stats_.num_pairs = n * (n - 1) / 2;
  stats_.cells_total = stats_.num_windows * stats_.num_pairs;

  RETURN_IF_ERROR(sink->OnBegin(query, n));

  // Sketches of the current window, sketch_[s * d + q], maintained
  // incrementally across sliding steps (ParCorr's core trick: the
  // projection is linear in the window content, so one step costs
  // O(d * step) per series instead of O(d * window)).
  std::vector<double> sketches(static_cast<size_t>(n * d), 0.0);
  auto add_range = [&](int64_t t0, int64_t t1, double coefficient) {
    for (int64_t s = 0; s < n; ++s) {
      std::span<const double> row = data_->Row(s);
      double* sketch = &sketches[static_cast<size_t>(s * d)];
      for (int64_t t = t0; t < t1; ++t) {
        const double v = coefficient * row[static_cast<size_t>(t)];
        const float* sign_col = &signs_[static_cast<size_t>(t * d)];
        for (int64_t q = 0; q < d; ++q) {
          sketch[q] += static_cast<double>(sign_col[q]) * v;
        }
      }
    }
  };

  // Initial window.
  add_range(query.start, query.start + query.window, +1.0);

  const double count = static_cast<double>(query.window);
  for (int64_t k = 0; k < num_windows; ++k) {
    const int64_t a = query.start + k * query.step;
    if (k > 0) {
      // Slide: remove departed columns, add entered ones.
      add_range(a - query.step, a, -1.0);
      add_range(a + query.window - query.step, a + query.window, +1.0);
    }

    std::vector<Edge> edges;
    for (int64_t i = 0; i < n; ++i) {
      const size_t pi = static_cast<size_t>(i * (length + 1));
      const double sx = sum_prefix_[pi + static_cast<size_t>(a + query.window)] -
                        sum_prefix_[pi + static_cast<size_t>(a)];
      const double sxx =
          sumsq_prefix_[pi + static_cast<size_t>(a + query.window)] -
          sumsq_prefix_[pi + static_cast<size_t>(a)];
      const double var_x = sxx - sx * sx / count;
      if (var_x <= 1e-12) {
        continue;  // constant series: no edges by convention
      }
      const double* sketch_i = &sketches[static_cast<size_t>(i * d)];
      for (int64_t j = i + 1; j < n; ++j) {
        const size_t pj = static_cast<size_t>(j * (length + 1));
        const double sy =
            sum_prefix_[pj + static_cast<size_t>(a + query.window)] -
            sum_prefix_[pj + static_cast<size_t>(a)];
        const double syy =
            sumsq_prefix_[pj + static_cast<size_t>(a + query.window)] -
            sumsq_prefix_[pj + static_cast<size_t>(a)];
        const double var_y = syy - sy * sy / count;
        if (var_y <= 1e-12) {
          continue;
        }
        const double* sketch_j = &sketches[static_cast<size_t>(j * d)];
        double dot_estimate = 0.0;
        for (int64_t q = 0; q < d; ++q) {
          dot_estimate += sketch_i[q] * sketch_j[q];
        }
        dot_estimate /= static_cast<double>(d);
        ++stats_.cells_evaluated;

        const double cov = dot_estimate - sx * sy / count;
        double c = ClampCorrelation(cov / std::sqrt(var_x * var_y));
        bool candidate;
        if (options_.verify_candidates) {
          const double bar = query.threshold - options_.candidate_margin;
          candidate = query.absolute ? std::fabs(c) >= bar : c >= bar;
        } else {
          candidate = query.IsEdge(c);
        }
        if (candidate) {
          if (options_.verify_candidates) {
            c = PearsonNaive(data_->RowRange(i, a, query.window),
                             data_->RowRange(j, a, query.window));
            if (!query.IsEdge(c)) {
              continue;  // false candidate removed by verification
            }
          }
          edges.push_back(
              Edge{static_cast<int32_t>(i), static_cast<int32_t>(j), c});
        }
      }
    }
    if (!sink->OnWindow(k, std::move(edges))) {
      return FinishCancelled(sink, "ParCorrEngine", k);
    }
  }
  sink->OnFinish(Status::Ok());
  return Status::Ok();
}

}  // namespace dangoron
