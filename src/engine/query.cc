#include "engine/query.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace dangoron {

Status SlidingQuery::Validate(int64_t series_length) const {
  // Multi-field conditions echo every participating value (plus the full
  // query via ToString) so a rejected query is diagnosable from the message
  // alone — the caller may have built it from several config sources.
  if (window <= 0) {
    return Status::InvalidArgument("query window must be positive, got ",
                                   window, " (", ToString(), ")");
  }
  if (step <= 0) {
    return Status::InvalidArgument("query step must be positive, got ", step,
                                   " (", ToString(), ")");
  }
  if (start < 0 || end > series_length || start >= end) {
    return Status::OutOfRange("query range [", start, ", ", end,
                              ") invalid for series length ", series_length,
                              " (", ToString(), ")");
  }
  if (end - start < window) {
    return Status::InvalidArgument(
        "query range [", start, ", ", end, ") spans ", end - start,
        " columns, shorter than one window of ", window, " (", ToString(),
        ")");
  }
  if (threshold < -1.0 || threshold > 1.0) {
    return Status::InvalidArgument("threshold must be in [-1, 1], got ",
                                   std::to_string(threshold), " (", ToString(),
                                   ")");
  }
  if (absolute && threshold < 0.0) {
    return Status::InvalidArgument(
        "absolute-mode threshold must be in [0, 1], got ",
        std::to_string(threshold), " (", ToString(), ")");
  }
  if (pair_begin < 0 || pair_end < 0) {
    return Status::InvalidArgument("pair range [", pair_begin, ", ", pair_end,
                                   ") must be non-negative (", ToString(),
                                   ")");
  }
  if (HasPairRestriction() && pair_end <= pair_begin) {
    return Status::InvalidArgument("pair range [", pair_begin, ", ", pair_end,
                                   ") is empty (", ToString(), ")");
  }
  return Status::Ok();
}

std::string SlidingQuery::ToString() const {
  std::string text =
      StrFormat("range=[%lld,%lld) l=%lld eta=%lld beta=%.3f abs=%s "
                "windows=%lld",
                static_cast<long long>(start), static_cast<long long>(end),
                static_cast<long long>(window), static_cast<long long>(step),
                threshold, absolute ? "on" : "off",
                static_cast<long long>(NumWindows()));
  if (HasPairRestriction()) {
    text += StrFormat(" pairs=[%lld,%lld)", static_cast<long long>(pair_begin),
                      static_cast<long long>(pair_end));
  }
  return text;
}

int64_t CorrelationMatrixSeries::TotalEdges() const {
  int64_t total = 0;
  for (const std::vector<Edge>& window : windows_) {
    total += static_cast<int64_t>(window.size());
  }
  return total;
}

std::vector<double> CorrelationMatrixSeries::ToDense(int64_t k) const {
  CHECK_GE(k, 0);
  CHECK_LT(k, num_windows());
  std::vector<double> dense(static_cast<size_t>(num_series_ * num_series_),
                            0.0);
  for (int64_t i = 0; i < num_series_; ++i) {
    dense[static_cast<size_t>(i * num_series_ + i)] = 1.0;
  }
  for (const Edge& edge : windows_[static_cast<size_t>(k)]) {
    dense[static_cast<size_t>(edge.i) * num_series_ + edge.j] = edge.value;
    dense[static_cast<size_t>(edge.j) * num_series_ + edge.i] = edge.value;
  }
  return dense;
}

void CorrelationMatrixSeries::SortWindows() {
  for (std::vector<Edge>& window : windows_) {
    std::sort(window.begin(), window.end(), EdgeOrder);
  }
}

}  // namespace dangoron
