#ifndef DANGORON_ENGINE_PARCORR_ENGINE_H_
#define DANGORON_ENGINE_PARCORR_ENGINE_H_

#include <cstdint>
#include <vector>

#include "engine/correlation_engine.h"

namespace dangoron {

/// Options of the ParCorr baseline.
struct ParCorrOptions {
  /// Sketch dimension `d`: higher is more accurate and slower. The estimate
  /// error of a correlation scales like 1/sqrt(d).
  int32_t sketch_dim = 64;
  /// Seed of the Rademacher projection matrix.
  uint64_t seed = 0xbadc0ffee;
  /// When true, pairs whose *estimated* correlation clears
  /// `threshold - candidate_margin` are verified exactly against raw data
  /// (ParCorr's filter-and-verify usage): verification removes every false
  /// positive, and the margin recovers near-threshold underestimates at the
  /// cost of extra verifications.
  bool verify_candidates = false;

  /// Candidate slack below the threshold when verifying; a natural setting
  /// is ~2/sqrt(sketch_dim), two standard deviations of the estimate error.
  /// Ignored unless verify_candidates is set.
  double candidate_margin = 0.0;
};

/// Reimplementation of the ParCorr estimator (Yagoubi et al., DMKD'18):
/// random Rademacher projections of windows, maintained *incrementally*
/// across sliding steps, giving an unbiased estimate of the window inner
/// product and hence an approximate Pearson correlation per pair.
///
/// sketch_q(x, window W) = sum_{t in W} r_q(t) * x_t,   r_q(t) in {-1, +1}
/// E[ (1/d) sum_q sketch_q(x) sketch_q(y) ] = sum_{t in W} x_t y_t
///
/// Window means/stddevs are exact (per-series prefix sums), so all
/// approximation error sits in the covariance estimate, matching the
/// original design. Estimated values are clamped to [-1, 1].
class ParCorrEngine : public CorrelationEngine {
 public:
  explicit ParCorrEngine(const ParCorrOptions& options = {});

  std::string name() const override { return "parcorr"; }
  Status Prepare(const TimeSeriesMatrix& data) override;
  /// The sketch slides window to window, so each window is emitted right
  /// after its pair sweep; cancellation stops the slide.
  Status QueryToSink(const SlidingQuery& query, WindowSink* sink) override;

 private:
  ParCorrOptions options_;
  const TimeSeriesMatrix* data_ = nullptr;
  /// Rademacher signs, time-major: signs_[t * d + q]. One time step's d
  /// signs are contiguous, so the incremental sketch update's inner loop
  /// over q is a unit-stride FMA stream. (The (q, t) -> sign mapping is
  /// generation-order stable, so estimates are layout-independent.)
  std::vector<float> signs_;
  /// Per-series prefix sums over raw columns: sum and sum-of-squares,
  /// (L + 1) entries per series.
  std::vector<double> sum_prefix_;
  std::vector<double> sumsq_prefix_;
};

}  // namespace dangoron

#endif  // DANGORON_ENGINE_PARCORR_ENGINE_H_
