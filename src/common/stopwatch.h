#ifndef DANGORON_COMMON_STOPWATCH_H_
#define DANGORON_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace dangoron {

/// Monotonic wall-clock stopwatch used by the benchmark harness.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dangoron

#endif  // DANGORON_COMMON_STOPWATCH_H_
