#ifndef DANGORON_COMMON_MATH_UTILS_H_
#define DANGORON_COMMON_MATH_UTILS_H_

#include <cmath>
#include <cstdint>
#include <span>

namespace dangoron {

/// Relative/absolute tolerance comparison for floating-point values.
inline bool AlmostEqual(double a, double b, double abs_tol = 1e-9,
                        double rel_tol = 1e-9) {
  const double diff = std::fabs(a - b);
  if (diff <= abs_tol) {
    return true;
  }
  const double scale = std::fmax(std::fabs(a), std::fabs(b));
  return diff <= rel_tol * scale;
}

/// Clamps `value` into [lo, hi].
inline double Clamp(double value, double lo, double hi) {
  return value < lo ? lo : (value > hi ? hi : value);
}

/// Clamps a correlation into the valid [-1, 1] interval (guards against
/// floating-point drift in sketch combination).
inline double ClampCorrelation(double value) {
  return Clamp(value, -1.0, 1.0);
}

/// Arithmetic mean of `values`; 0 for an empty span.
double Mean(std::span<const double> values);

/// Population variance (divide by n) of `values`; 0 for an empty span.
double PopulationVariance(std::span<const double> values);

/// Population standard deviation of `values`.
double PopulationStdDev(std::span<const double> values);

/// Sum of `values`.
double Sum(std::span<const double> values);

/// Dot product of two equally sized spans.
double Dot(std::span<const double> a, std::span<const double> b);

/// True when `value` is a power of two (and > 0).
constexpr bool IsPowerOfTwo(int64_t value) {
  return value > 0 && (value & (value - 1)) == 0;
}

/// Smallest power of two >= value (value >= 1).
int64_t NextPowerOfTwo(int64_t value);

/// Integer ceil(a / b) for positive b.
constexpr int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

}  // namespace dangoron

#endif  // DANGORON_COMMON_MATH_UTILS_H_
