#include "common/strings.h"

#include <algorithm>
#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cerrno>
#include <cstring>

namespace dangoron {

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(text.substr(start));
      break;
    }
    fields.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return fields;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> fields;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    while (i < n && std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    const size_t start = i;
    while (i < n && !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) {
      fields.emplace_back(text.substr(start, i - start));
    }
  }
  return fields;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int size = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  if (size < 0) {
    va_end(args_copy);
    return std::string();
  }
  std::string out(static_cast<size_t>(size), '\0');
  std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  va_end(args_copy);
  return out;
}

Result<double> ParseDouble(std::string_view text) {
  const std::string_view trimmed = Trim(text);
  if (trimmed.empty()) {
    return Status::InvalidArgument("empty string is not a double");
  }
  // strtod needs NUL termination; copy into a small buffer.
  std::string buffer(trimmed);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buffer.c_str(), &end);
  if (errno == ERANGE) {
    return Status::OutOfRange("double out of range: '", buffer, "'");
  }
  if (end != buffer.c_str() + buffer.size()) {
    return Status::InvalidArgument("not a double: '", buffer, "'");
  }
  return value;
}

Result<int64_t> ParseInt64(std::string_view text) {
  const std::string_view trimmed = Trim(text);
  if (trimmed.empty()) {
    return Status::InvalidArgument("empty string is not an integer");
  }
  std::string buffer(trimmed);
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buffer.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("integer out of range: '", buffer, "'");
  }
  if (end != buffer.c_str() + buffer.size()) {
    return Status::InvalidArgument("not an integer: '", buffer, "'");
  }
  return static_cast<int64_t>(value);
}

std::string WithThousandsSeparators(int64_t value) {
  const bool negative = value < 0;
  std::string digits = std::to_string(negative ? -value : value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) {
      out.push_back(',');
    }
    out.push_back(*it);
    ++count;
  }
  if (negative) {
    out.push_back('-');
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace dangoron
