#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>

#include "common/sync.h"

namespace dangoron {

namespace {

std::atomic<int> g_min_severity{static_cast<int>(LogSeverity::kInfo)};

// Serializes whole log lines so concurrent threads do not interleave.
// Leaked so messages logged during static destruction stay safe.
Mutex& LogMutex() {
  static Mutex* mutex = new Mutex;
  return *mutex;
}

char SeverityLetter(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return 'I';
    case LogSeverity::kWarning:
      return 'W';
    case LogSeverity::kError:
      return 'E';
    case LogSeverity::kFatal:
      return 'F';
  }
  return '?';
}

const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  return base;
}

}  // namespace

LogSeverity MinLogSeverity() {
  return static_cast<LogSeverity>(g_min_severity.load(std::memory_order_relaxed));
}

void SetMinLogSeverity(LogSeverity severity) {
  g_min_severity.store(static_cast<int>(severity), std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(const char* file, int line, LogSeverity severity)
    : severity_(severity) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  std::tm tm_buf{};
  localtime_r(&seconds, &tm_buf);
  char time_text[32];
  std::snprintf(time_text, sizeof(time_text), "%02d:%02d:%02d", tm_buf.tm_hour,
                tm_buf.tm_min, tm_buf.tm_sec);
  stream_ << SeverityLetter(severity) << ' ' << time_text << ' '
          << Basename(file) << ':' << line << "] ";
}

LogMessage::~LogMessage() {
  const bool emit = static_cast<int>(severity_) >=
                    static_cast<int>(MinLogSeverity()) ||
                    severity_ == LogSeverity::kFatal;
  if (emit) {
    MutexLock lock(LogMutex());
    std::cerr << stream_.str() << std::endl;
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace internal

}  // namespace dangoron
