#include "common/status.h"

namespace dangoron {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace dangoron
