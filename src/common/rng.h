#ifndef DANGORON_COMMON_RNG_H_
#define DANGORON_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

namespace dangoron {

/// Deterministic 64-bit PCG (pcg64-xsl-rr on a 128-bit LCG state).
///
/// All randomness in the library flows through this generator so that every
/// dataset, workload, and engine run is reproducible from a single seed.
/// It is small enough to copy freely and has no global state.
class Rng {
 public:
  /// Seeds the generator; two Rng created with the same seed produce
  /// identical streams on every platform.
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { Reseed(seed); }

  void Reseed(uint64_t seed) {
    state_ = 0;
    NextU64();
    state_ += (static_cast<unsigned __int128>(seed) << 64) | (seed * 0x9e3779b97f4a7c15ULL + 1);
    NextU64();
  }

  /// Uniform 64-bit value.
  uint64_t NextU64() {
    state_ = state_ * kMultiplier + kIncrement;
    const uint64_t xored =
        static_cast<uint64_t>(state_ >> 64) ^ static_cast<uint64_t>(state_);
    const unsigned rot = static_cast<unsigned>(state_ >> 122);
    return (xored >> rot) | (xored << ((-rot) & 63));
  }

  /// Uniform in [0, bound). `bound` must be > 0. Uses rejection sampling to
  /// avoid modulo bias.
  uint64_t NextBounded(uint64_t bound) {
    const uint64_t threshold = (-bound) % bound;
    while (true) {
      const uint64_t value = NextU64();
      if (value >= threshold) {
        return value % bound;
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Standard normal via Box-Muller (cached second value).
  double NextGaussian() {
    if (has_cached_gaussian_) {
      has_cached_gaussian_ = false;
      return cached_gaussian_;
    }
    double u1 = NextDouble();
    // Guard against log(0).
    while (u1 <= 1e-300) {
      u1 = NextDouble();
    }
    const double u2 = NextDouble();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * std::numbers::pi * u2;
    cached_gaussian_ = radius * std::sin(angle);
    has_cached_gaussian_ = true;
    return radius * std::cos(angle);
  }

  /// Normal with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Rademacher variate: +1 or -1 with equal probability.
  double NextSign() { return (NextU64() & 1u) ? 1.0 : -1.0; }

  /// True with probability `p`.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (size_t i = values->size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(NextBounded(i));
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

  /// Derives an independent child stream; used to give each worker thread or
  /// each series its own deterministic generator.
  Rng Fork(uint64_t stream_id) {
    return Rng(NextU64() ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1)));
  }

 private:
  static constexpr unsigned __int128 kMultiplier =
      (static_cast<unsigned __int128>(2549297995355413924ULL) << 64) |
      4865540595714422341ULL;
  static constexpr unsigned __int128 kIncrement =
      (static_cast<unsigned __int128>(6364136223846793005ULL) << 64) |
      1442695040888963407ULL;

  unsigned __int128 state_ = 0;
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace dangoron

#endif  // DANGORON_COMMON_RNG_H_
