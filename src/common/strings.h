#ifndef DANGORON_COMMON_STRINGS_H_
#define DANGORON_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace dangoron {

/// Splits `text` on `delimiter`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char delimiter);

/// Splits `text` on runs of ASCII whitespace, dropping empty fields. This is
/// the tokenizer for the USCRN fixed-format rows.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// True if `text` ends with `suffix`.
bool EndsWith(std::string_view text, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// Strict string -> double conversion; the whole string must parse.
Result<double> ParseDouble(std::string_view text);

/// Strict string -> int64 conversion; the whole string must parse.
Result<int64_t> ParseInt64(std::string_view text);

/// "1234567" -> "1,234,567" (used by the benchmark tables).
std::string WithThousandsSeparators(int64_t value);

}  // namespace dangoron

#endif  // DANGORON_COMMON_STRINGS_H_
