#ifndef DANGORON_COMMON_FAILPOINT_H_
#define DANGORON_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/sync.h"

// Compile gate: sites compile to nothing when 0 (set by the CMake option
// DANGORON_FAILPOINTS=OFF); defaults to enabled — the runtime cost of a
// dormant site is one relaxed atomic load of a process-global counter.
#ifndef DANGORON_FAILPOINTS_ENABLED
#define DANGORON_FAILPOINTS_ENABLED 1
#endif

namespace dangoron {

/// One named fault-injection site (RocksDB/TiKV style). A failpoint is
/// dormant until armed with an action spec; instrumented code fires it at
/// the site and the configured action happens:
///
/// - `error[:code]` — Fire() returns a Status of the named code (default
///   internal; known: internal, ioerror, resource_exhausted, cancelled,
///   deadline_exceeded, failed_precondition, unavailable), which the site
///   propagates as if the real operation had failed.
/// - `delay:<ms>` — Fire() sleeps for the given milliseconds, then returns
///   Ok: widens race windows and slows instrumented stages without changing
///   results.
/// - `wake` — FireWake() returns true: the site simulates a spurious
///   condition (a full queue, a spurious wakeup) once per trigger.
/// - `off` — disarm.
///
/// Triggers compose with two optional suffixes: `*N` limits the action to
/// the next N firings (the site auto-disarms after), and `%P` fires with
/// probability P percent per evaluation (deterministic per-failpoint PCG
/// stream, so a seeded chaos schedule replays identically). Example spec:
/// `error:ioerror*2%50`.
///
/// Thread-safe; sites are cheap to fire while dormant (see
/// FailpointsArmed).
class Failpoint {
 public:
  enum class Action : int8_t { kOff = 0, kError = 1, kDelay = 2, kWake = 3 };

  explicit Failpoint(std::string name);

  Failpoint(const Failpoint&) = delete;
  Failpoint& operator=(const Failpoint&) = delete;

  /// Arms the failpoint from an action spec (`error:ioerror*2`, `delay:5`,
  /// `wake%10`, `off`); replaces any previous action.
  Status Set(const std::string& spec);

  /// Returns to dormancy (equivalent to Set("off")).
  void Disarm();

  /// Fires the error/delay actions: returns the injected Status (error), or
  /// Ok after sleeping (delay) / when dormant / when the action is `wake`
  /// (wake actions only fire through FireWake, so one site can host either
  /// kind of instrumentation).
  Status Fire();

  /// Fires the wake action: true when a spurious event should be simulated.
  bool FireWake();

  const std::string& name() const { return name_; }
  /// Times any action actually triggered (count- and probability-gated).
  int64_t hits() const;
  bool armed() const;

 private:
  // True (and consumes one count) when the action should trigger now.
  bool ShouldTriggerLocked() REQUIRES(mutex_);
  void DisarmLocked() REQUIRES(mutex_);

  const std::string name_;
  mutable Mutex mutex_;
  Action action_ GUARDED_BY(mutex_) = Action::kOff;
  // The action of the firing being prepared: a count-exhausted trigger
  // disarms the site under the lock but still fires this one time.
  Action action_fired_ GUARDED_BY(mutex_) = Action::kOff;
  StatusCode error_code_ GUARDED_BY(mutex_) = StatusCode::kInternal;
  int64_t delay_ms_ GUARDED_BY(mutex_) = 0;
  int64_t remaining_ GUARDED_BY(mutex_) = -1;  // -1 = unlimited
  int32_t percent_ GUARDED_BY(mutex_) = 100;
  int64_t hits_ GUARDED_BY(mutex_) = 0;
  Rng rng_ GUARDED_BY(mutex_);  // deterministic per-site stream behind `%P`
};

/// Process-wide registry of failpoints, keyed by site name. Sites register
/// lazily at first use; pointers are stable for the process lifetime.
/// Construction reads the `DANGORON_FAILPOINTS` environment variable once
/// and applies it as a Configure spec, so a test binary (or the chaos
/// harness) can arm sites without touching code.
class FailpointRegistry {
 public:
  static FailpointRegistry& Instance();

  /// The failpoint named `site`, creating a dormant one on first use.
  Failpoint* GetOrCreate(std::string_view site);

  /// Applies a whole schedule: `site=action` pairs separated by `;`, e.g.
  /// `serve.prepare=error:ioerror*2;sweep.band=delay:3`. Stops at the first
  /// malformed entry (earlier entries stay armed).
  Status Configure(const std::string& spec);

  /// Disarms every registered failpoint (test teardown).
  void DisarmAll();

  /// Names of currently armed failpoints.
  std::vector<std::string> ArmedSites() const;

 private:
  FailpointRegistry();

  // Lock order: the registry mutex is taken *before* any Failpoint's own
  // mutex (DisarmAll/ArmedSites iterate under it and call into sites);
  // nothing under a Failpoint mutex ever calls back into the registry.
  mutable Mutex mutex_;
  // Pointer-stable values: sites cache the pointer across firings.
  std::vector<std::unique_ptr<Failpoint>> failpoints_ GUARDED_BY(mutex_);
};

/// Fast dormancy check: true when any failpoint in the process is armed.
/// One relaxed atomic load — the full cost of an instrumented site in a
/// production run with no faults configured.
bool FailpointsArmed();

/// Slow-path helpers behind the macros (registry lookup + fire). Call only
/// after FailpointsArmed() returned true.
Status FailpointFire(std::string_view site);
bool FailpointFireWake(std::string_view site);

}  // namespace dangoron

#if DANGORON_FAILPOINTS_ENABLED

/// Statement form: injects a `return <error>` at the site when armed with
/// an error action (delay actions sleep, then fall through).
#define DANGORON_FAILPOINT(site)                            \
  do {                                                      \
    if (::dangoron::FailpointsArmed()) {                    \
      ::dangoron::Status failpoint_status =                 \
          ::dangoron::FailpointFire(site);                  \
      if (!failpoint_status.ok()) {                         \
        return failpoint_status;                            \
      }                                                     \
    }                                                       \
  } while (0)

/// Expression form for call sites that handle the Status themselves.
#define DANGORON_FAILPOINT_STATUS(site)          \
  (::dangoron::FailpointsArmed()                 \
       ? ::dangoron::FailpointFire(site)         \
       : ::dangoron::Status::Ok())

/// Fire-and-forget form (delay sites in void contexts).
#define DANGORON_FAILPOINT_HIT(site)                  \
  do {                                                \
    if (::dangoron::FailpointsArmed()) {              \
      ::dangoron::FailpointFire(site);                \
    }                                                 \
  } while (0)

/// Spurious-event form: true when the site should simulate one (wake
/// action) — a full queue, a stray wakeup.
#define DANGORON_FAILPOINT_WAKE(site) \
  (::dangoron::FailpointsArmed() && ::dangoron::FailpointFireWake(site))

#else  // !DANGORON_FAILPOINTS_ENABLED

#define DANGORON_FAILPOINT(site) \
  do {                           \
  } while (0)
#define DANGORON_FAILPOINT_STATUS(site) (::dangoron::Status::Ok())
#define DANGORON_FAILPOINT_HIT(site) \
  do {                               \
  } while (0)
#define DANGORON_FAILPOINT_WAKE(site) (false)

#endif  // DANGORON_FAILPOINTS_ENABLED

#endif  // DANGORON_COMMON_FAILPOINT_H_
