#ifndef DANGORON_COMMON_SYNC_H_
#define DANGORON_COMMON_SYNC_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

/// Annotated synchronization primitives: the one place in the repository
/// that touches `std::mutex` / `std::condition_variable` directly
/// (`scripts/check_invariants.py` enforces this). Everything else locks
/// through `Mutex` / `MutexLock` / `CondVar` below, so Clang's thread-safety
/// analysis can prove at compile time which fields each lock guards
/// (`GUARDED_BY`), which private methods expect a lock held (`REQUIRES`),
/// and which callbacks must run *outside* a lock (`EXCLUDES`) — the lock
/// discipline docs/ARCHITECTURE.md describes, machine-checked.
///
/// The attribute macros are the standard set from the Clang thread-safety
/// documentation. They expand to `__attribute__((...))` under Clang and to
/// nothing elsewhere, so gcc builds (and the annotations themselves) are
/// zero-cost: `Mutex` is a bare `std::mutex` with inlined forwarding
/// calls. The CI `static-analysis` job compiles the tree with Clang and
/// `-Werror=thread-safety`, turning any unguarded access into a build
/// failure; `tests/thread_safety_compile_test.cc` proves the gate fires.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define DANGORON_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#endif
#endif
#ifndef DANGORON_THREAD_ANNOTATION_ATTRIBUTE
#define DANGORON_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off Clang
#endif

#define CAPABILITY(x) DANGORON_THREAD_ANNOTATION_ATTRIBUTE(capability(x))
#define SCOPED_CAPABILITY DANGORON_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)
#define GUARDED_BY(x) DANGORON_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))
#define PT_GUARDED_BY(x) DANGORON_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) \
  DANGORON_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  DANGORON_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))
#define REQUIRES(...) \
  DANGORON_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  DANGORON_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) \
  DANGORON_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define RELEASE(...) \
  DANGORON_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  DANGORON_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) \
  DANGORON_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) \
  DANGORON_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))
#define RETURN_CAPABILITY(x) \
  DANGORON_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  DANGORON_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

namespace dangoron {

class CondVar;

/// A `std::mutex` carrying the `capability` attribute, so fields can be
/// declared `GUARDED_BY(mutex_)` and methods `REQUIRES(mutex_)`. Prefer the
/// scoped `MutexLock`; call `Lock`/`Unlock` directly only for the
/// unlock-in-the-middle shapes (fire a callback outside the lock, then
/// re-take it) that a scope cannot express — the analysis tracks those
/// explicit calls intra-procedurally.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over a `Mutex` — `std::lock_guard` with the `scoped_lockable`
/// attribute, so the analysis knows the capability is held for exactly the
/// scope of this object.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over `Mutex`. The waits are deliberately
/// predicate-free: the analysis cannot see into a predicate lambda, so
/// call sites spell the loop out —
///
///   MutexLock lock(mutex_);
///   while (!ready_) {        // ready_ is GUARDED_BY(mutex_): checked
///     cv_.Wait(mutex_);
///   }
///
/// which is also the shape that keeps every field access inside the loop
/// visible to the guarded-by check. Internally the mutex is adopted into a
/// `std::unique_lock` for the duration of the wait and released back, so
/// the wait rides the native `std::condition_variable` futex path — no
/// `condition_variable_any` indirection on the hot producer/consumer
/// queues.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits, and re-acquires `mu`. Spurious
  /// wakeups happen; always wrap in a predicate loop.
  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.mu_, std::adopt_lock);
    cv_.wait(adopted);
    adopted.release();
  }

  /// Like Wait, but returns at `deadline` at the latest. True = the
  /// deadline passed (the caller's predicate is authoritative either way).
  template <typename Clock, typename Duration>
  bool WaitUntil(Mutex& mu,
                 const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(adopted, deadline);
    adopted.release();
    return status == std::cv_status::timeout;
  }

  /// Like Wait, but returns after `timeout` at the latest. True = timed
  /// out.
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(adopted, timeout);
    adopted.release();
    return status == std::cv_status::timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// A thread-identity capability: single-threaded ownership (an IO loop's
/// connection table, a supervisor's child list) expressed in the same
/// vocabulary as a lock, but enforced by *which thread* is running instead
/// of by mutual exclusion. The owning thread calls `Adopt()` once;
/// thereafter every access to a `GUARDED_BY(role)` field goes through a
/// method annotated `REQUIRES(role)`, whose callers prove themselves with
/// `AssertHeld()` — a compile-time capability assertion backed by a
/// runtime thread-id check, so a refactor that moves such a call onto the
/// wrong thread dies loudly in every build, not just under TSan.
///
/// Ownership may migrate at quiescent points (`Adopt` overwrites): e.g.
/// WireServer's `Start` seeds state from the caller's thread before the IO
/// thread exists, the IO thread adopts the role at the top of its loop,
/// and `Stop` re-adopts after joining it.
class CAPABILITY("role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;

  /// Binds the role to the calling thread. Only meaningful at handoff
  /// points where no other thread can still be acting under the role.
  void Adopt() { holder_.store(std::this_thread::get_id(), std::memory_order_release); }

  /// Dies unless the calling thread holds the role; tells the analysis the
  /// capability is held from here on.
  void AssertHeld() const ASSERT_CAPABILITY(this) {
    if (holder_.load(std::memory_order_acquire) != std::this_thread::get_id()) {
      std::fprintf(stderr,
                   "ThreadRole::AssertHeld: called from a thread that does "
                   "not own this role\n");
      std::abort();
    }
  }

 private:
  std::atomic<std::thread::id> holder_{};
};

}  // namespace dangoron

#endif  // DANGORON_COMMON_SYNC_H_
