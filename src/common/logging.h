#ifndef DANGORON_COMMON_LOGGING_H_
#define DANGORON_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace dangoron {

enum class LogSeverity : int { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

/// Returns the minimum severity that is actually emitted (default: kInfo).
LogSeverity MinLogSeverity();

/// Overrides the minimum emitted severity (e.g. to silence benches).
void SetMinLogSeverity(LogSeverity severity);

namespace internal {

/// Stream-style log line collector; emits on destruction. kFatal aborts.
class LogMessage {
 public:
  LogMessage(const char* file, int line, LogSeverity severity);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when a log statement is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define DANGORON_LOG_INFO                                \
  ::dangoron::internal::LogMessage(__FILE__, __LINE__,   \
                                   ::dangoron::LogSeverity::kInfo)
#define DANGORON_LOG_WARNING                             \
  ::dangoron::internal::LogMessage(__FILE__, __LINE__,   \
                                   ::dangoron::LogSeverity::kWarning)
#define DANGORON_LOG_ERROR                               \
  ::dangoron::internal::LogMessage(__FILE__, __LINE__,   \
                                   ::dangoron::LogSeverity::kError)
#define DANGORON_LOG_FATAL                               \
  ::dangoron::internal::LogMessage(__FILE__, __LINE__,   \
                                   ::dangoron::LogSeverity::kFatal)

#define LOG(severity) DANGORON_LOG_##severity

/// Aborts with a message when `condition` is false. Always on, all builds:
/// used for programmer errors (bad indices, broken invariants), never for
/// recoverable input errors, which return Status.
#define CHECK(condition)                                        \
  if (!(condition))                                             \
  LOG(FATAL) << "Check failed: " #condition " "

#define CHECK_OP(a, b, op)                                       \
  if (!((a)op(b)))                                               \
  LOG(FATAL) << "Check failed: " #a " " #op " " #b " (" << (a)   \
             << " vs " << (b) << ") "

#define CHECK_EQ(a, b) CHECK_OP(a, b, ==)
#define CHECK_NE(a, b) CHECK_OP(a, b, !=)
#define CHECK_LT(a, b) CHECK_OP(a, b, <)
#define CHECK_LE(a, b) CHECK_OP(a, b, <=)
#define CHECK_GT(a, b) CHECK_OP(a, b, >)
#define CHECK_GE(a, b) CHECK_OP(a, b, >=)

#ifdef NDEBUG
#define DCHECK(condition) \
  while (false) ::dangoron::internal::NullStream()
#define DCHECK_EQ(a, b) DCHECK((a) == (b))
#define DCHECK_NE(a, b) DCHECK((a) != (b))
#define DCHECK_LT(a, b) DCHECK((a) < (b))
#define DCHECK_LE(a, b) DCHECK((a) <= (b))
#define DCHECK_GT(a, b) DCHECK((a) > (b))
#define DCHECK_GE(a, b) DCHECK((a) >= (b))
#else
#define DCHECK(condition) CHECK(condition)
#define DCHECK_EQ(a, b) CHECK_EQ(a, b)
#define DCHECK_NE(a, b) CHECK_NE(a, b)
#define DCHECK_LT(a, b) CHECK_LT(a, b)
#define DCHECK_LE(a, b) CHECK_LE(a, b)
#define DCHECK_GT(a, b) CHECK_GT(a, b)
#define DCHECK_GE(a, b) CHECK_GE(a, b)
#endif

}  // namespace dangoron

#endif  // DANGORON_COMMON_LOGGING_H_
