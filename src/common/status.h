#ifndef DANGORON_COMMON_STATUS_H_
#define DANGORON_COMMON_STATUS_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace dangoron {

/// Canonical error space used across the library. Mirrors the usual
/// database-engine convention (RocksDB/Abseil style): functions that can fail
/// return a `Status` (or a `Result<T>`), never throw across API boundaries.
enum class StatusCode : int8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kAlreadyExists = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kIoError = 8,
  kDataLoss = 9,
  kCancelled = 10,
  kResourceExhausted = 11,
  kDeadlineExceeded = 12,
  /// A required remote peer cannot be reached (a router's shard backend is
  /// down or refuses connections). Retryable at the caller's discretion —
  /// unlike kIoError, which reports a local I/O failure.
  kUnavailable = 13,
};

/// Returns a stable human-readable name for `code` ("OK", "INVALID_ARGUMENT",
/// ...).
std::string_view StatusCodeToString(StatusCode code);

/// Value-semantic success-or-error type.
///
/// A `Status` is cheap to copy in the success case (no allocation) and carries
/// an explanatory message in the failure case. Typical usage:
///
///   Status DoThing() {
///     if (bad) return Status::InvalidArgument("bad thing: ", detail);
///     return Status::Ok();
///   }
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  template <typename... Args>
  static Status InvalidArgument(Args&&... args) {
    return Make(StatusCode::kInvalidArgument, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status NotFound(Args&&... args) {
    return Make(StatusCode::kNotFound, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status OutOfRange(Args&&... args) {
    return Make(StatusCode::kOutOfRange, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status FailedPrecondition(Args&&... args) {
    return Make(StatusCode::kFailedPrecondition, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status AlreadyExists(Args&&... args) {
    return Make(StatusCode::kAlreadyExists, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Unimplemented(Args&&... args) {
    return Make(StatusCode::kUnimplemented, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Internal(Args&&... args) {
    return Make(StatusCode::kInternal, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status IoError(Args&&... args) {
    return Make(StatusCode::kIoError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status DataLoss(Args&&... args) {
    return Make(StatusCode::kDataLoss, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Cancelled(Args&&... args) {
    return Make(StatusCode::kCancelled, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status ResourceExhausted(Args&&... args) {
    return Make(StatusCode::kResourceExhausted, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status DeadlineExceeded(Args&&... args) {
    return Make(StatusCode::kDeadlineExceeded, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Unavailable(Args&&... args) {
    return Make(StatusCode::kUnavailable, std::forward<Args>(args)...);
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  template <typename... Args>
  static Status Make(StatusCode code, Args&&... args) {
    std::string message;
    (message.append(ToPiece(std::forward<Args>(args))), ...);
    return Status(code, std::move(message));
  }

  static std::string ToPiece(std::string_view s) { return std::string(s); }
  static std::string ToPiece(const char* s) { return std::string(s); }
  static std::string ToPiece(const std::string& s) { return s; }
  template <typename T>
  static std::string ToPiece(T value) {
    return std::to_string(value);
  }

  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type `T` or an error `Status`. Accessing the value
/// of an errored result aborts the process (see CHECK in logging.h), so call
/// sites should test `ok()` or use ASSIGN_OR_RETURN.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or from an error Status keeps call
  /// sites terse: `return value;` / `return Status::NotFound(...)`.
  Result(T value) : value_(std::move(value)) {}          // NOLINT
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfError();
    return *value_;
  }
  T& value() & {
    AbortIfError();
    return *value_;
  }
  T&& value() && {
    AbortIfError();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const {
    if (!status_.ok()) {
      std::fprintf(stderr, "Result accessed with error status: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

/// Propagates an error Status from an expression: evaluates `expr`; if the
/// resulting Status is not OK, returns it from the enclosing function.
#define RETURN_IF_ERROR(expr)                        \
  do {                                               \
    ::dangoron::Status status_macro_value = (expr);  \
    if (!status_macro_value.ok()) {                  \
      return status_macro_value;                     \
    }                                                \
  } while (0)

#define DANGORON_MACRO_CONCAT_INNER(x, y) x##y
#define DANGORON_MACRO_CONCAT(x, y) DANGORON_MACRO_CONCAT_INNER(x, y)

/// Evaluates `rexpr` (a Result<T>); on error returns the Status, otherwise
/// moves the value into `lhs` (which may be a declaration).
#define ASSIGN_OR_RETURN(lhs, rexpr) \
  ASSIGN_OR_RETURN_IMPL(             \
      DANGORON_MACRO_CONCAT(result_macro_value_, __LINE__), lhs, rexpr)

#define ASSIGN_OR_RETURN_IMPL(result, lhs, rexpr) \
  auto result = (rexpr);                          \
  if (!result.ok()) {                             \
    return result.status();                       \
  }                                               \
  lhs = std::move(result).value()

}  // namespace dangoron

#endif  // DANGORON_COMMON_STATUS_H_
