#ifndef DANGORON_COMMON_THREAD_POOL_H_
#define DANGORON_COMMON_THREAD_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/sync.h"

namespace dangoron {

/// Fixed-size worker pool.
///
/// Engines use `ParallelFor` over statically partitioned blocks so results
/// are deterministic regardless of the number of threads: the work
/// decomposition never depends on scheduling order, only the execution
/// interleaving does, and blocks write to disjoint output slots.
///
/// `ParallelFor` is reentrant: a task running on the pool may itself call
/// `ParallelFor` (the serving layer runs whole queries as pool tasks, and
/// each query parallelizes its pair blocks on the same pool). The calling
/// thread claims blocks alongside the workers, so the loop completes even
/// when every worker is busy with other tasks.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1). `num_threads == 0`
  /// selects the hardware concurrency.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task for asynchronous execution.
  void Schedule(std::function<void()> task);

  /// Enqueues `fn` and returns a future for its result — the submission
  /// primitive of the serving layer. The future's wait is safe from any
  /// thread *except* a pool worker whose waited-on task is still queued
  /// (callers that both produce and consume on the pool must fulfill their
  /// own work before waiting on others', see DangoronServer).
  template <typename Fn>
  auto Async(Fn fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> future = task->get_future();
    Schedule([task]() { (*task)(); });
    return future;
  }

  /// Blocks until every task passed to `Schedule`/`Async` has finished.
  /// Must not be called from a pool worker.
  void Wait();

  /// Runs `body(block_index)` for block_index in [0, num_blocks) across the
  /// pool and waits for completion. Runs inline when the pool has one thread
  /// or there is a single block. Safe to call from inside a pool task.
  void ParallelFor(int64_t num_blocks,
                   const std::function<void(int64_t)>& body);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar work_available_;
  CondVar work_done_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mutex_);
  int64_t in_flight_ GUARDED_BY(mutex_) = 0;
  bool shutting_down_ GUARDED_BY(mutex_) = false;
};

}  // namespace dangoron

#endif  // DANGORON_COMMON_THREAD_POOL_H_
