#ifndef DANGORON_COMMON_THREAD_POOL_H_
#define DANGORON_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dangoron {

/// Fixed-size worker pool.
///
/// Engines use `ParallelFor` over statically partitioned blocks so results
/// are deterministic regardless of the number of threads: the work
/// decomposition never depends on scheduling order, only the execution
/// interleaving does, and blocks write to disjoint output slots.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1). `num_threads == 0`
  /// selects the hardware concurrency.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task for asynchronous execution.
  void Schedule(std::function<void()> task);

  /// Blocks until every scheduled task has finished.
  void Wait();

  /// Runs `body(block_index)` for block_index in [0, num_blocks) across the
  /// pool and waits for completion. Runs inline when the pool has one thread
  /// or there is a single block.
  void ParallelFor(int64_t num_blocks,
                   const std::function<void(int64_t)>& body);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable work_done_;
  int64_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace dangoron

#endif  // DANGORON_COMMON_THREAD_POOL_H_
