#include "common/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

#include "common/strings.h"

namespace dangoron {

namespace {

// Count of armed failpoints across the process: the dormant fast path is
// one relaxed load of this counter (see FailpointsArmed).
std::atomic<int64_t> g_armed_failpoints{0};

uint64_t Fnv1aHash(std::string_view text) {
  uint64_t hash = 1469598103934665603ull;
  for (const char c : text) {
    hash = (hash ^ static_cast<unsigned char>(c)) * 1099511628211ull;
  }
  return hash;
}

Result<StatusCode> ParseErrorCode(const std::string& text) {
  if (text.empty() || text == "internal") {
    return StatusCode::kInternal;
  }
  if (text == "ioerror") {
    return StatusCode::kIoError;
  }
  if (text == "resource_exhausted") {
    return StatusCode::kResourceExhausted;
  }
  if (text == "cancelled") {
    return StatusCode::kCancelled;
  }
  if (text == "deadline_exceeded") {
    return StatusCode::kDeadlineExceeded;
  }
  if (text == "failed_precondition") {
    return StatusCode::kFailedPrecondition;
  }
  if (text == "unavailable") {
    return StatusCode::kUnavailable;
  }
  return Status::InvalidArgument(
      "failpoint: unknown error code '", text,
      "' (known: internal, ioerror, resource_exhausted, cancelled, "
      "deadline_exceeded, failed_precondition, unavailable)");
}

}  // namespace

Failpoint::Failpoint(std::string name)
    : name_(std::move(name)), rng_(Fnv1aHash(name_)) {}

Status Failpoint::Set(const std::string& spec) {
  // Grammar: kind[:arg][*count][%percent]. Suffixes are peeled right to
  // left so an arg can never contain '*' or '%'.
  std::string body = std::string(Trim(spec));
  int32_t percent = 100;
  int64_t count = -1;
  if (const size_t pct = body.rfind('%'); pct != std::string::npos) {
    ASSIGN_OR_RETURN(int64_t parsed, ParseInt64(body.substr(pct + 1)));
    if (parsed < 1 || parsed > 100) {
      return Status::InvalidArgument("failpoint '", name_, "': %percent of ",
                                     parsed, " outside [1, 100]");
    }
    percent = static_cast<int32_t>(parsed);
    body = body.substr(0, pct);
  }
  if (const size_t star = body.rfind('*'); star != std::string::npos) {
    ASSIGN_OR_RETURN(count, ParseInt64(body.substr(star + 1)));
    if (count <= 0) {
      return Status::InvalidArgument("failpoint '", name_, "': *count of ",
                                     count, " must be > 0");
    }
    body = body.substr(0, star);
  }
  std::string kind = body;
  std::string arg;
  if (const size_t colon = body.find(':'); colon != std::string::npos) {
    kind = body.substr(0, colon);
    arg = body.substr(colon + 1);
  }

  Action action;
  StatusCode error_code = StatusCode::kInternal;
  int64_t delay_ms = 0;
  if (kind == "off") {
    Disarm();
    return Status::Ok();
  } else if (kind == "error") {
    action = Action::kError;
    ASSIGN_OR_RETURN(error_code, ParseErrorCode(arg));
  } else if (kind == "delay") {
    action = Action::kDelay;
    if (arg.empty()) {
      return Status::InvalidArgument("failpoint '", name_,
                                     "': delay wants delay:<ms>");
    }
    ASSIGN_OR_RETURN(delay_ms, ParseInt64(arg));
    if (delay_ms < 0) {
      return Status::InvalidArgument("failpoint '", name_,
                                     "': delay of ", delay_ms, " ms is < 0");
    }
  } else if (kind == "wake") {
    action = Action::kWake;
    if (!arg.empty()) {
      return Status::InvalidArgument("failpoint '", name_,
                                     "': wake takes no argument");
    }
  } else {
    return Status::InvalidArgument(
        "failpoint '", name_, "': unknown action '", kind,
        "' (known: error[:code], delay:<ms>, wake, off)");
  }

  MutexLock lock(mutex_);
  if (action_ == Action::kOff) {
    g_armed_failpoints.fetch_add(1, std::memory_order_relaxed);
  }
  action_ = action;
  error_code_ = error_code;
  delay_ms_ = delay_ms;
  remaining_ = count;
  percent_ = percent;
  return Status::Ok();
}

void Failpoint::Disarm() {
  MutexLock lock(mutex_);
  DisarmLocked();
}

void Failpoint::DisarmLocked() {
  if (action_ != Action::kOff) {
    g_armed_failpoints.fetch_sub(1, std::memory_order_relaxed);
  }
  action_ = Action::kOff;
  remaining_ = -1;
}

bool Failpoint::ShouldTriggerLocked() {
  if (percent_ < 100 &&
      rng_.NextBounded(100) >= static_cast<uint64_t>(percent_)) {
    return false;
  }
  if (remaining_ > 0 && --remaining_ == 0) {
    // Last charge: trigger now, then auto-disarm so the site returns to
    // the zero-cost dormant path.
    ++hits_;
    const Action action = action_;
    const StatusCode code = error_code_;
    const int64_t delay = delay_ms_;
    DisarmLocked();
    // Restore the consumed action for this one firing.
    action_fired_ = action;
    error_code_ = code;
    delay_ms_ = delay;
    return true;
  }
  ++hits_;
  action_fired_ = action_;
  return true;
}

Status Failpoint::Fire() {
  Action action;
  StatusCode code;
  int64_t delay_ms;
  {
    MutexLock lock(mutex_);
    if (action_ != Action::kError && action_ != Action::kDelay) {
      return Status::Ok();
    }
    if (!ShouldTriggerLocked()) {
      return Status::Ok();
    }
    action = action_fired_;
    code = error_code_;
    delay_ms = delay_ms_;
  }
  if (action == Action::kDelay) {
    // Sleep outside the lock so concurrent firings of the same site are
    // delayed in parallel, not serialized.
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    return Status::Ok();
  }
  return Status(code, "failpoint '" + name_ + "' injected " +
                          std::string(StatusCodeToString(code)));
}

bool Failpoint::FireWake() {
  MutexLock lock(mutex_);
  if (action_ != Action::kWake) {
    return false;
  }
  return ShouldTriggerLocked();
}

int64_t Failpoint::hits() const {
  MutexLock lock(mutex_);
  return hits_;
}

bool Failpoint::armed() const {
  MutexLock lock(mutex_);
  return action_ != Action::kOff;
}

FailpointRegistry& FailpointRegistry::Instance() {
  // Leaked singleton: failpoints may fire from detached producer threads
  // during process teardown, so the registry must never be destroyed.
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

FailpointRegistry::FailpointRegistry() {
  if (const char* env = std::getenv("DANGORON_FAILPOINTS");
      env != nullptr && env[0] != '\0') {
    // Applied best-effort: a malformed env spec must not abort the process,
    // but it should be loud — silently ignoring it would make a chaos run
    // look fault-free.
    if (Status status = Configure(env); !status.ok()) {
      std::fprintf(stderr, "DANGORON_FAILPOINTS: %s\n",
                   status.ToString().c_str());
    }
  }
}

Failpoint* FailpointRegistry::GetOrCreate(std::string_view site) {
  MutexLock lock(mutex_);
  for (const std::unique_ptr<Failpoint>& failpoint : failpoints_) {
    if (failpoint->name() == site) {
      return failpoint.get();
    }
  }
  failpoints_.push_back(std::make_unique<Failpoint>(std::string(site)));
  return failpoints_.back().get();
}

Status FailpointRegistry::Configure(const std::string& spec) {
  if (Trim(spec).empty()) {
    return Status::Ok();
  }
  for (const std::string& item : Split(spec, ';')) {
    if (Trim(item).empty()) {
      continue;  // tolerate a trailing ';'
    }
    const size_t eq = item.find('=');
    if (eq == std::string::npos || Trim(item.substr(0, eq)).empty()) {
      return Status::InvalidArgument("failpoint spec '", item,
                                     "' (expected site=action)");
    }
    RETURN_IF_ERROR(GetOrCreate(Trim(item.substr(0, eq)))
                        ->Set(item.substr(eq + 1)));
  }
  return Status::Ok();
}

void FailpointRegistry::DisarmAll() {
  MutexLock lock(mutex_);
  for (const std::unique_ptr<Failpoint>& failpoint : failpoints_) {
    failpoint->Disarm();
  }
}

std::vector<std::string> FailpointRegistry::ArmedSites() const {
  std::vector<std::string> armed;
  MutexLock lock(mutex_);
  for (const std::unique_ptr<Failpoint>& failpoint : failpoints_) {
    if (failpoint->armed()) {
      armed.push_back(failpoint->name());
    }
  }
  return armed;
}

bool FailpointsArmed() {
  // The DANGORON_FAILPOINTS env arming runs in the registry constructor,
  // but sites consult this fast path *before* touching the registry — so a
  // binary that never calls Instance() explicitly would otherwise leave the
  // env spec unapplied and every site permanently dormant. Force the
  // construction once; after initialization this is the guard-flag check
  // plus the relaxed load.
  static const bool env_applied = (FailpointRegistry::Instance(), true);
  (void)env_applied;
  return g_armed_failpoints.load(std::memory_order_relaxed) > 0;
}

Status FailpointFire(std::string_view site) {
  return FailpointRegistry::Instance().GetOrCreate(site)->Fire();
}

bool FailpointFireWake(std::string_view site) {
  return FailpointRegistry::Instance().GetOrCreate(site)->FireWake();
}

}  // namespace dangoron
