#include "common/thread_pool.h"

#include <atomic>

#include "common/logging.h"

namespace dangoron {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) {
      num_threads = 1;
    }
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    CHECK(!shutting_down_) << "Schedule() after shutdown";
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  work_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(int64_t num_blocks,
                             const std::function<void(int64_t)>& body) {
  if (num_blocks <= 0) {
    return;
  }
  if (num_threads() == 1 || num_blocks == 1) {
    for (int64_t i = 0; i < num_blocks; ++i) {
      body(i);
    }
    return;
  }
  // One task per block; blocks are expected to be coarse (engines partition
  // pair ranges into O(threads) blocks).
  for (int64_t i = 0; i < num_blocks; ++i) {
    Schedule([&body, i] { body(i); });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        // shutting_down_ is set and no work remains.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) {
        work_done_.notify_all();
      }
    }
  }
}

}  // namespace dangoron
