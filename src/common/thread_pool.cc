#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "common/logging.h"

namespace dangoron {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) {
      num_threads = 1;
    }
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    CHECK(!shutting_down_) << "Schedule() after shutdown";
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mutex_);
  while (in_flight_ != 0) {
    work_done_.Wait(mutex_);
  }
}

void ThreadPool::ParallelFor(int64_t num_blocks,
                             const std::function<void(int64_t)>& body) {
  if (num_blocks <= 0) {
    return;
  }
  if (num_threads() == 1 || num_blocks == 1) {
    for (int64_t i = 0; i < num_blocks; ++i) {
      body(i);
    }
    return;
  }
  // Per-call completion state instead of the pool-global in_flight_ counter:
  // the caller claims blocks from the shared atomic alongside the scheduled
  // helpers, so the loop drains even when the caller *is* a pool worker and
  // every other worker is busy — waiting on the global counter from a worker
  // would deadlock (the waiting task is itself in flight).
  struct ForState {
    std::atomic<int64_t> next{0};
    std::atomic<int64_t> completed{0};
    int64_t total = 0;
    Mutex mutex;
    CondVar done;
  };
  auto state = std::make_shared<ForState>();
  state->total = num_blocks;
  const std::function<void(int64_t)>* body_ptr = &body;

  // Helpers only dereference `body_ptr` after claiming a block, and every
  // block is claimed before the caller returns, so a helper that dequeues
  // late finds the work exhausted and never touches the dangling pointer
  // (the shared state keeps its own lifetime).
  auto run_blocks = [state, body_ptr] {
    int64_t i;
    while ((i = state->next.fetch_add(1, std::memory_order_relaxed)) <
           state->total) {
      (*body_ptr)(i);
      if (state->completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          state->total) {
        MutexLock lock(state->mutex);
        state->done.NotifyAll();
      }
    }
  };

  const int64_t helpers =
      std::min<int64_t>(num_threads(), num_blocks) - 1;
  for (int64_t h = 0; h < helpers; ++h) {
    Schedule(run_blocks);
  }
  run_blocks();
  MutexLock lock(state->mutex);
  while (state->completed.load(std::memory_order_acquire) != state->total) {
    state->done.Wait(state->mutex);
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!shutting_down_ && queue_.empty()) {
        work_available_.Wait(mutex_);
      }
      if (queue_.empty()) {
        // shutting_down_ is set and no work remains.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      MutexLock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) {
        work_done_.NotifyAll();
      }
    }
  }
}

}  // namespace dangoron
