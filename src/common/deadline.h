#ifndef DANGORON_COMMON_DEADLINE_H_
#define DANGORON_COMMON_DEADLINE_H_

#include <chrono>
#include <limits>

namespace dangoron {

/// An absolute request deadline threaded through the serving stack — from
/// `QueryRequest::deadline_ms` at admission down to the exact sweep's band
/// boundaries — so every stage asks the same cheap question: has this
/// request's budget run out? A default-constructed token carries no
/// deadline (`expired()` is always false, `remaining_ms()` is +inf), which
/// keeps deadline-free requests off the clock entirely.
class DeadlineToken {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  /// No deadline.
  DeadlineToken() = default;

  /// Wraps an absolute deadline; `TimePoint::max()` means none (the
  /// sentinel `RequestDeadline` already produces).
  explicit DeadlineToken(TimePoint deadline) : deadline_(deadline) {}

  /// A deadline `ms` milliseconds from now (test/bench convenience).
  static DeadlineToken After(int64_t ms) {
    return DeadlineToken(std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(ms));
  }

  bool has_deadline() const { return deadline_ != TimePoint::max(); }

  /// The absolute deadline; `TimePoint::max()` when none — the sentinel
  /// condition-variable waits already understand.
  TimePoint deadline() const { return deadline_; }

  /// True once the deadline has passed (never for a deadline-free token).
  bool expired() const {
    return has_deadline() && std::chrono::steady_clock::now() >= deadline_;
  }

  /// Milliseconds until the deadline (negative once passed; +inf when
  /// none) — what cost estimates compare against.
  double remaining_ms() const {
    if (!has_deadline()) {
      return std::numeric_limits<double>::infinity();
    }
    return std::chrono::duration<double, std::milli>(
               deadline_ - std::chrono::steady_clock::now())
        .count();
  }

 private:
  TimePoint deadline_ = TimePoint::max();
};

}  // namespace dangoron

#endif  // DANGORON_COMMON_DEADLINE_H_
