#include "common/math_utils.h"

#include "common/logging.h"

namespace dangoron {

double Sum(std::span<const double> values) {
  // Kahan summation: benchmark series are long enough (1e4-1e6 points) that
  // naive accumulation visibly drifts against the test oracles.
  double sum = 0.0;
  double compensation = 0.0;
  for (const double v : values) {
    const double y = v - compensation;
    const double t = sum + y;
    compensation = (t - sum) - y;
    sum = t;
  }
  return sum;
}

double Mean(std::span<const double> values) {
  if (values.empty()) {
    return 0.0;
  }
  return Sum(values) / static_cast<double>(values.size());
}

double PopulationVariance(std::span<const double> values) {
  if (values.empty()) {
    return 0.0;
  }
  const double mean = Mean(values);
  double sum = 0.0;
  for (const double v : values) {
    const double d = v - mean;
    sum += d * d;
  }
  return sum / static_cast<double>(values.size());
}

double PopulationStdDev(std::span<const double> values) {
  return std::sqrt(PopulationVariance(values));
}

double Dot(std::span<const double> a, std::span<const double> b) {
  DCHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    sum += a[i] * b[i];
  }
  return sum;
}

int64_t NextPowerOfTwo(int64_t value) {
  DCHECK_GE(value, 1);
  int64_t result = 1;
  while (result < value) {
    result <<= 1;
  }
  return result;
}

}  // namespace dangoron
