#include "wire/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

namespace dangoron {

namespace {

// Waits for `events` on `fd` for up to `timeout_ms`, retrying EINTR without
// extending the deadline beyond one fresh poll per interruption. Returns
// 0 on timeout, -1 on poll failure (errno set), >0 when ready.
int PollFd(int fd, short events, int64_t timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = events;
  while (true) {
    const int rc = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    if (rc < 0 && errno == EINTR) {
      continue;
    }
    return rc;
  }
}

}  // namespace

Result<std::unique_ptr<WireClient>> WireClient::ConnectTcp(
    const std::string& host, int port, const WireClientOptions& options) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("wire client: socket(): ", std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("wire client: bad IPv4 address '", host,
                                   "'");
  }
  if (options.connect_timeout_ms > 0) {
    // Bounded connect: non-blocking connect, poll for writability, then
    // read the socket's final verdict from SO_ERROR. A peer that never
    // completes the handshake (dead host, full accept backlog) surfaces as
    // Unavailable after the timeout instead of blocking for the kernel's
    // multi-minute SYN retry schedule.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      if (errno != EINPROGRESS) {
        const int err = errno;
        ::close(fd);
        return Status::IoError("wire client: connect(", host, ":", port,
                               "): ", std::string(std::strerror(err)));
      }
      const int rc = PollFd(fd, POLLOUT, options.connect_timeout_ms);
      if (rc == 0) {
        ::close(fd);
        return Status::Unavailable("wire client: connect(", host, ":", port,
                                   ") timed out after ",
                                   options.connect_timeout_ms, "ms");
      }
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      if (rc < 0 ||
          ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
          so_error != 0) {
        const int err = rc < 0 ? errno : so_error;
        ::close(fd);
        return Status::IoError("wire client: connect(", host, ":", port,
                               "): ", std::string(std::strerror(err)));
      }
    }
    ::fcntl(fd, F_SETFL, flags);
  } else if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("wire client: connect(", host, ":", port,
                           "): ", std::string(std::strerror(err)));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<WireClient>(new WireClient(fd, options));
}

std::unique_ptr<WireClient> WireClient::Adopt(int fd) {
  return std::unique_ptr<WireClient>(new WireClient(fd));
}

WireClient::~WireClient() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Status WireClient::WriteAll(const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::IoError("wire client: send(): ", std::string(std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status WireClient::Submit(const WireRequest& request) {
  if (in_flight_) {
    return Status::FailedPrecondition(
        "wire client: drain the previous request to its terminal status "
        "before submitting another");
  }
  std::string out;
  if (!sent_preamble_) {
    AppendPreamble(&out);
  }
  EncodeRequestFrame(request, &out);
  RETURN_IF_ERROR(WriteAll(out));
  sent_preamble_ = true;
  in_flight_ = true;
  result_status_ = Status::Ok();
  summary_ = WireSummary{};
  return Status::Ok();
}

Status WireClient::Cancel() {
  std::string out;
  EncodeCancelFrame(&out);
  return WriteAll(out);
}

Result<std::optional<StreamedWindow>> WireClient::Next() {
  if (!in_flight_) {
    return Status::FailedPrecondition(
        "wire client: no request in flight (call Submit first)");
  }
  uint8_t chunk[64 * 1024];
  while (true) {
    Frame frame;
    bool have = false;
    RETURN_IF_ERROR(reader_.Next(&frame, &have));
    if (have) {
      switch (frame.type) {
        case FrameType::kWindow: {
          StreamedWindow window;
          auto edges = std::make_shared<std::vector<Edge>>();
          RETURN_IF_ERROR(DecodeWindowPayload(frame.payload,
                                              &window.window_index,
                                              edges.get()));
          window.edges = std::move(edges);
          return std::optional<StreamedWindow>(std::move(window));
        }
        case FrameType::kStatus: {
          RETURN_IF_ERROR(DecodeStatusPayload(frame.payload, &result_status_,
                                              &summary_));
          in_flight_ = false;
          return std::optional<StreamedWindow>();
        }
        default:
          return Status::DataLoss(
              "wire client: unexpected frame type ",
              static_cast<int>(frame.type),
              " from the server (only window/status flow this way)");
      }
    }
    if (options_.read_timeout_ms > 0) {
      const int rc = PollFd(fd_, POLLIN, options_.read_timeout_ms);
      if (rc == 0) {
        return Status::Unavailable("wire client: no bytes from the server "
                                   "for ", options_.read_timeout_ms, "ms");
      }
      if (rc < 0) {
        return Status::IoError("wire client: poll(): ",
                               std::string(std::strerror(errno)));
      }
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::IoError("wire client: recv(): ", std::string(std::strerror(errno)));
    }
    if (n == 0) {
      return Status::DataLoss(
          "wire client: connection closed before the terminal status frame");
    }
    reader_.Feed(chunk, static_cast<size_t>(n));
  }
}

}  // namespace dangoron
