#include "wire/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

namespace dangoron {

Result<std::unique_ptr<WireClient>> WireClient::ConnectTcp(
    const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("wire client: socket(): ", std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("wire client: bad IPv4 address '", host,
                                   "'");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("wire client: connect(", host, ":", port,
                           "): ", std::string(std::strerror(err)));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<WireClient>(new WireClient(fd));
}

std::unique_ptr<WireClient> WireClient::Adopt(int fd) {
  return std::unique_ptr<WireClient>(new WireClient(fd));
}

WireClient::~WireClient() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Status WireClient::WriteAll(const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::IoError("wire client: send(): ", std::string(std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status WireClient::Submit(const WireRequest& request) {
  if (in_flight_) {
    return Status::FailedPrecondition(
        "wire client: drain the previous request to its terminal status "
        "before submitting another");
  }
  std::string out;
  if (!sent_preamble_) {
    AppendPreamble(&out);
  }
  EncodeRequestFrame(request, &out);
  RETURN_IF_ERROR(WriteAll(out));
  sent_preamble_ = true;
  in_flight_ = true;
  result_status_ = Status::Ok();
  summary_ = WireSummary{};
  return Status::Ok();
}

Status WireClient::Cancel() {
  std::string out;
  EncodeCancelFrame(&out);
  return WriteAll(out);
}

Result<std::optional<StreamedWindow>> WireClient::Next() {
  if (!in_flight_) {
    return Status::FailedPrecondition(
        "wire client: no request in flight (call Submit first)");
  }
  uint8_t chunk[64 * 1024];
  while (true) {
    Frame frame;
    bool have = false;
    RETURN_IF_ERROR(reader_.Next(&frame, &have));
    if (have) {
      switch (frame.type) {
        case FrameType::kWindow: {
          StreamedWindow window;
          auto edges = std::make_shared<std::vector<Edge>>();
          RETURN_IF_ERROR(DecodeWindowPayload(frame.payload,
                                              &window.window_index,
                                              edges.get()));
          window.edges = std::move(edges);
          return std::optional<StreamedWindow>(std::move(window));
        }
        case FrameType::kStatus: {
          RETURN_IF_ERROR(DecodeStatusPayload(frame.payload, &result_status_,
                                              &summary_));
          in_flight_ = false;
          return std::optional<StreamedWindow>();
        }
        default:
          return Status::DataLoss(
              "wire client: unexpected frame type ",
              static_cast<int>(frame.type),
              " from the server (only window/status flow this way)");
      }
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::IoError("wire client: recv(): ", std::string(std::strerror(errno)));
    }
    if (n == 0) {
      return Status::DataLoss(
          "wire client: connection closed before the terminal status frame");
    }
    reader_.Feed(chunk, static_cast<size_t>(n));
  }
}

}  // namespace dangoron
