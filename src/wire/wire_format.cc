#include "wire/wire_format.h"

#include <bit>
#include <cstring>

namespace dangoron {

namespace {

/// ZigZag mapping for signed fields: small magnitudes of either sign stay
/// short on the wire. (Indices and counts that are non-negative by
/// construction travel as plain varints instead — see the spec.)
uint64_t ZigZag(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^
         static_cast<uint64_t>(value >> 63);
}

int64_t UnZigZag(uint64_t value) {
  return static_cast<int64_t>((value >> 1) ^ (~(value & 1) + 1));
}

void PutZigZag(int64_t value, std::string* out) {
  PutVarint(ZigZag(value), out);
}

bool GetZigZag(std::span<const uint8_t> data, size_t* pos, int64_t* value) {
  uint64_t raw = 0;
  if (!GetVarint(data, pos, &raw)) {
    return false;
  }
  *value = UnZigZag(raw);
  return true;
}

Status Truncated(const char* what) {
  return Status::DataLoss("wire: truncated ", what, " payload");
}

// ServeOptions presence bitmap (request frame). kHasPairRange gates the
// query's pair-id restriction (two zigzag varints) — emitted only when
// restricted, so unrestricted requests are byte-identical to protocol
// version 1 clients and servers.
constexpr uint8_t kHasTier = 1u << 0;
constexpr uint8_t kHasDeadline = 1u << 1;
constexpr uint8_t kHasAdmission = 1u << 2;
constexpr uint8_t kHasDegrade = 1u << 3;
constexpr uint8_t kHasPairRange = 1u << 4;

// WireSummary flag bits (status frame).
constexpr uint8_t kSummaryPreparedFromCache = 1u << 0;
constexpr uint8_t kSummaryDegraded = 1u << 1;

}  // namespace

// --------------------------------------------------------------- varints --

void PutVarint(uint64_t value, std::string* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

bool GetVarint(std::span<const uint8_t> data, size_t* pos, uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (*pos >= data.size()) {
      return false;
    }
    const uint8_t byte = data[(*pos)++];
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      // The 10th byte may only contribute the top bit of a 64-bit value.
      if (shift == 63 && (byte & 0x7e) != 0) {
        return false;
      }
      *value = result;
      return true;
    }
  }
  return false;  // > 10 continuation bytes: malformed
}

void PutFixed64(uint64_t value, std::string* out) {
  char bytes[8];
  for (int b = 0; b < 8; ++b) {
    bytes[b] = static_cast<char>((value >> (8 * b)) & 0xff);
  }
  out->append(bytes, 8);
}

bool GetFixed64(std::span<const uint8_t> data, size_t* pos, uint64_t* value) {
  // Overflow-safe for any caller-supplied *pos (the additive form would
  // wrap for *pos within 8 of SIZE_MAX).
  if (data.size() < 8 || *pos > data.size() - 8) {
    return false;
  }
  uint64_t result = 0;
  for (int b = 0; b < 8; ++b) {
    result |= static_cast<uint64_t>(data[*pos + static_cast<size_t>(b)])
              << (8 * b);
  }
  *pos += 8;
  *value = result;
  return true;
}

// ---------------------------------------------------------------- frames --

void AppendPreamble(std::string* out) {
  out->append(reinterpret_cast<const char*>(kWireMagic), 4);
  out->push_back(static_cast<char>(kWireVersion));
}

Status CheckPreamble(std::span<const uint8_t> data) {
  if (data.size() != static_cast<size_t>(kWirePreambleBytes)) {
    return Status::InvalidArgument("wire: preamble must be ",
                                   kWirePreambleBytes, " bytes, got ",
                                   data.size());
  }
  if (std::memcmp(data.data(), kWireMagic, 4) != 0) {
    return Status::InvalidArgument(
        "wire: bad magic (not a Dangoron wire connection)");
  }
  if (data[4] != kWireVersion) {
    return Status::InvalidArgument("wire: unsupported protocol version ",
                                   static_cast<int>(data[4]), " (expected ",
                                   static_cast<int>(kWireVersion), ")");
  }
  return Status::Ok();
}

void AppendFrameHeader(FrameType type, uint64_t payload_len,
                       std::string* out) {
  out->push_back(static_cast<char>(type));
  for (int b = 0; b < 4; ++b) {
    out->push_back(static_cast<char>((payload_len >> (8 * b)) & 0xff));
  }
}

namespace {

/// Encodes a payload produced by `body` into `out` behind its header —
/// payload first into a scratch tail, then the header patched in, so the
/// length field is exact without a second serialization pass.
template <typename Body>
void EncodeFrame(FrameType type, std::string* out, const Body& body) {
  const size_t header_at = out->size();
  AppendFrameHeader(type, 0, out);
  const size_t payload_at = out->size();
  body(out);
  const uint64_t payload_len = out->size() - payload_at;
  for (int b = 0; b < 4; ++b) {
    (*out)[header_at + 1 + static_cast<size_t>(b)] =
        static_cast<char>((payload_len >> (8 * b)) & 0xff);
  }
}

}  // namespace

void EncodeRequestFrame(const WireRequest& request, std::string* out) {
  EncodeFrame(FrameType::kRequest, out, [&](std::string* payload) {
    PutVarint(request.dataset.size(), payload);
    payload->append(request.dataset);
    PutVarint(request.expected_fingerprint, payload);
    PutZigZag(request.query.start, payload);
    PutZigZag(request.query.end, payload);
    PutZigZag(request.query.window, payload);
    PutZigZag(request.query.step, payload);
    PutFixed64(std::bit_cast<uint64_t>(request.query.threshold), payload);
    payload->push_back(request.query.absolute ? 1 : 0);

    const ServeOptions& options = request.options;
    uint8_t present = 0;
    if (options.tier.has_value()) present |= kHasTier;
    if (options.deadline_ms.has_value()) present |= kHasDeadline;
    if (options.admission.has_value()) present |= kHasAdmission;
    if (options.degrade.has_value()) present |= kHasDegrade;
    if (request.query.HasPairRestriction()) present |= kHasPairRange;
    payload->push_back(static_cast<char>(present));
    if (options.tier.has_value()) {
      payload->push_back(static_cast<char>(*options.tier));
    }
    if (options.deadline_ms.has_value()) {
      PutZigZag(*options.deadline_ms, payload);
    }
    if (options.admission.has_value()) {
      payload->push_back(static_cast<char>(*options.admission));
    }
    if (options.degrade.has_value()) {
      payload->push_back(static_cast<char>(*options.degrade));
    }
    if (request.query.HasPairRestriction()) {
      PutZigZag(request.query.pair_begin, payload);
      PutZigZag(request.query.pair_end, payload);
    }
    PutZigZag(options.queue_capacity, payload);
    PutZigZag(options.max_batch_windows, payload);
  });
}

Status DecodeRequestPayload(std::span<const uint8_t> payload,
                            WireRequest* out) {
  *out = WireRequest{};
  size_t pos = 0;
  uint64_t name_len = 0;
  // Subtract rather than add: `pos + name_len` wraps for a hostile varint
  // near 2^64 and would pass the check (pos <= payload.size() always holds
  // after a successful GetVarint, so the subtraction cannot underflow).
  if (!GetVarint(payload, &pos, &name_len) ||
      name_len > payload.size() - pos) {
    return Truncated("request dataset");
  }
  out->dataset.assign(reinterpret_cast<const char*>(payload.data() + pos),
                      name_len);
  pos += name_len;
  if (!GetVarint(payload, &pos, &out->expected_fingerprint)) {
    return Truncated("request fingerprint");
  }
  uint64_t threshold_bits = 0;
  if (!GetZigZag(payload, &pos, &out->query.start) ||
      !GetZigZag(payload, &pos, &out->query.end) ||
      !GetZigZag(payload, &pos, &out->query.window) ||
      !GetZigZag(payload, &pos, &out->query.step) ||
      !GetFixed64(payload, &pos, &threshold_bits) ||
      pos >= payload.size()) {
    return Truncated("request query");
  }
  out->query.threshold = std::bit_cast<double>(threshold_bits);
  const uint8_t absolute = payload[pos++];
  if (absolute > 1) {
    return Status::DataLoss("wire: request absolute flag must be 0/1, got ",
                            static_cast<int>(absolute));
  }
  out->query.absolute = absolute == 1;

  if (pos >= payload.size()) {
    return Truncated("request options");
  }
  const uint8_t present = payload[pos++];
  if ((present & ~(kHasTier | kHasDeadline | kHasAdmission | kHasDegrade |
                   kHasPairRange)) != 0) {
    return Status::DataLoss("wire: unknown option presence bits ",
                            static_cast<int>(present));
  }
  if (present & kHasTier) {
    if (pos >= payload.size()) return Truncated("request tier");
    const uint8_t tier = payload[pos++];
    if (tier > static_cast<uint8_t>(ServeTier::kAuto)) {
      return Status::DataLoss("wire: unknown tier ", static_cast<int>(tier));
    }
    out->options.tier = static_cast<ServeTier>(tier);
  }
  if (present & kHasDeadline) {
    int64_t deadline_ms = 0;
    if (!GetZigZag(payload, &pos, &deadline_ms)) {
      return Truncated("request deadline");
    }
    out->options.deadline_ms = deadline_ms;
  }
  if (present & kHasAdmission) {
    if (pos >= payload.size()) return Truncated("request admission");
    const uint8_t admission = payload[pos++];
    if (admission > static_cast<uint8_t>(AdmissionPolicy::kQueue)) {
      return Status::DataLoss("wire: unknown admission policy ",
                              static_cast<int>(admission));
    }
    out->options.admission = static_cast<AdmissionPolicy>(admission);
  }
  if (present & kHasDegrade) {
    if (pos >= payload.size()) return Truncated("request degrade");
    const uint8_t degrade = payload[pos++];
    if (degrade > static_cast<uint8_t>(DegradePolicy::kAuto)) {
      return Status::DataLoss("wire: unknown degrade policy ",
                              static_cast<int>(degrade));
    }
    out->options.degrade = static_cast<DegradePolicy>(degrade);
  }
  if (present & kHasPairRange) {
    if (!GetZigZag(payload, &pos, &out->query.pair_begin) ||
        !GetZigZag(payload, &pos, &out->query.pair_end)) {
      return Truncated("request pair range");
    }
    if (out->query.pair_begin < 0 || out->query.pair_end < 0 ||
        !out->query.HasPairRestriction()) {
      return Status::DataLoss("wire: degenerate pair range [",
                              out->query.pair_begin, ", ",
                              out->query.pair_end, ")");
    }
  }
  if (!GetZigZag(payload, &pos, &out->options.queue_capacity) ||
      !GetZigZag(payload, &pos, &out->options.max_batch_windows)) {
    return Truncated("request stream knobs");
  }
  if (pos != payload.size()) {
    return Status::DataLoss("wire: ", payload.size() - pos,
                            " trailing bytes after request payload");
  }
  return Status::Ok();
}

void EncodeWindowFrame(int64_t window_index, std::span<const Edge> edges,
                       std::string* out) {
  EncodeFrame(FrameType::kWindow, out, [&](std::string* payload) {
    PutVarint(static_cast<uint64_t>(window_index), payload);
    PutVarint(edges.size(), payload);
    // Delta packing over the canonical (i, j) sort: row deltas are usually
    // 0 (runs of edges on one row) and column deltas small, so both fit a
    // single varint byte on realistic correlation networks; values travel
    // as their exact 8-byte bit pattern (bit-identical to in-process
    // results, NaN payloads included).
    int32_t prev_i = 0;
    int32_t prev_j = -1;
    for (const Edge& edge : edges) {
      const uint32_t di = static_cast<uint32_t>(edge.i - prev_i);
      PutVarint(di, payload);
      if (di > 0) {
        PutVarint(static_cast<uint64_t>(edge.j), payload);
      } else {
        PutVarint(static_cast<uint64_t>(edge.j - prev_j), payload);
      }
      PutFixed64(std::bit_cast<uint64_t>(edge.value), payload);
      prev_i = edge.i;
      prev_j = edge.j;
    }
  });
}

Status DecodeWindowPayload(std::span<const uint8_t> payload,
                           int64_t* window_index, std::vector<Edge>* edges) {
  edges->clear();
  size_t pos = 0;
  uint64_t index = 0;
  uint64_t num_edges = 0;
  if (!GetVarint(payload, &pos, &index) ||
      !GetVarint(payload, &pos, &num_edges)) {
    return Truncated("window header");
  }
  *window_index = static_cast<int64_t>(index);
  // Every edge costs >= 10 payload bytes (two varints of at least one byte
  // each plus the fixed64 value); a count announcing more edges than the
  // payload could hold is corruption, caught before reserving memory.
  if (num_edges > payload.size() / 10 + 1) {
    return Status::DataLoss("wire: window edge count ", num_edges,
                            " impossible for a ", payload.size(),
                            "-byte payload");
  }
  edges->reserve(num_edges);
  int32_t prev_i = 0;
  int32_t prev_j = -1;
  for (uint64_t e = 0; e < num_edges; ++e) {
    uint64_t di = 0;
    uint64_t second = 0;
    uint64_t value_bits = 0;
    if (!GetVarint(payload, &pos, &di) ||
        !GetVarint(payload, &pos, &second) ||
        !GetFixed64(payload, &pos, &value_bits)) {
      return Truncated("window edge");
    }
    if (di > INT32_MAX || second > INT32_MAX) {
      return Status::DataLoss("wire: window edge ", e,
                              " delta out of the int32 index range");
    }
    Edge edge;
    const int64_t i = prev_i + static_cast<int64_t>(di);
    const int64_t j = di > 0 ? static_cast<int64_t>(second)
                             : prev_j + static_cast<int64_t>(second);
    // The canonical ordering invariants double as corruption checks: i and
    // j fit int32, i < j, and (i, j) strictly ascends (dj >= 1 within a
    // row is implied by second >= 1 when di == 0).
    if (i > INT32_MAX || j > INT32_MAX || j <= i ||
        (di == 0 && second == 0)) {
      return Status::DataLoss("wire: window edge ", e,
                              " violates the canonical (i, j) ordering");
    }
    edge.i = static_cast<int32_t>(i);
    edge.j = static_cast<int32_t>(j);
    edge.value = std::bit_cast<double>(value_bits);
    edges->push_back(edge);
    prev_i = edge.i;
    prev_j = edge.j;
  }
  if (pos != payload.size()) {
    return Status::DataLoss("wire: ", payload.size() - pos,
                            " trailing bytes after window payload");
  }
  return Status::Ok();
}

void EncodeStatusFrame(const Status& status, const WireSummary& summary,
                       std::string* out) {
  EncodeFrame(FrameType::kStatus, out, [&](std::string* payload) {
    PutVarint(static_cast<uint64_t>(status.code()), payload);
    PutVarint(status.message().size(), payload);
    payload->append(status.message());
    payload->push_back(static_cast<char>(summary.tier_used));
    uint8_t flags = 0;
    if (summary.prepared_from_cache) flags |= kSummaryPreparedFromCache;
    if (summary.degraded) flags |= kSummaryDegraded;
    payload->push_back(static_cast<char>(flags));
    PutZigZag(summary.windows_delivered, payload);
    PutZigZag(summary.windows_from_cache, payload);
    PutZigZag(summary.windows_computed, payload);
    PutZigZag(summary.windows_joined, payload);
    PutZigZag(summary.cells_jumped, payload);
    PutZigZag(summary.jumps, payload);
  });
}

Status DecodeStatusPayload(std::span<const uint8_t> payload, Status* status,
                           WireSummary* summary) {
  *summary = WireSummary{};
  size_t pos = 0;
  uint64_t code = 0;
  uint64_t message_len = 0;
  // `message_len > size - pos`, never `pos + message_len > size`: the
  // addition wraps for a hostile varint near 2^64 and the std::string
  // construction below would throw length_error out of the decoder.
  if (!GetVarint(payload, &pos, &code) ||
      !GetVarint(payload, &pos, &message_len) ||
      message_len > payload.size() - pos) {
    return Truncated("status header");
  }
  if (code > static_cast<uint64_t>(StatusCode::kUnavailable)) {
    return Status::DataLoss("wire: unknown status code ", code);
  }
  std::string message(reinterpret_cast<const char*>(payload.data() + pos),
                      message_len);
  pos += message_len;
  *status = Status(static_cast<StatusCode>(code), std::move(message));
  if (pos + 2 > payload.size()) {
    return Truncated("status summary");
  }
  const uint8_t tier = payload[pos++];
  // kAuto resolves before evaluation; a terminal status never reports it.
  if (tier > static_cast<uint8_t>(ServeTier::kApprox)) {
    return Status::DataLoss("wire: terminal tier must be exact/approx, got ",
                            static_cast<int>(tier));
  }
  summary->tier_used = static_cast<ServeTier>(tier);
  const uint8_t flags = payload[pos++];
  if ((flags & ~(kSummaryPreparedFromCache | kSummaryDegraded)) != 0) {
    return Status::DataLoss("wire: unknown summary flags ",
                            static_cast<int>(flags));
  }
  summary->prepared_from_cache = (flags & kSummaryPreparedFromCache) != 0;
  summary->degraded = (flags & kSummaryDegraded) != 0;
  if (!GetZigZag(payload, &pos, &summary->windows_delivered) ||
      !GetZigZag(payload, &pos, &summary->windows_from_cache) ||
      !GetZigZag(payload, &pos, &summary->windows_computed) ||
      !GetZigZag(payload, &pos, &summary->windows_joined) ||
      !GetZigZag(payload, &pos, &summary->cells_jumped) ||
      !GetZigZag(payload, &pos, &summary->jumps)) {
    return Truncated("status summary");
  }
  if (pos != payload.size()) {
    return Status::DataLoss("wire: ", payload.size() - pos,
                            " trailing bytes after status payload");
  }
  return Status::Ok();
}

void EncodeCancelFrame(std::string* out) {
  AppendFrameHeader(FrameType::kCancel, 0, out);
}

// ---------------------------------------------------------- frame reader --

void FrameReader::Feed(const uint8_t* data, size_t size) {
  // Compact once the consumed prefix dominates, so a long-lived connection
  // does not grow its buffer without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

Status FrameReader::Next(Frame* frame, bool* have) {
  *have = false;
  std::span<const uint8_t> pending(buffer_.data() + consumed_,
                                   buffer_.size() - consumed_);
  if (need_preamble_) {
    if (pending.size() < static_cast<size_t>(kWirePreambleBytes)) {
      return Status::Ok();
    }
    RETURN_IF_ERROR(
        CheckPreamble(pending.subspan(0, kWirePreambleBytes)));
    consumed_ += static_cast<size_t>(kWirePreambleBytes);
    need_preamble_ = false;
    pending = pending.subspan(kWirePreambleBytes);
  }
  if (pending.size() < static_cast<size_t>(kFrameHeaderBytes)) {
    return Status::Ok();
  }
  const uint8_t type = pending[0];
  if (type < static_cast<uint8_t>(FrameType::kRequest) ||
      type > static_cast<uint8_t>(FrameType::kCancel)) {
    return Status::DataLoss("wire: unknown frame type ",
                            static_cast<int>(type));
  }
  uint64_t payload_len = 0;
  for (int b = 0; b < 4; ++b) {
    payload_len |= static_cast<uint64_t>(pending[1 + static_cast<size_t>(b)])
                   << (8 * b);
  }
  if (payload_len > kMaxFramePayload) {
    return Status::DataLoss("wire: frame payload ", payload_len,
                            " exceeds the ", kMaxFramePayload, "-byte cap");
  }
  if (pending.size() <
      static_cast<size_t>(kFrameHeaderBytes) + payload_len) {
    return Status::Ok();
  }
  frame->type = static_cast<FrameType>(type);
  frame->payload = pending.subspan(kFrameHeaderBytes, payload_len);
  consumed_ += static_cast<size_t>(kFrameHeaderBytes) + payload_len;
  *have = true;
  return Status::Ok();
}

}  // namespace dangoron
