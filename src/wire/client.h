#ifndef DANGORON_WIRE_CLIENT_H_
#define DANGORON_WIRE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "common/status.h"
#include "serve/window_stream.h"
#include "wire/wire_format.h"

namespace dangoron {

/// Blocking client of the Dangoron wire protocol — the peer of
/// net/WireServer, and the reference implementation of the client side of
/// docs/WIRE_PROTOCOL.md. One connection carries any number of requests,
/// sequentially (submit, drain to the terminal status, submit again).
///
///   auto client = WireClient::ConnectTcp("127.0.0.1", port);
///   RETURN_IF_ERROR((*client)->Submit(request));
///   while (true) {
///     auto window = (*client)->Next();          // blocks on the socket
///     RETURN_IF_ERROR(window.status());         // transport/protocol error
///     if (!window->has_value()) break;          // terminal status received
///     consume(**window);
///   }
///   (*client)->result_status();                 // the server's verdict
///
/// Transport errors (socket closed, protocol violation) surface from
/// `Next`/`Submit`; the *server's* outcome for the request — Ok, Cancelled,
/// DeadlineExceeded, ... — arrives in the terminal status frame and is read
/// via `result_status()`/`summary()`, mirroring WindowStream's
/// status()/summary() split. Not thread-safe: one thread per connection
/// (`Cancel` being the documented exception).
/// Transport timeouts of one client connection. Both default to 0 —
/// disabled, the historical blocking behavior — so existing callers are
/// unaffected; the router turns them on so one dead shard fails the merged
/// stream fast instead of hanging it.
struct WireClientOptions {
  /// Milliseconds to wait for the TCP connect to complete (poll()-based
  /// non-blocking connect); expiry returns Unavailable. 0 = block forever.
  int64_t connect_timeout_ms = 0;
  /// Milliseconds `Next` may wait for socket readability between frames;
  /// expiry returns Unavailable (a silent peer is indistinguishable from a
  /// dead one). 0 = block forever.
  int64_t read_timeout_ms = 0;
};

class WireClient {
 public:
  /// Connects to a WireServer over TCP (TCP_NODELAY set — window frames are
  /// latency-sensitive).
  static Result<std::unique_ptr<WireClient>> ConnectTcp(
      const std::string& host, int port,
      const WireClientOptions& options = {});

  /// Adopts an already-connected socket (e.g. one end of a socketpair —
  /// how the end-to-end tests drive a server without binding ports). Takes
  /// ownership of `fd`.
  static std::unique_ptr<WireClient> Adopt(int fd);

  ~WireClient();
  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// Sends one request frame (preceded by the connection preamble on the
  /// first call). Fails if a previous request has not been drained to its
  /// terminal status.
  Status Submit(const WireRequest& request);

  /// Blocks for the next window frame. Returns:
  /// - a StreamedWindow: one decoded window (ascending indices);
  /// - nullopt: the terminal status frame arrived — the request is done,
  ///   see `result_status()` / `summary()`;
  /// - error Status: the transport or protocol failed (connection closed
  ///   mid-stream, corrupt frame) — the connection is unusable.
  Result<std::optional<StreamedWindow>> Next();

  /// Sends a cancel frame for the in-flight request. The server still
  /// finishes the stream with a terminal status (normally Cancelled), so
  /// keep draining `Next` afterwards. Safe to call from another thread
  /// while one is blocked in `Next` — the write path is independent.
  Status Cancel();

  /// The terminal status of the last drained request; meaningful once
  /// `Next` returned nullopt.
  const Status& result_status() const { return result_status_; }

  /// The server's accounting for the last drained request; meaningful once
  /// `Next` returned nullopt.
  const WireSummary& summary() const { return summary_; }

 private:
  explicit WireClient(int fd, const WireClientOptions& options = {})
      : fd_(fd), options_(options) {}

  /// Writes all of `data` to the socket (EINTR-safe, SIGPIPE-suppressed).
  Status WriteAll(const std::string& data);

  int fd_ = -1;
  WireClientOptions options_;
  FrameReader reader_{/*expect_preamble=*/false};
  bool sent_preamble_ = false;
  bool in_flight_ = false;
  Status result_status_;
  WireSummary summary_;
};

}  // namespace dangoron

#endif  // DANGORON_WIRE_CLIENT_H_
