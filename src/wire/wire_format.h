#ifndef DANGORON_WIRE_WIRE_FORMAT_H_
#define DANGORON_WIRE_WIRE_FORMAT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/query.h"
#include "serve/query_request.h"

/// The Dangoron wire protocol: a compact framed binary encoding of the
/// QueryRequest serving surface, so a query can be submitted over a socket
/// and answered as a stream of per-window result frames — the network face
/// of `DangoronServer::SubmitStreaming`.
///
/// docs/WIRE_PROTOCOL.md is the normative specification of everything this
/// header implements (frame grammar, varint edge packing, error and cancel
/// semantics); tests/wire_test.cc pins golden byte fixtures against it.
/// Change the bytes only with a version bump and a spec update.

namespace dangoron {

// ------------------------------------------------------------- constants --

/// Connection preamble, client -> server, once per connection: the 4 magic
/// bytes "DGRN" followed by the 1-byte protocol version.
inline constexpr uint8_t kWireMagic[4] = {'D', 'G', 'R', 'N'};
inline constexpr uint8_t kWireVersion = 1;
inline constexpr int64_t kWirePreambleBytes = 5;

/// Frame types. Every frame is a 5-byte header (u8 type + u32 little-endian
/// payload length) followed by the payload.
enum class FrameType : uint8_t {
  kRequest = 1,  ///< client -> server: one serialized QueryRequest
  kWindow = 2,   ///< server -> client: one window's thresholded edge set
  kStatus = 3,   ///< server -> client: terminal status + accounting
  kCancel = 4,   ///< client -> server: cancel the in-flight request (empty)
};

inline constexpr int64_t kFrameHeaderBytes = 5;

/// Upper bound on a frame payload; a header announcing more is a protocol
/// error, not an allocation — a corrupt or hostile length field must not
/// take the process down. 64 MiB holds a full ~3000-series clique in one
/// window frame; a denser window cannot be framed, and the server reports
/// it as ResourceExhausted instead of emitting a frame the peer would
/// reject (see docs/WIRE_PROTOCOL.md).
inline constexpr uint64_t kMaxFramePayload = uint64_t{1} << 26;

// --------------------------------------------------------------- varints --

/// Appends `value` as a base-128 LEB128 varint (1-10 bytes).
void PutVarint(uint64_t value, std::string* out);

/// Decodes a varint from `data` starting at `*pos`, advancing `*pos`.
/// Returns false on truncation or a varint longer than 10 bytes.
bool GetVarint(std::span<const uint8_t> data, size_t* pos, uint64_t* value);

/// Appends a raw little-endian 64-bit value (doubles travel as their exact
/// bit pattern — results must be byte-identical to in-process evaluation).
void PutFixed64(uint64_t value, std::string* out);
bool GetFixed64(std::span<const uint8_t> data, size_t* pos, uint64_t* value);

// ---------------------------------------------------------------- frames --

/// Appends the 5-byte connection preamble (magic + version).
void AppendPreamble(std::string* out);

/// Validates a received preamble (exactly kWirePreambleBytes bytes).
Status CheckPreamble(std::span<const uint8_t> data);

/// Appends a frame header announcing `payload_len` bytes of `type`.
void AppendFrameHeader(FrameType type, uint64_t payload_len, std::string* out);

/// The request frame's payload: the dataset (by registration name, plus an
/// optional expected content fingerprint the server verifies — 0 means
/// unchecked), the SlidingQuery, and the ServeOptions. This is the unit a
/// sharding router serializes per shard.
struct WireRequest {
  std::string dataset;
  /// Expected TimeSeriesMatrix::ContentFingerprint of the dataset; the
  /// server rejects a mismatch with FailedPrecondition so a router never
  /// silently queries a shard whose data drifted. 0 = unchecked.
  uint64_t expected_fingerprint = 0;
  SlidingQuery query;
  ServeOptions options;
};

/// Appends one complete request frame (header + payload).
void EncodeRequestFrame(const WireRequest& request, std::string* out);

/// Decodes a request frame payload (the bytes after the header).
Status DecodeRequestPayload(std::span<const uint8_t> payload,
                            WireRequest* out);

/// Appends one complete window frame: the window index plus its edge set,
/// varint-delta packed (see docs/WIRE_PROTOCOL.md). `edges` must be sorted
/// by (i, j) ascending — the engines' canonical EdgeOrder.
void EncodeWindowFrame(int64_t window_index, std::span<const Edge> edges,
                       std::string* out);

/// Decodes a window frame payload into `window_index` and `edges`
/// (bit-exact values, (i, j)-sorted). Rejects non-canonical orderings.
Status DecodeWindowPayload(std::span<const uint8_t> payload,
                           int64_t* window_index, std::vector<Edge>* edges);

/// Terminal accounting of one wire request — the wire face of
/// StreamingSummary plus the delivered-window count, so a client can verify
/// it saw every frame the server sent.
struct WireSummary {
  ServeTier tier_used = ServeTier::kExact;
  bool prepared_from_cache = false;
  bool degraded = false;
  int64_t windows_delivered = 0;
  int64_t windows_from_cache = 0;
  int64_t windows_computed = 0;
  int64_t windows_joined = 0;
  int64_t cells_jumped = 0;
  int64_t jumps = 0;
};

/// Appends one complete status frame (always the last frame of a request).
void EncodeStatusFrame(const Status& status, const WireSummary& summary,
                       std::string* out);

/// Decodes a status frame payload.
Status DecodeStatusPayload(std::span<const uint8_t> payload, Status* status,
                           WireSummary* summary);

/// Appends one complete cancel frame (empty payload).
void EncodeCancelFrame(std::string* out);

// ---------------------------------------------------------- frame reader --

/// One decoded frame view into the reader's buffer; valid until the next
/// Feed/Next call.
struct Frame {
  FrameType type = FrameType::kRequest;
  std::span<const uint8_t> payload;
};

/// Incremental frame decoder for a non-blocking byte stream: feed arbitrary
/// chunks, pop complete frames. Detects oversized and unknown-type frames
/// as terminal protocol errors. Used by both the epoll server (per
/// connection) and the blocking client.
class FrameReader {
 public:
  /// When true (the server side), the stream must begin with the
  /// 5-byte preamble before any frame.
  explicit FrameReader(bool expect_preamble)
      : need_preamble_(expect_preamble) {}

  /// Appends received bytes to the internal buffer.
  void Feed(const uint8_t* data, size_t size);

  /// Pops the next complete frame into `*frame`. Returns:
  /// - Ok with `*have = true`: one frame decoded (view into the buffer).
  /// - Ok with `*have = false`: need more bytes.
  /// - error: the stream violated the protocol (bad preamble, unknown
  ///   frame type, oversized payload) — terminal, close the connection.
  Status Next(Frame* frame, bool* have);

  /// Bytes currently buffered (test/introspection).
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;
  bool need_preamble_;
};

}  // namespace dangoron

#endif  // DANGORON_WIRE_WIRE_FORMAT_H_
