#ifndef DANGORON_NET_WIRE_SERVER_H_
#define DANGORON_NET_WIRE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "net/task_lanes.h"
#include "serve/server.h"
#include "wire/wire_format.h"

namespace dangoron {

/// Options of the network front end.
struct WireServerOptions {
  /// IPv4 address the listener binds (loopback by default — production
  /// deployments front this with their own routing layer).
  std::string bind_address = "127.0.0.1";

  /// TCP port; 0 binds an ephemeral port (read it back via `port()`), -1
  /// runs with no listener at all — connections arrive only through
  /// `AddConnection` (how the socketpair tests and in-process benchmarks
  /// drive the server without touching the network stack).
  int port = 0;

  /// Worker threads draining request streams (0 = max(8, hardware
  /// concurrency)). A worker is occupied for the lifetime of one in-flight
  /// response — it blocks on the consumer's pace, not on compute (the
  /// evaluation itself runs on DangoronServer's pool) — so this bounds
  /// concurrent in-flight wire responses, and oversubscribing the core
  /// count is correct.
  int32_t worker_threads = 0;

  /// Connections beyond this are accepted and immediately closed.
  int64_t max_connections = 256;

  /// Per-connection cap on buffered-but-unsent response bytes. When the
  /// kernel socket buffer and this buffer are both full — the client reads
  /// slower than windows are produced — the worker blocks before encoding
  /// the next window, the stream's bounded queue fills behind it, and the
  /// producer's TryPush fails: socket backpressure becomes WindowStream
  /// backpressure, and a slow client costs one worker plus bounded memory,
  /// never unbounded buffering.
  int64_t outbuf_high_watermark = int64_t{1} << 20;

  /// Requests with a deadline at or under this many milliseconds ride the
  /// high lane regardless of cache state (see ClassifyLane).
  int64_t high_lane_deadline_ms = 250;
};

/// Aggregate front-end counters (monotonic since Start, except the active
/// gauge).
struct WireServerStats {
  int64_t connections_accepted = 0;  ///< via the TCP listener
  int64_t connections_adopted = 0;   ///< via AddConnection
  int64_t connections_active = 0;    ///< gauge: currently registered
  int64_t connections_rejected = 0;  ///< over max_connections
  int64_t requests = 0;              ///< request frames dispatched
  int64_t protocol_errors = 0;       ///< connections killed by bad bytes
  int64_t cancel_frames = 0;         ///< explicit client cancels
  /// Disconnects that cancelled an in-flight stream — the wire face of
  /// DangoronServerStats::streams_cancelled.
  int64_t disconnect_cancels = 0;
  int64_t oversized_windows = 0;     ///< windows too dense to frame
  int64_t bytes_in = 0;
  int64_t bytes_out = 0;
  TaskLaneStats lanes;
};

/// The network front end: an epoll event loop speaking the framed wire
/// protocol (docs/WIRE_PROTOCOL.md) on many concurrent connections, and a
/// priority-laned worker pool bridging decoded requests onto
/// `DangoronServer::SubmitStreaming`.
///
/// Division of labor:
/// - One IO thread owns epoll, the listener, and every socket: it accepts,
///   reads bytes into per-connection FrameReaders, dispatches decoded
///   request frames to the lane pool, and flushes buffered response bytes
///   when sockets turn writable. It never computes and never blocks.
/// - Lane workers own requests end to end: submit the streaming query,
///   drain its WindowStream, encode each window into the connection's
///   output buffer (blocking on the high watermark — backpressure), and
///   finish with the terminal status frame.
///
/// Cancellation: a client disconnect (or explicit cancel frame) reaches the
/// IO thread as an epoll event; it cancels the connection's active stream,
/// which aborts the producer at its next batch boundary and unblocks the
/// draining worker — `streams_cancelled` in the serving stats counts these.
///
/// Lifecycle: construct over a DangoronServer (not owned; must outlive
/// Stop), Start(), then Stop() or destroy. Thread-safe.
class WireServer {
 public:
  explicit WireServer(DangoronServer* server,
                      const WireServerOptions& options = {});
  ~WireServer();

  WireServer(const WireServer&) = delete;
  WireServer& operator=(const WireServer&) = delete;

  /// Binds the listener (unless `options.port` == -1), spawns the IO
  /// thread and lane workers.
  Status Start();

  /// Adopts an already-connected socket (e.g. one end of a socketpair) as
  /// a client connection; takes ownership of `fd`. The peer must speak the
  /// preamble like any other client.
  Status AddConnection(int fd);

  /// Shuts down: closes every connection (cancelling in-flight streams),
  /// joins the IO thread, drains the lane workers. Idempotent.
  void Stop();

  /// The bound listener port (after Start; 0 when listener-less).
  int port() const { return bound_port_; }

  WireServerStats stats() const;

  /// Lane routing of one request — exposed for tests and the docs:
  /// - high: deadline <= high_lane_deadline_ms, or the dataset's sketch is
  ///   resident (warm requests finish fast; serving them first keeps tail
  ///   latency flat under cold backlog);
  /// - medium: cold but deadline-bound;
  /// - low: cold prepares with no deadline — an index build must never
  ///   queue ahead of a microsecond cache hit.
  TaskLane ClassifyLane(const WireRequest& request) const;

 private:
  struct Connection;
  using ConnectionPtr = std::shared_ptr<Connection>;

  void IoLoop();
  void HandleWake() REQUIRES(io_role_);
  void AcceptNew() REQUIRES(io_role_);
  /// fd-exhaustion path of AcceptNew: closes the reserved spare fd, accepts
  /// the pending connection into the freed slot and closes it (counted as
  /// rejected), then re-reserves. Without this the level-triggered listener
  /// spins the IO loop at 100% CPU under EMFILE/ENFILE. If even the freed
  /// slot cannot accept, the listener is disarmed until a connection closes.
  void ShedPendingConnection() REQUIRES(io_role_);
  void RegisterConnection(ConnectionPtr conn, bool adopted)
      REQUIRES(io_role_);
  void HandleReadable(const ConnectionPtr& conn) REQUIRES(io_role_);
  void HandleFrame(const ConnectionPtr& conn, const Frame& frame)
      REQUIRES(io_role_);
  /// Kills a connection that violated the protocol: best-effort error
  /// status frame, then close-after-flush.
  void ProtocolError(const ConnectionPtr& conn, const Status& status)
      REQUIRES(io_role_);
  /// Peer vanished: cancel the active stream, tear the connection down.
  void HandleDisconnect(const ConnectionPtr& conn) REQUIRES(io_role_);
  /// Flushes the connection's output buffer to the socket; arms/disarms
  /// EPOLLOUT; closes once drained when close_after_flush is set.
  void FlushConnection(const ConnectionPtr& conn) REQUIRES(io_role_);
  void UpdateEpoll(const ConnectionPtr& conn, bool want_write)
      REQUIRES(io_role_);
  void CloseConnection(const ConnectionPtr& conn) REQUIRES(io_role_);

  /// Worker-side body of one request.
  void RunRequest(ConnectionPtr conn, WireRequest request);
  /// Worker-side append to the connection's output buffer; blocks on the
  /// high watermark; false once the connection is closed.
  bool WriteToConnection(const ConnectionPtr& conn, const std::string& bytes);
  /// Asks the IO thread to flush `conn` (eventfd wake).
  void RequestFlush(const ConnectionPtr& conn);

  DangoronServer* const server_;
  const WireServerOptions options_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  int listen_fd_ = -1;
  int bound_port_ = 0;
  std::thread io_thread_;
  std::unique_ptr<LanedTaskPool> pool_;

  // The IO thread's identity capability: single-threaded ownership of the
  // epoll set, checked at compile time (REQUIRES on the handlers above) and
  // at runtime (AssertHeld). Start seeds the state below from the caller's
  // thread before the IO thread exists, IoLoop adopts the role on entry,
  // and Stop re-adopts after joining it.
  ThreadRole io_role_;
  int spare_fd_ GUARDED_BY(io_role_) = -1;  ///< for ShedPendingConnection
  /// Listener currently in the epoll set.
  bool listener_armed_ GUARDED_BY(io_role_) = false;
  /// fd -> connection (only the IO thread mutates).
  std::unordered_map<int, ConnectionPtr> connections_ GUARDED_BY(io_role_);

  // Cross-thread handoff to the IO thread, drained on eventfd wake.
  Mutex pending_mutex_;
  std::vector<ConnectionPtr> pending_adds_ GUARDED_BY(pending_mutex_);
  std::vector<ConnectionPtr> pending_flushes_ GUARDED_BY(pending_mutex_);

  mutable Mutex stats_mutex_;
  WireServerStats stats_ GUARDED_BY(stats_mutex_);
};

}  // namespace dangoron

#endif  // DANGORON_NET_WIRE_SERVER_H_
