#include "net/task_lanes.h"

#include <algorithm>
#include <utility>

namespace dangoron {

std::string_view TaskLaneName(TaskLane lane) {
  switch (lane) {
    case TaskLane::kHigh:
      return "high";
    case TaskLane::kMedium:
      return "medium";
    case TaskLane::kLow:
      return "low";
  }
  return "unknown";
}

LanedTaskPool::LanedTaskPool(int32_t num_threads) {
  const int32_t threads = std::max<int32_t>(1, num_threads);
  workers_.reserve(static_cast<size_t>(threads));
  for (int32_t t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

LanedTaskPool::~LanedTaskPool() { Shutdown(); }

bool LanedTaskPool::Post(TaskLane lane, std::function<void()> task) {
  const auto l = static_cast<size_t>(lane);
  {
    MutexLock lock(mutex_);
    if (shutdown_) {
      return false;
    }
    lanes_[l].push_back(std::move(task));
    ++stats_.posted[l];
  }
  work_cv_.NotifyOne();
  return true;
}

void LanedTaskPool::Shutdown() {
  {
    MutexLock lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
}

TaskLaneStats LanedTaskPool::stats() const {
  MutexLock lock(mutex_);
  TaskLaneStats snapshot = stats_;
  for (int l = 0; l < kNumTaskLanes; ++l) {
    snapshot.queued[l] = static_cast<int64_t>(lanes_[l].size());
  }
  return snapshot;
}

void LanedTaskPool::WorkerLoop() {
  // Explicit Lock/Unlock instead of a scoped guard: the loop drops the lock
  // around task() and reacquires it, a shape the scoped wrapper cannot
  // express — thread-safety analysis tracks the manual pairing.
  mutex_.Lock();
  while (true) {
    // Strict priority scan: the highest non-empty lane wins every time a
    // worker frees up; lower lanes only drain in the gaps.
    int lane = -1;
    for (int l = 0; l < kNumTaskLanes; ++l) {
      if (!lanes_[l].empty()) {
        lane = l;
        break;
      }
    }
    if (lane < 0) {
      if (shutdown_) {
        mutex_.Unlock();
        return;  // drained — shutdown completes only after queued work ran
      }
      work_cv_.Wait(mutex_);
      continue;
    }
    std::function<void()> task = std::move(lanes_[lane].front());
    lanes_[lane].pop_front();
    ++stats_.executed[lane];
    mutex_.Unlock();
    task();
    mutex_.Lock();
  }
}

}  // namespace dangoron
