#include "net/task_lanes.h"

#include <algorithm>
#include <utility>

namespace dangoron {

std::string_view TaskLaneName(TaskLane lane) {
  switch (lane) {
    case TaskLane::kHigh:
      return "high";
    case TaskLane::kMedium:
      return "medium";
    case TaskLane::kLow:
      return "low";
  }
  return "unknown";
}

LanedTaskPool::LanedTaskPool(int32_t num_threads) {
  const int32_t threads = std::max<int32_t>(1, num_threads);
  workers_.reserve(static_cast<size_t>(threads));
  for (int32_t t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

LanedTaskPool::~LanedTaskPool() { Shutdown(); }

bool LanedTaskPool::Post(TaskLane lane, std::function<void()> task) {
  const auto l = static_cast<size_t>(lane);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) {
      return false;
    }
    lanes_[l].push_back(std::move(task));
    ++stats_.posted[l];
  }
  work_cv_.notify_one();
  return true;
}

void LanedTaskPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
}

TaskLaneStats LanedTaskPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  TaskLaneStats snapshot = stats_;
  for (int l = 0; l < kNumTaskLanes; ++l) {
    snapshot.queued[l] = static_cast<int64_t>(lanes_[l].size());
  }
  return snapshot;
}

void LanedTaskPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    // Strict priority scan: the highest non-empty lane wins every time a
    // worker frees up; lower lanes only drain in the gaps.
    int lane = -1;
    for (int l = 0; l < kNumTaskLanes; ++l) {
      if (!lanes_[l].empty()) {
        lane = l;
        break;
      }
    }
    if (lane < 0) {
      if (shutdown_) {
        return;  // drained — shutdown completes only after queued work ran
      }
      work_cv_.wait(lock);
      continue;
    }
    std::function<void()> task = std::move(lanes_[lane].front());
    lanes_[lane].pop_front();
    ++stats_.executed[lane];
    lock.unlock();
    task();
    lock.lock();
  }
}

}  // namespace dangoron
