#include "net/wire_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "serve/window_stream.h"

namespace dangoron {

namespace {

// One epoll_wait batch; small enough to stay responsive to the wake fd.
constexpr int kMaxEpollEvents = 64;
constexpr size_t kReadChunkBytes = 64 * 1024;

Status Errno(const char* what) {
  return Status::Internal("net: ", what, ": ", std::string(strerror(errno)));
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

/// Per-connection state. The IO thread owns the fd, the FrameReader, and
/// epoll registration; workers only touch the mutex-guarded output buffer
/// and the active stream slot. The object outlives the socket: a worker
/// holding a ConnectionPtr after the peer vanished sees `closed` and bails.
struct WireServer::Connection {
  int fd = -1;
  bool adopted = false;

  // IO-thread-only.
  FrameReader reader{/*expect_preamble=*/true};
  bool want_write = false;    ///< EPOLLOUT currently armed
  bool dead = false;          ///< torn down; ignore late wake-queue entries
  bool reject_input = false;  ///< protocol error: stop decoding frames

  Mutex mutex;
  CondVar writable_cv;
  /// Pending response bytes.
  std::string outbuf GUARDED_BY(mutex);
  /// Prefix of `outbuf` already sent.
  size_t out_offset GUARDED_BY(mutex) = 0;
  /// No more writes will be flushed.
  bool closed GUARDED_BY(mutex) = false;
  /// Close once `outbuf` drains.
  bool close_after_flush GUARDED_BY(mutex) = false;
  /// One request at a time.
  bool request_in_flight GUARDED_BY(mutex) = false;
  /// Cancel raced the dispatch.
  bool cancel_pending GUARDED_BY(mutex) = false;
  std::shared_ptr<WindowStream> active_stream GUARDED_BY(mutex);
};

WireServer::WireServer(DangoronServer* server, const WireServerOptions& options)
    : server_(server), options_(options) {}

WireServer::~WireServer() { Stop(); }

Status WireServer::Start() {
  if (running_.load()) {
    return Status::FailedPrecondition("wire server already started");
  }
  // Seed the IO-thread-owned state from this thread; the IO thread takes
  // the role over at the top of IoLoop.
  io_role_.Adopt();
  io_role_.AssertHeld();

  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Errno("epoll_create1");
  }
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    Status status = Errno("eventfd");
    close(epoll_fd_);
    epoll_fd_ = -1;
    return status;
  }
  epoll_event wake_event{};
  wake_event.events = EPOLLIN;
  wake_event.data.fd = wake_fd_;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &wake_event) != 0) {
    Status status = Errno("epoll_ctl(wake)");
    close(wake_fd_);
    close(epoll_fd_);
    wake_fd_ = epoll_fd_ = -1;
    return status;
  }

  if (options_.port >= 0) {
    listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
      Status status = Errno("socket");
      Stop();
      return status;
    }
    const int one = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(options_.port));
    if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
        1) {
      Stop();
      return Status::InvalidArgument("wire server: bad bind address '",
                                     options_.bind_address, "'");
    }
    if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      Status status = Errno("bind");
      Stop();
      return status;
    }
    if (listen(listen_fd_, 128) != 0) {
      Status status = Errno("listen");
      Stop();
      return status;
    }
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
      bound_port_ = ntohs(bound.sin_port);
    }
    epoll_event listen_event{};
    listen_event.events = EPOLLIN;
    listen_event.data.fd = listen_fd_;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &listen_event) != 0) {
      Status status = Errno("epoll_ctl(listen)");
      Stop();
      return status;
    }
    listener_armed_ = true;
    // Reserved so ShedPendingConnection can accept under fd exhaustion.
    spare_fd_ = open("/dev/null", O_RDONLY | O_CLOEXEC);
  }

  int32_t workers = options_.worker_threads;
  if (workers <= 0) {
    workers = std::max<int32_t>(
        8, static_cast<int32_t>(std::thread::hardware_concurrency()));
  }
  pool_ = std::make_unique<LanedTaskPool>(workers);

  stop_requested_.store(false);
  running_.store(true);
  io_thread_ = std::thread([this] { IoLoop(); });
  return Status::Ok();
}

Status WireServer::AddConnection(int fd) {
  if (!running_.load()) {
    close(fd);
    return Status::FailedPrecondition("wire server not running");
  }
  if (!SetNonBlocking(fd)) {
    Status status = Errno("fcntl(O_NONBLOCK)");
    close(fd);
    return status;
  }
  auto conn = std::make_shared<Connection>();
  conn->fd = fd;
  conn->adopted = true;
  {
    MutexLock lock(pending_mutex_);
    pending_adds_.push_back(std::move(conn));
  }
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
  return Status::Ok();
}

void WireServer::Stop() {
  if (running_.exchange(false)) {
    stop_requested_.store(true);
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
    if (io_thread_.joinable()) {
      io_thread_.join();
    }
    // The IO thread closed every connection (cancelling streams), so the
    // workers unblock and drain; Shutdown joins them, making the lane
    // counters final. The pool object stays alive for stats().
    if (pool_ != nullptr) {
      pool_->Shutdown();
    }
  }
  // The IO thread (if it ever ran) has exited: this thread owns its state
  // again for the teardown below.
  io_role_.Adopt();
  io_role_.AssertHeld();
  // Late adds that never reached the IO thread still own their fds.
  std::vector<ConnectionPtr> orphans;
  {
    MutexLock lock(pending_mutex_);
    orphans.swap(pending_adds_);
    pending_flushes_.clear();
  }
  for (const ConnectionPtr& conn : orphans) {
    close(conn->fd);
  }
  if (spare_fd_ >= 0) {
    close(spare_fd_);
    spare_fd_ = -1;
  }
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  listener_armed_ = false;
  if (wake_fd_ >= 0) {
    close(wake_fd_);
    wake_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    close(epoll_fd_);
    epoll_fd_ = -1;
  }
}

WireServerStats WireServer::stats() const {
  MutexLock lock(stats_mutex_);
  WireServerStats snapshot = stats_;
  if (pool_ != nullptr) {
    snapshot.lanes = pool_->stats();
  }
  return snapshot;
}

TaskLane WireServer::ClassifyLane(const WireRequest& request) const {
  const bool tight = request.options.deadline_ms.has_value() &&
                     *request.options.deadline_ms > 0 &&
                     *request.options.deadline_ms <= options_.high_lane_deadline_ms;
  if (tight || server_->HasPreparedSketch(request.dataset)) {
    return TaskLane::kHigh;
  }
  if (request.options.deadline_ms.has_value() &&
      *request.options.deadline_ms > 0) {
    return TaskLane::kMedium;
  }
  return TaskLane::kLow;
}

// ------------------------------------------------------------ IO thread --

void WireServer::IoLoop() {
  io_role_.Adopt();
  io_role_.AssertHeld();
  epoll_event events[kMaxEpollEvents];
  while (!stop_requested_.load()) {
    const int n = epoll_wait(epoll_fd_, events, kMaxEpollEvents, -1);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;  // epoll fd gone — shutting down
    }
    for (int e = 0; e < n; ++e) {
      const int fd = events[e].data.fd;
      if (fd == wake_fd_) {
        HandleWake();
        continue;
      }
      if (fd == listen_fd_) {
        AcceptNew();
        continue;
      }
      auto it = connections_.find(fd);
      if (it == connections_.end()) {
        continue;  // closed earlier in this batch
      }
      ConnectionPtr conn = it->second;
      if ((events[e].events & (EPOLLHUP | EPOLLERR)) != 0) {
        HandleDisconnect(conn);
        continue;
      }
      if ((events[e].events & EPOLLIN) != 0) {
        HandleReadable(conn);
      }
      if (!conn->dead && (events[e].events & EPOLLOUT) != 0) {
        FlushConnection(conn);
      }
    }
  }
  // Teardown: cancel every in-flight stream and close every socket so the
  // workers (blocked in Next() or on the watermark) unblock and finish.
  for (auto& [fd, conn] : connections_) {
    std::shared_ptr<WindowStream> stream;
    {
      MutexLock lock(conn->mutex);
      conn->closed = true;
      stream = std::move(conn->active_stream);
    }
    conn->writable_cv.NotifyAll();
    if (stream != nullptr) {
      stream->Cancel();
    }
    close(conn->fd);
    conn->dead = true;
  }
  connections_.clear();
}

void WireServer::HandleWake() {
  uint64_t drained = 0;
  [[maybe_unused]] ssize_t n = read(wake_fd_, &drained, sizeof(drained));
  std::vector<ConnectionPtr> adds;
  std::vector<ConnectionPtr> flushes;
  {
    MutexLock lock(pending_mutex_);
    adds.swap(pending_adds_);
    flushes.swap(pending_flushes_);
  }
  for (ConnectionPtr& conn : adds) {
    RegisterConnection(std::move(conn), /*adopted=*/true);
  }
  for (const ConnectionPtr& conn : flushes) {
    // The connection may have died between the worker's request and now.
    if (!conn->dead && connections_.count(conn->fd) != 0 &&
        connections_[conn->fd] == conn) {
      FlushConnection(conn);
    }
  }
}

void WireServer::AcceptNew() {
  while (true) {
    const int fd = accept4(listen_fd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) {
        continue;  // this connection is gone; the next one may be fine
      }
      if (errno == EMFILE || errno == ENFILE) {
        // Out of fds. The listener is level-triggered, so simply returning
        // would leave the pending connection queued, EPOLLIN asserted, and
        // the IO loop spinning at 100% CPU. Shed the connection instead.
        ShedPendingConnection();
      }
      return;  // EAGAIN/EWOULDBLOCK (backlog drained) or transient error
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    RegisterConnection(std::move(conn), /*adopted=*/false);
  }
}

void WireServer::ShedPendingConnection() {
  // Release the reserved fd so accept has a slot, take the pending
  // connection, close it immediately (the peer sees a clean RST/EOF rather
  // than a connect that hangs forever), then re-reserve.
  if (spare_fd_ >= 0) {
    close(spare_fd_);
    spare_fd_ = -1;
  }
  const int fd =
      accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
  if (fd >= 0) {
    close(fd);
    MutexLock lock(stats_mutex_);
    ++stats_.connections_rejected;
  } else if (errno == EMFILE || errno == ENFILE) {
    // Even the freed slot was not enough (system-wide exhaustion). Disarm
    // the listener so the loop sleeps instead of spinning; CloseConnection
    // re-arms it as soon as any fd frees up.
    if (listener_armed_ &&
        epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr) == 0) {
      listener_armed_ = false;
    }
  }
  spare_fd_ = open("/dev/null", O_RDONLY | O_CLOEXEC);
}

void WireServer::RegisterConnection(ConnectionPtr conn, bool adopted) {
  if (static_cast<int64_t>(connections_.size()) >= options_.max_connections) {
    close(conn->fd);
    MutexLock lock(stats_mutex_);
    ++stats_.connections_rejected;
    return;
  }
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.fd = conn->fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn->fd, &event) != 0) {
    close(conn->fd);
    return;
  }
  const int fd = conn->fd;
  connections_[fd] = std::move(conn);
  MutexLock lock(stats_mutex_);
  if (adopted) {
    ++stats_.connections_adopted;
  } else {
    ++stats_.connections_accepted;
  }
  stats_.connections_active = static_cast<int64_t>(connections_.size());
}

void WireServer::HandleReadable(const ConnectionPtr& conn) {
  uint8_t buf[kReadChunkBytes];
  int64_t received = 0;
  while (true) {
    const ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->reader.Feed(buf, static_cast<size_t>(n));
      received += n;
      if (static_cast<size_t>(n) < sizeof(buf)) {
        break;  // drained (level-triggered epoll re-arms otherwise)
      }
      continue;
    }
    if (n == 0) {
      HandleDisconnect(conn);
      return;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    HandleDisconnect(conn);
    return;
  }
  if (received > 0) {
    MutexLock lock(stats_mutex_);
    stats_.bytes_in += received;
  }
  while (!conn->dead && !conn->reject_input) {
    Frame frame;
    bool have = false;
    Status status = conn->reader.Next(&frame, &have);
    if (!status.ok()) {
      ProtocolError(conn, status);
      return;
    }
    if (!have) {
      return;
    }
    HandleFrame(conn, frame);
  }
}

void WireServer::HandleFrame(const ConnectionPtr& conn, const Frame& frame) {
  switch (frame.type) {
    case FrameType::kRequest: {
      WireRequest request;
      Status status = DecodeRequestPayload(frame.payload, &request);
      if (!status.ok()) {
        ProtocolError(conn, status);
        return;
      }
      bool pipelined = false;
      {
        MutexLock lock(conn->mutex);
        if (conn->request_in_flight) {
          pipelined = true;
        } else {
          conn->request_in_flight = true;
          conn->cancel_pending = false;
        }
      }
      if (pipelined) {
        // The protocol is strictly request/response per connection; a
        // second request before the terminal status frame is a client bug,
        // not a queueing opportunity.
        ProtocolError(conn, Status::FailedPrecondition(
                                "wire: request while a previous request is "
                                "still streaming"));
        return;
      }
      const TaskLane lane = ClassifyLane(request);
      {
        MutexLock lock(stats_mutex_);
        ++stats_.requests;
      }
      ConnectionPtr conn_copy = conn;
      if (!pool_->Post(lane, [this, conn_copy = std::move(conn_copy),
                              request = std::move(request)]() mutable {
            RunRequest(std::move(conn_copy), std::move(request));
          })) {
        // Shutting down: the teardown path closes this connection.
        MutexLock lock(conn->mutex);
        conn->request_in_flight = false;
      }
      return;
    }
    case FrameType::kCancel: {
      std::shared_ptr<WindowStream> stream;
      {
        MutexLock lock(conn->mutex);
        stream = conn->active_stream;
        if (stream == nullptr && conn->request_in_flight) {
          // The worker has the request but has not registered its stream
          // yet; leave a note it picks up at registration.
          conn->cancel_pending = true;
        }
      }
      if (stream != nullptr) {
        stream->Cancel();
      }
      MutexLock lock(stats_mutex_);
      ++stats_.cancel_frames;
      return;
    }
    case FrameType::kWindow:
    case FrameType::kStatus:
      ProtocolError(conn, Status::DataLoss(
                              "wire: server-to-client frame type ",
                              static_cast<int>(frame.type),
                              " received from a client"));
      return;
  }
  ProtocolError(conn, Status::DataLoss("wire: unhandled frame type"));
}

void WireServer::ProtocolError(const ConnectionPtr& conn,
                               const Status& status) {
  {
    MutexLock lock(stats_mutex_);
    ++stats_.protocol_errors;
  }
  std::shared_ptr<WindowStream> stream;
  {
    MutexLock lock(conn->mutex);
    stream = conn->active_stream;
    if (!conn->close_after_flush) {
      // Best-effort courtesy: tell the peer why before hanging up. Past
      // the watermark we close without it — the buffer is already full of
      // frames the peer is not reading.
      if (static_cast<int64_t>(conn->outbuf.size() - conn->out_offset) <
          options_.outbuf_high_watermark) {
        EncodeStatusFrame(status, WireSummary{}, &conn->outbuf);
      }
      conn->close_after_flush = true;
    }
  }
  if (stream != nullptr) {
    stream->Cancel();
  }
  conn->reject_input = true;
  FlushConnection(conn);
}

void WireServer::HandleDisconnect(const ConnectionPtr& conn) {
  std::shared_ptr<WindowStream> stream;
  {
    MutexLock lock(conn->mutex);
    conn->closed = true;
    stream = std::move(conn->active_stream);
  }
  conn->writable_cv.NotifyAll();
  if (stream != nullptr) {
    stream->Cancel();
    MutexLock lock(stats_mutex_);
    ++stats_.disconnect_cancels;
  }
  CloseConnection(conn);
}

void WireServer::FlushConnection(const ConnectionPtr& conn) {
  bool drained = false;
  bool close_now = false;
  // Explicit Lock/Unlock: the disconnect path below must drop the lock
  // before calling into HandleDisconnect (which takes it again), a shape a
  // scoped guard cannot express.
  conn->mutex.Lock();
  int64_t sent = 0;
  while (conn->out_offset < conn->outbuf.size()) {
    const ssize_t n =
        send(conn->fd, conn->outbuf.data() + conn->out_offset,
             conn->outbuf.size() - conn->out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_offset += static_cast<size_t>(n);
      sent += n;
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    }
    // Peer gone mid-write.
    conn->mutex.Unlock();
    if (sent > 0) {
      MutexLock slock(stats_mutex_);
      stats_.bytes_out += sent;
    }
    HandleDisconnect(conn);
    return;
  }
  drained = conn->out_offset == conn->outbuf.size();
  if (drained) {
    conn->outbuf.clear();
    conn->out_offset = 0;
  } else if (conn->out_offset > (size_t{1} << 20)) {
    // Reclaim the sent prefix so a long stream does not grow the buffer
    // without bound even while partially flushed.
    conn->outbuf.erase(0, conn->out_offset);
    conn->out_offset = 0;
  }
  close_now = drained && conn->close_after_flush;
  conn->mutex.Unlock();
  if (sent > 0) {
    MutexLock slock(stats_mutex_);
    stats_.bytes_out += sent;
  }
  // Below the watermark again — wake a worker blocked in WriteToConnection.
  conn->writable_cv.NotifyAll();
  if (close_now) {
    {
      MutexLock lock(conn->mutex);
      conn->closed = true;
    }
    conn->writable_cv.NotifyAll();
    CloseConnection(conn);
    return;
  }
  UpdateEpoll(conn, /*want_write=*/!drained);
}

void WireServer::UpdateEpoll(const ConnectionPtr& conn, bool want_write) {
  if (conn->dead || conn->want_write == want_write) {
    return;
  }
  epoll_event event{};
  event.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
  event.data.fd = conn->fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &event) == 0) {
    conn->want_write = want_write;
  }
}

void WireServer::CloseConnection(const ConnectionPtr& conn) {
  if (conn->dead) {
    return;
  }
  conn->dead = true;
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  close(conn->fd);
  connections_.erase(conn->fd);
  if (!listener_armed_ && listen_fd_ >= 0) {
    // An fd just freed up: re-arm the listener that ShedPendingConnection
    // disarmed under system-wide fd exhaustion.
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.fd = listen_fd_;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &event) == 0) {
      listener_armed_ = true;
    }
  }
  MutexLock lock(stats_mutex_);
  stats_.connections_active = static_cast<int64_t>(connections_.size());
}

// --------------------------------------------------------- worker side --

bool WireServer::WriteToConnection(const ConnectionPtr& conn,
                                   const std::string& bytes) {
  {
    MutexLock lock(conn->mutex);
    while (!conn->closed &&
           static_cast<int64_t>(conn->outbuf.size() - conn->out_offset) >=
               options_.outbuf_high_watermark) {
      conn->writable_cv.Wait(conn->mutex);
    }
    if (conn->closed) {
      return false;
    }
    conn->outbuf.append(bytes);
  }
  RequestFlush(conn);
  return true;
}

void WireServer::RequestFlush(const ConnectionPtr& conn) {
  {
    MutexLock lock(pending_mutex_);
    pending_flushes_.push_back(conn);
  }
  if (running_.load() && wake_fd_ >= 0) {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
  }
}

void WireServer::RunRequest(ConnectionPtr conn, WireRequest request) {
  Status status = Status::Ok();
  WireSummary summary;

  // A router that addresses datasets by content verifies the shard still
  // holds the bytes it thinks it does.
  if (request.expected_fingerprint != 0) {
    Result<uint64_t> fingerprint = server_->DatasetFingerprint(request.dataset);
    if (!fingerprint.ok()) {
      status = fingerprint.status();
    } else if (*fingerprint != request.expected_fingerprint) {
      status = Status::FailedPrecondition(
          "wire: dataset '", request.dataset, "' fingerprint mismatch");
    }
  }

  // Wire convenience: end = 0 means "the dataset's full range" — a remote
  // client need not know the series length (docs/WIRE_PROTOCOL.md).
  if (status.ok() && request.query.end == 0) {
    Result<int64_t> length = server_->DatasetLength(request.dataset);
    if (length.ok()) {
      request.query.end = *length;
    }  // unknown dataset: let SubmitStreaming report NotFound
  }

  if (status.ok()) {
    QueryRequest query_request{request.dataset, request.query,
                               request.options};
    std::shared_ptr<WindowStream> stream =
        server_->SubmitStreaming(query_request);

    // Publish the stream so a disconnect or cancel frame can reach it; a
    // cancel that raced ahead of this registration left a note instead.
    bool cancel_now = false;
    {
      MutexLock lock(conn->mutex);
      if (conn->closed) {
        cancel_now = true;
      } else {
        conn->active_stream = stream;
        cancel_now = conn->cancel_pending;
        conn->cancel_pending = false;
      }
    }
    if (cancel_now) {
      stream->Cancel();
    }

    std::string frame;
    while (std::optional<StreamedWindow> window = stream->Next()) {
      frame.clear();
      EncodeWindowFrame(window->window_index, *window->edges, &frame);
      if (frame.size() >
          kMaxFramePayload + static_cast<uint64_t>(kFrameHeaderBytes)) {
        // Too dense to frame: abort the stream and report the budget
        // overflow instead of emitting a frame the peer must reject.
        stream->Cancel();
        while (stream->Next()) {
        }
        status = Status::ResourceExhausted(
            "wire: window ", window->window_index, " encodes to ",
            frame.size() - kFrameHeaderBytes,
            " bytes, past the frame cap of ", kMaxFramePayload);
        MutexLock lock(stats_mutex_);
        ++stats_.oversized_windows;
        break;
      }
      if (!WriteToConnection(conn, frame)) {
        // Peer vanished mid-stream: stop the producer and join it so its
        // claims are released before this worker moves on.
        stream->Cancel();
        while (stream->Next()) {
        }
        break;
      }
      ++summary.windows_delivered;
    }

    if (status.ok()) {
      status = stream->status();
    }
    const StreamingSummary streamed = stream->summary();
    summary.tier_used = streamed.tier_used;
    summary.prepared_from_cache = streamed.prepared_from_cache;
    summary.degraded = streamed.degraded;
    summary.windows_from_cache = streamed.windows_from_cache;
    summary.windows_computed = streamed.windows_computed;
    summary.windows_joined = streamed.windows_joined;
    summary.cells_jumped = streamed.cells_jumped;
    summary.jumps = streamed.jumps;

    MutexLock lock(conn->mutex);
    conn->active_stream.reset();
  }

  std::string terminal;
  EncodeStatusFrame(status, summary, &terminal);
  WriteToConnection(conn, terminal);  // best-effort on a closed connection

  MutexLock lock(conn->mutex);
  conn->request_in_flight = false;
}

}  // namespace dangoron
