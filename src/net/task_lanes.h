#ifndef DANGORON_NET_TASK_LANES_H_
#define DANGORON_NET_TASK_LANES_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string_view>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace dangoron {

/// Priority lane of one network request — the TileSweep taskpool pattern
/// (three priorities over one worker set) applied to query serving:
///
/// - `kHigh`: deadline-tight requests and warm-cache requests (their sketch
///   is resident, so they finish fast — serving them first keeps tail
///   latency flat under a backlog of cold work).
/// - `kMedium`: everything in between — cold requests that carry a
///   deadline.
/// - `kLow`: cold prepares with no deadline: an index build monopolizes the
///   compute pool for tens to hundreds of milliseconds, so it must never
///   queue ahead of a request that could answer in microseconds.
///
/// The wire server classifies each decoded request (see
/// WireServer::ClassifyLane) and posts its handler to the matching lane.
enum class TaskLane : int8_t {
  kHigh = 0,
  kMedium = 1,
  kLow = 2,
};

inline constexpr int kNumTaskLanes = 3;

std::string_view TaskLaneName(TaskLane lane);

/// Per-lane counters (snapshot).
struct TaskLaneStats {
  int64_t posted[kNumTaskLanes] = {0, 0, 0};
  int64_t executed[kNumTaskLanes] = {0, 0, 0};
  int64_t queued[kNumTaskLanes] = {0, 0, 0};  ///< waiting right now
};

/// A fixed set of worker threads draining three strictly prioritized FIFO
/// queues: a waking worker always takes the highest non-empty lane, so low
/// work runs only when nothing above it waits. Within a lane, order is
/// FIFO. No preemption — a long low task started before high work arrived
/// runs to completion (the wire server bounds that window by keeping cold
/// prepares, the only long tasks, in the low lane where they cannot occupy
/// every worker: see WireServerOptions::worker_threads).
///
/// Tasks must not block indefinitely on other *queued* tasks (they may
/// block on their own stream's consumer — that is the design: a worker per
/// in-flight response). Thread-safe.
class LanedTaskPool {
 public:
  /// `num_threads` workers (minimum 1).
  explicit LanedTaskPool(int32_t num_threads);

  /// Shutdown() then join.
  ~LanedTaskPool();

  LanedTaskPool(const LanedTaskPool&) = delete;
  LanedTaskPool& operator=(const LanedTaskPool&) = delete;

  /// Enqueues `task` on `lane`. Returns false (task dropped) after
  /// Shutdown.
  bool Post(TaskLane lane, std::function<void()> task);

  /// Stops accepting new tasks, drains every already-queued task, then
  /// joins the workers — on return, all posted work has run and the
  /// counters are final. Idempotent, but must not be called concurrently
  /// with itself or from a worker. Called by the destructor.
  void Shutdown();

  int32_t num_threads() const {
    return static_cast<int32_t>(workers_.size());
  }

  TaskLaneStats stats() const;

 private:
  void WorkerLoop();

  mutable Mutex mutex_;
  CondVar work_cv_;
  std::deque<std::function<void()>> lanes_[kNumTaskLanes] GUARDED_BY(mutex_);
  TaskLaneStats stats_ GUARDED_BY(mutex_);
  bool shutdown_ GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace dangoron

#endif  // DANGORON_NET_TASK_LANES_H_
