#ifndef DANGORON_TS_USCRN_H_
#define DANGORON_TS_USCRN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "ts/time_series_matrix.h"

namespace dangoron {

/// Column indices (0-based) of the NOAA/NCEI USCRN `hourly02` product used in
/// the paper's evaluation
/// (https://www.ncei.noaa.gov/pub/data/uscrn/products/hourly02/). A row is 38
/// whitespace-separated fields; the ones named here are the commonly analyzed
/// observables.
enum class UscrnField : int {
  kWbanno = 0,
  kUtcDate = 1,
  kUtcTime = 2,
  kLongitude = 6,
  kLatitude = 7,
  kTCalc = 8,      ///< calculated average air temperature, deg C
  kTHrAvg = 9,     ///< average air temperature over the hour, deg C
  kPCalc = 12,     ///< total precipitation, mm
  kSolarad = 13,   ///< average global solar radiation, W/m^2
  kSurTemp = 20,   ///< infrared surface temperature, deg C
  kRhHrAvg = 26,   ///< relative humidity average, %
};

/// Total fields per hourly02 row.
inline constexpr int kUscrnFieldCount = 38;

/// One parsed hourly observation of a single station.
struct UscrnObservation {
  int64_t wbanno = 0;
  /// Hours since 1970-01-01T00:00Z derived from UTC_DATE/UTC_TIME.
  int64_t utc_hour = 0;
  double longitude = 0.0;
  double latitude = 0.0;
  /// Value of the selected field (NaN when the file carried a -9999 code).
  double value = 0.0;
};

/// Options for reading a station file.
struct UscrnReadOptions {
  /// Which observable to extract.
  UscrnField field = UscrnField::kTCalc;
  /// Rows with fewer fields than this are rejected (real files have 38, but
  /// trailing soil fields are absent at some stations' older years).
  int min_fields = 14;
};

/// Parses one USCRN hourly02 station file into observations (file order).
/// Malformed rows produce an error Status naming the line.
Result<std::vector<UscrnObservation>> ReadUscrnFile(
    const std::string& path, const UscrnReadOptions& options = {});

/// Converts per-station observation streams into a synchronized
/// TimeSeriesMatrix on a common hourly grid covering
/// [max(first hours), min(last hours)] across stations; slots a station did
/// not report become NaN (fill them with InterpolateMissing). Station order
/// follows `station_files`; series are named by WBANNO.
Result<TimeSeriesMatrix> LoadUscrnStations(
    const std::vector<std::string>& station_files,
    const UscrnReadOptions& options = {});

/// Writes a synthetic station in the hourly02 format (38 fields per row,
/// -9999 for missing / unmodeled observables): the inverse of ReadUscrnFile
/// for the selected field, used to exercise the real parser offline.
Status WriteUscrnFile(const std::string& path, int64_t wbanno,
                      double longitude, double latitude, int64_t start_hour,
                      std::span<const double> values,
                      UscrnField field = UscrnField::kTCalc);

/// Days since 1970-01-01 for a civil date (proleptic Gregorian).
int64_t DaysFromCivil(int year, int month, int day);

/// Inverse of DaysFromCivil.
void CivilFromDays(int64_t days, int* year, int* month, int* day);

}  // namespace dangoron

#endif  // DANGORON_TS_USCRN_H_
