#ifndef DANGORON_TS_TIME_SERIES_MATRIX_H_
#define DANGORON_TS_TIME_SERIES_MATRIX_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace dangoron {

/// Sentinel for a missing observation, matching the convention of the USCRN
/// raw files after parsing (the files use -9999 codes; the loaders convert
/// them to NaN so arithmetic can't silently absorb them).
double MissingValue();

/// True if `value` marks a missing observation.
bool IsMissing(double value);

/// Dense, row-major collection of N synchronized time series of length L —
/// the matrix `X` of the paper's problem definition. Row `i` is series `i`.
///
/// The matrix owns its storage; rows are exposed as spans so kernels iterate
/// contiguous memory. Series may carry names (e.g. USCRN station ids).
class TimeSeriesMatrix {
 public:
  /// Creates an empty 0 x 0 matrix.
  TimeSeriesMatrix() = default;

  /// Creates an `num_series x length` matrix initialized to zero.
  TimeSeriesMatrix(int64_t num_series, int64_t length);

  /// Builds a matrix from equally sized rows. Fails if rows are ragged or
  /// empty.
  static Result<TimeSeriesMatrix> FromRows(
      std::vector<std::vector<double>> rows);

  int64_t num_series() const { return num_series_; }
  int64_t length() const { return length_; }
  bool empty() const { return num_series_ == 0 || length_ == 0; }

  /// Mutable view of series `i`.
  std::span<double> Row(int64_t i) {
    return std::span<double>(values_.data() + i * length_,
                             static_cast<size_t>(length_));
  }
  /// Read-only view of series `i`.
  std::span<const double> Row(int64_t i) const {
    return std::span<const double>(values_.data() + i * length_,
                                   static_cast<size_t>(length_));
  }

  /// Read-only view of `count` values of series `i` starting at column
  /// `start`. Bounds are DCHECKed.
  std::span<const double> RowRange(int64_t i, int64_t start,
                                   int64_t count) const;

  double Get(int64_t series, int64_t t) const {
    return values_[series * length_ + t];
  }
  void Set(int64_t series, int64_t t, double value) {
    values_[series * length_ + t] = value;
  }

  /// Name of series `i` ("series<i>" when unnamed).
  std::string SeriesName(int64_t i) const;

  /// Assigns names; must match num_series().
  Status SetSeriesNames(std::vector<std::string> names);

  const std::vector<std::string>& series_names() const { return names_; }

  /// Returns the sub-matrix covering columns [start, start + count).
  Result<TimeSeriesMatrix> SliceColumns(int64_t start, int64_t count) const;

  /// Returns a matrix with only the selected series (rows), in order.
  Result<TimeSeriesMatrix> SelectSeries(
      const std::vector<int64_t>& indices) const;

  /// Count of missing (NaN) cells.
  int64_t CountMissing() const;

  /// 64-bit content hash of shape plus raw values (FNV-1a over the value
  /// bytes): the serving layer's dataset identity, so two registrations of
  /// identical data share one prepared sketch. O(N * L); names are excluded
  /// — identity is the numbers, not their labels.
  uint64_t ContentFingerprint() const;

  /// Flat row-major storage (size num_series * length).
  const std::vector<double>& values() const { return values_; }

 private:
  int64_t num_series_ = 0;
  int64_t length_ = 0;
  std::vector<double> values_;
  std::vector<std::string> names_;
};

}  // namespace dangoron

#endif  // DANGORON_TS_TIME_SERIES_MATRIX_H_
