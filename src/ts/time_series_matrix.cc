#include "ts/time_series_matrix.h"

#include <cmath>
#include <limits>

#include "common/logging.h"
#include "ts/dataset_io.h"

namespace dangoron {

double MissingValue() { return std::numeric_limits<double>::quiet_NaN(); }

bool IsMissing(double value) { return std::isnan(value); }

TimeSeriesMatrix::TimeSeriesMatrix(int64_t num_series, int64_t length)
    : num_series_(num_series), length_(length) {
  CHECK_GE(num_series, 0);
  CHECK_GE(length, 0);
  values_.assign(static_cast<size_t>(num_series * length), 0.0);
}

Result<TimeSeriesMatrix> TimeSeriesMatrix::FromRows(
    std::vector<std::vector<double>> rows) {
  if (rows.empty()) {
    return Status::InvalidArgument("FromRows: no rows given");
  }
  const int64_t length = static_cast<int64_t>(rows[0].size());
  if (length == 0) {
    return Status::InvalidArgument("FromRows: rows are empty");
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    if (static_cast<int64_t>(rows[i].size()) != length) {
      return Status::InvalidArgument("FromRows: ragged rows; row 0 has ",
                                     length, " values but row ", i, " has ",
                                     rows[i].size());
    }
  }
  TimeSeriesMatrix matrix(static_cast<int64_t>(rows.size()), length);
  for (size_t i = 0; i < rows.size(); ++i) {
    std::span<double> row = matrix.Row(static_cast<int64_t>(i));
    std::copy(rows[i].begin(), rows[i].end(), row.begin());
  }
  return matrix;
}

std::span<const double> TimeSeriesMatrix::RowRange(int64_t i, int64_t start,
                                                   int64_t count) const {
  DCHECK_GE(i, 0);
  DCHECK_LT(i, num_series_);
  DCHECK_GE(start, 0);
  DCHECK_GE(count, 0);
  DCHECK_LE(start + count, length_);
  return std::span<const double>(values_.data() + i * length_ + start,
                                 static_cast<size_t>(count));
}

std::string TimeSeriesMatrix::SeriesName(int64_t i) const {
  DCHECK_GE(i, 0);
  DCHECK_LT(i, num_series_);
  if (static_cast<size_t>(i) < names_.size() && !names_[i].empty()) {
    return names_[i];
  }
  return "series" + std::to_string(i);
}

Status TimeSeriesMatrix::SetSeriesNames(std::vector<std::string> names) {
  if (static_cast<int64_t>(names.size()) != num_series_) {
    return Status::InvalidArgument("SetSeriesNames: got ", names.size(),
                                   " names for ", num_series_, " series");
  }
  names_ = std::move(names);
  return Status::Ok();
}

Result<TimeSeriesMatrix> TimeSeriesMatrix::SliceColumns(int64_t start,
                                                        int64_t count) const {
  if (start < 0 || count < 0 || start + count > length_) {
    return Status::OutOfRange("SliceColumns: [", start, ", ", start + count,
                              ") out of [0, ", length_, ")");
  }
  TimeSeriesMatrix out(num_series_, count);
  for (int64_t i = 0; i < num_series_; ++i) {
    std::span<const double> src = RowRange(i, start, count);
    std::span<double> dst = out.Row(i);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  out.names_ = names_;
  return out;
}

Result<TimeSeriesMatrix> TimeSeriesMatrix::SelectSeries(
    const std::vector<int64_t>& indices) const {
  for (const int64_t index : indices) {
    if (index < 0 || index >= num_series_) {
      return Status::OutOfRange("SelectSeries: index ", index,
                                " out of [0, ", num_series_, ")");
    }
  }
  TimeSeriesMatrix out(static_cast<int64_t>(indices.size()), length_);
  std::vector<std::string> names;
  names.reserve(indices.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    std::span<const double> src = Row(indices[i]);
    std::span<double> dst = out.Row(static_cast<int64_t>(i));
    std::copy(src.begin(), src.end(), dst.begin());
    names.push_back(SeriesName(indices[i]));
  }
  out.names_ = std::move(names);
  return out;
}

int64_t TimeSeriesMatrix::CountMissing() const {
  int64_t count = 0;
  for (const double v : values_) {
    if (IsMissing(v)) {
      ++count;
    }
  }
  return count;
}

uint64_t TimeSeriesMatrix::ContentFingerprint() const {
  // Chained FNV-1a over the shape followed by the raw value bytes. Hashing
  // the bit pattern (not the double value) keeps 0.0 / -0.0 and NaN
  // payloads distinct, which is what byte-identity means here.
  uint64_t hash = Fnv1a64(&num_series_, sizeof(num_series_));
  hash = Fnv1a64(&length_, sizeof(length_), hash);
  return Fnv1a64(values_.data(), values_.size() * sizeof(double), hash);
}

}  // namespace dangoron
