#ifndef DANGORON_TS_CSV_H_
#define DANGORON_TS_CSV_H_

#include <string>

#include "common/status.h"
#include "ts/time_series_matrix.h"

namespace dangoron {

/// Options controlling CSV layout interpretation.
struct CsvOptions {
  /// Column separator.
  char delimiter = ',';
  /// When true, the first row holds names and is not data.
  bool has_header = false;
  /// When true, each CSV *row* is one series; otherwise each *column* is one
  /// series (the common layout for exported sensor tables).
  bool series_in_rows = true;
  /// Cells equal to this text (after trimming) become NaN; empty cells are
  /// always missing.
  std::string missing_token = "NA";
};

/// Loads a CSV file into a TimeSeriesMatrix.
///
/// With `series_in_rows == false` the header (when present) provides series
/// names; with `series_in_rows == true` the first column is used as the
/// series name when it is not numeric.
Result<TimeSeriesMatrix> LoadCsv(const std::string& path,
                                 const CsvOptions& options = {});

/// Writes `matrix` (one series per row, name in the first column) to `path`.
Status WriteCsv(const TimeSeriesMatrix& matrix, const std::string& path,
                char delimiter = ',');

}  // namespace dangoron

#endif  // DANGORON_TS_CSV_H_
