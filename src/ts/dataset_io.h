#ifndef DANGORON_TS_DATASET_IO_H_
#define DANGORON_TS_DATASET_IO_H_

#include <string>

#include "common/status.h"
#include "ts/time_series_matrix.h"

namespace dangoron {

/// Compact binary persistence for TimeSeriesMatrix — the interchange format
/// for generated benchmark datasets (CSV is ~3x larger and lossy unless
/// printed at full precision).
///
/// Layout (little-endian):
///   magic   "DGRN"            4 bytes
///   version u32               currently 1
///   num_series i64, length i64
///   names: per series, u32 byte count + bytes
///   values: num_series * length doubles, row-major
///   checksum u64 (FNV-1a over the value bytes)
///
/// Readers validate magic, version, sane dimensions, exact file size, and
/// the checksum, so corrupted or truncated files fail loudly (DataLoss)
/// instead of producing silently wrong benchmark numbers.

/// Writes `matrix` to `path` in the binary format above.
Status SaveDataset(const TimeSeriesMatrix& matrix, const std::string& path);

/// Loads a matrix previously written by SaveDataset.
Result<TimeSeriesMatrix> LoadDataset(const std::string& path);

/// The FNV-1a 64-bit offset basis: the seed of an unchained hash.
inline constexpr uint64_t kFnv1a64OffsetBasis = 0xcbf29ce484222325ULL;

/// FNV-1a 64-bit over a byte buffer (exposed for tests). Pass a previous
/// result as `seed` to chain multiple buffers into one hash.
uint64_t Fnv1a64(const void* data, size_t size,
                 uint64_t seed = kFnv1a64OffsetBasis);

}  // namespace dangoron

#endif  // DANGORON_TS_DATASET_IO_H_
