#include "ts/csv.h"

#include <fstream>
#include <vector>

#include "common/strings.h"

namespace dangoron {

namespace {

// Parses one CSV cell: empty or missing_token -> NaN, otherwise a double.
Result<double> ParseCell(std::string_view cell, const std::string& missing) {
  const std::string_view trimmed = Trim(cell);
  if (trimmed.empty() || trimmed == missing) {
    return MissingValue();
  }
  return ParseDouble(trimmed);
}

}  // namespace

Result<TimeSeriesMatrix> LoadCsv(const std::string& path,
                                 const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open CSV file: ", path);
  }
  std::vector<std::vector<std::string>> cells;
  std::string line;
  while (std::getline(in, line)) {
    if (Trim(line).empty()) {
      continue;
    }
    cells.push_back(Split(line, options.delimiter));
  }
  if (cells.empty()) {
    return Status::InvalidArgument("CSV file has no data rows: ", path);
  }

  std::vector<std::string> header;
  size_t first_data_row = 0;
  if (options.has_header) {
    for (const std::string& name : cells[0]) {
      header.emplace_back(Trim(name));
    }
    first_data_row = 1;
    if (cells.size() == 1) {
      return Status::InvalidArgument("CSV file has only a header: ", path);
    }
  }

  const size_t num_columns = cells[first_data_row].size();
  for (size_t r = first_data_row; r < cells.size(); ++r) {
    if (cells[r].size() != num_columns) {
      return Status::InvalidArgument("CSV row ", r, " has ", cells[r].size(),
                                     " cells, expected ", num_columns, ": ",
                                     path);
    }
  }

  if (options.series_in_rows) {
    // Row layout: optional leading name cell, then values.
    std::vector<std::vector<double>> rows;
    std::vector<std::string> names;
    for (size_t r = first_data_row; r < cells.size(); ++r) {
      size_t first_value = 0;
      std::string name;
      // A non-numeric first cell is the series name.
      if (!cells[r].empty() && !ParseCell(cells[r][0], options.missing_token).ok()) {
        name = std::string(Trim(cells[r][0]));
        first_value = 1;
      }
      std::vector<double> row;
      row.reserve(num_columns - first_value);
      for (size_t c = first_value; c < cells[r].size(); ++c) {
        ASSIGN_OR_RETURN(const double value,
                         ParseCell(cells[r][c], options.missing_token));
        row.push_back(value);
      }
      rows.push_back(std::move(row));
      names.push_back(name.empty() ? "series" + std::to_string(rows.size() - 1)
                                   : name);
    }
    ASSIGN_OR_RETURN(TimeSeriesMatrix matrix,
                     TimeSeriesMatrix::FromRows(std::move(rows)));
    RETURN_IF_ERROR(matrix.SetSeriesNames(std::move(names)));
    return matrix;
  }

  // Column layout: each column is a series; transpose while parsing.
  const size_t num_rows = cells.size() - first_data_row;
  std::vector<std::vector<double>> series(num_columns,
                                          std::vector<double>(num_rows));
  for (size_t r = 0; r < num_rows; ++r) {
    for (size_t c = 0; c < num_columns; ++c) {
      ASSIGN_OR_RETURN(
          const double value,
          ParseCell(cells[r + first_data_row][c], options.missing_token));
      series[c][r] = value;
    }
  }
  ASSIGN_OR_RETURN(TimeSeriesMatrix matrix,
                   TimeSeriesMatrix::FromRows(std::move(series)));
  if (!header.empty() && header.size() == num_columns) {
    RETURN_IF_ERROR(matrix.SetSeriesNames(std::move(header)));
  }
  return matrix;
}

Status WriteCsv(const TimeSeriesMatrix& matrix, const std::string& path,
                char delimiter) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open CSV file for writing: ", path);
  }
  for (int64_t i = 0; i < matrix.num_series(); ++i) {
    out << matrix.SeriesName(i);
    for (const double v : matrix.Row(i)) {
      out << delimiter;
      if (IsMissing(v)) {
        out << "NA";
      } else {
        out << StrFormat("%.10g", v);
      }
    }
    out << '\n';
  }
  if (!out) {
    return Status::IoError("error writing CSV file: ", path);
  }
  return Status::Ok();
}

}  // namespace dangoron
