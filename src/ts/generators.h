#ifndef DANGORON_TS_GENERATORS_H_
#define DANGORON_TS_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "ts/time_series_matrix.h"

namespace dangoron {

// ---------------------------------------------------------------------------
// Climate (USCRN-like) — the offline stand-in for the paper's NOAA dataset.
// ---------------------------------------------------------------------------

/// Location and identity of one synthetic weather station.
struct StationInfo {
  int64_t wbanno = 0;
  double longitude = 0.0;
  double latitude = 0.0;
};

/// Parameters of the synthetic USCRN-style hourly temperature network.
///
/// The generator reproduces the structure Dangoron's pruning exploits on the
/// real data: a shared seasonal + diurnal cycle (which makes most station
/// pairs highly correlated at long windows), spatially correlated weather
/// noise whose correlation decays with distance (so thresholding yields a
/// distance-structured network), and slowly drifting regimes (so window-to-
/// window correlation is stable).
struct ClimateSpec {
  int64_t num_stations = 64;
  int64_t num_hours = 24 * 365;
  /// Stations are scattered uniformly in a box of this many degrees.
  double region_degrees = 25.0;
  /// e-folding distance (degrees) of the weather-noise correlation.
  double correlation_length_degrees = 4.0;
  /// Defaults are calibrated so that at beta = 0.8 and 30-day windows the
  /// network is sparse (a few percent edge density) with substantial mass
  /// near the threshold — the regime the paper's evaluation operates in.
  /// The weather field dominates; the shared seasonal/diurnal cycles only
  /// add a mild correlation floor.
  double seasonal_amplitude = 6.0;   ///< deg C, annual harmonic
  double diurnal_amplitude = 2.0;    ///< deg C, daily harmonic
  double weather_stddev = 5.0;       ///< deg C, correlated noise component
  double sensor_noise_stddev = 1.0;  ///< deg C, per-station independent noise
  /// AR(1) coefficient of the shared weather factors; closer to 1 makes
  /// window-to-window correlations more stable but single-window sample
  /// correlations noisier (fewer effective samples per window).
  double weather_persistence = 0.9;
  /// Fraction of observations replaced by NaN (sensor dropouts).
  double missing_fraction = 0.0;
  uint64_t seed = 42;
};

/// A generated station network: data row `i` belongs to `stations[i]`.
struct ClimateDataset {
  TimeSeriesMatrix data;
  std::vector<StationInfo> stations;
};

/// Generates the synthetic climate network described by `spec`.
Result<ClimateDataset> GenerateClimate(const ClimateSpec& spec);

// ---------------------------------------------------------------------------
// fMRI voxel grid — the motivation workload of the paper's Section 1.
// ---------------------------------------------------------------------------

/// Parameters of a synthetic BOLD voxel recording.
///
/// Voxels live on an nx x ny x nz grid partitioned into `num_regions`
/// contiguous regions; each region follows a smooth latent BOLD signal, and
/// voxels observe their region's signal plus noise. During "task" intervals,
/// pairs of regions co-activate, so the voxel-level correlation network
/// changes across sliding windows (dynamic functional connectivity).
struct FmriSpec {
  int64_t nx = 6, ny = 6, nz = 4;
  int64_t num_regions = 8;
  int64_t num_timepoints = 1200;
  double signal_stddev = 1.0;
  double noise_stddev = 0.7;
  /// AR(1) smoothness of the latent BOLD signals.
  double bold_persistence = 0.9;
  /// Number of task blocks in which two random regions synchronize.
  int64_t num_task_blocks = 3;
  int64_t task_block_length = 200;
  uint64_t seed = 7;
};

/// A generated fMRI dataset: voxel series plus each voxel's region label.
struct FmriDataset {
  TimeSeriesMatrix data;
  std::vector<int64_t> voxel_region;
  /// (start, end, region_a, region_b) of each synchronized task block.
  struct TaskBlock {
    int64_t start = 0;
    int64_t end = 0;
    int64_t region_a = 0;
    int64_t region_b = 0;
  };
  std::vector<TaskBlock> task_blocks;
};

/// Generates the synthetic fMRI dataset described by `spec`.
Result<FmriDataset> GenerateFmri(const FmriSpec& spec);

// ---------------------------------------------------------------------------
// Finance — regime-switching one-factor returns (contagion scenario).
// ---------------------------------------------------------------------------

/// Parameters of a regime-switching one-factor return model: in the calm
/// regime pairwise correlation is `calm_correlation`; in the crisis regime it
/// jumps to `crisis_correlation` (correlation "contagion").
struct FinanceSpec {
  int64_t num_assets = 64;
  int64_t num_steps = 2048;
  double calm_correlation = 0.2;
  double crisis_correlation = 0.75;
  /// Per-step probability of entering / leaving the crisis regime.
  double crisis_entry_probability = 0.003;
  double crisis_exit_probability = 0.02;
  double daily_volatility = 0.015;
  uint64_t seed = 99;
};

/// Generated returns plus the regime indicator per step (1 = crisis).
struct FinanceDataset {
  TimeSeriesMatrix returns;
  std::vector<int> crisis_regime;
};

/// Generates the regime-switching return panel described by `spec`.
Result<FinanceDataset> GenerateFinance(const FinanceSpec& spec);

// ---------------------------------------------------------------------------
// Elementary generators (tests & microbenchmarks).
// ---------------------------------------------------------------------------

/// AR(1) series: x_t = phi * x_{t-1} + noise, unit stationary variance.
std::vector<double> GenerateAr1(int64_t length, double phi, Rng* rng);

/// Standard Gaussian random walk of `length` steps.
std::vector<double> GenerateRandomWalk(int64_t length, Rng* rng);

/// Pair of series whose population Pearson correlation is `rho`
/// (realized sample correlation converges to rho as length grows).
void GenerateCorrelatedPair(int64_t length, double rho, Rng* rng,
                            std::vector<double>* x, std::vector<double>* y);

/// Matrix of `num_series` i.i.d. standard Gaussian series (null model: all
/// true correlations are 0).
TimeSeriesMatrix GenerateWhiteNoise(int64_t num_series, int64_t length,
                                    Rng* rng);

}  // namespace dangoron

#endif  // DANGORON_TS_GENERATORS_H_
