#include "ts/generators.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/logging.h"

namespace dangoron {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

// Euclidean distance in degrees between two stations (adequate at the
// regional scale of the synthetic network).
double StationDistance(const StationInfo& a, const StationInfo& b) {
  const double dx = a.longitude - b.longitude;
  const double dy = a.latitude - b.latitude;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

Result<ClimateDataset> GenerateClimate(const ClimateSpec& spec) {
  if (spec.num_stations <= 0 || spec.num_hours <= 0) {
    return Status::InvalidArgument("GenerateClimate: empty dataset requested");
  }
  if (spec.missing_fraction < 0.0 || spec.missing_fraction >= 1.0) {
    return Status::InvalidArgument(
        "GenerateClimate: missing_fraction must be in [0, 1)");
  }
  if (spec.weather_persistence < 0.0 || spec.weather_persistence >= 1.0) {
    return Status::InvalidArgument(
        "GenerateClimate: weather_persistence must be in [0, 1)");
  }
  Rng rng(spec.seed);

  ClimateDataset dataset;
  dataset.stations.reserve(static_cast<size_t>(spec.num_stations));
  for (int64_t s = 0; s < spec.num_stations; ++s) {
    StationInfo station;
    station.wbanno = 10000 + s;
    station.longitude = -100.0 + rng.NextUniform(0.0, spec.region_degrees);
    station.latitude = 35.0 + rng.NextUniform(0.0, spec.region_degrees);
    dataset.stations.push_back(station);
  }

  // Weather field: a small set of spatial anchor factors, each an AR(1)
  // process; each station mixes the factors with distance-decaying weights.
  // This yields corr(station_i, station_j) that decays with distance without
  // requiring an N x N Cholesky factorization.
  const int64_t num_factors = std::min<int64_t>(spec.num_stations, 24);
  std::vector<StationInfo> anchors;
  anchors.reserve(static_cast<size_t>(num_factors));
  for (int64_t k = 0; k < num_factors; ++k) {
    StationInfo anchor;
    anchor.longitude = -100.0 + rng.NextUniform(0.0, spec.region_degrees);
    anchor.latitude = 35.0 + rng.NextUniform(0.0, spec.region_degrees);
    anchors.push_back(anchor);
  }

  // Mixing weights, row-normalized so each station's weather component has
  // unit variance before scaling by weather_stddev.
  std::vector<double> weights(
      static_cast<size_t>(spec.num_stations * num_factors));
  for (int64_t s = 0; s < spec.num_stations; ++s) {
    double norm = 0.0;
    for (int64_t k = 0; k < num_factors; ++k) {
      const double distance =
          StationDistance(dataset.stations[static_cast<size_t>(s)],
                          anchors[static_cast<size_t>(k)]);
      const double w =
          std::exp(-distance / spec.correlation_length_degrees);
      weights[static_cast<size_t>(s * num_factors + k)] = w;
      norm += w * w;
    }
    norm = std::sqrt(norm);
    for (int64_t k = 0; k < num_factors; ++k) {
      weights[static_cast<size_t>(s * num_factors + k)] /= norm;
    }
  }

  // Per-station phase offsets: diurnal cycles differ slightly by longitude.
  std::vector<double> diurnal_phase(static_cast<size_t>(spec.num_stations));
  std::vector<double> base_temp(static_cast<size_t>(spec.num_stations));
  for (int64_t s = 0; s < spec.num_stations; ++s) {
    diurnal_phase[static_cast<size_t>(s)] =
        kTwoPi * (dataset.stations[static_cast<size_t>(s)].longitude + 100.0) /
        360.0;
    // Cooler at higher latitude.
    base_temp[static_cast<size_t>(s)] =
        18.0 - 0.6 * (dataset.stations[static_cast<size_t>(s)].latitude - 35.0);
  }

  dataset.data = TimeSeriesMatrix(spec.num_stations, spec.num_hours);
  std::vector<double> factors(static_cast<size_t>(num_factors), 0.0);
  const double innovation_scale =
      std::sqrt(1.0 - spec.weather_persistence * spec.weather_persistence);
  // Burn in the AR(1) factors to their stationary distribution.
  for (int64_t k = 0; k < num_factors; ++k) {
    factors[static_cast<size_t>(k)] = rng.NextGaussian();
  }

  for (int64_t t = 0; t < spec.num_hours; ++t) {
    for (int64_t k = 0; k < num_factors; ++k) {
      factors[static_cast<size_t>(k)] =
          spec.weather_persistence * factors[static_cast<size_t>(k)] +
          innovation_scale * rng.NextGaussian();
    }
    const double hour_of_day = static_cast<double>(t % 24);
    const double day_of_year = static_cast<double>(t) / 24.0;
    const double seasonal =
        std::cos(kTwoPi * (day_of_year - 15.0) / 365.25);
    for (int64_t s = 0; s < spec.num_stations; ++s) {
      double weather = 0.0;
      const double* w = &weights[static_cast<size_t>(s * num_factors)];
      for (int64_t k = 0; k < num_factors; ++k) {
        weather += w[k] * factors[static_cast<size_t>(k)];
      }
      const double diurnal =
          std::cos(kTwoPi * hour_of_day / 24.0 +
                   diurnal_phase[static_cast<size_t>(s)]);
      const double value = base_temp[static_cast<size_t>(s)] -
                           spec.seasonal_amplitude * seasonal +
                           spec.diurnal_amplitude * diurnal +
                           spec.weather_stddev * weather +
                           spec.sensor_noise_stddev * rng.NextGaussian();
      dataset.data.Set(s, t, value);
    }
  }

  if (spec.missing_fraction > 0.0) {
    for (int64_t s = 0; s < spec.num_stations; ++s) {
      std::span<double> row = dataset.data.Row(s);
      for (double& v : row) {
        if (rng.NextBernoulli(spec.missing_fraction)) {
          v = MissingValue();
        }
      }
    }
  }

  std::vector<std::string> names;
  names.reserve(static_cast<size_t>(spec.num_stations));
  for (const StationInfo& station : dataset.stations) {
    names.push_back(std::to_string(station.wbanno));
  }
  RETURN_IF_ERROR(dataset.data.SetSeriesNames(std::move(names)));
  return dataset;
}

Result<FmriDataset> GenerateFmri(const FmriSpec& spec) {
  const int64_t num_voxels = spec.nx * spec.ny * spec.nz;
  if (num_voxels <= 0 || spec.num_timepoints <= 0) {
    return Status::InvalidArgument("GenerateFmri: empty dataset requested");
  }
  if (spec.num_regions <= 0 || spec.num_regions > num_voxels) {
    return Status::InvalidArgument("GenerateFmri: num_regions must be in [1, ",
                                   num_voxels, "]");
  }
  Rng rng(spec.seed);

  FmriDataset dataset;
  dataset.voxel_region.resize(static_cast<size_t>(num_voxels));
  // Partition the grid into regions by slicing the flattened voxel order into
  // contiguous runs — crude "parcellation" but spatially contiguous for the
  // z-major flattening used here.
  const int64_t voxels_per_region =
      std::max<int64_t>(1, num_voxels / spec.num_regions);
  for (int64_t v = 0; v < num_voxels; ++v) {
    dataset.voxel_region[static_cast<size_t>(v)] =
        std::min(spec.num_regions - 1, v / voxels_per_region);
  }

  // Latent BOLD signal per region: AR(1) with unit stationary variance.
  std::vector<std::vector<double>> latent(
      static_cast<size_t>(spec.num_regions));
  for (auto& series : latent) {
    series = GenerateAr1(spec.num_timepoints, spec.bold_persistence, &rng);
  }

  // Task blocks: two random distinct regions share a common additive
  // activation signal during the block.
  std::vector<double> activation(static_cast<size_t>(spec.num_timepoints),
                                 0.0);
  for (int64_t b = 0; b < spec.num_task_blocks; ++b) {
    if (spec.task_block_length >= spec.num_timepoints) {
      break;
    }
    FmriDataset::TaskBlock block;
    block.start = rng.NextInt(0, spec.num_timepoints - spec.task_block_length);
    block.end = block.start + spec.task_block_length;
    block.region_a = rng.NextInt(0, spec.num_regions - 1);
    block.region_b = rng.NextInt(0, spec.num_regions - 1);
    while (block.region_b == block.region_a && spec.num_regions > 1) {
      block.region_b = rng.NextInt(0, spec.num_regions - 1);
    }
    const std::vector<double> shared =
        GenerateAr1(spec.task_block_length, spec.bold_persistence, &rng);
    // The co-activation must dominate the per-region background signal for
    // the block to register as a connectivity change at window granularity.
    constexpr double kTaskGain = 2.0;
    for (int64_t t = block.start; t < block.end; ++t) {
      const double boost =
          kTaskGain * shared[static_cast<size_t>(t - block.start)];
      latent[static_cast<size_t>(block.region_a)][static_cast<size_t>(t)] +=
          boost;
      latent[static_cast<size_t>(block.region_b)][static_cast<size_t>(t)] +=
          boost;
      activation[static_cast<size_t>(t)] += 1.0;
    }
    dataset.task_blocks.push_back(block);
  }

  dataset.data = TimeSeriesMatrix(num_voxels, spec.num_timepoints);
  for (int64_t v = 0; v < num_voxels; ++v) {
    const int64_t region = dataset.voxel_region[static_cast<size_t>(v)];
    // Voxel-specific coupling strength to its region's signal.
    const double coupling = 0.7 + 0.3 * rng.NextDouble();
    std::span<double> row = dataset.data.Row(v);
    for (int64_t t = 0; t < spec.num_timepoints; ++t) {
      row[static_cast<size_t>(t)] =
          spec.signal_stddev * coupling *
              latent[static_cast<size_t>(region)][static_cast<size_t>(t)] +
          spec.noise_stddev * rng.NextGaussian();
    }
  }
  return dataset;
}

Result<FinanceDataset> GenerateFinance(const FinanceSpec& spec) {
  if (spec.num_assets <= 0 || spec.num_steps <= 0) {
    return Status::InvalidArgument("GenerateFinance: empty dataset requested");
  }
  for (const double rho : {spec.calm_correlation, spec.crisis_correlation}) {
    if (rho < 0.0 || rho >= 1.0) {
      return Status::InvalidArgument(
          "GenerateFinance: correlations must be in [0, 1)");
    }
  }
  Rng rng(spec.seed);

  FinanceDataset dataset;
  dataset.returns = TimeSeriesMatrix(spec.num_assets, spec.num_steps);
  dataset.crisis_regime.resize(static_cast<size_t>(spec.num_steps), 0);

  int regime = 0;
  for (int64_t t = 0; t < spec.num_steps; ++t) {
    if (regime == 0 && rng.NextBernoulli(spec.crisis_entry_probability)) {
      regime = 1;
    } else if (regime == 1 && rng.NextBernoulli(spec.crisis_exit_probability)) {
      regime = 0;
    }
    dataset.crisis_regime[static_cast<size_t>(t)] = regime;
    const double rho =
        regime == 1 ? spec.crisis_correlation : spec.calm_correlation;
    // One-factor model: r_i = sqrt(rho) * market + sqrt(1 - rho) * idio.
    const double market = rng.NextGaussian();
    const double factor_loading = std::sqrt(rho);
    const double idio_loading = std::sqrt(1.0 - rho);
    for (int64_t a = 0; a < spec.num_assets; ++a) {
      const double shock =
          factor_loading * market + idio_loading * rng.NextGaussian();
      dataset.returns.Set(a, t, spec.daily_volatility * shock);
    }
  }
  return dataset;
}

std::vector<double> GenerateAr1(int64_t length, double phi, Rng* rng) {
  CHECK_GE(length, 0);
  CHECK(phi > -1.0 && phi < 1.0) << "AR(1) requires |phi| < 1";
  std::vector<double> series(static_cast<size_t>(length));
  if (length == 0) {
    return series;
  }
  const double innovation_scale = std::sqrt(1.0 - phi * phi);
  double state = rng->NextGaussian();  // stationary start
  for (int64_t t = 0; t < length; ++t) {
    series[static_cast<size_t>(t)] = state;
    state = phi * state + innovation_scale * rng->NextGaussian();
  }
  return series;
}

std::vector<double> GenerateRandomWalk(int64_t length, Rng* rng) {
  std::vector<double> series(static_cast<size_t>(length));
  double state = 0.0;
  for (int64_t t = 0; t < length; ++t) {
    state += rng->NextGaussian();
    series[static_cast<size_t>(t)] = state;
  }
  return series;
}

void GenerateCorrelatedPair(int64_t length, double rho, Rng* rng,
                            std::vector<double>* x, std::vector<double>* y) {
  CHECK(rho >= -1.0 && rho <= 1.0);
  x->resize(static_cast<size_t>(length));
  y->resize(static_cast<size_t>(length));
  const double ortho = std::sqrt(1.0 - rho * rho);
  for (int64_t t = 0; t < length; ++t) {
    const double a = rng->NextGaussian();
    const double b = rng->NextGaussian();
    (*x)[static_cast<size_t>(t)] = a;
    (*y)[static_cast<size_t>(t)] = rho * a + ortho * b;
  }
}

TimeSeriesMatrix GenerateWhiteNoise(int64_t num_series, int64_t length,
                                    Rng* rng) {
  TimeSeriesMatrix matrix(num_series, length);
  for (int64_t s = 0; s < num_series; ++s) {
    for (double& v : matrix.Row(s)) {
      v = rng->NextGaussian();
    }
  }
  return matrix;
}

}  // namespace dangoron
