#include "ts/resample.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace dangoron {

Status InterpolateMissing(TimeSeriesMatrix* matrix) {
  const int64_t length = matrix->length();
  for (int64_t s = 0; s < matrix->num_series(); ++s) {
    std::span<double> row = matrix->Row(s);
    // Find first observed value.
    int64_t first = -1;
    for (int64_t t = 0; t < length; ++t) {
      if (!IsMissing(row[static_cast<size_t>(t)])) {
        first = t;
        break;
      }
    }
    if (first < 0) {
      return Status::FailedPrecondition(
          "InterpolateMissing: series ", matrix->SeriesName(s),
          " has no observed values; drop it before interpolating");
    }
    // Extend the first observation backwards.
    for (int64_t t = 0; t < first; ++t) {
      row[static_cast<size_t>(t)] = row[static_cast<size_t>(first)];
    }
    // Walk forward: for each gap, interpolate to the next observation or
    // extend the last one.
    int64_t prev = first;
    for (int64_t t = first + 1; t < length; ++t) {
      if (!IsMissing(row[static_cast<size_t>(t)])) {
        if (t > prev + 1) {
          const double lo = row[static_cast<size_t>(prev)];
          const double hi = row[static_cast<size_t>(t)];
          const double span = static_cast<double>(t - prev);
          for (int64_t u = prev + 1; u < t; ++u) {
            const double alpha = static_cast<double>(u - prev) / span;
            row[static_cast<size_t>(u)] = lo + alpha * (hi - lo);
          }
        }
        prev = t;
      }
    }
    for (int64_t t = prev + 1; t < length; ++t) {
      row[static_cast<size_t>(t)] = row[static_cast<size_t>(prev)];
    }
  }
  return Status::Ok();
}

Result<TimeSeriesMatrix> AggregateMean(const TimeSeriesMatrix& matrix,
                                       int64_t bucket_size) {
  if (bucket_size <= 0) {
    return Status::InvalidArgument("AggregateMean: bucket_size must be > 0");
  }
  const int64_t out_length = matrix.length() / bucket_size;
  if (out_length == 0) {
    return Status::InvalidArgument("AggregateMean: series shorter (",
                                   matrix.length(), ") than one bucket (",
                                   bucket_size, ")");
  }
  TimeSeriesMatrix out(matrix.num_series(), out_length);
  for (int64_t s = 0; s < matrix.num_series(); ++s) {
    std::span<const double> src = matrix.Row(s);
    std::span<double> dst = out.Row(s);
    for (int64_t b = 0; b < out_length; ++b) {
      double sum = 0.0;
      int64_t count = 0;
      for (int64_t k = 0; k < bucket_size; ++k) {
        const double v = src[static_cast<size_t>(b * bucket_size + k)];
        if (!IsMissing(v)) {
          sum += v;
          ++count;
        }
      }
      dst[static_cast<size_t>(b)] =
          count > 0 ? sum / static_cast<double>(count) : MissingValue();
    }
  }
  std::vector<std::string> names;
  names.reserve(static_cast<size_t>(matrix.num_series()));
  for (int64_t s = 0; s < matrix.num_series(); ++s) {
    names.push_back(matrix.SeriesName(s));
  }
  RETURN_IF_ERROR(out.SetSeriesNames(std::move(names)));
  return out;
}

Result<TimeSeriesMatrix> AlignOffsets(const TimeSeriesMatrix& matrix,
                                      const std::vector<int64_t>& offsets) {
  if (static_cast<int64_t>(offsets.size()) != matrix.num_series()) {
    return Status::InvalidArgument("AlignOffsets: ", offsets.size(),
                                   " offsets for ", matrix.num_series(),
                                   " series");
  }
  // Series s covers absolute time [offset_s, offset_s + L); the aligned
  // matrix covers the intersection.
  int64_t start = std::numeric_limits<int64_t>::min();
  int64_t end = std::numeric_limits<int64_t>::max();
  for (const int64_t offset : offsets) {
    start = std::max(start, offset);
    end = std::min(end, offset + matrix.length());
  }
  if (end <= start) {
    return Status::FailedPrecondition(
        "AlignOffsets: series have no overlapping range");
  }
  const int64_t length = end - start;
  TimeSeriesMatrix out(matrix.num_series(), length);
  for (int64_t s = 0; s < matrix.num_series(); ++s) {
    std::span<const double> src = matrix.Row(s);
    std::span<double> dst = out.Row(s);
    const int64_t local_start = start - offsets[static_cast<size_t>(s)];
    for (int64_t t = 0; t < length; ++t) {
      dst[static_cast<size_t>(t)] = src[static_cast<size_t>(local_start + t)];
    }
  }
  std::vector<std::string> names;
  names.reserve(static_cast<size_t>(matrix.num_series()));
  for (int64_t s = 0; s < matrix.num_series(); ++s) {
    names.push_back(matrix.SeriesName(s));
  }
  RETURN_IF_ERROR(out.SetSeriesNames(std::move(names)));
  return out;
}

Result<TimeSeriesMatrix> DropSparseSeries(const TimeSeriesMatrix& matrix,
                                          double max_missing_fraction) {
  std::vector<int64_t> keep;
  for (int64_t s = 0; s < matrix.num_series(); ++s) {
    int64_t missing = 0;
    for (const double v : matrix.Row(s)) {
      if (IsMissing(v)) {
        ++missing;
      }
    }
    const double fraction = matrix.length() > 0
                                ? static_cast<double>(missing) /
                                      static_cast<double>(matrix.length())
                                : 1.0;
    if (fraction <= max_missing_fraction) {
      keep.push_back(s);
    }
  }
  if (keep.empty()) {
    return Status::FailedPrecondition(
        "DropSparseSeries: every series exceeds the missing threshold");
  }
  return matrix.SelectSeries(keep);
}

}  // namespace dangoron
