#include "ts/uscrn.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>

#include "common/logging.h"
#include "common/strings.h"

namespace dangoron {

namespace {

// USCRN missing codes: -9999.0 (temperatures, radiation) and -99999
// (some gauge fields). Treat anything at or below -9998 as missing.
bool IsUscrnMissingCode(double value) { return value <= -9998.0; }

// Parses "YYYYMMDD" and "HHMM" into hours since epoch.
Result<int64_t> ParseUtcHour(std::string_view date_text,
                             std::string_view time_text) {
  ASSIGN_OR_RETURN(const int64_t date, ParseInt64(date_text));
  ASSIGN_OR_RETURN(const int64_t time, ParseInt64(time_text));
  const int year = static_cast<int>(date / 10000);
  const int month = static_cast<int>((date / 100) % 100);
  const int day = static_cast<int>(date % 100);
  const int hour = static_cast<int>(time / 100);
  const int minute = static_cast<int>(time % 100);
  if (month < 1 || month > 12 || day < 1 || day > 31 || hour < 0 ||
      hour > 24 || minute != 0) {
    return Status::InvalidArgument("bad USCRN timestamp: date=",
                                   std::string(date_text), " time=",
                                   std::string(time_text));
  }
  // hourly02 stamps the *end* of the hour; 2400 rolls into the next day and
  // is already consistent under plain hour arithmetic.
  return DaysFromCivil(year, month, day) * 24 + hour;
}

}  // namespace

int64_t DaysFromCivil(int year, int month, int day) {
  // Howard Hinnant's algorithm (public domain).
  year -= month <= 2;
  const int64_t era = (year >= 0 ? year : year - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(year - era * 400);  // [0, 399]
  const unsigned doy = static_cast<unsigned>(
      (153 * (month + (month > 2 ? -3 : 9)) + 2) / 5 + day - 1);  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;  // [0, 146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t days, int* year, int* month, int* day) {
  days += 719468;
  const int64_t era = (days >= 0 ? days : days - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(days - era * 146097);
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;  // [0, 399]
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                       // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;               // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                    // [1, 12]
  *year = static_cast<int>(y + (m <= 2));
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

Result<std::vector<UscrnObservation>> ReadUscrnFile(
    const std::string& path, const UscrnReadOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open USCRN file: ", path);
  }
  const int field_index = static_cast<int>(options.field);
  std::vector<UscrnObservation> observations;
  std::string line;
  int64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (Trim(line).empty()) {
      continue;
    }
    const std::vector<std::string> fields = SplitWhitespace(line);
    if (static_cast<int>(fields.size()) < options.min_fields) {
      return Status::DataLoss("USCRN row with ", fields.size(), " fields (< ",
                              options.min_fields, ") at ", path, ":",
                              line_number);
    }
    if (field_index >= static_cast<int>(fields.size())) {
      return Status::DataLoss("USCRN row lacks field ", field_index, " at ",
                              path, ":", line_number);
    }
    UscrnObservation obs;
    {
      auto wbanno = ParseInt64(fields[static_cast<int>(UscrnField::kWbanno)]);
      if (!wbanno.ok()) {
        return Status::DataLoss("bad WBANNO at ", path, ":", line_number,
                                " (", wbanno.status().message(), ")");
      }
      obs.wbanno = *wbanno;
    }
    {
      auto hour =
          ParseUtcHour(fields[static_cast<int>(UscrnField::kUtcDate)],
                       fields[static_cast<int>(UscrnField::kUtcTime)]);
      if (!hour.ok()) {
        return Status::DataLoss("bad timestamp at ", path, ":", line_number,
                                " (", hour.status().message(), ")");
      }
      obs.utc_hour = *hour;
    }
    {
      auto lon = ParseDouble(fields[static_cast<int>(UscrnField::kLongitude)]);
      auto lat = ParseDouble(fields[static_cast<int>(UscrnField::kLatitude)]);
      if (!lon.ok() || !lat.ok()) {
        return Status::DataLoss("bad coordinates at ", path, ":", line_number);
      }
      obs.longitude = *lon;
      obs.latitude = *lat;
    }
    {
      auto value = ParseDouble(fields[static_cast<size_t>(field_index)]);
      if (!value.ok()) {
        return Status::DataLoss("bad value field at ", path, ":", line_number,
                                " (", value.status().message(), ")");
      }
      obs.value = IsUscrnMissingCode(*value) ? MissingValue() : *value;
    }
    observations.push_back(obs);
  }
  if (observations.empty()) {
    return Status::InvalidArgument("USCRN file has no observations: ", path);
  }
  return observations;
}

Result<TimeSeriesMatrix> LoadUscrnStations(
    const std::vector<std::string>& station_files,
    const UscrnReadOptions& options) {
  if (station_files.empty()) {
    return Status::InvalidArgument("LoadUscrnStations: no files given");
  }
  std::vector<std::vector<UscrnObservation>> streams;
  streams.reserve(station_files.size());
  int64_t grid_start = std::numeric_limits<int64_t>::min();
  int64_t grid_end = std::numeric_limits<int64_t>::max();
  for (const std::string& path : station_files) {
    ASSIGN_OR_RETURN(std::vector<UscrnObservation> stream,
                     ReadUscrnFile(path, options));
    // Files are chronologically sorted in the real product; tolerate minor
    // disorder by sorting.
    std::sort(stream.begin(), stream.end(),
              [](const UscrnObservation& a, const UscrnObservation& b) {
                return a.utc_hour < b.utc_hour;
              });
    grid_start = std::max(grid_start, stream.front().utc_hour);
    grid_end = std::min(grid_end, stream.back().utc_hour);
    streams.push_back(std::move(stream));
  }
  if (grid_end < grid_start) {
    return Status::FailedPrecondition(
        "USCRN stations have no overlapping time range");
  }
  const int64_t length = grid_end - grid_start + 1;
  TimeSeriesMatrix matrix(static_cast<int64_t>(streams.size()), length);
  std::vector<std::string> names;
  names.reserve(streams.size());
  for (size_t s = 0; s < streams.size(); ++s) {
    std::span<double> row = matrix.Row(static_cast<int64_t>(s));
    std::fill(row.begin(), row.end(), MissingValue());
    for (const UscrnObservation& obs : streams[s]) {
      const int64_t slot = obs.utc_hour - grid_start;
      if (slot >= 0 && slot < length) {
        row[static_cast<size_t>(slot)] = obs.value;
      }
    }
    names.push_back(std::to_string(streams[s].front().wbanno));
  }
  RETURN_IF_ERROR(matrix.SetSeriesNames(std::move(names)));
  return matrix;
}

Status WriteUscrnFile(const std::string& path, int64_t wbanno,
                      double longitude, double latitude, int64_t start_hour,
                      std::span<const double> values, UscrnField field) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open USCRN file for writing: ", path);
  }
  const int field_index = static_cast<int>(field);
  for (size_t t = 0; t < values.size(); ++t) {
    const int64_t hour = start_hour + static_cast<int64_t>(t);
    int year = 0;
    int month = 0;
    int day = 0;
    CivilFromDays(hour / 24, &year, &month, &day);
    const int hh = static_cast<int>(hour % 24);

    std::vector<std::string> fields(kUscrnFieldCount, "-9999.0");
    fields[static_cast<int>(UscrnField::kWbanno)] = std::to_string(wbanno);
    fields[static_cast<int>(UscrnField::kUtcDate)] =
        StrFormat("%04d%02d%02d", year, month, day);
    fields[static_cast<int>(UscrnField::kUtcTime)] = StrFormat("%02d00", hh);
    // LST date/time: mirror UTC (synthetic stations live at UTC offsets of 0).
    fields[3] = fields[static_cast<int>(UscrnField::kUtcDate)];
    fields[4] = fields[static_cast<int>(UscrnField::kUtcTime)];
    fields[5] = "2.623";  // CRX_VN datalogger version, arbitrary but plausible
    fields[static_cast<int>(UscrnField::kLongitude)] =
        StrFormat("%.2f", longitude);
    fields[static_cast<int>(UscrnField::kLatitude)] =
        StrFormat("%.2f", latitude);
    const double v = values[t];
    fields[static_cast<size_t>(field_index)] =
        IsMissing(v) ? "-9999.0" : StrFormat("%.1f", v);

    for (int f = 0; f < kUscrnFieldCount; ++f) {
      if (f != 0) {
        out << ' ';
      }
      out << fields[static_cast<size_t>(f)];
    }
    out << '\n';
  }
  if (!out) {
    return Status::IoError("error writing USCRN file: ", path);
  }
  return Status::Ok();
}

}  // namespace dangoron
