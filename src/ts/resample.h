#ifndef DANGORON_TS_RESAMPLE_H_
#define DANGORON_TS_RESAMPLE_H_

#include <cstdint>

#include "common/status.h"
#include "ts/time_series_matrix.h"

namespace dangoron {

/// Fills NaN gaps in every series in place.
///
/// Interior gaps are linearly interpolated between the nearest observed
/// neighbours; leading/trailing gaps are filled by extending the first/last
/// observation. A series with no observed value at all is an error — the
/// caller must drop it instead. This implements the paper's synchronization
/// prerequisite ("achieved through aggregation and interpolation").
Status InterpolateMissing(TimeSeriesMatrix* matrix);

/// Downsamples every series by averaging consecutive buckets of
/// `bucket_size` values (NaN-aware: a bucket's mean ignores missing values,
/// and a fully missing bucket stays NaN). The tail shorter than a full bucket
/// is dropped so all series stay aligned.
Result<TimeSeriesMatrix> AggregateMean(const TimeSeriesMatrix& matrix,
                                       int64_t bucket_size);

/// Aligns series sampled on different grids: given per-series offsets
/// (in samples) relative to a common clock, shifts each series so column `t`
/// means the same instant everywhere, cropping to the common covered range.
Result<TimeSeriesMatrix> AlignOffsets(const TimeSeriesMatrix& matrix,
                                      const std::vector<int64_t>& offsets);

/// Drops series whose missing-value fraction exceeds `max_missing_fraction`.
/// Returns the surviving sub-matrix (possibly with fewer series).
Result<TimeSeriesMatrix> DropSparseSeries(const TimeSeriesMatrix& matrix,
                                          double max_missing_fraction);

}  // namespace dangoron

#endif  // DANGORON_TS_RESAMPLE_H_
