#include "ts/dataset_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

namespace dangoron {

namespace {

constexpr char kMagic[4] = {'D', 'G', 'R', 'N'};
constexpr uint32_t kVersion = 1;
// Caps protect against allocating absurd buffers from a corrupt header.
constexpr int64_t kMaxSeries = 1 << 24;
constexpr int64_t kMaxLength = int64_t{1} << 36;
constexpr uint32_t kMaxNameBytes = 1 << 16;

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

uint64_t Fnv1a64(const void* data, size_t size, uint64_t seed) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = seed;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

Status SaveDataset(const TimeSeriesMatrix& matrix, const std::string& path) {
  if (matrix.empty()) {
    return Status::InvalidArgument("SaveDataset: empty matrix");
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IoError("cannot open dataset for writing: ", path);
  }
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, kVersion);
  WritePod(out, matrix.num_series());
  WritePod(out, matrix.length());
  for (int64_t s = 0; s < matrix.num_series(); ++s) {
    const std::string name = matrix.SeriesName(s);
    const uint32_t size = static_cast<uint32_t>(name.size());
    WritePod(out, size);
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
  }
  const std::vector<double>& values = matrix.values();
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(double)));
  const uint64_t checksum =
      Fnv1a64(values.data(), values.size() * sizeof(double));
  WritePod(out, checksum);
  if (!out) {
    return Status::IoError("error writing dataset: ", path);
  }
  return Status::Ok();
}

Result<TimeSeriesMatrix> LoadDataset(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open dataset: ", path);
  }
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::DataLoss("not a dangoron dataset (bad magic): ", path);
  }
  uint32_t version = 0;
  if (!ReadPod(in, &version) || version != kVersion) {
    return Status::DataLoss("unsupported dataset version ", version, ": ",
                            path);
  }
  int64_t num_series = 0;
  int64_t length = 0;
  if (!ReadPod(in, &num_series) || !ReadPod(in, &length)) {
    return Status::DataLoss("truncated dataset header: ", path);
  }
  if (num_series <= 0 || num_series > kMaxSeries || length <= 0 ||
      length > kMaxLength) {
    return Status::DataLoss("implausible dataset dimensions ", num_series,
                            " x ", length, ": ", path);
  }
  std::vector<std::string> names;
  names.reserve(static_cast<size_t>(num_series));
  for (int64_t s = 0; s < num_series; ++s) {
    uint32_t size = 0;
    if (!ReadPod(in, &size) || size > kMaxNameBytes) {
      return Status::DataLoss("corrupt series name (series ", s, "): ",
                              path);
    }
    std::string name(size, '\0');
    in.read(name.data(), size);
    if (!in) {
      return Status::DataLoss("truncated series name (series ", s, "): ",
                              path);
    }
    names.push_back(std::move(name));
  }

  TimeSeriesMatrix matrix(num_series, length);
  std::vector<double> values(static_cast<size_t>(num_series * length));
  in.read(reinterpret_cast<char*>(values.data()),
          static_cast<std::streamsize>(values.size() * sizeof(double)));
  if (!in) {
    return Status::DataLoss("truncated dataset values: ", path);
  }
  uint64_t stored_checksum = 0;
  if (!ReadPod(in, &stored_checksum)) {
    return Status::DataLoss("missing dataset checksum: ", path);
  }
  const uint64_t computed =
      Fnv1a64(values.data(), values.size() * sizeof(double));
  if (computed != stored_checksum) {
    return Status::DataLoss("dataset checksum mismatch (corrupt file): ",
                            path);
  }
  // No trailing garbage allowed.
  in.peek();
  if (!in.eof()) {
    return Status::DataLoss("trailing bytes after dataset payload: ", path);
  }

  for (int64_t s = 0; s < num_series; ++s) {
    std::span<double> row = matrix.Row(s);
    std::memcpy(row.data(), values.data() + s * length,
                static_cast<size_t>(length) * sizeof(double));
  }
  RETURN_IF_ERROR(matrix.SetSeriesNames(std::move(names)));
  return matrix;
}

}  // namespace dangoron
