#ifndef DANGORON_LINALG_DECOMPOSITIONS_H_
#define DANGORON_LINALG_DECOMPOSITIONS_H_

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace dangoron {

/// Lower-triangular Cholesky factor L with A = L * L^T.
///
/// `A` must be symmetric positive definite; a non-PD matrix yields
/// FailedPrecondition (Tomborg then routes it through PSD repair first).
Result<Matrix> CholeskyFactor(const Matrix& a);

/// Eigendecomposition of a symmetric matrix: A = V diag(lambda) V^T with
/// orthonormal columns of V. Eigenvalues are sorted descending.
struct EigenDecomposition {
  std::vector<double> eigenvalues;
  Matrix eigenvectors;  ///< column j pairs with eigenvalues[j]
};

/// Cyclic Jacobi rotations for symmetric matrices. Converges quadratically;
/// `max_sweeps` bounds work, `off_diag_tol` is the convergence threshold on
/// the largest remaining off-diagonal magnitude.
Result<EigenDecomposition> JacobiEigenSymmetric(const Matrix& a,
                                                int max_sweeps = 64,
                                                double off_diag_tol = 1e-11);

/// Projects a symmetric matrix with unit diagonal intent to the "nearest"
/// valid correlation matrix: clip eigenvalues at `min_eigenvalue`,
/// reassemble, and renormalize the diagonal to exactly 1 (one step of
/// Higham's alternating projections, iterated until the diagonal constraint
/// and PSD constraint are jointly satisfied or `max_iterations` is hit).
Result<Matrix> NearestCorrelationMatrix(const Matrix& a,
                                        double min_eigenvalue = 1e-6,
                                        int max_iterations = 8);

}  // namespace dangoron

#endif  // DANGORON_LINALG_DECOMPOSITIONS_H_
